// Leader election WITHOUT collision detection (the paper's no-CD model,
// §1.1/§4). In no-CD a listener only learns Single vs not-Single — Null
// and Collision are indistinguishable — so LESK's asymmetric trick is
// unavailable (it needs to *see* Nulls). The classic approach (Nakano &
// Olariu, ISAAC 2000) achieves O(log^2 n) w.h.p. without an adversary
// by sweeping candidate exponents with repetition:
//
//   for epoch = 1, 2, ... :
//     for u = 1 .. 2^epoch :
//       repeat r times: Broadcast(u); stop at the first Single
//
// Within the epoch where 2^epoch >= log2 n, the pass over u ~ log2 n
// yields a Single with constant probability per repetition, so a
// logarithmic repetition count gives w.h.p. in O(log^2 n) total.
//
// Under jamming this protocol has NO guarantee — the paper's §4 names
// countermeasures in the no-CD model as an open problem — and the
// example_nocd_frontier program demonstrates the failure mode. The
// implementation only consumes Single/not-Single (it maps Null and
// Collision to the same branch), so it is faithful to the no-CD model
// even when the engine runs with CD enabled.
#pragma once

#include <cstdint>
#include <string>

#include "protocols/uniform.hpp"
#include "support/state_hash.hpp"

namespace jamelect {

struct NoCdElectionParams {
  /// Repetitions of each candidate exponent within a pass.
  std::int64_t repetitions = 4;
};

class NoCdElection final : public UniformProtocol {
 public:
  explicit NoCdElection(NoCdElectionParams params = {});

  [[nodiscard]] double transmit_probability() override;
  void observe(ChannelState state) override;
  [[nodiscard]] bool elected() const override { return elected_; }
  [[nodiscard]] std::string name() const override { return "NoCdElection"; }
  [[nodiscard]] UniformProtocolPtr clone() const override {
    return std::make_unique<NoCdElection>(*this);
  }
  [[nodiscard]] double estimate() const override {
    return static_cast<double>(u_);
  }

  [[nodiscard]] std::int64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::int64_t u() const noexcept { return u_; }

  [[nodiscard]] const NoCdElectionParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] std::uint64_t state_hash() const override {
    return StateHash{}
        .add(params_.repetitions)
        .add(epoch_)
        .add(u_)
        .add(reps_left_)
        .add(elected_)
        .value();
  }
  [[nodiscard]] bool state_equals(const UniformProtocol& other) const override {
    const auto* o = dynamic_cast<const NoCdElection*>(&other);
    return o != nullptr && params_.repetitions == o->params_.repetitions &&
           epoch_ == o->epoch_ && u_ == o->u_ && reps_left_ == o->reps_left_ &&
           elected_ == o->elected_;
  }

 private:
  void advance();

  NoCdElectionParams params_;
  std::int64_t epoch_ = 1;
  std::int64_t u_ = 1;
  std::int64_t reps_left_;
  bool elected_ = false;
};

}  // namespace jamelect
