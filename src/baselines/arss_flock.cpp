#include "baselines/arss_flock.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "channel/channel.hpp"
#include "support/binomial.hpp"
#include "support/expects.hpp"

namespace jamelect {

namespace {

/// Canonical per-station state: p_v = min(p0 * (1+gamma)^m, p_max) for
/// integer m <= 0 (p0 = initial = p_max by default, so the cap keeps
/// m from exceeding 0), threshold T_v, counter c_v.
struct ClassKey {
  std::int64_t m;
  std::int64_t threshold;
  std::int64_t counter;
  bool operator==(const ClassKey&) const = default;
};

struct ClassKeyHash {
  std::size_t operator()(const ClassKey& k) const noexcept {
    std::size_t h = static_cast<std::size_t>(k.m) * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<std::size_t>(k.threshold) * 0xc2b2ae3d27d4eb4fULL;
    h ^= static_cast<std::size_t>(k.counter) * 0x165667b19e3779f9ULL;
    return h;
  }
};

using ClassMap = std::unordered_map<ClassKey, std::uint64_t, ClassKeyHash>;

/// Mirrors ArssStation::feedback exactly for one role. `sensed_idle`
/// and `since_idle_after` are global (a Null slot is sensed by every
/// station — nobody transmitted in it).
ClassKey advance(ClassKey key, bool transmitted, ChannelState state,
                 std::int64_t since_idle_after, std::int64_t m_cap) {
  if (!transmitted) {
    if (state == ChannelState::kNull) {
      key.m = std::min(key.m + 1, m_cap);
      key.threshold = std::max<std::int64_t>(1, key.threshold - 1);
    }
    // Single terminates the election elsewhere; Collision: no change.
  }
  ++key.counter;
  if (key.counter > key.threshold) {
    key.counter = 1;
    if (since_idle_after >= key.threshold) {
      --key.m;
      key.threshold += 2;
    }
  }
  return key;
}

}  // namespace

TrialOutcome run_arss_flock(const ArssFlockConfig& config,
                            BoundedAdversary& adversary, Rng& rng) {
  JAMELECT_EXPECTS(config.n >= 1);
  JAMELECT_EXPECTS(config.max_slots >= 1);
  JAMELECT_EXPECTS(config.params.elect_on_single);
  const ArssParams& params = config.params;
  JAMELECT_EXPECTS(params.gamma > 0.0 && params.gamma < 1.0);
  JAMELECT_EXPECTS(params.initial_p > 0.0 &&
                   params.initial_p <= params.p_max);

  // m is measured relative to initial_p; the p_max cap bounds it above.
  const std::int64_t m_cap = static_cast<std::int64_t>(std::floor(
      std::log(params.p_max / params.initial_p) / std::log1p(params.gamma)));
  const auto p_of = [&](std::int64_t m) {
    return std::min(params.p_max,
                    params.initial_p *
                        std::pow(1.0 + params.gamma, static_cast<double>(m)));
  };

  ClassMap classes;
  classes[{0, 1, 1}] = config.n;
  std::int64_t since_idle = 0;

  TrialOutcome out;
  std::vector<std::pair<ClassKey, std::uint64_t>> snapshot;
  for (Slot slot = 0; slot < config.max_slots; ++slot) {
    const bool jammed = adversary.step();

    snapshot.assign(classes.begin(), classes.end());
    std::uint64_t total_tx = 0;
    std::vector<std::uint64_t> tx_per_class(snapshot.size());
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      const auto& [key, count] = snapshot[i];
      tx_per_class[i] = binomial_sample(count, p_of(key.m), rng);
      total_tx += tx_per_class[i];
    }

    const ChannelState state = resolve_slot(total_tx, jammed);
    ++out.slots;
    out.transmissions += static_cast<double>(total_tx);
    if (jammed) ++out.jams;
    switch (state) {
      case ChannelState::kNull: ++out.nulls; break;
      case ChannelState::kSingle: ++out.singles; break;
      case ChannelState::kCollision: ++out.collisions; break;
    }
    adversary.observe({slot, total_tx, jammed, state});

    if (state == ChannelState::kSingle) {
      out.elected = true;
      out.all_done = true;
      out.unique_leader = true;
      out.leader = rng.below(config.n);  // exchangeable within its class
      break;
    }

    since_idle = state == ChannelState::kNull ? 0 : since_idle + 1;

    classes.clear();
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      const auto& [key, count] = snapshot[i];
      const std::uint64_t tx = tx_per_class[i];
      if (tx > 0) {
        classes[advance(key, true, state, since_idle, m_cap)] += tx;
      }
      if (count > tx) {
        classes[advance(key, false, state, since_idle, m_cap)] += count - tx;
      }
    }
  }
  return out;
}

}  // namespace jamelect
