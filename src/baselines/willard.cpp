#include "baselines/willard.hpp"

#include <algorithm>

#include "support/math.hpp"

namespace jamelect {

Willard::Willard() = default;

double Willard::transmit_probability() {
  if (elected_) return 0.0;
  return jamelect::transmit_probability(u_);
}

void Willard::observe(ChannelState state) {
  if (elected_) return;
  if (state == ChannelState::kSingle) {
    elected_ = true;
    return;
  }
  switch (phase_) {
    case Phase::kDoubling:
      if (state == ChannelState::kNull) {
        // First quiet probe: log2 n is bracketed by the previous loud
        // exponent and this one.
        lo_ = std::max(0.0, u_ / 2.0);
        hi_ = u_;
        phase_ = Phase::kBinarySearch;
        u_ = (lo_ + hi_) / 2.0;
      } else {
        u_ *= 2.0;
        if (u_ > 4096.0) {
          // Defensive: adversarial Collisions can push the probe
          // upward forever; clamp and fall through to the walk so the
          // protocol keeps *trying* (it will still be hopeless, which
          // is the point of the E12 demonstration).
          phase_ = Phase::kPolish;
          u_ = 4096.0;
        }
      }
      break;
    case Phase::kBinarySearch:
      if (state == ChannelState::kNull) {
        hi_ = u_;  // quiet -> estimate too high
      } else {
        lo_ = u_;  // loud -> estimate too low
      }
      if (hi_ - lo_ <= 1.0) {
        phase_ = Phase::kPolish;
        u_ = hi_;
      } else {
        u_ = (lo_ + hi_) / 2.0;
      }
      break;
    case Phase::kPolish:
      // Symmetric +-1 walk around the located estimate. Without an
      // adversary a Single arrives in O(1) expected slots; with one,
      // fabricated Collisions push u up as fast as Nulls pull it down.
      if (state == ChannelState::kNull) {
        u_ = std::max(0.0, u_ - 1.0);
      } else {
        u_ += 1.0;
      }
      break;
  }
}

}  // namespace jamelect
