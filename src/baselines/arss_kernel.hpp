// POD kernel twin of ArssStation (baselines/arss.hpp) for the batched
// station engine (sim/station_batch.hpp).
//
// Same contract as the uniform-protocol kernels: every field and every
// update expression mirrors the virtual class bit for bit, so a trial
// run through n ArssKernels produces the identical TrialOutcome to the
// SlotEngine over n ArssStations — the devirtualized loop just skips
// the vtable and the per-station unique_ptr chasing.
// tests/baseline_kernel_test.cpp locks the pair together.
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>

#include "baselines/arss.hpp"
#include "channel/types.hpp"
#include "support/expects.hpp"

namespace jamelect::kernels {

/// Twin of ArssStation: multiplicative p-update with the threshold
/// escape hatch; elect on the first Single (when elect_on_single).
struct ArssKernel {
  using Params = ArssParams;

  double gamma;
  double p_max;
  bool elect_on_single;
  double p;
  std::int64_t threshold;   // T_v
  std::int64_t counter;     // c_v
  std::int64_t since_idle;  // rounds since this station last sensed Null
  bool done;
  bool leader;

  explicit ArssKernel(const Params& params)
      : gamma(params.gamma),
        p_max(params.p_max),
        elect_on_single(params.elect_on_single),
        p(params.initial_p),
        threshold(1),
        counter(1),
        since_idle(0),
        done(false),
        leader(false) {
    JAMELECT_EXPECTS(params.gamma > 0.0 && params.gamma < 1.0);
    JAMELECT_EXPECTS(params.p_max > 0.0 && params.p_max <= 1.0);
    JAMELECT_EXPECTS(params.initial_p > 0.0 &&
                     params.initial_p <= params.p_max);
  }

  [[nodiscard]] double transmit_probability() const noexcept {
    return done ? 0.0 : p;
  }

  void feedback(bool transmitted, Observation obs) {
    if (done) return;
    JAMELECT_EXPECTS(obs != Observation::kNoSingle);

    if (obs == Observation::kSingle && elect_on_single) {
      done = true;
      leader = transmitted;
      return;
    }

    bool sensed_idle = false;
    if (!transmitted) {
      if (obs == Observation::kNull) {
        p = std::min((1.0 + gamma) * p, p_max);
        threshold = std::max<std::int64_t>(1, threshold - 1);
        sensed_idle = true;
      } else if (obs == Observation::kSingle) {
        p /= 1.0 + gamma;
        threshold = std::max<std::int64_t>(1, threshold - 1);
      }
      // Collision leaves p unchanged this round.
    }
    since_idle = sensed_idle ? 0 : since_idle + 1;

    ++counter;
    if (counter > threshold) {
      counter = 1;
      if (since_idle >= threshold) {
        p /= 1.0 + gamma;
        threshold += 2;
      }
    }
  }
};

static_assert(std::is_trivially_copyable_v<ArssKernel>);

}  // namespace jamelect::kernels
