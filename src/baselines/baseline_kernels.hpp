// POD kernels for the evaluation baselines (protocols/kernels.hpp holds
// the paper-protocol kernels; these live here because baselines link
// against protocols, not the other way round).
//
// Same contract as the paper kernels: each struct is the flat,
// trivially-copyable twin of one virtual baseline class, stepping
// bit-for-bit through the identical observe() transitions so the batch
// and wide Monte-Carlo engines can run Willard, Nakano–Olariu and the
// no-CD sweep without virtual dispatch. The virtual classes remain the
// generic path and the equivalence oracle
// (tests/baseline_kernel_test.cpp locks each pair together).
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>

#include "baselines/nakano_olariu.hpp"
#include "baselines/nocd_election.hpp"
#include "baselines/willard.hpp"
#include "channel/types.hpp"
#include "support/expects.hpp"

namespace jamelect::kernels {

/// Twin of Willard: doubling probe, binary search on u, then the
/// symmetric +-1 polish walk; elect on Single.
struct WillardKernel {
  using Params = WillardParams;

  std::uint8_t phase;  ///< Willard::Phase: 0 doubling, 1 search, 2 polish
  double u;
  double lo;
  double hi;
  bool elected;

  explicit WillardKernel(const Params&)
      : phase(0), u(2.0), lo(0.0), hi(0.0), elected(false) {}

  [[nodiscard]] double broadcast_u() const noexcept { return u; }
  [[nodiscard]] double estimate() const noexcept { return u; }
  [[nodiscard]] bool done() const noexcept { return elected; }

  void step(ChannelState state) noexcept {
    if (elected) return;
    if (state == ChannelState::kSingle) {
      elected = true;
      return;
    }
    switch (phase) {
      case 0:  // doubling probe
        if (state == ChannelState::kNull) {
          lo = std::max(0.0, u / 2.0);
          hi = u;
          phase = 1;
          u = (lo + hi) / 2.0;
        } else {
          u *= 2.0;
          if (u > 4096.0) {
            phase = 2;
            u = 4096.0;
          }
        }
        break;
      case 1:  // binary search
        if (state == ChannelState::kNull) {
          hi = u;
        } else {
          lo = u;
        }
        if (hi - lo <= 1.0) {
          phase = 2;
          u = hi;
        } else {
          u = (lo + hi) / 2.0;
        }
        break;
      default:  // polish walk
        if (state == ChannelState::kNull) {
          u = std::max(0.0, u - 1.0);
        } else {
          u += 1.0;
        }
        break;
    }
  }
};

/// Twin of NakanoOlariu: linear sweep to the first Null, then the
/// symmetric +-1 walk (floored at 1); elect on Single.
struct NakanoOlariuKernel {
  using Params = NakanoOlariuParams;

  bool sweeping;
  double u;
  bool elected;

  explicit NakanoOlariuKernel(const Params&)
      : sweeping(true), u(1.0), elected(false) {}

  [[nodiscard]] double broadcast_u() const noexcept { return u; }
  [[nodiscard]] double estimate() const noexcept { return u; }
  [[nodiscard]] bool done() const noexcept { return elected; }

  void step(ChannelState state) noexcept {
    if (elected) return;
    switch (state) {
      case ChannelState::kSingle:
        elected = true;
        break;
      case ChannelState::kNull:
        if (sweeping) {
          sweeping = false;
        } else {
          u = std::max(1.0, u - 1.0);
        }
        break;
      case ChannelState::kCollision:
        u += 1.0;
        break;
    }
  }
};

/// Twin of NoCdElection: repeated epoch-capped exponent sweep; only
/// Single vs not-Single is consumed (Null and Collision take the same
/// branch, faithful to the no-CD model even under a strong-CD engine).
struct NoCdKernel {
  using Params = NoCdElectionParams;

  std::int64_t repetitions;
  std::int64_t epoch;
  std::int64_t u;
  std::int64_t reps_left;
  bool elected;

  explicit NoCdKernel(const Params& params)
      : repetitions(params.repetitions),
        epoch(1),
        u(1),
        reps_left(params.repetitions),
        elected(false) {
    JAMELECT_EXPECTS(params.repetitions >= 1);
  }

  [[nodiscard]] double broadcast_u() const noexcept {
    return static_cast<double>(u);
  }
  [[nodiscard]] double estimate() const noexcept {
    return static_cast<double>(u);
  }
  [[nodiscard]] bool done() const noexcept { return elected; }

  void step(ChannelState state) noexcept {
    if (elected) return;
    if (state == ChannelState::kSingle) {
      elected = true;
      return;
    }
    if (--reps_left > 0) return;
    reps_left = repetitions;
    ++u;
    const std::int64_t epoch_cap = std::int64_t{1}
                                   << std::min<std::int64_t>(epoch, 40);
    if (u > epoch_cap) {
      ++epoch;
      u = 1;
    }
  }
};

static_assert(std::is_trivially_copyable_v<WillardKernel>);
static_assert(std::is_trivially_copyable_v<NakanoOlariuKernel>);
static_assert(std::is_trivially_copyable_v<NoCdKernel>);

}  // namespace jamelect::kernels
