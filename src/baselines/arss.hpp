// ARSS — the robust MAC protocol of Awerbuch, Richa, Scheideler, Schmid
// & Zhang, "Principles of robust medium access and an application to
// leader election" (ACM Trans. Algorithms 10(4), 2014) — the paper's
// reference [3] and its main comparison point (§1.3).
//
// Each station v keeps an access probability p_v <= p_max = 1/24, a
// threshold T_v and a counter c_v, and in every round (following the
// ARSS/Jade multiplicative-update family):
//   * transmits with probability p_v;
//   * if it LISTENED (transmitters get no feedback in this model):
//       - channel idle  (Null):   p_v <- min((1+gamma) p_v, p_max),
//                                 T_v <- max(1, T_v - 1)
//       - success       (Single): p_v <- p_v / (1+gamma),
//                                 T_v <- max(1, T_v - 1)
//       - collision:              no immediate p_v change
//   * c_v <- c_v + 1; if c_v > T_v: c_v <- 1, and if v sensed no idle
//     channel during the last T_v rounds: p_v <- p_v / (1+gamma) and
//     T_v <- T_v + 2.
// The threshold rule is what breaks sustained all-Collision phases
// (adversarial or overload-induced): during a long busy period every
// station halves down its p_v every T_v rounds, with T_v growing, until
// idle slots reappear.
//
// The multiplicative-update parameter gamma must satisfy
// gamma = O(1/(log T + log log n)); unlike LESK/LESU, the protocol
// needs this GLOBAL knowledge — which is exactly the contrast the paper
// draws. We grant the baseline the true n and T via arss_gamma()
// (favourable to ARSS; DESIGN.md §5). Leader election: the first
// successful transmission elects (in strong-CD the transmitter learns
// it succeeded; under weak-CD ARSS would need its own notification
// machinery, so the E8 comparison runs strong-CD for all contenders).
//
// Proven bound (as cited by our paper): leader election in O(log^4 n)
// for T = O(log n) and constant eps, vs LESK's O(log n).
#pragma once

#include <cstdint>
#include <string>

#include "protocols/station.hpp"
#include "support/state_hash.hpp"

namespace jamelect {

struct ArssParams {
  double gamma = 0.1;
  double p_max = 1.0 / 24.0;
  /// Initial access probability; the TAlg paper allows any value
  /// <= p_max and we start at p_max (fastest ramp-up).
  double initial_p = 1.0 / 24.0;
  /// Leader-election mode: terminate on the first Single. Set false to
  /// run ARSS as the plain throughput MAC (the Single then applies its
  /// p_v / (1+gamma), T_v - 1 update and the protocol continues).
  bool elect_on_single = true;
};

/// gamma = 1 / (2 * (log2 log2 n + log2 T)), floored defensively — the
/// O(1/(log log n + log T)) choice with the true parameters filled in.
[[nodiscard]] double arss_gamma(std::uint64_t n, std::int64_t T);

class ArssStation final : public StationProtocol {
 public:
  explicit ArssStation(ArssParams params);

  [[nodiscard]] double transmit_probability(Slot slot) override;
  void feedback(Slot slot, bool transmitted, Observation obs) override;
  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] bool is_leader() const override { return leader_; }
  [[nodiscard]] std::string name() const override { return "ARSS"; }

  [[nodiscard]] double p() const noexcept { return p_; }
  [[nodiscard]] std::int64_t threshold() const noexcept { return threshold_; }

  [[nodiscard]] const ArssParams& params() const noexcept { return params_; }
  [[nodiscard]] std::uint64_t state_hash() const override {
    return StateHash{}
        .add(params_.gamma)
        .add(params_.p_max)
        .add(params_.initial_p)
        .add(params_.elect_on_single)
        .add(p_)
        .add(threshold_)
        .add(counter_)
        .add(since_idle_)
        .add(done_)
        .add(leader_)
        .value();
  }
  [[nodiscard]] bool state_equals(const StationProtocol& other) const override {
    const auto* o = dynamic_cast<const ArssStation*>(&other);
    return o != nullptr && params_.gamma == o->params_.gamma &&
           params_.p_max == o->params_.p_max &&
           params_.initial_p == o->params_.initial_p &&
           params_.elect_on_single == o->params_.elect_on_single &&
           p_ == o->p_ && threshold_ == o->threshold_ &&
           counter_ == o->counter_ && since_idle_ == o->since_idle_ &&
           done_ == o->done_ && leader_ == o->leader_;
  }

 private:
  ArssParams params_;
  double p_;
  std::int64_t threshold_ = 1;   // T_v
  std::int64_t counter_ = 1;     // c_v
  std::int64_t since_idle_ = 0;  // rounds since v last sensed Null
  bool done_ = false;
  bool leader_ = false;
};

}  // namespace jamelect
