// Willard-style selection resolution (SIAM J. Comput. 15(2), 1986) —
// the classic expected-O(log log n) protocol for a multiple-access
// channel WITH collision detection and WITHOUT an adversary.
//
// Structure (uniform; all state derives from public history):
//   1. Doubling probe: try u = 2^1, 2^2, 2^3, ... (transmit w.p. 2^-u)
//      until the channel is Null — then log2 n is (likely) below u.
//   2. Binary search on u between the last loud probe and the first
//      quiet one, shrinking [lo, hi] until hi - lo <= 1.
//   3. Repeat Broadcast(u) near the located estimate, nudging u by +-1
//      on Collision/Null, until a Single.
//
// Expected slots: O(log log n). This baseline exists to demonstrate the
// paper's §1.3 point that classic estimation-based protocols are NOT
// jamming-robust: every adversarial jam reads as a Collision, so the
// binary search is steered upward and phase 3's symmetric walk diverges
// whenever more than half the slots are jammed (cf. bench E12).
#pragma once

#include <cstdint>
#include <string>

#include "protocols/uniform.hpp"
#include "support/state_hash.hpp"

namespace jamelect {

/// Willard has no tunables; the empty params type keys the batch
/// kernel registry (sim/batch.hpp, baselines/baseline_kernels.hpp).
struct WillardParams {};

class Willard final : public UniformProtocol {
 public:
  Willard();
  explicit Willard(WillardParams) : Willard() {}

  [[nodiscard]] double transmit_probability() override;
  void observe(ChannelState state) override;
  [[nodiscard]] bool elected() const override { return elected_; }
  [[nodiscard]] std::string name() const override { return "Willard"; }
  [[nodiscard]] UniformProtocolPtr clone() const override {
    return std::make_unique<Willard>(*this);
  }
  [[nodiscard]] double estimate() const override { return u_; }

  enum class Phase : std::uint8_t { kDoubling, kBinarySearch, kPolish };
  [[nodiscard]] Phase phase() const noexcept { return phase_; }
  [[nodiscard]] double u() const noexcept { return u_; }

  [[nodiscard]] WillardParams params() const noexcept { return {}; }
  [[nodiscard]] std::uint64_t state_hash() const override {
    return StateHash{}
        .add(static_cast<std::uint64_t>(phase_))
        .add(u_)
        .add(lo_)
        .add(hi_)
        .add(elected_)
        .value();
  }
  [[nodiscard]] bool state_equals(const UniformProtocol& other) const override {
    const auto* o = dynamic_cast<const Willard*>(&other);
    return o != nullptr && phase_ == o->phase_ && u_ == o->u_ &&
           lo_ == o->lo_ && hi_ == o->hi_ && elected_ == o->elected_;
  }

 private:
  Phase phase_ = Phase::kDoubling;
  double u_ = 2.0;     // current probe exponent
  double lo_ = 0.0;    // binary-search bracket
  double hi_ = 0.0;
  bool elected_ = false;
};

}  // namespace jamelect
