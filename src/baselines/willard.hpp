// Willard-style selection resolution (SIAM J. Comput. 15(2), 1986) —
// the classic expected-O(log log n) protocol for a multiple-access
// channel WITH collision detection and WITHOUT an adversary.
//
// Structure (uniform; all state derives from public history):
//   1. Doubling probe: try u = 2^1, 2^2, 2^3, ... (transmit w.p. 2^-u)
//      until the channel is Null — then log2 n is (likely) below u.
//   2. Binary search on u between the last loud probe and the first
//      quiet one, shrinking [lo, hi] until hi - lo <= 1.
//   3. Repeat Broadcast(u) near the located estimate, nudging u by +-1
//      on Collision/Null, until a Single.
//
// Expected slots: O(log log n). This baseline exists to demonstrate the
// paper's §1.3 point that classic estimation-based protocols are NOT
// jamming-robust: every adversarial jam reads as a Collision, so the
// binary search is steered upward and phase 3's symmetric walk diverges
// whenever more than half the slots are jammed (cf. bench E12).
#pragma once

#include <cstdint>
#include <string>

#include "protocols/uniform.hpp"

namespace jamelect {

class Willard final : public UniformProtocol {
 public:
  Willard();

  [[nodiscard]] double transmit_probability() override;
  void observe(ChannelState state) override;
  [[nodiscard]] bool elected() const override { return elected_; }
  [[nodiscard]] std::string name() const override { return "Willard"; }
  [[nodiscard]] UniformProtocolPtr clone() const override {
    return std::make_unique<Willard>(*this);
  }
  [[nodiscard]] double estimate() const override { return u_; }

  enum class Phase : std::uint8_t { kDoubling, kBinarySearch, kPolish };
  [[nodiscard]] Phase phase() const noexcept { return phase_; }
  [[nodiscard]] double u() const noexcept { return u_; }

 private:
  Phase phase_ = Phase::kDoubling;
  double u_ = 2.0;     // current probe exponent
  double lo_ = 0.0;    // binary-search bracket
  double hi_ = 0.0;
  bool elected_ = false;
};

}  // namespace jamelect
