#include "baselines/nocd_election.hpp"

#include <algorithm>

#include "support/expects.hpp"
#include "support/math.hpp"

namespace jamelect {

NoCdElection::NoCdElection(NoCdElectionParams params)
    : params_(params), reps_left_(params.repetitions) {
  JAMELECT_EXPECTS(params.repetitions >= 1);
}

double NoCdElection::transmit_probability() {
  if (elected_) return 0.0;
  return jamelect::transmit_probability(static_cast<double>(u_));
}

void NoCdElection::advance() {
  if (--reps_left_ > 0) return;
  reps_left_ = params_.repetitions;
  ++u_;
  const std::int64_t epoch_cap = std::int64_t{1}
                                 << std::min<std::int64_t>(epoch_, 40);
  if (u_ > epoch_cap) {
    ++epoch_;
    u_ = 1;
  }
}

void NoCdElection::observe(ChannelState state) {
  if (elected_) return;
  // no-CD: the ONLY usable information is Single vs not-Single.
  if (state == ChannelState::kSingle) {
    elected_ = true;
    return;
  }
  advance();  // Null and Collision take the identical branch
}

}  // namespace jamelect
