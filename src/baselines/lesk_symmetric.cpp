#include "baselines/lesk_symmetric.hpp"

#include <algorithm>

#include "support/math.hpp"

namespace jamelect {

double SymmetricLesk::transmit_probability() {
  if (elected_) return 0.0;
  return jamelect::transmit_probability(u_);
}

void SymmetricLesk::observe(ChannelState state) {
  if (elected_) return;
  switch (state) {
    case ChannelState::kNull:
      u_ = std::max(0.0, u_ - 1.0);
      break;
    case ChannelState::kCollision:
      u_ += 1.0;
      break;
    case ChannelState::kSingle:
      elected_ = true;
      break;
  }
}

}  // namespace jamelect
