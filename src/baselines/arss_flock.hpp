// Class-compressed ARSS simulation — the substrate trick that lets the
// E8 comparison reach n = 2^16, where the O(log n) vs O(log^4 n)
// separation becomes dramatic.
//
// ARSS is not uniform (transmitters skip the listener updates), so the
// O(1)-per-slot aggregate engine does not apply. But two observations
// keep the state space tiny:
//   * `since_idle` is GLOBAL: a Null slot means nobody transmitted, so
//     every station sensed it; any other slot advances everyone's
//     counter identically.
//   * p_v only ever takes values min(p0 * (1+gamma)^m, p_max) for
//     integer m, so a station's state is the integer triple
//     (m, T_v, c_v).
// Stations sharing a state form a CLASS; per slot each class draws its
// transmitter count from Binomial(count, p), splits into a transmitter
// and a listener subclass, both apply their deterministic updates, and
// identical results re-merge. The class count stays tiny (transmissions
// are rare), giving O(#classes)/slot ~ O(1)/slot in practice.
// Equivalence with the exact per-station engine is statistically
// verified in tests/arss_flock_test.cpp.
#pragma once

#include <cstdint>

#include "adversary/adversary.hpp"
#include "baselines/arss.hpp"
#include "sim/outcome.hpp"
#include "support/rng.hpp"

namespace jamelect {

struct ArssFlockConfig {
  std::uint64_t n = 2;
  ArssParams params;  ///< elect_on_single must remain true here
  std::int64_t max_slots = 1 << 22;
};

/// Runs the ARSS leader election among `n` stations (strong-CD
/// semantics: the first un-jammed Single elects). Exchangeable
/// population; the winner's identity is symbolic.
[[nodiscard]] TrialOutcome run_arss_flock(const ArssFlockConfig& config,
                                          BoundedAdversary& adversary,
                                          Rng& rng);

}  // namespace jamelect
