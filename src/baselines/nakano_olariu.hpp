// Nakano–Olariu-style uniform leader election (cf. "Uniform leader
// election protocols for radio networks", IEEE TPDS 13(5), 2002) — the
// adversary-free O(log n)-w.h.p. reference point.
//
// Implementation (uniform, in the style of the sweep protocols from
// that line of work; documented deviation — we need a concrete,
// jamming-agnostic O(log n) strawman, not a bit-exact replica):
//   1. Linear sweep: Broadcast with u = 1, 2, 3, ... until the first
//      Null; u is then within O(1) of log2 n w.h.p. (approximately
//      log2 n slots total).
//   2. Symmetric +-1 walk around that estimate until a Single.
// Without jamming the sweep dominates: O(log n) slots w.h.p. Under a
// (T, 1-eps) adversary with eps < 1/2 the walk diverges just like
// Willard's (bench E12/E8): this baseline is deliberately fragile.
#pragma once

#include <cstdint>
#include <string>

#include "protocols/uniform.hpp"
#include "support/state_hash.hpp"

namespace jamelect {

/// NakanoOlariu has no tunables; the empty params type keys the batch
/// kernel registry (sim/batch.hpp, baselines/baseline_kernels.hpp).
struct NakanoOlariuParams {};

class NakanoOlariu final : public UniformProtocol {
 public:
  NakanoOlariu() = default;
  explicit NakanoOlariu(NakanoOlariuParams) {}

  [[nodiscard]] double transmit_probability() override;
  void observe(ChannelState state) override;
  [[nodiscard]] bool elected() const override { return elected_; }
  [[nodiscard]] std::string name() const override { return "NakanoOlariu"; }
  [[nodiscard]] UniformProtocolPtr clone() const override {
    return std::make_unique<NakanoOlariu>(*this);
  }
  [[nodiscard]] double estimate() const override { return u_; }

  [[nodiscard]] bool sweeping() const noexcept { return sweeping_; }
  [[nodiscard]] double u() const noexcept { return u_; }

  [[nodiscard]] NakanoOlariuParams params() const noexcept { return {}; }
  [[nodiscard]] std::uint64_t state_hash() const override {
    return StateHash{}.add(sweeping_).add(u_).add(elected_).value();
  }
  [[nodiscard]] bool state_equals(const UniformProtocol& other) const override {
    const auto* o = dynamic_cast<const NakanoOlariu*>(&other);
    return o != nullptr && sweeping_ == o->sweeping_ && u_ == o->u_ &&
           elected_ == o->elected_;
  }

 private:
  bool sweeping_ = true;
  double u_ = 1.0;
  bool elected_ = false;
};

}  // namespace jamelect
