#include "baselines/arss.hpp"

#include <algorithm>
#include <cmath>

#include "support/expects.hpp"

namespace jamelect {

double arss_gamma(std::uint64_t n, std::int64_t T) {
  JAMELECT_EXPECTS(n >= 2);
  JAMELECT_EXPECTS(T >= 1);
  const double loglogn =
      std::max(1.0, std::log2(std::max(2.0, std::log2(static_cast<double>(n)))));
  const double logT = std::max(1.0, std::log2(static_cast<double>(T)));
  return 1.0 / (2.0 * (loglogn + logT));
}

ArssStation::ArssStation(ArssParams params)
    : params_(params), p_(params.initial_p) {
  JAMELECT_EXPECTS(params.gamma > 0.0 && params.gamma < 1.0);
  JAMELECT_EXPECTS(params.p_max > 0.0 && params.p_max <= 1.0);
  JAMELECT_EXPECTS(params.initial_p > 0.0 && params.initial_p <= params.p_max);
}

double ArssStation::transmit_probability(Slot) {
  return done_ ? 0.0 : p_;
}

void ArssStation::feedback(Slot, bool transmitted, Observation obs) {
  if (done_) return;
  JAMELECT_EXPECTS(obs != Observation::kNoSingle);

  if (obs == Observation::kSingle && params_.elect_on_single) {
    // Strong-CD: everyone (the successful transmitter included) learns
    // of the success; the first Single elects the transmitter.
    done_ = true;
    leader_ = transmitted;
    return;
  }

  bool sensed_idle = false;
  if (!transmitted) {
    // Only listeners receive feedback (the ARSS model); transmitters
    // never adjust p_v based on the slot they transmitted in.
    if (obs == Observation::kNull) {
      p_ = std::min((1.0 + params_.gamma) * p_, params_.p_max);
      threshold_ = std::max<std::int64_t>(1, threshold_ - 1);
      sensed_idle = true;
    } else if (obs == Observation::kSingle) {
      p_ /= 1.0 + params_.gamma;
      threshold_ = std::max<std::int64_t>(1, threshold_ - 1);
    }
    // Collision leaves p_v unchanged this round.
  }
  since_idle_ = sensed_idle ? 0 : since_idle_ + 1;

  ++counter_;
  if (counter_ > threshold_) {
    counter_ = 1;
    if (since_idle_ >= threshold_) {
      // A full T_v window with no idle slot: back off and widen the
      // window — the escape hatch from sustained collisions/jamming.
      p_ /= 1.0 + params_.gamma;
      threshold_ += 2;
    }
  }
}

}  // namespace jamelect
