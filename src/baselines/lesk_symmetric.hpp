// Ablation: LESK with a SYMMETRIC estimator update (+1 on Collision
// instead of +eps/8).
//
// The paper's §2 intuition: an adversary with eps < 1/2 can fabricate
// Collisions in more than half of all slots, so with symmetric steps it
// forces the estimate u to diverge to +infinity and the election never
// completes. The asymmetric eps/8 increment makes one genuine Null
// "neutralize" ~8/eps fabricated Collisions. This class is the control
// arm for bench E12, which shows exactly that divergence.
#pragma once

#include <string>

#include "protocols/uniform.hpp"

namespace jamelect {

class SymmetricLesk final : public UniformProtocol {
 public:
  SymmetricLesk() = default;

  [[nodiscard]] double transmit_probability() override;
  void observe(ChannelState state) override;
  [[nodiscard]] bool elected() const override { return elected_; }
  [[nodiscard]] std::string name() const override { return "LESK-symmetric"; }
  [[nodiscard]] UniformProtocolPtr clone() const override {
    return std::make_unique<SymmetricLesk>(*this);
  }
  [[nodiscard]] double estimate() const override { return u_; }

  [[nodiscard]] double u() const noexcept { return u_; }

 private:
  double u_ = 0.0;
  bool elected_ = false;
};

}  // namespace jamelect
