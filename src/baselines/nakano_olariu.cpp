#include "baselines/nakano_olariu.hpp"

#include <algorithm>

#include "support/math.hpp"

namespace jamelect {

double NakanoOlariu::transmit_probability() {
  if (elected_) return 0.0;
  return jamelect::transmit_probability(u_);
}

void NakanoOlariu::observe(ChannelState state) {
  if (elected_) return;
  switch (state) {
    case ChannelState::kSingle:
      elected_ = true;
      break;
    case ChannelState::kNull:
      if (sweeping_) {
        sweeping_ = false;  // first Null ends the sweep; u ~ log2 n
      } else {
        u_ = std::max(1.0, u_ - 1.0);
      }
      break;
    case ChannelState::kCollision:
      u_ += 1.0;
      break;
  }
}

}  // namespace jamelect
