#include "service/json.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/manifest.hpp"  // json_escape

namespace jamelect::service {

namespace {

/// Recursive-descent parser over one document.
class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Json> run() {
    skip_ws();
    auto v = value(0);
    if (!v.has_value()) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const std::string& reason) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = "byte " + std::to_string(pos_) + ": " + reason;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Json> value(int depth) {
    if (depth > Json::kMaxDepth) {
      fail("nesting deeper than kMaxDepth");
      return std::nullopt;
    }
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case 'n':
        if (literal("null")) return Json();
        break;
      case 't':
        if (literal("true")) return Json(true);
        break;
      case 'f':
        if (literal("false")) return Json(false);
        break;
      case '"': return string_value();
      case '[': return array_value(depth);
      case '{': return object_value(depth);
      default: return number_value();
    }
    fail("unrecognized token");
    return std::nullopt;
  }

  std::optional<Json> string_value() {
    std::string out;
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Json(std::move(out));
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) break;
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
              return std::nullopt;
            }
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogate pairs land as
          // two 3-byte sequences — fine for the service's ASCII keys).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("unknown escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> number_value() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("expected a number");
      return std::nullopt;
    }
    const std::string tok(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Json(static_cast<std::int64_t>(v));
      }
      // Integer overflowing int64 falls through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("malformed number '" + tok + "'");
      return std::nullopt;
    }
    return Json(d);
  }

  std::optional<Json> array_value(int depth) {
    ++pos_;  // '['
    Json::Array items;
    skip_ws();
    if (eat(']')) return Json(std::move(items));
    for (;;) {
      skip_ws();
      auto v = value(depth + 1);
      if (!v.has_value()) return std::nullopt;
      items.push_back(std::move(*v));
      skip_ws();
      if (eat(']')) return Json(std::move(items));
      if (!eat(',')) {
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<Json> object_value(int depth) {
    ++pos_;  // '{'
    Json::Object members;
    skip_ws();
    if (eat('}')) return Json(std::move(members));
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected string key in object");
        return std::nullopt;
      }
      auto key = string_value();
      if (!key.has_value()) return std::nullopt;
      skip_ws();
      if (!eat(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      skip_ws();
      auto v = value(depth + 1);
      if (!v.has_value()) return std::nullopt;
      members.insert_or_assign(key->as_string(), std::move(*v));
      skip_ws();
      if (eat('}')) return Json(std::move(members));
      if (!eat(',')) {
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

void Json::set(const std::string& key, Json value) {
  type_ = Type::kObject;
  object_.insert_or_assign(key, std::move(value));
}

void Json::push_back(Json value) {
  type_ = Type::kArray;
  array_.push_back(std::move(value));
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(int_));
      out += buf;
      break;
    }
    case Type::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", double_);
      out += buf;
      break;
    }
    case Type::kString:
      out += '"';
      out += obs::json_escape(string_);
      out += '"';
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& v : array_) {
        if (!first) out += ',';
        v.dump_to(out);
        first = false;
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ',';
        out += '"';
        out += obs::json_escape(k);
        out += "\":";
        v.dump_to(out);
        first = false;
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  if (error != nullptr) error->clear();
  return Parser(text, error).run();
}

}  // namespace jamelect::service
