// Thin POSIX TCP wrappers for the sweep daemon and its clients.
//
// Everything here is loopback-grade plumbing: RAII fds, bind/listen
// with ephemeral-port discovery (port 0 + getsockname, which is what
// lets tests and the smoke script run without port collisions),
// poll-based timeouts so blocking loops can re-check the cooperative
// shutdown flag, and a buffered newline reader for the NDJSON line
// protocol. No TLS, no non-blocking state machines — the service
// targets a trusted host boundary (docs/SERVICE.md §Security).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace jamelect::service {

/// Move-only owning socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (port 0 = ephemeral); reports the
/// actually-bound port via `actual_port`. Invalid socket + `error` set
/// on failure.
[[nodiscard]] Socket tcp_listen(const std::string& host, std::uint16_t port,
                                std::uint16_t* actual_port,
                                std::string* error);

/// Blocking connect. Invalid socket + `error` set on failure.
[[nodiscard]] Socket tcp_connect(const std::string& host, std::uint16_t port,
                                 std::string* error);

/// accept() with a poll timeout. Returns the connection fd, -1 on
/// timeout or EINTR (caller re-checks its stop condition), -2 on fatal
/// listener error.
[[nodiscard]] int accept_with_timeout(int listen_fd, int timeout_ms);

/// Writes the whole buffer; false on error/EPIPE (SIGPIPE suppressed
/// via MSG_NOSIGNAL).
[[nodiscard]] bool send_all(int fd, std::string_view data);

/// Buffered reader for newline-delimited protocols; also feeds the
/// HTTP shim (read_exact for Content-Length bodies).
class LineReader {
 public:
  /// Reads up to and including the next '\n'; the returned line has the
  /// trailing '\n' (and '\r') stripped. Returns nullopt on peer close,
  /// error, or timeout (distinguish with timed_out()). Lines longer
  /// than `max_line` are an error (oversized-frame guard).
  [[nodiscard]] std::optional<std::string> read_line(int fd, int timeout_ms);

  /// Reads exactly `count` bytes (after any buffered remainder).
  [[nodiscard]] std::optional<std::string> read_exact(int fd,
                                                      std::size_t count,
                                                      int timeout_ms);

  [[nodiscard]] bool timed_out() const noexcept { return timed_out_; }

  static constexpr std::size_t max_line = 1 << 20;

 private:
  /// Pulls more bytes into buf_; false on close/error/timeout.
  [[nodiscard]] bool fill(int fd, int timeout_ms);

  std::string buf_;
  std::size_t pos_ = 0;
  bool timed_out_ = false;
};

}  // namespace jamelect::service
