// SocketServer — the daemon's transport: one TCP listener speaking the
// newline-delimited JSON protocol, with an HTTP/1.1 shim detected per
// connection (docs/SERVICE.md).
//
// Line protocol (persistent connection, one JSON object per line):
//   {"op":"ping"}
//   {"op":"sweep","params":{...},"wait":true}
//   {"op":"status","id":"j7"}
//   {"op":"metrics"}
// A waiting sweep streams {"type":"heartbeat",...} lines while the job
// runs, then one {"type":"result",...}. Backpressure surfaces as
// {"type":"error","code":429,...}.
//
// HTTP shim (one request per connection, Connection: close):
//   POST /sweep          body = params object       -> result envelope
//   GET  /status/<id>                               -> job status
//   GET  /metrics                                   -> Prometheus text
//
// Threading: one accept thread, one (detached, counted) thread per
// connection — loopback-scale, matching the loadgen's persistent-
// connection model where connection count == client concurrency.
// stop() closes the listener, flags every connection loop, and waits
// for the live-connection count to reach zero; connection loops poll
// with short timeouts so that wait is bounded. Stop the SweepService
// FIRST (it resolves every job, releasing waiting connections), then
// the server.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "service/net.hpp"
#include "service/service.hpp"

namespace jamelect::service {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is reported by port() after start().
  std::uint16_t port = 0;
  /// Cadence of line-protocol heartbeat lines while a sweep runs.
  int heartbeat_ms = 500;
  /// Poll slice for blocking reads/accepts — the bound on how stale a
  /// stop() check can be.
  int idle_poll_ms = 200;
};

class SocketServer {
 public:
  SocketServer(SweepService& service, ServerConfig config);
  ~SocketServer();  // stop()

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and starts accepting. False + `error` on failure.
  [[nodiscard]] bool start(std::string* error);

  /// The bound port (after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Live connection count (tests / introspection).
  [[nodiscard]] std::size_t connections() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  void stop();

 private:
  void accept_loop();
  void handle_connection(int fd);
  /// One line-protocol request; false = close the connection.
  [[nodiscard]] bool handle_line(int fd, const std::string& line);
  /// Runs a submitted sweep to its response line(s); false = close.
  [[nodiscard]] bool respond_sweep(int fd, const SweepService::Submit& sub,
                                   bool wait);
  /// Sends a result payload, timing the send and reporting it to the
  /// service as the request's `respond` phase.
  [[nodiscard]] bool send_result(int fd, const std::string& payload,
                                 obs::TraceId trace);
  void handle_http(int fd, LineReader& reader,
                   const std::string& request_line);

  SweepService& service_;
  ServerConfig config_;
  Socket listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> active_{0};
  std::thread accept_thread_;
};

}  // namespace jamelect::service
