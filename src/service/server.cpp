#include "service/server.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <unistd.h>
#include <utility>

namespace jamelect::service {

namespace {

std::string error_line(int code, const std::string& message) {
  Json out;
  out.set_object();
  out.set("type", "error");
  out.set("code", code);
  out.set("error", message);
  return out.dump() + "\n";
}

/// Server-side timing breakdown, echoed beside the result so clients
/// see where their request's wall clock went.
std::string timing_json(const RequestTiming& t) {
  return "{\"admission_us\":" + std::to_string(t.admission_us) +
         ",\"cache_probe_us\":" + std::to_string(t.cache_probe_us) +
         ",\"queue_us\":" + std::to_string(t.queue_us) +
         ",\"compute_us\":" + std::to_string(t.compute_us) +
         ",\"serialize_us\":" + std::to_string(t.serialize_us) + "}";
}

/// Result lines splice the cached result bytes in verbatim — the
/// envelope is built by hand so the result member stays bit-identical
/// to what the cache stores. The request's trace id (when the client
/// sent one) and the server-side timing breakdown ride the envelope.
std::string result_line(const std::string& id, const std::string& cache,
                        std::int64_t micros, obs::TraceId trace,
                        const RequestTiming& timing,
                        const std::string& result_json) {
  std::string out = "{\"type\":\"result\",\"id\":\"" + id + "\",\"cache\":\"" +
                    cache + "\",\"micros\":" + std::to_string(micros);
  if (trace.valid()) out += ",\"trace\":\"" + trace.hex() + "\"";
  out += ",\"timing\":" + timing_json(timing) +
         ",\"result\":" + result_json + "}\n";
  return out;
}

std::string status_json(const JobStatus& status) {
  Json out;
  out.set_object();
  out.set("type", "status");
  out.set("id", status.id);
  out.set("key", status.key);
  out.set("state", job_state_name(status.state));
  out.set("waiters", static_cast<std::uint64_t>(status.waiters));
  out.set("submitted_us", status.submitted_us);
  out.set("started_us", status.started_us);
  out.set("finished_us", status.finished_us);
  if (!status.error.empty()) out.set("error", status.error);
  return out.dump();
}

std::string http_response(int code, const char* reason,
                          const std::string& content_type,
                          const std::string& body,
                          const std::string& extra_headers = "") {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n" + extra_headers + "\r\n" +
                    body;
  return out;
}

/// Prometheus metric name: "svc.latency_us" -> "jamelect_svc_latency_us".
std::string prometheus_name(const std::string& name) {
  std::string out = "jamelect_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_text(const obs::MetricsSnapshot& snap) {
  std::string out;
  char buf[64];
  for (const auto& [name, value] : snap.counters) {
    out += prometheus_name(name) + "_total " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out += prometheus_name(name) + " " + buf + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string base = prometheus_name(name);
    out += base + "_count " + std::to_string(h.count) + "\n";
    out += base + "_sum " + std::to_string(h.sum) + "\n";
    out += base + "_p50 " + std::to_string(histogram_quantile(h, 0.50)) + "\n";
    out += base + "_p99 " + std::to_string(histogram_quantile(h, 0.99)) + "\n";
  }
  return out;
}

}  // namespace

SocketServer::SocketServer(SweepService& service, ServerConfig config)
    : service_(service), config_(std::move(config)) {}

SocketServer::~SocketServer() { stop(); }

bool SocketServer::start(std::string* error) {
  listener_ = tcp_listen(config_.host, config_.port, &port_, error);
  if (!listener_.valid()) return false;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void SocketServer::stop() {
  if (stop_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  // Connection loops poll with idle_poll_ms slices and re-check stop_,
  // so this wait is bounded by one slice plus one in-flight response.
  while (active_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void SocketServer::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    const int fd = accept_with_timeout(listener_.fd(), config_.idle_poll_ms);
    if (fd == -1) continue;  // timeout / EINTR: re-check stop_
    if (fd == -2) return;    // listener died (stop() closed it)
    active_.fetch_add(1, std::memory_order_acq_rel);
    std::thread([this, fd] {
      handle_connection(fd);
      ::close(fd);
      active_.fetch_sub(1, std::memory_order_acq_rel);
    }).detach();
  }
}

void SocketServer::handle_connection(int fd) {
  LineReader reader;
  bool first = true;
  while (!stop_.load(std::memory_order_relaxed)) {
    auto line = reader.read_line(fd, config_.idle_poll_ms);
    if (!line.has_value()) {
      if (reader.timed_out()) continue;  // idle: re-check stop_
      return;                            // peer closed / error / oversize
    }
    if (first && (line->rfind("GET ", 0) == 0 ||
                  line->rfind("POST ", 0) == 0 ||
                  line->rfind("HEAD ", 0) == 0 ||
                  line->rfind("PUT ", 0) == 0 ||
                  line->rfind("DELETE ", 0) == 0)) {
      handle_http(fd, reader, *line);
      return;  // Connection: close
    }
    first = false;
    if (line->empty()) continue;
    if (!handle_line(fd, *line)) return;
  }
}

bool SocketServer::handle_line(int fd, const std::string& line) {
  std::string parse_error;
  const auto doc = Json::parse(line, &parse_error);
  if (!doc.has_value() || !doc->is_object()) {
    return send_all(fd, error_line(400, "bad JSON: " + parse_error));
  }
  const Json* op = doc->find("op");
  const std::string op_name = op != nullptr ? op->as_string() : "";

  if (op_name == "ping") {
    return send_all(fd, "{\"type\":\"pong\"}\n");
  }
  if (op_name == "metrics") {
    Json out;
    out.set_object();
    out.set("type", "metrics");
    out.set("metrics", service_.metrics_json());
    return send_all(fd, out.dump() + "\n");
  }
  if (op_name == "status") {
    const Json* id = doc->find("id");
    if (id == nullptr || !id->is_string()) {
      return send_all(fd, error_line(400, "status needs an \"id\""));
    }
    const auto status = service_.status(id->as_string());
    if (!status.has_value()) {
      return send_all(fd, error_line(404, "unknown job id"));
    }
    return send_all(fd, status_json(*status) + "\n");
  }
  if (op_name == "sweep") {
    const Json* params = doc->find("params");
    if (params == nullptr) {
      return send_all(fd, error_line(400, "sweep needs a \"params\" object"));
    }
    std::string why;
    const auto request =
        SweepRequest::from_json(*params, service_.config().limits, &why);
    if (!request.has_value()) {
      return send_all(fd, error_line(400, why));
    }
    // Optional request lineage: an envelope-level field (NOT inside
    // params — params feed the cache key, and identical sweeps with
    // different trace ids must still hit the same cache entry).
    obs::TraceId trace{};
    if (const Json* t = doc->find("trace"); t != nullptr) {
      trace = obs::TraceId::parse(t->as_string());
      if (!trace.valid()) {
        return send_all(
            fd, error_line(400, "\"trace\" must be 32 hex chars (nonzero)"));
      }
    }
    const Json* wait = doc->find("wait");
    const auto sub = service_.submit(*request, trace);
    return respond_sweep(fd, sub, wait == nullptr || wait->as_bool(true));
  }
  return send_all(fd, error_line(400, "unknown op '" + op_name + "'"));
}

bool SocketServer::send_result(int fd, const std::string& payload,
                               obs::TraceId trace) {
  const std::int64_t t0 = service_.now_us();
  const bool ok = send_all(fd, payload);
  service_.note_respond(trace, service_.now_us() - t0);
  return ok;
}

bool SocketServer::respond_sweep(int fd, const SweepService::Submit& sub,
                                 bool wait) {
  using Outcome = SweepService::Submit::Outcome;
  switch (sub.outcome) {
    case Outcome::kInvalid:
      return send_all(fd, error_line(400, sub.error));
    case Outcome::kRejected:
      return send_all(fd, error_line(429, sub.error));
    case Outcome::kCached:
      return send_result(fd, result_line("", "hit", 0, sub.trace, sub.timing,
                                         sub.result_json),
                         sub.trace);
    case Outcome::kAccepted:
    case Outcome::kCoalesced: break;
  }
  const std::string cache =
      sub.outcome == Outcome::kCoalesced ? "coalesced" : "miss";
  Json ack;
  ack.set_object();
  ack.set("type", "ack");
  ack.set("id", sub.id);
  ack.set("key", sub.key);
  ack.set("cache", cache);
  if (sub.trace.valid()) ack.set("trace", sub.trace.hex());
  if (!send_all(fd, ack.dump() + "\n")) return false;
  if (!wait) return true;

  const std::int64_t t0 = service_.now_us();
  for (;;) {
    const auto status = service_.wait(sub.id, config_.heartbeat_ms);
    if (!status.has_value()) {
      return send_all(fd, error_line(500, "job record evicted"));
    }
    if (status->state == JobState::kDone) {
      return send_result(fd,
                         result_line(sub.id, cache, service_.now_us() - t0,
                                     sub.trace, status->timing,
                                     status->result_json),
                         sub.trace);
    }
    if (status->state == JobState::kFailed) {
      return send_all(fd, error_line(500, status->error));
    }
    if (stop_.load(std::memory_order_relaxed)) {
      return send_all(fd, error_line(503, "server shutting down"));
    }
    Json hb;
    hb.set_object();
    hb.set("type", "heartbeat");
    hb.set("id", sub.id);
    hb.set("state", job_state_name(status->state));
    hb.set("elapsed_ms", (service_.now_us() - t0) / 1000);
    if (!send_all(fd, hb.dump() + "\n")) return false;
  }
}

void SocketServer::handle_http(int fd, LineReader& reader,
                               const std::string& request_line) {
  // Request line: METHOD SP target SP version.
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 = request_line.find(' ', sp1 + 1);
  const std::string method = request_line.substr(0, sp1);
  const std::string target =
      sp2 == std::string::npos ? request_line.substr(sp1 + 1)
                               : request_line.substr(sp1 + 1, sp2 - sp1 - 1);

  // Headers: only Content-Length matters to the shim.
  std::size_t content_length = 0;
  for (;;) {
    auto header = reader.read_line(fd, config_.idle_poll_ms);
    if (!header.has_value()) {
      if (reader.timed_out() && !stop_.load(std::memory_order_relaxed)) {
        continue;
      }
      return;
    }
    if (header->empty()) break;
    const std::size_t colon = header->find(':');
    if (colon == std::string::npos) continue;
    std::string name = header->substr(0, colon);
    for (char& c : name) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (name == "content-length") {
      std::size_t pos = colon + 1;
      while (pos < header->size() && (*header)[pos] == ' ') ++pos;
      content_length = static_cast<std::size_t>(
          std::strtoull(header->c_str() + pos, nullptr, 10));
    }
  }

  if (method == "POST" && target == "/sweep") {
    std::string body;
    if (content_length > 0) {
      auto read = reader.read_exact(fd, content_length, 5000);
      if (!read.has_value()) return;
      body = std::move(*read);
    }
    std::string parse_error;
    const auto doc = Json::parse(body, &parse_error);
    if (!doc.has_value()) {
      (void)send_all(fd, http_response(400, "Bad Request", "application/json",
                                       error_line(400, parse_error)));
      return;
    }
    // Accept {"params":{...}} envelopes or a bare params object. The
    // optional "trace" field is envelope-only (a bare params object
    // cannot carry one — SweepRequest rejects unknown fields).
    const Json* params = doc->find("params");
    obs::TraceId trace{};
    if (params != nullptr) {
      if (const Json* t = doc->find("trace"); t != nullptr) {
        trace = obs::TraceId::parse(t->as_string());
        if (!trace.valid()) {
          (void)send_all(
              fd, http_response(400, "Bad Request", "application/json",
                                error_line(
                                    400,
                                    "\"trace\" must be 32 hex chars "
                                    "(nonzero)")));
          return;
        }
      }
    }
    if (params == nullptr) params = &*doc;
    std::string why;
    const auto request =
        SweepRequest::from_json(*params, service_.config().limits, &why);
    if (!request.has_value()) {
      (void)send_all(fd, http_response(400, "Bad Request", "application/json",
                                       error_line(400, why)));
      return;
    }
    const auto sub = service_.submit(*request, trace);
    using Outcome = SweepService::Submit::Outcome;
    if (sub.outcome == Outcome::kInvalid) {
      (void)send_all(fd, http_response(400, "Bad Request", "application/json",
                                       error_line(400, sub.error)));
      return;
    }
    if (sub.outcome == Outcome::kRejected) {
      (void)send_all(fd,
                     http_response(429, "Too Many Requests",
                                   "application/json",
                                   error_line(429, sub.error),
                                   "Retry-After: 1\r\n"));
      return;
    }
    if (sub.outcome == Outcome::kCached) {
      (void)send_result(fd,
                        http_response(200, "OK", "application/json",
                                      result_line("", "hit", 0, sub.trace,
                                                  sub.timing,
                                                  sub.result_json)),
                        sub.trace);
      return;
    }
    const std::string cache =
        sub.outcome == Outcome::kCoalesced ? "coalesced" : "miss";
    const std::int64_t t0 = service_.now_us();
    const auto status = service_.wait(sub.id);
    if (!status.has_value() || status->state != JobState::kDone) {
      const std::string why_failed =
          status.has_value() ? status->error : "job record evicted";
      (void)send_all(fd,
                     http_response(500, "Internal Server Error",
                                   "application/json",
                                   error_line(500, why_failed)));
      return;
    }
    (void)send_result(fd,
                      http_response(200, "OK", "application/json",
                                    result_line(sub.id, cache,
                                                service_.now_us() - t0,
                                                sub.trace, status->timing,
                                                status->result_json)),
                      sub.trace);
    return;
  }

  if (method == "GET" && target.rfind("/status/", 0) == 0) {
    const std::string id = target.substr(8);
    const auto status = service_.status(id);
    if (!status.has_value()) {
      (void)send_all(fd, http_response(404, "Not Found", "application/json",
                                       error_line(404, "unknown job id")));
      return;
    }
    (void)send_all(fd, http_response(200, "OK", "application/json",
                                     status_json(*status) + "\n"));
    return;
  }

  if (method == "GET" && target == "/metrics") {
    const auto snap = obs::MetricsRegistry::global().aggregate();
    (void)send_all(
        fd, http_response(200, "OK", "text/plain; version=0.0.4",
                          prometheus_text(snap)));
    return;
  }

  (void)send_all(fd, http_response(404, "Not Found", "application/json",
                                   error_line(404, "no such endpoint")));
}

}  // namespace jamelect::service
