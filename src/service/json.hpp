// Minimal JSON value: parse, navigate, canonical dump.
//
// The sweep service speaks newline-delimited JSON (docs/SERVICE.md), so
// it needs a real parser, not just the writer the telemetry layer uses.
// This one is deliberately small — stdlib-only recursive descent over
// the RFC 8259 grammar — and tuned for the service's two invariants:
//
//  * Objects store members in a std::map, so dump() emits keys in byte
//    order: the output is CANONICAL. dump(parse(dump(x))) == dump(x),
//    which is what lets cached result envelopes round-trip through disk
//    byte-identically (result_cache.cpp).
//  * Numbers remember whether they were integral. Integers in int64
//    range print exactly; other numbers print as %.17g, which
//    round-trips doubles exactly. Both are deterministic.
//
// Depth is capped (kMaxDepth) so hostile input can't overflow the
// stack; parse failures return nullopt with a position-tagged message.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace jamelect::service {

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kInt,     ///< number that lexed as an integer in int64 range
    kDouble,  ///< any other number
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  /// Nesting cap for parse(); deeper input is a parse error.
  static constexpr int kMaxDepth = 64;

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(std::int64_t i) : type_(Type::kInt), int_(i) {}
  Json(int i) : Json(static_cast<std::int64_t>(i)) {}
  Json(std::uint64_t u)
      : type_(Type::kInt), int_(static_cast<std::int64_t>(u)) {}
  Json(double d) : type_(Type::kDouble), double_(d) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  [[nodiscard]] bool is_int() const noexcept { return type_ == Type::kInt; }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  // Typed accessors; defaults returned on type mismatch (the service
  // validates shapes explicitly, these never throw).
  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const noexcept {
    if (type_ == Type::kInt) return int_;
    if (type_ == Type::kDouble) return static_cast<std::int64_t>(double_);
    return fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const noexcept {
    if (type_ == Type::kDouble) return double_;
    if (type_ == Type::kInt) return static_cast<double>(int_);
    return fallback;
  }
  [[nodiscard]] const std::string& as_string() const noexcept {
    return string_;  // empty unless kString
  }
  [[nodiscard]] const Array& as_array() const noexcept { return array_; }
  [[nodiscard]] const Object& as_object() const noexcept { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;

  /// Mutable object member access (creates the member; value must be an
  /// object — call on a default-constructed Json after set_object()).
  void set(const std::string& key, Json value);
  void set_object() { type_ = Type::kObject; }
  void push_back(Json value);
  void set_array() { type_ = Type::kArray; }

  /// Canonical single-line serialization (see file comment).
  [[nodiscard]] std::string dump() const;

  /// Parses one JSON document (surrounding whitespace allowed, trailing
  /// garbage rejected). On failure returns nullopt and, if `error` is
  /// non-null, a "byte <pos>: <reason>" message.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text,
                                                 std::string* error = nullptr);

 private:
  void dump_to(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace jamelect::service
