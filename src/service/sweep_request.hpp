// SweepRequest — one validated, canonicalized parameter-sweep job.
//
// A request names a protocol, an engine, a network size, an adversary
// and a Monte-Carlo budget; the service canonicalizes it into a
// RunManifest-style config map (every field rendered with
// obs::canonical_number) whose obs::config_fingerprint — which also
// covers the build's git SHA — is the result-cache key. Two requests
// with the same key are THE SAME run by the reproducibility contract
// (trial k derives all randomness from mix64(seed, k)), so a cached
// result is bit-identical to recomputation.
//
// Parsing rejects unknown fields: an ignored field would alias two
// different-looking requests onto one cache key.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "service/json.hpp"

namespace jamelect::service {

/// Validation ceilings, so one hostile request can't pin a worker for
/// hours. Raise them for trusted deployments via ServiceConfig.
struct SweepLimits {
  std::size_t max_trials = 1'000'000;
  std::int64_t max_slots = 10'000'000;
  std::uint64_t max_n = 1u << 22;
};

struct SweepRequest {
  std::string protocol = "lesk";     ///< lesk | lesu | uniform
  std::string engine = "aggregate";  ///< aggregate | hybrid | cohort
  std::uint64_t n = 1024;
  double eps = 0.5;      ///< protocol eps (lesk) and adversary eps
  double u = -1.0;       ///< uniform: broadcast exponent; -1 -> log2(n)
  double c = 6.0;        ///< lesu t0 constant
  std::string adversary = "none";  ///< an adversary_policy_names() entry
  std::int64_t T = 64;
  double q = 0.0;            ///< bernoulli jam probability (0 -> 1-eps)
  std::int64_t period = 0;   ///< periodic period (0 -> T)
  std::int64_t burst = -1;   ///< periodic burst (-1 -> floor((1-eps)T))
  std::int64_t on = 1;       ///< pulse on-length
  std::int64_t off = 1;      ///< pulse off-length
  std::size_t trials = 64;
  std::uint64_t seed = 1;
  std::int64_t max_slots = 100'000;
  std::size_t batch = 64;  ///< SoA lanes per work item; 0 = sequential
  /// Random-stream backend: "xoshiro" (default) or "aes_ctr"
  /// (counter-keyed streams; sim/batch.hpp RngBackend). The two
  /// backends are distinct result universes, so — unlike batch — this
  /// field IS part of the cache key.
  std::string rng = "xoshiro";

  /// Parses the `params` object of a sweep request. Returns nullopt and
  /// an explanation on malformed shape, unknown field, or a value
  /// outside `limits`.
  [[nodiscard]] static std::optional<SweepRequest> from_json(
      const Json& params, const SweepLimits& limits, std::string* error);

  /// Re-validates an already-constructed request (from_json calls this).
  [[nodiscard]] bool validate(const SweepLimits& limits,
                              std::string* error) const;

  /// The RunManifest-style canonical config map: every field, stringly,
  /// numerics via obs::canonical_number, plus the build git SHA.
  [[nodiscard]] std::map<std::string, std::string> config_map() const;

  /// obs::config_fingerprint(config_map()) — the result-cache key.
  [[nodiscard]] std::string cache_key() const;

  /// The request as a canonical JSON object (for envelopes and logs).
  [[nodiscard]] Json to_json() const;
};

}  // namespace jamelect::service
