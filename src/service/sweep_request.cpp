#include "service/sweep_request.hpp"

#include <algorithm>
#include <vector>

#include "obs/build_info.hpp"
#include "obs/manifest.hpp"
#include "sim/adversary_spec.hpp"

namespace jamelect::service {

namespace {

bool is_one_of(const std::string& v,
               std::initializer_list<const char*> options) {
  for (const char* o : options) {
    if (v == o) return true;
  }
  return false;
}

}  // namespace

std::optional<SweepRequest> SweepRequest::from_json(const Json& params,
                                                    const SweepLimits& limits,
                                                    std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (!params.is_object()) return fail("params must be a JSON object");

  SweepRequest req;
  for (const auto& [key, value] : params.as_object()) {
    const auto want_string = [&]() { return value.is_string(); };
    const auto want_number = [&]() { return value.is_number(); };
    if (key == "protocol" && want_string()) {
      req.protocol = value.as_string();
    } else if (key == "engine" && want_string()) {
      req.engine = value.as_string();
    } else if (key == "adversary" && want_string()) {
      req.adversary = value.as_string();
    } else if (key == "n" && want_number()) {
      req.n = static_cast<std::uint64_t>(value.as_int());
    } else if (key == "eps" && want_number()) {
      req.eps = value.as_double();
    } else if (key == "u" && want_number()) {
      req.u = value.as_double();
    } else if (key == "c" && want_number()) {
      req.c = value.as_double();
    } else if (key == "T" && want_number()) {
      req.T = value.as_int();
    } else if (key == "q" && want_number()) {
      req.q = value.as_double();
    } else if (key == "period" && want_number()) {
      req.period = value.as_int();
    } else if (key == "burst" && want_number()) {
      req.burst = value.as_int();
    } else if (key == "on" && want_number()) {
      req.on = value.as_int();
    } else if (key == "off" && want_number()) {
      req.off = value.as_int();
    } else if (key == "trials" && want_number()) {
      if (value.as_int() < 0) return fail("trials must be >= 1");
      req.trials = static_cast<std::size_t>(value.as_int());
    } else if (key == "seed" && want_number()) {
      req.seed = static_cast<std::uint64_t>(value.as_int());
    } else if (key == "max_slots" && want_number()) {
      req.max_slots = value.as_int();
    } else if (key == "batch" && want_number()) {
      if (value.as_int() < 0) return fail("batch must be >= 0");
      req.batch = static_cast<std::size_t>(value.as_int());
    } else if (key == "rng" && want_string()) {
      req.rng = value.as_string();
    } else if (is_one_of(key, {"protocol", "engine", "adversary", "n", "eps",
                               "u", "c", "T", "q", "period", "burst", "on",
                               "off", "trials", "seed", "max_slots", "batch",
                               "rng"})) {
      return fail("field '" + key + "' has the wrong type");
    } else {
      // Unknown fields are rejected, not ignored: an ignored field
      // would let two different-looking requests share a cache key.
      return fail("unknown field '" + key + "'");
    }
  }
  if (!req.validate(limits, error)) return std::nullopt;
  return req;
}

bool SweepRequest::validate(const SweepLimits& limits,
                            std::string* error) const {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!is_one_of(protocol, {"lesk", "lesu", "uniform"})) {
    return fail("unknown protocol '" + protocol +
                "' (expected lesk|lesu|uniform)");
  }
  if (!is_one_of(engine, {"aggregate", "hybrid", "cohort"})) {
    return fail("unknown engine '" + engine +
                "' (expected aggregate|hybrid|cohort)");
  }
  const auto& policies = adversary_policy_names();
  if (std::find(policies.begin(), policies.end(), adversary) ==
      policies.end()) {
    return fail("unknown adversary policy '" + adversary + "'");
  }
  if (n < 1 || n > limits.max_n) return fail("n out of range");
  if (!(eps > 0.0) || eps > 1.0) return fail("eps must be in (0, 1]");
  if (protocol == "uniform" && u != -1.0 && u < 0.0) {
    return fail("u must be >= 0 (or -1 for log2(n))");
  }
  if (!(c > 0.0)) return fail("c must be > 0");
  if (T < 1) return fail("T must be >= 1");
  if (q < 0.0 || q > 1.0) return fail("q must be in [0, 1]");
  if (trials < 1 || trials > limits.max_trials) {
    return fail("trials out of range (1.." +
                std::to_string(limits.max_trials) + ")");
  }
  if (max_slots < 1 || max_slots > limits.max_slots) {
    return fail("max_slots out of range (1.." +
                std::to_string(limits.max_slots) + ")");
  }
  if (!is_one_of(rng, {"xoshiro", "aes_ctr"})) {
    return fail("unknown rng backend '" + rng +
                "' (expected xoshiro|aes_ctr)");
  }
  return true;
}

std::map<std::string, std::string> SweepRequest::config_map() const {
  using obs::canonical_number;
  std::map<std::string, std::string> config;
  config["protocol"] = protocol;
  config["engine"] = engine;
  config["adversary"] = adversary;
  // Integral fields format exactly via to_string (a 2^53 cast ceiling
  // would silently alias large seeds); only true doubles go through
  // canonical_number.
  config["n"] = std::to_string(n);
  config["eps"] = canonical_number(eps);
  config["u"] = canonical_number(u);
  config["c"] = canonical_number(c);
  config["T"] = std::to_string(T);
  config["q"] = canonical_number(q);
  config["period"] = std::to_string(period);
  config["burst"] = std::to_string(burst);
  config["on"] = std::to_string(on);
  config["off"] = std::to_string(off);
  config["trials"] = std::to_string(trials);
  config["seed"] = std::to_string(seed);
  config["max_slots"] = std::to_string(max_slots);
  // Deliberately NOT keyed: `batch` (and lane mode) are pure throughput
  // knobs with bit-identical outcomes (McConfig::batch), so requests
  // differing only in batch size share one cache entry. `rng` IS keyed:
  // the backends are different result universes.
  config["rng"] = rng;
  config["git_sha"] = obs::kGitSha;
  return config;
}

std::string SweepRequest::cache_key() const {
  return obs::config_fingerprint(config_map());
}

Json SweepRequest::to_json() const {
  Json out;
  out.set_object();
  out.set("protocol", protocol);
  out.set("engine", engine);
  out.set("adversary", adversary);
  out.set("n", n);
  out.set("eps", eps);
  out.set("u", u);
  out.set("c", c);
  out.set("T", T);
  out.set("q", q);
  out.set("period", period);
  out.set("burst", burst);
  out.set("on", on);
  out.set("off", off);
  out.set("trials", static_cast<std::uint64_t>(trials));
  out.set("seed", seed);
  out.set("max_slots", max_slots);
  out.set("batch", static_cast<std::uint64_t>(batch));
  out.set("rng", rng);
  return out;
}

}  // namespace jamelect::service
