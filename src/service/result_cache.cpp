#include "service/result_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "service/json.hpp"

namespace jamelect::service {

namespace {

/// Keys are hex fingerprints; reject anything else before it becomes a
/// filename (defense against path traversal via a corrupted key).
bool safe_key(const std::string& key) {
  if (key.empty() || key.size() > 64) return false;
  for (const char c : key) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

std::size_t entry_bytes(const std::string& key, const std::string& value) {
  return key.size() + value.size();
}

}  // namespace

ResultCache::ResultCache(std::string disk_dir, std::size_t max_entries,
                         std::size_t max_bytes)
    : dir_(std::move(disk_dir)),
      max_entries_(max_entries),
      max_bytes_(max_bytes),
      m_evictions_(
          obs::MetricsRegistry::global().counter("svc.cache_evictions")) {
  // Register at zero so a bounded daemon's /metrics always carries the
  // counter, evictions or not.
  obs::MetricsRegistry::global().add(m_evictions_, 0);
}

std::string ResultCache::path_for(const std::string& key) const {
  return dir_ + "/" + key + ".result.json";
}

std::optional<std::string> ResultCache::lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = memory_.find(key);
  if (it != memory_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.value;
  }
  if (dir_.empty() || !safe_key(key)) return std::nullopt;
  auto loaded = load_from_disk(key);
  if (loaded.has_value()) insert_locked(key, *loaded);
  return loaded;
}

std::optional<std::string> ResultCache::load_from_disk(
    const std::string& key) const {
  std::ifstream in(path_for(key));
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  const auto envelope = Json::parse(buf.str(), &error);
  if (!envelope.has_value()) return std::nullopt;
  const Json* stored_key = envelope->find("key");
  const Json* result = envelope->find("result");
  if (stored_key == nullptr || stored_key->as_string() != key ||
      result == nullptr || !result->is_object()) {
    return std::nullopt;  // foreign or corrupted file: treat as a miss
  }
  // dump() of a canonically-dumped document is byte-identical to the
  // original (sorted keys, exact int / %.17g formatting), so the disk
  // round-trip preserves bit-identity.
  return result->dump();
}

void ResultCache::insert_locked(const std::string& key,
                                const std::string& value) {
  const auto it = memory_.find(key);
  if (it != memory_.end()) {
    // Same key always carries the same bytes, but stay defensive about
    // the accounting if they ever differ.
    bytes_ -= entry_bytes(key, it->second.value);
    bytes_ += entry_bytes(key, value);
    it->second.value = value;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  } else {
    lru_.push_front(key);
    memory_.emplace(key, Entry{value, lru_.begin()});
    bytes_ += entry_bytes(key, value);
  }
  evict_to_bounds_locked();
}

void ResultCache::evict_to_bounds_locked() {
  const auto over = [this] {
    // Never evict the just-touched MRU entry: a single oversized result
    // must still be servable, so the bounds apply to entries beyond it.
    if (memory_.size() <= 1) return false;
    if (max_entries_ != 0 && memory_.size() > max_entries_) return true;
    if (max_bytes_ != 0 && bytes_ > max_bytes_) return true;
    return false;
  };
  while (over()) {
    const std::string& victim = lru_.back();
    const auto it = memory_.find(victim);
    bytes_ -= entry_bytes(victim, it->second.value);
    memory_.erase(it);
    lru_.pop_back();
    ++evictions_;
    obs::MetricsRegistry::global().add(m_evictions_, 1);
  }
}

void ResultCache::store(const std::string& key,
                        const std::string& request_canonical,
                        const std::string& result_json) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    insert_locked(key, result_json);
  }
  if (dir_.empty() || !safe_key(key)) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return;  // disk tier is best-effort; memory already has it
  // Hand-spliced envelope: result bytes are embedded verbatim, so what
  // load_from_disk re-extracts is exactly what lookup() would have
  // served from memory.
  std::string envelope = "{\"key\":\"" + key + "\",\"request\":" +
                         (request_canonical.empty() ? std::string("null")
                                                    : request_canonical) +
                         ",\"result\":" + result_json + "}\n";
  const std::string tmp = path_for(key) + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out << envelope;
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return;
    }
  }
  // rename() is atomic within a filesystem: readers see the old state
  // or the complete new file, never a torn write.
  if (std::rename(tmp.c_str(), path_for(key).c_str()) != 0) {
    std::remove(tmp.c_str());
  }
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return memory_.size();
}

std::size_t ResultCache::memory_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::uint64_t ResultCache::evictions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace jamelect::service
