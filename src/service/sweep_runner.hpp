// Executes a validated SweepRequest on the matching Monte-Carlo engine
// and serializes the McResult deterministically.
//
// The mapping is the same one the benches use: `aggregate` runs the
// strong-CD O(1)-per-slot engine (riding the batched/wide kernels when
// request.batch > 0), `hybrid` wraps the protocol in weak-CD
// Notification, `cohort` runs the compressed per-station engine via
// UniformStationAdapter. Same request, same result bits — the service's
// cache-hit bit-identity guarantee reduces to the engines' existing
// reproducibility contract.
#pragma once

#include <string>

#include "obs/span.hpp"
#include "service/json.hpp"
#include "service/sweep_request.hpp"
#include "sim/montecarlo.hpp"

namespace jamelect::obs {
class TraceEventRecorder;
}  // namespace jamelect::obs

namespace jamelect::service {

/// Knobs the service (not the request) owns.
struct RunnerConfig {
  /// Fan trials out on the global ThreadPool. Multiple service workers
  /// may issue parallel runs concurrently; the pool interleaves them.
  bool mc_parallel = true;
  /// Optional Chrome-trace recorder handed down to the MC drivers
  /// (per-trial / per-chunk spans). Must outlive every run.
  obs::TraceEventRecorder* recorder = nullptr;
};

/// Runs the sweep to completion (or cooperative-shutdown drain; check
/// McResult::interrupted). Throws only on engine contract violations —
/// requests must already be validated. `trace` is the request lineage:
/// it rides McConfig into the engines so every chunk span this sweep
/// produces carries the id.
[[nodiscard]] McResult run_sweep(const SweepRequest& request,
                                 const RunnerConfig& runner,
                                 obs::TraceId trace = {});

/// Deterministic JSON view of an McResult: canonical key order, exact
/// integer / %.17g double formatting. Equal results <=> equal bytes.
[[nodiscard]] Json mc_result_to_json(const McResult& result);

}  // namespace jamelect::service
