#include "service/sweep_runner.hpp"

#include <cmath>
#include <memory>

#include "protocols/lesk.hpp"
#include "protocols/lesu.hpp"
#include "protocols/plain_uniform.hpp"
#include "protocols/uniform_station.hpp"
#include "sim/adversary_spec.hpp"
#include "support/expects.hpp"

namespace jamelect::service {

namespace {

UniformProtocolFactory protocol_factory(const SweepRequest& req) {
  if (req.protocol == "lesk") {
    const double eps = req.eps;
    return [eps] { return std::make_unique<Lesk>(eps); };
  }
  if (req.protocol == "lesu") {
    LesuParams params;
    params.c = req.c;
    return [params] { return std::make_unique<Lesu>(params); };
  }
  JAMELECT_EXPECTS(req.protocol == "uniform");
  const double u = req.u >= 0.0
                       ? req.u
                       : std::log2(static_cast<double>(req.n));
  return [u] { return std::make_unique<PlainUniform>(u); };
}

AdversarySpec adversary_spec(const SweepRequest& req) {
  AdversarySpec spec;
  spec.policy = req.adversary;
  spec.T = req.T;
  spec.eps = req.eps;
  spec.q = req.q;
  spec.period = req.period;
  spec.burst = req.burst;
  spec.on = req.on;
  spec.off = req.off;
  spec.n = req.n;
  return spec;
}

Json summary_to_json(const Summary& s) {
  Json out;
  out.set_object();
  out.set("count", static_cast<std::uint64_t>(s.count));
  out.set("mean", s.mean);
  out.set("stddev", s.stddev);
  out.set("min", s.min);
  out.set("p25", s.p25);
  out.set("median", s.median);
  out.set("p75", s.p75);
  out.set("p95", s.p95);
  out.set("p99", s.p99);
  out.set("max", s.max);
  out.set("ci95_halfwidth", s.ci95_halfwidth);
  return out;
}

}  // namespace

McResult run_sweep(const SweepRequest& request, const RunnerConfig& runner,
                   obs::TraceId trace) {
  const UniformProtocolFactory factory = protocol_factory(request);
  const AdversarySpec adversary = adversary_spec(request);

  McConfig mc;
  mc.trials = request.trials;
  mc.seed = request.seed;
  mc.max_slots = request.max_slots;
  mc.parallel = runner.mc_parallel;
  mc.batch = request.batch;
  mc.rng_backend = request.rng == "aes_ctr" ? RngBackend::kAesCtr
                                            : RngBackend::kXoshiro;
  mc.keep_outcomes = false;
  mc.recorder = runner.recorder;
  mc.trace = trace;

  if (request.engine == "aggregate") {
    return run_aggregate_mc(factory, adversary, request.n, mc);
  }
  if (request.engine == "hybrid") {
    return run_hybrid_mc(factory, adversary, request.n, mc);
  }
  JAMELECT_EXPECTS(request.engine == "cohort");
  EngineConfig engine;
  engine.cd = CdMode::kStrong;
  engine.stop = StopRule::kAllDone;
  engine.max_slots = request.max_slots;
  return run_cohort_mc(
      [&factory] {
        return std::make_unique<UniformStationAdapter>(factory());
      },
      adversary, request.n, engine, mc);
}

Json mc_result_to_json(const McResult& result) {
  Json out;
  out.set_object();
  out.set("trials", static_cast<std::uint64_t>(result.trials));
  out.set("successes", static_cast<std::uint64_t>(result.successes));
  out.set("interrupted", result.interrupted);
  Json success;
  success.set_object();
  success.set("rate", result.success.rate);
  success.set("lower", result.success.lower);
  success.set("upper", result.success.upper);
  out.set("success", std::move(success));
  out.set("slots", summary_to_json(result.slots));
  out.set("slots_on_success", summary_to_json(result.slots_on_success));
  out.set("jams", summary_to_json(result.jams));
  out.set("energy_per_station", summary_to_json(result.energy_per_station));
  return out;
}

}  // namespace jamelect::service
