#include "service/net.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace jamelect::service {

namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket tcp_listen(const std::string& host, std::uint16_t port,
                  std::uint16_t* actual_port, std::string* error) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    if (error != nullptr) *error = errno_string("socket");
    return {};
  }
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad listen address '" + host + "'";
    return {};
  }
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    if (error != nullptr) *error = errno_string("bind");
    return {};
  }
  if (::listen(sock.fd(), 128) != 0) {
    if (error != nullptr) *error = errno_string("listen");
    return {};
  }
  if (actual_port != nullptr) {
    sockaddr_in bound = {};
    socklen_t len = sizeof bound;
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      *actual_port = ntohs(bound.sin_port);
    }
  }
  return sock;
}

Socket tcp_connect(const std::string& host, std::uint16_t port,
                   std::string* error) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    if (error != nullptr) *error = errno_string("socket");
    return {};
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad address '" + host + "'";
    return {};
  }
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    if (error != nullptr) *error = errno_string("connect");
    return {};
  }
  // The line protocol is request/response: disable Nagle so tiny JSON
  // frames don't serialize into 40ms delayed-ACK stalls.
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

int accept_with_timeout(int listen_fd, int timeout_ms) {
  pollfd pfd = {};
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc == 0) return -1;  // timeout
  if (rc < 0) return errno == EINTR ? -1 : -2;
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return errno == EINTR || errno == ECONNABORTED ? -1 : -2;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t rc = ::send(fd, data.data() + sent, data.size() - sent,
                              MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(rc);
  }
  return true;
}

bool LineReader::fill(int fd, int timeout_ms) {
  timed_out_ = false;
  pollfd pfd = {};
  pfd.fd = fd;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc == 0) {
    timed_out_ = true;
    return false;
  }
  if (rc < 0) {
    if (errno == EINTR) {
      timed_out_ = true;  // caller re-checks its stop condition
      return false;
    }
    return false;
  }
  char chunk[4096];
  const ssize_t got = ::recv(fd, chunk, sizeof chunk, 0);
  if (got <= 0) {
    if (got < 0 && errno == EINTR) {
      timed_out_ = true;
      return false;
    }
    return false;  // peer closed or hard error
  }
  buf_.append(chunk, static_cast<std::size_t>(got));
  return true;
}

std::optional<std::string> LineReader::read_line(int fd, int timeout_ms) {
  timed_out_ = false;
  for (;;) {
    const std::size_t nl = buf_.find('\n', pos_);
    if (nl != std::string::npos) {
      std::string line = buf_.substr(pos_, nl - pos_);
      pos_ = nl + 1;
      if (pos_ > (buf_.size() / 2) && pos_ > 4096) {
        buf_.erase(0, pos_);
        pos_ = 0;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (buf_.size() - pos_ > max_line) return std::nullopt;
    if (!fill(fd, timeout_ms)) return std::nullopt;
  }
}

std::optional<std::string> LineReader::read_exact(int fd, std::size_t count,
                                                  int timeout_ms) {
  timed_out_ = false;
  if (count > max_line) return std::nullopt;
  while (buf_.size() - pos_ < count) {
    if (!fill(fd, timeout_ms)) return std::nullopt;
  }
  std::string out = buf_.substr(pos_, count);
  pos_ += count;
  return out;
}

}  // namespace jamelect::service
