#include "service/service.hpp"

#include <exception>
#include <utility>

#include "support/shutdown.hpp"

namespace jamelect::service {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

std::int64_t histogram_quantile(const obs::HistogramSnapshot& h,
                                double q) noexcept {
  if (h.count <= 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double targetf = q * static_cast<double>(h.count);
  std::int64_t target = static_cast<std::int64_t>(targetf);
  if (static_cast<double>(target) < targetf) ++target;
  if (target < 1) target = 1;
  std::int64_t cumulative = 0;
  for (std::size_t b = 0; b < h.buckets.size(); ++b) {
    cumulative += h.buckets[b];
    if (cumulative >= target) {
      if (b == 0) return 0;  // bucket 0 counts v <= 0
      if (b >= 63) return h.max;
      return (std::int64_t{1} << b) - 1;  // upper bound of [2^(b-1), 2^b)
    }
  }
  return h.max;
}

SweepService::SweepService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_dir, config_.cache_max_entries,
             config_.cache_max_bytes),
      start_(Clock::now()) {
  if (config_.workers == 0) config_.workers = 1;
  auto& reg = obs::MetricsRegistry::global();
  m_requests_ = reg.counter("svc.requests");
  m_hits_ = reg.counter("svc.cache_hits");
  m_misses_ = reg.counter("svc.cache_misses");
  m_coalesced_ = reg.counter("svc.coalesced");
  m_rejected_ = reg.counter("svc.rejected");
  m_invalid_ = reg.counter("svc.invalid");
  m_completed_ = reg.counter("svc.completed");
  m_failed_ = reg.counter("svc.failed");
  m_queue_depth_ = reg.gauge("svc.queue_depth");
  m_latency_us_ = reg.histogram("svc.latency_us");
  m_compute_us_ = reg.histogram("svc.compute_us");
  m_hit_latency_us_ = reg.histogram("svc.hit_latency_us");
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SweepService::~SweepService() { stop(); }

std::int64_t SweepService::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start_)
      .count();
}

JobStatus SweepService::snapshot(const Job& job) const {
  JobStatus s;
  s.id = job.id;
  s.key = job.key;
  s.state = job.state;
  s.error = job.error;
  s.result_json = job.result_json;
  s.submitted_us = job.submitted_us;
  s.started_us = job.started_us;
  s.finished_us = job.finished_us;
  s.waiters = job.waiters;
  return s;
}

SweepService::Submit SweepService::submit(const SweepRequest& request) {
  auto& reg = obs::MetricsRegistry::global();
  requests_.fetch_add(1, std::memory_order_relaxed);
  reg.add(m_requests_, 1);
  const std::int64_t t0 = now_us();

  Submit out;
  std::string why;
  if (!request.validate(config_.limits, &why)) {
    reg.add(m_invalid_, 1);
    out.outcome = Submit::Outcome::kInvalid;
    out.error = why;
    return out;
  }
  out.key = request.cache_key();

  // Fast path: finished result already memoized (memory or disk).
  if (auto cached = cache_.lookup(out.key)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    reg.add(m_hits_, 1);
    const std::int64_t latency = now_us() - t0;
    reg.observe(m_hit_latency_us_, latency);
    reg.observe(m_latency_us_, latency);
    out.outcome = Submit::Outcome::kCached;
    out.result_json = std::move(*cached);
    return out;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    reg.add(m_rejected_, 1);
    out.outcome = Submit::Outcome::kRejected;
    out.error = "service stopping";
    return out;
  }
  // Coalesce: an identical job is already queued or running.
  if (const auto it = inflight_.find(out.key); it != inflight_.end()) {
    it->second->waiters += 1;
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    reg.add(m_coalesced_, 1);
    out.outcome = Submit::Outcome::kCoalesced;
    out.id = it->second->id;
    return out;
  }
  // Backpressure: bounded admission queue.
  if (queue_.size() >= config_.max_queue) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    reg.add(m_rejected_, 1);
    out.outcome = Submit::Outcome::kRejected;
    out.error = "queue full (depth " + std::to_string(queue_.size()) + ")";
    return out;
  }

  auto job = std::make_shared<Job>();
  // Built char-by-char: GCC 12's -O3 -Wrestrict false-fires (PR105329)
  // on every char*-source assign/insert path here.
  std::string id = std::to_string(next_id_++);
  id.insert(id.begin(), 'j');
  job->id = std::move(id);
  job->key = out.key;
  job->request = request;
  job->submitted_us = t0;
  jobs_.emplace(job->id, job);
  inflight_.emplace(job->key, job);
  queue_.push_back(job);
  reg.set(m_queue_depth_, static_cast<double>(queue_.size()));
  out.outcome = Submit::Outcome::kAccepted;
  out.id = job->id;
  lock.unlock();
  queue_cv_.notify_one();
  return out;
}

void SweepService::finish_job(const std::shared_ptr<Job>& job,
                              JobState state) {
  auto& reg = obs::MetricsRegistry::global();
  job->state = state;
  job->finished_us = now_us();
  if (const auto it = inflight_.find(job->key);
      it != inflight_.end() && it->second == job) {
    inflight_.erase(it);
  }
  terminal_order_.push_back(job->id);
  evict_history_locked();
  reg.add(state == JobState::kDone ? m_completed_ : m_failed_, 1);
  if (job->submitted_us >= 0) {
    reg.observe(m_latency_us_, job->finished_us - job->submitted_us);
  }
  done_cv_.notify_all();
}

void SweepService::evict_history_locked() {
  while (terminal_order_.size() > config_.max_job_history) {
    jobs_.erase(terminal_order_.front());
    terminal_order_.pop_front();
  }
}

void SweepService::worker_loop() {
  auto& reg = obs::MetricsRegistry::global();
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    auto job = queue_.front();
    queue_.pop_front();
    reg.set(m_queue_depth_, static_cast<double>(queue_.size()));
    job->state = JobState::kRunning;
    job->started_us = now_us();
    lock.unlock();

    // Second chance: another process may have populated the disk tier
    // while this job sat in the queue.
    std::string result;
    std::string error;
    bool ok = false;
    if (auto cached = cache_.lookup(job->key)) {
      result = std::move(*cached);
      ok = true;
    } else {
      try {
        const McResult mc = run_sweep(job->request, config_.runner);
        if (mc.interrupted) {
          error = "interrupted by shutdown after " +
                  std::to_string(mc.trials) + " trials";
        } else {
          result = mc_result_to_json(mc).dump();
          cache_.store(job->key, job->request.to_json().dump(), result);
          ok = true;
        }
      } catch (const std::exception& e) {
        error = e.what();
      }
      if (ok) {
        computed_.fetch_add(1, std::memory_order_relaxed);
        reg.add(m_misses_, 1);
        reg.observe(m_compute_us_, now_us() - job->started_us);
      }
    }

    lock.lock();
    job->result_json = std::move(result);
    job->error = std::move(error);
    finish_job(job, ok ? JobState::kDone : JobState::kFailed);
  }
}

std::optional<JobStatus> SweepService::status(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return snapshot(*it->second);
}

std::optional<JobStatus> SweepService::wait(const std::string& id,
                                            std::int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const auto job = it->second;  // keep alive across history eviction
  const auto terminal = [&job] {
    return job->state == JobState::kDone || job->state == JobState::kFailed;
  };
  if (timeout_ms < 0) {
    done_cv_.wait(lock, terminal);
  } else {
    done_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), terminal);
  }
  return snapshot(*job);
}

void SweepService::stop() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_ && workers_.empty()) return;
  stopping_ = true;
  // Fail everything still queued; running jobs drain in their workers.
  while (!queue_.empty()) {
    auto job = queue_.front();
    queue_.pop_front();
    job->error = "shutdown before start";
    finish_job(job, JobState::kFailed);
  }
  obs::MetricsRegistry::global().set(m_queue_depth_, 0.0);
  std::vector<std::thread> workers = std::move(workers_);
  workers_.clear();
  lock.unlock();
  queue_cv_.notify_all();
  for (std::thread& w : workers) w.join();
  done_cv_.notify_all();
}

std::size_t SweepService::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

Json SweepService::metrics_json() const {
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().aggregate();
  Json counters;
  counters.set_object();
  for (const auto& [name, value] : snap.counters) {
    counters.set(name, value);
  }
  Json gauges;
  gauges.set_object();
  for (const auto& [name, value] : snap.gauges) {
    gauges.set(name, value);
  }
  Json histograms;
  histograms.set_object();
  for (const auto& [name, h] : snap.histograms) {
    Json entry;
    entry.set_object();
    entry.set("count", h.count);
    entry.set("sum", h.sum);
    entry.set("mean",
              h.count > 0
                  ? static_cast<double>(h.sum) / static_cast<double>(h.count)
                  : 0.0);
    entry.set("p50", histogram_quantile(h, 0.50));
    entry.set("p99", histogram_quantile(h, 0.99));
    entry.set("max", h.max);
    histograms.set(name, std::move(entry));
  }
  Json out;
  out.set_object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  out.set("queue_depth", static_cast<std::int64_t>(queue_depth()));
  out.set("uptime_us", now_us());
  return out;
}

}  // namespace jamelect::service
