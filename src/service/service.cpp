#include "service/service.hpp"

#include <exception>
#include <utility>

#include "obs/trace_events.hpp"
#include "support/shutdown.hpp"

namespace jamelect::service {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

SweepService::SweepService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_dir, config_.cache_max_entries,
             config_.cache_max_bytes),
      start_(Clock::now()) {
  if (config_.workers == 0) config_.workers = 1;
  auto& reg = obs::MetricsRegistry::global();
  m_requests_ = reg.counter("svc.requests");
  m_hits_ = reg.counter("svc.cache_hits");
  m_misses_ = reg.counter("svc.cache_misses");
  m_coalesced_ = reg.counter("svc.coalesced");
  m_rejected_ = reg.counter("svc.rejected");
  m_invalid_ = reg.counter("svc.invalid");
  m_completed_ = reg.counter("svc.completed");
  m_failed_ = reg.counter("svc.failed");
  m_queue_depth_ = reg.gauge("svc.queue_depth");
  m_latency_us_ = reg.histogram("svc.latency_us");
  m_compute_us_ = reg.histogram("svc.compute_us");
  m_hit_latency_us_ = reg.histogram("svc.hit_latency_us");
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SweepService::~SweepService() { stop(); }

std::int64_t SweepService::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start_)
      .count();
}

JobStatus SweepService::snapshot(const Job& job) const {
  JobStatus s;
  s.id = job.id;
  s.key = job.key;
  s.state = job.state;
  s.error = job.error;
  s.result_json = job.result_json;
  s.submitted_us = job.submitted_us;
  s.started_us = job.started_us;
  s.finished_us = job.finished_us;
  s.waiters = job.waiters;
  s.trace = job.trace;
  s.timing = job.timing;
  return s;
}

void SweepService::emit_phase(const char* span_name, obs::Phase phase,
                              std::int64_t dur_us, obs::TraceId trace) {
  if (dur_us < 0) dur_us = 0;
  obs::prof_add(phase, dur_us * 1000);
  // "Ends now" stamping: each sink stamps the interval against its own
  // epoch at the moment the phase ends, so no cross-epoch conversion.
  if (config_.recorder != nullptr) {
    const std::int64_t end = config_.recorder->now_us();
    config_.recorder->record_at(span_name, end - dur_us, dur_us, trace);
  }
  if (config_.flight != nullptr) {
    const std::int64_t end = config_.flight->now_us();
    config_.flight->record(span_name, obs::phase_name(phase), end - dur_us,
                           dur_us, trace);
  }
}

void SweepService::note_respond(obs::TraceId trace, std::int64_t dur_us) {
  tot_respond_us_.fetch_add(dur_us, std::memory_order_relaxed);
  emit_phase("svc.respond", obs::Phase::kRespond, dur_us, trace);
}

obs::TraceId SweepService::last_trace() const {
  const std::lock_guard<std::mutex> lock(last_trace_mutex_);
  return last_trace_;
}

SweepService::TimingTotals SweepService::timing_totals() const noexcept {
  TimingTotals t;
  t.admission_us = tot_admission_us_.load(std::memory_order_relaxed);
  t.cache_probe_us = tot_cache_probe_us_.load(std::memory_order_relaxed);
  t.queue_us = tot_queue_us_.load(std::memory_order_relaxed);
  t.compute_us = tot_compute_us_.load(std::memory_order_relaxed);
  t.serialize_us = tot_serialize_us_.load(std::memory_order_relaxed);
  t.respond_us = tot_respond_us_.load(std::memory_order_relaxed);
  return t;
}

SweepService::Submit SweepService::submit(const SweepRequest& request,
                                          obs::TraceId trace) {
  auto& reg = obs::MetricsRegistry::global();
  requests_.fetch_add(1, std::memory_order_relaxed);
  reg.add(m_requests_, 1);
  const std::int64_t t0 = now_us();
  if (trace.valid()) {
    const std::lock_guard<std::mutex> lock(last_trace_mutex_);
    last_trace_ = trace;
  }

  Submit out;
  out.trace = trace;
  std::string why;
  const bool valid = request.validate(config_.limits, &why);
  out.timing.admission_us = now_us() - t0;
  tot_admission_us_.fetch_add(out.timing.admission_us,
                              std::memory_order_relaxed);
  emit_phase("svc.admission", obs::Phase::kAdmission, out.timing.admission_us,
             trace);
  if (!valid) {
    reg.add(m_invalid_, 1);
    out.outcome = Submit::Outcome::kInvalid;
    out.error = why;
    return out;
  }
  out.key = request.cache_key();

  // Fast path: finished result already memoized (memory or disk).
  const std::int64_t probe0 = now_us();
  auto cached = cache_.lookup(out.key);
  out.timing.cache_probe_us = now_us() - probe0;
  tot_cache_probe_us_.fetch_add(out.timing.cache_probe_us,
                                std::memory_order_relaxed);
  emit_phase("svc.cache_probe", obs::Phase::kCacheProbe,
             out.timing.cache_probe_us, trace);
  if (cached) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    reg.add(m_hits_, 1);
    const std::int64_t latency = now_us() - t0;
    reg.observe(m_hit_latency_us_, latency);
    reg.observe(m_latency_us_, latency);
    out.outcome = Submit::Outcome::kCached;
    out.result_json = std::move(*cached);
    return out;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    reg.add(m_rejected_, 1);
    out.outcome = Submit::Outcome::kRejected;
    out.error = "service stopping";
    return out;
  }
  // Coalesce: an identical job is already queued or running.
  if (const auto it = inflight_.find(out.key); it != inflight_.end()) {
    it->second->waiters += 1;
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    reg.add(m_coalesced_, 1);
    out.outcome = Submit::Outcome::kCoalesced;
    out.id = it->second->id;
    return out;
  }
  // Backpressure: bounded admission queue.
  if (queue_.size() >= config_.max_queue) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    reg.add(m_rejected_, 1);
    out.outcome = Submit::Outcome::kRejected;
    out.error = "queue full (depth " + std::to_string(queue_.size()) + ")";
    return out;
  }

  auto job = std::make_shared<Job>();
  // Built char-by-char: GCC 12's -O3 -Wrestrict false-fires (PR105329)
  // on every char*-source assign/insert path here.
  std::string id = std::to_string(next_id_++);
  id.insert(id.begin(), 'j');
  job->id = std::move(id);
  job->key = out.key;
  job->request = request;
  job->submitted_us = t0;
  job->trace = trace;
  job->timing.admission_us = out.timing.admission_us;
  job->timing.cache_probe_us = out.timing.cache_probe_us;
  jobs_.emplace(job->id, job);
  inflight_.emplace(job->key, job);
  queue_.push_back(job);
  reg.set(m_queue_depth_, static_cast<double>(queue_.size()));
  out.outcome = Submit::Outcome::kAccepted;
  out.id = job->id;
  lock.unlock();
  queue_cv_.notify_one();
  return out;
}

void SweepService::finish_job(const std::shared_ptr<Job>& job,
                              JobState state) {
  auto& reg = obs::MetricsRegistry::global();
  job->state = state;
  job->finished_us = now_us();
  if (const auto it = inflight_.find(job->key);
      it != inflight_.end() && it->second == job) {
    inflight_.erase(it);
  }
  terminal_order_.push_back(job->id);
  evict_history_locked();
  reg.add(state == JobState::kDone ? m_completed_ : m_failed_, 1);
  if (job->submitted_us >= 0) {
    reg.observe(m_latency_us_, job->finished_us - job->submitted_us);
  }
  done_cv_.notify_all();
}

void SweepService::evict_history_locked() {
  while (terminal_order_.size() > config_.max_job_history) {
    jobs_.erase(terminal_order_.front());
    terminal_order_.pop_front();
  }
}

void SweepService::worker_loop() {
  auto& reg = obs::MetricsRegistry::global();
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    auto job = queue_.front();
    queue_.pop_front();
    reg.set(m_queue_depth_, static_cast<double>(queue_.size()));
    job->state = JobState::kRunning;
    job->started_us = now_us();
    job->timing.queue_us = job->started_us - job->submitted_us;
    lock.unlock();
    tot_queue_us_.fetch_add(job->timing.queue_us, std::memory_order_relaxed);
    emit_phase("svc.queue_wait", obs::Phase::kQueueWait, job->timing.queue_us,
               job->trace);

    // The request lineage rides the worker thread: MC chunk spans and
    // this job's phase spans all carry the same trace id.
    const obs::ScopedTrace scoped(job->trace);

    // Second chance: another process may have populated the disk tier
    // while this job sat in the queue.
    std::string result;
    std::string error;
    bool ok = false;
    const std::int64_t probe0 = now_us();
    auto cached = cache_.lookup(job->key);
    {
      const std::int64_t probe_us = now_us() - probe0;
      job->timing.cache_probe_us += probe_us;
      tot_cache_probe_us_.fetch_add(probe_us, std::memory_order_relaxed);
      emit_phase("svc.cache_probe", obs::Phase::kCacheProbe, probe_us,
                 job->trace);
    }
    if (cached) {
      result = std::move(*cached);
      ok = true;
    } else {
      RunnerConfig runner = config_.runner;
      if (runner.recorder == nullptr) runner.recorder = config_.recorder;
      const std::int64_t compute0 = now_us();
      try {
        const McResult mc = run_sweep(job->request, runner, job->trace);
        job->timing.compute_us = now_us() - compute0;
        if (mc.interrupted) {
          error = "interrupted by shutdown after " +
                  std::to_string(mc.trials) + " trials";
        } else {
          const std::int64_t ser0 = now_us();
          result = mc_result_to_json(mc).dump();
          cache_.store(job->key, job->request.to_json().dump(), result);
          job->timing.serialize_us = now_us() - ser0;
          ok = true;
        }
      } catch (const std::exception& e) {
        job->timing.compute_us = now_us() - compute0;
        error = e.what();
      }
      tot_compute_us_.fetch_add(job->timing.compute_us,
                                std::memory_order_relaxed);
      emit_phase("svc.compute", obs::Phase::kCompute, job->timing.compute_us,
                 job->trace);
      if (job->timing.serialize_us > 0) {
        tot_serialize_us_.fetch_add(job->timing.serialize_us,
                                    std::memory_order_relaxed);
        emit_phase("svc.serialize", obs::Phase::kSerialize,
                   job->timing.serialize_us, job->trace);
      }
      if (ok) {
        computed_.fetch_add(1, std::memory_order_relaxed);
        reg.add(m_misses_, 1);
        reg.observe(m_compute_us_, now_us() - job->started_us);
      }
    }

    lock.lock();
    job->result_json = std::move(result);
    job->error = std::move(error);
    finish_job(job, ok ? JobState::kDone : JobState::kFailed);
  }
}

std::optional<JobStatus> SweepService::status(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return snapshot(*it->second);
}

std::optional<JobStatus> SweepService::wait(const std::string& id,
                                            std::int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const auto job = it->second;  // keep alive across history eviction
  const auto terminal = [&job] {
    return job->state == JobState::kDone || job->state == JobState::kFailed;
  };
  if (timeout_ms < 0) {
    done_cv_.wait(lock, terminal);
  } else {
    done_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), terminal);
  }
  return snapshot(*job);
}

void SweepService::stop() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_ && workers_.empty()) return;
  stopping_ = true;
  // Fail everything still queued; running jobs drain in their workers.
  while (!queue_.empty()) {
    auto job = queue_.front();
    queue_.pop_front();
    job->error = "shutdown before start";
    finish_job(job, JobState::kFailed);
  }
  obs::MetricsRegistry::global().set(m_queue_depth_, 0.0);
  std::vector<std::thread> workers = std::move(workers_);
  workers_.clear();
  lock.unlock();
  queue_cv_.notify_all();
  for (std::thread& w : workers) w.join();
  done_cv_.notify_all();
}

std::size_t SweepService::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

Json SweepService::metrics_json() const {
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().aggregate();
  Json counters;
  counters.set_object();
  for (const auto& [name, value] : snap.counters) {
    counters.set(name, value);
  }
  Json gauges;
  gauges.set_object();
  for (const auto& [name, value] : snap.gauges) {
    gauges.set(name, value);
  }
  Json histograms;
  histograms.set_object();
  for (const auto& [name, h] : snap.histograms) {
    Json entry;
    entry.set_object();
    entry.set("count", h.count);
    entry.set("sum", h.sum);
    entry.set("mean",
              h.count > 0
                  ? static_cast<double>(h.sum) / static_cast<double>(h.count)
                  : 0.0);
    entry.set("p50", histogram_quantile(h, 0.50));
    entry.set("p99", histogram_quantile(h, 0.99));
    entry.set("max", h.max);
    histograms.set(name, std::move(entry));
  }
  Json out;
  out.set_object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  out.set("queue_depth", static_cast<std::int64_t>(queue_depth()));
  out.set("uptime_us", now_us());
  return out;
}

}  // namespace jamelect::service
