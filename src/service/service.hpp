// SweepService — the daemon's engine room: a bounded admission queue,
// a worker pool running sweeps on the Monte-Carlo engines, a
// manifest-keyed result cache, and per-request metrics.
//
// Request lifecycle (docs/SERVICE.md):
//
//   submit ──> cache hit ────────────────────────────> kCached (result)
//          ──> identical request in flight ──────────> kCoalesced (id)
//          ──> queue full ───────────────────────────> kRejected (429)
//          ──> enqueued ─────────────────────────────> kAccepted (id)
//   wait(id) blocks until the job is kDone / kFailed.
//
// Coalescing: at most one job per cache key is ever queued or running;
// a second identical request attaches to the first job instead of
// recomputing (dogpile protection). Backpressure: the queue holds at
// most ServiceConfig::max_queue jobs; beyond that submit() rejects
// immediately — the transport maps that to HTTP 429 / a line-protocol
// error — so a traffic spike degrades into fast rejections instead of
// unbounded memory growth.
//
// Shutdown: stop() fails queued jobs, lets RUNNING jobs drain (the
// Monte-Carlo drivers also poll support/shutdown.hpp, so a SIGTERM
// shortens even an in-flight sweep to its next chunk boundary), joins
// the workers, and wakes every waiter. Interrupted sweeps are never
// cached.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/span.hpp"
#include "service/json.hpp"
#include "service/result_cache.hpp"
#include "service/sweep_request.hpp"
#include "service/sweep_runner.hpp"

namespace jamelect::obs {
class TraceEventRecorder;
class FlightRecorder;
}  // namespace jamelect::obs

namespace jamelect::service {

struct ServiceConfig {
  /// Sweep worker threads (each runs one job at a time; the job itself
  /// may fan trials out on the global ThreadPool).
  std::size_t workers = 2;
  /// Queued-but-not-running cap; beyond it submit() rejects (429).
  std::size_t max_queue = 64;
  /// Result-cache disk tier directory; "" = memory-only.
  std::string cache_dir;
  /// Memory-tier bounds for the result cache (LRU eviction; 0 =
  /// unbounded). With a disk tier configured, evicted keys are still
  /// served — reloaded from disk on their next lookup.
  std::size_t cache_max_entries = 0;
  std::size_t cache_max_bytes = 0;
  /// Terminal job records kept for GET /status; oldest evicted beyond.
  std::size_t max_job_history = 4096;
  SweepLimits limits;
  RunnerConfig runner;
  /// Optional Chrome-trace recorder: request phases (admission,
  /// queue_wait, compute, serialize, respond) are recorded as spans
  /// tagged with the request's trace id, and threaded through
  /// RunnerConfig into the MC engines so per-worker chunk spans land
  /// in the same tree. Must outlive the service.
  obs::TraceEventRecorder* recorder = nullptr;
  /// Optional flight recorder: the same request-phase spans go into
  /// the bounded ring for post-hoc SIGUSR1 / abnormal-drain dumps.
  obs::FlightRecorder* flight = nullptr;
};

/// Per-request wall-clock breakdown (steady-clock microseconds),
/// echoed in the response envelope and rolled up into the daemon's
/// run manifest. Zero means "phase not reached" (e.g. compute on a
/// cache hit).
struct RequestTiming {
  std::int64_t admission_us = 0;    ///< validation + admission control
  std::int64_t cache_probe_us = 0;  ///< result-cache lookup(s)
  std::int64_t queue_us = 0;        ///< enqueue -> worker pickup
  std::int64_t compute_us = 0;      ///< run_sweep (MC engines)
  std::int64_t serialize_us = 0;    ///< result JSON + cache store
};

enum class JobState : std::uint8_t { kQueued, kRunning, kDone, kFailed };
[[nodiscard]] const char* job_state_name(JobState state) noexcept;

/// Point-in-time copy of one job's record.
struct JobStatus {
  std::string id;
  std::string key;
  JobState state = JobState::kQueued;
  std::string error;        ///< kFailed only
  std::string result_json;  ///< kDone only (canonical bytes)
  // Steady-clock microseconds since service construction; -1 = not yet.
  std::int64_t submitted_us = -1;
  std::int64_t started_us = -1;
  std::int64_t finished_us = -1;
  /// Requests coalesced onto this job (besides the submitting one).
  std::size_t waiters = 0;
  /// Request lineage (invalid when the client sent no trace id).
  obs::TraceId trace{};
  RequestTiming timing{};
};

class SweepService {
 public:
  struct Submit {
    enum class Outcome : std::uint8_t {
      kInvalid,    ///< failed validation — transport: 400
      kCached,     ///< served from cache — result_json is the answer
      kAccepted,   ///< queued — wait(id) for the result
      kCoalesced,  ///< identical job in flight — wait(id) on it
      kRejected,   ///< queue full or service stopping — transport: 429
    };
    Outcome outcome = Outcome::kInvalid;
    std::string id;
    std::string key;
    std::string error;
    std::string result_json;  ///< kCached only
    obs::TraceId trace{};     ///< echo of the request's trace id
    RequestTiming timing{};   ///< kCached: admission + cache_probe only
  };

  explicit SweepService(ServiceConfig config);
  ~SweepService();  // stop()

  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  /// `trace` is the client-supplied request lineage (invalid = client
  /// sent none); it tags every span this request produces and is
  /// echoed back in Submit/JobStatus.
  [[nodiscard]] Submit submit(const SweepRequest& request,
                              obs::TraceId trace = {});

  /// Snapshot of a job's record; nullopt for unknown/evicted ids.
  [[nodiscard]] std::optional<JobStatus> status(const std::string& id) const;

  /// Blocks until the job reaches kDone/kFailed, up to `timeout_ms`
  /// (< 0 = no timeout). Returns the terminal status, the current
  /// status on timeout, or nullopt for unknown ids.
  [[nodiscard]] std::optional<JobStatus> wait(const std::string& id,
                                              std::int64_t timeout_ms = -1);

  /// Drains: running jobs finish (shortened to their next chunk if a
  /// process shutdown is also in progress), queued jobs fail with
  /// "shutdown", workers join, waiters wake. Idempotent.
  void stop();

  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

  // Service-local request accounting (global MetricsRegistry mirrors
  // these for /metrics; these are exact per-instance, test-friendly).
  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }
  [[nodiscard]] std::uint64_t cache_hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t computed() const noexcept { return computed_; }
  [[nodiscard]] std::uint64_t coalesced() const noexcept { return coalesced_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }

  /// Counters, gauges, and latency-histogram percentiles (p50/p99 via
  /// log2 buckets) from the global MetricsRegistry, as one JSON object.
  [[nodiscard]] Json metrics_json() const;

  /// Steady-clock microseconds since construction.
  [[nodiscard]] std::int64_t now_us() const;

  /// Transport callback after the response bytes for a request went
  /// out: records the `respond` phase (profiler + recorder + flight)
  /// and rolls it into the timing totals.
  void note_respond(obs::TraceId trace, std::int64_t dur_us);

  /// Most recent request trace id seen by submit() (invalid if none
  /// yet) — surfaced in the daemon's run manifest.
  [[nodiscard]] obs::TraceId last_trace() const;

  /// Cross-request sums of each timing phase plus respond, for the
  /// manifest rollup.
  struct TimingTotals {
    std::int64_t admission_us = 0;
    std::int64_t cache_probe_us = 0;
    std::int64_t queue_us = 0;
    std::int64_t compute_us = 0;
    std::int64_t serialize_us = 0;
    std::int64_t respond_us = 0;
  };
  [[nodiscard]] TimingTotals timing_totals() const noexcept;

 private:
  struct Job {
    std::string id;
    std::string key;
    SweepRequest request;
    JobState state = JobState::kQueued;
    std::string error;
    std::string result_json;
    std::int64_t submitted_us = -1;
    std::int64_t started_us = -1;
    std::int64_t finished_us = -1;
    std::size_t waiters = 0;
    obs::TraceId trace{};
    RequestTiming timing{};
  };

  void worker_loop();
  /// Records one finished request phase: profiler time, plus a span in
  /// the recorder and flight ring (both stamped "ends now").
  void emit_phase(const char* span_name, obs::Phase phase,
                  std::int64_t dur_us, obs::TraceId trace);
  [[nodiscard]] JobStatus snapshot(const Job& job) const;
  /// Marks the job terminal and wakes waiters. Caller holds mutex_.
  void finish_job(const std::shared_ptr<Job>& job, JobState state);
  void evict_history_locked();

  ServiceConfig config_;
  ResultCache cache_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  ///< workers: queue non-empty / stop
  std::condition_variable done_cv_;   ///< waiters: job reached terminal
  std::deque<std::shared_ptr<Job>> queue_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;  ///< id -> record
  std::map<std::string, std::shared_ptr<Job>> inflight_;  ///< key -> job
  std::deque<std::string> terminal_order_;  ///< history eviction FIFO
  std::uint64_t next_id_ = 1;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> computed_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> rejected_{0};

  // Global-registry metric ids (registered in the constructor; direct
  // add/observe calls so service metrics exist in Release builds too).
  obs::MetricsRegistry::MetricId m_requests_, m_hits_, m_misses_,
      m_coalesced_, m_rejected_, m_invalid_, m_completed_, m_failed_;
  obs::MetricsRegistry::MetricId m_queue_depth_;
  obs::MetricsRegistry::MetricId m_latency_us_, m_compute_us_,
      m_hit_latency_us_;

  mutable std::mutex last_trace_mutex_;
  obs::TraceId last_trace_{};

  std::atomic<std::int64_t> tot_admission_us_{0};
  std::atomic<std::int64_t> tot_cache_probe_us_{0};
  std::atomic<std::int64_t> tot_queue_us_{0};
  std::atomic<std::int64_t> tot_compute_us_{0};
  std::atomic<std::int64_t> tot_serialize_us_{0};
  std::atomic<std::int64_t> tot_respond_us_{0};
};

// histogram_quantile (bucket-resolution quantiles of the log2
// histograms) lives in obs/metrics.hpp; service code uses it
// unqualified via the obs:: types' ADL.

}  // namespace jamelect::service
