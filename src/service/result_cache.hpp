// Manifest-keyed result cache: in-memory map + optional on-disk tier.
//
// Keys are obs::config_fingerprint(SweepRequest::config_map()) — the
// canonical config+seed+git-SHA hash — and values are the EXACT bytes
// of the canonical result JSON, so a hit is bit-identical to the
// computation it memoizes. The disk tier makes hits survive daemon
// restarts: each entry is one `<key>.result.json` envelope written
// atomically (temp file + rename), loaded lazily on first miss and
// promoted into memory.
//
// Thread-safe; lookups under a single mutex (entries are small strings
// and hits must beat recomputation by ~100x, not by the last
// microsecond of lock contention). In-flight request coalescing lives
// one layer up, in SweepService — the cache only stores finished runs.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace jamelect::service {

class ResultCache {
 public:
  /// `disk_dir` empty => memory-only. The directory is created on first
  /// store if missing.
  explicit ResultCache(std::string disk_dir);

  /// The stored result JSON bytes for `key`: memory first, then disk
  /// (a disk hit is promoted into memory). nullopt on miss.
  [[nodiscard]] std::optional<std::string> lookup(const std::string& key);

  /// Stores a finished result. `request_canonical` (the request's
  /// canonical JSON) is embedded in the disk envelope so cache files
  /// are self-describing; it is not needed to serve hits. Idempotent —
  /// same key always carries the same bytes.
  void store(const std::string& key, const std::string& request_canonical,
             const std::string& result_json);

  /// Entries currently resident in memory.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] const std::string& disk_dir() const noexcept { return dir_; }

 private:
  [[nodiscard]] std::string path_for(const std::string& key) const;
  /// Reads and validates a disk envelope; returns the result bytes.
  [[nodiscard]] std::optional<std::string> load_from_disk(
      const std::string& key) const;

  mutable std::mutex mutex_;
  std::string dir_;
  std::unordered_map<std::string, std::string> memory_;
};

}  // namespace jamelect::service
