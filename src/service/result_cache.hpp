// Manifest-keyed result cache: bounded in-memory LRU + optional
// on-disk tier.
//
// Keys are obs::config_fingerprint(SweepRequest::config_map()) — the
// canonical config+seed+git-SHA hash — and values are the EXACT bytes
// of the canonical result JSON, so a hit is bit-identical to the
// computation it memoizes. The disk tier makes hits survive daemon
// restarts: each entry is one `<key>.result.json` envelope written
// atomically (temp file + rename), loaded lazily on first miss and
// promoted into memory.
//
// The memory tier is bounded two ways — max_entries and max_bytes
// (sum of key + value sizes) — with least-recently-used eviction; 0
// means unbounded. Eviction only drops the MEMORY copy: with a disk
// tier configured every store also landed on disk, so an evicted key
// is still a (slower) hit that reloads and re-promotes. A long-lived
// daemon's memory is therefore capped by configuration, not by the
// lifetime diversity of its request stream. Evictions are counted
// locally (evictions()) and on the global registry
// ("svc.cache_evictions").
//
// Thread-safe; lookups under a single mutex (entries are small strings
// and hits must beat recomputation by ~100x, not by the last
// microsecond of lock contention). In-flight request coalescing lives
// one layer up, in SweepService — the cache only stores finished runs.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace jamelect::service {

class ResultCache {
 public:
  /// `disk_dir` empty => memory-only. The directory is created on first
  /// store if missing. `max_entries` / `max_bytes` bound the memory
  /// tier (0 = unbounded).
  explicit ResultCache(std::string disk_dir, std::size_t max_entries = 0,
                       std::size_t max_bytes = 0);

  /// The stored result JSON bytes for `key`: memory first, then disk
  /// (a disk hit is promoted into memory). A hit marks the entry
  /// most-recently-used. nullopt on miss.
  [[nodiscard]] std::optional<std::string> lookup(const std::string& key);

  /// Stores a finished result. `request_canonical` (the request's
  /// canonical JSON) is embedded in the disk envelope so cache files
  /// are self-describing; it is not needed to serve hits. Idempotent —
  /// same key always carries the same bytes. May evict LRU entries
  /// from memory to respect the bounds.
  void store(const std::string& key, const std::string& request_canonical,
             const std::string& result_json);

  /// Entries currently resident in memory.
  [[nodiscard]] std::size_t size() const;

  /// Approximate memory-tier footprint: sum of key + value bytes.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Memory-tier entries dropped by the LRU bound since construction.
  [[nodiscard]] std::uint64_t evictions() const;

  [[nodiscard]] const std::string& disk_dir() const noexcept { return dir_; }
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }
  [[nodiscard]] std::size_t max_bytes() const noexcept { return max_bytes_; }

 private:
  struct Entry {
    std::string value;
    std::list<std::string>::iterator lru_pos;
  };

  [[nodiscard]] std::string path_for(const std::string& key) const;
  /// Reads and validates a disk envelope; returns the result bytes.
  [[nodiscard]] std::optional<std::string> load_from_disk(
      const std::string& key) const;
  /// Inserts/refreshes key as MRU, then evicts from the LRU end until
  /// the bounds hold. Caller holds mutex_.
  void insert_locked(const std::string& key, const std::string& value);
  void evict_to_bounds_locked();

  mutable std::mutex mutex_;
  std::string dir_;
  std::size_t max_entries_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::list<std::string> lru_;  ///< front = most recent
  std::unordered_map<std::string, Entry> memory_;
  obs::MetricsRegistry::MetricId m_evictions_;
};

}  // namespace jamelect::service
