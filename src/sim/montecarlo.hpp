// Monte-Carlo harness: seeded, reproducible repeated trials with
// parallel fan-out, for all three engines.
//
// Reproducibility contract: trial k of a run with seed S derives all of
// its randomness from mix64(S, k) — results are independent of thread
// count and scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/span.hpp"
#include "sim/adversary_spec.hpp"
#include "sim/batch.hpp"
#include "sim/engine.hpp"
#include "sim/hybrid.hpp"
#include "sim/outcome.hpp"
#include "support/stats.hpp"

namespace jamelect {

class ThreadPool;

namespace obs {
class TraceEventRecorder;
}  // namespace obs

struct McConfig {
  std::size_t trials = 100;
  std::uint64_t seed = 1;
  std::int64_t max_slots = 1'000'000;
  /// Run trials on the global thread pool (deterministic either way).
  bool parallel = true;
  /// Batched kernel engine (sim/batch.hpp): when > 0, run_aggregate_mc
  /// and run_hybrid_mc advance `batch` trials per work item in SoA
  /// lockstep with devirtualized protocol kernels and cached slot
  /// probabilities — for kernelizable protocols (LESK, LESU, plain
  /// uniform, Willard, Nakano–Olariu, NoCdElection); run_station_mc
  /// runs kernelizable station protocols (ARSS) through devirtualized
  /// trial chunks (sim/station_batch.hpp); run_cohort_mc runs paper-
  /// protocol prototypes (LESK, LESU, plain uniform) as multi-trial
  /// cohort lanes with memoized binomial plans (sim/cohort_batch.hpp).
  /// Anything else falls back to the sequential path, counted by
  /// mc.batch_fallbacks and the reason-labeled mc.batch_fallback.*
  /// partition. Per-trial outcomes are bit-identical to batch == 0
  /// (same mix64(seed, k) derivation per trial), so this is purely a
  /// throughput knob.
  std::size_t batch = 0;
  /// Lane-stepping mode for the batched engine (ignored when batch ==
  /// 0): kAuto picks the SIMD-wide path whenever the adversary policy
  /// has a wide engine — shared jam bit for lane-invariant policies,
  /// per-lane SoA state (sim/lane_adversary.hpp) for the adaptive
  /// built-ins; see BatchLaneMode. Outcomes are bit-identical across
  /// modes — another pure throughput knob.
  BatchLaneMode batch_lanes = BatchLaneMode::kAuto;
  /// Random-stream backend for the batched engine (ignored when batch
  /// == 0): kXoshiro reproduces the sequential path bit for bit;
  /// kAesCtr keys trial k's draws as AES-CTR stream k — a DIFFERENT
  /// (internally consistent) result universe whose per-trial outcomes
  /// are invariant across thread counts, lane modes, and AES
  /// implementations. Non-kernelizable protocols fall back to the
  /// sequential xoshiro path regardless (counted by
  /// mc.rng_backend_fallbacks).
  RngBackend rng_backend = RngBackend::kXoshiro;
  /// Pool to fan trials out on when `parallel` (nullptr = the
  /// process-wide global_pool()). Non-owning; must outlive the run.
  /// Results are bit-identical for every pool size — this exists so
  /// callers (and the scheduling-determinism tests) can pin an exact
  /// worker count without touching JAMELECT_THREADS.
  ThreadPool* pool = nullptr;
  /// Materialize McResult::outcomes (per-trial detail). Off by default:
  /// the streaming path aggregates into O(distinct-values) count maps
  /// per thread, so million-trial sweeps don't hold a TrialOutcome per
  /// trial in memory. Summaries are identical either way.
  bool keep_outcomes = false;
  /// Print progress lines ("[mc] done/total trials, slots/s, eta") to
  /// stderr every `heartbeat_interval_ms` while trials are in flight,
  /// plus one deterministic completion line. Purely observational: the
  /// reproducibility contract (results depend only on seed and trial
  /// index) is unaffected.
  bool heartbeat = false;
  std::int64_t heartbeat_interval_ms = 2000;
  /// Optional wall-clock recorder (obs/trace_events.hpp): each trial is
  /// wrapped in a "trial" span. Non-owning; must outlive the run.
  obs::TraceEventRecorder* recorder = nullptr;
  /// Request lineage: every span the run records (mc.trial, mc.batch,
  /// pool_task) is tagged with this id via obs::ScopedTrace, so one
  /// service request reassembles into one Chrome-trace tree. Invalid
  /// (the default) = untraced. Purely observational.
  obs::TraceId trace{};
};

/// Aggregated view over the trials of one configuration.
struct McResult {
  std::size_t trials = 0;
  /// True when a cooperative shutdown (support/shutdown.hpp) drained
  /// the run early: `trials` is then the number of trials that actually
  /// completed (< McConfig::trials) and every summary covers exactly
  /// those trials — completed trials are never truncated mid-slot.
  /// Interrupted results must not be cached or compared across runs:
  /// WHICH trials completed depends on scheduling at the instant of the
  /// signal. Always false when no shutdown was requested.
  bool interrupted = false;
  std::size_t successes = 0;
  RateInterval success = {0, 0, 0};  ///< Wilson 95% CI of success rate
  /// Slots-to-elect over ALL trials; failures are right-censored at
  /// max_slots (so with failures present, `slots.mean` is a lower
  /// bound on the true mean).
  Summary slots;
  /// Slots over successful trials only (empty summary if none).
  Summary slots_on_success;
  Summary jams;
  /// Mean per-station transmissions ("energy").
  Summary energy_per_station;
  /// Per-trial detail, trial-indexed; empty unless
  /// McConfig::keep_outcomes was set. On an interrupted run the vector
  /// is compacted to the completed trials, in trial order.
  std::vector<TrialOutcome> outcomes;
};

/// One full trial: build everything from the trial-local rng, run, and
/// return the outcome.
using TrialRunner = std::function<TrialOutcome(Rng trial_rng)>;

/// Generic driver: runs `runner` `config.trials` times and aggregates.
[[nodiscard]] McResult run_trials(const TrialRunner& runner,
                                  std::uint64_t n_for_energy,
                                  const McConfig& config);

/// Aggregate engine (strong-CD, uniform protocols).
[[nodiscard]] McResult run_aggregate_mc(const UniformProtocolFactory& factory,
                                        const AdversarySpec& adversary,
                                        std::uint64_t n, const McConfig& config);

/// Hybrid engine (weak-CD Notification over a uniform inner protocol).
[[nodiscard]] McResult run_hybrid_mc(const UniformProtocolFactory& factory,
                                     const AdversarySpec& adversary,
                                     std::uint64_t n, const McConfig& config);

/// Per-station engine; `station_factory(i)` builds station i.
[[nodiscard]] McResult run_station_mc(
    const std::function<StationProtocolPtr(StationId)>& station_factory,
    const AdversarySpec& adversary, std::uint64_t n, EngineConfig engine,
    const McConfig& config);

/// Cohort-compressed engine (sim/cohort.hpp): n stations all built as
/// clones of `prototype_factory()`. Distributionally equivalent to
/// run_station_mc with identical stations, at O(#cohorts) per slot.
[[nodiscard]] McResult run_cohort_mc(
    const std::function<StationProtocolPtr()>& prototype_factory,
    const AdversarySpec& adversary, std::uint64_t n, EngineConfig engine,
    const McConfig& config);

/// Replays trial `trial` of the run_aggregate_mc(factory, adversary, n,
/// config) sweep with telemetry attached: `observer` (if non-null)
/// receives begin/end-trial markers, per-slot events, and protocol
/// phase events; `trace` (if non-null) records the slot stream. The
/// returned outcome is bit-identical to the original trial's — trial
/// randomness derives only from (config.seed, trial), and observers
/// consume no randomness.
[[nodiscard]] TrialOutcome replay_aggregate_trial(
    const UniformProtocolFactory& factory, const AdversarySpec& adversary,
    std::uint64_t n, const McConfig& config, std::size_t trial,
    obs::RunObserver* observer, Trace* trace = nullptr);

/// Replays trial `trial` of the run_cohort_mc(prototype_factory,
/// adversary, n, engine, config) sweep; same contract as
/// replay_aggregate_trial, plus cohort split/merge events.
[[nodiscard]] TrialOutcome replay_cohort_trial(
    const std::function<StationProtocolPtr()>& prototype_factory,
    const AdversarySpec& adversary, std::uint64_t n, EngineConfig engine,
    const McConfig& config, std::size_t trial, obs::RunObserver* observer,
    Trace* trace = nullptr);

}  // namespace jamelect
