// SlotEngine — exact per-station simulation, any CD mode.
//
// O(n) work per slot: each station is asked for a transmit probability,
// its coin is drawn, the channel is resolved once (together with the
// adversary's jam bit, committed before the coins), and every station
// receives its CD-model-specific Observation. This engine is the ground
// truth the fast aggregate/hybrid engines are validated against, and
// the only engine that can run non-uniform protocols (ARSS) or verify
// full election semantics (every station terminates, exactly one
// leader, the leader knows).
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/adversary.hpp"
#include "channel/trace.hpp"
#include "obs/observer.hpp"
#include "protocols/station.hpp"
#include "sim/outcome.hpp"
#include "support/rng.hpp"

namespace jamelect {

/// When does a run count as complete?
enum class StopRule : std::uint8_t {
  /// All stations report done() — full leader election (LEWK/LEWU,
  /// strong-CD adapters, ARSS).
  kAllDone,
  /// The first un-jammed Single on the channel — selection resolution
  /// (e.g. bare LESK under weak-CD, where the transmitter itself can
  /// never terminate without Notification).
  kFirstSingle,
};

struct EngineConfig {
  CdMode cd = CdMode::kStrong;
  StopRule stop = StopRule::kAllDone;
  std::int64_t max_slots = 1'000'000;
  /// Optional telemetry observer (non-owning; must outlive the run).
  /// Null costs one pointer test per slot.
  obs::RunObserver* observer = nullptr;
};

class SlotEngine {
 public:
  /// Takes ownership of stations and adversary. `rng` drives all coins.
  SlotEngine(std::vector<StationProtocolPtr> stations,
             std::unique_ptr<BoundedAdversary> adversary, Rng rng,
             EngineConfig config);

  /// Runs to completion or slot budget; returns the outcome.
  [[nodiscard]] TrialOutcome run(Trace* trace = nullptr);

  /// Per-station realized transmission counts (energy), valid after run().
  [[nodiscard]] const std::vector<std::int64_t>& transmissions_per_station()
      const noexcept {
    return tx_counts_;
  }

  [[nodiscard]] const BoundedAdversary& adversary() const noexcept {
    return *adversary_;
  }
  [[nodiscard]] const StationProtocol& station(std::size_t i) const {
    return *stations_.at(i);
  }
  [[nodiscard]] std::size_t num_stations() const noexcept {
    return stations_.size();
  }

 private:
  std::vector<StationProtocolPtr> stations_;
  std::unique_ptr<BoundedAdversary> adversary_;
  Rng rng_;
  EngineConfig config_;
  std::vector<std::int64_t> tx_counts_;
};

}  // namespace jamelect
