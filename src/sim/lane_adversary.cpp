#include "sim/lane_adversary.hpp"

#include <algorithm>
#include <bit>

#include "support/expects.hpp"
#include "support/math.hpp"

namespace jamelect {

bool LaneAdversaryBank::supports(const AdversarySpec& spec) noexcept {
  return spec.policy == "bernoulli" || spec.policy == "single_denial" ||
         spec.policy == "collision_forcer";
}

LaneAdversaryBank::LaneAdversaryBank(const AdversarySpec& spec,
                                     const Rng& base, std::size_t first,
                                     std::size_t count)
    : T_(spec.T), eps_(EpsRatio::from_double(spec.eps)) {
  JAMELECT_EXPECTS(count >= 1);
  JAMELECT_EXPECTS(spec.T >= 1);
  JAMELECT_EXPECTS(supports(spec));

  // Same initial budget as JammingBudget's constructor: a virtual
  // unjammed window of length T, B = -(den-num)*T, zeroed ring.
  b_.assign(count, -(eps_.den - eps_.num) * T_);
  window_jams_.assign(count, 0);
  ring_.assign(count * static_cast<std::size_t>(T_), 0);

  const double protocol_eps =
      spec.protocol_eps > 0.0 ? spec.protocol_eps : spec.eps;

  if (spec.policy == "bernoulli") {
    kind_ = Kind::kBernoulli;
    q_ = spec.q > 0.0 ? spec.q : 1.0 - spec.eps;
    JAMELECT_EXPECTS(q_ >= 0.0 && q_ <= 1.0);
    if (q_ > 0.0 && q_ < 1.0) {
      rng_.emplace(count);
      for (std::size_t k = 0; k < count; ++k) {
        // The scalar policy stream: trial rng -> adversary child
        // (0xad50) -> bernoulli child (0x6a616d), always xoshiro.
        rng_->seed_lane(
            k, base.child(first + k).child(0xad50).child(0x6a616d).seed());
      }
      draws_.assign(rng_->padded_lanes(), 0.0);
    }
    return;
  }

  // Mirror policies. Replicate the scalar constructors' contracts:
  // LeskEstimateMirror requires protocol_eps in (0, 1], both policies
  // require n >= 1, single_denial's threshold lies in (0, 1) and
  // collision_forcer's in (0, 1].
  JAMELECT_EXPECTS(protocol_eps > 0.0 && protocol_eps <= 1.0);
  JAMELECT_EXPECTS(spec.n >= 1);
  increment_ = protocol_eps / 8.0;
  n_ = spec.n;
  if (spec.policy == "single_denial") {
    kind_ = Kind::kSingleDenial;
    threshold_ = spec.threshold;
    JAMELECT_EXPECTS(threshold_ > 0.0 && threshold_ < 1.0);
  } else {
    kind_ = Kind::kCollisionForcer;
    threshold_ = spec.collision_threshold;
    JAMELECT_EXPECTS(threshold_ > 0.0 && threshold_ <= 1.0);
  }
  u_.assign(count, 0.0);
  desire_.assign(count, desire_for(0.0) ? 1 : 0);
}

bool LaneAdversaryBank::desire_for(double u) {
  const std::uint64_t key = std::bit_cast<std::uint64_t>(u);
  const auto it = desire_memo_.find(key);
  if (it != desire_memo_.end()) return it->second;
  // The scalar policies evaluate slot_probabilities directly from the
  // mirrored estimate; do the same (never reconstruct these from
  // SlotProbCache cumulative thresholds — different rounding).
  const SlotProbabilities probs =
      slot_probabilities(n_, transmit_probability(u));
  const bool desire = kind_ == Kind::kSingleDenial
                          ? probs.single >= threshold_
                          : probs.collision < threshold_;
  desire_memo_.emplace(key, desire);
  return desire;
}

void LaneAdversaryBank::step(std::uint8_t* jam, std::size_t active) {
  // Policy desires first (the scalar path always evaluates desires_jam
  // before consulting the budget — the draw happens even when the
  // budget would veto the jam).
  if (kind_ == Kind::kBernoulli && q_ <= 0.0) {
    // Never desires, never draws. The budget is only ever read to veto
    // a desired jam, so skipping the per-lane commit cannot change any
    // output.
    std::fill(jam, jam + active, std::uint8_t{0});
    return;
  }

  const std::int64_t den = eps_.den;
  const std::int64_t num = eps_.num;
  const std::int64_t decay = den - num;
  const auto pos = static_cast<std::size_t>(ring_pos_);
  const auto T = static_cast<std::size_t>(T_);

  if (kind_ == Kind::kBernoulli && q_ > 0.0 && q_ < 1.0) {
    const std::size_t groups = (active + kWideLanes - 1) / kWideLanes;
    rng_->uniform_groups(groups, draws_.data());
  }

  for (std::size_t k = 0; k < active; ++k) {
    const bool desires = kind_ == Kind::kBernoulli
                             ? (q_ >= 1.0 || draws_[k] < q_)
                             : desire_[k] != 0;
    // JammingBudget::can_jam + commit, inlined per lane with the shared
    // ring cursor (budget.cpp's exact recurrence).
    std::uint8_t* const ring = ring_.data() + k * T;
    const std::int64_t evicted = ring[pos];
    const std::int64_t hyp_jam =
        std::max(b_[k] + num, den * (window_jams_[k] - evicted + 1) - decay * T_);
    const bool jam_k = desires && hyp_jam <= 0;
    b_[k] = jam_k ? hyp_jam
                  : std::max(b_[k] - decay,
                             den * (window_jams_[k] - evicted) - decay * T_);
    window_jams_[k] += (jam_k ? 1 : 0) - evicted;
    ring[pos] = jam_k ? 1 : 0;
    jam[k] = jam_k ? 1 : 0;
  }
  ring_pos_ = (ring_pos_ + 1) % T_;
}

void LaneAdversaryBank::observe(const std::int64_t* states,
                                std::size_t active) {
  if (kind_ == Kind::kBernoulli) return;  // no observe() override
  for (std::size_t k = 0; k < active; ++k) {
    switch (states[k]) {
      case 0:  // Null
        u_[k] = std::max(0.0, u_[k] - 1.0);
        break;
      case 2:  // Collision
        u_[k] += increment_;
        break;
      default:  // Single: the protocol has terminated; tracking is moot
        continue;
    }
    desire_[k] = desire_for(u_[k]) ? 1 : 0;
  }
}

void LaneAdversaryBank::move_lane(std::size_t dst, std::size_t src) {
  if (dst == src) return;
  b_[dst] = b_[src];
  window_jams_[dst] = window_jams_[src];
  const auto T = static_cast<std::size_t>(T_);
  std::copy_n(ring_.data() + src * T, T, ring_.data() + dst * T);
  if (rng_) rng_->move_lane(dst, src);
  if (!u_.empty()) {
    u_[dst] = u_[src];
    desire_[dst] = desire_[src];
  }
}

}  // namespace jamelect
