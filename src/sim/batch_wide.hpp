// Fused per-slot SIMD primitives for the wide batch engine
// (sim/batch.cpp aggregate_lanes_wide). One call advances every lane's
// xoshiro256** stream, converts the draws to uniforms, classifies them
// against per-lane cumulative thresholds, and accumulates the per-lane
// outcome counters — branch-free, one SIMD group (kWideLanes lanes) at
// a time.
//
// Classification is the branch-free mirror of batch.cpp's category():
//   lt0 = r < c_null, lt1 = r < c_single  (lt0 implies lt1),
//   state = 2 - lt0 - lt1   (0 = Null, 1 = Single, 2 = Collision),
//   nulls += lt0, singles += lt1 - lt0, transmissions += exp_tx.
// The *_lesk variants additionally fold in LeskKernel::step on the SoA
// u array: Null -> max(u - 1, 0), Collision -> u + inc, Single ->
// unchanged (the lane retires this slot). Jammed variants advance the
// streams without converting (the scalar path draws and discards) and
// accumulate only transmissions — the slot is a Collision for every
// lane, which the engine derives as slots - nulls - singles.
//
// Both backends process lanes in ascending order with the exact scalar
// double expressions (the AVX2 u64->double conversion and max/add/blend
// sequences are exact step-for-step), so the per-lane accumulator
// values are bit-identical to the scalar lane engine's.
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/wide_rng.hpp"

namespace jamelect::wide {

/// SoA views of the wide engine's per-lane state. All arrays hold at
/// least groups * kWideLanes elements; the rng planes come from
/// WideXoshiro::plane(0..3).
struct LaneBlock {
  std::uint64_t* s0;
  std::uint64_t* s1;
  std::uint64_t* s2;
  std::uint64_t* s3;
  const double* c_null;    ///< per-lane P[Null] threshold
  const double* c_single;  ///< per-lane P[Null] + P[Single] threshold
  const double* exp_tx;    ///< per-lane expected transmissions (n * p)
  double* transmissions;   ///< per-lane accumulator
  std::int64_t* nulls;     ///< per-lane accumulator
  std::int64_t* singles;   ///< per-lane accumulator
  std::int64_t* states;    ///< out: this slot's ChannelState per lane
};

/// One backend's fused slot kernels; all process groups * kWideLanes
/// lanes. The clean variants return true iff any lane resolved Single
/// (the engine's cue to run a retirement pass).
struct SlotOps {
  bool (*clean_slot)(const LaneBlock& b, std::size_t groups);
  void (*jammed_slot)(const LaneBlock& b, std::size_t groups);
  bool (*clean_slot_lesk)(const LaneBlock& b, double* us, double inc,
                          std::size_t groups);
  void (*jammed_slot_lesk)(const LaneBlock& b, double* us, double inc,
                           std::size_t groups);
};

/// The fused kernels for one backend (resolve with active_wide_isa()).
[[nodiscard]] const SlotOps& slot_ops(WideIsa isa) noexcept;

}  // namespace jamelect::wide
