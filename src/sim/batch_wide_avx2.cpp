// AVX2 backend of the fused slot primitives: 4 lanes per 256-bit
// vector, branch-free classification via compare masks.
//
// Exactness notes (the bit-identity contract depends on these):
//  * to_uniform4_avx2 equals the scalar (x >> 11) * 2^-53 bit-for-bit
//    (see support/wide_rng_step.hpp).
//  * The threshold compares use _CMP_LT_OQ — the ordinary `<` on
//    numbers (no NaNs can occur: thresholds are probabilities).
//  * All accumulator arithmetic (tx += exp_tx, u - 1.0, u + inc) is
//    the same single add/sub per lane as the scalar path — there is no
//    re-association, and max(u - 1.0, 0.0) cannot see -0.0 (u >= 0),
//    so _mm256_max_pd with the zero vector second matches std::max.
#include <cstddef>
#include <cstdint>

#include "sim/batch_wide.hpp"
#include "support/wide_rng_step.hpp"

#if !defined(__AVX2__)
#error "batch_wide_avx2.cpp must be compiled with -mavx2"
#endif

namespace jamelect::wide::avx2 {

namespace {

using wide_detail::step4_avx2;
using wide_detail::to_uniform4_avx2;

/// Per-group working set: advances the group's rng states in place and
/// yields the uniform draws plus the classification masks.
struct GroupClassify {
  __m256d r;        ///< the four uniform draws
  __m256i lt0;      ///< all-ones where r < c_null   (Null)
  __m256i lt1;      ///< all-ones where r < c_single (Null or Single)
  __m256i single_;  ///< all-ones where exactly Single
};

inline __m256i load64(const std::uint64_t* p) noexcept {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline __m256i load64(const std::int64_t* p) noexcept {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline void store64(std::uint64_t* p, __m256i v) noexcept {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}
inline void store64(std::int64_t* p, __m256i v) noexcept {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

inline __m256d advance_group(const LaneBlock& b, std::size_t i) noexcept {
  __m256i v0 = load64(b.s0 + i);
  __m256i v1 = load64(b.s1 + i);
  __m256i v2 = load64(b.s2 + i);
  __m256i v3 = load64(b.s3 + i);
  const __m256i x = step4_avx2(v0, v1, v2, v3);
  store64(b.s0 + i, v0);
  store64(b.s1 + i, v1);
  store64(b.s2 + i, v2);
  store64(b.s3 + i, v3);
  return to_uniform4_avx2(x);
}

/// Advances the group's states without converting the outputs — the
/// jammed-slot mirror of "draw and discard".
inline void advance_group_discard(const LaneBlock& b,
                                  std::size_t i) noexcept {
  __m256i v0 = load64(b.s0 + i);
  __m256i v1 = load64(b.s1 + i);
  __m256i v2 = load64(b.s2 + i);
  __m256i v3 = load64(b.s3 + i);
  (void)step4_avx2(v0, v1, v2, v3);
  store64(b.s0 + i, v0);
  store64(b.s1 + i, v1);
  store64(b.s2 + i, v2);
  store64(b.s3 + i, v3);
}

/// Classifies the group's draws and folds them into the accumulators:
///   state = 2 + lt0 + lt1 (masks are -1), nulls -= lt0,
///   singles += lt0 - lt1, tx += exp_tx.
inline GroupClassify classify_group(const LaneBlock& b, std::size_t i,
                                    __m256d r) noexcept {
  GroupClassify g;
  g.r = r;
  const __m256d cn = _mm256_loadu_pd(b.c_null + i);
  const __m256d cs = _mm256_loadu_pd(b.c_single + i);
  g.lt0 = _mm256_castpd_si256(_mm256_cmp_pd(r, cn, _CMP_LT_OQ));
  g.lt1 = _mm256_castpd_si256(_mm256_cmp_pd(r, cs, _CMP_LT_OQ));
  g.single_ = _mm256_andnot_si256(g.lt0, g.lt1);
  const __m256i two = _mm256_set1_epi64x(2);
  const __m256i state = _mm256_add_epi64(two, _mm256_add_epi64(g.lt0, g.lt1));
  store64(b.states + i, state);
  store64(b.nulls + i, _mm256_sub_epi64(load64(b.nulls + i), g.lt0));
  store64(b.singles + i,
          _mm256_add_epi64(load64(b.singles + i),
                           _mm256_sub_epi64(g.lt0, g.lt1)));
  const __m256d tx = _mm256_loadu_pd(b.transmissions + i);
  _mm256_storeu_pd(b.transmissions + i,
                   _mm256_add_pd(tx, _mm256_loadu_pd(b.exp_tx + i)));
  return g;
}

}  // namespace

bool clean_slot(const LaneBlock& b, std::size_t groups) noexcept {
  __m256i any_single = _mm256_setzero_si256();
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t i = g * kWideLanes;
    const GroupClassify c = classify_group(b, i, advance_group(b, i));
    any_single = _mm256_or_si256(any_single, c.single_);
  }
  return _mm256_movemask_pd(_mm256_castsi256_pd(any_single)) != 0;
}

void jammed_slot(const LaneBlock& b, std::size_t groups) noexcept {
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t i = g * kWideLanes;
    advance_group_discard(b, i);
    const __m256d tx = _mm256_loadu_pd(b.transmissions + i);
    _mm256_storeu_pd(b.transmissions + i,
                     _mm256_add_pd(tx, _mm256_loadu_pd(b.exp_tx + i)));
  }
}

bool clean_slot_lesk(const LaneBlock& b, double* us, double inc,
                     std::size_t groups) noexcept {
  __m256i any_single = _mm256_setzero_si256();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d vinc = _mm256_set1_pd(inc);
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t i = g * kWideLanes;
    const GroupClassify c = classify_group(b, i, advance_group(b, i));
    any_single = _mm256_or_si256(any_single, c.single_);
    // LeskKernel::step on u: Null -> max(u-1, 0), Collision -> u+inc,
    // Single -> unchanged. blendv takes the second operand where the
    // mask's sign bit is set.
    const __m256d u = _mm256_loadu_pd(us + i);
    const __m256d u_null = _mm256_max_pd(_mm256_sub_pd(u, one), zero);
    const __m256d u_coll = _mm256_add_pd(u, vinc);
    __m256d next =
        _mm256_blendv_pd(u_coll, u_null, _mm256_castsi256_pd(c.lt0));
    next = _mm256_blendv_pd(next, u, _mm256_castsi256_pd(c.single_));
    _mm256_storeu_pd(us + i, next);
  }
  return _mm256_movemask_pd(_mm256_castsi256_pd(any_single)) != 0;
}

void jammed_slot_lesk(const LaneBlock& b, double* us, double inc,
                      std::size_t groups) noexcept {
  const __m256d vinc = _mm256_set1_pd(inc);
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t i = g * kWideLanes;
    advance_group_discard(b, i);
    const __m256d tx = _mm256_loadu_pd(b.transmissions + i);
    _mm256_storeu_pd(b.transmissions + i,
                     _mm256_add_pd(tx, _mm256_loadu_pd(b.exp_tx + i)));
    _mm256_storeu_pd(us + i, _mm256_add_pd(_mm256_loadu_pd(us + i), vinc));
  }
}

}  // namespace jamelect::wide::avx2
