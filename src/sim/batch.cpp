#include "sim/batch.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "channel/channel.hpp"
#include "obs/metrics.hpp"
#include "protocols/interval_partition.hpp"
#include "protocols/kernels.hpp"
#include "support/expects.hpp"
#include "support/math.hpp"
#include "support/slot_prob_cache.hpp"

namespace jamelect {

namespace {

/// Params -> kernel type map for std::visit dispatch.
template <class Params>
struct KernelFor;
template <>
struct KernelFor<PlainUniformParams> {
  using type = kernels::UniformKernel;
};
template <>
struct KernelFor<LeskParams> {
  using type = kernels::LeskKernel;
};
template <>
struct KernelFor<LesuParams> {
  using type = kernels::LesuKernel;
};

[[nodiscard]] std::uint64_t category(double r, const SlotProbCache::Entry& e) {
  if (r < e.c_null) return 0;
  if (r < e.c_single) return 1;
  return 2;
}

void record_state(TrialOutcome& o, ChannelState state) {
  switch (state) {
    case ChannelState::kNull: ++o.nulls; break;
    case ChannelState::kSingle: ++o.singles; break;
    case ChannelState::kCollision: ++o.collisions; break;
  }
}

/// Policies whose jam schedule is a deterministic function of (slot,
/// own budget) alone — no rng draws, no observe() feedback — produce
/// the identical bit sequence in every lane, so one adversary instance
/// can serve the whole chunk with a single step() per slot. The
/// adaptive policies (bernoulli, single_denial, collision_forcer,
/// oracle_denial, interval_buster) stay per-lane.
[[nodiscard]] bool lane_invariant_policy(const AdversarySpec& spec) {
  return spec.policy == "none" || spec.policy == "saturating" ||
         spec.policy == "periodic" || spec.policy == "pulse";
}

/// Strong-CD aggregate lanes: the SoA mirror of run_aggregate
/// (sim/aggregate.cpp), one uniform() per slot + one below(n) on
/// election per lane, additions in the same per-lane order.
template <class Kernel>
void aggregate_lanes(const typename Kernel::Params& params,
                     const AdversarySpec& spec, const BatchConfig& config,
                     const Rng& base, std::size_t first, std::size_t count,
                     TrialOutcome* out) {
  JAMELECT_EXPECTS(config.n >= 1);
  JAMELECT_EXPECTS(config.max_slots >= 1);
  const std::uint64_t n = config.n;
  const double nd = static_cast<double>(n);
  SlotProbCache cache(n);

  std::vector<Kernel> kernels(count, Kernel(params));
  std::vector<Rng> rngs;
  rngs.reserve(count);
  // Deterministic policies share one adversary across all lanes (its rng
  // child stream exists but is never drawn from, so lane 0's seed is as
  // good as any); adaptive policies get one instance per lane.
  const bool shared_adv = lane_invariant_policy(spec);
  std::unique_ptr<BoundedAdversary> adv_shared;
  std::vector<std::unique_ptr<BoundedAdversary>> advs;
  if (shared_adv) {
    adv_shared = make_adversary(spec, base.child(first).child(0xad50));
  } else {
    advs.resize(count);
  }
  std::vector<std::uint32_t> lane_trial(count);
  std::vector<TrialOutcome> acc(count);
  for (std::size_t k = 0; k < count; ++k) {
    const Rng trial_rng = base.child(first + k);
    if (!shared_adv) advs[k] = make_adversary(spec, trial_rng.child(0xad50));
    rngs.push_back(trial_rng.child(0x51e0));
    lane_trial[k] = static_cast<std::uint32_t>(k);
  }

  std::size_t active = count;
  std::int64_t slots_total = 0;
  for (Slot slot = 0; slot < config.max_slots && active > 0; ++slot) {
    slots_total += static_cast<std::int64_t>(active);
    const bool jam_all = shared_adv && adv_shared->step();
    for (std::size_t lane = 0; lane < active;) {
      Kernel& kern = kernels[lane];
      const SlotProbCache::Entry& e = cache.lookup(kern.broadcast_u());
      const bool jammed = shared_adv ? jam_all : advs[lane]->step();
      const std::uint64_t cnt = category(rngs[lane].uniform(), e);
      const ChannelState state = resolve_slot(cnt, jammed);

      TrialOutcome& o = acc[lane];
      ++o.slots;
      o.transmissions += nd * e.p;
      if (jammed) ++o.jams;
      record_state(o, state);

      kern.step(state);
      if (!shared_adv) advs[lane]->observe({slot, cnt, jammed, state});

      if (kern.done()) {
        JAMELECT_ENSURES(state == ChannelState::kSingle);
        o.elected = true;
        o.all_done = true;
        o.unique_leader = true;
        o.leader = rngs[lane].below(n);
        out[lane_trial[lane]] = o;
        --active;
        if (lane != active) {
          kernels[lane] = kernels[active];
          rngs[lane] = rngs[active];
          if (!shared_adv) advs[lane] = std::move(advs[active]);
          lane_trial[lane] = lane_trial[active];
          acc[lane] = acc[active];
        }
      } else {
        ++lane;
      }
    }
  }
  // Right-censored lanes: budget exhausted without election.
  for (std::size_t lane = 0; lane < active; ++lane) {
    out[lane_trial[lane]] = acc[lane];
  }
  JAMELECT_OBS_COUNT("engine.batch.aggregate_chunks", 1);
  JAMELECT_OBS_COUNT("engine.batch.slots", slots_total);
  JAMELECT_OBS_COUNT("engine.batch.cache_misses",
                     static_cast<std::int64_t>(cache.misses()));
}

/// A kernel slot that may be unoccupied — the batch mirror of the
/// UniformProtocolPtr null/reset dance in run_hybrid_notification.
template <class Kernel>
struct MaybeKernel {
  Kernel kernel;
  bool valid = false;
};

/// Weak-CD hybrid Notification lanes: the SoA mirror of
/// run_hybrid_notification (sim/hybrid.cpp). classify_slot is shared
/// across lanes (lockstep keeps every active lane at the same slot);
/// each lane runs the P1..P4 phase machine with kernels standing in
/// for the shared/l/s protocol instances.
template <class Kernel>
void hybrid_lanes(const typename Kernel::Params& params,
                  const AdversarySpec& spec, const BatchConfig& config,
                  const Rng& base, std::size_t first, std::size_t count,
                  TrialOutcome* out) {
  JAMELECT_EXPECTS(config.n >= 3);
  JAMELECT_EXPECTS(config.max_slots >= 1);
  const std::uint64_t n = config.n;
  const double nd = static_cast<double>(n);
  const double nm1d = static_cast<double>(n - 1);
  SlotProbCache cache_n(n);
  SlotProbCache cache_nm1(n - 1);

  enum class Phase : std::uint8_t { kP1, kP2, kP3, kP4, kDone };

  std::vector<Phase> phases(count, Phase::kP1);
  std::vector<MaybeKernel<Kernel>> shared(count, {Kernel(params), false});
  std::vector<MaybeKernel<Kernel>> l_a(count, {Kernel(params), false});
  std::vector<MaybeKernel<Kernel>> s_a(count, {Kernel(params), false});
  std::vector<Rng> rngs;
  rngs.reserve(count);
  const bool shared_adv = lane_invariant_policy(spec);
  std::unique_ptr<BoundedAdversary> adv_shared;
  std::vector<std::unique_ptr<BoundedAdversary>> advs;
  if (shared_adv) {
    adv_shared = make_adversary(spec, base.child(first).child(0xad50));
  } else {
    advs.resize(count);
  }
  std::vector<std::uint32_t> lane_trial(count);
  std::vector<TrialOutcome> acc(count);
  for (std::size_t k = 0; k < count; ++k) {
    const Rng trial_rng = base.child(first + k);
    if (!shared_adv) advs[k] = make_adversary(spec, trial_rng.child(0xad50));
    rngs.push_back(trial_rng.child(0x51e0));
    lane_trial[k] = static_cast<std::uint32_t>(k);
  }

  std::size_t active = count;
  std::int64_t slots_total = 0;
  for (Slot slot = 0; slot < config.max_slots && active > 0; ++slot) {
    const IntervalPosition pos = classify_slot(slot);
    slots_total += static_cast<std::int64_t>(active);
    const bool jam_all = shared_adv && adv_shared->step();
    for (std::size_t lane = 0; lane < active;) {
      const Phase phase = phases[lane];
      Rng& rng = rngs[lane];
      const bool jammed = shared_adv ? jam_all : advs[lane]->step();

      std::uint64_t cnt = 0;
      double expected_tx = 0.0;

      if (pos.set != IntervalSet::kPadding) {
        switch (phase) {
          case Phase::kP1:
            if (pos.set == IntervalSet::kC1) {
              if (pos.interval_start() || !shared[lane].valid) {
                shared[lane] = {Kernel(params), true};
              }
              const SlotProbCache::Entry& e =
                  cache_n.lookup(shared[lane].kernel.broadcast_u());
              expected_tx = nd * e.p;
              cnt = category(rng.uniform(), e);
            }
            break;
          case Phase::kP2:
            if (pos.set == IntervalSet::kC1) {
              if (pos.interval_start() || !l_a[lane].valid) {
                l_a[lane] = {Kernel(params), true};
              }
              const double p =
                  transmit_probability(l_a[lane].kernel.broadcast_u());
              expected_tx = p;
              cnt = rng.bernoulli(p) ? 1 : 0;
            } else if (pos.set == IntervalSet::kC2) {
              if (pos.interval_start() || !shared[lane].valid) {
                shared[lane] = {Kernel(params), true};
              }
              const SlotProbCache::Entry& e =
                  cache_nm1.lookup(shared[lane].kernel.broadcast_u());
              expected_tx = nm1d * e.p;
              cnt = category(rng.uniform(), e);
            }
            break;
          case Phase::kP3:
            if (pos.set == IntervalSet::kC1) {
              cnt = n - 2;  // all of R confirms; n >= 3 so cnt >= 1
              expected_tx = static_cast<double>(n - 2);
            } else if (pos.set == IntervalSet::kC2) {
              if (pos.interval_start() || !s_a[lane].valid) {
                s_a[lane] = {Kernel(params), true};
              }
              const double p =
                  transmit_probability(s_a[lane].kernel.broadcast_u());
              expected_tx = p;
              cnt = rng.bernoulli(p) ? 1 : 0;
            } else {  // C3: l announces
              cnt = 1;
              expected_tx = 1.0;
            }
            break;
          case Phase::kP4:
            if (pos.set == IntervalSet::kC3) {
              cnt = 1;  // l keeps announcing until released
              expected_tx = 1.0;
            }
            break;
          case Phase::kDone:
            break;
        }
      }

      const ChannelState state = resolve_slot(cnt, jammed);

      TrialOutcome& o = acc[lane];
      ++o.slots;
      o.transmissions += expected_tx;
      if (jammed) ++o.jams;
      record_state(o, state);
      if (!shared_adv) advs[lane]->observe({slot, cnt, jammed, state});

      if (pos.set != IntervalSet::kPadding) {
        switch (phase) {
          case Phase::kP1:
            if (pos.set == IntervalSet::kC1) {
              if (state == ChannelState::kSingle) {
                l_a[lane] = {shared[lane].kernel, true};
                l_a[lane].kernel.step(ChannelState::kCollision);
                shared[lane].valid = false;
                phases[lane] = Phase::kP2;
              } else {
                shared[lane].kernel.step(state);
              }
            }
            break;
          case Phase::kP2:
            if (pos.set == IntervalSet::kC1) {
              if (l_a[lane].valid) {
                l_a[lane].kernel.step(cnt >= 1 ? ChannelState::kCollision
                                               : state);
              }
            } else if (pos.set == IntervalSet::kC2) {
              if (state == ChannelState::kSingle) {
                s_a[lane] = {shared[lane].kernel, true};
                s_a[lane].kernel.step(ChannelState::kCollision);
                shared[lane].valid = false;
                l_a[lane].valid = false;
                phases[lane] = Phase::kP3;
              } else if (shared[lane].valid) {
                shared[lane].kernel.step(state);
              }
            }
            break;
          case Phase::kP3:
            if (pos.set == IntervalSet::kC2) {
              if (s_a[lane].valid) {
                s_a[lane].kernel.step(cnt >= 1 ? ChannelState::kCollision
                                               : state);
              }
            } else if (pos.set == IntervalSet::kC3) {
              if (state == ChannelState::kSingle) {
                s_a[lane].valid = false;
                phases[lane] = Phase::kP4;
              }
            }
            break;
          case Phase::kP4:
            if (pos.set == IntervalSet::kC1 &&
                state == ChannelState::kNull) {
              phases[lane] = Phase::kDone;
            }
            break;
          case Phase::kDone:
            break;
        }
      }

      if (phases[lane] == Phase::kDone) {
        o.elected = true;
        o.all_done = true;
        o.unique_leader = true;
        o.leader = rng.below(n);
        out[lane_trial[lane]] = o;
        --active;
        if (lane != active) {
          phases[lane] = phases[active];
          shared[lane] = shared[active];
          l_a[lane] = l_a[active];
          s_a[lane] = s_a[active];
          rngs[lane] = rngs[active];
          if (!shared_adv) advs[lane] = std::move(advs[active]);
          lane_trial[lane] = lane_trial[active];
          acc[lane] = acc[active];
        }
      } else {
        ++lane;
      }
    }
  }
  for (std::size_t lane = 0; lane < active; ++lane) {
    out[lane_trial[lane]] = acc[lane];
  }
  JAMELECT_OBS_COUNT("engine.batch.hybrid_chunks", 1);
  JAMELECT_OBS_COUNT("engine.batch.slots", slots_total);
  JAMELECT_OBS_COUNT(
      "engine.batch.cache_misses",
      static_cast<std::int64_t>(cache_n.misses() + cache_nm1.misses()));
}

}  // namespace

std::optional<BatchKernelSpec> batch_kernel_spec(
    const UniformProtocol& prototype) {
  // A kernel always starts fresh from its params, so a recognized type
  // only qualifies if the probed instance is still in its constructed
  // state (state_equals against a pristine twin).
  if (const auto* p = dynamic_cast<const PlainUniform*>(&prototype)) {
    if (PlainUniform(p->params()).state_equals(prototype)) {
      return BatchKernelSpec{p->params()};
    }
    return std::nullopt;
  }
  if (const auto* p = dynamic_cast<const Lesk*>(&prototype)) {
    if (Lesk(p->params()).state_equals(prototype)) {
      return BatchKernelSpec{p->params()};
    }
    return std::nullopt;
  }
  if (const auto* p = dynamic_cast<const Lesu*>(&prototype)) {
    if (Lesu(p->params()).state_equals(prototype)) {
      return BatchKernelSpec{p->params()};
    }
    return std::nullopt;
  }
  return std::nullopt;
}

void run_batch_aggregate_trials(const BatchKernelSpec& spec,
                                const AdversarySpec& adversary,
                                const BatchConfig& config, const Rng& base,
                                std::size_t first, std::size_t count,
                                TrialOutcome* out) {
  JAMELECT_EXPECTS(out != nullptr || count == 0);
  if (count == 0) return;
  AdversarySpec adv = adversary;
  adv.n = config.n;
  std::visit(
      [&](const auto& params) {
        using Kernel = typename KernelFor<
            std::decay_t<decltype(params)>>::type;
        aggregate_lanes<Kernel>(params, adv, config, base, first, count, out);
      },
      spec);
}

void run_batch_hybrid_trials(const BatchKernelSpec& spec,
                             const AdversarySpec& adversary,
                             const BatchConfig& config, const Rng& base,
                             std::size_t first, std::size_t count,
                             TrialOutcome* out) {
  JAMELECT_EXPECTS(out != nullptr || count == 0);
  if (count == 0) return;
  AdversarySpec adv = adversary;
  adv.n = config.n;
  std::visit(
      [&](const auto& params) {
        using Kernel = typename KernelFor<
            std::decay_t<decltype(params)>>::type;
        hybrid_lanes<Kernel>(params, adv, config, base, first, count, out);
      },
      spec);
}

}  // namespace jamelect
