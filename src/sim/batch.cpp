#include "sim/batch.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "baselines/baseline_kernels.hpp"
#include "channel/channel.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "protocols/interval_partition.hpp"
#include "protocols/kernels.hpp"
#include "sim/batch_wide.hpp"
#include "sim/lane_adversary.hpp"
#include "support/ctr_rng.hpp"
#include "support/expects.hpp"
#include "support/math.hpp"
#include "support/slot_prob_cache.hpp"
#include "support/wide_rng.hpp"

namespace jamelect {

namespace {

/// Params -> kernel type map for std::visit dispatch.
template <class Params>
struct KernelFor;
template <>
struct KernelFor<PlainUniformParams> {
  using type = kernels::UniformKernel;
};
template <>
struct KernelFor<LeskParams> {
  using type = kernels::LeskKernel;
};
template <>
struct KernelFor<LesuParams> {
  using type = kernels::LesuKernel;
};
template <>
struct KernelFor<WillardParams> {
  using type = kernels::WillardKernel;
};
template <>
struct KernelFor<NakanoOlariuParams> {
  using type = kernels::NakanoOlariuKernel;
};
template <>
struct KernelFor<NoCdElectionParams> {
  using type = kernels::NoCdKernel;
};

[[nodiscard]] std::uint64_t category(double r, const SlotProbCache::Entry& e) {
  if (r < e.c_null) return 0;
  if (r < e.c_single) return 1;
  return 2;
}

void record_state(TrialOutcome& o, ChannelState state) {
  switch (state) {
    case ChannelState::kNull: ++o.nulls; break;
    case ChannelState::kSingle: ++o.singles; break;
    case ChannelState::kCollision: ++o.collisions; break;
  }
}

/// Policies whose jam schedule is a deterministic function of (slot,
/// own budget) alone — no rng draws, no observe() feedback — produce
/// the identical bit sequence in every lane, so one adversary instance
/// can serve the whole chunk with a single step() per slot. The
/// adaptive built-ins (bernoulli, single_denial, collision_forcer)
/// stay per-lane but still run wide through LaneAdversaryBank; every
/// built-in policy therefore has a wide engine, and scalar lanes
/// remain reachable only by explicit request (kScalarLanes) or for
/// out-of-tree policies routed through the sequential fallback.
[[nodiscard]] bool lane_invariant_policy(const AdversarySpec& spec) {
  return spec.policy == "none" || spec.policy == "saturating" ||
         spec.policy == "periodic" || spec.policy == "pulse" ||
         spec.policy == "interval_buster";
}

/// Per-thread reusable chunk state for the multi-core orchestrator.
///
/// SlotProbCache entries are pure functions of (n, u) — protocol- and
/// trial-independent — so a warm cache from one chunk answers the next
/// chunk's lookups without redoing the exp/log chains, and reuse can
/// never change a result. Each worker thread owns one workspace
/// (thread_local), so chunks sharded across the ThreadPool touch no
/// shared mutable state: bit-identity across thread counts is
/// structural, and TSAN has nothing to watch here. A small LRU of
/// caches keyed by n covers sweeps that interleave station counts
/// (the hybrid engine uses n and n - 1 in one chunk).
///
/// Counter discipline: caches outlive chunks, so the engine rollup
/// must emit per-chunk DELTAS of the cache counters, not totals —
/// emit_cache_counters() tracks the last-emitted watermark per cache.
class BatchWorkspace {
 public:
  SlotProbCache& cache(std::uint64_t n) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i]->cache.n() == n) {
        if (i != 0) {
          std::rotate(entries_.begin(),
                      entries_.begin() + static_cast<std::ptrdiff_t>(i),
                      entries_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
        }
        JAMELECT_OBS_COUNT("mc.parallel_cache_reuse", 1);
        return entries_.front()->cache;
      }
    }
    if (entries_.size() >= kMaxCaches) entries_.pop_back();
    entries_.insert(entries_.begin(), std::make_unique<Entry>(n));
    return entries_.front()->cache;
  }

  /// Emits the SlotProbCache effectiveness rollup accrued since the
  /// previous call (hits = lookups - misses; dense_hits is the subset
  /// of hits answered by the lattice index instead of a hash probe).
  void emit_cache_counters() {
    for (auto& e : entries_) {
      const std::uint64_t lookups = e->cache.lookups();
      const std::uint64_t misses = e->cache.misses();
      const std::uint64_t dense = e->cache.dense_hits();
      JAMELECT_OBS_COUNT(
          "engine.batch.cache_lookups",
          static_cast<std::int64_t>(lookups - e->lookups_seen));
      JAMELECT_OBS_COUNT(
          "engine.batch.cache_hits",
          static_cast<std::int64_t>((lookups - misses) -
                                    (e->lookups_seen - e->misses_seen)));
      JAMELECT_OBS_COUNT("engine.batch.cache_dense_hits",
                         static_cast<std::int64_t>(dense - e->dense_seen));
      JAMELECT_OBS_COUNT("engine.batch.cache_misses",
                         static_cast<std::int64_t>(misses - e->misses_seen));
      // Per-thread mirror for the profiler: the scaling report needs
      // hit-rate VARIANCE across workers, which the process-wide
      // registry rollup above cannot reconstruct.
      obs::prof_count(obs::ProfCounter::kCacheLookups,
                      static_cast<std::int64_t>(lookups - e->lookups_seen));
      obs::prof_count(obs::ProfCounter::kCacheHits,
                      static_cast<std::int64_t>((lookups - misses) -
                                                (e->lookups_seen -
                                                 e->misses_seen)));
      e->lookups_seen = lookups;
      e->misses_seen = misses;
      e->dense_seen = dense;
    }
  }

 private:
  struct Entry {
    explicit Entry(std::uint64_t n) : cache(n) {}
    SlotProbCache cache;
    std::uint64_t lookups_seen = 0;
    std::uint64_t misses_seen = 0;
    std::uint64_t dense_seen = 0;
  };
  static constexpr std::size_t kMaxCaches = 8;
  std::vector<std::unique_ptr<Entry>> entries_;
};

[[nodiscard]] BatchWorkspace& local_batch_workspace() {
  thread_local BatchWorkspace workspace;
  return workspace;
}

/// Strong-CD aggregate lanes: the SoA mirror of run_aggregate
/// (sim/aggregate.cpp), one uniform() per slot + one below(n) on
/// election per lane, additions in the same per-lane order.
///
/// `make_rng(trial)` builds the simulation-draw generator for an
/// absolute trial index: Rng (xoshiro child chains) or AesCtrRng
/// (counter streams) — both expose the identical uniform / bernoulli /
/// below façade, so the engine body is backend-agnostic.
template <class Kernel, class MakeRng>
void aggregate_lanes(const typename Kernel::Params& params,
                     const AdversarySpec& spec, const BatchConfig& config,
                     const Rng& base, std::size_t first, std::size_t count,
                     TrialOutcome* out, const MakeRng& make_rng) {
  JAMELECT_EXPECTS(config.n >= 1);
  JAMELECT_EXPECTS(config.max_slots >= 1);
  using LaneRng = std::decay_t<decltype(make_rng(std::size_t{0}))>;
  const std::uint64_t n = config.n;
  const double nd = static_cast<double>(n);
  BatchWorkspace& workspace = local_batch_workspace();
  SlotProbCache& cache = workspace.cache(n);

  std::vector<Kernel> kernels(count, Kernel(params));
  std::vector<LaneRng> rngs;
  rngs.reserve(count);
  // Deterministic policies share one adversary across all lanes (its rng
  // child stream exists but is never drawn from, so lane 0's seed is as
  // good as any); adaptive policies get one instance per lane.
  const bool shared_adv = lane_invariant_policy(spec);
  std::unique_ptr<BoundedAdversary> adv_shared;
  std::vector<std::unique_ptr<BoundedAdversary>> advs;
  if (shared_adv) {
    adv_shared = make_adversary(spec, base.child(first).child(0xad50));
  } else {
    advs.resize(count);
  }
  std::vector<std::uint32_t> lane_trial(count);
  std::vector<TrialOutcome> acc(count);
  for (std::size_t k = 0; k < count; ++k) {
    if (!shared_adv) {
      advs[k] = make_adversary(spec, base.child(first + k).child(0xad50));
    }
    rngs.push_back(make_rng(first + k));
    lane_trial[k] = static_cast<std::uint32_t>(k);
  }

  std::size_t active = count;
  std::int64_t slots_total = 0;
  // Scalar path: the per-lane slot body fuses RNG draw, classification,
  // cache lookup, and kernel step — too hot to time individually, so the
  // whole loop is attributed to `classify` (the wide engines break the
  // phases out; this path exists for lane-variant adversaries).
  obs::PhaseAccumulator prof;
  prof.start();
  for (Slot slot = 0; slot < config.max_slots && active > 0; ++slot) {
    slots_total += static_cast<std::int64_t>(active);
    const bool jam_all = shared_adv && adv_shared->step();
    for (std::size_t lane = 0; lane < active;) {
      Kernel& kern = kernels[lane];
      const SlotProbCache::Entry& e = cache.lookup(kern.broadcast_u());
      const bool jammed = shared_adv ? jam_all : advs[lane]->step();
      const std::uint64_t cnt = category(rngs[lane].uniform(), e);
      const ChannelState state = resolve_slot(cnt, jammed);

      TrialOutcome& o = acc[lane];
      ++o.slots;
      o.transmissions += nd * e.p;
      if (jammed) ++o.jams;
      record_state(o, state);

      kern.step(state);
      if (!shared_adv) advs[lane]->observe({slot, cnt, jammed, state});

      if (kern.done()) {
        JAMELECT_ENSURES(state == ChannelState::kSingle);
        o.elected = true;
        o.all_done = true;
        o.unique_leader = true;
        o.leader = rngs[lane].below(n);
        out[lane_trial[lane]] = o;
        --active;
        if (lane != active) {
          kernels[lane] = kernels[active];
          rngs[lane] = rngs[active];
          if (!shared_adv) advs[lane] = std::move(advs[active]);
          lane_trial[lane] = lane_trial[active];
          acc[lane] = acc[active];
        }
      } else {
        ++lane;
      }
    }
  }
  prof.stop(obs::Phase::kClassify);
  // Right-censored lanes: budget exhausted without election.
  for (std::size_t lane = 0; lane < active; ++lane) {
    out[lane_trial[lane]] = acc[lane];
  }
  JAMELECT_OBS_COUNT("engine.batch.aggregate_chunks", 1);
  JAMELECT_OBS_COUNT("engine.batch.slots", slots_total);
  JAMELECT_OBS_COUNT("mc.batch_scalar_slots", slots_total);
  workspace.emit_cache_counters();
}

/// A kernel slot that may be unoccupied — the batch mirror of the
/// UniformProtocolPtr null/reset dance in run_hybrid_notification.
template <class Kernel>
struct MaybeKernel {
  Kernel kernel;
  bool valid = false;
};

/// The P1..P4 phase machine of run_hybrid_notification, shared by the
/// scalar and wide hybrid lane engines.
enum class HybridPhase : std::uint8_t { kP1, kP2, kP3, kP4, kDone };

/// Weak-CD hybrid Notification lanes: the SoA mirror of
/// run_hybrid_notification (sim/hybrid.cpp). classify_slot is shared
/// across lanes (lockstep keeps every active lane at the same slot);
/// each lane runs the P1..P4 phase machine with kernels standing in
/// for the shared/l/s protocol instances.
template <class Kernel, class MakeRng>
void hybrid_lanes(const typename Kernel::Params& params,
                  const AdversarySpec& spec, const BatchConfig& config,
                  const Rng& base, std::size_t first, std::size_t count,
                  TrialOutcome* out, const MakeRng& make_rng) {
  JAMELECT_EXPECTS(config.n >= 3);
  JAMELECT_EXPECTS(config.max_slots >= 1);
  using LaneRng = std::decay_t<decltype(make_rng(std::size_t{0}))>;
  const std::uint64_t n = config.n;
  const double nd = static_cast<double>(n);
  const double nm1d = static_cast<double>(n - 1);
  BatchWorkspace& workspace = local_batch_workspace();
  SlotProbCache& cache_n = workspace.cache(n);
  SlotProbCache& cache_nm1 = workspace.cache(n - 1);

  std::vector<HybridPhase> phases(count, HybridPhase::kP1);
  std::vector<MaybeKernel<Kernel>> shared(count, {Kernel(params), false});
  std::vector<MaybeKernel<Kernel>> l_a(count, {Kernel(params), false});
  std::vector<MaybeKernel<Kernel>> s_a(count, {Kernel(params), false});
  std::vector<LaneRng> rngs;
  rngs.reserve(count);
  const bool shared_adv = lane_invariant_policy(spec);
  std::unique_ptr<BoundedAdversary> adv_shared;
  std::vector<std::unique_ptr<BoundedAdversary>> advs;
  if (shared_adv) {
    adv_shared = make_adversary(spec, base.child(first).child(0xad50));
  } else {
    advs.resize(count);
  }
  std::vector<std::uint32_t> lane_trial(count);
  std::vector<TrialOutcome> acc(count);
  for (std::size_t k = 0; k < count; ++k) {
    if (!shared_adv) {
      advs[k] = make_adversary(spec, base.child(first + k).child(0xad50));
    }
    rngs.push_back(make_rng(first + k));
    lane_trial[k] = static_cast<std::uint32_t>(k);
  }

  std::size_t active = count;
  std::int64_t slots_total = 0;
  // Scalar path: coarse attribution — the whole phase-machine loop runs
  // as `classify` (see aggregate_lanes; the wide engines split phases).
  obs::PhaseAccumulator prof;
  prof.start();
  for (Slot slot = 0; slot < config.max_slots && active > 0; ++slot) {
    const IntervalPosition pos = classify_slot(slot);
    slots_total += static_cast<std::int64_t>(active);
    const bool jam_all = shared_adv && adv_shared->step();
    for (std::size_t lane = 0; lane < active;) {
      const HybridPhase phase = phases[lane];
      LaneRng& rng = rngs[lane];
      const bool jammed = shared_adv ? jam_all : advs[lane]->step();

      std::uint64_t cnt = 0;
      double expected_tx = 0.0;

      if (pos.set != IntervalSet::kPadding) {
        switch (phase) {
          case HybridPhase::kP1:
            if (pos.set == IntervalSet::kC1) {
              if (pos.interval_start() || !shared[lane].valid) {
                shared[lane] = {Kernel(params), true};
              }
              const SlotProbCache::Entry& e =
                  cache_n.lookup(shared[lane].kernel.broadcast_u());
              expected_tx = nd * e.p;
              cnt = category(rng.uniform(), e);
            }
            break;
          case HybridPhase::kP2:
            if (pos.set == IntervalSet::kC1) {
              if (pos.interval_start() || !l_a[lane].valid) {
                l_a[lane] = {Kernel(params), true};
              }
              const double p =
                  transmit_probability(l_a[lane].kernel.broadcast_u());
              expected_tx = p;
              cnt = rng.bernoulli(p) ? 1 : 0;
            } else if (pos.set == IntervalSet::kC2) {
              if (pos.interval_start() || !shared[lane].valid) {
                shared[lane] = {Kernel(params), true};
              }
              const SlotProbCache::Entry& e =
                  cache_nm1.lookup(shared[lane].kernel.broadcast_u());
              expected_tx = nm1d * e.p;
              cnt = category(rng.uniform(), e);
            }
            break;
          case HybridPhase::kP3:
            if (pos.set == IntervalSet::kC1) {
              cnt = n - 2;  // all of R confirms; n >= 3 so cnt >= 1
              expected_tx = static_cast<double>(n - 2);
            } else if (pos.set == IntervalSet::kC2) {
              if (pos.interval_start() || !s_a[lane].valid) {
                s_a[lane] = {Kernel(params), true};
              }
              const double p =
                  transmit_probability(s_a[lane].kernel.broadcast_u());
              expected_tx = p;
              cnt = rng.bernoulli(p) ? 1 : 0;
            } else {  // C3: l announces
              cnt = 1;
              expected_tx = 1.0;
            }
            break;
          case HybridPhase::kP4:
            if (pos.set == IntervalSet::kC3) {
              cnt = 1;  // l keeps announcing until released
              expected_tx = 1.0;
            }
            break;
          case HybridPhase::kDone:
            break;
        }
      }

      const ChannelState state = resolve_slot(cnt, jammed);

      TrialOutcome& o = acc[lane];
      ++o.slots;
      o.transmissions += expected_tx;
      if (jammed) ++o.jams;
      record_state(o, state);
      if (!shared_adv) advs[lane]->observe({slot, cnt, jammed, state});

      if (pos.set != IntervalSet::kPadding) {
        switch (phase) {
          case HybridPhase::kP1:
            if (pos.set == IntervalSet::kC1) {
              if (state == ChannelState::kSingle) {
                l_a[lane] = {shared[lane].kernel, true};
                l_a[lane].kernel.step(ChannelState::kCollision);
                shared[lane].valid = false;
                phases[lane] = HybridPhase::kP2;
              } else {
                shared[lane].kernel.step(state);
              }
            }
            break;
          case HybridPhase::kP2:
            if (pos.set == IntervalSet::kC1) {
              if (l_a[lane].valid) {
                l_a[lane].kernel.step(cnt >= 1 ? ChannelState::kCollision
                                               : state);
              }
            } else if (pos.set == IntervalSet::kC2) {
              if (state == ChannelState::kSingle) {
                s_a[lane] = {shared[lane].kernel, true};
                s_a[lane].kernel.step(ChannelState::kCollision);
                shared[lane].valid = false;
                l_a[lane].valid = false;
                phases[lane] = HybridPhase::kP3;
              } else if (shared[lane].valid) {
                shared[lane].kernel.step(state);
              }
            }
            break;
          case HybridPhase::kP3:
            if (pos.set == IntervalSet::kC2) {
              if (s_a[lane].valid) {
                s_a[lane].kernel.step(cnt >= 1 ? ChannelState::kCollision
                                               : state);
              }
            } else if (pos.set == IntervalSet::kC3) {
              if (state == ChannelState::kSingle) {
                s_a[lane].valid = false;
                phases[lane] = HybridPhase::kP4;
              }
            }
            break;
          case HybridPhase::kP4:
            if (pos.set == IntervalSet::kC1 &&
                state == ChannelState::kNull) {
              phases[lane] = HybridPhase::kDone;
            }
            break;
          case HybridPhase::kDone:
            break;
        }
      }

      if (phases[lane] == HybridPhase::kDone) {
        o.elected = true;
        o.all_done = true;
        o.unique_leader = true;
        o.leader = rng.below(n);
        out[lane_trial[lane]] = o;
        --active;
        if (lane != active) {
          phases[lane] = phases[active];
          shared[lane] = shared[active];
          l_a[lane] = l_a[active];
          s_a[lane] = s_a[active];
          rngs[lane] = rngs[active];
          if (!shared_adv) advs[lane] = std::move(advs[active]);
          lane_trial[lane] = lane_trial[active];
          acc[lane] = acc[active];
        }
      } else {
        ++lane;
      }
    }
  }
  prof.stop(obs::Phase::kClassify);
  for (std::size_t lane = 0; lane < active; ++lane) {
    out[lane_trial[lane]] = acc[lane];
  }
  JAMELECT_OBS_COUNT("engine.batch.hybrid_chunks", 1);
  JAMELECT_OBS_COUNT("engine.batch.slots", slots_total);
  JAMELECT_OBS_COUNT("mc.batch_scalar_slots", slots_total);
  workspace.emit_cache_counters();
}

/// SIMD-wide strong-CD aggregate lanes: same per-lane draw sequence
/// and double arithmetic as aggregate_lanes, but every slot advances
/// all lanes through one fused primitive (sim/batch_wide.hpp) — a
/// vector xoshiro step, branch-free classification against cached
/// thresholds, and masked accumulator updates. Requires a
/// lane-invariant adversary (one shared jam bit per slot). Retirement
/// is a post-sweep compaction pass instead of the scalar mid-loop
/// swap-remove; the two are equivalent because lanes are mutually
/// independent within a slot (the only shared state, the adversary,
/// steps once per slot either way).
///
/// Per-lane nulls/singles/transmissions live in SoA accumulators;
/// slots and jams are chunk-shared scalars (lockstep + shared jam bit
/// make them identical across live lanes), and collisions fall out as
/// slots - nulls - singles. Pad lanes (count or active not a multiple
/// of kWideLanes) carry valid-but-ignored state: they advance with
/// their group and are never finalized.
template <class Kernel>
void aggregate_lanes_wide(const typename Kernel::Params& params,
                          const AdversarySpec& spec, const BatchConfig& config,
                          const Rng& base, std::size_t first, std::size_t count,
                          TrialOutcome* out) {
  JAMELECT_EXPECTS(config.n >= 1);
  JAMELECT_EXPECTS(config.max_slots >= 1);
  JAMELECT_EXPECTS(lane_invariant_policy(spec));
  constexpr bool kIsUniform = std::is_same_v<Kernel, kernels::UniformKernel>;
  constexpr bool kIsLesk = std::is_same_v<Kernel, kernels::LeskKernel>;
  // Everything that is neither a fixed exponent nor a LESK lattice walk
  // (LESU and the baseline kernels) steps scalar off the vector-
  // classified states; the only contract is that done() flips exactly
  // on a clean Single (retirement keys on the classified state).
  constexpr bool kIsGeneric = !kIsUniform && !kIsLesk;

  const std::uint64_t n = config.n;
  BatchWorkspace& workspace = local_batch_workspace();
  SlotProbCache& cache = workspace.cache(n);
  double lesk_inc = 0.0;
  if constexpr (kIsLesk) {
    lesk_inc = Kernel(params).inc;
    // LESK's u moves on the {-1, +inc} lattice with 1.0 an (almost
    // always exact) multiple of inc, so steady-state lookups hit the
    // dense index.
    cache.set_lattice_step(lesk_inc);
  }

  const wide::SlotOps& ops = wide::slot_ops(active_wide_isa());
  WideXoshiro rng(count);
  const std::size_t padded = rng.padded_lanes();

  std::vector<double> c_null(padded), c_single(padded), exp_tx(padded);
  std::vector<double> transmissions(padded, 0.0);
  std::vector<std::int64_t> nulls(padded, 0), singles(padded, 0);
  std::vector<std::int64_t> states(padded, 0);
  std::vector<std::uint32_t> lane_trial(count);
  std::vector<double> us;      // non-Uniform: per-lane broadcast exponent
  std::vector<Kernel> kerns;   // generic kernels: full state per lane
  if constexpr (!kIsUniform) {
    us.assign(padded, Kernel(params).broadcast_u());
  }
  if constexpr (kIsGeneric) kerns.assign(count, Kernel(params));

  auto adv = make_adversary(spec, base.child(first).child(0xad50));
  for (std::size_t k = 0; k < count; ++k) {
    // Lane k's sim stream: the exact seed derivation of the scalar
    // path — base.child(first + k).child(0x51e0).
    rng.seed_lane(k, base.child(first + k).child(0x51e0).seed());
    lane_trial[k] = static_cast<std::uint32_t>(k);
  }

  if constexpr (kIsUniform) {
    // One u forever: fill the thresholds once, never refresh.
    const SlotProbCache::Entry e = cache.lookup(Kernel(params).broadcast_u());
    std::fill(c_null.begin(), c_null.end(), e.c_null);
    std::fill(c_single.begin(), c_single.end(), e.c_single);
    std::fill(exp_tx.begin(), exp_tx.end(), e.exp_tx);
  } else {
    cache.lookup_lanes(us.data(), padded, c_null.data(), c_single.data(),
                       exp_tx.data());
  }

  const wide::LaneBlock block{rng.plane(0),     rng.plane(1),
                              rng.plane(2),     rng.plane(3),
                              c_null.data(),    c_single.data(),
                              exp_tx.data(),    transmissions.data(),
                              nulls.data(),     singles.data(),
                              states.data()};

  std::size_t active = count;
  std::int64_t slots_done = 0;  // == every live lane's slot count
  std::int64_t jams_done = 0;   // shared jam bit: identical per lane
  std::int64_t slots_total = 0;

  const auto finalize = [&](std::size_t lane, bool elected) {
    TrialOutcome o;
    o.slots = slots_done;
    o.jams = jams_done;
    o.nulls = nulls[lane];
    o.singles = singles[lane];
    o.collisions = slots_done - nulls[lane] - singles[lane];
    o.transmissions = transmissions[lane];
    if (elected) {
      o.elected = true;
      o.all_done = true;
      o.unique_leader = true;
      o.leader = rng.below_lane(lane, n);
    }
    out[lane_trial[lane]] = o;
  };

  // Phase attribution (batched locally, one flush per chunk): the
  // fused slot primitives are `classify` (they include the RNG
  // advance — draw and classification are one pass on this path),
  // threshold refreshes are `cache_lookup`, and LESU stepping plus
  // retirement compaction are `lattice_update`. Off = one dead branch
  // per section; never touches the draw sequence.
  obs::PhaseAccumulator prof;

  for (Slot slot = 0; slot < config.max_slots && active > 0; ++slot) {
    slots_total += static_cast<std::int64_t>(active);
    ++slots_done;
    const std::size_t groups = (active + kWideLanes - 1) / kWideLanes;
    const std::size_t span = groups * kWideLanes;
    const bool jammed = adv->step();

    if (jammed) {
      // Every lane sees Collision regardless of its draw: advance the
      // streams (the scalar path draws and discards), accumulate
      // expected transmissions, fold the Collision into the kernels.
      // No lane can retire, so no compaction pass.
      ++jams_done;
      prof.start();
      if constexpr (kIsLesk) {
        ops.jammed_slot_lesk(block, us.data(), lesk_inc, groups);
        prof.stop(obs::Phase::kClassify);
        cache.lookup_lanes(us.data(), span, c_null.data(), c_single.data(),
                           exp_tx.data());
        prof.stop(obs::Phase::kCacheLookup);
      } else if constexpr (kIsGeneric) {
        ops.jammed_slot(block, groups);
        prof.stop(obs::Phase::kClassify);
        for (std::size_t lane = 0; lane < active; ++lane) {
          kerns[lane].step(ChannelState::kCollision);
          us[lane] = kerns[lane].broadcast_u();
        }
        prof.stop(obs::Phase::kLatticeUpdate);
        cache.lookup_lanes(us.data(), span, c_null.data(), c_single.data(),
                           exp_tx.data());
        prof.stop(obs::Phase::kCacheLookup);
      } else {
        ops.jammed_slot(block, groups);
        prof.stop(obs::Phase::kClassify);
      }
      continue;
    }

    prof.start();
    bool any_single;
    if constexpr (kIsLesk) {
      any_single = ops.clean_slot_lesk(block, us.data(), lesk_inc, groups);
    } else {
      any_single = ops.clean_slot(block, groups);
    }
    prof.stop(obs::Phase::kClassify);
    if constexpr (kIsGeneric) {
      // Generic kernels (LESU's phase machine, the baselines' search /
      // sweep automata) are not lattice walks — run them scalar per
      // lane off the vector-classified states.
      for (std::size_t lane = 0; lane < active; ++lane) {
        kerns[lane].step(static_cast<ChannelState>(states[lane]));
      }
      prof.stop(obs::Phase::kLatticeUpdate);
    }

    if (any_single) {
      // Every kernel on this path elects exactly on a clean Single, so
      // the classified state alone decides retirement. Re-examine a
      // moved lane before advancing (it may have elected this slot too).
      for (std::size_t lane = 0; lane < active;) {
        if (states[lane] != 1) {
          ++lane;
          continue;
        }
        finalize(lane, true);
        --active;
        if (lane != active) {
          rng.move_lane(lane, active);
          transmissions[lane] = transmissions[active];
          nulls[lane] = nulls[active];
          singles[lane] = singles[active];
          states[lane] = states[active];
          lane_trial[lane] = lane_trial[active];
          if constexpr (!kIsUniform) us[lane] = us[active];
          if constexpr (kIsGeneric) kerns[lane] = kerns[active];
        }
      }
      prof.stop(obs::Phase::kLatticeUpdate);
    }

    if constexpr (!kIsUniform) {
      if (active > 0) {
        if constexpr (kIsGeneric) {
          for (std::size_t lane = 0; lane < active; ++lane) {
            us[lane] = kerns[lane].broadcast_u();
          }
        }
        const std::size_t g2 = (active + kWideLanes - 1) / kWideLanes;
        cache.lookup_lanes(us.data(), g2 * kWideLanes, c_null.data(),
                           c_single.data(), exp_tx.data());
        prof.stop(obs::Phase::kCacheLookup);
      }
    }
  }
  // Right-censored lanes: budget exhausted without election.
  for (std::size_t lane = 0; lane < active; ++lane) finalize(lane, false);
  JAMELECT_OBS_COUNT("engine.batch.aggregate_chunks", 1);
  JAMELECT_OBS_COUNT("engine.batch.slots", slots_total);
  JAMELECT_OBS_COUNT("mc.batch_wide_slots", slots_total);
  workspace.emit_cache_counters();
}

/// SIMD-wide strong-CD aggregate lanes on the AES-CTR backend: the
/// same orchestration as aggregate_lanes_wide, with the fused xoshiro
/// slot primitives replaced by a batched counter advance
/// (WideAesCtr::uniform_groups) plus portable classify/accumulate
/// loops, and jammed slots reduced to pure counter increments
/// (skip_groups) — a discarded CTR draw needs no cipher work. Lane k
/// is stream `first + k` from counter 0, so results are chunk- and
/// thread-invariant by construction and bit-identical to the scalar
/// AesCtrRng path (same draws, same arithmetic, same order).
template <class Kernel>
void aggregate_lanes_wide_ctr(const typename Kernel::Params& params,
                              const AdversarySpec& spec,
                              const BatchConfig& config, const Rng& base,
                              std::size_t first, std::size_t count,
                              TrialOutcome* out) {
  JAMELECT_EXPECTS(config.n >= 1);
  JAMELECT_EXPECTS(config.max_slots >= 1);
  JAMELECT_EXPECTS(lane_invariant_policy(spec));
  constexpr bool kIsUniform = std::is_same_v<Kernel, kernels::UniformKernel>;
  constexpr bool kIsLesk = std::is_same_v<Kernel, kernels::LeskKernel>;
  constexpr bool kIsGeneric = !kIsUniform && !kIsLesk;

  const std::uint64_t n = config.n;
  BatchWorkspace& workspace = local_batch_workspace();
  SlotProbCache& cache = workspace.cache(n);
  double lesk_inc = 0.0;
  if constexpr (kIsLesk) {
    lesk_inc = Kernel(params).inc;
    cache.set_lattice_step(lesk_inc);
  }

  WideAesCtr rng(make_aes_key(base.seed()), count);
  const std::size_t padded = rng.padded_lanes();

  std::vector<double> c_null(padded), c_single(padded), exp_tx(padded);
  std::vector<double> r(padded, 0.0);
  std::vector<double> transmissions(padded, 0.0);
  std::vector<std::int64_t> nulls(padded, 0), singles(padded, 0);
  std::vector<std::int64_t> states(padded, 0);
  std::vector<std::uint32_t> lane_trial(count);
  std::vector<double> us;
  std::vector<Kernel> kerns;
  if constexpr (!kIsUniform) {
    us.assign(padded, Kernel(params).broadcast_u());
  }
  if constexpr (kIsGeneric) kerns.assign(count, Kernel(params));

  auto adv = make_adversary(spec, base.child(first).child(0xad50));
  for (std::size_t k = 0; k < count; ++k) {
    // Lane k's sim stream IS trial first + k: the O(1) counter keying.
    rng.seed_lane(k, static_cast<std::uint64_t>(first + k));
    lane_trial[k] = static_cast<std::uint32_t>(k);
  }

  if constexpr (kIsUniform) {
    const SlotProbCache::Entry e = cache.lookup(Kernel(params).broadcast_u());
    std::fill(c_null.begin(), c_null.end(), e.c_null);
    std::fill(c_single.begin(), c_single.end(), e.c_single);
    std::fill(exp_tx.begin(), exp_tx.end(), e.exp_tx);
  } else {
    cache.lookup_lanes(us.data(), padded, c_null.data(), c_single.data(),
                       exp_tx.data());
  }

  std::size_t active = count;
  std::int64_t slots_done = 0;
  std::int64_t jams_done = 0;
  std::int64_t slots_total = 0;

  const auto finalize = [&](std::size_t lane, bool elected) {
    TrialOutcome o;
    o.slots = slots_done;
    o.jams = jams_done;
    o.nulls = nulls[lane];
    o.singles = singles[lane];
    o.collisions = slots_done - nulls[lane] - singles[lane];
    o.transmissions = transmissions[lane];
    if (elected) {
      o.elected = true;
      o.all_done = true;
      o.unique_leader = true;
      o.leader = rng.below_lane(lane, n);
    }
    out[lane_trial[lane]] = o;
  };

  // This path separates the RNG advance from classification (unlike
  // the fused xoshiro kernels), so `rng` gets its own phase; the
  // classify/accumulate loop (including its inline LESK u updates) is
  // `classify`, threshold refreshes are `cache_lookup`, and LESU
  // stepping / retirement compaction are `lattice_update`.
  obs::PhaseAccumulator prof;

  for (Slot slot = 0; slot < config.max_slots && active > 0; ++slot) {
    slots_total += static_cast<std::int64_t>(active);
    ++slots_done;
    const std::size_t groups = (active + kWideLanes - 1) / kWideLanes;
    const std::size_t span = groups * kWideLanes;
    const bool jammed = adv->step();

    if (jammed) {
      // Every lane sees Collision regardless of its draw: a CTR draw
      // that would be discarded is just a counter bump (the scalar
      // path draws and discards — same stream positions either way).
      ++jams_done;
      prof.start();
      rng.skip_groups(groups);
      prof.stop(obs::Phase::kRng);
      for (std::size_t k = 0; k < span; ++k) transmissions[k] += exp_tx[k];
      if constexpr (kIsLesk) {
        for (std::size_t k = 0; k < span; ++k) us[k] += lesk_inc;
        prof.stop(obs::Phase::kLatticeUpdate);
        cache.lookup_lanes(us.data(), span, c_null.data(), c_single.data(),
                           exp_tx.data());
        prof.stop(obs::Phase::kCacheLookup);
      } else if constexpr (kIsGeneric) {
        for (std::size_t lane = 0; lane < active; ++lane) {
          kerns[lane].step(ChannelState::kCollision);
          us[lane] = kerns[lane].broadcast_u();
        }
        prof.stop(obs::Phase::kLatticeUpdate);
        cache.lookup_lanes(us.data(), span, c_null.data(), c_single.data(),
                           exp_tx.data());
        prof.stop(obs::Phase::kCacheLookup);
      }
      continue;
    }

    // Clean slot: one batched counter advance, then a branch-free
    // classify/accumulate loop (the portable mirror of the fused
    // xoshiro slot primitives — same thresholds, same arithmetic).
    prof.start();
    rng.uniform_groups(groups, r.data());
    prof.stop(obs::Phase::kRng);
    bool any_single = false;
    for (std::size_t k = 0; k < span; ++k) {
      const double rv = r[k];
      const bool lt0 = rv < c_null[k];
      const bool lt1 = rv < c_single[k];
      states[k] = lt0 ? 0 : (lt1 ? 1 : 2);
      nulls[k] += lt0 ? 1 : 0;
      singles[k] += (lt1 && !lt0) ? 1 : 0;
      transmissions[k] += exp_tx[k];
      any_single = any_single || (lt1 && !lt0);
      if constexpr (kIsLesk) {
        // LeskKernel::step, expression-for-expression: Null decrements
        // (floored at 0), Collision adds inc, Single leaves u alone.
        if (lt0) {
          us[k] = std::max(us[k] - 1.0, 0.0);
        } else if (!lt1) {
          us[k] += lesk_inc;
        }
      }
    }
    prof.stop(obs::Phase::kClassify);
    if constexpr (kIsGeneric) {
      for (std::size_t lane = 0; lane < active; ++lane) {
        kerns[lane].step(static_cast<ChannelState>(states[lane]));
      }
      prof.stop(obs::Phase::kLatticeUpdate);
    }

    if (any_single) {
      for (std::size_t lane = 0; lane < active;) {
        if (states[lane] != 1) {
          ++lane;
          continue;
        }
        finalize(lane, true);
        --active;
        if (lane != active) {
          rng.move_lane(lane, active);
          transmissions[lane] = transmissions[active];
          nulls[lane] = nulls[active];
          singles[lane] = singles[active];
          states[lane] = states[active];
          lane_trial[lane] = lane_trial[active];
          if constexpr (!kIsUniform) us[lane] = us[active];
          if constexpr (kIsGeneric) kerns[lane] = kerns[active];
        }
      }
      prof.stop(obs::Phase::kLatticeUpdate);
    }

    if constexpr (!kIsUniform) {
      if (active > 0) {
        if constexpr (kIsGeneric) {
          for (std::size_t lane = 0; lane < active; ++lane) {
            us[lane] = kerns[lane].broadcast_u();
          }
        }
        const std::size_t g2 = (active + kWideLanes - 1) / kWideLanes;
        cache.lookup_lanes(us.data(), g2 * kWideLanes, c_null.data(),
                           c_single.data(), exp_tx.data());
        prof.stop(obs::Phase::kCacheLookup);
      }
    }
  }
  for (std::size_t lane = 0; lane < active; ++lane) finalize(lane, false);
  JAMELECT_OBS_COUNT("engine.batch.aggregate_chunks", 1);
  JAMELECT_OBS_COUNT("engine.batch.slots", slots_total);
  JAMELECT_OBS_COUNT("mc.batch_wide_slots", slots_total);
  workspace.emit_cache_counters();
}

/// SIMD-wide strong-CD aggregate lanes under an ADAPTIVE (lane-variant)
/// adversary: the wide twin of aggregate_lanes' per-lane-adversary
/// branch. The adversary runs as SoA columns in a LaneAdversaryBank —
/// per-lane budget recurrence, per-lane policy state, per-lane policy
/// RNG — so bernoulli / single_denial / collision_forcer no longer
/// force the chunk onto scalar lanes. The simulation draw happens for
/// EVERY live lane every slot (the scalar path draws and discards under
/// a jam — with per-lane jam bits there is nothing to skip), then a
/// portable branch-free loop folds the per-lane jam bit into the
/// classified state. Generic kernels step scalar off the states, as in
/// the shared-adversary engines.
///
/// Per-lane jams live in their own SoA column (the jam bit varies per
/// lane); slots stay a chunk-shared scalar (lockstep). Templated on the
/// wide generator exactly like hybrid_lanes_wide: WideXoshiro (lane k
/// seeded from the child-chain stream) or WideAesCtr (lane k IS counter
/// stream first + k).
template <class Kernel, class WideRng>
void aggregate_lanes_wide_adaptive(const typename Kernel::Params& params,
                                   const AdversarySpec& spec,
                                   const BatchConfig& config, const Rng& base,
                                   std::size_t first, std::size_t count,
                                   TrialOutcome* out) {
  JAMELECT_EXPECTS(config.n >= 1);
  JAMELECT_EXPECTS(config.max_slots >= 1);
  JAMELECT_EXPECTS(LaneAdversaryBank::supports(spec));
  constexpr bool kCtr = std::is_same_v<WideRng, WideAesCtr>;
  constexpr bool kIsUniform = std::is_same_v<Kernel, kernels::UniformKernel>;

  const std::uint64_t n = config.n;
  BatchWorkspace& workspace = local_batch_workspace();
  SlotProbCache& cache = workspace.cache(n);
  if constexpr (std::is_same_v<Kernel, kernels::LeskKernel>) {
    cache.set_lattice_step(Kernel(params).inc);
  }

  auto make_wide = [&] {
    if constexpr (kCtr) {
      return WideAesCtr(make_aes_key(base.seed()), count);
    } else {
      return WideXoshiro(count);
    }
  };
  WideRng rng = make_wide();
  const std::size_t padded = rng.padded_lanes();

  std::vector<Kernel> kerns(count, Kernel(params));
  std::vector<double> c_null(padded), c_single(padded), exp_tx(padded);
  std::vector<double> r(padded, 0.0);
  std::vector<double> us(padded, Kernel(params).broadcast_u());
  std::vector<double> transmissions(padded, 0.0);
  std::vector<std::int64_t> nulls(padded, 0), singles(padded, 0);
  std::vector<std::int64_t> jams(padded, 0);
  std::vector<std::int64_t> states(padded, 0);
  std::vector<std::uint8_t> jam(padded, 0);
  std::vector<std::uint32_t> lane_trial(count);

  LaneAdversaryBank bank(spec, base, first, count);
  for (std::size_t k = 0; k < count; ++k) {
    if constexpr (kCtr) {
      rng.seed_lane(k, static_cast<std::uint64_t>(first + k));
    } else {
      rng.seed_lane(k, base.child(first + k).child(0x51e0).seed());
    }
    lane_trial[k] = static_cast<std::uint32_t>(k);
  }

  cache.lookup_lanes(us.data(), padded, c_null.data(), c_single.data(),
                     exp_tx.data());

  std::size_t active = count;
  std::int64_t slots_done = 0;  // == every live lane's slot count
  std::int64_t slots_total = 0;

  const auto finalize = [&](std::size_t lane, bool elected) {
    TrialOutcome o;
    o.slots = slots_done;
    o.jams = jams[lane];
    o.nulls = nulls[lane];
    o.singles = singles[lane];
    o.collisions = slots_done - nulls[lane] - singles[lane];
    o.transmissions = transmissions[lane];
    if (elected) {
      o.elected = true;
      o.all_done = true;
      o.unique_leader = true;
      o.leader = rng.below_lane(lane, n);
    }
    out[lane_trial[lane]] = o;
  };

  // Phase attribution: the bank's budget sweep + policy desires are
  // `classify` (they are the adversary's slot arithmetic), the wide
  // uniform advance is `rng`, the jam-merged classification loop is
  // `classify`, kernel stepping and retirement compaction are
  // `lattice_update`, threshold refreshes are `cache_lookup`.
  obs::PhaseAccumulator prof;

  for (Slot slot = 0; slot < config.max_slots && active > 0; ++slot) {
    slots_total += static_cast<std::int64_t>(active);
    ++slots_done;
    const std::size_t groups = (active + kWideLanes - 1) / kWideLanes;
    const std::size_t span = groups * kWideLanes;

    prof.start();
    bank.step(jam.data(), active);
    prof.stop(obs::Phase::kClassify);

    // Every live lane draws every slot — the scalar path's uniform()
    // happens unconditionally too, jammed or not.
    rng.uniform_groups(groups, r.data());
    prof.stop(obs::Phase::kRng);

    for (std::size_t k = 0; k < span; ++k) {
      const double rv = r[k];
      const bool lt0 = rv < c_null[k];
      const bool lt1 = rv < c_single[k];
      const bool jk = jam[k] != 0;
      const std::int64_t s = jk ? 2 : (lt0 ? 0 : (lt1 ? 1 : 2));
      states[k] = s;
      nulls[k] += s == 0 ? 1 : 0;
      singles[k] += s == 1 ? 1 : 0;
      jams[k] += jk ? 1 : 0;
      transmissions[k] += exp_tx[k];
    }
    prof.stop(obs::Phase::kClassify);

    bool any_done = false;
    for (std::size_t lane = 0; lane < active; ++lane) {
      kerns[lane].step(static_cast<ChannelState>(states[lane]));
      any_done = any_done || kerns[lane].done();
    }
    prof.stop(obs::Phase::kLatticeUpdate);

    bank.observe(states.data(), active);
    prof.stop(obs::Phase::kClassify);

    if (any_done) {
      for (std::size_t lane = 0; lane < active;) {
        if (!kerns[lane].done()) {
          ++lane;
          continue;
        }
        JAMELECT_ENSURES(states[lane] == 1);
        finalize(lane, true);
        --active;
        if (lane != active) {
          rng.move_lane(lane, active);
          bank.move_lane(lane, active);
          kerns[lane] = kerns[active];
          transmissions[lane] = transmissions[active];
          nulls[lane] = nulls[active];
          singles[lane] = singles[active];
          jams[lane] = jams[active];
          states[lane] = states[active];
          lane_trial[lane] = lane_trial[active];
          us[lane] = us[active];
        }
      }
      prof.stop(obs::Phase::kLatticeUpdate);
    }

    if constexpr (!kIsUniform) {
      if (active > 0) {
        for (std::size_t lane = 0; lane < active; ++lane) {
          us[lane] = kerns[lane].broadcast_u();
        }
        const std::size_t g2 = (active + kWideLanes - 1) / kWideLanes;
        cache.lookup_lanes(us.data(), g2 * kWideLanes, c_null.data(),
                           c_single.data(), exp_tx.data());
        prof.stop(obs::Phase::kCacheLookup);
      }
    }
  }
  for (std::size_t lane = 0; lane < active; ++lane) finalize(lane, false);
  JAMELECT_OBS_COUNT("engine.batch.aggregate_chunks", 1);
  JAMELECT_OBS_COUNT("engine.batch.slots", slots_total);
  JAMELECT_OBS_COUNT("mc.batch_wide_slots", slots_total);
  workspace.emit_cache_counters();
}

/// What a hybrid lane wants from the rng this slot (pass A result).
enum class DrawKind : std::uint8_t { kNone = 0, kCategory, kBernoulli };

/// SIMD-wide weak-CD hybrid Notification lanes. The P1..P4 phase
/// machine stays scalar (per-slot work varies per lane), but the slot
/// is split into three passes so the rng advance — the hot, uniform
/// part — happens wide: pass A records each lane's draw request (the
/// first switch of hybrid_lanes with draws replaced by requests),
/// pass B advances every drawing lane in one masked wide step, pass C
/// consumes the draws and runs the post-state transitions. Lanes make
/// at most one draw per slot, so per-lane draw order — and hence bit
/// identity with hybrid_lanes — is preserved exactly.
///
/// Templated on the wide generator: WideXoshiro (lane k seeded from
/// the child-chain stream) or WideAesCtr (lane k IS counter stream
/// first + k). Both expose the same seed_lane / uniform_masked /
/// below_lane / move_lane façade, so only construction and seeding
/// differ.
///
/// Adversaries come in two flavors: lane-invariant policies share one
/// jam bit per slot, and the adaptive built-ins run as per-lane SoA
/// columns in a LaneAdversaryBank (sim/lane_adversary.hpp) — per-lane
/// jam bits, observed states fed back after every slot (padding
/// included, matching the scalar engine's per-slot observe()).
template <class Kernel, class WideRng>
void hybrid_lanes_wide(const typename Kernel::Params& params,
                       const AdversarySpec& spec, const BatchConfig& config,
                       const Rng& base, std::size_t first, std::size_t count,
                       TrialOutcome* out) {
  JAMELECT_EXPECTS(config.n >= 3);
  JAMELECT_EXPECTS(config.max_slots >= 1);
  JAMELECT_EXPECTS(lane_invariant_policy(spec) ||
                   LaneAdversaryBank::supports(spec));
  constexpr bool kCtr = std::is_same_v<WideRng, WideAesCtr>;
  const std::uint64_t n = config.n;
  BatchWorkspace& workspace = local_batch_workspace();
  SlotProbCache& cache_n = workspace.cache(n);
  SlotProbCache& cache_nm1 = workspace.cache(n - 1);
  if constexpr (std::is_same_v<Kernel, kernels::LeskKernel>) {
    const double inc = Kernel(params).inc;
    cache_n.set_lattice_step(inc);
    cache_nm1.set_lattice_step(inc);
  }

  auto make_wide = [&] {
    if constexpr (kCtr) {
      return WideAesCtr(make_aes_key(base.seed()), count);
    } else {
      return WideXoshiro(count);
    }
  };
  WideRng rng = make_wide();
  const std::size_t padded = rng.padded_lanes();

  std::vector<HybridPhase> phases(count, HybridPhase::kP1);
  std::vector<MaybeKernel<Kernel>> shared(count, {Kernel(params), false});
  std::vector<MaybeKernel<Kernel>> l_a(count, {Kernel(params), false});
  std::vector<MaybeKernel<Kernel>> s_a(count, {Kernel(params), false});
  std::vector<std::uint32_t> lane_trial(count);
  std::vector<TrialOutcome> acc(count);

  // Per-slot scratch, SoA so pass B is one wide masked advance.
  std::vector<DrawKind> draw(count, DrawKind::kNone);
  std::vector<std::uint64_t> fixed_cnt(count, 0);
  std::vector<double> thr0(count, 0.0), thr1(count, 0.0), slot_tx(count, 0.0);
  std::vector<std::uint8_t> mask(padded, 0);
  std::vector<double> r(padded, 0.0);

  const bool shared_adv = lane_invariant_policy(spec);
  std::unique_ptr<BoundedAdversary> adv;
  std::optional<LaneAdversaryBank> bank;
  std::vector<std::uint8_t> jam;          // per-lane jam bits (bank only)
  std::vector<std::int64_t> lane_states;  // per-lane states for observe()
  if (shared_adv) {
    adv = make_adversary(spec, base.child(first).child(0xad50));
  } else {
    bank.emplace(spec, base, first, count);
    jam.assign(count, 0);
    lane_states.assign(count, 0);
  }
  for (std::size_t k = 0; k < count; ++k) {
    if constexpr (kCtr) {
      rng.seed_lane(k, static_cast<std::uint64_t>(first + k));
    } else {
      rng.seed_lane(k, base.child(first + k).child(0x51e0).seed());
    }
    lane_trial[k] = static_cast<std::uint32_t>(k);
  }

  std::size_t active = count;
  std::int64_t slots_total = 0;
  // Phase attribution (stitched, one clock read per boundary): pass A
  // (kernel u reads + slot-prob cache probes) -> cache_lookup, pass B
  // (the wide masked uniform advance) -> rng, pass C (draw consumption,
  // outcome accounting, phase transitions) -> classify, retirement
  // compaction -> lattice_update.
  obs::PhaseAccumulator prof;
  for (Slot slot = 0; slot < config.max_slots && active > 0; ++slot) {
    const IntervalPosition pos = classify_slot(slot);
    slots_total += static_cast<std::int64_t>(active);
    const bool jam_all = shared_adv && adv->step();
    if (!shared_adv) bank->step(jam.data(), active);

    if (pos.set == IntervalSet::kPadding) {
      // Nobody draws or acts in padding: the slot is a Null (or a
      // jammed Collision) for every lane, and no phase can complete
      // (every transition keys on C1..C3), so no retirement check.
      // Adaptive adversaries still observe the padding slots — the
      // scalar engine feeds them every slot too.
      prof.start();
      for (std::size_t lane = 0; lane < active; ++lane) {
        const bool jl = shared_adv ? jam_all : jam[lane] != 0;
        const ChannelState state = resolve_slot(0, jl);
        TrialOutcome& o = acc[lane];
        ++o.slots;
        if (jl) ++o.jams;
        record_state(o, state);
        if (!shared_adv) {
          lane_states[lane] = static_cast<std::int64_t>(state);
        }
      }
      if (!shared_adv) bank->observe(lane_states.data(), active);
      prof.stop(obs::Phase::kClassify);
      continue;
    }

    // Pass A: record each lane's draw request for this slot.
    prof.start();
    for (std::size_t lane = 0; lane < active; ++lane) {
      DrawKind d = DrawKind::kNone;
      std::uint64_t fc = 0;
      double t0 = 0.0;
      double t1 = 0.0;
      double ex = 0.0;
      switch (phases[lane]) {
        case HybridPhase::kP1:
          if (pos.set == IntervalSet::kC1) {
            if (pos.interval_start() || !shared[lane].valid) {
              shared[lane] = {Kernel(params), true};
            }
            const SlotProbCache::Entry& e =
                cache_n.lookup(shared[lane].kernel.broadcast_u());
            ex = e.exp_tx;
            d = DrawKind::kCategory;
            t0 = e.c_null;
            t1 = e.c_single;
          }
          break;
        case HybridPhase::kP2:
          if (pos.set == IntervalSet::kC1) {
            if (pos.interval_start() || !l_a[lane].valid) {
              l_a[lane] = {Kernel(params), true};
            }
            const double p =
                transmit_probability(l_a[lane].kernel.broadcast_u());
            ex = p;
            // Rng::bernoulli consumes a draw only for p in (0, 1);
            // the degenerate cases have a fixed result.
            if (p <= 0.0) {
              fc = 0;
            } else if (p >= 1.0) {
              fc = 1;
            } else {
              d = DrawKind::kBernoulli;
              t0 = p;
            }
          } else if (pos.set == IntervalSet::kC2) {
            if (pos.interval_start() || !shared[lane].valid) {
              shared[lane] = {Kernel(params), true};
            }
            const SlotProbCache::Entry& e =
                cache_nm1.lookup(shared[lane].kernel.broadcast_u());
            ex = e.exp_tx;
            d = DrawKind::kCategory;
            t0 = e.c_null;
            t1 = e.c_single;
          }
          break;
        case HybridPhase::kP3:
          if (pos.set == IntervalSet::kC1) {
            fc = n - 2;  // all of R confirms; n >= 3 so fc >= 1
            ex = static_cast<double>(n - 2);
          } else if (pos.set == IntervalSet::kC2) {
            if (pos.interval_start() || !s_a[lane].valid) {
              s_a[lane] = {Kernel(params), true};
            }
            const double p =
                transmit_probability(s_a[lane].kernel.broadcast_u());
            ex = p;
            if (p <= 0.0) {
              fc = 0;
            } else if (p >= 1.0) {
              fc = 1;
            } else {
              d = DrawKind::kBernoulli;
              t0 = p;
            }
          } else {  // C3: l announces
            fc = 1;
            ex = 1.0;
          }
          break;
        case HybridPhase::kP4:
          if (pos.set == IntervalSet::kC3) {
            fc = 1;  // l keeps announcing until released
            ex = 1.0;
          }
          break;
        case HybridPhase::kDone:
          break;  // unreachable: done lanes retire the slot they finish
      }
      draw[lane] = d;
      mask[lane] = d == DrawKind::kNone ? 0 : 1;
      fixed_cnt[lane] = fc;
      thr0[lane] = t0;
      thr1[lane] = t1;
      slot_tx[lane] = ex;
    }
    const std::size_t groups = (active + kWideLanes - 1) / kWideLanes;
    for (std::size_t lane = active; lane < groups * kWideLanes; ++lane) {
      mask[lane] = 0;  // pad lanes must not advance
    }
    prof.stop(obs::Phase::kCacheLookup);

    // Pass B: one wide advance covering every lane that draws.
    rng.uniform_masked(groups, mask.data(), r.data());
    prof.stop(obs::Phase::kRng);

    // Pass C: consume the draws — classification, outcome accounting,
    // and the post-state transitions of hybrid_lanes.
    for (std::size_t lane = 0; lane < active; ++lane) {
      std::uint64_t cnt = fixed_cnt[lane];
      if (draw[lane] == DrawKind::kCategory) {
        cnt = r[lane] < thr0[lane] ? 0 : (r[lane] < thr1[lane] ? 1 : 2);
      } else if (draw[lane] == DrawKind::kBernoulli) {
        cnt = r[lane] < thr0[lane] ? 1 : 0;
      }
      const bool jammed = shared_adv ? jam_all : jam[lane] != 0;
      const ChannelState state = resolve_slot(cnt, jammed);

      TrialOutcome& o = acc[lane];
      ++o.slots;
      o.transmissions += slot_tx[lane];
      if (jammed) ++o.jams;
      record_state(o, state);
      if (!shared_adv) lane_states[lane] = static_cast<std::int64_t>(state);

      switch (phases[lane]) {
        case HybridPhase::kP1:
          if (pos.set == IntervalSet::kC1) {
            if (state == ChannelState::kSingle) {
              l_a[lane] = {shared[lane].kernel, true};
              l_a[lane].kernel.step(ChannelState::kCollision);
              shared[lane].valid = false;
              phases[lane] = HybridPhase::kP2;
            } else {
              shared[lane].kernel.step(state);
            }
          }
          break;
        case HybridPhase::kP2:
          if (pos.set == IntervalSet::kC1) {
            if (l_a[lane].valid) {
              l_a[lane].kernel.step(cnt >= 1 ? ChannelState::kCollision
                                             : state);
            }
          } else if (pos.set == IntervalSet::kC2) {
            if (state == ChannelState::kSingle) {
              s_a[lane] = {shared[lane].kernel, true};
              s_a[lane].kernel.step(ChannelState::kCollision);
              shared[lane].valid = false;
              l_a[lane].valid = false;
              phases[lane] = HybridPhase::kP3;
            } else if (shared[lane].valid) {
              shared[lane].kernel.step(state);
            }
          }
          break;
        case HybridPhase::kP3:
          if (pos.set == IntervalSet::kC2) {
            if (s_a[lane].valid) {
              s_a[lane].kernel.step(cnt >= 1 ? ChannelState::kCollision
                                             : state);
            }
          } else if (pos.set == IntervalSet::kC3) {
            if (state == ChannelState::kSingle) {
              s_a[lane].valid = false;
              phases[lane] = HybridPhase::kP4;
            }
          }
          break;
        case HybridPhase::kP4:
          if (pos.set == IntervalSet::kC1 && state == ChannelState::kNull) {
            phases[lane] = HybridPhase::kDone;
          }
          break;
        case HybridPhase::kDone:
          break;
      }
    }
    if (!shared_adv) bank->observe(lane_states.data(), active);

    prof.stop(obs::Phase::kClassify);

    // Retirement + compaction after the full sweep (equivalent to the
    // scalar mid-loop swap-remove; lanes are independent in-slot).
    // jam/lane_states need no copy: both are rewritten for every live
    // lane at the top of the next slot before any read.
    for (std::size_t lane = 0; lane < active;) {
      if (phases[lane] != HybridPhase::kDone) {
        ++lane;
        continue;
      }
      TrialOutcome& o = acc[lane];
      o.elected = true;
      o.all_done = true;
      o.unique_leader = true;
      o.leader = rng.below_lane(lane, n);
      out[lane_trial[lane]] = o;
      --active;
      if (lane != active) {
        phases[lane] = phases[active];
        shared[lane] = shared[active];
        l_a[lane] = l_a[active];
        s_a[lane] = s_a[active];
        rng.move_lane(lane, active);
        if (!shared_adv) bank->move_lane(lane, active);
        lane_trial[lane] = lane_trial[active];
        acc[lane] = acc[active];
      }
    }
    prof.stop(obs::Phase::kLatticeUpdate);
  }
  for (std::size_t lane = 0; lane < active; ++lane) {
    out[lane_trial[lane]] = acc[lane];
  }
  JAMELECT_OBS_COUNT("engine.batch.hybrid_chunks", 1);
  JAMELECT_OBS_COUNT("engine.batch.slots", slots_total);
  JAMELECT_OBS_COUNT("mc.batch_wide_slots", slots_total);
  workspace.emit_cache_counters();
}

/// Which lane-stepping engine a chunk resolves to once BatchLaneMode
/// meets the adversary policy.
enum class LanePath : std::uint8_t {
  kScalar,        ///< one Rng + one virtual adversary per lane
  kSharedWide,    ///< SIMD-wide, one shared jam bit (lane-invariant)
  kAdaptiveWide,  ///< SIMD-wide, per-lane SoA bank (adaptive built-ins)
};

/// Resolves BatchLaneMode against the adversary policy: kAuto goes
/// wide whenever the policy has a wide engine — shared jam bit for the
/// lane-invariant set, LaneAdversaryBank for the adaptive built-ins —
/// and scalar otherwise; kWide insists (and contract-checks) on one of
/// the wide engines existing.
[[nodiscard]] LanePath lane_path(BatchLaneMode mode,
                                 const AdversarySpec& spec) {
  switch (mode) {
    case BatchLaneMode::kAuto:
      if (lane_invariant_policy(spec)) return LanePath::kSharedWide;
      if (LaneAdversaryBank::supports(spec)) return LanePath::kAdaptiveWide;
      return LanePath::kScalar;
    case BatchLaneMode::kWide:
      JAMELECT_EXPECTS(lane_invariant_policy(spec) ||
                       LaneAdversaryBank::supports(spec));
      return lane_invariant_policy(spec) ? LanePath::kSharedWide
                                         : LanePath::kAdaptiveWide;
    case BatchLaneMode::kScalarLanes:
      return LanePath::kScalar;
  }
  return LanePath::kScalar;
}

/// Simulation-draw factory for the scalar lane engines: trial k's
/// xoshiro stream, by the exact child-chain derivation of the
/// sequential path.
[[nodiscard]] auto xoshiro_make_rng(const Rng& base) {
  return [&base](std::size_t trial) {
    return base.child(trial).child(0x51e0);
  };
}

/// Same, on the counter backend: trial k IS stream k under the
/// run-wide key (two SplitMix64 words of the seed, expanded once and
/// shared by every chunk).
[[nodiscard]] auto aes_make_rng(const AesKey& key) {
  return [&key](std::size_t trial) {
    return AesCtrRng(key, static_cast<std::uint64_t>(trial));
  };
}

}  // namespace

const char* rng_backend_name(RngBackend backend) noexcept {
  switch (backend) {
    case RngBackend::kXoshiro: return "xoshiro";
    case RngBackend::kAesCtr: return "aes_ctr";
  }
  return "unknown";
}

std::optional<BatchKernelSpec> batch_kernel_spec(
    const UniformProtocol& prototype) {
  // A kernel always starts fresh from its params, so a recognized type
  // only qualifies if the probed instance is still in its constructed
  // state (state_equals against a pristine twin).
  if (const auto* p = dynamic_cast<const PlainUniform*>(&prototype)) {
    if (PlainUniform(p->params()).state_equals(prototype)) {
      return BatchKernelSpec{p->params()};
    }
    return std::nullopt;
  }
  if (const auto* p = dynamic_cast<const Lesk*>(&prototype)) {
    if (Lesk(p->params()).state_equals(prototype)) {
      return BatchKernelSpec{p->params()};
    }
    return std::nullopt;
  }
  if (const auto* p = dynamic_cast<const Lesu*>(&prototype)) {
    if (Lesu(p->params()).state_equals(prototype)) {
      return BatchKernelSpec{p->params()};
    }
    return std::nullopt;
  }
  if (const auto* p = dynamic_cast<const Willard*>(&prototype)) {
    if (Willard(p->params()).state_equals(prototype)) {
      return BatchKernelSpec{p->params()};
    }
    return std::nullopt;
  }
  if (const auto* p = dynamic_cast<const NakanoOlariu*>(&prototype)) {
    if (NakanoOlariu(p->params()).state_equals(prototype)) {
      return BatchKernelSpec{p->params()};
    }
    return std::nullopt;
  }
  if (const auto* p = dynamic_cast<const NoCdElection*>(&prototype)) {
    if (NoCdElection(p->params()).state_equals(prototype)) {
      return BatchKernelSpec{p->params()};
    }
    return std::nullopt;
  }
  return std::nullopt;
}

void run_batch_aggregate_trials(const BatchKernelSpec& spec,
                                const AdversarySpec& adversary,
                                const BatchConfig& config, const Rng& base,
                                std::size_t first, std::size_t count,
                                TrialOutcome* out) {
  JAMELECT_EXPECTS(out != nullptr || count == 0);
  if (count == 0) return;
  AdversarySpec adv = adversary;
  adv.n = config.n;
  std::visit(
      [&](const auto& params) {
        using Kernel = typename KernelFor<
            std::decay_t<decltype(params)>>::type;
        const LanePath path = lane_path(config.lanes, adv);
        if (config.rng == RngBackend::kAesCtr) {
          switch (path) {
            case LanePath::kSharedWide:
              aggregate_lanes_wide_ctr<Kernel>(params, adv, config, base,
                                               first, count, out);
              break;
            case LanePath::kAdaptiveWide:
              aggregate_lanes_wide_adaptive<Kernel, WideAesCtr>(
                  params, adv, config, base, first, count, out);
              break;
            case LanePath::kScalar: {
              const AesKey key = make_aes_key(base.seed());
              aggregate_lanes<Kernel>(params, adv, config, base, first, count,
                                      out, aes_make_rng(key));
              break;
            }
          }
        } else {
          switch (path) {
            case LanePath::kSharedWide:
              aggregate_lanes_wide<Kernel>(params, adv, config, base, first,
                                           count, out);
              break;
            case LanePath::kAdaptiveWide:
              aggregate_lanes_wide_adaptive<Kernel, WideXoshiro>(
                  params, adv, config, base, first, count, out);
              break;
            case LanePath::kScalar:
              aggregate_lanes<Kernel>(params, adv, config, base, first, count,
                                      out, xoshiro_make_rng(base));
              break;
          }
        }
      },
      spec);
}

void run_batch_hybrid_trials(const BatchKernelSpec& spec,
                             const AdversarySpec& adversary,
                             const BatchConfig& config, const Rng& base,
                             std::size_t first, std::size_t count,
                             TrialOutcome* out) {
  JAMELECT_EXPECTS(out != nullptr || count == 0);
  if (count == 0) return;
  AdversarySpec adv = adversary;
  adv.n = config.n;
  std::visit(
      [&](const auto& params) {
        using Kernel = typename KernelFor<
            std::decay_t<decltype(params)>>::type;
        // hybrid_lanes_wide hosts both wide adversary flavors (shared
        // jam bit and LaneAdversaryBank) behind one template.
        const bool wide = lane_path(config.lanes, adv) != LanePath::kScalar;
        if (config.rng == RngBackend::kAesCtr) {
          if (wide) {
            hybrid_lanes_wide<Kernel, WideAesCtr>(params, adv, config, base,
                                                  first, count, out);
          } else {
            const AesKey key = make_aes_key(base.seed());
            hybrid_lanes<Kernel>(params, adv, config, base, first, count, out,
                                 aes_make_rng(key));
          }
        } else if (wide) {
          hybrid_lanes_wide<Kernel, WideXoshiro>(params, adv, config, base,
                                                 first, count, out);
        } else {
          hybrid_lanes<Kernel>(params, adv, config, base, first, count, out,
                               xoshiro_make_rng(base));
        }
      },
      spec);
}

}  // namespace jamelect
