// Portable 4-wide backend of the fused slot primitives, plus the
// backend dispatch table. The loops are written scalar per lane; the
// fixed 4-lane group width and the absence of branches on data keep
// them auto-vectorizer-friendly, but correctness never depends on it.
#include "sim/batch_wide.hpp"

#include <algorithm>

#include "support/wide_rng_step.hpp"

namespace jamelect::wide {

#if defined(JAMELECT_WIDE_AVX2)
// Implemented in batch_wide_avx2.cpp (built with -mavx2).
namespace avx2 {
bool clean_slot(const LaneBlock& b, std::size_t groups) noexcept;
void jammed_slot(const LaneBlock& b, std::size_t groups) noexcept;
bool clean_slot_lesk(const LaneBlock& b, double* us, double inc,
                     std::size_t groups) noexcept;
void jammed_slot_lesk(const LaneBlock& b, double* us, double inc,
                      std::size_t groups) noexcept;
}  // namespace avx2
#endif

namespace {

using wide_detail::step1;
using wide_detail::to_uniform;

/// Classifies lane k's draw and folds it into the accumulators;
/// returns the resolved state (0 Null / 1 Single / 2 Collision).
inline std::int64_t classify_lane(const LaneBlock& b, std::size_t k,
                                  double r) noexcept {
  const std::int64_t lt0 = r < b.c_null[k] ? 1 : 0;
  const std::int64_t lt1 = r < b.c_single[k] ? 1 : 0;
  const std::int64_t state = 2 - lt0 - lt1;
  b.states[k] = state;
  b.nulls[k] += lt0;
  b.singles[k] += lt1 - lt0;
  b.transmissions[k] += b.exp_tx[k];
  return state;
}

bool clean_slot_scalar4(const LaneBlock& b, std::size_t groups) {
  const std::size_t lanes = groups * kWideLanes;
  std::int64_t singles = 0;
  for (std::size_t k = 0; k < lanes; ++k) {
    const double r = to_uniform(step1(b.s0[k], b.s1[k], b.s2[k], b.s3[k]));
    singles += classify_lane(b, k, r) == 1 ? 1 : 0;
  }
  return singles != 0;
}

void jammed_slot_scalar4(const LaneBlock& b, std::size_t groups) {
  const std::size_t lanes = groups * kWideLanes;
  for (std::size_t k = 0; k < lanes; ++k) {
    (void)step1(b.s0[k], b.s1[k], b.s2[k], b.s3[k]);
    b.transmissions[k] += b.exp_tx[k];
  }
}

bool clean_slot_lesk_scalar4(const LaneBlock& b, double* us, double inc,
                             std::size_t groups) {
  const std::size_t lanes = groups * kWideLanes;
  std::int64_t singles = 0;
  for (std::size_t k = 0; k < lanes; ++k) {
    const double r = to_uniform(step1(b.s0[k], b.s1[k], b.s2[k], b.s3[k]));
    const std::int64_t state = classify_lane(b, k, r);
    // LeskKernel::step, branch-free-ish: Null walks u down (floored at
    // exactly 0.0, the same std::max expression as the kernel),
    // Collision walks it up, Single leaves it (the lane retires).
    const double u_null = std::max(us[k] - 1.0, 0.0);
    const double u_coll = us[k] + inc;
    us[k] = state == 0 ? u_null : (state == 2 ? u_coll : us[k]);
    singles += state == 1 ? 1 : 0;
  }
  return singles != 0;
}

void jammed_slot_lesk_scalar4(const LaneBlock& b, double* us, double inc,
                              std::size_t groups) {
  const std::size_t lanes = groups * kWideLanes;
  for (std::size_t k = 0; k < lanes; ++k) {
    (void)step1(b.s0[k], b.s1[k], b.s2[k], b.s3[k]);
    b.transmissions[k] += b.exp_tx[k];
    us[k] += inc;
  }
}

constexpr SlotOps kScalar4Ops{
    clean_slot_scalar4,
    jammed_slot_scalar4,
    clean_slot_lesk_scalar4,
    jammed_slot_lesk_scalar4,
};

#if defined(JAMELECT_WIDE_AVX2)
constexpr SlotOps kAvx2Ops{
    avx2::clean_slot,
    avx2::jammed_slot,
    avx2::clean_slot_lesk,
    avx2::jammed_slot_lesk,
};
#endif

}  // namespace

const SlotOps& slot_ops(WideIsa isa) noexcept {
#if defined(JAMELECT_WIDE_AVX2)
  if (isa == WideIsa::kAvx2) return kAvx2Ops;
#else
  (void)isa;
#endif
  return kScalar4Ops;
}

}  // namespace jamelect::wide
