#include "sim/cohort.hpp"

#include <algorithm>
#include <utility>

#include "channel/channel.hpp"
#include "obs/metrics.hpp"
#include "support/binomial.hpp"
#include "support/expects.hpp"

namespace jamelect {

CohortEngine::CohortEngine(StationProtocolPtr prototype, std::uint64_t n,
                           std::unique_ptr<BoundedAdversary> adversary,
                           Rng rng, EngineConfig config)
    : n_(n), adversary_(std::move(adversary)), rng_(rng), config_(config) {
  JAMELECT_EXPECTS(prototype != nullptr);
  JAMELECT_EXPECTS(n >= 1);
  JAMELECT_EXPECTS(adversary_ != nullptr);
  JAMELECT_EXPECTS(config.max_slots >= 1);
  // Probe compressibility up front so misuse fails at construction, not
  // at the first weak-CD Single thousands of slots in.
  JAMELECT_EXPECTS(prototype->clone_station() != nullptr);
  cohorts_.push_back(Cohort{std::move(prototype), n});
}

void CohortEngine::merge_cohorts(Slot slot) {
  const std::size_t live = cohorts_.size();
  if (live < 2) return;
  // Single pass, hash-bucketed: each cohort is absorbed into the FIRST
  // (lowest-index) cohort with equal representative state — the same
  // absorption targets and final table as the old quadratic scan, but
  // without its repeated rescans and vector::erase shuffles. Buckets
  // are open-addressed over state_hash(); a hash match is verified by
  // state_equals() before absorbing, so collisions only cost a probe.
  constexpr std::size_t kNoBucket = ~std::size_t{0};
  merge_hashes_.resize(live);
  for (std::size_t i = 0; i < live; ++i) {
    merge_hashes_[i] = cohorts_[i].rep->state_hash();
  }
  std::size_t cap = 4;
  while (cap < live * 2) cap <<= 1;
  merge_buckets_.assign(cap, kNoBucket);
  const std::size_t bucket_mask = cap - 1;

  const bool record = config_.observer != nullptr;
  if (record) merge_records_.clear();

  // Kept cohorts compact into the prefix [0, kept); merge_hashes_ is
  // compacted alongside so bucket entries (kept indices) stay keyed.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < live; ++i) {
    const std::uint64_t h = merge_hashes_[i];
    std::size_t idx = static_cast<std::size_t>(h) & bucket_mask;
    std::size_t target = kNoBucket;
    while (true) {
      const std::size_t t = merge_buckets_[idx];
      if (t == kNoBucket) break;
      if (merge_hashes_[t] == h &&
          cohorts_[t].rep->state_equals(*cohorts_[i].rep)) {
        target = t;
        break;
      }
      idx = (idx + 1) & bucket_mask;
    }
    if (target != kNoBucket) {
      cohorts_[target].size += cohorts_[i].size;
      JAMELECT_OBS_COUNT("engine.cohort.merges", 1);
      if (record) merge_records_.push_back({target, cohorts_[i].size});
      continue;
    }
    merge_buckets_[idx] = kept;
    merge_hashes_[kept] = h;
    if (kept != i) cohorts_[kept] = std::move(cohorts_[i]);
    ++kept;
  }
  cohorts_.resize(kept);

  if (record && !merge_records_.empty()) {
    // Replay telemetry in the order the old nested scan emitted it:
    // targets ascending, each target's absorbed cohorts from the back
    // of the pre-merge table forward, with the target's size and the
    // live cohort count evolving per event.
    std::size_t count = live;
    for (std::size_t t = 0; t < kept; ++t) {
      std::uint64_t gained = 0;
      for (const MergeRecord& r : merge_records_) {
        if (r.target == t) gained += r.absorbed;
      }
      if (gained == 0) continue;
      std::uint64_t running = cohorts_[t].size - gained;
      for (auto it = merge_records_.rbegin(); it != merge_records_.rend();
           ++it) {
        if (it->target != t) continue;
        running += it->absorbed;
        --count;
        config_.observer->on_cohort(slot, "merge", it->absorbed, running,
                                    count);
      }
    }
  }
}

TrialOutcome CohortEngine::run(Trace* trace) {
  obs::RunObserver* const observer = config_.observer;
  const bool tracing = trace != nullptr;
  // Watermark for the per-thread regime tally kept by binomial_sample;
  // the delta is flushed into the registry below (support itself has
  // no telemetry dependency).
  const BinomialRegimeCounts regime_start = binomial_regime_counts();
  TrialOutcome out;

  for (Slot slot = 0; slot < config_.max_slots; ++slot) {
    // Jam bit first: the adversary moves before seeing this slot's coins.
    const bool jammed = adversary_->step();

    // Trace annotations mirror SlotEngine: the public estimate is taken
    // from the first cohort before the slot resolves.
    const double u_before = tracing ? cohorts_[0].rep->estimate() : 0.0;

    // One Binomial(|cohort|, p) draw per cohort replaces |cohort|
    // Bernoulli coins; the sum over cohorts has exactly the same law as
    // SlotEngine's per-station transmitter count.
    const std::size_t live = cohorts_.size();
    tx_counts_.resize(live);
    // Grow-only: live fluctuates slot to slot and the stores below
    // cover [0, live), so shrinking would only add churn.
    if (observer != nullptr && p_scratch_.size() < live) {
      p_scratch_.resize(live);
    }
    std::uint64_t total = 0;
    double expected_tx = 0.0;
    for (std::size_t c = 0; c < live; ++c) {
      const double p = cohorts_[c].rep->transmit_probability(slot);
      JAMELECT_EXPECTS(p >= 0.0 && p <= 1.0);
      const std::uint64_t k = binomial_sample(cohorts_[c].size, p, rng_);
      tx_counts_[c] = k;
      total += k;
      if (tracing) expected_tx += p * static_cast<double>(cohorts_[c].size);
      // Stash p for the (sampled) observer path: transmit_probability
      // is not required to be repeatable, so it runs exactly once.
      if (observer != nullptr) p_scratch_[c] = p;
    }

    const ChannelState state = resolve_slot(total, jammed);

    ++out.slots;
    if (jammed) ++out.jams;
    switch (state) {
      case ChannelState::kNull: ++out.nulls; break;
      case ChannelState::kSingle: ++out.singles; break;
      case ChannelState::kCollision: ++out.collisions; break;
    }
    out.transmissions += static_cast<double>(total);
    if (tracing) {
      SlotRecord rec;
      rec.slot = slot;
      rec.transmitters = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(total, 0xffffffffULL));
      rec.jammed = jammed;
      rec.state = state;
      rec.estimate = u_before;
      trace->record(rec, expected_tx);
    }
    if (observer != nullptr && observer->wants_slot(slot, state)) {
      // Annotations are gathered lazily: representative state is
      // untouched between the draw above and the feedback below, so
      // estimate() still reads this slot's pre-resolution value, and
      // the stashed probabilities reproduce the trace's expected_tx
      // sum term for term.
      double etx = expected_tx;
      if (!tracing) {
        for (std::size_t c = 0; c < live; ++c) {
          etx += p_scratch_[c] * static_cast<double>(cohorts_[c].size);
        }
      }
      observer->emit_slot(slot, state, total, jammed,
                          tracing ? u_before : cohorts_[0].rep->estimate(),
                          etx, adversary_->budget().jams(),
                          adversary_->budget().window_spend());
    }

    // Feedback. Within a cohort the k transmitters are exchangeable
    // with the size-k listeners, so delivering transmitter feedback to
    // an (anonymous) sub-cohort of size k is exact. New cohorts created
    // by a split are appended past `live` and already carry this slot's
    // feedback.
    for (std::size_t c = 0; c < live; ++c) {
      Cohort& cohort = cohorts_[c];
      const std::uint64_t k = tx_counts_[c];
      const Observation obs_l = observe_slot(state, false, config_.cd);
      const Observation obs_t = observe_slot(state, true, config_.cd);
      if (k == 0) {
        cohort.rep->feedback(slot, false, obs_l);
      } else if (k == cohort.size) {
        cohort.rep->feedback(slot, true, obs_t);
      } else if (obs_l == obs_t && !cohort.rep->feedback_tx_sensitive(obs_l)) {
        // Mixed slot but no divergence possible: advance in one call.
        cohort.rep->feedback(slot, false, obs_l);
      } else {
        // Views may diverge: clone, advance both halves, split only if
        // the resulting states actually differ.
        StationProtocolPtr tx_rep = cohort.rep->clone_station();
        JAMELECT_ENSURES(tx_rep != nullptr);
        tx_rep->feedback(slot, true, obs_t);
        cohort.rep->feedback(slot, false, obs_l);
        if (!cohort.rep->state_equals(*tx_rep)) {
          cohort.size -= k;
          cohorts_.push_back(Cohort{std::move(tx_rep), k});
          JAMELECT_OBS_COUNT("engine.cohort.splits", 1);
          if (observer != nullptr) {
            observer->on_cohort(slot, "split", cohorts_[c].size + k, k,
                                cohorts_.size());
          }
        }
      }
    }
    adversary_->observe({slot, total, jammed, state});

    merge_cohorts(slot);
    peak_cohorts_ = std::max(peak_cohorts_, cohorts_.size());

    if (config_.stop == StopRule::kFirstSingle) {
      if (state == ChannelState::kSingle) {
        out.elected = true;
        // The Single's transmitter is uniform over stations by
        // exchangeability (all start identical, coins are symmetric).
        out.leader = static_cast<StationId>(rng_.below(n_));
        break;
      }
    } else {
      bool all_done = true;
      for (const Cohort& cohort : cohorts_) {
        if (!cohort.rep->done()) {
          all_done = false;
          break;
        }
      }
      if (all_done) {
        out.elected = true;
        break;
      }
    }
  }

  // Election-quality bookkeeping, weighted by cohort size (mirrors
  // SlotEngine's per-station scan).
  std::uint64_t done_count = 0;
  std::uint64_t leaders = 0;
  for (const Cohort& cohort : cohorts_) {
    if (cohort.rep->done()) {
      done_count += cohort.size;
      if (cohort.rep->is_leader()) leaders += cohort.size;
    }
  }
  out.all_done = done_count == n_;
  out.unique_leader = leaders == 1;
  if (leaders == 1 && !out.leader.has_value()) {
    // Identity is anonymous under compression; uniform is the exact
    // marginal law for exchangeable stations.
    out.leader = static_cast<StationId>(rng_.below(n_));
  }
  if (config_.stop == StopRule::kFirstSingle) {
    // Selection resolution: success is the Single itself; leader
    // identity was captured at the deciding slot.
    out.unique_leader = out.elected;
  } else {
    out.elected = out.elected && out.unique_leader;
  }
  JAMELECT_OBS_COUNT("engine.cohort.runs", 1);
  JAMELECT_OBS_COUNT("engine.cohort.slots", out.slots);
  const BinomialRegimeCounts& regime_now = binomial_regime_counts();
  JAMELECT_OBS_COUNT(
      "binom.regime.loop",
      static_cast<std::int64_t>(regime_now.loop - regime_start.loop));
  JAMELECT_OBS_COUNT(
      "binom.regime.inversion",
      static_cast<std::int64_t>(regime_now.inversion - regime_start.inversion));
  JAMELECT_OBS_COUNT(
      "binom.regime.btpe",
      static_cast<std::int64_t>(regime_now.btpe - regime_start.btpe));
  JAMELECT_OBS_HISTOGRAM("engine.cohort.peak_cohorts",
                         static_cast<std::int64_t>(peak_cohorts_));
  return out;
}

}  // namespace jamelect
