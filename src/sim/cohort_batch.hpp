// Batched cohort engine — multi-trial cohort lanes in SoA lockstep.
//
// run_cohort_mc's sequential path runs one CohortEngine trial at a
// time: per slot, per cohort, a virtual transmit_probability() call
// and a from-scratch binomial_sample() (log1p/exp inversion walk or
// the full BTPE setup). This engine runs a whole chunk of trials as
// *lanes* stepped slot-by-slot in lockstep. Each lane holds a small
// fixed-capacity cohort table of POD protocol kernels
// (protocols/kernels.hpp) plus member counts; per slot the engine
// walks cohort positions across all lanes, resolves each cohort's
// Binomial(|cohort|, p) plan through a memoized BinomialSamplerCache
// (support/binomial_cache.hpp, keyed on (|cohort|, broadcast_u)), and
// batches each position's first uniform across lanes through a wide
// RNG (WideXoshiro / WideAesCtr) group draw.
//
// Exactness: with the xoshiro backend, trial k's TrialOutcome is
// bit-identical to the sequential run_cohort_mc trial k for the same
// McConfig::seed — same per-trial stream (base.child(k).child(0x51e0)),
// same draw order (cohorts in table order, one group uniform then
// scalar remainder draws per cohort), same adversary derivation
// (child(0xad50)), same leader draws, regardless of lane count, lane
// mode, or pool width. The AES-CTR backend is its own deterministic
// universe (stream = trial index), likewise invariant to lane count
// and partitioning. Pinned by tests/cohort_batch_equivalence_test.cpp.
//
// Cohort-capacity overflow: lanes whose cohort table would exceed
// CohortBatchConfig::cohort_cap (possible under weak CD, where done
// cohorts accumulate frozen) retire to an unbounded scalar rerun of
// that trial from slot 0 with freshly derived streams — same outcome
// as if the lane had been sized large enough. Counted as
// engine.cohort.lane_overflow.
//
// Not supported here (the caller falls back to the sequential engine):
// telemetry observers and traces. Per-event cohort telemetry
// (engine.cohort.{merges,splits,runs}, peak_cohorts) is sequential-
// only; the batched path emits chunk-granularity counters instead
// (engine.batch.cohort_chunks, engine.cohort.binom_cache_*).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <variant>

#include "protocols/station.hpp"
#include "sim/adversary_spec.hpp"
#include "sim/batch.hpp"
#include "sim/engine.hpp"
#include "sim/outcome.hpp"
#include "support/rng.hpp"

namespace jamelect {

/// Kernel parameter set for a cohort-batchable prototype. Only the
/// paper's uniform protocols qualify: the cohort engine's split/merge
/// mirror is written against UniformStationAdapter semantics, and the
/// baseline kernels (Willard, Nakano–Olariu, no-CD) ride their own
/// dedicated batch engines instead.
using CohortKernelSpec =
    std::variant<PlainUniformParams, LeskParams, LesuParams>;

/// Per-chunk configuration for run_cohort_batch_trials; mirrors
/// BatchConfig plus the CohortEngine knobs (cd, stop) and the lane
/// cohort-table capacity.
struct CohortBatchConfig {
  std::uint64_t n = 1;
  std::int64_t max_slots = 1'000'000;
  CdMode cd = CdMode::kStrong;
  StopRule stop = StopRule::kAllDone;
  BatchLaneMode lanes = BatchLaneMode::kAuto;
  RngBackend rng = RngBackend::kXoshiro;
  /// Cohort-table capacity per lane (>= 1). Adapter-kernel protocols
  /// split at most once per trial — a Single slot separates the done
  /// listeners from the lone transmitter — so they peak at 2 cohorts
  /// and never overflow the default; 8 leaves headroom anyway. A cap
  /// of 1 forces the overflow rerun on the first split (used by tests
  /// to pin the retire-to-scalar path).
  std::size_t cohort_cap = 8;
};

/// Probes a run_cohort_mc prototype factory for the batched engine:
/// requires two fresh draws from the factory to be non-null
/// UniformStationAdapter instances in identical pristine state (not
/// done, not leader) wrapping a recognized paper kernel. Returns the
/// kernel params, or nullopt to fall back to the sequential engine.
[[nodiscard]] std::optional<CohortKernelSpec> cohort_batch_spec(
    const std::function<StationProtocolPtr()>& prototype_factory);

/// Runs trials [first, first + count) of a cohort sweep in SoA lanes,
/// writing trial first + i's outcome to out[i]. `base` is
/// Rng(McConfig::seed); all trial randomness derives from it and the
/// absolute trial index exactly as the sequential path's run_trials.
void run_cohort_batch_trials(const CohortKernelSpec& spec,
                             const AdversarySpec& adversary,
                             const CohortBatchConfig& config, const Rng& base,
                             std::size_t first, std::size_t count,
                             TrialOutcome* out);

}  // namespace jamelect
