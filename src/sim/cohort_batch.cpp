#include "sim/cohort_batch.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "adversary/adversary.hpp"
#include "channel/channel.hpp"
#include "obs/metrics.hpp"
#include "protocols/kernels.hpp"
#include "protocols/uniform_station.hpp"
#include "support/binomial_cache.hpp"
#include "support/ctr_rng.hpp"
#include "support/expects.hpp"
#include "support/wide_rng.hpp"

namespace jamelect {

namespace {

/// Same contract as the aggregate batch engine's helper (batch.cpp):
/// policies whose jam schedule is a deterministic function of (slot,
/// own budget) alone — no rng draws, no observe() feedback — make the
/// identical decision in every lane, so one adversary instance stepped
/// once per slot serves the whole chunk bit for bit.
[[nodiscard]] bool lane_invariant_policy(const AdversarySpec& spec) {
  return spec.policy == "none" || spec.policy == "saturating" ||
         spec.policy == "periodic" || spec.policy == "pulse" ||
         spec.policy == "interval_buster";
}

template <class Params>
struct KernelFor;
template <>
struct KernelFor<PlainUniformParams> {
  using type = kernels::UniformKernel;
};
template <>
struct KernelFor<LeskParams> {
  using type = kernels::LeskKernel;
};
template <>
struct KernelFor<LesuParams> {
  using type = kernels::LesuKernel;
};

// ---------------------------------------------------------------------------
// Representative mirror: UniformStationAdapter semantics over a POD kernel.
// ---------------------------------------------------------------------------

/// One cohort representative: kernel state plus the adapter's
/// termination flags. Trivially copyable, so a weak-CD Single split is
/// a struct copy instead of a clone_station() allocation.
template <class Kernel>
struct Rep {
  Kernel kern;
  bool done;
  bool leader;
};

/// Mirror of UniformStationAdapter::feedback, the kernel in place of
/// the virtual protocol — statement for statement, including the no-CD
/// contract check.
template <class Kernel>
void rep_feedback(Rep<Kernel>& rep, bool transmitted, Observation obs) {
  if (rep.done) return;
  JAMELECT_EXPECTS(obs != Observation::kNoSingle);  // no-CD unsupported here
  const ChannelState state = to_channel_state(obs);
  rep.kern.step(state);
  if (state == ChannelState::kSingle) {
    rep.done = true;
    rep.leader = transmitted;
  }
}

// Field-wise kernel equality, mirroring each protocol's state_equals
// (plain_uniform.hpp, lesk.cpp, estimation.cpp, lesu.cpp). Parameter
// fields (inc, L, params) are identical across reps cloned from one
// prototype, so comparing them costs nothing and keeps the mirror an
// exact transcription.
[[nodiscard]] bool kernel_state_equals(const kernels::UniformKernel& a,
                                       const kernels::UniformKernel& b) {
  return a.u == b.u && a.elected == b.elected;
}

[[nodiscard]] bool kernel_state_equals(const kernels::LeskKernel& a,
                                       const kernels::LeskKernel& b) {
  return a.inc == b.inc && a.u == b.u && a.elected == b.elected;
}

[[nodiscard]] bool kernel_state_equals(const kernels::EstimationKernel& a,
                                       const kernels::EstimationKernel& b) {
  return a.L == b.L && a.round == b.round &&
         a.slots_left_in_round == b.slots_left_in_round &&
         a.nulls_in_round == b.nulls_in_round && a.completed == b.completed &&
         a.elected == b.elected;
}

[[nodiscard]] bool kernel_state_equals(const kernels::LesuKernel& a,
                                       const kernels::LesuKernel& b) {
  // Lesu::state_equals skips the LESK comparison while lesk_ is null;
  // the kernel's pre-phase placeholder is the same constant for every
  // rep, so comparing it unconditionally is equivalent.
  return a.params.c == b.params.c &&
         a.params.estimation_L == b.params.estimation_L &&
         a.params.max_i == b.params.max_i && a.lesk_phase == b.lesk_phase &&
         a.elected == b.elected && a.i == b.i && a.j == b.j && a.t0 == b.t0 &&
         a.current_eps == b.current_eps && a.slots_left == b.slots_left &&
         kernel_state_equals(a.est, b.est) &&
         kernel_state_equals(a.lesk, b.lesk);
}

/// Mirror of UniformStationAdapter::state_equals.
template <class Kernel>
[[nodiscard]] bool rep_state_equals(const Rep<Kernel>& a,
                                    const Rep<Kernel>& b) {
  return a.done == b.done && a.leader == b.leader &&
         kernel_state_equals(a.kern, b.kern);
}

// ---------------------------------------------------------------------------
// RNG lane packs.
// ---------------------------------------------------------------------------

/// Scalar fallback pack: one independent scalar generator per lane
/// behind the same lane facade the wide packs expose, at group width
/// 1. Used for BatchLaneMode::kScalarLanes and the forced-scalar CI
/// matrix; draw-for-draw identical to the wide packs by the facades'
/// bit-identity contracts.
template <class ScalarRng>
class ScalarLanePack {
 public:
  void add_lane(ScalarRng rng) { rngs_.push_back(std::move(rng)); }
  [[nodiscard]] std::size_t padded_lanes() const noexcept {
    return rngs_.size();
  }
  [[nodiscard]] double uniform_lane(std::size_t lane) {
    return rngs_[lane].uniform();
  }
  [[nodiscard]] std::uint64_t below_lane(std::size_t lane,
                                         std::uint64_t bound) {
    return rngs_[lane].below(bound);
  }
  void move_lane(std::size_t dst, std::size_t src) { rngs_[dst] = rngs_[src]; }
  void uniform_masked(std::size_t groups, const std::uint8_t* mask,
                      double* out) {
    for (std::size_t k = 0; k < groups; ++k) {
      if (mask[k] != 0) out[k] = rngs_[k].uniform();
    }
  }
  void uniform_groups(std::size_t groups, double* out) {
    for (std::size_t k = 0; k < groups; ++k) out[k] = rngs_[k].uniform();
  }
  void uniform_groups2(std::size_t groups, double* out_u, double* out_v) {
    for (std::size_t k = 0; k < groups; ++k) {
      out_u[k] = rngs_[k].uniform();
      out_v[k] = rngs_[k].uniform();
    }
  }

 private:
  std::vector<ScalarRng> rngs_;
};

template <class Pack>
struct PackTraits;
template <>
struct PackTraits<WideXoshiro> {
  static constexpr std::size_t kGroupWidth = kWideLanes;
  static constexpr bool kWidePack = true;
};
template <>
struct PackTraits<WideAesCtr> {
  static constexpr std::size_t kGroupWidth = kWideLanes;
  static constexpr bool kWidePack = true;
};
template <class ScalarRng>
struct PackTraits<ScalarLanePack<ScalarRng>> {
  static constexpr std::size_t kGroupWidth = 1;
  static constexpr bool kWidePack = false;
};

/// Lane view of a pack, quacking like a scalar generator for
/// binomial_plan_draw_first's remainder draws (loop coins past the
/// first, BTPE rejection retries).
template <class Pack>
struct LaneRng {
  Pack* pack;
  std::size_t lane;
  [[nodiscard]] double uniform() { return pack->uniform_lane(lane); }
};

// ---------------------------------------------------------------------------
// Per-thread plan cache.
// ---------------------------------------------------------------------------

/// Per-thread cohort-batch state: one BinomialSamplerCache shared by
/// every chunk this worker runs (plans are pure functions of
/// (|cohort|, u), so reuse across configs and n is sound), plus
/// watermarks so each chunk emits its cache-counter deltas.
struct CohortWorkspace {
  BinomialSamplerCache cache;
  std::uint64_t lookups_seen = 0;
  std::uint64_t misses_seen = 0;
  std::uint64_t dense_seen = 0;

  void emit_cache_counters() {
    const std::uint64_t lookups = cache.lookups();
    const std::uint64_t misses = cache.misses();
    const std::uint64_t dense = cache.dense_hits();
    JAMELECT_OBS_COUNT(
        "engine.cohort.binom_cache_hits",
        static_cast<std::int64_t>((lookups - lookups_seen) -
                                  (misses - misses_seen)));
    JAMELECT_OBS_COUNT("engine.cohort.binom_cache_misses",
                       static_cast<std::int64_t>(misses - misses_seen));
    JAMELECT_OBS_COUNT("engine.cohort.binom_cache_dense_hits",
                       static_cast<std::int64_t>(dense - dense_seen));
    lookups_seen = lookups;
    misses_seen = misses;
    dense_seen = dense;
  }
};

CohortWorkspace& local_cohort_workspace() {
  thread_local CohortWorkspace workspace;
  return workspace;
}

// ---------------------------------------------------------------------------
// Scalar trial: the overflow-rerun path.
// ---------------------------------------------------------------------------

/// One kernelized cohort trial with an unbounded table: the exact loop
/// of CohortEngine::run (cohort.cpp) with annotation branches removed
/// (no trace, no observer — both probed away upstream), reps in place
/// of virtual protocols, and draws through the plan cache. Runs a lane
/// whose cohort table outgrew CohortBatchConfig::cohort_cap, restarted
/// from slot 0 on freshly derived streams.
template <class Kernel, class ScalarRng>
TrialOutcome scalar_cohort_trial(const typename Kernel::Params& params,
                                 const CohortBatchConfig& config,
                                 BoundedAdversary& adversary, ScalarRng rng,
                                 BinomialSamplerCache& cache,
                                 std::int64_t& slots_accum) {
  struct Cohort {
    Rep<Kernel> rep;
    std::uint64_t size;
  };
  std::vector<Cohort> cohorts;
  cohorts.push_back(Cohort{Rep<Kernel>{Kernel(params), false, false},
                           config.n});
  std::vector<std::uint64_t> tx;
  TrialOutcome out;

  for (Slot slot = 0; slot < config.max_slots; ++slot) {
    const bool jammed = adversary.step();

    const std::size_t live = cohorts.size();
    tx.resize(live);
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < live; ++c) {
      if (cohorts[c].rep.done) {  // p == 0: no transmission, no draw
        tx[c] = 0;
        continue;
      }
      const BinomialPlan& plan =
          cache.plan(cohorts[c].size, cohorts[c].rep.kern.broadcast_u());
      const std::uint64_t k = binomial_plan_draw(plan, rng);
      tx[c] = k;
      total += k;
    }

    const ChannelState state = resolve_slot(total, jammed);

    ++out.slots;
    if (jammed) ++out.jams;
    switch (state) {
      case ChannelState::kNull: ++out.nulls; break;
      case ChannelState::kSingle: ++out.singles; break;
      case ChannelState::kCollision: ++out.collisions; break;
    }
    out.transmissions += static_cast<double>(total);

    const Observation obs_l = observe_slot(state, false, config.cd);
    const Observation obs_t = observe_slot(state, true, config.cd);
    for (std::size_t c = 0; c < live; ++c) {
      Cohort& cohort = cohorts[c];
      const std::uint64_t k = tx[c];
      if (k == 0) {
        rep_feedback(cohort.rep, false, obs_l);
      } else if (k == cohort.size) {
        rep_feedback(cohort.rep, true, obs_t);
      } else if (obs_l == obs_t && obs_l != Observation::kSingle) {
        rep_feedback(cohort.rep, false, obs_l);
      } else {
        Rep<Kernel> tx_rep = cohort.rep;
        rep_feedback(tx_rep, true, obs_t);
        rep_feedback(cohort.rep, false, obs_l);
        if (!rep_state_equals(cohort.rep, tx_rep)) {
          cohort.size -= k;
          cohorts.push_back(Cohort{tx_rep, k});
        }
      }
    }
    adversary.observe({slot, total, jammed, state});

    // Merge: first-occurrence compaction — the same absorption targets
    // and final table as CohortEngine::merge_cohorts' bucketed pass.
    if (cohorts.size() >= 2) {
      std::size_t kept = 0;
      for (std::size_t i = 0; i < cohorts.size(); ++i) {
        bool absorbed = false;
        for (std::size_t t = 0; t < kept; ++t) {
          if (rep_state_equals(cohorts[t].rep, cohorts[i].rep)) {
            cohorts[t].size += cohorts[i].size;
            absorbed = true;
            break;
          }
        }
        if (absorbed) continue;
        if (kept != i) cohorts[kept] = cohorts[i];
        ++kept;
      }
      cohorts.erase(cohorts.begin() + static_cast<std::ptrdiff_t>(kept),
                    cohorts.end());
    }

    if (config.stop == StopRule::kFirstSingle) {
      if (state == ChannelState::kSingle) {
        out.elected = true;
        out.leader = static_cast<StationId>(rng.below(config.n));
        break;
      }
    } else {
      bool all_done = true;
      for (const Cohort& cohort : cohorts) {
        if (!cohort.rep.done) {
          all_done = false;
          break;
        }
      }
      if (all_done) {
        out.elected = true;
        break;
      }
    }
  }

  std::uint64_t done_count = 0;
  std::uint64_t leaders = 0;
  for (const Cohort& cohort : cohorts) {
    if (cohort.rep.done) {
      done_count += cohort.size;
      if (cohort.rep.leader) leaders += cohort.size;
    }
  }
  out.all_done = done_count == config.n;
  out.unique_leader = leaders == 1;
  if (leaders == 1 && !out.leader.has_value()) {
    out.leader = static_cast<StationId>(rng.below(config.n));
  }
  if (config.stop == StopRule::kFirstSingle) {
    out.unique_leader = out.elected;
  } else {
    out.elected = out.elected && out.unique_leader;
  }
  slots_accum += out.slots;
  return out;
}

// ---------------------------------------------------------------------------
// Lane engine.
// ---------------------------------------------------------------------------

/// Chunk engine: `count` lanes, one trial per lane, stepped in slot
/// lockstep. Per slot, per cohort position, pass A resolves each
/// lane's binomial plan and pass B consumes the wide group draw; the
/// scalar tail then mirrors CohortEngine::run per lane (resolve,
/// bookkeeping, feedback/split, adversary observe, merge, stop rule).
/// Finished lanes are swap-removed after the sweep; lanes whose cohort
/// table would exceed the cap retire to `rerun`.
template <class Kernel, class Pack, class RerunFn>
void cohort_lanes(const typename Kernel::Params& params,
                  const AdversarySpec& spec, const CohortBatchConfig& config,
                  const Rng& base, std::size_t first, std::size_t count,
                  TrialOutcome* out, Pack& pack, const RerunFn& rerun) {
  constexpr std::size_t kW = PackTraits<Pack>::kGroupWidth;
  const std::uint64_t n = config.n;
  const std::size_t cap = config.cohort_cap;
  const std::size_t padded = pack.padded_lanes();

  CohortWorkspace& workspace = local_cohort_workspace();
  BinomialSamplerCache& cache = workspace.cache;
  if constexpr (std::is_same_v<Kernel, kernels::LeskKernel>) {
    // LESK's u moves on the {-1, +eps/8} lattice, so steady-state plan
    // lookups hit the dense index (same policy as the aggregate batch
    // engine's SlotProbCache).
    cache.set_lattice_step(Kernel(params).inc);
  }

  // Lane state, lane-major: cohort position c of lane l at l*cap + c.
  const Rep<Kernel> fresh{Kernel(params), false, false};
  std::vector<Rep<Kernel>> reps(count * cap, fresh);
  std::vector<std::uint64_t> sizes(count * cap, 0);
  std::vector<std::uint64_t> tx(count * cap, 0);
  std::vector<std::uint32_t> counts(count, 1);
  std::vector<std::uint32_t> lane_trial(count);
  std::vector<TrialOutcome> acc(count);
  // Deterministic policies share one adversary across all lanes: its
  // decisions depend only on (slot, own budget), every lane's scalar
  // twin would make the same move, and observe() is a no-op — so one
  // step() per slot replaces `active` virtual calls. Adaptive policies
  // keep one instance per trial on exactly the sequential runner's
  // stream derivation (trial index first, then the adversary child).
  const bool shared_adv = lane_invariant_policy(spec);
  std::unique_ptr<BoundedAdversary> adv_shared;
  std::vector<std::unique_ptr<BoundedAdversary>> advs;
  if (shared_adv) {
    adv_shared = make_adversary(spec, base.child(first).child(0xad50));
  } else {
    advs.reserve(count);
  }
  for (std::size_t k = 0; k < count; ++k) {
    sizes[k * cap] = n;
    lane_trial[k] = static_cast<std::uint32_t>(k);
    if (!shared_adv) {
      advs.push_back(make_adversary(spec, base.child(first + k).child(0xad50)));
    }
  }

  // Per-slot scratch.
  std::vector<const BinomialPlan*> plans(count, nullptr);
  std::vector<std::uint8_t> mask(padded, 0);
  std::vector<std::uint8_t> btpe_mask(padded, 0);
  std::vector<double> first_u(padded, 0.0);
  std::vector<double> second_u(padded, 0.0);
  std::vector<std::uint64_t> totals(count, 0);
  std::vector<std::uint8_t> jammed_v(count, 0);
  std::vector<std::uint8_t> finished(count, 0);
  // Per-lane Null/Single/Collision tallies, indexed by ChannelState's
  // value: the slot state is data-dependent, so a branchy counter
  // update mispredicts; the indexed increment doesn't. Folded into the
  // lane's TrialOutcome at finalize time.
  std::vector<std::int64_t> tally(count * 3, 0);

  std::int64_t slots_total = 0;
  std::int64_t rerun_slots = 0;
  std::size_t active = count;

  // Cross-slot uniformity hint. After a dense slot in which EVERY lane
  // resolved Collision, each lane's one kernel took the identical
  // step(kCollision) from an identical u, nobody split, elected, or
  // finalized — so the next slot provably starts with all lanes at one
  // (size, u) and the O(active) probe can be skipped. Sound only for
  // kernels whose observable state is exactly (u, elected): Estimation
  // (inside Lesu) carries round counters that equal broadcast_u() does
  // not pin, so identical feedback can still diverge the next u.
  constexpr bool kUniformHintable =
      std::is_same_v<Kernel, kernels::UniformKernel> ||
      std::is_same_v<Kernel, kernels::LeskKernel>;
  bool uniform_hint = false;

  /// Merge for one lane: first-occurrence compaction over <= cap
  /// entries — same absorption targets and final table as
  /// CohortEngine::merge_cohorts, pairwise because the table is tiny.
  const auto merge_lane = [&](std::size_t l) {
    const std::uint32_t live = counts[l];
    if (live < 2) return;
    std::uint32_t kept = 0;
    for (std::uint32_t i = 0; i < live; ++i) {
      bool absorbed = false;
      for (std::uint32_t t = 0; t < kept; ++t) {
        if (rep_state_equals(reps[l * cap + t], reps[l * cap + i])) {
          sizes[l * cap + t] += sizes[l * cap + i];
          absorbed = true;
          break;
        }
      }
      if (absorbed) continue;
      if (kept != i) {
        reps[l * cap + kept] = reps[l * cap + i];
        sizes[l * cap + kept] = sizes[l * cap + i];
      }
      ++kept;
    }
    counts[l] = kept;
  };

  /// Election-quality bookkeeping, exactly as CohortEngine::run's
  /// tail; writes the lane's outcome and marks it for compaction.
  const auto finalize = [&](std::size_t l) {
    TrialOutcome& o = acc[l];
    o.nulls += tally[l * 3 + 0];
    o.singles += tally[l * 3 + 1];
    o.collisions += tally[l * 3 + 2];
    std::uint64_t done_count = 0;
    std::uint64_t leaders = 0;
    for (std::uint32_t c = 0; c < counts[l]; ++c) {
      if (reps[l * cap + c].done) {
        done_count += sizes[l * cap + c];
        if (reps[l * cap + c].leader) leaders += sizes[l * cap + c];
      }
    }
    o.all_done = done_count == n;
    o.unique_leader = leaders == 1;
    if (leaders == 1 && !o.leader.has_value()) {
      o.leader = static_cast<StationId>(pack.below_lane(l, n));
    }
    if (config.stop == StopRule::kFirstSingle) {
      o.unique_leader = o.elected;
    } else {
      o.elected = o.elected && o.unique_leader;
    }
    out[lane_trial[l]] = o;
    finished[l] = 1;
  };

  for (Slot slot = 0; slot < config.max_slots && active > 0; ++slot) {
    slots_total += static_cast<std::int64_t>(active);
    // Jam bits first: each adversary moves before seeing its lane's
    // coins, exactly as the sequential engine. Lane-invariant policies
    // step the shared instance once; its bit covers every lane.
    bool shared_jam = false;
    if (shared_adv) shared_jam = adv_shared->step();
    std::uint32_t max_count = 0;
    for (std::size_t l = 0; l < active; ++l) {
      if (!shared_adv) jammed_v[l] = advs[l]->step() ? 1 : 0;
      max_count = std::max(max_count, counts[l]);
    }

    const std::size_t groups = (active + kW - 1) / kW;
    // The sequential engine's slot body for one lane: resolve,
    // bookkeeping, feedback/split (overflow retires to the scalar
    // rerun), adversary observe, merge, stop rule. Shared by the fused
    // single-cohort sweep and the generic multi-position path.
    const auto lane_tail = [&](std::size_t l, std::uint64_t total,
                               bool jammed) {
      const ChannelState state = resolve_slot(total, jammed);
      TrialOutcome& o = acc[l];

      ++o.slots;
      o.jams += static_cast<std::int64_t>(jammed);
      ++tally[l * 3 + static_cast<std::size_t>(state)];
      o.transmissions += static_cast<double>(total);

      const Observation obs_l = observe_slot(state, false, config.cd);
      const Observation obs_t = observe_slot(state, true, config.cd);
      const std::uint32_t live = counts[l];
      bool overflow = false;
      for (std::uint32_t c = 0; c < live; ++c) {
        Rep<Kernel>& rep = reps[l * cap + c];
        const std::uint64_t k = tx[l * cap + c];
        if (k == 0) {
          rep_feedback(rep, false, obs_l);
        } else if (k == sizes[l * cap + c]) {
          rep_feedback(rep, true, obs_t);
        } else if (obs_l == obs_t && obs_l != Observation::kSingle) {
          rep_feedback(rep, false, obs_l);
        } else {
          Rep<Kernel> tx_rep = rep;
          rep_feedback(tx_rep, true, obs_t);
          rep_feedback(rep, false, obs_l);
          if (!rep_state_equals(rep, tx_rep)) {
            if (counts[l] == cap) {
              overflow = true;
              break;
            }
            sizes[l * cap + c] -= k;
            reps[l * cap + counts[l]] = tx_rep;
            sizes[l * cap + counts[l]] = k;
            ++counts[l];
          }
        }
      }
      if (overflow) {
        // The table outgrew the lane: retire to an unbounded scalar
        // rerun of this trial from slot 0 on fresh streams. The lane's
        // partially-advanced state is discarded wholesale.
        JAMELECT_OBS_COUNT("engine.cohort.lane_overflow", 1);
        out[lane_trial[l]] = rerun(lane_trial[l], rerun_slots);
        finished[l] = 1;
        return;
      }
      // Lane-invariant policies ignore observe() (no feedback path);
      // skipping the virtual call on the shared instance is exact.
      if (!shared_adv) advs[l]->observe({slot, total, jammed, state});
      merge_lane(l);

      if (config.stop == StopRule::kFirstSingle) {
        if (state == ChannelState::kSingle) {
          o.elected = true;
          o.leader = static_cast<StationId>(pack.below_lane(l, n));
          finalize(l);
        }
      } else {
        bool all_done = true;
        for (std::uint32_t c = 0; c < counts[l]; ++c) {
          if (!reps[l * cap + c].done) {
            all_done = false;
            break;
          }
        }
        if (all_done) {
          o.elected = true;
          finalize(l);
        }
      }
    };

    // counts[l] == 1 variant for the max_count == 1 fast paths: the
    // lane's total IS its one cohort's draw, so the table loop and the
    // tx round-trip drop out, and merging is only needed if this very
    // slot split the cohort. Each branch performs the identical
    // operations the generic body would on a one-entry table.
    const auto lane_tail1 = [&](std::size_t l, std::uint64_t total,
                                bool jammed) {
      const ChannelState state = resolve_slot(total, jammed);
      TrialOutcome& o = acc[l];

      ++o.slots;
      o.jams += static_cast<std::int64_t>(jammed);
      ++tally[l * 3 + static_cast<std::size_t>(state)];
      o.transmissions += static_cast<double>(total);

      const Observation obs_l = observe_slot(state, false, config.cd);
      const Observation obs_t = observe_slot(state, true, config.cd);
      Rep<Kernel>& rep = reps[l * cap];
      bool split = false;
      if (total == 0) {
        rep_feedback(rep, false, obs_l);
      } else if (total == sizes[l * cap]) {
        rep_feedback(rep, true, obs_t);
      } else if (obs_l == obs_t && obs_l != Observation::kSingle) {
        rep_feedback(rep, false, obs_l);
      } else {
        Rep<Kernel> tx_rep = rep;
        rep_feedback(tx_rep, true, obs_t);
        rep_feedback(rep, false, obs_l);
        if (!rep_state_equals(rep, tx_rep)) {
          if (cap == 1) {  // counts[l] == cap: overflow, scalar rerun
            JAMELECT_OBS_COUNT("engine.cohort.lane_overflow", 1);
            out[lane_trial[l]] = rerun(lane_trial[l], rerun_slots);
            finished[l] = 1;
            return;
          }
          sizes[l * cap] -= total;
          reps[l * cap + 1] = tx_rep;
          sizes[l * cap + 1] = total;
          counts[l] = 2;
          split = true;
        }
      }
      if (!shared_adv) advs[l]->observe({slot, total, jammed, state});
      if (split) merge_lane(l);

      if (config.stop == StopRule::kFirstSingle) {
        if (state == ChannelState::kSingle) {
          o.elected = true;
          o.leader = static_cast<StationId>(pack.below_lane(l, n));
          finalize(l);
        }
      } else {
        bool all_done = rep.done;
        if (split) {
          all_done = true;
          for (std::uint32_t c = 0; c < counts[l]; ++c) {
            if (!reps[l * cap + c].done) {
              all_done = false;
              break;
            }
          }
        }
        if (all_done) {
          o.elected = true;
          finalize(l);
        }
      }
    };

    // Collision fast tail for the dense sweeps: with total >= 2 (or a
    // jam) the slot resolves Collision no matter what, observe_slot
    // returns kCollision for listener and transmitter alike under
    // strong AND weak CD, and every branch of the generic feedback —
    // total == 0 aside, which needs total >= 1 anyway — reduces to one
    // kern.step(kCollision) with done/leader untouched. No split is
    // possible (obs_l == obs_t != kSingle), no lane elects or
    // finalizes, so the body is counters + one kernel step + the
    // adaptive observe.
    const auto lane_tail_collide = [&](std::size_t l, std::uint64_t total,
                                       bool jammed) {
      TrialOutcome& o = acc[l];
      ++o.slots;
      o.jams += static_cast<std::int64_t>(jammed);
      ++tally[l * 3 + static_cast<std::size_t>(ChannelState::kCollision)];
      o.transmissions += static_cast<double>(total);
      reps[l * cap].kern.step(ChannelState::kCollision);
      if (!shared_adv) {
        advs[l]->observe({slot, total, jammed, ChannelState::kCollision});
      }
    };

    // Lockstep lanes overwhelmingly share one (size, u) pair per
    // position — every lane starts at (n, u0) and follows the same
    // broadcast schedule until its cohorts split — so the plan lookup
    // is memoized on the previous lane's key.
    std::uint64_t memo_size = 0;
    double memo_u = -1.0;
    const BinomialPlan* memo_plan = nullptr;

    if (max_count == 1) {
      // Fast path: every lane holds exactly one cohort — the steady
      // state, since adapter kernels split at most once per trial and
      // strong-CD splits finish the lane the same slot. Pass B and the
      // scalar tail fuse into one sweep with no per-position
      // scaffolding and no totals round-trip.
      //
      // Uniform-slot probe: while no lane has diverged — true for the
      // whole jam/collision climb, where every slot is a Collision for
      // every lane — all lanes sit at the same (size, u) and share ONE
      // plan, so the per-lane plan/mask scaffolding drops out and the
      // wide draws go dense (advancing retired lanes' dead streams is
      // unobservable; live lanes draw exactly what the masked calls
      // would hand them).
      const BinomialPlan* uplan = nullptr;
      if (kUniformHintable && uniform_hint) {
        uplan = &cache.plan(sizes[0], reps[0].kern.broadcast_u());
      } else {
        const Rep<Kernel>& rep0 = reps[0];
        if (!rep0.done) {
          const std::uint64_t size0 = sizes[0];
          const double u0 = rep0.kern.broadcast_u();
          bool uniform = true;
          for (std::size_t l = 1; l < active; ++l) {
            const Rep<Kernel>& rep = reps[l * cap];
            if (rep.done || sizes[l * cap] != size0 ||
                rep.kern.broadcast_u() != u0) {
              uniform = false;
              break;
            }
          }
          if (uniform) uplan = &cache.plan(size0, u0);
        }
      }
      uniform_hint = false;
      if (uplan != nullptr &&
          uplan->regime == BinomialPlan::Regime::kBtpe) {
        const BinomialPlan& plan = *uplan;
        const BinomialPlan::BtpeSetup& bt = plan.btpe;
        const double p1 = bt.p1;
        const double p4 = bt.p4;
        const double xm = bt.xm;
        const bool refl = plan.reflect;
        const std::uint64_t pn = plan.n;
        pack.uniform_groups2(groups, first_u.data(), second_u.data());
        bool all_collide = true;
        for (std::size_t l = 0; l < active; ++l) {
          const double uu = first_u[l] * p4;
          std::uint64_t k;
          if (uu <= p1) {
            const std::uint64_t y = static_cast<std::uint64_t>(
                std::floor(xm - p1 * second_u[l] + uu));
            k = refl ? pn - y : y;
          } else {
            LaneRng<Pack> lane_rng{&pack, l};
            k = binomial_plan_draw_first2(plan, first_u[l], second_u[l],
                                          lane_rng);
          }
          const bool jammed = shared_adv ? shared_jam : jammed_v[l] != 0;
          if (k >= 2) {
            lane_tail_collide(l, k, jammed);
          } else {
            all_collide = false;
            lane_tail1(l, k, jammed);
          }
        }
        uniform_hint =
            kUniformHintable && (all_collide || (shared_adv && shared_jam));
      } else if (uplan != nullptr &&
                 uplan->regime == BinomialPlan::Regime::kInversion) {
        const BinomialPlan& plan = *uplan;
        pack.uniform_groups(groups, first_u.data());
        bool all_collide = true;
        for (std::size_t l = 0; l < active; ++l) {
          LaneRng<Pack> lane_rng{&pack, l};
          const std::uint64_t k =
              binomial_plan_draw_first(plan, first_u[l], lane_rng);
          const bool jammed = shared_adv ? shared_jam : jammed_v[l] != 0;
          if (k >= 2) {
            lane_tail_collide(l, k, jammed);
          } else {
            all_collide = false;
            lane_tail1(l, k, jammed);
          }
        }
        uniform_hint =
            kUniformHintable && (all_collide || (shared_adv && shared_jam));
      } else if (uplan != nullptr && !uplan->needs_draw()) {
        const std::uint64_t k =
            uplan->regime == BinomialPlan::Regime::kAll ? uplan->n : 0;
        if (k >= 2) {
          for (std::size_t l = 0; l < active; ++l) {
            lane_tail_collide(l, k, shared_adv ? shared_jam : jammed_v[l] != 0);
          }
          uniform_hint = kUniformHintable;
        } else {
          for (std::size_t l = 0; l < active; ++l) {
            lane_tail1(l, k, shared_adv ? shared_jam : jammed_v[l] != 0);
          }
          uniform_hint = kUniformHintable && shared_adv && shared_jam;
        }
      } else {
        // Mixed slot (or the small-cohort loop regime): per-lane plans
        // with masked group draws.
        for (std::size_t l = 0; l < active; ++l) {
          plans[l] = nullptr;
          mask[l] = 0;
          btpe_mask[l] = 0;
          const Rep<Kernel>& rep = reps[l * cap];
          if (rep.done) continue;  // p == 0: no transmission, no draw
          const std::uint64_t size = sizes[l * cap];
          const double u = rep.kern.broadcast_u();
          if (memo_plan == nullptr || size != memo_size || u != memo_u) {
            memo_plan = &cache.plan(size, u);
            memo_size = size;
            memo_u = u;
          }
          plans[l] = memo_plan;
          mask[l] = memo_plan->needs_draw() ? 1 : 0;
          btpe_mask[l] =
              memo_plan->regime == BinomialPlan::Regime::kBtpe ? 1 : 0;
        }
        for (std::size_t l = active; l < groups * kW; ++l) {
          mask[l] = 0;
          btpe_mask[l] = 0;
        }
        pack.uniform_masked(groups, mask.data(), first_u.data());
        // BTPE's first rejection attempt consumes exactly two uniforms
        // (u, then v) before any accept/reject test, so v is grouped
        // too; each lane's stream sees u then v in the sequential order.
        pack.uniform_masked(groups, btpe_mask.data(), second_u.data());
        for (std::size_t l = 0; l < active; ++l) {
          const bool jammed = shared_adv ? shared_jam : jammed_v[l] != 0;
          std::uint64_t k = 0;
          if (plans[l] != nullptr) {
            if (btpe_mask[l] != 0) {
              // Triangle accept inlined — btpe_draw's first test on the
              // same expressions, skipping the call on the dominant path.
              const BinomialPlan& plan = *plans[l];
              const BinomialPlan::BtpeSetup& bt = plan.btpe;
              const double u = first_u[l] * bt.p4;
              const double v = second_u[l];
              if (u <= bt.p1) {
                const std::uint64_t y = static_cast<std::uint64_t>(
                    std::floor(bt.xm - bt.p1 * v + u));
                k = plan.reflect ? plan.n - y : y;
              } else {
                LaneRng<Pack> lane_rng{&pack, l};
                k = binomial_plan_draw_first2(plan, first_u[l], second_u[l],
                                              lane_rng);
              }
            } else if (mask[l] != 0) {
              LaneRng<Pack> lane_rng{&pack, l};
              k = binomial_plan_draw_first(*plans[l], first_u[l], lane_rng);
            } else {
              k = plans[l]->regime == BinomialPlan::Regime::kAll ? plans[l]->n
                                                                 : 0;
            }
          }
          lane_tail1(l, k, jammed);
        }
      }
    } else {
      uniform_hint = false;  // unreachable while the hint holds; defensive
      for (std::size_t l = 0; l < active; ++l) totals[l] = 0;
      for (std::uint32_t pos = 0; pos < max_count; ++pos) {
        // Pass A: resolve each lane's plan for this cohort position; the
        // mask marks lanes whose plan consumes at least one uniform, the
        // BTPE mask the lanes whose first rejection attempt always
        // consumes a second.
        for (std::size_t l = 0; l < active; ++l) {
          plans[l] = nullptr;
          mask[l] = 0;
          btpe_mask[l] = 0;
          if (pos >= counts[l]) continue;
          const Rep<Kernel>& rep = reps[l * cap + pos];
          if (rep.done) {  // p == 0: no transmission, no draw
            tx[l * cap + pos] = 0;
            continue;
          }
          const std::uint64_t size = sizes[l * cap + pos];
          const double u = rep.kern.broadcast_u();
          if (memo_plan == nullptr || size != memo_size || u != memo_u) {
            memo_plan = &cache.plan(size, u);
            memo_size = size;
            memo_u = u;
          }
          plans[l] = memo_plan;
          mask[l] = memo_plan->needs_draw() ? 1 : 0;
          btpe_mask[l] =
              memo_plan->regime == BinomialPlan::Regime::kBtpe ? 1 : 0;
        }
        for (std::size_t l = active; l < groups * kW; ++l) {
          mask[l] = 0;
          btpe_mask[l] = 0;
        }
        pack.uniform_masked(groups, mask.data(), first_u.data());
        // BTPE's first rejection attempt consumes exactly two uniforms
        // (u, then v) before any accept/reject test, so v is grouped
        // too; each lane's stream sees u then v in the sequential order.
        pack.uniform_masked(groups, btpe_mask.data(), second_u.data());
        // Pass B: finish each lane's draw. Remainder uniforms come off
        // the lane's own stream before the next position's group draw,
        // so per-lane draw order matches the sequential engine exactly.
        for (std::size_t l = 0; l < active; ++l) {
          if (plans[l] == nullptr) continue;
          std::uint64_t k;
          if (btpe_mask[l] != 0) {
            // Triangle accept inlined — btpe_draw's first test on the
            // same expressions, skipping the call on the dominant path.
            const BinomialPlan& plan = *plans[l];
            const BinomialPlan::BtpeSetup& bt = plan.btpe;
            const double u = first_u[l] * bt.p4;
            const double v = second_u[l];
            if (u <= bt.p1) {
              const std::uint64_t y =
                  static_cast<std::uint64_t>(std::floor(bt.xm - bt.p1 * v + u));
              k = plan.reflect ? plan.n - y : y;
            } else {
              LaneRng<Pack> lane_rng{&pack, l};
              k = binomial_plan_draw_first2(plan, first_u[l], second_u[l],
                                            lane_rng);
            }
          } else if (mask[l] != 0) {
            LaneRng<Pack> lane_rng{&pack, l};
            k = binomial_plan_draw_first(*plans[l], first_u[l], lane_rng);
          } else {
            k = plans[l]->regime == BinomialPlan::Regime::kAll ? plans[l]->n
                                                               : 0;
          }
          tx[l * cap + pos] = k;
          totals[l] += k;
        }
      }
  
      // Scalar tail: per lane, the shared slot body on the summed total.
      for (std::size_t l = 0; l < active; ++l) {
        lane_tail(l, totals[l], shared_adv ? shared_jam : jammed_v[l] != 0);
      }
    }

    // Swap-remove finished lanes. The swapped-in source lane may
    // itself have finished this slot, so don't advance until the
    // current index holds a live lane.
    std::size_t l = 0;
    while (l < active) {
      if (finished[l] == 0) {
        ++l;
        continue;
      }
      --active;
      if (l != active) {
        for (std::size_t c = 0; c < cap; ++c) {
          reps[l * cap + c] = reps[active * cap + c];
          sizes[l * cap + c] = sizes[active * cap + c];
        }
        counts[l] = counts[active];
        acc[l] = acc[active];
        tally[l * 3 + 0] = tally[active * 3 + 0];
        tally[l * 3 + 1] = tally[active * 3 + 1];
        tally[l * 3 + 2] = tally[active * 3 + 2];
        lane_trial[l] = lane_trial[active];
        if (!shared_adv) advs[l] = std::move(advs[active]);
        finished[l] = finished[active];
        pack.move_lane(l, active);
      }
      finished[active] = 0;
    }
  }

  // Censored lanes: slot budget exhausted with trials in flight.
  for (std::size_t l = 0; l < active; ++l) finalize(l);

  JAMELECT_OBS_COUNT("engine.batch.cohort_chunks", 1);
  JAMELECT_OBS_COUNT("engine.batch.slots", slots_total + rerun_slots);
  if constexpr (PackTraits<Pack>::kWidePack) {
    JAMELECT_OBS_COUNT("mc.batch_wide_slots", slots_total);
  } else {
    JAMELECT_OBS_COUNT("mc.batch_scalar_slots", slots_total);
  }
  if (rerun_slots > 0) {
    JAMELECT_OBS_COUNT("mc.batch_scalar_slots", rerun_slots);
  }
  workspace.emit_cache_counters();
}

// ---------------------------------------------------------------------------
// Backend / lane-mode dispatch.
// ---------------------------------------------------------------------------

template <class Kernel>
void dispatch_cohort_lanes(const typename Kernel::Params& params,
                           const AdversarySpec& spec,
                           const CohortBatchConfig& config, const Rng& base,
                           std::size_t first, std::size_t count,
                           TrialOutcome* out) {
  CohortWorkspace& workspace = local_cohort_workspace();
  const bool scalar_lanes = config.lanes == BatchLaneMode::kScalarLanes;
  if (config.rng == RngBackend::kAesCtr) {
    // AES-CTR universe: trial t's sim stream is stream index t under
    // the sweep key (counter 0 up), the adversary stays on the xoshiro
    // child derivation. Invariant to lane count and chunk partition.
    const AesKey key = make_aes_key(base.seed());
    const auto rerun = [&](std::uint32_t rel, std::int64_t& slots_accum) {
      auto adv = make_adversary(spec, base.child(first + rel).child(0xad50));
      return scalar_cohort_trial<Kernel>(
          params, config, *adv,
          AesCtrRng(key, static_cast<std::uint64_t>(first + rel)),
          workspace.cache, slots_accum);
    };
    if (scalar_lanes) {
      ScalarLanePack<AesCtrRng> pack;
      for (std::size_t k = 0; k < count; ++k) {
        pack.add_lane(AesCtrRng(key, static_cast<std::uint64_t>(first + k)));
      }
      cohort_lanes<Kernel>(params, spec, config, base, first, count, out,
                           pack, rerun);
    } else {
      WideAesCtr pack(key, count);
      for (std::size_t k = 0; k < count; ++k) {
        pack.seed_lane(k, static_cast<std::uint64_t>(first + k));
      }
      cohort_lanes<Kernel>(params, spec, config, base, first, count, out,
                           pack, rerun);
    }
    return;
  }
  // Xoshiro: lane k is the sequential trial stream
  // base.child(first + k).child(0x51e0), bit for bit.
  const auto rerun = [&](std::uint32_t rel, std::int64_t& slots_accum) {
    const Rng trial_rng = base.child(first + rel);
    auto adv = make_adversary(spec, trial_rng.child(0xad50));
    return scalar_cohort_trial<Kernel>(params, config, *adv,
                                       trial_rng.child(0x51e0),
                                       workspace.cache, slots_accum);
  };
  if (scalar_lanes) {
    ScalarLanePack<Rng> pack;
    for (std::size_t k = 0; k < count; ++k) {
      pack.add_lane(base.child(first + k).child(0x51e0));
    }
    cohort_lanes<Kernel>(params, spec, config, base, first, count, out, pack,
                         rerun);
  } else {
    WideXoshiro pack(count);
    for (std::size_t k = 0; k < count; ++k) {
      pack.seed_lane(k, base.child(first + k).child(0x51e0).seed());
    }
    cohort_lanes<Kernel>(params, spec, config, base, first, count, out, pack,
                         rerun);
  }
}

}  // namespace

std::optional<CohortKernelSpec> cohort_batch_spec(
    const std::function<StationProtocolPtr()>& prototype_factory) {
  const StationProtocolPtr a = prototype_factory();
  const StationProtocolPtr b = prototype_factory();
  if (a == nullptr || b == nullptr) return std::nullopt;
  const auto* adapter = dynamic_cast<const UniformStationAdapter*>(a.get());
  if (adapter == nullptr) return std::nullopt;
  // The factory must be pure (two draws in identical state) and the
  // prototype unstarted: kernels always begin fresh from their params,
  // so a warm-started or stateful factory must take the virtual path.
  if (a->done() || a->is_leader()) return std::nullopt;
  if (!a->state_equals(*b)) return std::nullopt;
  const auto kernel = batch_kernel_spec(adapter->protocol());
  if (!kernel.has_value()) return std::nullopt;
  // Only the paper's uniform protocols run in cohort lanes; the
  // baseline kernels keep their dedicated batch engines.
  if (const auto* p = std::get_if<PlainUniformParams>(&*kernel)) {
    return CohortKernelSpec{*p};
  }
  if (const auto* p = std::get_if<LeskParams>(&*kernel)) {
    return CohortKernelSpec{*p};
  }
  if (const auto* p = std::get_if<LesuParams>(&*kernel)) {
    return CohortKernelSpec{*p};
  }
  return std::nullopt;
}

void run_cohort_batch_trials(const CohortKernelSpec& spec,
                             const AdversarySpec& adversary,
                             const CohortBatchConfig& config, const Rng& base,
                             std::size_t first, std::size_t count,
                             TrialOutcome* out) {
  JAMELECT_EXPECTS(config.n >= 1);
  JAMELECT_EXPECTS(config.max_slots >= 1);
  JAMELECT_EXPECTS(config.cohort_cap >= 1);
  JAMELECT_EXPECTS(count >= 1);
  std::visit(
      [&](const auto& params) {
        using Kernel =
            typename KernelFor<std::decay_t<decltype(params)>>::type;
        dispatch_cohort_lanes<Kernel>(params, adversary, config, base, first,
                                      count, out);
      },
      spec);
}

}  // namespace jamelect
