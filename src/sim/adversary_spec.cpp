#include "sim/adversary_spec.hpp"

#include <algorithm>
#include <stdexcept>

#include "adversary/interval_buster.hpp"
#include "adversary/policies.hpp"
#include "support/expects.hpp"

namespace jamelect {

std::unique_ptr<BoundedAdversary> make_adversary(const AdversarySpec& spec,
                                                 Rng rng) {
  JAMELECT_EXPECTS(spec.T >= 1);
  const EpsRatio eps = EpsRatio::from_double(spec.eps);
  const double protocol_eps =
      spec.protocol_eps > 0.0 ? spec.protocol_eps : spec.eps;

  JamPolicyPtr policy;
  if (spec.policy == "none") {
    policy = std::make_unique<NoJamPolicy>();
  } else if (spec.policy == "saturating") {
    policy = std::make_unique<SaturatingPolicy>();
  } else if (spec.policy == "periodic") {
    const std::int64_t period = spec.period > 0 ? spec.period : spec.T;
    const std::int64_t burst =
        spec.burst >= 0
            ? spec.burst
            : static_cast<std::int64_t>((1.0 - spec.eps) *
                                        static_cast<double>(period));
    policy = std::make_unique<PeriodicPolicy>(period,
                                              std::min(burst, period));
  } else if (spec.policy == "bernoulli") {
    const double q = spec.q > 0.0 ? spec.q : 1.0 - spec.eps;
    policy = std::make_unique<BernoulliPolicy>(q, rng.child(0x6a616d));
  } else if (spec.policy == "pulse") {
    policy = std::make_unique<PulsePolicy>(spec.on, spec.off);
  } else if (spec.policy == "single_denial") {
    JAMELECT_EXPECTS(spec.n >= 1);
    policy = std::make_unique<SingleDenialPolicy>(protocol_eps, spec.n,
                                                  spec.threshold);
  } else if (spec.policy == "collision_forcer") {
    JAMELECT_EXPECTS(spec.n >= 1);
    policy = std::make_unique<CollisionForcerPolicy>(protocol_eps, spec.n,
                                                     spec.collision_threshold);
  } else if (spec.policy == "interval_buster") {
    policy = std::make_unique<IntervalBusterPolicy>(spec.target_set);
  } else {
    throw std::invalid_argument("unknown adversary policy: " + spec.policy);
  }
  return std::make_unique<BoundedAdversary>(spec.T, eps, std::move(policy));
}

const std::vector<std::string>& adversary_policy_names() {
  static const std::vector<std::string> names = {
      "none",          "saturating",       "periodic",
      "bernoulli",     "pulse",            "single_denial",
      "collision_forcer", "interval_buster"};
  return names;
}

}  // namespace jamelect
