// LaneAdversaryBank — SoA lane-variant adversaries for the wide batch
// engines.
//
// The scalar batch path gives every lane its own BoundedAdversary (one
// virtual policy + one JammingBudget each); any lane-variant policy
// therefore used to disqualify the wide path outright. This bank lifts
// the three adaptive built-in policies into structure-of-arrays state so
// a whole chunk of lanes advances per slot with no virtual dispatch:
//
//  * bernoulli         — one WideXoshiro lane per trial, seeded exactly
//    like the scalar policy stream (base.child(first + k).child(0xad50)
//    .child(0x6a616d)), one uniform per lane per slot for 0 < q < 1 and
//    NO draws for degenerate q (the Rng::bernoulli contract).
//  * single_denial     — per-lane LeskEstimateMirror u plus a cached
//    desire bit, refreshed from observe(); the desire for a given u is
//    memoized on u's bit pattern so the slot_probabilities() evaluation
//    runs once per distinct estimate, exactly as the scalar policy
//    would compute it.
//  * collision_forcer  — same mirror, collision-threshold trigger.
//
// The (T, 1-eps) budget filter is replicated per lane with the exact
// integer recurrence of JammingBudget (adversary/budget.cpp): per-lane
// B, window_jams and a lane-major ring of the last T jam flags. All
// lanes advance in lockstep, so the ring cursor is shared. Lane k of a
// bank constructed with (spec, base, first, count) jams on exactly the
// slots the scalar make_adversary(spec, base.child(first + k)
// .child(0xad50)) adversary would jam, bit for bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "adversary/budget.hpp"
#include "sim/adversary_spec.hpp"
#include "support/rng.hpp"
#include "support/wide_rng.hpp"

namespace jamelect {

class LaneAdversaryBank {
 public:
  /// True iff `spec` names a policy this bank replicates. Policies that
  /// are lane-invariant (none, saturating, periodic, pulse,
  /// interval_buster) are handled by the shared-adversary wide path and
  /// deliberately NOT supported here.
  [[nodiscard]] static bool supports(const AdversarySpec& spec) noexcept;

  /// One lane per trial: lane k replicates
  /// make_adversary(spec, base.child(first + k).child(0xad50)).
  LaneAdversaryBank(const AdversarySpec& spec, const Rng& base,
                    std::size_t first, std::size_t count);

  /// Decides and commits one slot for lanes [0, active): jam[k] is set
  /// to 1 iff lane k jams this slot (policy desire AND budget allows).
  /// Equivalent to calling BoundedAdversary::step() on each lane's
  /// scalar twin.
  void step(std::uint8_t* jam, std::size_t active);

  /// Feeds the slot's public channel state back to each lane's policy;
  /// states[k] uses the wide engines' category codes (0 = Null,
  /// 1 = Single, 2 = Collision) which match ChannelState's values.
  /// Equivalent to BoundedAdversary::observe() per lane.
  void observe(const std::int64_t* states, std::size_t active);

  /// Swap-remove compaction hook: lane `dst` takes over lane `src`'s
  /// full adversary state (budget, policy, RNG stream).
  void move_lane(std::size_t dst, std::size_t src);

 private:
  enum class Kind : std::uint8_t { kBernoulli, kSingleDenial, kCollisionForcer };

  [[nodiscard]] bool desire_for(double u);

  Kind kind_;
  std::int64_t T_;
  EpsRatio eps_;

  // Per-lane budget state; the ring is lane-major (lane k owns entries
  // [k*T, (k+1)*T)) and all lanes share one cursor (lockstep slots).
  std::vector<std::int64_t> b_;
  std::vector<std::int64_t> window_jams_;
  std::vector<std::uint8_t> ring_;
  std::int64_t ring_pos_ = 0;

  // bernoulli: per-lane policy stream + this slot's draws. Engaged only
  // for 0 < q < 1 (degenerate q consumes no randomness in the scalar
  // policy either).
  double q_ = 0.0;
  std::optional<WideXoshiro> rng_;
  std::vector<double> draws_;

  // single_denial / collision_forcer: per-lane mirrored estimate and
  // the desire bit it implies, plus the memo of desire-by-estimate.
  double increment_ = 0.0;
  std::uint64_t n_ = 0;
  double threshold_ = 0.0;
  std::vector<double> u_;
  std::vector<std::uint8_t> desire_;
  std::unordered_map<std::uint64_t, bool> desire_memo_;
};

}  // namespace jamelect
