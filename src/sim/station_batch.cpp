#include "sim/station_batch.hpp"

#include <memory>
#include <utility>

#include "baselines/arss_kernel.hpp"
#include "channel/channel.hpp"
#include "obs/metrics.hpp"
#include "support/expects.hpp"

namespace jamelect {

namespace {

/// One devirtualized SlotEngine trial: the exact loop of
/// SlotEngine::run with annotation branches removed (no trace, no
/// observer — both probed away upstream) and kernels in place of the
/// virtual stations. Draw order, update order, and every double
/// expression match engine.cpp.
TrialOutcome run_station_trial(const StationBatchSpec& spec,
                               BoundedAdversary& adversary, Rng rng,
                               const EngineConfig& config) {
  const std::size_t n = spec.stations.size();
  std::vector<kernels::ArssKernel> stations;
  stations.reserve(n);
  for (const ArssParams& params : spec.stations) {
    stations.emplace_back(params);
  }
  std::vector<std::uint8_t> transmitted(n, 0);
  TrialOutcome out;

  for (Slot slot = 0; slot < config.max_slots; ++slot) {
    // Jam bit first: the adversary moves before seeing this slot's coins.
    const bool jammed = adversary.step();

    std::uint64_t count = 0;
    StationId last_tx = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double p = stations[i].transmit_probability();
      const bool tx = rng.bernoulli(p);
      transmitted[i] = tx ? 1 : 0;
      if (tx) {
        ++count;
        last_tx = i;
        out.transmissions += 1.0;
      }
    }

    const ChannelState state = resolve_slot(count, jammed);

    ++out.slots;
    if (jammed) ++out.jams;
    switch (state) {
      case ChannelState::kNull: ++out.nulls; break;
      case ChannelState::kSingle: ++out.singles; break;
      case ChannelState::kCollision: ++out.collisions; break;
    }

    for (std::size_t i = 0; i < n; ++i) {
      const Observation obs =
          observe_slot(state, transmitted[i] != 0, config.cd);
      stations[i].feedback(transmitted[i] != 0, obs);
    }
    adversary.observe({slot, count, jammed, state});

    if (config.stop == StopRule::kFirstSingle) {
      if (state == ChannelState::kSingle) {
        out.elected = true;
        out.leader = last_tx;
        break;
      }
    } else {
      bool all_done = true;
      for (const auto& s : stations) {
        if (!s.done) {
          all_done = false;
          break;
        }
      }
      if (all_done) {
        out.elected = true;
        break;
      }
    }
  }

  // Election-quality bookkeeping, exactly as SlotEngine::run.
  std::size_t done_count = 0;
  std::size_t leaders = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (stations[i].done) ++done_count;
    if (stations[i].done && stations[i].leader) {
      ++leaders;
      out.leader = i;
    }
  }
  out.all_done = done_count == n;
  out.unique_leader = leaders == 1;
  if (config.stop == StopRule::kFirstSingle) {
    out.unique_leader = out.elected;
  } else {
    out.elected = out.elected && out.unique_leader;
  }
  return out;
}

}  // namespace

std::optional<StationBatchSpec> station_batch_spec(
    const std::function<StationProtocolPtr(StationId)>& station_factory,
    std::uint64_t n) {
  JAMELECT_EXPECTS(n >= 1);
  StationBatchSpec spec;
  spec.stations.reserve(n);
  for (StationId i = 0; i < n; ++i) {
    const StationProtocolPtr probe = station_factory(i);
    if (probe == nullptr) return std::nullopt;
    const auto* arss = dynamic_cast<const ArssStation*>(probe.get());
    if (arss == nullptr) return std::nullopt;
    // Kernels always start fresh from the params, so a warm-started
    // station (p already moved, threshold grown) disqualifies.
    if (!ArssStation(arss->params()).state_equals(*arss)) return std::nullopt;
    spec.stations.push_back(arss->params());
  }
  // Determinism probe (cf. probe_batch_factory): a factory that returns
  // different state on the second call would diverge from the per-trial
  // construction the batch path performs.
  const StationProtocolPtr second = station_factory(0);
  if (second == nullptr) return std::nullopt;
  const auto* arss0 = dynamic_cast<const ArssStation*>(second.get());
  if (arss0 == nullptr ||
      !ArssStation(spec.stations.front()).state_equals(*arss0)) {
    return std::nullopt;
  }
  return spec;
}

void run_batch_station_trials(const StationBatchSpec& spec,
                              const AdversarySpec& adversary,
                              const EngineConfig& engine, const Rng& base,
                              std::size_t first, std::size_t count,
                              TrialOutcome* out) {
  JAMELECT_EXPECTS(out != nullptr || count == 0);
  JAMELECT_EXPECTS(!spec.stations.empty());
  JAMELECT_EXPECTS(engine.max_slots >= 1);
  JAMELECT_EXPECTS(engine.observer == nullptr);
  std::int64_t slots_total = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const Rng trial = base.child(first + k);
    const auto adv = make_adversary(adversary, trial.child(0xad50));
    out[k] = run_station_trial(spec, *adv, trial.child(0x51e0), engine);
    slots_total += out[k].slots;
  }
  JAMELECT_OBS_COUNT("engine.batch.station_chunks", 1);
  JAMELECT_OBS_COUNT("engine.batch.slots", slots_total);
  JAMELECT_OBS_COUNT("mc.batch_scalar_slots", slots_total);
}

}  // namespace jamelect
