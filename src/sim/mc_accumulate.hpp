// Shared Monte-Carlo result aggregation, used by both the per-trial
// driver (run_trials) and the batched driver (run_trials_batched).
//
// Slots and jams are integers, so their multisets compress into
// value -> count maps; every field merges order-independently (counter
// addition, map addition, multiset union — energy is sorted inside
// summarize()), which keeps results independent of thread scheduling.
#pragma once

#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/outcome.hpp"
#include "support/stats.hpp"

namespace jamelect::detail {

/// Per-thread accumulator for the streaming (keep_outcomes == false)
/// path.
struct TrialAccumulator {
  std::size_t successes = 0;
  std::unordered_map<std::int64_t, std::uint64_t> slots;
  std::unordered_map<std::int64_t, std::uint64_t> slots_ok;
  std::unordered_map<std::int64_t, std::uint64_t> jams;
  std::vector<double> energy;
};

inline void accumulate(TrialAccumulator& acc, const TrialOutcome& o,
                       std::uint64_t n_for_energy) {
  if (o.elected) {
    ++acc.successes;
    ++acc.slots_ok[o.slots];
  }
  ++acc.slots[o.slots];
  ++acc.jams[o.jams];
  acc.energy.push_back(o.transmissions / static_cast<double>(n_for_energy));
}

inline void merge_into(TrialAccumulator& into, TrialAccumulator&& from) {
  into.successes += from.successes;
  for (const auto& [v, c] : from.slots) into.slots[v] += c;
  for (const auto& [v, c] : from.slots_ok) into.slots_ok[v] += c;
  for (const auto& [v, c] : from.jams) into.jams[v] += c;
  into.energy.insert(into.energy.end(), from.energy.begin(),
                     from.energy.end());
}

[[nodiscard]] inline std::vector<std::pair<double, std::uint64_t>>
to_value_counts(const std::unordered_map<std::int64_t, std::uint64_t>& counts) {
  std::vector<std::pair<double, std::uint64_t>> pairs;
  pairs.reserve(counts.size());
  for (const auto& [v, c] : counts) {
    pairs.emplace_back(static_cast<double>(v), c);
  }
  return pairs;
}

}  // namespace jamelect::detail
