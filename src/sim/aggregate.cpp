#include "sim/aggregate.hpp"

#include "channel/channel.hpp"
#include "obs/metrics.hpp"
#include "support/expects.hpp"
#include "support/math.hpp"

namespace jamelect {

TrialOutcome run_aggregate(UniformProtocol& protocol,
                           BoundedAdversary& adversary,
                           const AggregateConfig& config, Rng& rng,
                           Trace* trace) {
  JAMELECT_EXPECTS(config.n >= 1);
  JAMELECT_EXPECTS(config.max_slots >= 1);

  TrialOutcome out;
  for (Slot slot = 0; slot < config.max_slots; ++slot) {
    const double u_before = protocol.estimate();
    const double p = protocol.transmit_probability();
    JAMELECT_EXPECTS(p >= 0.0 && p <= 1.0);

    // The adversary commits its jam bit before the stations' coins are
    // drawn (paper §1.1: it decides before knowing the current slot's
    // actions).
    const bool jammed = adversary.step();

    // Sample the outcome category exactly from (n, p).
    const SlotProbabilities probs = slot_probabilities(config.n, p);
    const double r = rng.uniform();
    std::uint64_t representative_count;  // 0, 1 or 2 ("2" = at least two)
    if (r < probs.null) {
      representative_count = 0;
    } else if (r < probs.null + probs.single) {
      representative_count = 1;
    } else {
      representative_count = 2;
    }
    const ChannelState state = resolve_slot(representative_count, jammed);

    const double expected_tx = static_cast<double>(config.n) * p;
    ++out.slots;
    out.transmissions += expected_tx;
    if (jammed) ++out.jams;
    switch (state) {
      case ChannelState::kNull: ++out.nulls; break;
      case ChannelState::kSingle: ++out.singles; break;
      case ChannelState::kCollision: ++out.collisions; break;
    }

    if (trace != nullptr) {
      SlotRecord rec;
      rec.slot = slot;
      rec.transmitters = static_cast<std::uint32_t>(representative_count);
      rec.jammed = jammed;
      rec.state = state;
      rec.estimate = u_before;
      trace->record(rec, expected_tx);
    }
    if (config.observer != nullptr &&
        config.observer->wants_slot(slot, state)) {
      config.observer->emit_slot(slot, state, representative_count, jammed,
                                 u_before, expected_tx,
                                 adversary.budget().jams(),
                                 adversary.budget().window_spend());
    }

    protocol.observe(state);
    adversary.observe({slot, representative_count, jammed, state});

    if (protocol.elected()) {
      JAMELECT_ENSURES(state == ChannelState::kSingle);
      out.elected = true;
      out.all_done = true;
      out.unique_leader = true;
      out.leader = rng.below(config.n);  // exchangeable stations
      break;
    }
  }
  JAMELECT_OBS_COUNT("engine.aggregate.runs", 1);
  JAMELECT_OBS_COUNT("engine.aggregate.slots", out.slots);
  return out;
}

}  // namespace jamelect
