// Per-trial simulation outcomes.
#pragma once

#include <cstdint>
#include <optional>

#include "channel/types.hpp"

namespace jamelect {

/// Result of simulating one election attempt.
struct TrialOutcome {
  /// Did the election complete within the slot budget?
  bool elected = false;
  /// Slots consumed: up to and including the deciding slot on success,
  /// the full budget on failure (right-censored).
  std::int64_t slots = 0;
  /// Slots the adversary jammed.
  std::int64_t jams = 0;
  std::int64_t nulls = 0;
  std::int64_t singles = 0;
  std::int64_t collisions = 0;
  /// Expected total transmissions: sum over slots of (sum of per-
  /// station transmit probabilities). Divide by n for mean per-station
  /// energy. Engines that draw per-station coins report the realized
  /// count instead (same estimator, lower variance for the aggregate
  /// engine).
  double transmissions = 0.0;
  /// Per-station engines only: did every station terminate, and was
  /// there exactly one leader? Aggregate engines set these on success
  /// by construction.
  bool all_done = false;
  bool unique_leader = false;
  /// The elected station, when station identities exist.
  std::optional<StationId> leader;
};

}  // namespace jamelect
