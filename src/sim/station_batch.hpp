// Batched station engine: devirtualized SlotEngine trials for
// kernelizable station protocols (currently ARSS).
//
// The per-station SlotEngine draws one bernoulli per station per slot
// from a SINGLE trial rng, in station order — a serial dependency chain
// that rules out the SoA lane treatment the uniform protocols get. What
// CAN go: the virtual dispatch (transmit_probability / feedback through
// StationProtocol vtables), the per-station unique_ptr indirection, and
// the annotation branches. This engine replays SlotEngine::run over a
// flat vector of POD ArssKernels (baselines/arss_kernel.hpp),
// expression for expression, so each TrialOutcome is bit-identical to
// the SlotEngine's for the same (seed, trial index) — the contract
// run_station_mc relies on to route batched sweeps here
// (tests/baseline_kernel_test.cpp locks it).
//
// Randomness derivation matches run_station_mc's sequential runner:
// trial k uses base.child(first + k), its adversary derives from
// .child(0xad50), its coins from .child(0x51e0).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "baselines/arss.hpp"
#include "protocols/station.hpp"
#include "sim/adversary_spec.hpp"
#include "sim/engine.hpp"
#include "sim/outcome.hpp"
#include "support/rng.hpp"

namespace jamelect {

/// Parameter pack identifying the station kernels of one trial:
/// station i runs an ArssKernel built from stations[i].
struct StationBatchSpec {
  std::vector<ArssParams> stations;
};

/// Probes a station factory for a kernel twin: every station it builds
/// must be a pristine ArssStation (state_equals against a fresh twin of
/// its own params) and the factory must be deterministic (probed
/// twice). Returns nullopt — "use the sequential SlotEngine path" —
/// otherwise. The engine config is the caller's to vet (an attached
/// observer needs the virtual path's hooks).
[[nodiscard]] std::optional<StationBatchSpec> station_batch_spec(
    const std::function<StationProtocolPtr(StationId)>& station_factory,
    std::uint64_t n);

/// Runs trials [first, first + count) of the run_station_mc sweep whose
/// per-trial rng base is `base` (= Rng(McConfig::seed)), writing
/// outcome i to out[i]. Bit-identical to SlotEngine::run per trial;
/// honors EngineConfig::cd and ::stop (observer must be null — probe
/// upstream).
void run_batch_station_trials(const StationBatchSpec& spec,
                              const AdversarySpec& adversary,
                              const EngineConfig& engine, const Rng& base,
                              std::size_t first, std::size_t count,
                              TrialOutcome* out);

}  // namespace jamelect
