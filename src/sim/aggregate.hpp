// AggregateUniformSim — exact O(1)-per-slot simulation of a uniform
// protocol in strong-CD.
//
// For a uniform protocol the channel outcome distribution in a slot is
// fully determined by (n, p): P[Null] = (1-p)^n, P[Single] =
// n*p*(1-p)^(n-1), P[Collision] = the rest. Sampling the *category*
// directly is therefore an exact simulation of the network — no
// per-station coins needed — which is what lets benches sweep
// n up to 2^22. (The engine-equivalence test cross-checks this against
// the per-station engine.)
//
// Strong-CD semantics: the first un-jammed Single terminates the
// protocol and elects the transmitter (selected uniformly among
// stations, by exchangeability).
#pragma once

#include <cstdint>

#include "adversary/adversary.hpp"
#include "channel/trace.hpp"
#include "obs/observer.hpp"
#include "protocols/uniform.hpp"
#include "sim/outcome.hpp"
#include "support/rng.hpp"

namespace jamelect {

struct AggregateConfig {
  std::uint64_t n = 1;
  std::int64_t max_slots = 1'000'000;
  /// Optional telemetry observer (non-owning; must outlive the run).
  obs::RunObserver* observer = nullptr;
};

/// Runs `protocol` among `config.n` stations against `adversary` until
/// election or the slot budget. `trace`, if non-null, receives one
/// record per slot (with the protocol's estimate annotated).
[[nodiscard]] TrialOutcome run_aggregate(UniformProtocol& protocol,
                                         BoundedAdversary& adversary,
                                         const AggregateConfig& config, Rng& rng,
                                         Trace* trace = nullptr);

}  // namespace jamelect
