#include "sim/hybrid.hpp"

#include <cmath>
#include <limits>

#include "channel/channel.hpp"
#include "obs/metrics.hpp"
#include "protocols/interval_partition.hpp"
#include "support/expects.hpp"
#include "support/math.hpp"

namespace jamelect {

namespace {

/// Samples a representative transmitter count (0, 1, or "2" meaning at
/// least two) for m stations transmitting independently w.p. p.
std::uint64_t sample_category(std::uint64_t m, double p, Rng& rng) {
  const SlotProbabilities probs = slot_probabilities(m, p);
  const double r = rng.uniform();
  if (r < probs.null) return 0;
  if (r < probs.null + probs.single) return 1;
  return 2;
}

enum class Phase : std::uint8_t {
  kP1,    ///< everyone runs A in C1
  kP2,    ///< group of n-1 runs A in C2; l runs A alone in C1
  kP3,    ///< R transmits in C1; s runs A alone in C2; l announces in C3
  kP4,    ///< everyone but l done; l waits for a Null in C1
  kDone,
};

}  // namespace

TrialOutcome run_hybrid_notification(const UniformProtocolFactory& factory,
                                     BoundedAdversary& adversary,
                                     const HybridConfig& config, Rng& rng,
                                     Trace* trace) {
  JAMELECT_EXPECTS(factory != nullptr);
  JAMELECT_EXPECTS(config.n >= 3);
  JAMELECT_EXPECTS(config.max_slots >= 1);

  const std::uint64_t n = config.n;
  Phase phase = Phase::kP1;
  UniformProtocolPtr shared_a;  // the aggregate population's instance
  UniformProtocolPtr l_a;       // l's private continuation in C1
  UniformProtocolPtr s_a;       // s's private continuation in C2

  TrialOutcome out;
  for (Slot slot = 0; slot < config.max_slots; ++slot) {
    const IntervalPosition pos = classify_slot(slot);
    const bool jammed = adversary.step();

    std::uint64_t count = 0;        // representative transmitter count
    double expected_tx = 0.0;
    double u_before = std::numeric_limits<double>::quiet_NaN();

    if (pos.set != IntervalSet::kPadding) {
      switch (phase) {
        case Phase::kP1:
          if (pos.set == IntervalSet::kC1) {
            if (pos.interval_start() || shared_a == nullptr) shared_a = factory();
            u_before = shared_a->estimate();
            const double p = shared_a->transmit_probability();
            expected_tx = static_cast<double>(n) * p;
            count = sample_category(n, p, rng);
          }
          break;
        case Phase::kP2:
          if (pos.set == IntervalSet::kC1) {
            if (pos.interval_start() || l_a == nullptr) l_a = factory();
            const double p = l_a->transmit_probability();
            expected_tx = p;
            count = rng.bernoulli(p) ? 1 : 0;
          } else if (pos.set == IntervalSet::kC2) {
            if (pos.interval_start() || shared_a == nullptr) shared_a = factory();
            u_before = shared_a->estimate();
            const double p = shared_a->transmit_probability();
            expected_tx = static_cast<double>(n - 1) * p;
            count = sample_category(n - 1, p, rng);
          }
          break;
        case Phase::kP3:
          if (pos.set == IntervalSet::kC1) {
            count = n - 2;  // all of R confirms; n >= 3 so count >= 1
            expected_tx = static_cast<double>(n - 2);
          } else if (pos.set == IntervalSet::kC2) {
            if (pos.interval_start() || s_a == nullptr) s_a = factory();
            const double p = s_a->transmit_probability();
            expected_tx = p;
            count = rng.bernoulli(p) ? 1 : 0;
          } else {  // C3: l announces
            count = 1;
            expected_tx = 1.0;
          }
          break;
        case Phase::kP4:
          if (pos.set == IntervalSet::kC3) {
            count = 1;  // l keeps announcing until released
            expected_tx = 1.0;
          }
          break;
        case Phase::kDone:
          break;
      }
    }

    const ChannelState state = resolve_slot(count, jammed);

    ++out.slots;
    out.transmissions += expected_tx;
    if (jammed) ++out.jams;
    switch (state) {
      case ChannelState::kNull: ++out.nulls; break;
      case ChannelState::kSingle: ++out.singles; break;
      case ChannelState::kCollision: ++out.collisions; break;
    }
    if (trace != nullptr) {
      SlotRecord rec;
      rec.slot = slot;
      rec.transmitters = static_cast<std::uint32_t>(count);
      rec.jammed = jammed;
      rec.state = state;
      rec.estimate = u_before;
      trace->record(rec, expected_tx);
    }
    if (config.observer != nullptr &&
        config.observer->wants_slot(slot, state)) {
      config.observer->emit_slot(slot, state, count, jammed, u_before,
                                 expected_tx, adversary.budget().jams(),
                                 adversary.budget().window_spend());
    }
    adversary.observe({slot, count, jammed, state});

    // --- state transitions (feedback) ---
    if (pos.set == IntervalSet::kPadding) continue;
    switch (phase) {
      case Phase::kP1:
        if (pos.set == IntervalSet::kC1) {
          if (state == ChannelState::kSingle) {
            // Listeners split to the second loop; the transmitter l
            // carries the shared state forward, having perceived a
            // Collision (weak-CD).
            l_a = shared_a->clone();
            l_a->observe(ChannelState::kCollision);
            shared_a.reset();
            phase = Phase::kP2;
          } else {
            shared_a->observe(state);
          }
        }
        break;
      case Phase::kP2:
        if (pos.set == IntervalSet::kC1) {
          if (l_a != nullptr) {
            l_a->observe(count >= 1 ? ChannelState::kCollision : state);
          }
        } else if (pos.set == IntervalSet::kC2) {
          if (state == ChannelState::kSingle) {
            // s splits off; everyone else (R) moves to confirm-in-C1;
            // l, listening in C2, learns it is the leader.
            s_a = shared_a->clone();
            s_a->observe(ChannelState::kCollision);
            shared_a.reset();
            l_a.reset();
            phase = Phase::kP3;
          } else if (shared_a != nullptr) {
            shared_a->observe(state);
          }
        }
        break;
      case Phase::kP3:
        if (pos.set == IntervalSet::kC2) {
          if (s_a != nullptr) {
            s_a->observe(count >= 1 ? ChannelState::kCollision : state);
          }
        } else if (pos.set == IntervalSet::kC3) {
          if (state == ChannelState::kSingle) {
            // R and s hear l's announcement and terminate.
            s_a.reset();
            phase = Phase::kP4;
          }
        }
        break;
      case Phase::kP4:
        if (pos.set == IntervalSet::kC1 && state == ChannelState::kNull) {
          phase = Phase::kDone;  // l terminates; election complete
        }
        break;
      case Phase::kDone:
        break;
    }

    if (phase == Phase::kDone) {
      out.elected = true;
      out.all_done = true;
      out.unique_leader = true;
      out.leader = rng.below(n);  // exchangeable; identity is symbolic
      break;
    }
  }
  JAMELECT_OBS_COUNT("engine.hybrid.runs", 1);
  JAMELECT_OBS_COUNT("engine.hybrid.slots", out.slots);
  return out;
}

}  // namespace jamelect
