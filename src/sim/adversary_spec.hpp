// Declarative adversary construction for benches, examples and tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"
#include "support/rng.hpp"

namespace jamelect {

/// A (T, 1-eps)-bounded adversary with a named strategy.
struct AdversarySpec {
  /// Strategy: none | saturating | periodic | bernoulli | pulse |
  /// single_denial | collision_forcer | interval_buster.
  std::string policy = "none";
  /// Budget window T (>= 1).
  std::int64_t T = 64;
  /// Budget eps in (0, 1]; converted to an exact rational internally.
  double eps = 0.5;

  // Strategy-specific knobs (ignored by strategies that don't use them):
  double q = 0.0;             ///< bernoulli jam probability (0 -> 1-eps)
  std::int64_t period = 0;    ///< periodic period (0 -> T)
  std::int64_t burst = -1;    ///< periodic burst (-1 -> floor((1-eps)T))
  std::int64_t on = 1;        ///< pulse on-length
  std::int64_t off = 1;       ///< pulse off-length
  double protocol_eps = 0.0;  ///< tracked-LESK eps (0 -> this->eps)
  std::uint64_t n = 0;        ///< network size the mirror policies assume
  double threshold = 0.02;    ///< single_denial trigger threshold
  double collision_threshold = 0.9;  ///< collision_forcer trigger threshold
  int target_set = 0;         ///< interval_buster: 0 = all, 1..3 = C1..C3
};

/// Instantiates the adversary; `rng` seeds randomized strategies.
[[nodiscard]] std::unique_ptr<BoundedAdversary> make_adversary(
    const AdversarySpec& spec, Rng rng);

/// All strategy names make_adversary accepts (for CLI help and tests).
[[nodiscard]] const std::vector<std::string>& adversary_policy_names();

}  // namespace jamelect
