// CohortEngine — cohort-compressed per-station simulation.
//
// All n stations start as clones of one prototype, so at slot 0 the
// whole network shares one protocol state. The engine keeps stations
// grouped into *cohorts* of identical state: one representative
// protocol instance plus a member count. A slot then costs O(#cohorts)
// instead of O(n) — per cohort one transmit_probability() call, one
// Binomial(|cohort|, p) draw for the transmitter count (O(1) expected,
// support/binomial.hpp), and one or two feedback() calls.
//
// Cohorts split lazily, exactly when member views diverge:
//  * A mixed slot (0 < k < |cohort| transmitters) where feedback is
//    tx-sensitive for the perceived observation — under weak-CD that is
//    precisely a Single slot, where the transmitter perceives Collision
//    while listeners hear the Single (the divergence Notification is
//    built around). The representative is cloned, transmitter and
//    listener feedback are applied to the two copies, and the cohort
//    splits only if the resulting states actually differ
//    (state_equals()).
//  * Cohorts whose states re-converge are re-merged after each slot
//    (state_hash() filter, state_equals() confirm), so transient
//    divergence — e.g. Notification confirmers rejoining after the
//    announce — does not degrade the compression permanently.
//
// Exactness: the engine is *distributionally* exact, not stream-exact.
// For a fixed adversary decision sequence, the per-slot transmitter
// count in SlotEngine is a sum of independent Bernoulli(p_c) coins over
// the members of each cohort c, i.e. exactly Binomial(|c|, p_c); the
// cohort engine samples that law directly, so the joint law of
// (channel states, transmitter counts, jam bits) — and hence of
// TrialOutcome — matches SlotEngine's. It does NOT reproduce
// SlotEngine's draws for the same seed, and it does not track
// individual station identities: the reported leader id is drawn
// uniformly from [0, n), which is the correct marginal law because the
// initial stations are exchangeable. Per-station transmission counts
// (SlotEngine::transmissions_per_station) are therefore not offered;
// TrialOutcome::transmissions still reports the realized total.
//
// Requires a prototype whose clone_station() is non-null (uniform
// adapters, Notification). Identity-keyed protocols (ARSS) cannot run
// compressed — use SlotEngine.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "adversary/adversary.hpp"
#include "channel/trace.hpp"
#include "protocols/station.hpp"
#include "sim/engine.hpp"
#include "sim/outcome.hpp"
#include "support/rng.hpp"

namespace jamelect {

class CohortEngine {
 public:
  /// Models n stations that all start as copies of `prototype`. Takes
  /// ownership of the prototype and adversary; `rng` drives the jam-
  /// independent coins (binomial draws and the leader-id draw).
  /// Requires prototype->clone_station() != nullptr (ContractViolation
  /// otherwise — the protocol does not support cohort compression).
  CohortEngine(StationProtocolPtr prototype, std::uint64_t n,
               std::unique_ptr<BoundedAdversary> adversary, Rng rng,
               EngineConfig config);

  /// Runs to completion or slot budget; returns the outcome.
  [[nodiscard]] TrialOutcome run(Trace* trace = nullptr);

  /// Cohorts currently alive / high-water mark across the run. A
  /// lockstep protocol stays at 1; weak-CD splits push it to a small
  /// constant (Notification peaks at ~3: leader, confirmers, rest).
  [[nodiscard]] std::size_t num_cohorts() const noexcept {
    return cohorts_.size();
  }
  [[nodiscard]] std::size_t peak_cohorts() const noexcept {
    return peak_cohorts_;
  }

  [[nodiscard]] std::uint64_t num_stations() const noexcept { return n_; }
  [[nodiscard]] const BoundedAdversary& adversary() const noexcept {
    return *adversary_;
  }

 private:
  struct Cohort {
    StationProtocolPtr rep;  ///< shared protocol state of all members
    std::uint64_t size;      ///< number of member stations
  };

  /// One absorption performed by merge_cohorts, kept only while an
  /// observer is attached so the telemetry events can be replayed in
  /// the legacy emission order.
  struct MergeRecord {
    std::size_t target;      ///< kept-slot index the cohort merged into
    std::uint64_t absorbed;  ///< member count it carried
  };

  /// Re-merges cohorts whose representative states have re-converged.
  /// `slot` only annotates telemetry events.
  void merge_cohorts(Slot slot);

  std::vector<Cohort> cohorts_;
  std::uint64_t n_;
  std::unique_ptr<BoundedAdversary> adversary_;
  Rng rng_;
  EngineConfig config_;
  std::size_t peak_cohorts_ = 1;
  std::vector<std::uint64_t> tx_counts_;  ///< per-cohort k, reused per slot
  std::vector<double> p_scratch_;  ///< per-cohort p for sampled telemetry
  // merge_cohorts scratch, reused across slots (no per-slot allocation
  // once grown): state hashes compacted alongside cohorts_, the
  // open-addressed bucket table, and the observer-only event records.
  std::vector<std::uint64_t> merge_hashes_;
  std::vector<std::size_t> merge_buckets_;
  std::vector<MergeRecord> merge_records_;
};

}  // namespace jamelect
