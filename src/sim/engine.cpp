#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "channel/channel.hpp"
#include "obs/metrics.hpp"
#include "support/expects.hpp"

namespace jamelect {

SlotEngine::SlotEngine(std::vector<StationProtocolPtr> stations,
                       std::unique_ptr<BoundedAdversary> adversary, Rng rng,
                       EngineConfig config)
    : stations_(std::move(stations)),
      adversary_(std::move(adversary)),
      rng_(rng),
      config_(config),
      tx_counts_(stations_.size(), 0) {
  JAMELECT_EXPECTS(!stations_.empty());
  JAMELECT_EXPECTS(adversary_ != nullptr);
  JAMELECT_EXPECTS(config.max_slots >= 1);
  for (const auto& s : stations_) JAMELECT_EXPECTS(s != nullptr);
}

TrialOutcome SlotEngine::run(Trace* trace) {
  const std::size_t n = stations_.size();
  obs::RunObserver* const observer = config_.observer;
  const bool tracing = trace != nullptr;
  // Estimate/expected-tx annotations exist only for traces and
  // telemetry, so the plain hot loop skips both.
  const bool annotating = tracing || observer != nullptr;
  std::vector<std::uint8_t> transmitted(n, 0);
  TrialOutcome out;

  for (Slot slot = 0; slot < config_.max_slots; ++slot) {
    // Jam bit first: the adversary moves before seeing this slot's coins.
    const bool jammed = adversary_->step();

    // A station's public estimate for the trace: take it from station 0
    // before the slot resolves (all stations agree while in lockstep).
    const double u_before = annotating ? stations_[0]->estimate() : 0.0;

    std::uint64_t count = 0;
    StationId last_tx = 0;
    double expected_tx = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double p = stations_[i]->transmit_probability(slot);
      JAMELECT_EXPECTS(p >= 0.0 && p <= 1.0);
      if (annotating) expected_tx += p;
      const bool tx = rng_.bernoulli(p);
      transmitted[i] = tx ? 1 : 0;
      if (tx) {
        ++count;
        last_tx = i;
        ++tx_counts_[i];
        out.transmissions += 1.0;
      }
    }

    const ChannelState state = resolve_slot(count, jammed);

    ++out.slots;
    if (jammed) ++out.jams;
    switch (state) {
      case ChannelState::kNull: ++out.nulls; break;
      case ChannelState::kSingle: ++out.singles; break;
      case ChannelState::kCollision: ++out.collisions; break;
    }
    if (tracing) {
      SlotRecord rec;
      rec.slot = slot;
      rec.transmitters = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(count, 0xffffffffULL));
      rec.jammed = jammed;
      rec.state = state;
      rec.estimate = u_before;
      trace->record(rec, expected_tx);
    }
    if (observer != nullptr && observer->wants_slot(slot, state)) {
      observer->emit_slot(slot, state, count, jammed, u_before, expected_tx,
                          adversary_->budget().jams(),
                          adversary_->budget().window_spend());
    }

    for (std::size_t i = 0; i < n; ++i) {
      const Observation obs =
          observe_slot(state, transmitted[i] != 0, config_.cd);
      stations_[i]->feedback(slot, transmitted[i] != 0, obs);
    }
    adversary_->observe({slot, count, jammed, state});

    if (config_.stop == StopRule::kFirstSingle) {
      if (state == ChannelState::kSingle) {
        out.elected = true;
        out.leader = last_tx;
        break;
      }
    } else {
      bool all_done = true;
      for (const auto& s : stations_) {
        if (!s->done()) {
          all_done = false;
          break;
        }
      }
      if (all_done) {
        out.elected = true;
        break;
      }
    }
  }

  // Election-quality bookkeeping (independent of the stop rule).
  std::size_t done_count = 0;
  std::size_t leaders = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (stations_[i]->done()) ++done_count;
    if (stations_[i]->done() && stations_[i]->is_leader()) {
      ++leaders;
      out.leader = i;
    }
  }
  out.all_done = done_count == n;
  out.unique_leader = leaders == 1;
  if (config_.stop == StopRule::kFirstSingle) {
    // Selection resolution: success is the Single itself; leader
    // identity was captured at the deciding slot.
    out.unique_leader = out.elected;
  } else {
    out.elected = out.elected && out.unique_leader;
  }
  JAMELECT_OBS_COUNT("engine.station.runs", 1);
  JAMELECT_OBS_COUNT("engine.station.slots", out.slots);
  return out;
}

}  // namespace jamelect
