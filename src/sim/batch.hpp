// Batched Monte-Carlo engine: B trials in structure-of-arrays lockstep.
//
// The sequential MC path (sim/montecarlo.cpp run_trials) simulates one
// trial at a time, paying per slot a virtual estimate()/
// transmit_probability()/observe() dispatch plus a fresh log1p + 2*exp
// chain in slot_probabilities. This engine removes both costs for the
// kernelizable protocols (protocols/kernels.hpp): a chunk of B trials
// advances in lockstep over parallel state arrays — one POD kernel, one
// inline Xoshiro256** Rng and one adversary per lane — and all lanes in
// a chunk share one SlotProbCache (support/slot_prob_cache.hpp), so a
// slot costs a hash lookup, one uniform() draw and an inlined kernel
// step. Finished lanes are swap-removed, keeping the inner loop dense.
//
// Bit-identity contract: lane k of a chunk starting at trial `first`
// derives its randomness exactly as the sequential path does — trial
// rng base.child(first + k), adversary from .child(0xad50), simulation
// draws from .child(0x51e0) — and the kernels and the cache reproduce
// the virtual classes' floating-point behavior expression-for-
// expression. Each TrialOutcome this engine writes is therefore
// bit-identical to the one run_aggregate_mc / run_hybrid_mc computes
// for the same (seed, trial index); tests/batch_equivalence_test.cpp
// enforces this for both CD modes. Consequently any batch trial can be
// replayed with full telemetry via replay_aggregate_trial.
//
// Lane stepping comes in two flavors (BatchLaneMode): the scalar path
// walks lanes one at a time through Rng::uniform() and a branchy
// classification, while the SIMD-wide path (support/wide_rng.hpp +
// sim/batch_wide.hpp) advances kWideLanes xoshiro streams per
// instruction and classifies branch-free against cached per-lane
// thresholds. Lane-invariant adversary policies share one jam bit per
// slot; the adaptive built-ins (bernoulli, single_denial,
// collision_forcer) run wide too, through per-lane SoA adversary state
// (sim/lane_adversary.hpp). Either way the contract above holds bit
// for bit — tests/wide_batch_test.cpp and
// tests/batch_adaptive_equivalence_test.cpp lock wide == scalar ==
// sequential on both backends (AVX2 and the portable 4-wide fallback).
//
// Entry point for users: set McConfig::batch — run_aggregate_mc and
// run_hybrid_mc probe their factory with batch_kernel_spec() and fall
// back to the sequential path for protocols with no kernel twin.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <variant>

#include "baselines/nakano_olariu.hpp"
#include "baselines/nocd_election.hpp"
#include "baselines/willard.hpp"
#include "protocols/lesk.hpp"
#include "protocols/lesu.hpp"
#include "protocols/plain_uniform.hpp"
#include "protocols/uniform.hpp"
#include "sim/adversary_spec.hpp"
#include "sim/outcome.hpp"
#include "support/rng.hpp"

namespace jamelect {

/// Parameter pack identifying which POD kernel impersonates a protocol
/// (paper kernels in protocols/kernels.hpp, evaluation baselines in
/// baselines/baseline_kernels.hpp).
using BatchKernelSpec =
    std::variant<PlainUniformParams, LeskParams, LesuParams, WillardParams,
                 NakanoOlariuParams, NoCdElectionParams>;

/// Probes a freshly constructed protocol instance for a kernel twin.
/// Returns nullopt — i.e. "use the virtual fallback" — for protocol
/// types without a kernel, and for recognized types whose instance is
/// not in its initial state (e.g. a warm-started LESK whose u has
/// already moved: kernels always start fresh from the params).
[[nodiscard]] std::optional<BatchKernelSpec> batch_kernel_spec(
    const UniformProtocol& prototype);

/// Which random-stream backend drives the simulation draws of a
/// batched chunk.
enum class RngBackend : std::uint8_t {
  /// xoshiro256** streams derived by Rng::child chains — the default,
  /// and the bit-identity reference shared with the sequential engines
  /// (trial k simulates from Rng(seed).child(k).child(0x51e0)).
  kXoshiro = 0,
  /// AES-128-CTR counter streams (support/ctr_rng.hpp): trial k's
  /// draw j is AES(key(seed), k || j) — any stream position is
  /// addressable in O(1), so chunking, thread count, and lane width
  /// cannot perturb a single draw by construction. Draw VALUES differ
  /// from kXoshiro (they are different random streams): the two
  /// backends are distinct, internally consistent result universes,
  /// which is why the sweep service keys its result cache on the
  /// backend. Applies to the kernelized batch path; adversary streams
  /// stay on xoshiro (they are chunk-shared, not per-trial).
  kAesCtr = 1,
};

/// Telemetry/manifest name of a backend: "xoshiro" / "aes_ctr".
[[nodiscard]] const char* rng_backend_name(RngBackend backend) noexcept;

/// Which lane-stepping path a batched chunk uses.
enum class BatchLaneMode : std::uint8_t {
  /// SIMD-wide whenever the adversary policy has a wide engine: the
  /// lane-invariant policies (none/saturating/periodic/pulse/
  /// interval_buster) share one jam bit per slot, and the adaptive
  /// built-ins (bernoulli/single_denial/collision_forcer) run on
  /// per-lane SoA adversary state (sim/lane_adversary.hpp) — i.e.
  /// every built-in policy goes wide. The default — results are
  /// identical either way.
  kAuto = 0,
  /// Force the SIMD-wide path (support/wide_rng.hpp — W lanes per
  /// instruction; AVX2 or the portable 4-wide fallback, selected by
  /// active_wide_isa()). Requires a policy with a wide engine (lane-
  /// invariant or bank-supported); anything else violates a contract
  /// check.
  kWide,
  /// Force the scalar per-lane path (one Rng step and one branchy
  /// classification per lane per slot). Works with every policy;
  /// useful as a baseline and for wide-vs-scalar identity tests.
  kScalarLanes,
};

struct BatchConfig {
  std::uint64_t n = 1;
  std::int64_t max_slots = 1'000'000;
  BatchLaneMode lanes = BatchLaneMode::kAuto;
  RngBackend rng = RngBackend::kXoshiro;
};

/// Runs trials [first, first + count) of the run_aggregate_mc sweep
/// whose per-trial rng base is `base` (= Rng(McConfig::seed)), writing
/// outcome i to out[i]. Strong-CD aggregate semantics, bit-identical
/// to run_aggregate per trial.
void run_batch_aggregate_trials(const BatchKernelSpec& spec,
                                const AdversarySpec& adversary,
                                const BatchConfig& config, const Rng& base,
                                std::size_t first, std::size_t count,
                                TrialOutcome* out);

/// Same, for the weak-CD hybrid Notification engine (run_hybrid_mc /
/// run_hybrid_notification). Requires config.n >= 3.
void run_batch_hybrid_trials(const BatchKernelSpec& spec,
                             const AdversarySpec& adversary,
                             const BatchConfig& config, const Rng& base,
                             std::size_t first, std::size_t count,
                             TrialOutcome* out);

}  // namespace jamelect
