// HybridWeakCdSim — O(1)-per-slot simulation of Notification(A) for a
// uniform inner algorithm A, in weak-CD, at arbitrary n.
//
// Key fact (paper §3): until the first Single, every station perceives
// the same state even in weak-CD — a transmitter's pessimistic
// "Collision" differs from the listeners' view only in a Single slot,
// which is exactly when the population splits. The network therefore
// stays exchangeable and can be simulated as an aggregate group plus at
// most two distinguished stations:
//   l — the transmitter of the first C1 Single (continues A alone in
//       C1, later announces in C3),
//   s — the transmitter of the first C2 Single (continues A alone in
//       C2 until released by l's C3 Single).
// Phases below mirror NotificationStation's machine one-to-one; the
// engine-equivalence tests check the two implementations agree in
// distribution.
#pragma once

#include <cstdint>

#include "adversary/adversary.hpp"
#include "channel/trace.hpp"
#include "obs/observer.hpp"
#include "protocols/uniform.hpp"
#include "sim/outcome.hpp"
#include "support/rng.hpp"

namespace jamelect {

struct HybridConfig {
  std::uint64_t n = 3;  ///< n >= 3 (Lemma 3.1's regime)
  std::int64_t max_slots = 1'000'000;
  /// Optional telemetry observer (non-owning; must outlive the run).
  obs::RunObserver* observer = nullptr;
};

/// Runs Notification(A) with fresh inner instances from `factory`.
[[nodiscard]] TrialOutcome run_hybrid_notification(
    const UniformProtocolFactory& factory, BoundedAdversary& adversary,
    const HybridConfig& config, Rng& rng, Trace* trace = nullptr);

}  // namespace jamelect
