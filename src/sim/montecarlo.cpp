#include "sim/montecarlo.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace_events.hpp"
#include "sim/aggregate.hpp"
#include "sim/batch.hpp"
#include "sim/cohort.hpp"
#include "sim/cohort_batch.hpp"
#include "sim/mc_accumulate.hpp"
#include "sim/station_batch.hpp"
#include "support/expects.hpp"
#include "support/shutdown.hpp"
#include "support/thread_pool.hpp"

namespace jamelect {

namespace {

/// Background progress reporter for long Monte-Carlo runs. Counters are
/// fed from trial threads with relaxed atomics; the reporter thread
/// wakes every interval and prints a one-line status to stderr. On
/// stop() it prints one deterministic completion line (the in-flight
/// lines depend on wall-clock timing, the final one does not), so tests
/// can assert on output without racing the clock.
class Heartbeat {
 public:
  Heartbeat(bool enabled, std::size_t total_trials, std::int64_t interval_ms)
      : enabled_(enabled), total_(total_trials) {
    if (!enabled_) return;
    start_ = std::chrono::steady_clock::now();
    thread_ = std::thread([this, interval_ms] { loop(interval_ms); });
  }

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  ~Heartbeat() { stop(); }

  void on_trial(std::int64_t slots) noexcept {
    if (!enabled_) return;
    slots_.fetch_add(slots, std::memory_order_relaxed);
    trials_.fetch_add(1, std::memory_order_relaxed);
  }

  void stop() {
    if (!enabled_ || stopped_) return;
    stopped_ = true;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
    std::fprintf(stderr, "[mc] %llu/%llu trials complete\n",
                 static_cast<unsigned long long>(
                     trials_.load(std::memory_order_relaxed)),
                 static_cast<unsigned long long>(total_));
    std::fflush(stderr);
  }

 private:
  void loop(std::int64_t interval_ms) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms));
      if (done_) return;
      const auto trials = trials_.load(std::memory_order_relaxed);
      const auto slots = slots_.load(std::memory_order_relaxed);
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count();
      const double rate =
          elapsed > 0.0 ? static_cast<double>(slots) / elapsed : 0.0;
      const double eta =
          trials > 0 ? elapsed / static_cast<double>(trials) *
                           static_cast<double>(total_ - trials)
                     : -1.0;
      if (eta >= 0.0) {
        std::fprintf(stderr, "[mc] %llu/%llu trials, %.3g slots/s, eta %.1fs\n",
                     static_cast<unsigned long long>(trials),
                     static_cast<unsigned long long>(total_), rate, eta);
      } else {
        std::fprintf(stderr, "[mc] %llu/%llu trials\n",
                     static_cast<unsigned long long>(trials),
                     static_cast<unsigned long long>(total_));
      }
    }
  }

  const bool enabled_;
  const std::size_t total_;
  std::atomic<std::uint64_t> trials_{0};
  std::atomic<std::int64_t> slots_{0};
  std::chrono::steady_clock::time_point start_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

// The TrialAccumulator machinery (streaming accumulation, order-
// independent merge) lives in sim/mc_accumulate.hpp, shared with the
// batched driver below.

/// The pool a run fans out on: an explicit McConfig::pool wins, else
/// the process-wide default. Pure routing — per-trial results are
/// independent of the pool and its size.
[[nodiscard]] ThreadPool& pool_for(const McConfig& config) {
  return config.pool != nullptr ? *config.pool : global_pool();
}

/// Summaries from fully materialized outcomes (keep_outcomes == true);
/// the outcome vector is moved into the result.
McResult result_from_outcomes(std::vector<TrialOutcome>&& outcomes,
                              std::uint64_t n_for_energy) {
  McResult res;
  res.trials = outcomes.size();
  if (outcomes.empty()) return res;  // fully-drained interrupted run
  std::vector<double> slots, slots_ok, jams, energy;
  slots.reserve(outcomes.size());
  for (const TrialOutcome& o : outcomes) {
    if (o.elected) {
      ++res.successes;
      slots_ok.push_back(static_cast<double>(o.slots));
    }
    slots.push_back(static_cast<double>(o.slots));
    jams.push_back(static_cast<double>(o.jams));
    energy.push_back(o.transmissions / static_cast<double>(n_for_energy));
  }
  res.success = wilson_interval(res.successes, res.trials);
  res.slots = summarize(std::span<const double>(slots));
  if (!slots_ok.empty()) {
    res.slots_on_success = summarize(std::span<const double>(slots_ok));
  }
  res.jams = summarize(std::span<const double>(jams));
  res.energy_per_station = summarize(std::span<const double>(energy));
  res.outcomes = std::move(outcomes);
  return res;
}

/// Summaries from a folded accumulator (keep_outcomes == false). The
/// accumulator holds one energy sample per completed trial, so its size
/// IS the completed-trial count (== trials unless a shutdown drained
/// the run early).
McResult result_from_accumulator(const detail::TrialAccumulator& total,
                                 std::size_t trials) {
  McResult res;
  res.trials = total.energy.size();
  res.interrupted = res.trials < trials;
  if (res.trials == 0) return res;
  res.successes = total.successes;
  res.success = wilson_interval(res.successes, res.trials);
  res.slots = summarize_weighted(detail::to_value_counts(total.slots));
  if (!total.slots_ok.empty()) {
    res.slots_on_success =
        summarize_weighted(detail::to_value_counts(total.slots_ok));
  }
  res.jams = summarize_weighted(detail::to_value_counts(total.jams));
  res.energy_per_station = summarize(std::span<const double>(total.energy));
  return res;
}

/// Legacy materializing path: every TrialOutcome is kept and the
/// summaries are computed from the full vectors.
McResult run_trials_materialized(const TrialRunner& runner,
                                 std::uint64_t n_for_energy,
                                 const McConfig& config) {
  std::vector<TrialOutcome> outcomes(config.trials);
  // Written once per index by its own iteration, read only after the
  // parallel_for joins — no synchronization needed beyond the join.
  std::vector<std::uint8_t> ran(config.trials, 0);
  const Rng base(config.seed);
  const auto body = [&](std::size_t k) {
    if (shutdown_requested()) return;  // drain: stop starting new trials
    outcomes[k] = runner(base.child(k));
    ran[k] = 1;
  };
  if (config.parallel) {
    pool_for(config).parallel_for(config.trials, body);
  } else {
    for (std::size_t k = 0; k < config.trials; ++k) body(k);
  }
  std::size_t kept = 0;
  for (std::size_t k = 0; k < config.trials; ++k) {
    if (ran[k] != 0) outcomes[kept++] = std::move(outcomes[k]);
  }
  const bool interrupted = kept < config.trials;
  outcomes.resize(kept);
  McResult res = result_from_outcomes(std::move(outcomes), n_for_energy);
  res.interrupted = interrupted;
  return res;
}

/// Runs trials [first, first + count) of a batched sweep, writing
/// outcome first + i to out[i].
using BatchChunkRunner = std::function<void(
    std::size_t first, std::size_t count, TrialOutcome* out)>;

/// Batched counterpart of run_trials: trials are partitioned into
/// chunks of McConfig::batch, each chunk advanced in SoA lockstep by
/// `chunk_runner` (sim/batch.hpp). Chunks are the parallel work items;
/// telemetry (heartbeat, spans, metrics) wraps each chunk without
/// touching any trial randomness. Trial k's outcome is bit-identical
/// to the sequential path's regardless of the chunk partition.
McResult run_trials_batched(const BatchChunkRunner& chunk_runner,
                            std::uint64_t n_for_energy,
                            const McConfig& config) {
  JAMELECT_EXPECTS(config.trials >= 1);
  JAMELECT_EXPECTS(config.batch >= 1);
  const std::size_t chunk = config.batch;
  const std::size_t num_chunks = (config.trials + chunk - 1) / chunk;

  // Orchestration telemetry: how wide this sweep actually fanned out
  // (pool workers + the participating caller) and how many chunks ran.
  // Observational only — chunk results derive from (seed, trial index).
  JAMELECT_OBS_GAUGE(
      "mc.parallel_width",
      config.parallel ? static_cast<double>(pool_for(config).size() + 1)
                      : 1.0);

  Heartbeat heartbeat(config.heartbeat, config.trials,
                      config.heartbeat_interval_ms);
  obs::TraceEventRecorder* const recorder = config.recorder;
  /// Runs chunk c (or skips it wholesale when a shutdown is draining
  /// the sweep); returns the number of trials completed — chunks are
  /// all-or-nothing, so partial results never truncate a trial mid-run.
  const auto run_chunk = [&](std::size_t c, TrialOutcome* out) -> std::size_t {
    if (shutdown_requested()) return 0;
    const std::size_t first = c * chunk;
    const std::size_t count = std::min(chunk, config.trials - first);
    // Chunks execute on pool worker threads: re-establish the request
    // lineage here so mc.batch / pool_task spans and profiler samples
    // from every worker carry the submitting request's trace id.
    const obs::ScopedTrace scoped(config.trace);
    std::optional<obs::TraceEventRecorder::Span> span;
    if (recorder != nullptr) span.emplace(*recorder, "mc.batch");
    chunk_runner(first, count, out);
    span.reset();
    JAMELECT_OBS_COUNT("mc.parallel_chunks", 1);
    obs::prof_count(obs::ProfCounter::kChunks, 1);
    obs::prof_count(obs::ProfCounter::kTrials,
                    static_cast<std::int64_t>(count));
    for (std::size_t i = 0; i < count; ++i) {
      heartbeat.on_trial(out[i].slots);
      JAMELECT_OBS_COUNT("mc.trials", 1);
      JAMELECT_OBS_COUNT("mc.slots", out[i].slots);
      obs::prof_count(obs::ProfCounter::kSlots, out[i].slots);
    }
    return count;
  };

  if (config.keep_outcomes) {
    std::vector<TrialOutcome> outcomes(config.trials);
    std::vector<std::uint8_t> ran(num_chunks, 0);
    const auto body = [&](std::size_t c) {
      ran[c] = run_chunk(c, outcomes.data() + c * chunk) > 0 ? 1 : 0;
    };
    if (config.parallel) {
      pool_for(config).parallel_for(num_chunks, body);
    } else {
      for (std::size_t c = 0; c < num_chunks; ++c) body(c);
    }
    heartbeat.stop();
    std::size_t kept = 0;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      if (ran[c] == 0) continue;
      const std::size_t first = c * chunk;
      const std::size_t count = std::min(chunk, config.trials - first);
      for (std::size_t i = 0; i < count; ++i) {
        outcomes[kept++] = std::move(outcomes[first + i]);
      }
    }
    const bool interrupted = kept < config.trials;
    outcomes.resize(kept);
    McResult res = result_from_outcomes(std::move(outcomes), n_for_energy);
    res.interrupted = interrupted;
    return res;
  }

  const auto body = [&](detail::TrialAccumulator& acc, std::size_t c) {
    const std::size_t first = c * chunk;
    const std::size_t count = std::min(chunk, config.trials - first);
    std::vector<TrialOutcome> buf(count);
    if (run_chunk(c, buf.data()) == 0) return;
    obs::PhaseAccumulator prof;
    prof.start();
    for (const TrialOutcome& o : buf) {
      detail::accumulate(acc, o, n_for_energy);
    }
    prof.stop(obs::Phase::kMerge);
  };
  detail::TrialAccumulator total;
  if (config.parallel) {
    total = pool_for(config).parallel_reduce(
        num_chunks, detail::TrialAccumulator{}, body, detail::merge_into);
  } else {
    for (std::size_t c = 0; c < num_chunks; ++c) body(total, c);
  }
  heartbeat.stop();
  return result_from_accumulator(total, config.trials);
}

/// Probes `factory` for the batched path: the protocol must have a POD
/// kernel twin (batch_kernel_spec) and the factory must be pure — two
/// fresh instances must be state-identical, otherwise trial outcomes
/// would depend on factory call order and the kernel path (which
/// constructs from params, not via the factory) could diverge.
std::optional<BatchKernelSpec> probe_batch_factory(
    const UniformProtocolFactory& factory) {
  const auto probe = factory();
  if (probe == nullptr) return std::nullopt;
  const auto spec = batch_kernel_spec(*probe);
  if (!spec.has_value()) return std::nullopt;
  const auto second = factory();
  if (second == nullptr || !probe->state_equals(*second)) return std::nullopt;
  return spec;
}

/// Registers the batch-path rollup counters at zero so a run manifest
/// always shows them when the batch knob is on — a sweep that never
/// falls back (or never goes wide/scalar) reports an explicit 0 rather
/// than omitting the metric. The reason-labeled fallback counters
/// partition mc.batch_fallbacks (docs/OBSERVABILITY.md):
///   .protocol — the factory's protocol has no kernel twin, was warm-
///               started, or the factory is nondeterministic;
///   .observer — a telemetry observer needs the virtual path's hooks
///               (station engine only);
///   .adversary — kept registered as a tombstone: every built-in
///               policy now has a batch engine (wide or scalar lanes),
///               so this stays 0 unless an out-of-tree build re-adds
///               a disqualifying policy;
///   .cohort   — a run_cohort_mc prototype the cohort lanes cannot
///               batch (not a pristine UniformStationAdapter over a
///               paper kernel — e.g. Notification, a baseline, or a
///               warm-started factory).
void register_batch_counters() {
  JAMELECT_OBS_COUNT("mc.batch_fallbacks", 0);
  JAMELECT_OBS_COUNT("mc.batch_fallback.protocol", 0);
  JAMELECT_OBS_COUNT("mc.batch_fallback.observer", 0);
  JAMELECT_OBS_COUNT("mc.batch_fallback.adversary", 0);
  JAMELECT_OBS_COUNT("mc.batch_fallback.cohort", 0);
  JAMELECT_OBS_COUNT("mc.batch_wide_slots", 0);
  JAMELECT_OBS_COUNT("mc.batch_scalar_slots", 0);
  JAMELECT_OBS_COUNT("mc.parallel_chunks", 0);
  JAMELECT_OBS_COUNT("mc.parallel_cache_reuse", 0);
  JAMELECT_OBS_COUNT("mc.rng_backend_fallbacks", 0);
}

/// One batched sweep dropped to the sequential path: bump the total
/// and the reason-labeled partition counter. An enum (not a counter
/// name) because JAMELECT_OBS_COUNT caches its counter id statically
/// per call site — a runtime name would collapse every reason into
/// whichever string reached the shared site first.
enum class BatchFallbackReason { kProtocol, kObserver, kAdversary, kCohort };

void count_batch_fallback(BatchFallbackReason reason) {
  JAMELECT_OBS_COUNT("mc.batch_fallbacks", 1);
  switch (reason) {
    case BatchFallbackReason::kProtocol:
      JAMELECT_OBS_COUNT("mc.batch_fallback.protocol", 1);
      break;
    case BatchFallbackReason::kObserver:
      JAMELECT_OBS_COUNT("mc.batch_fallback.observer", 1);
      break;
    case BatchFallbackReason::kAdversary:
      JAMELECT_OBS_COUNT("mc.batch_fallback.adversary", 1);
      break;
    case BatchFallbackReason::kCohort:
      JAMELECT_OBS_COUNT("mc.batch_fallback.cohort", 1);
      break;
  }
}

/// A non-kernelizable protocol dropped a batched sweep onto the
/// sequential path, which only speaks xoshiro: a requested AES-CTR
/// backend is silently a different ask than what ran, so count it.
void count_backend_fallback(const McConfig& config) {
  if (config.rng_backend == RngBackend::kAesCtr) {
    JAMELECT_OBS_COUNT("mc.rng_backend_fallbacks", 1);
  }
}

}  // namespace

McResult run_trials(const TrialRunner& runner, std::uint64_t n_for_energy,
                    const McConfig& config) {
  JAMELECT_EXPECTS(config.trials >= 1);
  JAMELECT_EXPECTS(n_for_energy >= 1);

  // Telemetry wrapper: spans, heartbeat counters, and trial metrics ride
  // around the runner without touching its randomness (the trial rng is
  // handed through untouched, so outcomes are identical with or without
  // any of them attached).
  Heartbeat heartbeat(config.heartbeat, config.trials,
                      config.heartbeat_interval_ms);
  obs::TraceEventRecorder* const recorder = config.recorder;
  const TrialRunner wrapped = [&runner, &heartbeat, recorder,
                               trace = config.trace](Rng trial_rng) {
    const obs::ScopedTrace scoped(trace);
    std::optional<obs::TraceEventRecorder::Span> span;
    if (recorder != nullptr) span.emplace(*recorder, "mc.trial");
    TrialOutcome out = runner(trial_rng);
    span.reset();
    heartbeat.on_trial(out.slots);
    JAMELECT_OBS_COUNT("mc.trials", 1);
    JAMELECT_OBS_COUNT("mc.slots", out.slots);
    return out;
  };

  if (config.keep_outcomes) {
    McResult res = run_trials_materialized(wrapped, n_for_energy, config);
    heartbeat.stop();
    return res;
  }

  // Streaming path: trials fold into per-thread accumulators and never
  // exist all at once. Reproducibility is unchanged — trial k still
  // derives from mix64(seed, k) regardless of which thread runs it.
  const Rng base(config.seed);
  const auto body = [&](detail::TrialAccumulator& acc, std::size_t k) {
    if (shutdown_requested()) return;  // drain: stop starting new trials
    detail::accumulate(acc, wrapped(base.child(k)), n_for_energy);
  };
  detail::TrialAccumulator total;
  if (config.parallel) {
    total = pool_for(config).parallel_reduce(
        config.trials, detail::TrialAccumulator{}, body, detail::merge_into);
  } else {
    for (std::size_t k = 0; k < config.trials; ++k) body(total, k);
  }
  heartbeat.stop();
  return result_from_accumulator(total, config.trials);
}

McResult run_aggregate_mc(const UniformProtocolFactory& factory,
                          const AdversarySpec& adversary, std::uint64_t n,
                          const McConfig& config) {
  AdversarySpec spec = adversary;
  spec.n = n;
  if (config.batch > 0) {
    register_batch_counters();
    if (const auto kernel = probe_batch_factory(factory)) {
      const Rng base(config.seed);
      const BatchChunkRunner chunk =
          [kernel = *kernel, spec, n, max_slots = config.max_slots,
           lanes = config.batch_lanes, rng = config.rng_backend,
           base](std::size_t first, std::size_t count, TrialOutcome* out) {
            run_batch_aggregate_trials(kernel, spec,
                                       {n, max_slots, lanes, rng}, base,
                                       first, count, out);
          };
      return run_trials_batched(chunk, n, config);
    }
    count_batch_fallback(BatchFallbackReason::kProtocol);
    count_backend_fallback(config);
  }
  const TrialRunner runner = [&factory, spec, n,
                              max_slots = config.max_slots](Rng rng) {
    auto protocol = factory();
    auto adv = make_adversary(spec, rng.child(0xad50));
    Rng sim_rng = rng.child(0x51e0);
    return run_aggregate(*protocol, *adv, {n, max_slots}, sim_rng);
  };
  return run_trials(runner, n, config);
}

McResult run_hybrid_mc(const UniformProtocolFactory& factory,
                       const AdversarySpec& adversary, std::uint64_t n,
                       const McConfig& config) {
  AdversarySpec spec = adversary;
  spec.n = n;
  if (config.batch > 0) {
    register_batch_counters();
    if (const auto kernel = probe_batch_factory(factory)) {
      const Rng base(config.seed);
      const BatchChunkRunner chunk =
          [kernel = *kernel, spec, n, max_slots = config.max_slots,
           lanes = config.batch_lanes, rng = config.rng_backend,
           base](std::size_t first, std::size_t count, TrialOutcome* out) {
            run_batch_hybrid_trials(kernel, spec, {n, max_slots, lanes, rng},
                                    base, first, count, out);
          };
      return run_trials_batched(chunk, n, config);
    }
    count_batch_fallback(BatchFallbackReason::kProtocol);
    count_backend_fallback(config);
  }
  const TrialRunner runner = [&factory, spec, n,
                              max_slots = config.max_slots](Rng rng) {
    auto adv = make_adversary(spec, rng.child(0xad50));
    Rng sim_rng = rng.child(0x51e0);
    return run_hybrid_notification(factory, *adv, {n, max_slots}, sim_rng);
  };
  return run_trials(runner, n, config);
}

McResult run_station_mc(
    const std::function<StationProtocolPtr(StationId)>& station_factory,
    const AdversarySpec& adversary, std::uint64_t n, EngineConfig engine,
    const McConfig& config) {
  JAMELECT_EXPECTS(n >= 1);
  AdversarySpec spec = adversary;
  spec.n = n;
  if (config.batch > 0) {
    register_batch_counters();
    if (engine.observer != nullptr) {
      count_batch_fallback(BatchFallbackReason::kObserver);
      count_backend_fallback(config);
    } else if (const auto kernel = station_batch_spec(station_factory, n)) {
      // The station engine's serial per-station draw chain only speaks
      // xoshiro (like the sequential path): a requested AES-CTR backend
      // is honored in neither, so count it but keep the batch win.
      count_backend_fallback(config);
      const BatchChunkRunner chunk =
          [kernel = *kernel, spec, engine,
           base = Rng(config.seed)](std::size_t first, std::size_t count,
                                    TrialOutcome* out) {
            run_batch_station_trials(kernel, spec, engine, base, first, count,
                                     out);
          };
      return run_trials_batched(chunk, n, config);
    } else {
      count_batch_fallback(BatchFallbackReason::kProtocol);
      count_backend_fallback(config);
    }
  }
  const TrialRunner runner = [&station_factory, spec, n, engine](Rng rng) {
    std::vector<StationProtocolPtr> stations;
    stations.reserve(n);
    for (StationId i = 0; i < n; ++i) stations.push_back(station_factory(i));
    auto adv = make_adversary(spec, rng.child(0xad50));
    SlotEngine eng(std::move(stations), std::move(adv), rng.child(0x51e0),
                   engine);
    return eng.run();
  };
  return run_trials(runner, n, config);
}

McResult run_cohort_mc(
    const std::function<StationProtocolPtr()>& prototype_factory,
    const AdversarySpec& adversary, std::uint64_t n, EngineConfig engine,
    const McConfig& config) {
  JAMELECT_EXPECTS(n >= 1);
  AdversarySpec spec = adversary;
  spec.n = n;
  if (config.batch > 0) {
    register_batch_counters();
    if (engine.observer != nullptr) {
      count_batch_fallback(BatchFallbackReason::kObserver);
      count_backend_fallback(config);
    } else if (const auto kernel = cohort_batch_spec(prototype_factory)) {
      const BatchChunkRunner chunk =
          [kernel = *kernel, spec, n, max_slots = engine.max_slots,
           cd = engine.cd, stop = engine.stop, lanes = config.batch_lanes,
           rng = config.rng_backend,
           base = Rng(config.seed)](std::size_t first, std::size_t count,
                                    TrialOutcome* out) {
            run_cohort_batch_trials(
                kernel, spec, {n, max_slots, cd, stop, lanes, rng}, base,
                first, count, out);
          };
      return run_trials_batched(chunk, n, config);
    } else {
      count_batch_fallback(BatchFallbackReason::kCohort);
      count_backend_fallback(config);
    }
  }
  const TrialRunner runner = [&prototype_factory, spec, n, engine](Rng rng) {
    auto adv = make_adversary(spec, rng.child(0xad50));
    CohortEngine eng(prototype_factory(), n, std::move(adv),
                     rng.child(0x51e0), engine);
    return eng.run();
  };
  return run_trials(runner, n, config);
}

TrialOutcome replay_aggregate_trial(const UniformProtocolFactory& factory,
                                    const AdversarySpec& adversary,
                                    std::uint64_t n, const McConfig& config,
                                    std::size_t trial,
                                    obs::RunObserver* observer, Trace* trace) {
  JAMELECT_EXPECTS(trial < config.trials);
  JAMELECT_EXPECTS(n >= 1);
  AdversarySpec spec = adversary;
  spec.n = n;
  // Mirror run_aggregate_mc's runner exactly: trial randomness derives
  // from base.child(trial), adversary from child(0xad50), sim from
  // child(0x51e0). The observer and probe consume none of it.
  const Rng rng = Rng(config.seed).child(trial);
  auto protocol = factory();
  auto adv = make_adversary(spec, rng.child(0xad50));
  Rng sim_rng = rng.child(0x51e0);
  AggregateConfig agg;
  agg.n = n;
  agg.max_slots = config.max_slots;
  agg.observer = observer;
  if (observer != nullptr) {
    observer->begin_trial(trial);
    protocol->set_probe(observer);
  }
  const TrialOutcome out = run_aggregate(*protocol, *adv, agg, sim_rng, trace);
  if (observer != nullptr) {
    observer->end_trial(out.elected, out.slots, out.jams, out.transmissions);
  }
  return out;
}

TrialOutcome replay_cohort_trial(
    const std::function<StationProtocolPtr()>& prototype_factory,
    const AdversarySpec& adversary, std::uint64_t n, EngineConfig engine,
    const McConfig& config, std::size_t trial, obs::RunObserver* observer,
    Trace* trace) {
  JAMELECT_EXPECTS(trial < config.trials);
  JAMELECT_EXPECTS(n >= 1);
  AdversarySpec spec = adversary;
  spec.n = n;
  const Rng rng = Rng(config.seed).child(trial);
  auto prototype = prototype_factory();
  auto adv = make_adversary(spec, rng.child(0xad50));
  if (observer != nullptr) {
    observer->begin_trial(trial);
    prototype->set_probe(observer);
    engine.observer = observer;
  }
  CohortEngine eng(std::move(prototype), n, std::move(adv), rng.child(0x51e0),
                   engine);
  const TrialOutcome out = eng.run(trace);
  if (observer != nullptr) {
    observer->end_trial(out.elected, out.slots, out.jams, out.transmissions);
  }
  return out;
}

}  // namespace jamelect
