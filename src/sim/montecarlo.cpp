#include "sim/montecarlo.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_events.hpp"
#include "sim/aggregate.hpp"
#include "sim/cohort.hpp"
#include "support/expects.hpp"
#include "support/thread_pool.hpp"

namespace jamelect {

namespace {

/// Background progress reporter for long Monte-Carlo runs. Counters are
/// fed from trial threads with relaxed atomics; the reporter thread
/// wakes every interval and prints a one-line status to stderr. On
/// stop() it prints one deterministic completion line (the in-flight
/// lines depend on wall-clock timing, the final one does not), so tests
/// can assert on output without racing the clock.
class Heartbeat {
 public:
  Heartbeat(bool enabled, std::size_t total_trials, std::int64_t interval_ms)
      : enabled_(enabled), total_(total_trials) {
    if (!enabled_) return;
    start_ = std::chrono::steady_clock::now();
    thread_ = std::thread([this, interval_ms] { loop(interval_ms); });
  }

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  ~Heartbeat() { stop(); }

  void on_trial(std::int64_t slots) noexcept {
    if (!enabled_) return;
    slots_.fetch_add(slots, std::memory_order_relaxed);
    trials_.fetch_add(1, std::memory_order_relaxed);
  }

  void stop() {
    if (!enabled_ || stopped_) return;
    stopped_ = true;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
    std::fprintf(stderr, "[mc] %llu/%llu trials complete\n",
                 static_cast<unsigned long long>(
                     trials_.load(std::memory_order_relaxed)),
                 static_cast<unsigned long long>(total_));
    std::fflush(stderr);
  }

 private:
  void loop(std::int64_t interval_ms) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms));
      if (done_) return;
      const auto trials = trials_.load(std::memory_order_relaxed);
      const auto slots = slots_.load(std::memory_order_relaxed);
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count();
      const double rate =
          elapsed > 0.0 ? static_cast<double>(slots) / elapsed : 0.0;
      const double eta =
          trials > 0 ? elapsed / static_cast<double>(trials) *
                           static_cast<double>(total_ - trials)
                     : -1.0;
      if (eta >= 0.0) {
        std::fprintf(stderr, "[mc] %llu/%llu trials, %.3g slots/s, eta %.1fs\n",
                     static_cast<unsigned long long>(trials),
                     static_cast<unsigned long long>(total_), rate, eta);
      } else {
        std::fprintf(stderr, "[mc] %llu/%llu trials\n",
                     static_cast<unsigned long long>(trials),
                     static_cast<unsigned long long>(total_));
      }
    }
  }

  const bool enabled_;
  const std::size_t total_;
  std::atomic<std::uint64_t> trials_{0};
  std::atomic<std::int64_t> slots_{0};
  std::chrono::steady_clock::time_point start_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

/// Per-thread accumulator for the streaming (keep_outcomes == false)
/// path. Slots and jams are integers, so their multisets compress into
/// value -> count maps; every field merges order-independently (counter
/// addition, map addition, multiset union — energy is sorted inside
/// summarize()), which keeps results independent of thread scheduling.
struct TrialAccumulator {
  std::size_t successes = 0;
  std::unordered_map<std::int64_t, std::uint64_t> slots;
  std::unordered_map<std::int64_t, std::uint64_t> slots_ok;
  std::unordered_map<std::int64_t, std::uint64_t> jams;
  std::vector<double> energy;
};

void accumulate(TrialAccumulator& acc, const TrialOutcome& o,
                std::uint64_t n_for_energy) {
  if (o.elected) {
    ++acc.successes;
    ++acc.slots_ok[o.slots];
  }
  ++acc.slots[o.slots];
  ++acc.jams[o.jams];
  acc.energy.push_back(o.transmissions / static_cast<double>(n_for_energy));
}

void merge_into(TrialAccumulator& into, TrialAccumulator&& from) {
  into.successes += from.successes;
  for (const auto& [v, c] : from.slots) into.slots[v] += c;
  for (const auto& [v, c] : from.slots_ok) into.slots_ok[v] += c;
  for (const auto& [v, c] : from.jams) into.jams[v] += c;
  into.energy.insert(into.energy.end(), from.energy.begin(),
                     from.energy.end());
}

[[nodiscard]] std::vector<std::pair<double, std::uint64_t>> to_value_counts(
    const std::unordered_map<std::int64_t, std::uint64_t>& counts) {
  std::vector<std::pair<double, std::uint64_t>> pairs;
  pairs.reserve(counts.size());
  for (const auto& [v, c] : counts) {
    pairs.emplace_back(static_cast<double>(v), c);
  }
  return pairs;
}

/// Legacy materializing path: every TrialOutcome is kept and the
/// summaries are computed from the full vectors.
McResult run_trials_materialized(const TrialRunner& runner,
                                 std::uint64_t n_for_energy,
                                 const McConfig& config) {
  std::vector<TrialOutcome> outcomes(config.trials);
  const Rng base(config.seed);
  const auto body = [&](std::size_t k) {
    outcomes[k] = runner(base.child(k));
  };
  if (config.parallel) {
    global_pool().parallel_for(config.trials, body);
  } else {
    for (std::size_t k = 0; k < config.trials; ++k) body(k);
  }

  McResult res;
  res.trials = config.trials;
  std::vector<double> slots, slots_ok, jams, energy;
  slots.reserve(config.trials);
  for (const TrialOutcome& o : outcomes) {
    if (o.elected) {
      ++res.successes;
      slots_ok.push_back(static_cast<double>(o.slots));
    }
    slots.push_back(static_cast<double>(o.slots));
    jams.push_back(static_cast<double>(o.jams));
    energy.push_back(o.transmissions / static_cast<double>(n_for_energy));
  }
  res.success = wilson_interval(res.successes, res.trials);
  res.slots = summarize(std::span<const double>(slots));
  if (!slots_ok.empty()) {
    res.slots_on_success = summarize(std::span<const double>(slots_ok));
  }
  res.jams = summarize(std::span<const double>(jams));
  res.energy_per_station = summarize(std::span<const double>(energy));
  res.outcomes = std::move(outcomes);
  return res;
}

}  // namespace

McResult run_trials(const TrialRunner& runner, std::uint64_t n_for_energy,
                    const McConfig& config) {
  JAMELECT_EXPECTS(config.trials >= 1);
  JAMELECT_EXPECTS(n_for_energy >= 1);

  // Telemetry wrapper: spans, heartbeat counters, and trial metrics ride
  // around the runner without touching its randomness (the trial rng is
  // handed through untouched, so outcomes are identical with or without
  // any of them attached).
  Heartbeat heartbeat(config.heartbeat, config.trials,
                      config.heartbeat_interval_ms);
  obs::TraceEventRecorder* const recorder = config.recorder;
  const TrialRunner wrapped = [&runner, &heartbeat, recorder](Rng trial_rng) {
    std::optional<obs::TraceEventRecorder::Span> span;
    if (recorder != nullptr) span.emplace(*recorder, "mc.trial");
    TrialOutcome out = runner(trial_rng);
    span.reset();
    heartbeat.on_trial(out.slots);
    JAMELECT_OBS_COUNT("mc.trials", 1);
    JAMELECT_OBS_COUNT("mc.slots", out.slots);
    return out;
  };

  if (config.keep_outcomes) {
    McResult res = run_trials_materialized(wrapped, n_for_energy, config);
    heartbeat.stop();
    return res;
  }

  // Streaming path: trials fold into per-thread accumulators and never
  // exist all at once. Reproducibility is unchanged — trial k still
  // derives from mix64(seed, k) regardless of which thread runs it.
  const Rng base(config.seed);
  const auto body = [&](TrialAccumulator& acc, std::size_t k) {
    accumulate(acc, wrapped(base.child(k)), n_for_energy);
  };
  TrialAccumulator total;
  if (config.parallel) {
    total = global_pool().parallel_reduce(config.trials, TrialAccumulator{},
                                          body, merge_into);
  } else {
    for (std::size_t k = 0; k < config.trials; ++k) body(total, k);
  }
  heartbeat.stop();

  McResult res;
  res.trials = config.trials;
  res.successes = total.successes;
  res.success = wilson_interval(res.successes, res.trials);
  res.slots = summarize_weighted(to_value_counts(total.slots));
  if (!total.slots_ok.empty()) {
    res.slots_on_success = summarize_weighted(to_value_counts(total.slots_ok));
  }
  res.jams = summarize_weighted(to_value_counts(total.jams));
  res.energy_per_station =
      summarize(std::span<const double>(total.energy));
  return res;
}

McResult run_aggregate_mc(const UniformProtocolFactory& factory,
                          const AdversarySpec& adversary, std::uint64_t n,
                          const McConfig& config) {
  AdversarySpec spec = adversary;
  spec.n = n;
  const TrialRunner runner = [&factory, spec, n,
                              max_slots = config.max_slots](Rng rng) {
    auto protocol = factory();
    auto adv = make_adversary(spec, rng.child(0xad50));
    Rng sim_rng = rng.child(0x51e0);
    return run_aggregate(*protocol, *adv, {n, max_slots}, sim_rng);
  };
  return run_trials(runner, n, config);
}

McResult run_hybrid_mc(const UniformProtocolFactory& factory,
                       const AdversarySpec& adversary, std::uint64_t n,
                       const McConfig& config) {
  AdversarySpec spec = adversary;
  spec.n = n;
  const TrialRunner runner = [&factory, spec, n,
                              max_slots = config.max_slots](Rng rng) {
    auto adv = make_adversary(spec, rng.child(0xad50));
    Rng sim_rng = rng.child(0x51e0);
    return run_hybrid_notification(factory, *adv, {n, max_slots}, sim_rng);
  };
  return run_trials(runner, n, config);
}

McResult run_station_mc(
    const std::function<StationProtocolPtr(StationId)>& station_factory,
    const AdversarySpec& adversary, std::uint64_t n, EngineConfig engine,
    const McConfig& config) {
  JAMELECT_EXPECTS(n >= 1);
  AdversarySpec spec = adversary;
  spec.n = n;
  const TrialRunner runner = [&station_factory, spec, n, engine](Rng rng) {
    std::vector<StationProtocolPtr> stations;
    stations.reserve(n);
    for (StationId i = 0; i < n; ++i) stations.push_back(station_factory(i));
    auto adv = make_adversary(spec, rng.child(0xad50));
    SlotEngine eng(std::move(stations), std::move(adv), rng.child(0x51e0),
                   engine);
    return eng.run();
  };
  return run_trials(runner, n, config);
}

McResult run_cohort_mc(
    const std::function<StationProtocolPtr()>& prototype_factory,
    const AdversarySpec& adversary, std::uint64_t n, EngineConfig engine,
    const McConfig& config) {
  JAMELECT_EXPECTS(n >= 1);
  AdversarySpec spec = adversary;
  spec.n = n;
  const TrialRunner runner = [&prototype_factory, spec, n, engine](Rng rng) {
    auto adv = make_adversary(spec, rng.child(0xad50));
    CohortEngine eng(prototype_factory(), n, std::move(adv),
                     rng.child(0x51e0), engine);
    return eng.run();
  };
  return run_trials(runner, n, config);
}

TrialOutcome replay_aggregate_trial(const UniformProtocolFactory& factory,
                                    const AdversarySpec& adversary,
                                    std::uint64_t n, const McConfig& config,
                                    std::size_t trial,
                                    obs::RunObserver* observer, Trace* trace) {
  JAMELECT_EXPECTS(trial < config.trials);
  JAMELECT_EXPECTS(n >= 1);
  AdversarySpec spec = adversary;
  spec.n = n;
  // Mirror run_aggregate_mc's runner exactly: trial randomness derives
  // from base.child(trial), adversary from child(0xad50), sim from
  // child(0x51e0). The observer and probe consume none of it.
  const Rng rng = Rng(config.seed).child(trial);
  auto protocol = factory();
  auto adv = make_adversary(spec, rng.child(0xad50));
  Rng sim_rng = rng.child(0x51e0);
  AggregateConfig agg;
  agg.n = n;
  agg.max_slots = config.max_slots;
  agg.observer = observer;
  if (observer != nullptr) {
    observer->begin_trial(trial);
    protocol->set_probe(observer);
  }
  const TrialOutcome out = run_aggregate(*protocol, *adv, agg, sim_rng, trace);
  if (observer != nullptr) {
    observer->end_trial(out.elected, out.slots, out.jams, out.transmissions);
  }
  return out;
}

TrialOutcome replay_cohort_trial(
    const std::function<StationProtocolPtr()>& prototype_factory,
    const AdversarySpec& adversary, std::uint64_t n, EngineConfig engine,
    const McConfig& config, std::size_t trial, obs::RunObserver* observer,
    Trace* trace) {
  JAMELECT_EXPECTS(trial < config.trials);
  JAMELECT_EXPECTS(n >= 1);
  AdversarySpec spec = adversary;
  spec.n = n;
  const Rng rng = Rng(config.seed).child(trial);
  auto prototype = prototype_factory();
  auto adv = make_adversary(spec, rng.child(0xad50));
  if (observer != nullptr) {
    observer->begin_trial(trial);
    prototype->set_probe(observer);
    engine.observer = observer;
  }
  CohortEngine eng(std::move(prototype), n, std::move(adv), rng.child(0x51e0),
                   engine);
  const TrialOutcome out = eng.run(trace);
  if (observer != nullptr) {
    observer->end_trial(out.elected, out.slots, out.jams, out.transmissions);
  }
  return out;
}

}  // namespace jamelect
