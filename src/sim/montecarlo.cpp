#include "sim/montecarlo.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "sim/aggregate.hpp"
#include "support/expects.hpp"
#include "support/thread_pool.hpp"

namespace jamelect {

McResult run_trials(const TrialRunner& runner, std::uint64_t n_for_energy,
                    const McConfig& config) {
  JAMELECT_EXPECTS(config.trials >= 1);
  JAMELECT_EXPECTS(n_for_energy >= 1);

  std::vector<TrialOutcome> outcomes(config.trials);
  const Rng base(config.seed);
  const auto body = [&](std::size_t k) {
    outcomes[k] = runner(base.child(k));
  };
  if (config.parallel) {
    global_pool().parallel_for(config.trials, body);
  } else {
    for (std::size_t k = 0; k < config.trials; ++k) body(k);
  }

  McResult res;
  res.trials = config.trials;
  std::vector<double> slots, slots_ok, jams, energy;
  slots.reserve(config.trials);
  for (const TrialOutcome& o : outcomes) {
    if (o.elected) {
      ++res.successes;
      slots_ok.push_back(static_cast<double>(o.slots));
    }
    slots.push_back(static_cast<double>(o.slots));
    jams.push_back(static_cast<double>(o.jams));
    energy.push_back(o.transmissions / static_cast<double>(n_for_energy));
  }
  res.success = wilson_interval(res.successes, res.trials);
  res.slots = summarize(std::span<const double>(slots));
  if (!slots_ok.empty()) {
    res.slots_on_success = summarize(std::span<const double>(slots_ok));
  }
  res.jams = summarize(std::span<const double>(jams));
  res.energy_per_station = summarize(std::span<const double>(energy));
  res.outcomes = std::move(outcomes);
  return res;
}

McResult run_aggregate_mc(const UniformProtocolFactory& factory,
                          const AdversarySpec& adversary, std::uint64_t n,
                          const McConfig& config) {
  AdversarySpec spec = adversary;
  spec.n = n;
  const TrialRunner runner = [&factory, spec, n,
                              max_slots = config.max_slots](Rng rng) {
    auto protocol = factory();
    auto adv = make_adversary(spec, rng.child(0xad50));
    Rng sim_rng = rng.child(0x51e0);
    return run_aggregate(*protocol, *adv, {n, max_slots}, sim_rng);
  };
  return run_trials(runner, n, config);
}

McResult run_hybrid_mc(const UniformProtocolFactory& factory,
                       const AdversarySpec& adversary, std::uint64_t n,
                       const McConfig& config) {
  AdversarySpec spec = adversary;
  spec.n = n;
  const TrialRunner runner = [&factory, spec, n,
                              max_slots = config.max_slots](Rng rng) {
    auto adv = make_adversary(spec, rng.child(0xad50));
    Rng sim_rng = rng.child(0x51e0);
    return run_hybrid_notification(factory, *adv, {n, max_slots}, sim_rng);
  };
  return run_trials(runner, n, config);
}

McResult run_station_mc(
    const std::function<StationProtocolPtr(StationId)>& station_factory,
    const AdversarySpec& adversary, std::uint64_t n, EngineConfig engine,
    const McConfig& config) {
  JAMELECT_EXPECTS(n >= 1);
  AdversarySpec spec = adversary;
  spec.n = n;
  const TrialRunner runner = [&station_factory, spec, n, engine](Rng rng) {
    std::vector<StationProtocolPtr> stations;
    stations.reserve(n);
    for (StationId i = 0; i < n; ++i) stations.push_back(station_factory(i));
    auto adv = make_adversary(spec, rng.child(0xad50));
    SlotEngine eng(std::move(stations), std::move(adv), rng.child(0x51e0),
                   engine);
    return eng.run();
  };
  return run_trials(runner, n, config);
}

}  // namespace jamelect
