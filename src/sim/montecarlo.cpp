#include "sim/montecarlo.hpp"

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/aggregate.hpp"
#include "sim/cohort.hpp"
#include "support/expects.hpp"
#include "support/thread_pool.hpp"

namespace jamelect {

namespace {

/// Per-thread accumulator for the streaming (keep_outcomes == false)
/// path. Slots and jams are integers, so their multisets compress into
/// value -> count maps; every field merges order-independently (counter
/// addition, map addition, multiset union — energy is sorted inside
/// summarize()), which keeps results independent of thread scheduling.
struct TrialAccumulator {
  std::size_t successes = 0;
  std::unordered_map<std::int64_t, std::uint64_t> slots;
  std::unordered_map<std::int64_t, std::uint64_t> slots_ok;
  std::unordered_map<std::int64_t, std::uint64_t> jams;
  std::vector<double> energy;
};

void accumulate(TrialAccumulator& acc, const TrialOutcome& o,
                std::uint64_t n_for_energy) {
  if (o.elected) {
    ++acc.successes;
    ++acc.slots_ok[o.slots];
  }
  ++acc.slots[o.slots];
  ++acc.jams[o.jams];
  acc.energy.push_back(o.transmissions / static_cast<double>(n_for_energy));
}

void merge_into(TrialAccumulator& into, TrialAccumulator&& from) {
  into.successes += from.successes;
  for (const auto& [v, c] : from.slots) into.slots[v] += c;
  for (const auto& [v, c] : from.slots_ok) into.slots_ok[v] += c;
  for (const auto& [v, c] : from.jams) into.jams[v] += c;
  into.energy.insert(into.energy.end(), from.energy.begin(),
                     from.energy.end());
}

[[nodiscard]] std::vector<std::pair<double, std::uint64_t>> to_value_counts(
    const std::unordered_map<std::int64_t, std::uint64_t>& counts) {
  std::vector<std::pair<double, std::uint64_t>> pairs;
  pairs.reserve(counts.size());
  for (const auto& [v, c] : counts) {
    pairs.emplace_back(static_cast<double>(v), c);
  }
  return pairs;
}

/// Legacy materializing path: every TrialOutcome is kept and the
/// summaries are computed from the full vectors.
McResult run_trials_materialized(const TrialRunner& runner,
                                 std::uint64_t n_for_energy,
                                 const McConfig& config) {
  std::vector<TrialOutcome> outcomes(config.trials);
  const Rng base(config.seed);
  const auto body = [&](std::size_t k) {
    outcomes[k] = runner(base.child(k));
  };
  if (config.parallel) {
    global_pool().parallel_for(config.trials, body);
  } else {
    for (std::size_t k = 0; k < config.trials; ++k) body(k);
  }

  McResult res;
  res.trials = config.trials;
  std::vector<double> slots, slots_ok, jams, energy;
  slots.reserve(config.trials);
  for (const TrialOutcome& o : outcomes) {
    if (o.elected) {
      ++res.successes;
      slots_ok.push_back(static_cast<double>(o.slots));
    }
    slots.push_back(static_cast<double>(o.slots));
    jams.push_back(static_cast<double>(o.jams));
    energy.push_back(o.transmissions / static_cast<double>(n_for_energy));
  }
  res.success = wilson_interval(res.successes, res.trials);
  res.slots = summarize(std::span<const double>(slots));
  if (!slots_ok.empty()) {
    res.slots_on_success = summarize(std::span<const double>(slots_ok));
  }
  res.jams = summarize(std::span<const double>(jams));
  res.energy_per_station = summarize(std::span<const double>(energy));
  res.outcomes = std::move(outcomes);
  return res;
}

}  // namespace

McResult run_trials(const TrialRunner& runner, std::uint64_t n_for_energy,
                    const McConfig& config) {
  JAMELECT_EXPECTS(config.trials >= 1);
  JAMELECT_EXPECTS(n_for_energy >= 1);
  if (config.keep_outcomes) {
    return run_trials_materialized(runner, n_for_energy, config);
  }

  // Streaming path: trials fold into per-thread accumulators and never
  // exist all at once. Reproducibility is unchanged — trial k still
  // derives from mix64(seed, k) regardless of which thread runs it.
  const Rng base(config.seed);
  const auto body = [&](TrialAccumulator& acc, std::size_t k) {
    accumulate(acc, runner(base.child(k)), n_for_energy);
  };
  TrialAccumulator total;
  if (config.parallel) {
    total = global_pool().parallel_reduce(config.trials, TrialAccumulator{},
                                          body, merge_into);
  } else {
    for (std::size_t k = 0; k < config.trials; ++k) body(total, k);
  }

  McResult res;
  res.trials = config.trials;
  res.successes = total.successes;
  res.success = wilson_interval(res.successes, res.trials);
  res.slots = summarize_weighted(to_value_counts(total.slots));
  if (!total.slots_ok.empty()) {
    res.slots_on_success = summarize_weighted(to_value_counts(total.slots_ok));
  }
  res.jams = summarize_weighted(to_value_counts(total.jams));
  res.energy_per_station =
      summarize(std::span<const double>(total.energy));
  return res;
}

McResult run_aggregate_mc(const UniformProtocolFactory& factory,
                          const AdversarySpec& adversary, std::uint64_t n,
                          const McConfig& config) {
  AdversarySpec spec = adversary;
  spec.n = n;
  const TrialRunner runner = [&factory, spec, n,
                              max_slots = config.max_slots](Rng rng) {
    auto protocol = factory();
    auto adv = make_adversary(spec, rng.child(0xad50));
    Rng sim_rng = rng.child(0x51e0);
    return run_aggregate(*protocol, *adv, {n, max_slots}, sim_rng);
  };
  return run_trials(runner, n, config);
}

McResult run_hybrid_mc(const UniformProtocolFactory& factory,
                       const AdversarySpec& adversary, std::uint64_t n,
                       const McConfig& config) {
  AdversarySpec spec = adversary;
  spec.n = n;
  const TrialRunner runner = [&factory, spec, n,
                              max_slots = config.max_slots](Rng rng) {
    auto adv = make_adversary(spec, rng.child(0xad50));
    Rng sim_rng = rng.child(0x51e0);
    return run_hybrid_notification(factory, *adv, {n, max_slots}, sim_rng);
  };
  return run_trials(runner, n, config);
}

McResult run_station_mc(
    const std::function<StationProtocolPtr(StationId)>& station_factory,
    const AdversarySpec& adversary, std::uint64_t n, EngineConfig engine,
    const McConfig& config) {
  JAMELECT_EXPECTS(n >= 1);
  AdversarySpec spec = adversary;
  spec.n = n;
  const TrialRunner runner = [&station_factory, spec, n, engine](Rng rng) {
    std::vector<StationProtocolPtr> stations;
    stations.reserve(n);
    for (StationId i = 0; i < n; ++i) stations.push_back(station_factory(i));
    auto adv = make_adversary(spec, rng.child(0xad50));
    SlotEngine eng(std::move(stations), std::move(adv), rng.child(0x51e0),
                   engine);
    return eng.run();
  };
  return run_trials(runner, n, config);
}

McResult run_cohort_mc(
    const std::function<StationProtocolPtr()>& prototype_factory,
    const AdversarySpec& adversary, std::uint64_t n, EngineConfig engine,
    const McConfig& config) {
  JAMELECT_EXPECTS(n >= 1);
  AdversarySpec spec = adversary;
  spec.n = n;
  const TrialRunner runner = [&prototype_factory, spec, n, engine](Rng rng) {
    auto adv = make_adversary(spec, rng.child(0xad50));
    CohortEngine eng(prototype_factory(), n, std::move(adv),
                     rng.child(0x51e0), engine);
    return eng.run();
  };
  return run_trials(runner, n, config);
}

}  // namespace jamelect
