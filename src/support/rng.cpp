// rng.hpp is header-only; this TU exists so the target has a stable
// archive member and to host any future out-of-line additions.
#include "support/rng.hpp"

namespace jamelect {

static_assert(Xoshiro256StarStar::min() == 0);
static_assert(Xoshiro256StarStar::max() == 0xffffffffffffffffULL);

}  // namespace jamelect
