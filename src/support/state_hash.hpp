// 64-bit state fingerprints for protocol-state comparison.
//
// The cohort engine (sim/cohort.hpp) re-merges cohorts whose
// representatives report identical protocol state. Hashes are the cheap
// first-stage filter: two states are only handed to the exact
// state_equals() check when their fingerprints collide, so the hash
// must be a deterministic function of exactly the state that
// state_equals() compares. Chaining goes through mix64 (support/rng.hpp)
// so single-field differences avalanche across the whole word.
#pragma once

#include <bit>
#include <cstdint>

#include "support/rng.hpp"

namespace jamelect {

/// Accumulator for field-by-field state fingerprints:
///   StateHash{}.add(u_).add(elected_).value()
class StateHash {
 public:
  constexpr StateHash& add(std::uint64_t v) noexcept {
    h_ = mix64(h_, v);
    return *this;
  }
  constexpr StateHash& add(std::int64_t v) noexcept {
    return add(static_cast<std::uint64_t>(v));
  }
  constexpr StateHash& add(bool v) noexcept {
    return add(static_cast<std::uint64_t>(v ? 1 : 0));
  }
  StateHash& add(double v) noexcept {
    // Bit-exact: distinguishes -0.0 from 0.0, which is stricter than
    // ==, never weaker — a spurious hash difference only costs a merge.
    return add(std::bit_cast<std::uint64_t>(v));
  }

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0x9e3779b97f4a7c15ULL;
};

}  // namespace jamelect
