#include "support/binomial_cache.hpp"

#include <utility>

#include "support/math.hpp"

namespace jamelect {

BinomialPlan build_binomial_plan(std::uint64_t n, double p) {
  // Same contract — and the same dispatch ladder, expression for
  // expression — as binomial_sample (support/binomial.cpp). Any edit
  // there must be mirrored here or the bit-identity contract breaks
  // (pinned by tests/cohort_batch_equivalence_test.cpp).
  JAMELECT_EXPECTS(p >= 0.0 && p <= 1.0);
  BinomialPlan plan;
  plan.n = n;
  plan.p = p;
  plan.p_eff = p;
  if (n == 0 || p <= 0.0) {
    plan.regime = BinomialPlan::Regime::kZero;
    return plan;
  }
  if (p >= 1.0) {
    plan.regime = BinomialPlan::Regime::kAll;
    return plan;
  }
  if (p > 0.5) {
    // The reflection binomial_sample applies by recursing with 1 - p:
    // the subtraction is exact for the comparison, and draw_impl
    // returns n - k just as the recursion's caller does.
    plan.reflect = true;
    plan.p_eff = 1.0 - p;
  }
  if (n <= 128) {
    plan.regime = BinomialPlan::Regime::kLoop;
    return plan;
  }
  const double nd = static_cast<double>(n);
  const double mean = nd * plan.p_eff;
  if (mean <= 30.0) {
    plan.regime = BinomialPlan::Regime::kInversion;
    // Prefix sums of binomial_inversion's pmf walk: cdf[j] is the
    // walk's running cdf after computing pmf_j, and the table stops
    // exactly where the walk's `if (pmf <= 0.0) break;` would (or at
    // j = n). For mean <= 30 the tail underflows after a few hundred
    // entries, so the table stays small.
    const double p_eff = plan.p_eff;
    const double log_p0 = nd * std::log1p(-p_eff);
    double pmf = std::exp(log_p0);
    const double odds = p_eff / (1.0 - p_eff);
    double cdf = pmf;
    plan.cdf.push_back(cdf);
    std::uint64_t k = 0;
    while (k < n) {
      pmf *=
          (nd - static_cast<double>(k)) / (static_cast<double>(k) + 1.0) * odds;
      cdf += pmf;
      ++k;
      plan.cdf.push_back(cdf);
      if (pmf <= 0.0) break;
    }
    // Guide table: first index with cdf >= b / G per bucket b. Sized
    // ~2 entries of headroom per cdf entry (capped) so the lookup's
    // forward scan averages under one step.
    std::size_t g = 8;
    while (g < 2 * plan.cdf.size() && g < 4096) g <<= 1;
    plan.guide.resize(g);
    plan.guide_scale = static_cast<double>(g);
    std::size_t idx = 0;
    for (std::size_t b = 0; b < g; ++b) {
      const double threshold =
          static_cast<double>(b) / static_cast<double>(g);
      while (idx + 1 < plan.cdf.size() && plan.cdf[idx] < threshold) ++idx;
      plan.guide[b] = static_cast<std::uint32_t>(idx);
    }
    return plan;
  }
  plan.regime = BinomialPlan::Regime::kBtpe;
  BinomialPlan::BtpeSetup& bt = plan.btpe;
  bt.nd = nd;
  bt.r = plan.p_eff;
  bt.q = 1.0 - bt.r;
  bt.nrq = bt.nd * bt.r * bt.q;
  const double fm = bt.nd * bt.r + bt.r;
  bt.m = std::floor(fm);
  bt.p1 = std::floor(2.195 * std::sqrt(bt.nrq) - 4.6 * bt.q) + 0.5;
  bt.xm = bt.m + 0.5;
  bt.xl = bt.xm - bt.p1;
  bt.xr = bt.xm + bt.p1;
  bt.c = 0.134 + 20.5 / (15.3 + bt.m);
  double slope = (fm - bt.xl) / (fm - bt.xl * bt.r);
  bt.laml = slope * (1.0 + 0.5 * slope);
  slope = (bt.xr - fm) / (bt.xr * bt.q);
  bt.lamr = slope * (1.0 + 0.5 * slope);
  bt.p2 = bt.p1 * (1.0 + 2.0 * bt.c);
  bt.p3 = bt.p2 + bt.c / bt.laml;
  bt.p4 = bt.p3 + bt.c / bt.lamr;
  // f-product factors for the exact test's squeeze window (mean > 30
  // implies m >= 30, so every i here is positive). Each entry is the
  // same aa / i - s expression btpe_draw's walk would evaluate —
  // division and subtraction are exact IEEE ops, so hoisting them
  // cannot change a bit.
  {
    const double s = bt.r / bt.q;
    const double aa = s * (bt.nd + 1.0);
    for (int j = 0; j < 42; ++j) {
      const double i = bt.m - 20.0 + static_cast<double>(j);
      bt.fprod[j] = i > 0.0 ? aa / i - s : 0.0;
    }
  }
  return plan;
}

BinomialSamplerCache::BinomialSamplerCache(std::size_t initial_capacity) {
  std::size_t cap = 8;
  while (cap < initial_capacity) cap <<= 1;
  mask_ = cap - 1;
  slots_.resize(cap);
}

void BinomialSamplerCache::set_lattice_step(double step) {
  JAMELECT_EXPECTS(step > 0.0);
  // Re-declaring the step the lattice already uses keeps the dense
  // index warm across chunks (the per-thread cache sees one
  // set_lattice_step per chunk). Plans are pure functions of (n, u),
  // so staying warm cannot change a lookup result. A genuinely
  // different step rebuilds the dense index; hash entries stay valid.
  const double inv = 1.0 / step;
  if (inv == inv_step_ && !dense_.empty()) return;
  inv_step_ = inv;
  dense_.assign(kDenseCapacity, DenseSlot{});
}

const BinomialPlan& BinomialSamplerCache::insert_slow(std::uint64_t n,
                                                      double u,
                                                      std::uint64_t key) {
  JAMELECT_EXPECTS(key != kEmpty);  // u is never NaN on the hot path
  ++misses_;
  if (size_ + 1 > (mask_ + 1) - (mask_ + 1) / 4) grow();

  // The exact call every kernel cohort makes: the kernels guarantee
  // their slot probability equals transmit_probability(broadcast_u())
  // bit-for-bit, so planning from u loses nothing.
  auto plan = std::make_unique<BinomialPlan>(
      build_binomial_plan(n, transmit_probability(u)));

  std::size_t idx = hash(n, key) & mask_;
  while (slots_[idx].key != kEmpty) idx = (idx + 1) & mask_;
  slots_[idx] = Slot{key, n, std::move(plan)};
  ++size_;
  return *slots_[idx].plan;
}

void BinomialSamplerCache::grow() {
  std::vector<Slot> old = std::move(slots_);
  const std::size_t cap = (mask_ + 1) * 2;
  mask_ = cap - 1;
  slots_.clear();
  slots_.resize(cap);
  for (Slot& s : old) {
    if (s.key == kEmpty) continue;
    std::size_t idx = hash(s.n, s.key) & mask_;
    while (slots_[idx].key != kEmpty) idx = (idx + 1) & mask_;
    slots_[idx] = std::move(s);
  }
  // Plans live behind unique_ptr, so dense-index plan pointers taken
  // before the rehash stay valid.
}

}  // namespace jamelect
