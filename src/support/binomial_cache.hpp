// BinomialSamplerCache — memoized binomial_sample() plans keyed on
// (cohort size n, broadcast exponent u).
//
// The cohort engine draws Binomial(|cohort|, transmit_probability(u))
// once per cohort per slot. LESK/LESU walk u over a small lattice and
// cohort sizes repeat massively across trials, so a Monte-Carlo sweep
// evaluates only a handful of distinct (n, u) pairs — but the generic
// sampler (support/binomial.cpp) recomputes its full per-regime setup
// on every draw: the log1p + exp + pmf-recurrence walk in the CDF
// inversion regime, or the triangle/parallelogram geometry block in
// BTPE. This cache hoists that setup into a BinomialPlan built once
// per distinct pair:
//   * kLoop       — nothing to precompute; the plan just pins the
//                   regime and reflected probability;
//   * kInversion  — the full CDF prefix table, so a draw is one
//                   uniform + one lower_bound instead of the walk;
//   * kBtpe       — the 15 setup constants, so a draw starts directly
//                   in the rejection loop.
//
// Lookup mirrors SlotProbCache: an open-addressing hash on the bit
// pattern of u mixed with n, plus an optional direct-mapped dense
// index over the declared broadcast-exponent lattice
// (set_lattice_step; LESK moves u on {-1, +eps/8} multiples). Every
// dense slot stores the exact (u bits, n) key and is verified before
// use — off-lattice values simply take the hash path. Never a wrong
// answer.
//
// Bit-identity: a plan draw consumes uniforms from the caller's
// generator in exactly the order binomial_sample(n, p, rng) would and
// applies the exact same floating-point expressions, so for the same
// uniform stream it returns the same k. The inversion table is the
// pmf walk's own prefix sums (same recurrence, same truncation at
// pmf underflow), making lower_bound the walk's exit condition
// verbatim; the equivalence is pinned by
// tests/cohort_batch_equivalence_test.cpp.
//
// The cache is unsynchronized; each batch worker thread owns one
// instance (thread_local in sim/cohort_batch.cpp).
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/expects.hpp"

namespace jamelect {

/// Precomputed dispatch + setup state for Binomial(n, p): the regime
/// binomial_sample() would take, the reflected probability, and the
/// regime's reusable table/constants.
struct BinomialPlan {
  enum class Regime : std::uint8_t {
    kZero,       ///< n == 0 or p <= 0: k = 0, no draw
    kAll,        ///< p >= 1: k = n, no draw
    kLoop,       ///< n <= 128: n Bernoulli coins
    kInversion,  ///< mean <= 30: one uniform against the CDF table
    kBtpe        ///< BTPE rejection: two uniforms per attempt
  };

  /// binomial_btpe's setup block — pure functions of (n, p_eff).
  struct BtpeSetup {
    double nd = 0.0, r = 0.0, q = 0.0, nrq = 0.0, m = 0.0, p1 = 0.0,
           xm = 0.0, xl = 0.0, xr = 0.0, c = 0.0, laml = 0.0, lamr = 0.0,
           p2 = 0.0, p3 = 0.0, p4 = 0.0;
    /// fprod[j] = aa / i - s for i = m - 20 + j (s = r/q,
    /// aa = s*(nd+1)): the factors of the exact test's f-product
    /// walk, whose squeeze window is |y - m| <= 20. Each entry is the
    /// identical division the walk would perform, hoisted to setup
    /// time; the far tail (|y - m| > 21) recomputes in place.
    double fprod[42] = {};
  };

  Regime regime = Regime::kZero;
  bool reflect = false;  ///< p > 1/2: drawn with p_eff, returned as n - k
  std::uint64_t n = 0;
  double p = 0.0;      ///< the requested probability
  double p_eff = 0.0;  ///< reflect ? 1.0 - p : p; drives the dispatch
  /// kInversion only: cdf[j] = P[K <= j] by the exact pmf recurrence,
  /// truncated where the recurrence underflows to 0 (or at j = n) —
  /// the same stopping rule as the uncached walk.
  std::vector<double> cdf;
  /// kInversion only: guide table (Chen & Asau) over the cdf —
  /// guide[b] is the first index with cdf[idx] >= b / guide.size(),
  /// so a lookup for u starts its forward scan at guide[floor(u *
  /// guide.size())] and expects O(1) steps. Purely a search
  /// accelerator: the found index is the same lower_bound either way.
  std::vector<std::uint32_t> guide;
  double guide_scale = 0.0;  ///< guide.size() as double
  BtpeSetup btpe;  ///< kBtpe only

  /// True when a draw consumes at least one uniform — i.e. the first
  /// uniform can be supplied by a batched wide-RNG group draw.
  [[nodiscard]] bool needs_draw() const noexcept {
    return regime == Regime::kLoop || regime == Regime::kInversion ||
           regime == Regime::kBtpe;
  }
};

/// Builds the plan binomial_sample(n, p) dispatches to. Requires p in
/// [0, 1].
[[nodiscard]] BinomialPlan build_binomial_plan(std::uint64_t n, double p);

namespace binomial_plan_detail {

/// Stirling-series tail of log(k!) — byte-for-byte the expression in
/// support/binomial.cpp (the BTPE exact test depends on it).
[[nodiscard]] inline double stirling_tail(double x, double x2) {
  return (13860.0 - (462.0 - (132.0 - (99.0 - 140.0 / x2) / x2) / x2) / x2) /
         x / 166320.0;
}

/// Mirrors binomial_small_n: p_eff lies strictly inside (0, 1) in the
/// kLoop regime, so bernoulli(p_eff) is exactly one uniform() < p_eff
/// compare per coin.
template <class RngT>
[[nodiscard]] std::uint64_t loop_draw(const BinomialPlan& plan, double first_u,
                                      bool have_first, RngT& rng) {
  std::uint64_t k = 0;
  for (std::uint64_t i = 0; i < plan.n; ++i) {
    const double u = have_first ? first_u : rng.uniform();
    have_first = false;
    k += u < plan.p_eff ? 1 : 0;
  }
  return k;
}

/// binomial_inversion returns the smallest k with u <= cdf[k], walking
/// until the pmf recurrence underflows or k reaches n. Against the
/// precomputed prefix table that is exactly a lower_bound (first entry
/// >= u), with the table's final index standing in for the walk's
/// bail-out point when u exceeds every entry.
[[nodiscard]] inline std::uint64_t inversion_result(const BinomialPlan& plan,
                                                    double u) {
  // Guide-table lower_bound: guide[b] <= lower_bound(u) for every u in
  // bucket b (indexes below it have cdf < b/G <= u), so the forward
  // scan finds the first entry >= u in O(1) expected steps — the same
  // index a full binary search returns. If every entry is < u the scan
  // stops on the last index, exactly the walk's bail-out point.
  const double* cdf = plan.cdf.data();
  const std::size_t size = plan.cdf.size();
  std::size_t b = static_cast<std::size_t>(u * plan.guide_scale);
  if (b >= plan.guide.size()) b = plan.guide.size() - 1;  // u == 1.0 guard
  std::size_t i = plan.guide[b];
  while (i + 1 < size && cdf[i] < u) ++i;
  return static_cast<std::uint64_t>(i);
}

/// binomial_btpe's rejection loop over the cached setup constants —
/// expression-for-expression the uncached sampler's body, with the
/// optional caller-supplied first uniform replacing the loop's first
/// rng.uniform() (every later uniform comes from `rng`, preserving
/// per-stream draw order).
template <class RngT>
[[nodiscard]] std::uint64_t btpe_draw(const BinomialPlan& plan, double first_u,
                                      bool have_first, RngT& rng,
                                      double first_v = 0.0,
                                      bool have_v = false) {
  const BinomialPlan::BtpeSetup& bt = plan.btpe;
  for (;;) {
    const double u = (have_first ? first_u : rng.uniform()) * bt.p4;
    have_first = false;
    double v = have_v ? first_v : rng.uniform();
    have_v = false;
    double y;
    if (u <= bt.p1) {
      y = std::floor(bt.xm - bt.p1 * v + u);
      return static_cast<std::uint64_t>(y);
    }
    if (u <= bt.p2) {
      const double x = bt.xl + (u - bt.p1) / bt.c;
      v = v * bt.c + 1.0 - std::abs(bt.xm - x) / bt.p1;
      if (v > 1.0 || v <= 0.0) continue;
      y = std::floor(x);
    } else if (u <= bt.p3) {
      y = std::floor(bt.xl + std::log(v) / bt.laml);
      if (y < 0.0) continue;
      v *= (u - bt.p2) * bt.laml;
    } else {
      y = std::floor(bt.xr - std::log(v) / bt.lamr);
      if (y > bt.nd) continue;
      v *= (u - bt.p3) * bt.lamr;
    }

    const double k = std::abs(y - bt.m);
    if (k <= 20.0 || k >= bt.nrq / 2.0 - 1.0) {
      // The walk's factor for integer i is bt.fprod[i - (m - 20)] when
      // |y - m| <= 21 (always true in the squeeze window); the far
      // tail recomputes it. Factor order is the walk's own, so the
      // running product/quotient is bit-identical either way.
      double f = 1.0;
      if (bt.m < y) {
        if (y - bt.m <= 21.0) {
          const int steps = static_cast<int>(y - bt.m);
          const double* fac = bt.fprod + 21;  // i = m + 1
          for (int j = 0; j < steps; ++j) f *= fac[j];
        } else {
          const double s = bt.r / bt.q;
          const double aa = s * (bt.nd + 1.0);
          for (double i = bt.m + 1.0; i <= y; i += 1.0) f *= (aa / i - s);
        }
      } else if (bt.m > y) {
        if (bt.m - y <= 21.0) {
          const int steps = static_cast<int>(bt.m - y);
          const double* fac = bt.fprod + 21 - steps;  // i = y + 1
          for (int j = 0; j < steps; ++j) f /= fac[j];
        } else {
          const double s = bt.r / bt.q;
          const double aa = s * (bt.nd + 1.0);
          for (double i = y + 1.0; i <= bt.m; i += 1.0) f /= (aa / i - s);
        }
      }
      if (v <= f) return static_cast<std::uint64_t>(y);
      continue;
    }
    const double rho =
        (k / bt.nrq) * ((k * (k / 3.0 + 0.625) + 1.0 / 6.0) / bt.nrq + 0.5);
    const double t = -k * k / (2.0 * bt.nrq);
    const double alv = std::log(v);
    if (alv < t - rho) return static_cast<std::uint64_t>(y);
    if (alv > t + rho) continue;
    const double x1 = y + 1.0;
    const double f1 = bt.m + 1.0;
    const double z = bt.nd + 1.0 - bt.m;
    const double w = bt.nd - y + 1.0;
    const double target =
        bt.xm * std::log(f1 / x1) + (bt.nd - bt.m + 0.5) * std::log(z / w) +
        (y - bt.m) * std::log(w * bt.r / (x1 * bt.q)) +
        stirling_tail(f1, f1 * f1) + stirling_tail(z, z * z) +
        stirling_tail(x1, x1 * x1) + stirling_tail(w, w * w);
    if (alv <= target) return static_cast<std::uint64_t>(y);
  }
}

template <class RngT>
[[nodiscard]] std::uint64_t draw_impl(const BinomialPlan& plan, double first_u,
                                      bool have_first, RngT& rng) {
  std::uint64_t k = 0;
  switch (plan.regime) {
    case BinomialPlan::Regime::kZero: return 0;
    case BinomialPlan::Regime::kAll: return plan.n;
    case BinomialPlan::Regime::kLoop:
      k = loop_draw(plan, first_u, have_first, rng);
      break;
    case BinomialPlan::Regime::kInversion: {
      const double u = have_first ? first_u : rng.uniform();
      k = inversion_result(plan, u);
      break;
    }
    case BinomialPlan::Regime::kBtpe:
      k = btpe_draw(plan, first_u, have_first, rng);
      break;
  }
  return plan.reflect ? plan.n - k : k;
}

}  // namespace binomial_plan_detail

/// Draws from the plan, consuming uniforms from `rng` in exactly the
/// order binomial_sample(plan.n, plan.p, rng) would: bit-identical k
/// for a bit-identical uniform stream. RngT needs only
/// `double uniform()` (Rng, AesCtrRng, or a wide-lane adapter).
template <class RngT>
[[nodiscard]] std::uint64_t binomial_plan_draw(const BinomialPlan& plan,
                                               RngT& rng) {
  return binomial_plan_detail::draw_impl(plan, 0.0, false, rng);
}

/// Same, but the draw's FIRST uniform is supplied by the caller (the
/// batched cohort engine groups it across lanes via the wide RNG);
/// any further uniforms come from `rng`. Requires plan.needs_draw() —
/// the zero-draw regimes have no first uniform to consume.
template <class RngT>
[[nodiscard]] std::uint64_t binomial_plan_draw_first(const BinomialPlan& plan,
                                                     double u0, RngT& rng) {
  JAMELECT_EXPECTS(plan.needs_draw());
  return binomial_plan_detail::draw_impl(plan, u0, true, rng);
}

/// BTPE-only variant with the first TWO uniforms supplied: the first
/// rejection attempt always consumes u then v before any accept/reject
/// test, so the batched engine groups both across lanes. Requires
/// plan.regime == kBtpe; any further uniforms come from `rng`.
template <class RngT>
[[nodiscard]] std::uint64_t binomial_plan_draw_first2(const BinomialPlan& plan,
                                                      double u0, double v0,
                                                      RngT& rng) {
  JAMELECT_EXPECTS(plan.regime == BinomialPlan::Regime::kBtpe);
  const std::uint64_t k =
      binomial_plan_detail::btpe_draw(plan, u0, true, rng, v0, true);
  return plan.reflect ? plan.n - k : k;
}

/// Memoized BinomialPlan store keyed on (n, u) with
/// p = transmit_probability(u) computed on miss (the exact call every
/// kernel cohort makes — kernels guarantee their slot probability is
/// transmit_probability(broadcast_u()) bit-for-bit).
class BinomialSamplerCache {
 public:
  /// Starts with room for `initial_capacity` entries (rounded up to a
  /// power of two).
  explicit BinomialSamplerCache(std::size_t initial_capacity = 64);

  /// Plan for Binomial(n, transmit_probability(u)). Requires u >= 0
  /// (transmit_probability's domain). The returned reference stays
  /// valid for the cache's lifetime — plans are heap-allocated and
  /// never move, so callers may hold plan pointers across lookups.
  [[nodiscard]] const BinomialPlan& plan(std::uint64_t n, double u) {
    ++lookups_;
    const std::uint64_t key = std::bit_cast<std::uint64_t>(u);
    if (!dense_.empty()) {
      const double qd = u * inv_step_;
      if (qd >= 0.0 && qd < static_cast<double>(kDenseCapacity)) {
        const auto q = static_cast<std::size_t>(qd + 0.5);
        if (q < kDenseCapacity) {
          DenseSlot& d = dense_[q];
          if (d.key == key && d.n == n) {
            ++dense_hits_;
            return *d.plan;
          }
          // Miss or bucket held a different (u, n): resolve via the
          // hash map, then (re)install so the next lookup is dense.
          // Last-writer-wins — correctness comes from the key compare
          // above, the bucket only caches.
          const BinomialPlan& pl = lookup_hash(n, u, key);
          d.key = key;
          d.n = n;
          d.plan = &pl;
          return pl;
        }
      }
    }
    return lookup_hash(n, u, key);
  }

  /// Declares that u moves on a lattice of `step` (> 0) multiples,
  /// enabling the direct-mapped dense index for u in
  /// [0, step * kDenseCapacity). Purely an accelerator; off-lattice
  /// lookups stay correct via the hash path. Changing the step resets
  /// the dense index (hash entries are kept).
  void set_lattice_step(double step);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Total plan() calls since construction.
  [[nodiscard]] std::uint64_t lookups() const noexcept { return lookups_; }
  /// Total misses (== distinct (n, u) plans built) since construction.
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  /// Lookups answered by the dense lattice index (subset of hits).
  [[nodiscard]] std::uint64_t dense_hits() const noexcept {
    return dense_hits_;
  }

  /// Dense lattice index capacity, in lattice points.
  static constexpr std::size_t kDenseCapacity = 1024;

 private:
  struct Slot {
    std::uint64_t key = kEmpty;
    std::uint64_t n = 0;
    std::unique_ptr<BinomialPlan> plan;  ///< stable address across grow()
  };

  struct DenseSlot {
    std::uint64_t key = kEmpty;
    std::uint64_t n = 0;
    const BinomialPlan* plan = nullptr;
  };

  // All-ones is the negative-NaN bit pattern; broadcast_u() is never
  // NaN (transmit_probability EXPECTS u >= 0), so it cannot collide
  // with a real key — and it is NOT the -0.0 pattern, which a protocol
  // could legitimately produce.
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  [[nodiscard]] static std::size_t hash(std::uint64_t n,
                                        std::uint64_t key) noexcept {
    // splitmix64 finalizer over the (n, u-bits) pair: adjacent lattice
    // points differ in few mantissa bits and cohort sizes cluster, so
    // we need real avalanche before masking.
    std::uint64_t x = key ^ (n * 0x9e3779b97f4a7c15ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }

  [[nodiscard]] const BinomialPlan& lookup_hash(std::uint64_t n, double u,
                                                std::uint64_t key) {
    std::size_t idx = hash(n, key) & mask_;
    while (true) {
      const Slot& s = slots_[idx];
      if (s.key == key && s.n == n) return *s.plan;
      if (s.key == kEmpty) return insert_slow(n, u, key);
      idx = (idx + 1) & mask_;
    }
  }

  const BinomialPlan& insert_slow(std::uint64_t n, double u,
                                  std::uint64_t key);
  void grow();

  std::size_t mask_;  ///< capacity - 1 (capacity is a power of two)
  std::size_t size_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t dense_hits_ = 0;
  double inv_step_ = 0.0;  ///< 1 / lattice step; 0 while no lattice set
  std::vector<Slot> slots_;
  std::vector<DenseSlot> dense_;  ///< empty until set_lattice_step
};

}  // namespace jamelect
