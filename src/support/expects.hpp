// Contract-checking macros (C++ Core Guidelines I.6/I.8 style).
//
// JAMELECT_EXPECTS  — precondition on public API arguments; always on.
// JAMELECT_ENSURES  — postcondition / internal invariant; always on.
//
// Both throw jamelect::ContractViolation so tests can assert on misuse,
// and failures in long Monte-Carlo runs surface as exceptions instead of
// silent corruption. The checks guarded here are O(1) and not on hot
// inner loops, so keeping them in release builds is deliberate.
#pragma once

#include <stdexcept>
#include <string>

namespace jamelect {

/// Thrown when a precondition or invariant check fails.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " violated: `" + expr + "` at " +
                          file + ":" + std::to_string(line));
}

}  // namespace jamelect

#define JAMELECT_EXPECTS(cond)                                            \
  do {                                                                    \
    if (!(cond)) ::jamelect::contract_fail("precondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define JAMELECT_ENSURES(cond)                                            \
  do {                                                                    \
    if (!(cond)) ::jamelect::contract_fail("invariant", #cond, __FILE__, __LINE__); \
  } while (false)
