#include "support/wide_rng.hpp"

#include <atomic>
#include <cstdlib>

namespace jamelect {

namespace wide_detail {

#if defined(JAMELECT_WIDE_AVX2)
// Implemented in wide_rng_avx2.cpp (the only support TU built -mavx2).
void uniform_groups_avx2(std::uint64_t* s0, std::uint64_t* s1,
                         std::uint64_t* s2, std::uint64_t* s3,
                         std::size_t groups, double* out) noexcept;
void uniform_masked_avx2(std::uint64_t* s0, std::uint64_t* s1,
                         std::uint64_t* s2, std::uint64_t* s3,
                         std::size_t groups, const std::uint8_t* mask,
                         double* out) noexcept;
void uniform_groups2_avx2(std::uint64_t* s0, std::uint64_t* s1,
                          std::uint64_t* s2, std::uint64_t* s3,
                          std::size_t groups, double* out_u,
                          double* out_v) noexcept;
#endif

namespace {

void uniform_groups_scalar4(std::uint64_t* s0, std::uint64_t* s1,
                            std::uint64_t* s2, std::uint64_t* s3,
                            std::size_t groups, double* out) noexcept {
  const std::size_t lanes = groups * kWideLanes;
  for (std::size_t k = 0; k < lanes; ++k) {
    out[k] = to_uniform(step1(s0[k], s1[k], s2[k], s3[k]));
  }
}

void uniform_masked_scalar4(std::uint64_t* s0, std::uint64_t* s1,
                            std::uint64_t* s2, std::uint64_t* s3,
                            std::size_t groups, const std::uint8_t* mask,
                            double* out) noexcept {
  const std::size_t lanes = groups * kWideLanes;
  for (std::size_t k = 0; k < lanes; ++k) {
    if (mask[k] != 0) out[k] = to_uniform(step1(s0[k], s1[k], s2[k], s3[k]));
  }
}

void uniform_groups2_scalar4(std::uint64_t* s0, std::uint64_t* s1,
                             std::uint64_t* s2, std::uint64_t* s3,
                             std::size_t groups, double* out_u,
                             double* out_v) noexcept {
  const std::size_t lanes = groups * kWideLanes;
  for (std::size_t k = 0; k < lanes; ++k) {
    out_u[k] = to_uniform(step1(s0[k], s1[k], s2[k], s3[k]));
    out_v[k] = to_uniform(step1(s0[k], s1[k], s2[k], s3[k]));
  }
}

}  // namespace
}  // namespace wide_detail

namespace {

constexpr int kIsaUnresolved = -1;
std::atomic<int> g_wide_isa{kIsaUnresolved};

[[nodiscard]] bool force_scalar_env() noexcept {
  const char* v = std::getenv("JAMELECT_FORCE_SCALAR");
  if (v == nullptr || v[0] == '\0') return false;
  return !(v[0] == '0' && v[1] == '\0');
}

[[nodiscard]] WideIsa resolve_wide_isa() noexcept {
  if (wide_avx2_supported() && !force_scalar_env()) return WideIsa::kAvx2;
  return WideIsa::kScalar4;
}

}  // namespace

WideIsa active_wide_isa() noexcept {
  int v = g_wide_isa.load(std::memory_order_acquire);
  if (v == kIsaUnresolved) {
    v = static_cast<int>(resolve_wide_isa());
    g_wide_isa.store(v, std::memory_order_release);
  }
  return static_cast<WideIsa>(v);
}

bool wide_avx2_supported() noexcept {
#if defined(JAMELECT_WIDE_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const char* wide_isa_name(WideIsa isa) noexcept {
  return isa == WideIsa::kAvx2 ? "avx2" : "scalar4";
}

void set_wide_isa_for_testing(WideIsa isa) {
  JAMELECT_EXPECTS(isa != WideIsa::kAvx2 || wide_avx2_supported());
  g_wide_isa.store(static_cast<int>(isa), std::memory_order_release);
}

void reset_wide_isa_for_testing() noexcept {
  g_wide_isa.store(kIsaUnresolved, std::memory_order_release);
}

void WideXoshiro::uniform_groups(std::size_t groups, double* out) noexcept {
#if defined(JAMELECT_WIDE_AVX2)
  if (isa_ == WideIsa::kAvx2) {
    wide_detail::uniform_groups_avx2(plane(0), plane(1), plane(2), plane(3),
                                     groups, out);
    return;
  }
#endif
  wide_detail::uniform_groups_scalar4(plane(0), plane(1), plane(2), plane(3),
                                      groups, out);
}

void WideXoshiro::uniform_masked(std::size_t groups, const std::uint8_t* mask,
                                 double* out) noexcept {
#if defined(JAMELECT_WIDE_AVX2)
  if (isa_ == WideIsa::kAvx2) {
    wide_detail::uniform_masked_avx2(plane(0), plane(1), plane(2), plane(3),
                                     groups, mask, out);
    return;
  }
#endif
  wide_detail::uniform_masked_scalar4(plane(0), plane(1), plane(2), plane(3),
                                      groups, mask, out);
}

void WideXoshiro::uniform_groups2(std::size_t groups, double* out_u,
                                  double* out_v) noexcept {
#if defined(JAMELECT_WIDE_AVX2)
  if (isa_ == WideIsa::kAvx2) {
    wide_detail::uniform_groups2_avx2(plane(0), plane(1), plane(2), plane(3),
                                      groups, out_u, out_v);
    return;
  }
#endif
  wide_detail::uniform_groups2_scalar4(plane(0), plane(1), plane(2), plane(3),
                                       groups, out_u, out_v);
}

}  // namespace jamelect
