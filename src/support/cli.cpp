#include "support/cli.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/expects.hpp"

namespace jamelect {

Cli::Cli(int argc, const char* const* argv) {
  JAMELECT_EXPECTS(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` form: consume the next token as the value unless it
    // looks like another option; bare `--flag` means "true".
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::optional<std::string> Cli::raw(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) const {
  return raw(name).value_or(fallback);
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  return std::stoll(*v);
}

std::uint64_t Cli::get_uint(const std::string& name,
                            std::uint64_t fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  return std::stoull(*v);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  return std::stod(*v);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  std::string s = *v;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  throw std::invalid_argument("not a boolean: --" + name + "=" + *v);
}

std::vector<std::string> Cli::provided_names() const {
  std::vector<std::string> names;
  names.reserve(options_.size());
  for (const auto& [k, _] : options_) names.push_back(k);
  return names;
}

}  // namespace jamelect
