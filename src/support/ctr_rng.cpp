#include "support/ctr_rng.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace jamelect {

namespace ctr_detail {

// ---- portable AES-128, encrypt-only ---------------------------------
//
// The S-box is built once from first principles (GF(2^8) inverse via
// log/antilog tables over generator 0x03, then the FIPS-197 affine
// transform) instead of a transcribed 256-entry literal; the FIPS-197
// Appendix C vector in tests/ctr_rng_test.cpp pins the result, and the
// AES-NI backend must agree bit-for-bit on every block.

[[nodiscard]] constexpr std::uint8_t xtime(std::uint8_t x) noexcept {
  return static_cast<std::uint8_t>(
      static_cast<std::uint8_t>(x << 1) ^ ((x >> 7) != 0 ? 0x1b : 0x00));
}

[[nodiscard]] constexpr std::uint8_t rotl8(std::uint8_t x, int k) noexcept {
  return static_cast<std::uint8_t>(
      static_cast<std::uint8_t>(x << k) | (x >> (8 - k)));
}

namespace {

struct Sbox {
  std::uint8_t s[256];
};

[[nodiscard]] const Sbox& sbox() noexcept {
  static const Sbox table = [] {
    std::uint8_t pow[255];
    std::uint8_t log[256] = {};
    std::uint8_t p = 1;
    for (int i = 0; i < 255; ++i) {
      pow[i] = p;
      log[p] = static_cast<std::uint8_t>(i);
      p = static_cast<std::uint8_t>(p ^ xtime(p));  // p *= 0x03 in GF(2^8)
    }
    Sbox t{};
    for (int x = 0; x < 256; ++x) {
      const std::uint8_t inv =
          x == 0 ? std::uint8_t{0} : pow[(255 - log[x]) % 255];
      t.s[x] = static_cast<std::uint8_t>(inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^
                                         rotl8(inv, 3) ^ rotl8(inv, 4) ^ 0x63);
    }
    return t;
  }();
  return table;
}

// State byte i = row (i % 4) of column (i / 4), as FIPS-197 lays the
// input block out. ShiftRows rotates row r left by r columns.
void shift_rows(std::uint8_t s[16]) noexcept {
  std::uint8_t t[16];
  for (int c = 0; c < 4; ++c) {
    for (int r = 0; r < 4; ++r) t[4 * c + r] = s[4 * ((c + r) % 4) + r];
  }
  std::memcpy(s, t, 16);
}

void mix_columns(std::uint8_t s[16]) noexcept {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    const std::uint8_t all =
        static_cast<std::uint8_t>(a0 ^ a1 ^ a2 ^ a3);
    col[0] = static_cast<std::uint8_t>(a0 ^ all ^
                                       xtime(static_cast<std::uint8_t>(a0 ^ a1)));
    col[1] = static_cast<std::uint8_t>(a1 ^ all ^
                                       xtime(static_cast<std::uint8_t>(a1 ^ a2)));
    col[2] = static_cast<std::uint8_t>(a2 ^ all ^
                                       xtime(static_cast<std::uint8_t>(a2 ^ a3)));
    col[3] = static_cast<std::uint8_t>(a3 ^ all ^
                                       xtime(static_cast<std::uint8_t>(a3 ^ a0)));
  }
}

}  // namespace

void encrypt_block_soft(const AesKey& key, const std::uint8_t in[16],
                        std::uint8_t out[16]) noexcept {
  const std::uint8_t* rk = key.round_keys.data();
  const Sbox& box = sbox();
  std::uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = static_cast<std::uint8_t>(in[i] ^ rk[i]);
  for (int round = 1; round <= 9; ++round) {
    for (auto& b : s) b = box.s[b];
    shift_rows(s);
    mix_columns(s);
    const std::uint8_t* k = rk + 16 * round;
    for (int i = 0; i < 16; ++i) s[i] = static_cast<std::uint8_t>(s[i] ^ k[i]);
  }
  for (auto& b : s) b = box.s[b];
  shift_rows(s);
  const std::uint8_t* k = rk + 160;
  for (int i = 0; i < 16; ++i)
    out[i] = static_cast<std::uint8_t>(s[i] ^ k[i]);
}

}  // namespace ctr_detail

AesKey expand_aes_key(
    const std::array<std::uint8_t, 16>& cipher_key) noexcept {
  using ctr_detail::sbox;
  using ctr_detail::xtime;
  AesKey key;
  std::uint8_t* rk = key.round_keys.data();
  std::memcpy(rk, cipher_key.data(), 16);
  std::uint8_t rcon = 1;
  for (std::size_t i = 16; i < 176; i += 4) {
    std::uint8_t t[4] = {rk[i - 4], rk[i - 3], rk[i - 2], rk[i - 1]};
    if (i % 16 == 0) {
      const std::uint8_t first = t[0];
      t[0] = static_cast<std::uint8_t>(sbox().s[t[1]] ^ rcon);
      t[1] = sbox().s[t[2]];
      t[2] = sbox().s[t[3]];
      t[3] = sbox().s[first];
      rcon = xtime(rcon);
    }
    for (std::size_t j = 0; j < 4; ++j)
      rk[i + j] = static_cast<std::uint8_t>(rk[i + j - 16] ^ t[j]);
  }
  return key;
}

AesKey make_aes_key(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  std::array<std::uint8_t, 16> cipher_key;
  for (int half = 0; half < 2; ++half) {
    const std::uint64_t w = sm.next();
    for (int b = 0; b < 8; ++b)
      cipher_key[static_cast<std::size_t>(8 * half + b)] =
          static_cast<std::uint8_t>(w >> (8 * b));
  }
  return expand_aes_key(cipher_key);
}

namespace {

constexpr int kAesUnresolved = -1;
std::atomic<int> g_aes_isa{kAesUnresolved};

[[nodiscard]] bool force_soft_aes_env() noexcept {
  const char* v = std::getenv("JAMELECT_FORCE_SOFT_AES");
  if (v == nullptr || v[0] == '\0') return false;
  return !(v[0] == '0' && v[1] == '\0');
}

[[nodiscard]] AesIsa resolve_aes_isa() noexcept {
  if (aesni_supported() && !force_soft_aes_env()) return AesIsa::kAesni;
  return AesIsa::kSoft;
}

inline void store_le64(std::uint8_t* p, std::uint64_t v) noexcept {
  for (int b = 0; b < 8; ++b) p[b] = static_cast<std::uint8_t>(v >> (8 * b));
}

[[nodiscard]] inline std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int b = 7; b >= 0; --b) v = (v << 8) | p[b];
  return v;
}

}  // namespace

AesIsa active_aes_isa() noexcept {
  int v = g_aes_isa.load(std::memory_order_acquire);
  if (v == kAesUnresolved) {
    v = static_cast<int>(resolve_aes_isa());
    g_aes_isa.store(v, std::memory_order_release);
  }
  return static_cast<AesIsa>(v);
}

bool aesni_supported() noexcept {
#if defined(JAMELECT_AESNI)
  return __builtin_cpu_supports("aes") != 0;
#else
  return false;
#endif
}

const char* aes_isa_name(AesIsa isa) noexcept {
  return isa == AesIsa::kAesni ? "aesni" : "soft";
}

void set_aes_isa_for_testing(AesIsa isa) {
  JAMELECT_EXPECTS(isa != AesIsa::kAesni || aesni_supported());
  g_aes_isa.store(static_cast<int>(isa), std::memory_order_release);
}

void reset_aes_isa_for_testing() noexcept {
  g_aes_isa.store(kAesUnresolved, std::memory_order_release);
}

void aes_ctr_blocks(AesIsa isa, const AesKey& key,
                    const std::uint64_t* streams,
                    const std::uint64_t* counters, std::size_t n,
                    std::uint64_t* out) noexcept {
  constexpr std::size_t kChunk = 8;
  std::uint8_t in[kChunk * 16];
  std::uint8_t enc[kChunk * 16];
  while (n > 0) {
    const std::size_t m = n < kChunk ? n : kChunk;
    for (std::size_t i = 0; i < m; ++i) {
      store_le64(in + 16 * i, streams[i]);
      store_le64(in + 16 * i + 8, counters[i]);
    }
#if defined(JAMELECT_AESNI)
    if (isa == AesIsa::kAesni) {
      ctr_detail::encrypt_blocks_aesni(key, in, enc, m);
    } else {
      for (std::size_t i = 0; i < m; ++i)
        ctr_detail::encrypt_block_soft(key, in + 16 * i, enc + 16 * i);
    }
#else
    (void)isa;
    for (std::size_t i = 0; i < m; ++i)
      ctr_detail::encrypt_block_soft(key, in + 16 * i, enc + 16 * i);
#endif
    for (std::size_t i = 0; i < m; ++i) out[i] = load_le64(enc + 16 * i);
    streams += m;
    counters += m;
    out += m;
    n -= m;
  }
}

void WideAesCtr::uniform_groups(std::size_t groups, double* out) noexcept {
  const std::size_t n = groups * kWideLanes;
  aes_ctr_blocks(isa_, key_, stream_.data(), ctr_.data(), n,
                 scratch_o_.data());
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = wide_detail::to_uniform(scratch_o_[k]);
    ++ctr_[k];
  }
}

void WideAesCtr::uniform_masked(std::size_t groups, const std::uint8_t* mask,
                                double* out) noexcept {
  const std::size_t n = groups * kWideLanes;
  std::size_t m = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (mask[k] != 0) {
      scratch_s_[m] = stream_[k];
      scratch_c_[m] = ctr_[k];
      ++m;
    }
  }
  if (m == 0) return;
  aes_ctr_blocks(isa_, key_, scratch_s_.data(), scratch_c_.data(), m,
                 scratch_o_.data());
  std::size_t j = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (mask[k] != 0) {
      out[k] = wide_detail::to_uniform(scratch_o_[j++]);
      ++ctr_[k];
    }
  }
}

}  // namespace jamelect
