// AVX2 backend for SlotProbCache::lookup_lanes.
//
// The dense lattice index maps u to bucket round(u * inv_step), a
// packed 5-word DenseSlot {key, p, c_null, c_single, exp_tx} per
// bucket. A 4-lane group therefore costs: one vector multiply + round
// to bucket indices, one 64-bit gather for the stored keys, one
// compare against the query bit patterns, and — on an all-hit group —
// three double gathers for the threshold words. Any lane out of dense
// range or missing its key demotes the whole group to the scalar
// lookup() path, which resolves via the hash map AND installs the
// entry, so the next visit of the same u gathers. Counter deltas are
// identical to the scalar loop: an all-hit group is 4 lookups + 4
// dense hits; a demoted group counts through lookup() exactly as the
// portable path would.
#if !defined(__AVX2__)
#error "slot_prob_cache_avx2.cpp must be compiled with -mavx2"
#endif

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "support/slot_prob_cache.hpp"

namespace jamelect {

void SlotProbCache::lookup_lanes_avx2(const double* us, std::size_t count,
                                      double* c_null, double* c_single,
                                      double* exp_tx) {
  static_assert(sizeof(DenseSlot) == 5 * sizeof(std::uint64_t),
                "gather indexing assumes a packed 5-word DenseSlot");
  static_assert(offsetof(DenseSlot, entry) == sizeof(std::uint64_t));
  static_assert(offsetof(Entry, c_null) == 1 * sizeof(double));
  static_assert(offsetof(Entry, c_single) == 2 * sizeof(double));
  static_assert(offsetof(Entry, exp_tx) == 3 * sizeof(double));
  constexpr std::size_t kGroup = 4;

  // dense_ never reallocates after set_lattice_step, so these stay
  // valid across the scalar fallbacks below (which may install).
  const auto* words = reinterpret_cast<const long long*>(dense_.data());
  const auto* doubles = reinterpret_cast<const double*>(dense_.data());
  const __m256d inv_step = _mm256_set1_pd(inv_step_);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d cap_d = _mm256_set1_pd(static_cast<double>(kDenseCapacity));
  const __m128i cap_i = _mm_set1_epi32(static_cast<int>(kDenseCapacity));
  const __m128i stride = _mm_set1_epi32(5);  // words per DenseSlot
  // All-lanes masks for the gathers: GCC's unmasked gather intrinsics
  // expand through a self-initialized "undefined" vector that trips
  // -Werror=uninitialized, so we spell the mask explicitly.
  const __m256i all = _mm256_set1_epi64x(-1);
  const __m256d alld = _mm256_castsi256_pd(all);
  const auto gather_pd = [&](const __m128i& idx) {
    return _mm256_mask_i32gather_pd(zero, doubles, idx, alld, 8);
  };

  const auto scalar_lanes = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      const Entry& e = lookup(us[k]);
      c_null[k] = e.c_null;
      c_single[k] = e.c_single;
      exp_tx[k] = e.exp_tx;
    }
  };

  std::size_t k = 0;
  for (; k + kGroup <= count; k += kGroup) {
    const __m256d u = _mm256_loadu_pd(us + k);
    const __m256d qd = _mm256_mul_pd(u, inv_step);
    // Range guards mirror lookup(): qd in [0, capacity) before
    // rounding, and q < capacity after (the +0.5 can round up to
    // exactly kDenseCapacity). Truncation of qd + 0.5 is the scalar
    // path's static_cast<size_t>(qd + 0.5) for non-negative qd.
    const __m256d in_range = _mm256_and_pd(
        _mm256_cmp_pd(qd, zero, _CMP_GE_OQ), _mm256_cmp_pd(qd, cap_d, _CMP_LT_OQ));
    if (_mm256_movemask_pd(in_range) != 0xf) {
      scalar_lanes(k, k + kGroup);
      continue;
    }
    const __m128i q = _mm256_cvttpd_epi32(_mm256_add_pd(qd, half));
    if (_mm_movemask_epi8(_mm_cmplt_epi32(q, cap_i)) != 0xffff) {
      scalar_lanes(k, k + kGroup);
      continue;
    }
    const __m128i widx = _mm_mullo_epi32(q, stride);
    const __m256i keys =
        _mm256_mask_i32gather_epi64(_mm256_setzero_si256(), words, widx, all, 8);
    const __m256i eq = _mm256_cmpeq_epi64(keys, _mm256_castpd_si256(u));
    if (_mm256_movemask_pd(_mm256_castsi256_pd(eq)) != 0xf) {
      scalar_lanes(k, k + kGroup);
      continue;
    }
    lookups_ += kGroup;
    dense_hits_ += kGroup;
    _mm256_storeu_pd(c_null + k, gather_pd(_mm_add_epi32(widx, _mm_set1_epi32(2))));
    _mm256_storeu_pd(c_single + k,
                     gather_pd(_mm_add_epi32(widx, _mm_set1_epi32(3))));
    _mm256_storeu_pd(exp_tx + k, gather_pd(_mm_add_epi32(widx, _mm_set1_epi32(4))));
  }
  scalar_lanes(k, count);
}

}  // namespace jamelect
