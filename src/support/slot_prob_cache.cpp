#include "support/slot_prob_cache.hpp"

#include <utility>

#include "support/wide_rng.hpp"

namespace jamelect {

SlotProbCache::SlotProbCache(std::uint64_t n, std::size_t initial_capacity) : n_(n) {
  JAMELECT_EXPECTS(n >= 1);
  std::size_t cap = 8;
  while (cap < initial_capacity) cap <<= 1;
  mask_ = cap - 1;
  slots_.assign(cap, Slot{kEmpty, {}});
}

void SlotProbCache::lookup_lanes(const double* us, std::size_t count,
                                 double* c_null, double* c_single,
                                 double* exp_tx) {
#if defined(JAMELECT_WIDE_AVX2)
  // With a lattice declared, each lane resolves to a fixed-stride
  // DenseSlot, so the whole batch reduces to gathers. Pure dispatch:
  // entries and counters are identical either way, and the same
  // JAMELECT_FORCE_SCALAR override that pins the wide engines to the
  // portable backend pins this loop scalar too.
  if (!dense_.empty() && active_wide_isa() == WideIsa::kAvx2) {
    lookup_lanes_avx2(us, count, c_null, c_single, exp_tx);
    return;
  }
#endif
  for (std::size_t k = 0; k < count; ++k) {
    const Entry& e = lookup(us[k]);
    c_null[k] = e.c_null;
    c_single[k] = e.c_single;
    exp_tx[k] = e.exp_tx;
  }
}

void SlotProbCache::set_lattice_step(double step) {
  JAMELECT_EXPECTS(step > 0.0);
  // Re-declaring the step the lattice already uses keeps the dense
  // index warm: long-lived caches (the per-thread BatchWorkspace) see
  // one set_lattice_step per chunk, and clearing it each time would
  // throw away exactly the entries the next chunk re-asks for.
  // Entries are pure functions of (n, u), so staying warm cannot
  // change a lookup result. A genuinely different step still rebuilds.
  const double inv = 1.0 / step;
  if (inv == inv_step_ && !dense_.empty()) return;
  inv_step_ = inv;
  dense_.assign(kDenseCapacity, DenseSlot{kEmpty, {}});
}

const SlotProbCache::Entry& SlotProbCache::insert_slow(double u, std::uint64_t key) {
  JAMELECT_EXPECTS(key != kEmpty);  // u is never NaN on the hot path
  ++misses_;
  if (size_ + 1 > (mask_ + 1) - (mask_ + 1) / 4) grow();

  // Same call chain as the sequential aggregate engine — the cached
  // entry is bit-identical to what run_aggregate computes per slot
  // (exp_tx reproduces the engine's `double(n) * p` product exactly).
  const double p = transmit_probability(u);
  const SlotProbabilities probs = slot_probabilities(n_, p);
  const Entry entry{p, probs.null, probs.null + probs.single,
                    static_cast<double>(n_) * p};

  std::size_t idx = hash(key) & mask_;
  while (slots_[idx].key != kEmpty) idx = (idx + 1) & mask_;
  slots_[idx] = Slot{key, entry};
  ++size_;
  return slots_[idx].entry;
}

void SlotProbCache::grow() {
  std::vector<Slot> old = std::move(slots_);
  const std::size_t cap = (mask_ + 1) * 2;
  mask_ = cap - 1;
  slots_.assign(cap, Slot{kEmpty, {}});
  for (const Slot& s : old) {
    if (s.key == kEmpty) continue;
    std::size_t idx = hash(s.key) & mask_;
    while (slots_[idx].key != kEmpty) idx = (idx + 1) & mask_;
    slots_[idx] = s;
  }
}

}  // namespace jamelect
