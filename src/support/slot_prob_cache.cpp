#include "support/slot_prob_cache.hpp"

#include <utility>

namespace jamelect {

SlotProbCache::SlotProbCache(std::uint64_t n, std::size_t initial_capacity) : n_(n) {
  JAMELECT_EXPECTS(n >= 1);
  std::size_t cap = 8;
  while (cap < initial_capacity) cap <<= 1;
  mask_ = cap - 1;
  slots_.assign(cap, Slot{kEmpty, {}});
}

const SlotProbCache::Entry& SlotProbCache::insert_slow(double u, std::uint64_t key) {
  JAMELECT_EXPECTS(key != kEmpty);  // u is never NaN on the hot path
  ++misses_;
  if (size_ + 1 > (mask_ + 1) - (mask_ + 1) / 4) grow();

  // Same call chain as the sequential aggregate engine — the cached
  // entry is bit-identical to what run_aggregate computes per slot.
  const double p = transmit_probability(u);
  const SlotProbabilities probs = slot_probabilities(n_, p);
  const Entry entry{p, probs.null, probs.null + probs.single};

  std::size_t idx = hash(key) & mask_;
  while (slots_[idx].key != kEmpty) idx = (idx + 1) & mask_;
  slots_[idx] = Slot{key, entry};
  ++size_;
  return slots_[idx].entry;
}

void SlotProbCache::grow() {
  std::vector<Slot> old = std::move(slots_);
  const std::size_t cap = (mask_ + 1) * 2;
  mask_ = cap - 1;
  slots_.assign(cap, Slot{kEmpty, {}});
  for (const Slot& s : old) {
    if (s.key == kEmpty) continue;
    std::size_t idx = hash(s.key) & mask_;
    while (slots_[idx].key != kEmpty) idx = (idx + 1) & mask_;
    slots_[idx] = s;
  }
}

}  // namespace jamelect
