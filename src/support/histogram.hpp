// Integer-valued histograms for slot counts, estimator trajectories and
// Estimation() return values.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "support/expects.hpp"

namespace jamelect {

/// Sparse histogram over int64 keys. Suited to our metrics, which are
/// small integers (Estimation rounds, slot-type counts) with unknown
/// range.
class Histogram {
 public:
  void add(std::int64_t value, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t count(std::int64_t value) const;
  /// Fraction of mass at `value`; 0 if the histogram is empty.
  [[nodiscard]] double fraction(std::int64_t value) const;
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }
  [[nodiscard]] std::int64_t min_value() const;
  [[nodiscard]] std::int64_t max_value() const;
  /// Smallest v such that P[X <= v] >= q, for q in (0, 1].
  [[nodiscard]] std::int64_t quantile(double q) const;
  [[nodiscard]] double mean() const;

  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& bins() const noexcept {
    return bins_;
  }

  void merge(const Histogram& other);

  /// Renders a small ASCII bar chart (for example programs).
  [[nodiscard]] std::string ascii(std::size_t max_width = 50) const;

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace jamelect
