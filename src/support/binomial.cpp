#include "support/binomial.hpp"

#include <algorithm>
#include <cmath>

#include "support/expects.hpp"

namespace jamelect {

namespace {

thread_local BinomialRegimeCounts t_regime_counts;

std::uint64_t binomial_small_n(std::uint64_t n, double p, Rng& rng) {
  std::uint64_t k = 0;
  for (std::uint64_t i = 0; i < n; ++i) k += rng.bernoulli(p) ? 1 : 0;
  return k;
}

/// CDF inversion: walk the pmf from k = 0 upward using the recurrence
/// P(k+1) = P(k) * (n-k)/(k+1) * p/(1-p). Intended for np <= ~30 where
/// the walk terminates quickly; P(0) = (1-p)^n is computed in log space
/// to avoid underflow at large n.
std::uint64_t binomial_inversion(std::uint64_t n, double p, Rng& rng) {
  const double nd = static_cast<double>(n);
  const double log_p0 = nd * std::log1p(-p);
  double pmf = std::exp(log_p0);
  const double odds = p / (1.0 - p);
  double cdf = pmf;
  const double u = rng.uniform();
  std::uint64_t k = 0;
  while (u > cdf && k < n) {
    pmf *= (nd - static_cast<double>(k)) / (static_cast<double>(k) + 1.0) * odds;
    cdf += pmf;
    ++k;
    // pmf can underflow to 0 in the far tail before cdf reaches u due
    // to rounding; bail out at the (astronomically unlikely) boundary.
    if (pmf <= 0.0) break;
  }
  return k;
}

/// Stirling-series tail of log(k!) beyond the leading terms, evaluated
/// at x (with x2 = x*x): the BTPE paper's nested polynomial form.
double stirling_tail(double x, double x2) {
  return (13860.0 - (462.0 - (132.0 - (99.0 - 140.0 / x2) / x2) / x2) / x2) /
         x / 166320.0;
}

/// BTPE — Binomial Triangle-Parallelogram-Exponential rejection
/// (Kachitvichyanukul & Schmeiser, CACM 1988). The proposal density is
/// a triangle around the mode flanked by a parallelogram and two
/// exponential tails; acceptance compares against the EXACT pmf ratio
/// f(y)/f(mode), either via the multiplicative recurrence (near the
/// mode) or via a squeeze plus a Stirling-corrected log test (far
/// tails). Requires p <= 1/2 and n*p >= ~30 so the mode region is wide
/// enough for the triangle geometry.
std::uint64_t binomial_btpe(std::uint64_t n, double p, Rng& rng) {
  const double nd = static_cast<double>(n);
  const double r = p;
  const double q = 1.0 - r;
  const double nrq = nd * r * q;
  const double fm = nd * r + r;
  const double m = std::floor(fm);  // the mode of the pmf
  // Geometry of the four proposal regions.
  const double p1 = std::floor(2.195 * std::sqrt(nrq) - 4.6 * q) + 0.5;
  const double xm = m + 0.5;
  const double xl = xm - p1;
  const double xr = xm + p1;
  const double c = 0.134 + 20.5 / (15.3 + m);
  double slope = (fm - xl) / (fm - xl * r);
  const double laml = slope * (1.0 + 0.5 * slope);
  slope = (xr - fm) / (xr * q);
  const double lamr = slope * (1.0 + 0.5 * slope);
  const double p2 = p1 * (1.0 + 2.0 * c);
  const double p3 = p2 + c / laml;
  const double p4 = p3 + c / lamr;

  for (;;) {
    const double u = rng.uniform() * p4;
    double v = rng.uniform();
    double y;
    if (u <= p1) {
      // Triangular core: accept immediately.
      y = std::floor(xm - p1 * v + u);
      return static_cast<std::uint64_t>(y);
    }
    if (u <= p2) {
      // Parallelogram above the triangle.
      const double x = xl + (u - p1) / c;
      v = v * c + 1.0 - std::abs(xm - x) / p1;
      if (v > 1.0 || v <= 0.0) continue;
      y = std::floor(x);
    } else if (u <= p3) {
      // Left exponential tail.
      y = std::floor(xl + std::log(v) / laml);
      if (y < 0.0) continue;
      v *= (u - p2) * laml;
    } else {
      // Right exponential tail.
      y = std::floor(xr - std::log(v) / lamr);
      if (y > nd) continue;
      v *= (u - p3) * lamr;
    }

    // Accept y iff v <= f(y)/f(m).
    const double k = std::abs(y - m);
    if (k <= 20.0 || k >= nrq / 2.0 - 1.0) {
      // Near the mode (or in the extreme tail where the recurrence is
      // short): evaluate the ratio exactly by the recurrence.
      const double s = r / q;
      const double aa = s * (nd + 1.0);
      double f = 1.0;
      if (m < y) {
        for (double i = m + 1.0; i <= y; i += 1.0) f *= (aa / i - s);
      } else if (m > y) {
        for (double i = y + 1.0; i <= m; i += 1.0) f /= (aa / i - s);
      }
      if (v <= f) return static_cast<std::uint64_t>(y);
      continue;
    }
    // Squeeze: cheap bounds on log(f(y)/f(m)) before the full test.
    const double rho =
        (k / nrq) * ((k * (k / 3.0 + 0.625) + 1.0 / 6.0) / nrq + 0.5);
    const double t = -k * k / (2.0 * nrq);
    const double alv = std::log(v);
    if (alv < t - rho) return static_cast<std::uint64_t>(y);
    if (alv > t + rho) continue;
    // Final exact test: log(f(y)/f(m)) via Stirling-corrected factorials.
    const double x1 = y + 1.0;
    const double f1 = m + 1.0;
    const double z = nd + 1.0 - m;
    const double w = nd - y + 1.0;
    const double target =
        xm * std::log(f1 / x1) + (nd - m + 0.5) * std::log(z / w) +
        (y - m) * std::log(w * r / (x1 * q)) + stirling_tail(f1, f1 * f1) +
        stirling_tail(z, z * z) + stirling_tail(x1, x1 * x1) +
        stirling_tail(w, w * w);
    if (alv <= target) return static_cast<std::uint64_t>(y);
  }
}

}  // namespace

std::uint64_t binomial_sample(std::uint64_t n, double p, Rng& rng) {
  JAMELECT_EXPECTS(p >= 0.0 && p <= 1.0);
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - binomial_sample(n, 1.0 - p, rng);
  if (n <= 128) {
    ++t_regime_counts.loop;
    return binomial_small_n(n, p, rng);
  }
  const double mean = static_cast<double>(n) * p;
  if (mean <= 30.0) {
    ++t_regime_counts.inversion;
    return binomial_inversion(n, p, rng);
  }
  ++t_regime_counts.btpe;
  return binomial_btpe(n, p, rng);
}

const BinomialRegimeCounts& binomial_regime_counts() noexcept {
  return t_regime_counts;
}

}  // namespace jamelect
