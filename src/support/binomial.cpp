#include "support/binomial.hpp"

#include <algorithm>
#include <cmath>

#include "support/expects.hpp"

namespace jamelect {

namespace {

std::uint64_t binomial_small_n(std::uint64_t n, double p, Rng& rng) {
  std::uint64_t k = 0;
  for (std::uint64_t i = 0; i < n; ++i) k += rng.bernoulli(p) ? 1 : 0;
  return k;
}

/// CDF inversion: walk the pmf from k = 0 upward using the recurrence
/// P(k+1) = P(k) * (n-k)/(k+1) * p/(1-p). Intended for np <= ~32 where
/// the walk terminates quickly; P(0) = (1-p)^n is computed in log space
/// to avoid underflow at large n.
std::uint64_t binomial_inversion(std::uint64_t n, double p, Rng& rng) {
  const double nd = static_cast<double>(n);
  const double log_p0 = nd * std::log1p(-p);
  double pmf = std::exp(log_p0);
  const double odds = p / (1.0 - p);
  double cdf = pmf;
  const double u = rng.uniform();
  std::uint64_t k = 0;
  while (u > cdf && k < n) {
    pmf *= (nd - static_cast<double>(k)) / (static_cast<double>(k) + 1.0) * odds;
    cdf += pmf;
    ++k;
    // pmf can underflow to 0 in the far tail before cdf reaches u due
    // to rounding; bail out at the (astronomically unlikely) boundary.
    if (pmf <= 0.0) break;
  }
  return k;
}

std::uint64_t binomial_normal(std::uint64_t n, double p, Rng& rng) {
  const double nd = static_cast<double>(n);
  const double mean = nd * p;
  const double sd = std::sqrt(mean * (1.0 - p));
  // Box-Muller from two uniforms.
  const double u1 = std::max(rng.uniform(), 1e-300);
  const double u2 = rng.uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double draw = std::round(mean + sd * z);
  return static_cast<std::uint64_t>(std::clamp(draw, 0.0, nd));
}

}  // namespace

std::uint64_t binomial_sample(std::uint64_t n, double p, Rng& rng) {
  JAMELECT_EXPECTS(p >= 0.0 && p <= 1.0);
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - binomial_sample(n, 1.0 - p, rng);
  if (n <= 128) return binomial_small_n(n, p, rng);
  const double mean = static_cast<double>(n) * p;
  if (mean <= 32.0) return binomial_inversion(n, p, rng);
  return binomial_normal(n, p, rng);
}

}  // namespace jamelect
