// Binomial(n, p) sampling for the class-compressed simulation engines.
//
// Regimes (chosen for exactness where it matters and speed where the
// population is huge):
//   * n <= 128            — direct Bernoulli loop (exact);
//   * mean <= 32          — CDF inversion from the mode-0 side using
//                           log-space recurrence (exact to double);
//   * otherwise           — normal approximation with continuity
//                           correction, clamped to [0, n] (error
//                           O(1/sqrt(mean)), negligible for the
//                           channel-category decisions it feeds, and
//                           statistically validated in the tests).
#pragma once

#include <cstdint>

#include "support/rng.hpp"

namespace jamelect {

/// Draws k ~ Binomial(n, p). Requires p in [0, 1].
[[nodiscard]] std::uint64_t binomial_sample(std::uint64_t n, double p, Rng& rng);

}  // namespace jamelect
