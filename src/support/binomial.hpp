// Binomial(n, p) sampling for the cohort/class-compressed simulation
// engines.
//
// Every regime is exact (to double-precision pmf arithmetic) — there is
// no normal-approximation fallback anywhere:
//   * n <= 128            — direct Bernoulli loop;
//   * mean <= 30          — CDF inversion from k = 0 using the
//                           log-space pmf recurrence;
//   * otherwise           — BTPE (Kachitvichyanukul & Schmeiser 1988),
//                           a triangle/parallelogram/exponential-tail
//                           rejection sampler whose acceptance test
//                           evaluates the exact pmf ratio, so the
//                           output law is Binomial(n, p) itself. O(1)
//                           expected draws per sample at any mean.
// p > 1/2 is reflected through k -> n - k before dispatch.
#pragma once

#include <cstdint>

#include "support/rng.hpp"

namespace jamelect {

/// Draws k ~ Binomial(n, p). Requires p in [0, 1].
[[nodiscard]] std::uint64_t binomial_sample(std::uint64_t n, double p, Rng& rng);

/// Per-thread tally of which sampling regime binomial_sample() has
/// dispatched to on this thread. Monotone over the thread's lifetime;
/// layers with telemetry access (the sim engines) emit watermark deltas
/// into the metrics registry as binom.regime.{loop,inversion,btpe} —
/// support itself stays free of the obs dependency.
struct BinomialRegimeCounts {
  std::uint64_t loop = 0;       ///< n <= 128 Bernoulli-loop dispatches
  std::uint64_t inversion = 0;  ///< mean <= 30 CDF-inversion dispatches
  std::uint64_t btpe = 0;       ///< BTPE rejection dispatches
};

/// This thread's running regime tally (reference stays valid for the
/// thread's lifetime). A reflected draw (p > 1/2) counts once, under
/// the regime the reflected probability dispatches to.
[[nodiscard]] const BinomialRegimeCounts& binomial_regime_counts() noexcept;

}  // namespace jamelect
