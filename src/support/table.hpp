// Minimal table builder: the benches and examples print paper-style
// result tables in aligned ASCII, CSV or Markdown.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace jamelect {

/// A rectangular table of strings with typed cell setters.
/// Usage:
///   Table t({"n", "slots", "slots/log2(n)"});
///   t.row() << n << mean << ratio;
///   t.print_ascii(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Row proxy: stream values into the current row.
  class RowBuilder {
   public:
    RowBuilder& operator<<(const std::string& v);
    RowBuilder& operator<<(const char* v);
    RowBuilder& operator<<(std::int64_t v);
    RowBuilder& operator<<(std::uint64_t v);
    RowBuilder& operator<<(int v);
    RowBuilder& operator<<(unsigned v);
    RowBuilder& operator<<(double v);

   private:
    friend class Table;
    explicit RowBuilder(std::vector<std::string>& row) : row_(row) {}
    std::vector<std::string>& row_;
  };

  /// Starts a new row and returns a builder for it. Cells beyond the
  /// header count are rejected at print time.
  [[nodiscard]] RowBuilder row();

  /// Number of significant digits used for doubles (default 4).
  void set_precision(int digits);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::string& cell(std::size_t r, std::size_t c) const;

  void print_ascii(std::ostream& out) const;
  void print_csv(std::ostream& out) const;
  void print_markdown(std::ostream& out) const;

  /// Formats a double with the table's precision (exposed so callers
  /// can pre-format composite cells like "12.3 ± 0.4").
  [[nodiscard]] std::string format(double v) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int precision_ = 4;
};

}  // namespace jamelect
