// Numerically careful math helpers for slot-level channel simulation.
//
// The probabilities the simulator needs —
//   P[Null]      = (1-p)^n
//   P[Single]    = n·p·(1-p)^(n-1)
//   P[Collision] = 1 - P[Null] - P[Single]
// — involve (1-p)^n for p as small as 2^-64 and n up to 2^22, so naive
// pow() evaluation loses all precision. Everything here routes through
// log1p/expm1.
#pragma once

#include <cmath>
#include <cstdint>

#include "support/expects.hpp"

namespace jamelect {

/// 2^e for e in [0, 63].
[[nodiscard]] constexpr std::uint64_t pow2_u64(unsigned e) {
  JAMELECT_EXPECTS(e < 64);
  return std::uint64_t{1} << e;
}

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr unsigned floor_log2(std::uint64_t x) {
  JAMELECT_EXPECTS(x >= 1);
  unsigned r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// ceil(log2(x)) for x >= 1.
[[nodiscard]] constexpr unsigned ceil_log2(std::uint64_t x) {
  JAMELECT_EXPECTS(x >= 1);
  const unsigned f = floor_log2(x);
  return (x == (std::uint64_t{1} << f)) ? f : f + 1;
}

/// True iff x is a power of two (x >= 1).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) {
  return x >= 1 && (x & (x - 1)) == 0;
}

/// log2 of a positive double (thin wrapper, asserts domain).
[[nodiscard]] inline double log2d(double x) {
  JAMELECT_EXPECTS(x > 0.0);
  return std::log2(x);
}

/// Channel-outcome probabilities for a slot in which each of `n`
/// stations independently transmits with probability `p`.
struct SlotProbabilities {
  double null;       ///< P[no transmitter]
  double single;     ///< P[exactly one transmitter]
  double collision;  ///< P[two or more transmitters]
};

/// Computes SlotProbabilities stably for any n >= 0, p in [0, 1].
[[nodiscard]] SlotProbabilities slot_probabilities(std::uint64_t n, double p);

/// (1-p)^n computed stably.
[[nodiscard]] double pow_one_minus(double p, std::uint64_t n);

/// The transmission probability used by Broadcast(u): 2^-u, clamped to
/// [0,1] for u >= 0. u is a real number in LESK (increments of eps/8).
[[nodiscard]] double transmit_probability(double u);

/// Natural log and log2 convenience for integers.
[[nodiscard]] inline double ln(double x) {
  JAMELECT_EXPECTS(x > 0.0);
  return std::log(x);
}

/// Saturating double→slot-count conversion (rounds up, clamps at
/// int64 max). Used when theory formulas produce time budgets.
[[nodiscard]] std::int64_t ceil_to_slots(double x);

}  // namespace jamelect
