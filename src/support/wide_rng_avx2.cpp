// AVX2 backend for WideXoshiro's group operations. This TU (and the
// sim-side batch_wide_avx2.cpp) is the only code built with -mavx2;
// everything else stays at the baseline ISA so the binary runs on
// non-AVX2 machines, where active_wide_isa() never routes here.
#include <cstddef>
#include <cstdint>

#include "support/wide_rng_step.hpp"

#if !defined(__AVX2__)
#error "wide_rng_avx2.cpp must be compiled with -mavx2"
#endif

namespace jamelect::wide_detail {

void uniform_groups_avx2(std::uint64_t* s0, std::uint64_t* s1,
                         std::uint64_t* s2, std::uint64_t* s3,
                         std::size_t groups, double* out) noexcept {
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t i = g * 4;
    __m256i v0 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(s0 + i));
    __m256i v1 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(s1 + i));
    __m256i v2 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(s2 + i));
    __m256i v3 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(s3 + i));
    const __m256i x = step4_avx2(v0, v1, v2, v3);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(s0 + i), v0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(s1 + i), v1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(s2 + i), v2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(s3 + i), v3);
    _mm256_storeu_pd(out + i, to_uniform4_avx2(x));
  }
}

void uniform_groups2_avx2(std::uint64_t* s0, std::uint64_t* s1,
                          std::uint64_t* s2, std::uint64_t* s3,
                          std::size_t groups, double* out_u,
                          double* out_v) noexcept {
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t i = g * 4;
    __m256i v0 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(s0 + i));
    __m256i v1 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(s1 + i));
    __m256i v2 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(s2 + i));
    __m256i v3 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(s3 + i));
    const __m256i xu = step4_avx2(v0, v1, v2, v3);
    const __m256i xv = step4_avx2(v0, v1, v2, v3);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(s0 + i), v0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(s1 + i), v1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(s2 + i), v2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(s3 + i), v3);
    _mm256_storeu_pd(out_u + i, to_uniform4_avx2(xu));
    _mm256_storeu_pd(out_v + i, to_uniform4_avx2(xv));
  }
}

void uniform_masked_avx2(std::uint64_t* s0, std::uint64_t* s1,
                         std::uint64_t* s2, std::uint64_t* s3,
                         std::size_t groups, const std::uint8_t* mask,
                         double* out) noexcept {
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t i = g * 4;
    const bool m0 = mask[i] != 0, m1 = mask[i + 1] != 0;
    const bool m2 = mask[i + 2] != 0, m3 = mask[i + 3] != 0;
    if (m0 && m1 && m2 && m3) {
      __m256i v0 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(s0 + i));
      __m256i v1 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(s1 + i));
      __m256i v2 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(s2 + i));
      __m256i v3 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(s3 + i));
      const __m256i x = step4_avx2(v0, v1, v2, v3);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(s0 + i), v0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(s1 + i), v1);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(s2 + i), v2);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(s3 + i), v3);
      _mm256_storeu_pd(out + i, to_uniform4_avx2(x));
      continue;
    }
    if (!(m0 || m1 || m2 || m3)) continue;
    // Partial group: advance each masked lane scalar. The scalar step
    // is bit-identical to the vector step, so draw values do not
    // depend on which path a lane took.
    for (std::size_t k = i; k < i + 4; ++k) {
      if (mask[k] != 0) out[k] = to_uniform(step1(s0[k], s1[k], s2[k], s3[k]));
    }
  }
}

}  // namespace jamelect::wide_detail
