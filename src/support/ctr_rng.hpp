// AesCtrRng — counter-based pseudo-random generation in the style of
// Salmon et al., "Parallel random numbers: as easy as 1, 2, 3"
// (SC'11): draw j of stream s under run seed q is AES-128(key(q),
// s || j), a pure function of (seed, stream, counter).
//
// Why a second backend next to xoshiro256**: the sequential engines
// derive per-trial streams by walking `Rng::child` chains, which is
// cheap but *stateful* — a lane's position depends on how many draws
// came before it. A counter generator has no position at all: any
// trial's stream, and any offset within it, is addressable in O(1),
// so chunking, thread count, lane width, and work-stealing order can
// change freely without touching a single random draw. That is the
// property the multi-core wide-batch orchestrator (sim/montecarlo.cpp)
// and the sweep service's result-cache contract rely on.
//
// Keying: the 128-bit cipher key is expanded from the 64-bit run seed
// via SplitMix64 (make_aes_key); the plaintext block is the little-
// endian pair (stream, counter), with stream = absolute trial index on
// the simulation path. Draw = low 64 bits of the ciphertext; uniform
// conversion is the exact `(x >> 11) * 2^-53` of Rng::uniform, and
// below()/bernoulli() reproduce Rng's algorithms verbatim so engine
// code is backend-agnostic.
//
// Backends: AES-NI (ctr_rng_aesni.cpp, the only support TU built
// -maes, compile-gated by JAMELECT_AESNI) and a portable software
// AES-128 (encrypt-only, table S-box) producing bit-identical blocks.
// Selection mirrors the wide-RNG dispatch: resolved once per process
// from compile support, cpuid, and the JAMELECT_FORCE_SOFT_AES
// environment override; tests/ctr_rng_test.cpp locks the backends to
// each other and to the FIPS-197 Appendix C vector.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "support/expects.hpp"
#include "support/rng.hpp"
#include "support/wide_rng.hpp"

namespace jamelect {

enum class AesIsa : std::uint8_t {
  kSoft = 0,   ///< portable software AES-128 (encrypt-only)
  kAesni = 1,  ///< hardware AES-NI rounds
};

/// The AES backend this process uses: kAesni when the binary was built
/// with -maes support, the CPU reports the `aes` feature, and
/// JAMELECT_FORCE_SOFT_AES is unset (or "0"); kSoft otherwise.
/// Resolved on first call, then cached.
[[nodiscard]] AesIsa active_aes_isa() noexcept;

/// True iff the AES-NI backend is usable in this binary on this CPU
/// (ignores the JAMELECT_FORCE_SOFT_AES override).
[[nodiscard]] bool aesni_supported() noexcept;

/// Telemetry name of a backend: "aesni" / "soft".
[[nodiscard]] const char* aes_isa_name(AesIsa isa) noexcept;

/// Test hook: pin active_aes_isa() to `isa` for the current process.
/// Requires aesni_supported() when pinning kAesni. Not safe against
/// concurrently running generators.
void set_aes_isa_for_testing(AesIsa isa);

/// Test hook: drop the pin/cache; the next active_aes_isa() call
/// re-resolves from the environment and cpuid.
void reset_aes_isa_for_testing() noexcept;

/// Expanded AES-128 key schedule: 11 round keys of 16 bytes, in the
/// byte order of FIPS-197. Plain bytes so both backends (and any SIMD
/// width) load from the same source of truth.
struct AesKey {
  alignas(16) std::array<std::uint8_t, 176> round_keys;
};

/// FIPS-197 key expansion of a 16-byte AES-128 cipher key.
[[nodiscard]] AesKey expand_aes_key(
    const std::array<std::uint8_t, 16>& cipher_key) noexcept;

/// Derives the run cipher key from a 64-bit seed: two SplitMix64 words,
/// little-endian, expanded. One key per Monte-Carlo run; every trial
/// stream lives under it.
[[nodiscard]] AesKey make_aes_key(std::uint64_t seed) noexcept;

/// out[i] = low 64 bits (little-endian) of AES-128_key(streams[i] ||
/// counters[i]), with the plaintext block holding both u64s
/// little-endian. The workhorse shared by the scalar and wide
/// generators; `isa` picks the backend (callers cache it once so the
/// dispatch atomic is off the hot path).
void aes_ctr_blocks(AesIsa isa, const AesKey& key,
                    const std::uint64_t* streams,
                    const std::uint64_t* counters, std::size_t n,
                    std::uint64_t* out) noexcept;

namespace ctr_detail {

/// Portable AES-128 single-block encrypt (FIPS-197, encrypt-only).
void encrypt_block_soft(const AesKey& key, const std::uint8_t in[16],
                        std::uint8_t out[16]) noexcept;

#if defined(JAMELECT_AESNI)
/// Implemented in ctr_rng_aesni.cpp (the only support TU built -maes);
/// interleaves 4 blocks to cover the aesenc latency.
void encrypt_blocks_aesni(const AesKey& key, const std::uint8_t* in,
                          std::uint8_t* out, std::size_t nblocks) noexcept;
#endif

}  // namespace ctr_detail

/// Scalar counter-based generator for one stream. Satisfies
/// std::uniform_random_bit_generator; mirrors the Rng distribution
/// façade (uniform / bernoulli / below) bit-for-bit in algorithm so the
/// lane engines template over either. Draw j is a pure function of
/// (key, stream, j): seek(j) is O(1) and draws are prefetched in small
/// blocks purely for AES pipelining — buffering never changes values.
class AesCtrRng {
 public:
  using result_type = std::uint64_t;

  AesCtrRng(const AesKey& key, std::uint64_t stream) noexcept
      : key_(key), stream_(stream) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  [[nodiscard]] std::uint64_t stream() const noexcept { return stream_; }

  /// Counter of the next draw (counters wrap mod 2^64).
  [[nodiscard]] std::uint64_t position() const noexcept {
    return next_ - (len_ - pos_);
  }

  /// O(1) reposition: the next draw is draw `counter` of this stream.
  void seek(std::uint64_t counter) noexcept {
    next_ = counter;
    pos_ = len_ = 0;
  }

  result_type operator()() noexcept {
    if (pos_ == len_) refill();
    return buf_[pos_++];
  }

  /// Uniform double in [0, 1); exact formula of Rng::uniform.
  [[nodiscard]] double uniform() noexcept {
    return wide_detail::to_uniform((*this)());
  }

  /// Bernoulli draw; consumes a draw only for p in (0, 1), like Rng.
  [[nodiscard]] bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Uniform integer in [0, bound); the exact mask/rejection algorithm
  /// of Rng::below.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) {
    JAMELECT_EXPECTS(bound > 0);
    if ((bound & (bound - 1)) == 0) return (*this)() & (bound - 1);
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() -
        std::numeric_limits<std::uint64_t>::max() % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r < limit) return r % bound;
    }
  }

 private:
  static constexpr std::size_t kBuffer = 4;

  void refill() noexcept {
    std::uint64_t streams[kBuffer];
    std::uint64_t counters[kBuffer];
    for (std::size_t i = 0; i < kBuffer; ++i) {
      streams[i] = stream_;
      counters[i] = next_ + i;  // wraps mod 2^64 by design
    }
    aes_ctr_blocks(isa_, key_, streams, counters, kBuffer, buf_);
    next_ += kBuffer;
    pos_ = 0;
    len_ = kBuffer;
  }

  AesKey key_;
  std::uint64_t stream_;
  std::uint64_t next_ = 0;  ///< first counter not yet in buf_
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
  std::uint64_t buf_[kBuffer] = {};
  AesIsa isa_ = active_aes_isa();
};

/// SoA multi-stream counter generator: the wide-plane counterpart of
/// WideXoshiro with the same lane/padding/group conventions, so the
/// wide batch engines consume either through one template. Lane k
/// seeded with seed_lane(k, s) produces the EXACT stream of
/// AesCtrRng(key, s); state per lane is just (stream id, counter), so
/// move_lane is two word copies and a jammed slot's discarded draws
/// are counter increments with no cipher work at all (skip_groups).
class WideAesCtr {
 public:
  WideAesCtr(const AesKey& key, std::size_t lanes)
      : key_(key),
        lanes_(lanes),
        padded_((lanes + kWideLanes - 1) / kWideLanes * kWideLanes),
        stream_(padded_, 0),
        ctr_(padded_, 0),
        scratch_s_(padded_),
        scratch_c_(padded_),
        scratch_o_(padded_) {
    JAMELECT_EXPECTS(lanes >= 1);
  }

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }
  [[nodiscard]] std::size_t padded_lanes() const noexcept { return padded_; }

  /// (Re)binds one lane to `stream`, rewound to counter 0.
  void seed_lane(std::size_t lane, std::uint64_t stream) noexcept {
    stream_[lane] = stream;
    ctr_[lane] = 0;
  }

  /// One draw of `lane`; bit-identical to the lane's AesCtrRng twin.
  [[nodiscard]] std::uint64_t next_lane(std::size_t lane) noexcept {
    std::uint64_t out;
    aes_ctr_blocks(isa_, key_, &stream_[lane], &ctr_[lane], 1, &out);
    ++ctr_[lane];
    return out;
  }

  /// Uniform double in [0, 1); bit-identical to AesCtrRng::uniform.
  [[nodiscard]] double uniform_lane(std::size_t lane) noexcept {
    return wide_detail::to_uniform(next_lane(lane));
  }

  /// Uniform integer in [0, bound); exact algorithm of Rng::below.
  [[nodiscard]] std::uint64_t below_lane(std::size_t lane,
                                         std::uint64_t bound) {
    JAMELECT_EXPECTS(bound > 0);
    if ((bound & (bound - 1)) == 0) return next_lane(lane) & (bound - 1);
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() -
        std::numeric_limits<std::uint64_t>::max() % bound;
    for (;;) {
      const std::uint64_t r = next_lane(lane);
      if (r < limit) return r % bound;
    }
  }

  /// Copies lane `src`'s stream position onto lane `dst` (swap-remove
  /// compaction). `src` is left untouched.
  void move_lane(std::size_t dst, std::size_t src) noexcept {
    stream_[dst] = stream_[src];
    ctr_[dst] = ctr_[src];
  }

  /// Advances lanes [0, groups * kWideLanes) one draw each, writing
  /// lane k's uniform to out[k]. Requires groups * kWideLanes <=
  /// padded_lanes().
  void uniform_groups(std::size_t groups, double* out) noexcept;

  /// Advances ONLY the lanes with mask[k] != 0 among the first
  /// groups * kWideLanes lanes, writing their uniforms to out[k];
  /// unmasked lanes keep their counter and their out slot.
  void uniform_masked(std::size_t groups, const std::uint8_t* mask,
                      double* out) noexcept;

  /// Two consecutive draws per lane: lane k's next uniform to out_u[k],
  /// the one after to out_v[k]. Bit-identical to two uniform_groups
  /// calls by counter-mode construction; the cipher work is the same
  /// either way, so this just mirrors WideXoshiro's fused entry point.
  void uniform_groups2(std::size_t groups, double* out_u,
                       double* out_v) noexcept {
    uniform_groups(groups, out_u);
    uniform_groups(groups, out_v);
  }

  /// Discards one draw from each of the first groups * kWideLanes
  /// lanes: pure counter increments, no cipher work. Bit-identical to
  /// drawing and ignoring the results (the CTR payoff on jammed slots).
  void skip_groups(std::size_t groups) noexcept {
    const std::size_t n = groups * kWideLanes;
    for (std::size_t k = 0; k < n; ++k) ++ctr_[k];
  }

 private:
  AesKey key_;
  std::size_t lanes_;
  std::size_t padded_;
  AesIsa isa_ = active_aes_isa();
  std::vector<std::uint64_t> stream_;
  std::vector<std::uint64_t> ctr_;
  std::vector<std::uint64_t> scratch_s_;  ///< compacted streams (masked path)
  std::vector<std::uint64_t> scratch_c_;  ///< compacted counters
  std::vector<std::uint64_t> scratch_o_;  ///< raw draw output
};

}  // namespace jamelect
