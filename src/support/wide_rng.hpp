// WideXoshiro — W parallel xoshiro256** streams in structure-of-arrays
// layout, advanced one SIMD group at a time.
//
// The batch engine (sim/batch.cpp) keeps one Rng per lane; its inner
// loop is therefore W independent scalar engine steps per slot. This
// class stores the same 256-bit states as four parallel planes of
// W x u64 so a single vector rotl/xor/shift sequence advances every
// lane at once. Lane k of a WideXoshiro seeded with seed_lane(k, s)
// produces the EXACT output stream of Xoshiro256StarStar(s) — same
// SplitMix64 seed expansion, same state transition, and uniform draws
// use the exact `(x >> 11) * 2^-53` conversion of Rng::uniform — so the
// wide engines inherit the batch engine's bit-identity contract
// unchanged (tests/wide_rng_test.cpp locks this down per backend).
//
// Backends: one AVX2 path (256-bit vectors, four u64 lanes) and one
// portable 4-wide scalar-unrolled path. The group width is 4 for BOTH,
// so grouping, padding, and results never depend on the dispatch
// decision. Selection is per process: active_wide_isa() resolves once
// from compile-time support, cpuid, and the JAMELECT_FORCE_SCALAR
// environment override.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "support/expects.hpp"
#include "support/rng.hpp"
#include "support/wide_rng_step.hpp"

namespace jamelect {

/// Lanes advanced per SIMD group. Fixed at 4 for every backend so that
/// forcing the scalar path changes throughput, never results.
inline constexpr std::size_t kWideLanes = 4;

enum class WideIsa : std::uint8_t {
  kScalar4 = 0,  ///< portable 4-wide scalar-unrolled fallback
  kAvx2 = 1,     ///< 256-bit AVX2 vectors
};

/// The backend the wide engines use in this process: kAvx2 when the
/// binary was built with AVX2 support, the CPU reports the feature, and
/// JAMELECT_FORCE_SCALAR is unset (or "0") in the environment;
/// kScalar4 otherwise. Resolved on first call, then cached.
[[nodiscard]] WideIsa active_wide_isa() noexcept;

/// True iff the AVX2 backend is usable in this binary on this CPU
/// (ignores the JAMELECT_FORCE_SCALAR override).
[[nodiscard]] bool wide_avx2_supported() noexcept;

/// Telemetry name of a backend: "avx2" / "scalar4".
[[nodiscard]] const char* wide_isa_name(WideIsa isa) noexcept;

/// Test hook: pin active_wide_isa() to `isa` for the current process.
/// Requires wide_avx2_supported() when pinning kAvx2. Not safe against
/// concurrently running wide engines.
void set_wide_isa_for_testing(WideIsa isa);

/// Test hook: drop the pin/cache; the next active_wide_isa() call
/// re-resolves from the environment and cpuid.
void reset_wide_isa_for_testing() noexcept;

class WideXoshiro {
 public:
  /// `lanes` independent streams (>= 1). Internally padded up to a
  /// multiple of kWideLanes; the pad lanes hold valid (all-zero-seeded)
  /// states that group operations advance and callers ignore.
  explicit WideXoshiro(std::size_t lanes)
      : lanes_(lanes),
        padded_((lanes + kWideLanes - 1) / kWideLanes * kWideLanes),
        state_(4 * padded_, 0) {
    JAMELECT_EXPECTS(lanes >= 1);
    for (std::size_t k = 0; k < padded_; ++k) seed_lane(k, 0);
  }

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }
  [[nodiscard]] std::size_t padded_lanes() const noexcept { return padded_; }

  /// State plane i (i in [0, 4)): padded_lanes() consecutive u64 words,
  /// word k belonging to lane k. Exposed so the fused slot primitives
  /// (sim/batch_wide.hpp) can advance states in their own loops.
  [[nodiscard]] std::uint64_t* plane(std::size_t i) noexcept {
    return state_.data() + i * padded_;
  }
  [[nodiscard]] const std::uint64_t* plane(std::size_t i) const noexcept {
    return state_.data() + i * padded_;
  }

  /// (Re)seeds one lane exactly as Xoshiro256StarStar(seed) does.
  void seed_lane(std::size_t lane, std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (std::size_t p = 0; p < 4; ++p) plane(p)[lane] = sm.next();
  }

  /// One scalar step of `lane`; bit-identical to the lane's scalar twin.
  [[nodiscard]] std::uint64_t next_lane(std::size_t lane) noexcept {
    return wide_detail::step1(plane(0)[lane], plane(1)[lane], plane(2)[lane],
                              plane(3)[lane]);
  }

  /// Uniform double in [0, 1); bit-identical to Rng::uniform.
  [[nodiscard]] double uniform_lane(std::size_t lane) noexcept {
    return wide_detail::to_uniform(next_lane(lane));
  }

  /// Uniform integer in [0, bound); the exact mask/rejection algorithm
  /// of Rng::below, so leader draws match the scalar path bit for bit.
  [[nodiscard]] std::uint64_t below_lane(std::size_t lane,
                                         std::uint64_t bound) {
    JAMELECT_EXPECTS(bound > 0);
    if ((bound & (bound - 1)) == 0) return next_lane(lane) & (bound - 1);
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() -
        std::numeric_limits<std::uint64_t>::max() % bound;
    for (;;) {
      const std::uint64_t r = next_lane(lane);
      if (r < limit) return r % bound;
    }
  }

  /// Copies lane `src`'s stream state onto lane `dst` (swap-remove
  /// compaction). `src`'s own state is left untouched.
  void move_lane(std::size_t dst, std::size_t src) noexcept {
    for (std::size_t p = 0; p < 4; ++p) plane(p)[dst] = plane(p)[src];
  }

  /// Advances lanes [0, groups * kWideLanes) one step each and writes
  /// lane k's uniform draw to out[k]. Requires groups * kWideLanes <=
  /// padded_lanes(). Backend per active_wide_isa() at construction.
  void uniform_groups(std::size_t groups, double* out) noexcept;

  /// Advances ONLY the lanes with mask[k] != 0 among the first
  /// groups * kWideLanes lanes, writing their uniforms to out[k];
  /// unmasked lanes keep their stream position and their out slot.
  void uniform_masked(std::size_t groups, const std::uint8_t* mask,
                      double* out) noexcept;

  /// Two consecutive draws per lane in one state pass: lane k's next
  /// uniform goes to out_u[k], the one after to out_v[k]. Bit-identical
  /// to two uniform_groups calls (each lane sees its own stream in
  /// order); fused so the state planes are loaded and stored once.
  void uniform_groups2(std::size_t groups, double* out_u,
                       double* out_v) noexcept;

 private:
  std::size_t lanes_;
  std::size_t padded_;
  WideIsa isa_ = active_wide_isa();
  std::vector<std::uint64_t> state_;
};

}  // namespace jamelect
