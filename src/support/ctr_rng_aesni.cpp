// AES-NI backend for the counter RNG (support/ctr_rng.hpp). This is
// the only support TU compiled with -maes (see the JAMELECT_AESNI gate
// in CMakeLists.txt); callers reach it through aes_ctr_blocks after
// active_aes_isa() has confirmed cpuid support at runtime.
#include "support/ctr_rng.hpp"

#if defined(JAMELECT_AESNI)

#include <wmmintrin.h>

#include <emmintrin.h>

namespace jamelect::ctr_detail {

namespace {

inline __m128i encrypt_one(const __m128i rk[11], __m128i block) noexcept {
  block = _mm_xor_si128(block, rk[0]);
  for (int r = 1; r <= 9; ++r) block = _mm_aesenc_si128(block, rk[r]);
  return _mm_aesenclast_si128(block, rk[10]);
}

}  // namespace

void encrypt_blocks_aesni(const AesKey& key, const std::uint8_t* in,
                          std::uint8_t* out, std::size_t nblocks) noexcept {
  __m128i rk[11];
  for (int r = 0; r < 11; ++r) {
    rk[r] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(key.round_keys.data() + 16 * r));
  }
  std::size_t i = 0;
  // Four blocks in flight: aesenc latency is ~4 cycles at 1/cycle
  // throughput, so independent chains keep the unit busy.
  for (; i + 4 <= nblocks; i += 4) {
    const __m128i* src = reinterpret_cast<const __m128i*>(in + 16 * i);
    __m128i b0 = _mm_xor_si128(_mm_loadu_si128(src + 0), rk[0]);
    __m128i b1 = _mm_xor_si128(_mm_loadu_si128(src + 1), rk[0]);
    __m128i b2 = _mm_xor_si128(_mm_loadu_si128(src + 2), rk[0]);
    __m128i b3 = _mm_xor_si128(_mm_loadu_si128(src + 3), rk[0]);
    for (int r = 1; r <= 9; ++r) {
      b0 = _mm_aesenc_si128(b0, rk[r]);
      b1 = _mm_aesenc_si128(b1, rk[r]);
      b2 = _mm_aesenc_si128(b2, rk[r]);
      b3 = _mm_aesenc_si128(b3, rk[r]);
    }
    __m128i* dst = reinterpret_cast<__m128i*>(out + 16 * i);
    _mm_storeu_si128(dst + 0, _mm_aesenclast_si128(b0, rk[10]));
    _mm_storeu_si128(dst + 1, _mm_aesenclast_si128(b1, rk[10]));
    _mm_storeu_si128(dst + 2, _mm_aesenclast_si128(b2, rk[10]));
    _mm_storeu_si128(dst + 3, _mm_aesenclast_si128(b3, rk[10]));
  }
  for (; i < nblocks; ++i) {
    const __m128i block =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * i),
                     encrypt_one(rk, block));
  }
}

}  // namespace jamelect::ctr_detail

#endif  // JAMELECT_AESNI
