// SlotProbCache — memoized slot_probabilities keyed on the broadcast
// exponent u.
//
// LESK and LESU move u on the {-1, +eps/8} lattice: after any prefix
// of Null/Collision observations, u lies in the small set
// {max(0, u0 - a + b*eps/8)} of lattice points actually visited. A
// long Monte-Carlo run therefore evaluates slot_probabilities(n, 2^-u)
// for only a handful of distinct u values — but the sequential engine
// recomputes the log1p + 2*exp chain every slot. This cache collapses
// that to one open-addressing hash lookup on u's bit pattern.
//
// Bit-identity: entries are computed by the exact same calls the
// aggregate engine makes — p = transmit_probability(u), then
// slot_probabilities(n, p) — so a cached lookup returns bit-identical
// doubles to the uncached path. Keying on the bit pattern (not the
// value) keeps the map exact: distinct doubles never alias. +0.0 and
// -0.0 get separate entries with equal payloads, which is merely a
// wasted slot, never a wrong answer.
//
// The cache is engine-local and unsynchronized; each batch chunk owns
// its own instance (a few dozen entries, rebuilt per chunk in O(us)).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/expects.hpp"
#include "support/math.hpp"

namespace jamelect {

class SlotProbCache {
 public:
  struct Entry {
    double p;         ///< transmit_probability(u)
    double c_null;    ///< P[Null]
    double c_single;  ///< P[Null] + P[Single]  (cumulative)
  };

  /// Cache for a fixed station count n (> 0). Starts with room for
  /// `initial_capacity` entries (rounded up to a power of two).
  explicit SlotProbCache(std::uint64_t n, std::size_t initial_capacity = 64);

  /// Probabilities for a slot where each of n stations transmits w.p.
  /// transmit_probability(u). Fast path: one hash + probe on a hit.
  [[nodiscard]] const Entry& lookup(double u) {
    const std::uint64_t key = std::bit_cast<std::uint64_t>(u);
    std::size_t idx = hash(key) & mask_;
    while (true) {
      const Slot& s = slots_[idx];
      if (s.key == key) return s.entry;
      if (s.key == kEmpty) return insert_slow(u, key);
      idx = (idx + 1) & mask_;
    }
  }

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Total misses (== distinct u values inserted) since construction.
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  struct Slot {
    std::uint64_t key;
    Entry entry;
  };

  // All-ones is the negative-NaN bit pattern; broadcast_u() is never
  // NaN (transmit_probability EXPECTS u >= 0), so it cannot collide
  // with a real key. Crucially it is NOT the -0.0 pattern, which a
  // protocol could legitimately produce.
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  [[nodiscard]] static std::size_t hash(std::uint64_t key) noexcept {
    // splitmix64 finalizer: adjacent lattice points differ in few
    // mantissa bits, so we need real avalanche before masking.
    std::uint64_t x = key;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }

  const Entry& insert_slow(double u, std::uint64_t key);
  void grow();

  std::uint64_t n_;
  std::size_t mask_;  ///< capacity - 1 (capacity is a power of two)
  std::size_t size_ = 0;
  std::uint64_t misses_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace jamelect
