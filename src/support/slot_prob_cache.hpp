// SlotProbCache — memoized slot_probabilities keyed on the broadcast
// exponent u.
//
// LESK and LESU move u on the {-1, +eps/8} lattice: after any prefix
// of Null/Collision observations, u lies in the small set
// {max(0, u0 - a + b*eps/8)} of lattice points actually visited. A
// long Monte-Carlo run therefore evaluates slot_probabilities(n, 2^-u)
// for only a handful of distinct u values — but the sequential engine
// recomputes the log1p + 2*exp chain every slot. This cache collapses
// that to one open-addressing hash lookup on u's bit pattern.
//
// Lattice fast path: when the caller declares the lattice pitch via
// set_lattice_step (LESK: eps/8), lookups additionally consult a small
// direct-mapped table indexed by round(u / step). Steady-state slots —
// and the wide engine's batched lookup_lanes — then cost one multiply,
// one round, and one compare instead of a hash probe per lane; on the
// AVX2 backend lookup_lanes answers whole 4-lane groups with vector
// gathers over the table (slot_prob_cache_avx2.cpp). The
// index is a pure accelerator: every dense slot stores the exact key
// bits and is verified before use, so off-lattice u values (or lattice
// points whose accumulated floating-point drift collides in the same
// bucket) simply fall back to the hash path. Never a wrong answer.
//
// Bit-identity: entries are computed by the exact same calls the
// aggregate engine makes — p = transmit_probability(u), then
// slot_probabilities(n, p), and exp_tx = double(n) * p — so a cached
// lookup returns bit-identical doubles to the uncached path. Keying on
// the bit pattern (not the value) keeps the map exact: distinct
// doubles never alias. +0.0 and -0.0 get separate entries with equal
// payloads, which is merely a wasted slot, never a wrong answer.
//
// The cache is engine-local and unsynchronized; each batch chunk owns
// its own instance (a few dozen entries, rebuilt per chunk in O(us)).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/expects.hpp"
#include "support/math.hpp"

namespace jamelect {

class SlotProbCache {
 public:
  struct Entry {
    double p;         ///< transmit_probability(u)
    double c_null;    ///< P[Null]
    double c_single;  ///< P[Null] + P[Single]  (cumulative)
    double exp_tx;    ///< n * p: the slot's expected transmissions
  };

  /// Cache for a fixed station count n (> 0). Starts with room for
  /// `initial_capacity` entries (rounded up to a power of two).
  explicit SlotProbCache(std::uint64_t n, std::size_t initial_capacity = 64);

  /// Probabilities for a slot where each of n stations transmits w.p.
  /// transmit_probability(u). Fast path: one dense-index compare (when
  /// a lattice is declared) or one hash + probe on a hit. The returned
  /// reference is valid until the next lookup of a *different* u.
  [[nodiscard]] const Entry& lookup(double u) {
    ++lookups_;
    const std::uint64_t key = std::bit_cast<std::uint64_t>(u);
    if (!dense_.empty()) {
      const double qd = u * inv_step_;
      if (qd >= 0.0 && qd < static_cast<double>(kDenseCapacity)) {
        const auto q = static_cast<std::size_t>(qd + 0.5);
        if (q < kDenseCapacity) {
          DenseSlot& d = dense_[q];
          if (d.key == key) {
            ++dense_hits_;
            return d.entry;
          }
          // Miss or bucket held a different key: resolve via the hash
          // map, then (re)install so the next lookup of this u is
          // dense. Last-writer-wins is fine — correctness comes from
          // the key compare above, the bucket only caches.
          const Entry& e = lookup_hash(u, key);
          d.key = key;
          d.entry = e;
          return d.entry;
        }
      }
    }
    return lookup_hash(u, key);
  }

  /// Batched lookup for the SIMD-wide engines: for each of the `count`
  /// lanes, writes Entry{c_null, c_single, exp_tx} for us[k] into the
  /// parallel output arrays. Same entries — and the same counter
  /// deltas — as `count` lookup() calls. When a lattice is declared
  /// and the AVX2 backend is active, whole 4-lane groups are answered
  /// straight from the dense index with vector gathers.
  void lookup_lanes(const double* us, std::size_t count, double* c_null,
                    double* c_single, double* exp_tx);

  /// Declares that u moves on a lattice of `step` (> 0) multiples,
  /// enabling the direct-mapped dense index for u in
  /// [0, step * kDenseCapacity). Purely an accelerator (see file
  /// comment); off-lattice lookups remain correct.
  void set_lattice_step(double step);

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Total lookups since construction.
  [[nodiscard]] std::uint64_t lookups() const noexcept { return lookups_; }
  /// Total misses (== distinct u values inserted) since construction.
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  /// Lookups answered by the dense lattice index (subset of hits).
  [[nodiscard]] std::uint64_t dense_hits() const noexcept {
    return dense_hits_;
  }

  /// Dense lattice index capacity, in lattice points.
  static constexpr std::size_t kDenseCapacity = 1024;

 private:
  struct Slot {
    std::uint64_t key;
    Entry entry;
  };

  struct DenseSlot {
    std::uint64_t key;
    Entry entry;
  };

  // All-ones is the negative-NaN bit pattern; broadcast_u() is never
  // NaN (transmit_probability EXPECTS u >= 0), so it cannot collide
  // with a real key. Crucially it is NOT the -0.0 pattern, which a
  // protocol could legitimately produce.
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  [[nodiscard]] static std::size_t hash(std::uint64_t key) noexcept {
    // splitmix64 finalizer: adjacent lattice points differ in few
    // mantissa bits, so we need real avalanche before masking.
    std::uint64_t x = key;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }

  [[nodiscard]] const Entry& lookup_hash(double u, std::uint64_t key) {
    std::size_t idx = hash(key) & mask_;
    while (true) {
      const Slot& s = slots_[idx];
      if (s.key == key) return s.entry;
      if (s.key == kEmpty) return insert_slow(u, key);
      idx = (idx + 1) & mask_;
    }
  }

  const Entry& insert_slow(double u, std::uint64_t key);
  void grow();

#if defined(JAMELECT_WIDE_AVX2)
  /// AVX2 backend for lookup_lanes: bucket indices, stored keys, and
  /// threshold words all move through vector gathers; any group with an
  /// out-of-range or mismatched lane falls back to lookup() per lane
  /// (which also installs the entry, so the next visit gathers).
  /// Defined in slot_prob_cache_avx2.cpp, compiled with -mavx2;
  /// dispatched only when the CPU reports AVX2 and the dense index is
  /// live. Bit-identical results and counters to the scalar loop.
  void lookup_lanes_avx2(const double* us, std::size_t count, double* c_null,
                         double* c_single, double* exp_tx);
#endif

  std::uint64_t n_;
  std::size_t mask_;  ///< capacity - 1 (capacity is a power of two)
  std::size_t size_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t dense_hits_ = 0;
  double inv_step_ = 0.0;  ///< 1 / lattice step; 0 while no lattice set
  std::vector<Slot> slots_;
  std::vector<DenseSlot> dense_;  ///< empty until set_lattice_step
};

}  // namespace jamelect
