// Fixed-size thread pool with a static-chunked parallel_for.
//
// Monte-Carlo trials are embarrassingly parallel; each trial derives its
// randomness from (seed, trial index), so work distribution never
// affects results (HPC guide: explicit, deterministic parallelism).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace jamelect {

/// A joining, exception-propagating thread pool.
class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs body(i) for i in [0, count), distributing contiguous chunks
  /// across the pool. Blocks until all iterations finish. The first
  /// exception thrown by any iteration is rethrown on the caller.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

 private:
  void submit(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Convenience: a process-wide pool for benches/examples. Lazily
/// constructed; sized from the JAMELECT_THREADS environment variable if
/// set, else hardware concurrency.
[[nodiscard]] ThreadPool& global_pool();

}  // namespace jamelect
