// Fixed-size thread pool with dynamically-chunked parallel_for and
// parallel_reduce.
//
// Monte-Carlo trials are embarrassingly parallel; each trial derives its
// randomness from (seed, trial index), so work distribution never
// affects results (HPC guide: explicit, deterministic parallelism).
// The dispatch layer is allocation-light on purpose: a parallel call
// publishes ONE stack-resident job object and enqueues plain
// function-pointer tasks — no per-chunk std::function allocations —
// and workers pull chunks off a shared atomic cursor, so load imbalance
// between trials self-corrects. The calling thread participates as an
// extra worker instead of blocking idle.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace jamelect {

/// Observer for pool task execution — the hook the telemetry layer
/// (obs/trace_events.hpp) uses to time dispatched tasks. Callbacks run
/// on the executing thread, bracketing one task (= one worker slot's
/// chunk loop of a parallel call); they must be noexcept and cheap.
class PoolTaskObserver {
 public:
  virtual ~PoolTaskObserver() = default;
  virtual void on_task_start(std::size_t worker_slot) noexcept = 0;
  virtual void on_task_end(std::size_t worker_slot) noexcept = 0;
  /// A worker slept `wait_ns` on the task queue before receiving the
  /// task it is about to run. Only measured while an observer is
  /// attached when the wait begins (an observer attached mid-sleep
  /// misses that one wait). Default: ignored.
  virtual void on_worker_idle(std::size_t /*worker_slot*/,
                              std::int64_t /*wait_ns*/) noexcept {}
  /// The calling thread of a parallel call exhausted its own chunks and
  /// blocked `wait_ns` on the completion barrier waiting for straggler
  /// workers — the direct measure of chunk imbalance. Default: ignored.
  virtual void on_caller_wait(std::int64_t /*wait_ns*/) noexcept {}
};

/// A joining, exception-propagating thread pool.
class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Attaches (or detaches, with nullptr) a task observer. The observer
  /// must outlive every parallel call that runs while it is attached;
  /// attach/detach between parallel calls, not during one.
  void set_task_observer(PoolTaskObserver* observer) noexcept {
    task_observer_.store(observer, std::memory_order_release);
  }
  [[nodiscard]] PoolTaskObserver* task_observer() const noexcept {
    return task_observer_.load(std::memory_order_acquire);
  }

  /// Runs body(i) for i in [0, count), distributing chunks dynamically
  /// across the pool (plus the calling thread). Blocks until all
  /// iterations finish. The first exception thrown by any iteration is
  /// rethrown on the caller; iterations in other chunks still run.
  template <class F>
  void parallel_for(std::size_t count, const F& body) {
    struct Job final : ParallelJob {
      const F* f = nullptr;
      void run(std::size_t) override {
        for (;;) {
          const std::size_t begin =
              next.fetch_add(chunk, std::memory_order_relaxed);
          if (begin >= count) return;
          const std::size_t end = std::min(count, begin + chunk);
          for (std::size_t i = begin; i < end; ++i) (*f)(i);
        }
      }
    } job;
    job.f = &body;
    execute(job, count);
  }

  /// Parallel fold: runs body(acc, i) for i in [0, count) where each
  /// participating worker owns a private accumulator seeded from a copy
  /// of `identity`, then merges the per-worker accumulators into
  /// `identity` in worker-slot order via merge(into, std::move(from))
  /// and returns the result. `identity` must therefore be a true
  /// identity element of `merge`. The fold is deterministic whenever
  /// `merge`/`body` are exact and commutative (integer counters, count
  /// maps, multisets that are later sorted); which trials land in which
  /// worker's accumulator is scheduling-dependent.
  template <class Acc, class Body, class Merge>
  [[nodiscard]] Acc parallel_reduce(std::size_t count, Acc identity,
                                    const Body& body, const Merge& merge) {
    if (count == 0) return identity;
    struct Job final : ParallelJob {
      const Body* f = nullptr;
      std::vector<Acc>* accs = nullptr;
      void run(std::size_t slot) override {
        Acc& acc = (*accs)[slot];
        for (;;) {
          const std::size_t begin =
              next.fetch_add(chunk, std::memory_order_relaxed);
          if (begin >= count) return;
          const std::size_t end = std::min(count, begin + chunk);
          for (std::size_t i = begin; i < end; ++i) (*f)(acc, i);
        }
      }
    } job;
    const std::size_t slots = std::min(count, size() + 1);
    std::vector<Acc> accs(slots, identity);
    job.f = &body;
    job.accs = &accs;
    execute(job, count);
    for (Acc& acc : accs) merge(identity, std::move(acc));
    return identity;
  }

 private:
  /// One parallel invocation: lives on the caller's stack for its whole
  /// duration; tasks reference it by plain pointer.
  struct ParallelJob {
    std::size_t count = 0;
    std::size_t chunk = 1;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> pending{0};  ///< enqueued tasks not yet done
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
    std::mutex error_mutex;

    virtual ~ParallelJob() = default;
    /// Pulls chunks off `next` until exhausted; `slot` identifies the
    /// participating worker (for per-worker accumulators).
    virtual void run(std::size_t slot) = 0;
  };

  /// A queued unit of work: plain function pointer + context, no
  /// allocation beyond the queue node.
  struct Task {
    void (*fn)(ParallelJob&, std::size_t) = nullptr;
    ParallelJob* job = nullptr;
    std::size_t slot = 0;
  };

  /// Sizes the job, fans it out over the pool, participates on the
  /// calling thread, waits, and rethrows the first recorded error.
  void execute(ParallelJob& job, std::size_t count);

  /// Trampoline every queued task runs: the job's chunk loop for one
  /// worker slot, with error capture and completion signalling.
  static void run_job_slot(ParallelJob& job, std::size_t slot);

  void enqueue(Task task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<PoolTaskObserver*> task_observer_{nullptr};
};

/// Convenience: a process-wide pool for benches/examples. Lazily
/// constructed; sized from the JAMELECT_THREADS environment variable if
/// set, else hardware concurrency.
[[nodiscard]] ThreadPool& global_pool();

}  // namespace jamelect
