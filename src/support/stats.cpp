#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace jamelect {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::mean() const {
  JAMELECT_EXPECTS(n_ >= 1);
  return mean_;
}

double OnlineStats::variance() const {
  JAMELECT_EXPECTS(n_ >= 2);
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::stderr_mean() const {
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double OnlineStats::min() const {
  JAMELECT_EXPECTS(n_ >= 1);
  return min_;
}

double OnlineStats::max() const {
  JAMELECT_EXPECTS(n_ >= 1);
  return max_;
}

double quantile_sorted(std::span<const double> sorted_values, double q) {
  JAMELECT_EXPECTS(!sorted_values.empty());
  JAMELECT_EXPECTS(q >= 0.0 && q <= 1.0);
  const std::size_t n = sorted_values.size();
  if (n == 1) return sorted_values[0];
  const double pos = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_values[lo] + frac * (sorted_values[hi] - sorted_values[lo]);
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  OnlineStats acc;
  for (double v : sorted) acc.add(v);
  s.mean = acc.mean();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.p75 = quantile_sorted(sorted, 0.75);
  s.p95 = quantile_sorted(sorted, 0.95);
  s.p99 = quantile_sorted(sorted, 0.99);
  if (s.count >= 2) {
    s.stddev = acc.stddev();
    s.ci95_halfwidth = 1.96 * acc.stderr_mean();
  }
  return s;
}

Summary summarize_weighted(
    std::vector<std::pair<double, std::uint64_t>> value_counts) {
  std::erase_if(value_counts, [](const auto& vc) { return vc.second == 0; });
  Summary s;
  std::uint64_t total = 0;
  for (const auto& [v, c] : value_counts) total += c;
  s.count = total;
  if (total == 0) return s;

  std::sort(value_counts.begin(), value_counts.end());

  // Two-pass weighted moments (stable against cancellation).
  double sum = 0.0;
  for (const auto& [v, c] : value_counts) sum += v * static_cast<double>(c);
  const double nd = static_cast<double>(total);
  s.mean = sum / nd;
  double m2 = 0.0;
  for (const auto& [v, c] : value_counts) {
    const double d = v - s.mean;
    m2 += d * d * static_cast<double>(c);
  }

  // Value at 0-based rank r of the expanded sorted multiset.
  std::vector<std::uint64_t> cumulative(value_counts.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < value_counts.size(); ++i) {
    running += value_counts[i].second;
    cumulative[i] = running;
  }
  const auto at_rank = [&](std::uint64_t r) {
    const auto it = std::upper_bound(cumulative.begin(), cumulative.end(), r);
    return value_counts[static_cast<std::size_t>(it - cumulative.begin())]
        .first;
  };
  // Type-7 quantile, matching quantile_sorted() on the expanded array.
  const auto quantile = [&](double q) {
    if (total == 1) return value_counts.front().first;
    const double pos = q * static_cast<double>(total - 1);
    const auto lo = static_cast<std::uint64_t>(pos);
    const std::uint64_t hi = std::min(lo + 1, static_cast<std::uint64_t>(total - 1));
    const double frac = pos - static_cast<double>(lo);
    const double a = at_rank(lo);
    return a + frac * (at_rank(hi) - a);
  };

  s.min = value_counts.front().first;
  s.max = value_counts.back().first;
  s.p25 = quantile(0.25);
  s.median = quantile(0.50);
  s.p75 = quantile(0.75);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  if (total >= 2) {
    s.stddev = std::sqrt(m2 / (nd - 1.0));
    s.ci95_halfwidth = 1.96 * s.stddev / std::sqrt(nd);
  }
  return s;
}

Summary summarize(std::span<const std::int64_t> samples) {
  std::vector<double> d(samples.size());
  std::transform(samples.begin(), samples.end(), d.begin(),
                 [](std::int64_t v) { return static_cast<double>(v); });
  return summarize(std::span<const double>(d));
}

RateInterval wilson_interval(std::size_t successes, std::size_t trials) {
  JAMELECT_EXPECTS(trials >= 1);
  JAMELECT_EXPECTS(successes <= trials);
  constexpr double z = 1.959963984540054;  // 97.5th normal percentile
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  return {phat, std::max(0.0, center - half), std::min(1.0, center + half)};
}

LinearFit fit_line(std::span<const double> x, std::span<const double> y) {
  JAMELECT_EXPECTS(x.size() == y.size());
  JAMELECT_EXPECTS(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  JAMELECT_EXPECTS(denom != 0.0);
  const double slope = (n * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (intercept + slope * x[i]);
    ss_res += e * e;
  }
  const double r2 = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
  return {intercept, slope, r2};
}

}  // namespace jamelect
