#include "support/shutdown.hpp"

#include <csignal>

#include <atomic>

namespace jamelect {

namespace {

std::atomic<bool> g_requested{false};
std::atomic<int> g_signal{0};

extern "C" void jamelect_shutdown_handler(int sig) {
  // Only lock-free atomic stores: the complete async-signal-safe set.
  g_signal.store(sig, std::memory_order_relaxed);
  g_requested.store(true, std::memory_order_relaxed);
}

}  // namespace

bool shutdown_requested() noexcept {
  return g_requested.load(std::memory_order_relaxed);
}

void request_shutdown(int signal) noexcept {
  g_signal.store(signal, std::memory_order_relaxed);
  g_requested.store(true, std::memory_order_relaxed);
}

int shutdown_signal() noexcept {
  return g_signal.load(std::memory_order_relaxed);
}

void clear_shutdown() noexcept {
  g_requested.store(false, std::memory_order_relaxed);
  g_signal.store(0, std::memory_order_relaxed);
}

bool install_shutdown_handlers() noexcept {
  struct sigaction sa = {};
  sa.sa_handler = &jamelect_shutdown_handler;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: blocking accept()/read() in the daemon should return
  // EINTR so its loops re-check shutdown_requested() promptly.
  sa.sa_flags = 0;
  if (sigaction(SIGINT, &sa, nullptr) != 0) return false;
  if (sigaction(SIGTERM, &sa, nullptr) != 0) return false;
  return true;
}

}  // namespace jamelect
