#include "support/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace jamelect {

void Histogram::add(std::int64_t value, std::uint64_t weight) {
  if (weight == 0) return;
  bins_[value] += weight;
  total_ += weight;
}

std::uint64_t Histogram::count(std::int64_t value) const {
  const auto it = bins_.find(value);
  return it == bins_.end() ? 0 : it->second;
}

double Histogram::fraction(std::int64_t value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(value)) / static_cast<double>(total_);
}

std::int64_t Histogram::min_value() const {
  JAMELECT_EXPECTS(!empty());
  return bins_.begin()->first;
}

std::int64_t Histogram::max_value() const {
  JAMELECT_EXPECTS(!empty());
  return bins_.rbegin()->first;
}

std::int64_t Histogram::quantile(double q) const {
  JAMELECT_EXPECTS(!empty());
  JAMELECT_EXPECTS(q > 0.0 && q <= 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (const auto& [value, cnt] : bins_) {
    seen += cnt;
    if (seen >= target) return value;
  }
  return bins_.rbegin()->first;  // unreachable given the invariant
}

double Histogram::mean() const {
  JAMELECT_EXPECTS(!empty());
  double acc = 0.0;
  for (const auto& [value, cnt] : bins_) {
    acc += static_cast<double>(value) * static_cast<double>(cnt);
  }
  return acc / static_cast<double>(total_);
}

void Histogram::merge(const Histogram& other) {
  for (const auto& [value, cnt] : other.bins_) add(value, cnt);
}

std::string Histogram::ascii(std::size_t max_width) const {
  if (empty()) return "(empty)\n";
  std::uint64_t peak = 0;
  for (const auto& [value, cnt] : bins_) peak = std::max(peak, cnt);
  std::ostringstream out;
  for (const auto& [value, cnt] : bins_) {
    const auto width = static_cast<std::size_t>(
        static_cast<double>(cnt) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    out << value << "\t" << cnt << "\t" << std::string(width, '#') << "\n";
  }
  return out.str();
}

}  // namespace jamelect
