// Process-wide cooperative shutdown: one flag, set from SIGINT/SIGTERM
// (or programmatically), polled by long-running loops.
//
// The Monte-Carlo drivers (sim/montecarlo.cpp) check the flag between
// trials/chunks and drain instead of abandoning work mid-slot, so a ^C
// during a million-trial sweep still yields a consistent partial
// McResult (and the sweep daemon can flush manifests and exit 0). The
// flag is a relaxed atomic — async-signal-safe to set from a handler,
// one predictable load to poll — and stays clear unless something
// requests shutdown, so programs that never install the handlers see
// zero behaviour change.
#pragma once

namespace jamelect {

/// True once request_shutdown() ran (from a handler or directly).
[[nodiscard]] bool shutdown_requested() noexcept;

/// Sets the flag. Async-signal-safe; `signal` (0 = programmatic) is
/// retained for shutdown_signal().
void request_shutdown(int signal = 0) noexcept;

/// The signal that triggered the request, or 0 (none / programmatic).
[[nodiscard]] int shutdown_signal() noexcept;

/// Clears the flag (tests; a daemon re-arming after a drained sweep).
void clear_shutdown() noexcept;

/// Installs SIGINT and SIGTERM handlers that call request_shutdown().
/// Idempotent; returns false if sigaction failed. Call once from main —
/// libraries must never install handlers behind a host program's back.
bool install_shutdown_handlers() noexcept;

}  // namespace jamelect
