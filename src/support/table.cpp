#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/expects.hpp"

namespace jamelect {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  JAMELECT_EXPECTS(!headers_.empty());
}

Table::RowBuilder Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return RowBuilder(rows_.back());
}

void Table::set_precision(int digits) {
  JAMELECT_EXPECTS(digits >= 1 && digits <= 17);
  precision_ = digits;
}

const std::string& Table::cell(std::size_t r, std::size_t c) const {
  JAMELECT_EXPECTS(r < rows_.size());
  JAMELECT_EXPECTS(c < rows_[r].size());
  return rows_[r][c];
}

std::string Table::format(double v) const {
  std::ostringstream os;
  os << std::setprecision(precision_) << v;
  return os.str();
}

namespace {
std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}
}  // namespace

Table::RowBuilder& Table::RowBuilder::operator<<(const std::string& v) {
  row_.push_back(v);
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(const char* v) {
  row_.emplace_back(v);
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(std::int64_t v) {
  row_.push_back(std::to_string(v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(std::uint64_t v) {
  row_.push_back(std::to_string(v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(int v) {
  row_.push_back(std::to_string(v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(unsigned v) {
  row_.push_back(std::to_string(v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(double v) {
  row_.push_back(format_double(v, 4));
  return *this;
}

void Table::print_ascii(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    JAMELECT_EXPECTS(r.size() <= headers_.size());
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());
  }
  const auto line = [&] {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out << "+" << std::string(widths[c] + 2, '-');
    }
    out << "+\n";
  };
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      out << "| " << std::setw(static_cast<int>(widths[c])) << std::left << v
          << " ";
    }
    out << "|\n";
  };
  line();
  emit(headers_);
  line();
  for (const auto& r : rows_) emit(r);
  line();
}

namespace {
std::string csv_escape(const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) return v;
  std::string out = "\"";
  for (char ch : v) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& out) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out << ",";
    out << csv_escape(headers_[c]);
  }
  out << "\n";
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) out << ",";
      if (c < r.size()) out << csv_escape(r[c]);
    }
    out << "\n";
  }
}

void Table::print_markdown(std::ostream& out) const {
  out << "|";
  for (const auto& h : headers_) out << " " << h << " |";
  out << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out << "---|";
  out << "\n";
  for (const auto& r : rows_) {
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out << " " << (c < r.size() ? r[c] : std::string{}) << " |";
    }
    out << "\n";
  }
}

}  // namespace jamelect
