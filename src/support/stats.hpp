// Online and batch statistics for Monte-Carlo outcome aggregation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "support/expects.hpp"

namespace jamelect {

/// Welford's online mean/variance accumulator. Numerically stable for
/// long trial streams; mergeable so per-thread accumulators can be
/// combined after a parallel_for.
class OnlineStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel reduction step).
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance; requires count() >= 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean; requires count() >= 2.
  [[nodiscard]] double stderr_mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A complete distilled summary of one metric across trials.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  /// Half-width of the normal-approximation 95% confidence interval of
  /// the mean (1.96 * stderr); 0 when count < 2.
  double ci95_halfwidth = 0.0;
};

/// Quantile with linear interpolation (type-7, the numpy default).
/// `q` in [0,1]; `sorted_values` must be non-empty and ascending.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted_values, double q);

/// Builds a Summary from raw samples (copies and sorts internally).
[[nodiscard]] Summary summarize(std::span<const double> samples);
[[nodiscard]] Summary summarize(std::span<const std::int64_t> samples);

/// Builds a Summary from a sample MULTISET given as value -> count
/// pairs (need not be sorted; zero counts are ignored). Quantiles are
/// the same type-7 interpolation summarize() would produce on the
/// expanded samples, but nothing is expanded: the streaming Monte-Carlo
/// path aggregates millions of integer-valued trials into count maps
/// whose size is the number of DISTINCT values, and summarizes here in
/// O(distinct log distinct). Mean/stddev use a weighted two-pass, so
/// the result is independent of pair order.
[[nodiscard]] Summary summarize_weighted(
    std::vector<std::pair<double, std::uint64_t>> value_counts);

/// Wilson score interval for a Bernoulli success rate: returns
/// {lower, upper} bounds at ~95% confidence for `successes` out of
/// `trials` (trials >= 1). Robust near rates of 0 and 1, which is
/// exactly where our failure-probability experiments live.
struct RateInterval {
  double rate;
  double lower;
  double upper;
};
[[nodiscard]] RateInterval wilson_interval(std::size_t successes, std::size_t trials);

/// Ordinary least squares fit y = a + b*x; returns {a, b, r2}.
/// Used by benches/tests to estimate growth exponents on log-log data.
struct LinearFit {
  double intercept;
  double slope;
  double r2;
};
[[nodiscard]] LinearFit fit_line(std::span<const double> x, std::span<const double> y);

}  // namespace jamelect
