#include "support/thread_pool.hpp"

#include <chrono>
#include <cstdlib>

namespace jamelect {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(Task task) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;  // shutdown races are benign: job is stack-owned
    tasks_.push(task);
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    std::int64_t idle_ns = -1;
    {
      std::unique_lock lock(mutex_);
      const auto ready = [this] { return stopping_ || !tasks_.empty(); };
      // Time the queue wait only when an observer is attached as the
      // wait begins — zero clock reads on the unobserved path.
      if (!ready() &&
          task_observer_.load(std::memory_order_acquire) != nullptr) {
        const auto t0 = std::chrono::steady_clock::now();
        cv_.wait(lock, ready);
        idle_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      } else {
        cv_.wait(lock, ready);
      }
      if (stopping_ && tasks_.empty()) return;
      task = tasks_.front();
      tasks_.pop();
    }
    PoolTaskObserver* obs = task_observer_.load(std::memory_order_acquire);
    if (obs != nullptr && idle_ns >= 0) obs->on_worker_idle(task.slot, idle_ns);
    if (obs != nullptr) obs->on_task_start(task.slot);
    task.fn(*task.job, task.slot);
    if (obs != nullptr) obs->on_task_end(task.slot);
  }
}

void ThreadPool::run_job_slot(ParallelJob& job, std::size_t slot) {
  try {
    job.run(slot);
  } catch (...) {
    std::lock_guard lock(job.error_mutex);
    if (!job.error) job.error = std::current_exception();
  }
  if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard lock(job.done_mutex);
    job.done_cv.notify_all();
  }
}

void ThreadPool::execute(ParallelJob& job, std::size_t count) {
  if (count == 0) return;
  job.count = count;
  // Helpers beyond the caller; capped so every slot sees work.
  const std::size_t helpers = std::min(count - 1, size());
  // Chunks are small enough for dynamic balancing, large enough that
  // the shared cursor is not contended.
  job.chunk = std::max<std::size_t>(1, count / ((helpers + 1) * 8));

  if (helpers == 0) {
    PoolTaskObserver* solo_obs =
        task_observer_.load(std::memory_order_acquire);
    if (solo_obs != nullptr) solo_obs->on_task_start(0);
    try {
      job.run(0);  // exceptions propagate directly
    } catch (...) {
      if (solo_obs != nullptr) solo_obs->on_task_end(0);
      throw;
    }
    if (solo_obs != nullptr) solo_obs->on_task_end(0);
    return;
  }

  job.pending.store(helpers, std::memory_order_relaxed);
  for (std::size_t h = 0; h < helpers; ++h) {
    enqueue(Task{&run_job_slot, &job, h});
  }
  // The caller takes the last slot instead of blocking idle.
  PoolTaskObserver* obs = task_observer_.load(std::memory_order_acquire);
  if (obs != nullptr) obs->on_task_start(helpers);
  try {
    job.run(helpers);
  } catch (...) {
    std::lock_guard lock(job.error_mutex);
    if (!job.error) job.error = std::current_exception();
  }
  if (obs != nullptr) obs->on_task_end(helpers);
  const auto done = [&job] {
    return job.pending.load(std::memory_order_acquire) == 0;
  };
  std::unique_lock lock(job.done_mutex);
  if (obs != nullptr && !done()) {
    // The caller ran dry while workers still hold chunks: this wait is
    // the parallel call's imbalance cost.
    const auto t0 = std::chrono::steady_clock::now();
    job.done_cv.wait(lock, done);
    obs->on_caller_wait(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
  } else {
    job.done_cv.wait(lock, done);
  }
  if (job.error) std::rethrow_exception(job.error);
}

ThreadPool& global_pool() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("JAMELECT_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace jamelect
