#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "support/expects.hpp"

namespace jamelect {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    JAMELECT_EXPECTS(!stopping_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, size());
  if (chunks <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> remaining;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
    std::mutex error_mutex;
  } shared;
  shared.remaining.store(chunks, std::memory_order_relaxed);

  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    submit([&shared, &body, begin, end] {
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        std::lock_guard lock(shared.error_mutex);
        if (!shared.error) shared.error = std::current_exception();
      }
      if (shared.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(shared.done_mutex);
        shared.done_cv.notify_all();
      }
    });
    begin = end;
  }

  std::unique_lock lock(shared.done_mutex);
  shared.done_cv.wait(lock, [&shared] {
    return shared.remaining.load(std::memory_order_acquire) == 0;
  });
  if (shared.error) std::rethrow_exception(shared.error);
}

ThreadPool& global_pool() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("JAMELECT_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace jamelect
