// Deterministic, splittable pseudo-random number generation.
//
// Monte-Carlo reproducibility demands that (seed, trial, component)
// uniquely determines every random draw, independent of thread
// scheduling. We therefore avoid std::random_device / shared engines and
// provide:
//
//  * SplitMix64 — seed expansion / hashing (Steele, Lea & Flood 2014).
//  * Xoshiro256StarStar — the main engine (Blackman & Vigna 2018):
//    fast, 256-bit state, passes BigCrush; ideal for slot-level
//    simulation where millions of Bernoulli draws per trial are needed.
//  * Rng — a small façade with the distributions this project uses
//    (uniform doubles, Bernoulli, bounded integers) plus `child()` for
//    deriving statistically independent streams per station / trial.
#pragma once

#include <cstdint>
#include <limits>

#include "support/expects.hpp"

namespace jamelect {

/// SplitMix64: a tiny 64-bit PRNG mainly used to expand seeds and to
/// hash (seed, stream) pairs into fresh engine states.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mixing of two 64-bit values into one; used to derive child
/// stream seeds so that (seed, stream) collisions are no more likely
/// than random 64-bit collisions.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  SplitMix64 sm(a ^ (0x9e3779b97f4a7c15ULL + (b << 1)));
  sm.next();
  std::uint64_t h = sm.next() ^ b;
  h = (h ^ (h >> 29)) * 0xff51afd7ed558ccdULL;
  return h ^ (h >> 32);
}

/// xoshiro256** 1.0 — the project's workhorse engine.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by running SplitMix64, as recommended by
  /// the xoshiro authors (never seeds the all-zero state).
  explicit constexpr Xoshiro256StarStar(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

/// Rng: the distribution façade used throughout the simulator.
///
/// All draws are deterministic functions of the construction seed.
/// `child(stream)` derives an independent generator; the canonical use
/// is one child per (trial, station) so that per-station and aggregate
/// engines can both be driven reproducibly.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : engine_(seed), seed_(seed) {}

  /// Uniform 64 random bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept { return engine_(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw. p <= 0 never fires; p >= 1 always fires.
  [[nodiscard]] bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Classic unbiased rejection sampling on the top of the range.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) {
    JAMELECT_EXPECTS(bound > 0);
    if ((bound & (bound - 1)) == 0) return engine_() & (bound - 1);
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() -
        std::numeric_limits<std::uint64_t>::max() % bound;
    for (;;) {
      const std::uint64_t r = engine_();
      if (r < limit) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) {
    JAMELECT_EXPECTS(lo <= hi);
    // Width in uint64 space: hi - lo would be signed overflow (UB) for
    // e.g. [INT64_MIN, INT64_MAX], and its span + 1 wraps to 0.
    const std::uint64_t width =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    if (width == std::numeric_limits<std::uint64_t>::max()) {
      // Full int64 range: every 64-bit pattern is a valid result.
      return static_cast<std::int64_t>(next_u64());
    }
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                     below(width + 1));
  }

  /// Derives a statistically independent child generator. Children with
  /// distinct `stream` values (or from distinct parents) do not overlap
  /// in any practical sense.
  [[nodiscard]] Rng child(std::uint64_t stream) const noexcept {
    return Rng(mix64(seed_, stream));
  }

  /// The seed this generator was constructed with (children report
  /// their derived seed).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  Xoshiro256StarStar engine_;
  std::uint64_t seed_;
};

}  // namespace jamelect
