#include "support/math.hpp"

#include <algorithm>
#include <limits>

namespace jamelect {

double pow_one_minus(double p, std::uint64_t n) {
  JAMELECT_EXPECTS(p >= 0.0 && p <= 1.0);
  if (n == 0) return 1.0;
  if (p == 0.0) return 1.0;
  if (p == 1.0) return 0.0;
  // (1-p)^n = exp(n * log1p(-p)); log1p keeps full precision for tiny p.
  return std::exp(static_cast<double>(n) * std::log1p(-p));
}

SlotProbabilities slot_probabilities(std::uint64_t n, double p) {
  JAMELECT_EXPECTS(p >= 0.0 && p <= 1.0);
  if (n == 0) return {1.0, 0.0, 0.0};
  if (p == 0.0) return {1.0, 0.0, 0.0};
  const double nd = static_cast<double>(n);
  if (p == 1.0) {
    return (n == 1) ? SlotProbabilities{0.0, 1.0, 0.0}
                    : SlotProbabilities{0.0, 0.0, 1.0};
  }
  const double log_q = std::log1p(-p);                   // log(1-p)
  const double p_null = std::exp(nd * log_q);            // (1-p)^n
  const double p_single = nd * p * std::exp((nd - 1.0) * log_q);
  // Guard against tiny negative values from cancellation.
  const double p_coll = std::max(0.0, 1.0 - p_null - p_single);
  return {p_null, p_single, p_coll};
}

double transmit_probability(double u) {
  JAMELECT_EXPECTS(u >= 0.0);
  // 2^-u underflows to 0 for u > ~1074; exp2 handles that gracefully.
  return std::min(1.0, std::exp2(-u));
}

std::int64_t ceil_to_slots(double x) {
  JAMELECT_EXPECTS(!(x < 0.0));
  constexpr double kMax = 9.0e18;  // < int64 max, safely representable
  if (!(x < kMax)) return std::numeric_limits<std::int64_t>::max();
  return static_cast<std::int64_t>(std::ceil(x));
}

}  // namespace jamelect
