// Shared xoshiro256** stepping primitives for the SIMD-wide lane
// engines (support/wide_rng.hpp, sim/batch_wide.hpp).
//
// The scalar step here is the exact algorithm of Xoshiro256StarStar
// (support/rng.hpp) operating on structure-of-arrays state, and the
// uniform conversion is the exact `(x >> 11) * 2^-53` of Rng::uniform.
// The AVX2 block (compiled only in TUs built with -mavx2; see the
// JAMELECT_WIDE_AVX2 gate in CMakeLists.txt) reproduces both
// bit-for-bit with vector rotl/shift/xor and an exact two-part
// u64→double conversion, so the wide engines can mix scalar and vector
// stepping freely without breaking the bit-identity contract.
#pragma once

#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace jamelect::wide_detail {

/// One xoshiro256** step on SoA state; returns the output word.
/// Bit-identical to Xoshiro256StarStar::operator()().
inline std::uint64_t step1(std::uint64_t& s0, std::uint64_t& s1,
                           std::uint64_t& s2, std::uint64_t& s3) noexcept {
  const auto rotl = [](std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  };
  const std::uint64_t result = rotl(s1 * 5, 7) * 9;
  const std::uint64_t t = s1 << 17;
  s2 ^= s0;
  s3 ^= s1;
  s1 ^= s2;
  s0 ^= s3;
  s2 ^= t;
  s3 = rotl(s3, 45);
  return result;
}

/// Uniform double in [0, 1) from one output word; bit-identical to
/// Rng::uniform (the cast of a 53-bit integer to double is exact).
inline double to_uniform(std::uint64_t x) noexcept {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

#if defined(__AVX2__)

/// Four xoshiro256** steps, one per 64-bit vector lane. State vectors
/// are updated in place; returns the four output words.
inline __m256i step4_avx2(__m256i& s0, __m256i& s1, __m256i& s2,
                          __m256i& s3) noexcept {
  const auto rotl = [](__m256i x, int k) noexcept {
    return _mm256_or_si256(_mm256_slli_epi64(x, k),
                           _mm256_srli_epi64(x, 64 - k));
  };
  // s1 * 5 and r * 9 via shift-add: AVX2 has no 64-bit multiply.
  const __m256i s1x5 = _mm256_add_epi64(s1, _mm256_slli_epi64(s1, 2));
  const __m256i r7 = rotl(s1x5, 7);
  const __m256i result = _mm256_add_epi64(r7, _mm256_slli_epi64(r7, 3));
  const __m256i t = _mm256_slli_epi64(s1, 17);
  s2 = _mm256_xor_si256(s2, s0);
  s3 = _mm256_xor_si256(s3, s1);
  s1 = _mm256_xor_si256(s1, s2);
  s0 = _mm256_xor_si256(s0, s3);
  s2 = _mm256_xor_si256(s2, t);
  s3 = rotl(s3, 45);
  return result;
}

/// Exact vector u64→uniform-double conversion: v = x >> 11 is a 53-bit
/// value, split as v = hi·2^32 + lo with hi < 2^21, lo < 2^32. Each
/// half converts exactly via the 2^52 magic-number trick, and
/// hi·2^32 + lo is exact because v fits in a double's 53-bit mantissa —
/// so the result equals static_cast<double>(v) * 2^-53 bit-for-bit.
inline __m256d to_uniform4_avx2(__m256i x) noexcept {
  const __m256i v = _mm256_srli_epi64(x, 11);
  const __m256i magic_i = _mm256_set1_epi64x(0x4330000000000000LL);  // 2^52
  const __m256d magic_d = _mm256_castsi256_pd(magic_i);
  const __m256i lo = _mm256_and_si256(v, _mm256_set1_epi64x(0xffffffffLL));
  const __m256i hi = _mm256_srli_epi64(v, 32);
  const __m256d lo_d =
      _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(lo, magic_i)),
                    magic_d);
  const __m256d hi_d =
      _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(hi, magic_i)),
                    magic_d);
  const __m256d vd = _mm256_add_pd(
      _mm256_mul_pd(hi_d, _mm256_set1_pd(4294967296.0)), lo_d);
  return _mm256_mul_pd(vd, _mm256_set1_pd(0x1.0p-53));
}

#endif  // __AVX2__

}  // namespace jamelect::wide_detail
