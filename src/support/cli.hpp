// Tiny command-line option parser for the example programs.
// Supports `--name=value`, `--name value` and boolean `--flag`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace jamelect {

/// Parses argv into named options and positional arguments, with typed,
/// defaulted accessors. Unknown options are collected (not rejected) so
/// wrappers can pass through extra flags.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& name,
                                       std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  /// Boolean flags: `--x`, `--x=true/false/1/0/yes/no`.
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Names that were provided on the command line (for help/validation).
  [[nodiscard]] std::vector<std::string> provided_names() const;

 private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace jamelect
