#include "analysis/theory.hpp"

#include <algorithm>
#include <cmath>

#include "support/expects.hpp"

namespace jamelect {

double safe_log2_inv_eps(double eps) {
  JAMELECT_EXPECTS(eps > 0.0 && eps <= 1.0);
  return std::max(std::log2(1.0 / eps), 0.5);
}

double lesk_time_bound(std::uint64_t n, double eps, double beta) {
  JAMELECT_EXPECTS(n >= 1);
  JAMELECT_EXPECTS(eps > 0.0 && eps <= 1.0);
  JAMELECT_EXPECTS(beta >= 1.0);
  const double a = 8.0 / eps;
  const double nd = static_cast<double>(n);
  const double log2n = std::log2(std::max(2.0, nd));
  const double ln3nb = std::log(3.0 * std::pow(nd, beta));
  return (16.0 / (5.0 * eps)) *
         (a * a * ln3nb / (2.0 * std::log(a)) + a * log2n + 1.0);
}

double lower_bound_slots(std::uint64_t n, double eps, std::int64_t T) {
  JAMELECT_EXPECTS(n >= 1);
  JAMELECT_EXPECTS(eps > 0.0 && eps <= 1.0);
  const double log2n = std::log2(std::max(2.0, static_cast<double>(n)));
  return std::max(static_cast<double>(T), log2n / eps);
}

EstimationRange estimation_range(std::uint64_t n, std::int64_t T) {
  JAMELECT_EXPECTS(n >= 2);
  JAMELECT_EXPECTS(T >= 1);
  const double loglogn =
      std::log2(std::max(1.0, std::log2(static_cast<double>(n))));
  const double logT = std::log2(std::max(1.0, static_cast<double>(T)));
  return {loglogn - 1.0, std::max(loglogn, logT) + 1.0};
}

bool lesu_case1(std::uint64_t n, double eps, std::int64_t T) {
  const double log2n = std::log2(std::max(2.0, static_cast<double>(n)));
  return static_cast<double>(T) <=
         log2n / (eps * eps * eps * safe_log2_inv_eps(eps));
}

double lesu_time_bound(std::uint64_t n, double eps, std::int64_t T) {
  const double log2n = std::log2(std::max(2.0, static_cast<double>(n)));
  const double l1e = safe_log2_inv_eps(eps);
  const double loglog1e = std::log2(std::max(2.0, l1e));
  if (lesu_case1(n, eps, T)) {
    return loglog1e / (eps * eps * eps) * log2n;
  }
  const double inner =
      std::max(2.0, static_cast<double>(T) / (eps * log2n));
  const double term1 = std::log2(std::max(2.0, std::log2(inner)));
  const double term2 = l1e * loglog1e;
  return std::max(term1, term2) * static_cast<double>(T);
}

double arss_time_bound(std::uint64_t n) {
  const double log2n = std::log2(std::max(2.0, static_cast<double>(n)));
  return log2n * log2n * log2n * log2n;
}

}  // namespace jamelect
