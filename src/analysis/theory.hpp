// Closed-form bounds from the paper, used as reference curves by the
// benches (EXPERIMENTS.md compares measured shapes against these) and
// as time budgets by tests.
#pragma once

#include <cstdint>

namespace jamelect {

/// Theorem 2.6's explicit sufficient slot count for LESK:
///   t > (16 / 5 eps) * ( a^2 ln(3 n^beta) / (2 ln a) + a log2 n + 1 ),
/// with a = 8/eps, guaranteeing success probability >= 1 - 1/n^beta
/// once at least T slots have elapsed (the bound's derivation assumes
/// t > T; callers combine with max(T, .)).
[[nodiscard]] double lesk_time_bound(std::uint64_t n, double eps,
                                     double beta = 1.0);

/// Lemma 2.7's lower bound (up to constants): max(T, (1/eps) * log2 n).
[[nodiscard]] double lower_bound_slots(std::uint64_t n, double eps,
                                       std::int64_t T);

/// Lemma 2.8's promised range for Estimation(2)'s return value.
struct EstimationRange {
  double lo;  ///< log2 log2 n - 1
  double hi;  ///< max(log2 log2 n, log2 T) + 1
};
[[nodiscard]] EstimationRange estimation_range(std::uint64_t n, std::int64_t T);

/// Theorem 2.9's LESU bound (shape only; unit constants):
///   case 1 (T <= log n / (eps^3 log(1/eps))):
///       log log(1/eps) / eps^3 * log n
///   case 2: max(log log(T / (eps log n)), log(1/eps) log log(1/eps)) * T
[[nodiscard]] double lesu_time_bound(std::uint64_t n, double eps, std::int64_t T);

/// True iff (n, eps, T) fall into Theorem 2.9's case 1.
[[nodiscard]] bool lesu_case1(std::uint64_t n, double eps, std::int64_t T);

/// The ARSS comparison's proven shape, log2(n)^4 (§1.3), unit constant.
[[nodiscard]] double arss_time_bound(std::uint64_t n);

/// log2(1/eps) floored away from 0 so the bound formulas stay finite at
/// eps -> 1 (where the paper's constants degenerate but the runtimes
/// are tiny anyway).
[[nodiscard]] double safe_log2_inv_eps(double eps);

}  // namespace jamelect
