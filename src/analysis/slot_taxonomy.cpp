#include "analysis/slot_taxonomy.hpp"

#include <algorithm>
#include <cmath>

#include "support/expects.hpp"

namespace jamelect {

SlotClass classify_slot_record(const SlotRecord& rec, double u0, double a) {
  JAMELECT_EXPECTS(a >= 8.0);
  if (rec.state == ChannelState::kSingle) return SlotClass::kSingle;
  if (rec.jammed) return SlotClass::kJammed;
  if (std::isnan(rec.estimate)) return SlotClass::kUnknown;
  const double u = rec.estimate;
  const double low = u0 - std::log2(2.0 * std::log(a));
  const double high = u0 + 0.5 * std::log2(a);
  if (rec.state == ChannelState::kNull) {
    if (u <= low) return SlotClass::kIrregularSilence;
    if (u >= high + 1.0) return SlotClass::kCorrectingSilence;
    return SlotClass::kRegular;
  }
  // Unjammed Collision.
  if (u >= high) return SlotClass::kIrregularCollision;
  if (u <= low) return SlotClass::kCorrectingCollision;
  return SlotClass::kRegular;
}

TaxonomyCounts classify_trace(const Trace& trace, std::uint64_t n, double eps) {
  JAMELECT_EXPECTS(trace.keeps_records());
  JAMELECT_EXPECTS(n >= 1);
  JAMELECT_EXPECTS(eps > 0.0 && eps <= 1.0);
  const double u0 = std::log2(static_cast<double>(n));
  const double a = 8.0 / eps;
  TaxonomyCounts counts;
  for (const SlotRecord& rec : trace.records()) {
    switch (classify_slot_record(rec, u0, a)) {
      case SlotClass::kRegular: ++counts.regular; break;
      case SlotClass::kIrregularSilence: ++counts.irregular_silence; break;
      case SlotClass::kIrregularCollision: ++counts.irregular_collision; break;
      case SlotClass::kCorrectingSilence: ++counts.correcting_silence; break;
      case SlotClass::kCorrectingCollision: ++counts.correcting_collision; break;
      case SlotClass::kJammed: ++counts.jammed; break;
      case SlotClass::kSingle: ++counts.single; break;
      case SlotClass::kUnknown: ++counts.unknown; break;
    }
  }
  return counts;
}

CounterBounds lemma23_bounds(const TaxonomyCounts& counts, std::uint64_t n,
                             double eps) {
  const double a = 8.0 / eps;
  const double u0 = std::log2(std::max(2.0, static_cast<double>(n)));
  CounterBounds b{};
  b.cs_measured = static_cast<double>(counts.correcting_silence);
  b.cs_bound = (static_cast<double>(counts.irregular_collision) +
                static_cast<double>(counts.jammed)) /
               a;
  b.cc_measured = static_cast<double>(counts.correcting_collision);
  b.cc_bound = a * static_cast<double>(counts.irregular_silence) + a * u0;
  return b;
}

}  // namespace jamelect
