// Slot taxonomy of the LESK analysis (paper §2.2).
//
// Relative to u0 = log2 n and a = 8/eps, a pre-election slot with
// estimate u is one of:
//   E  (jammed)               — the adversary jammed it
//   IS (irregular silence)    — Null      with u <= u0 - log2(2 ln a)
//   IC (irregular collision)  — Collision with u >= u0 + (1/2) log2 a
//   CS (correcting silence)   — Null      with u >= u0 + (1/2) log2 a + 1
//   CC (correcting collision) — Collision with u <= u0 - log2(2 ln a)
//   R  (regular)              — everything else; the analysis shows
//                               each regular slot yields a Single with
//                               probability >= ln(a)/a^2 (Lemma 2.4).
// Lemma 2.2 bounds P[IS] <= 1/a^2 and P[IC] <= 1/a per slot; Lemma 2.3
// ties the counters together (CS <= (IC+E)/a, CC <= a*IS + a*u0). Bench
// E11 and the taxonomy tests check these on real traces.
#pragma once

#include <cstdint>

#include "channel/trace.hpp"

namespace jamelect {

enum class SlotClass : std::uint8_t {
  kRegular,
  kIrregularSilence,
  kIrregularCollision,
  kCorrectingSilence,
  kCorrectingCollision,
  kJammed,
  kSingle,   ///< the deciding slot (outside the taxonomy's "first t slots")
  kUnknown,  ///< no estimate recorded for the slot
};

struct TaxonomyCounts {
  std::int64_t regular = 0;
  std::int64_t irregular_silence = 0;
  std::int64_t irregular_collision = 0;
  std::int64_t correcting_silence = 0;
  std::int64_t correcting_collision = 0;
  std::int64_t jammed = 0;
  std::int64_t single = 0;
  std::int64_t unknown = 0;
  [[nodiscard]] std::int64_t total() const noexcept {
    return regular + irregular_silence + irregular_collision +
           correcting_silence + correcting_collision + jammed + single +
           unknown;
  }
};

/// Classifies one recorded slot against u0 = log2 n and a = 8/eps.
[[nodiscard]] SlotClass classify_slot_record(const SlotRecord& rec, double u0,
                                             double a);

/// Classifies a whole recorded trace.
[[nodiscard]] TaxonomyCounts classify_trace(const Trace& trace,
                                            std::uint64_t n, double eps);

/// Lemma 2.3's counter relations evaluated on measured counts:
/// point 4:  CS <= (IC + E) / a        (returned with both sides)
/// point 5:  CC <= a*IS + a*u0
struct CounterBounds {
  double cs_measured, cs_bound;
  double cc_measured, cc_bound;
  [[nodiscard]] bool holds() const noexcept {
    return cs_measured <= cs_bound && cc_measured <= cc_bound;
  }
};
[[nodiscard]] CounterBounds lemma23_bounds(const TaxonomyCounts& counts,
                                           std::uint64_t n, double eps);

}  // namespace jamelect
