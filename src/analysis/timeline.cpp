#include "analysis/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "protocols/interval_partition.hpp"
#include "support/expects.hpp"

namespace jamelect {

namespace {

struct Bucket {
  bool any_single = false;
  bool any_jam = false;
  std::int64_t collisions = 0;
  std::int64_t nulls = 0;
  double u_sum = 0.0;
  std::int64_t u_count = 0;
  IntervalSet set = IntervalSet::kPadding;
};

char channel_symbol(const Bucket& b) {
  if (b.any_single) return '!';
  if (b.collisions > 0 && b.nulls > 0) return ';';
  if (b.collisions > 0) return 'c';
  if (b.nulls > 0) return '.';
  return ' ';
}

char partition_symbol(IntervalSet set) {
  switch (set) {
    case IntervalSet::kPadding: return '-';
    case IntervalSet::kC1: return '1';
    case IntervalSet::kC2: return '2';
    case IntervalSet::kC3: return '3';
  }
  return '?';
}

char estimate_symbol(const Bucket& b, double u0) {
  if (b.u_count == 0) return ' ';
  const double u = b.u_sum / static_cast<double>(b.u_count);
  if (std::isnan(u)) return ' ';
  if (u < u0 - 2.0) return '_';
  if (u > u0 + 2.0) return '^';
  return '~';
}

}  // namespace

std::string render_timeline(const Trace& trace, const TimelineOptions& options) {
  JAMELECT_EXPECTS(trace.keeps_records());
  JAMELECT_EXPECTS(trace.size() >= 1);
  JAMELECT_EXPECTS(options.width >= 10);

  const auto& records = trace.records();
  const std::size_t total = records.size();
  const std::size_t width = std::min(options.width, total);
  const double per_bucket =
      static_cast<double>(total) / static_cast<double>(width);

  std::vector<Bucket> buckets(width);
  for (std::size_t k = 0; k < total; ++k) {
    const auto idx = std::min<std::size_t>(
        width - 1, static_cast<std::size_t>(static_cast<double>(k) / per_bucket));
    Bucket& b = buckets[idx];
    const SlotRecord& rec = records[k];
    switch (rec.state) {
      case ChannelState::kSingle: b.any_single = true; break;
      case ChannelState::kCollision: ++b.collisions; break;
      case ChannelState::kNull: ++b.nulls; break;
    }
    if (rec.jammed) b.any_jam = true;
    if (!std::isnan(rec.estimate)) {
      b.u_sum += rec.estimate;
      ++b.u_count;
    }
    b.set = classify_slot(rec.slot).set;  // last slot of the bucket wins
  }

  std::ostringstream out;
  // Ruler: a digit every 10 cells marking the bucket index / 10.
  out << "slots  ";
  for (std::size_t i = 0; i < width; ++i) {
    out << (i % 10 == 0 ? static_cast<char>('0' + (i / 10) % 10) : '.');
  }
  out << "  (" << total << " slots, " << per_bucket << " per cell)\n";

  out << "chan   ";
  for (const Bucket& b : buckets) out << channel_symbol(b);
  out << "  (!=Single c=Collision .=Null ;=mixed)\n";

  out << "jam    ";
  for (const Bucket& b : buckets) out << (b.any_jam ? 'J' : '.');
  out << "  (J=adversary active)\n";

  if (options.show_partition) {
    out << "part   ";
    for (const Bucket& b : buckets) out << partition_symbol(b.set);
    out << "  (C1/C2/C3 Notification sets)\n";
  }

  if (options.n >= 1) {
    const double u0 = std::log2(static_cast<double>(options.n));
    out << "u      ";
    for (const Bucket& b : buckets) out << estimate_symbol(b, u0);
    out << "  (_ below, ~ near, ^ above log2 n)\n";
  }
  return out.str();
}

}  // namespace jamelect
