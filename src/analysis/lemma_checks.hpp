// Numeric validators for Lemma 2.1 (header-only).
//
// For p = 1/(x*n), n > 1, x > 0 the paper claims:
//   (1) P[Null]      <= e^(-1/x)
//   (2) P[Collision] <= 1/x^2
//   (3) P[Single]    >= (1/x) e^(-1/x)
//   (4) P[Single]    >= 1/x - 1/x^2
// The parameterized tests sweep (n, x) grids and assert these hold for
// the exact probabilities; they justify the thresholds baked into the
// slot taxonomy and the adversary mirror policies.
#pragma once

#include <cmath>
#include <cstdint>

#include "support/math.hpp"

namespace jamelect {

struct Lemma21Sides {
  SlotProbabilities exact;  ///< exact channel probabilities at p = 1/(xn)
  double null_upper;        ///< e^(-1/x)
  double collision_upper;   ///< 1/x^2
  double single_lower_exp;  ///< (1/x) e^(-1/x)
  double single_lower_poly; ///< 1/x - 1/x^2
};

[[nodiscard]] inline Lemma21Sides lemma21_sides(std::uint64_t n, double x) {
  Lemma21Sides s{};
  const double p = 1.0 / (x * static_cast<double>(n));
  s.exact = slot_probabilities(n, p);
  s.null_upper = std::exp(-1.0 / x);
  s.collision_upper = 1.0 / (x * x);
  s.single_lower_exp = (1.0 / x) * std::exp(-1.0 / x);
  s.single_lower_poly = 1.0 / x - 1.0 / (x * x);
  return s;
}

/// Lemma 2.2's per-slot probabilities: an irregular silence requires
/// p >= 2 ln(a)/n (giving P[Null] <= 1/a^2), an irregular collision
/// requires p <= 1/(n sqrt(a)) (giving P[Collision] <= 1/a).
struct Lemma22Sides {
  double is_probability;  ///< P[Null] at the IS boundary
  double is_bound;        ///< 1/a^2
  double ic_probability;  ///< P[Collision] at the IC boundary
  double ic_bound;        ///< 1/a
};

[[nodiscard]] inline Lemma22Sides lemma22_sides(std::uint64_t n, double a) {
  Lemma22Sides s{};
  const double nd = static_cast<double>(n);
  // The IS boundary p = 2 ln(a)/n exceeds 1 for tiny n, where the IS
  // regime cannot occur at all — report a vacuously-satisfied pair.
  const double p_is = 2.0 * std::log(a) / nd;
  s.is_probability = p_is <= 1.0 ? slot_probabilities(n, p_is).null : 0.0;
  s.is_bound = 1.0 / (a * a);
  s.ic_probability =
      slot_probabilities(n, 1.0 / (nd * std::sqrt(a))).collision;
  s.ic_bound = 1.0 / a;
  return s;
}

}  // namespace jamelect
