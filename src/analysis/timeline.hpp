// ASCII timeline rendering for slot traces.
//
// Renders a recorded trace as fixed-width character rows so a whole
// election is readable in a terminal:
//
//   slots  0........1.........2.........  (ruler, one mark per bucket)
//   chan   ccccccccccccccc!                c=Collision .=Null !=Single
//   jam    JJ.J.J.J..J.J.                  J=jammed
//   part   ---11122233331111222233333      C1/C2/C3 partition (optional)
//   u      ___~~~~~^^^^^                   estimate vs log2 n bands
//
// When the trace is longer than `width`, slots are bucketed and each
// cell shows the bucket's dominant/most-informative symbol (a Single
// always wins a bucket, then jammed, then Collision, then Null).
#pragma once

#include <cstdint>
#include <string>

#include "channel/trace.hpp"

namespace jamelect {

struct TimelineOptions {
  std::size_t width = 100;        ///< characters per row
  bool show_partition = false;    ///< add the C1/C2/C3 row
  /// When >= 1, adds the estimate row with bands relative to log2(n).
  std::uint64_t n = 0;
};

/// Renders the trace; requires trace.keeps_records() and a non-empty
/// trace.
[[nodiscard]] std::string render_timeline(const Trace& trace,
                                          const TimelineOptions& options = {});

}  // namespace jamelect
