// Slot resolution and per-station observation rules.
//
// Defined inline: every engine calls these one-to-three times per
// simulated slot, and the batched cohort engine's slot loop is hot
// enough that the cross-TU call overhead showed up in profiles.
#pragma once

#include <cstdint>

#include "channel/types.hpp"
#include "support/expects.hpp"

namespace jamelect {

/// Ground-truth resolution of one slot (paper §1.1): jamming is
/// indistinguishable from a collision, so a jammed slot always resolves
/// to Collision regardless of the transmitter count — in particular a
/// jammed slot with exactly one transmitter is *not* a successful
/// transmission.
[[nodiscard]] inline ChannelState resolve_slot(std::uint64_t num_transmitters,
                                               bool jammed) noexcept {
  if (jammed) return ChannelState::kCollision;
  if (num_transmitters == 0) return ChannelState::kNull;
  if (num_transmitters == 1) return ChannelState::kSingle;
  return ChannelState::kCollision;
}

/// What a station perceives given the true channel state, whether it
/// transmitted, and the CD model:
///  * strong-CD: the true state, for everyone.
///  * weak-CD: listeners get the true state; a transmitter learns
///    nothing and pessimistically assumes Collision (paper Function 3).
///  * no-CD: listeners can only tell Single vs kNoSingle; a transmitter
///    again assumes kNoSingle.
[[nodiscard]] inline Observation observe_slot(ChannelState state,
                                              bool transmitted,
                                              CdMode mode) noexcept {
  switch (mode) {
    case CdMode::kStrong:
      return static_cast<Observation>(state);
    case CdMode::kWeak:
      if (transmitted) return Observation::kCollision;
      return static_cast<Observation>(state);
    case CdMode::kNone:
      if (transmitted) return Observation::kNoSingle;
      return state == ChannelState::kSingle ? Observation::kSingle
                                            : Observation::kNoSingle;
  }
  return Observation::kNoSingle;  // unreachable
}

/// Convenience: maps an Observation that is known to come from the
/// strong/weak models back to a ChannelState.
[[nodiscard]] inline ChannelState to_channel_state(Observation obs) {
  JAMELECT_EXPECTS(obs != Observation::kNoSingle);
  return static_cast<ChannelState>(obs);
}

}  // namespace jamelect
