// Slot resolution and per-station observation rules.
#pragma once

#include <cstdint>

#include "channel/types.hpp"

namespace jamelect {

/// Ground-truth resolution of one slot (paper §1.1): jamming is
/// indistinguishable from a collision, so a jammed slot always resolves
/// to Collision regardless of the transmitter count — in particular a
/// jammed slot with exactly one transmitter is *not* a successful
/// transmission.
[[nodiscard]] ChannelState resolve_slot(std::uint64_t num_transmitters,
                                        bool jammed) noexcept;

/// What a station perceives given the true channel state, whether it
/// transmitted, and the CD model:
///  * strong-CD: the true state, for everyone.
///  * weak-CD: listeners get the true state; a transmitter learns
///    nothing and pessimistically assumes Collision (paper Function 3).
///  * no-CD: listeners can only tell Single vs kNoSingle; a transmitter
///    again assumes kNoSingle.
[[nodiscard]] Observation observe_slot(ChannelState state, bool transmitted,
                                       CdMode mode) noexcept;

/// Convenience: maps an Observation that is known to come from the
/// strong/weak models back to a ChannelState.
[[nodiscard]] ChannelState to_channel_state(Observation obs);

}  // namespace jamelect
