#include "channel/channel.hpp"

#include "support/expects.hpp"

namespace jamelect {

ChannelState resolve_slot(std::uint64_t num_transmitters, bool jammed) noexcept {
  if (jammed) return ChannelState::kCollision;
  if (num_transmitters == 0) return ChannelState::kNull;
  if (num_transmitters == 1) return ChannelState::kSingle;
  return ChannelState::kCollision;
}

Observation observe_slot(ChannelState state, bool transmitted,
                         CdMode mode) noexcept {
  switch (mode) {
    case CdMode::kStrong:
      return static_cast<Observation>(state);
    case CdMode::kWeak:
      if (transmitted) return Observation::kCollision;
      return static_cast<Observation>(state);
    case CdMode::kNone:
      if (transmitted) return Observation::kNoSingle;
      return state == ChannelState::kSingle ? Observation::kSingle
                                            : Observation::kNoSingle;
  }
  return Observation::kNoSingle;  // unreachable
}

ChannelState to_channel_state(Observation obs) {
  JAMELECT_EXPECTS(obs != Observation::kNoSingle);
  return static_cast<ChannelState>(obs);
}

}  // namespace jamelect
