// Core channel model types (paper §1.1).
//
// A slot's *channel state* is determined by the number of honest
// transmitters and whether the adversary jams:
//   0 transmitters, no jam  -> Null
//   1 transmitter,  no jam  -> Single
//   >=2 transmitters or jam -> Collision  (jamming is indistinguishable
//                                          from a collision)
// What a *station* perceives additionally depends on the collision-
// detection (CD) variant and on whether the station itself transmitted.
#pragma once

#include <cstdint>
#include <string_view>

namespace jamelect {

/// Ground-truth channel state of a slot, as a listener perceives it in
/// the strong/weak CD models.
enum class ChannelState : std::uint8_t {
  kNull = 0,       ///< idle: no transmitter, not jammed
  kSingle = 1,     ///< exactly one transmitter, not jammed
  kCollision = 2,  ///< >= 2 transmitters, or jammed
};

/// Collision-detection variant (paper §1.1).
enum class CdMode : std::uint8_t {
  kStrong,  ///< everyone (transmitters too) learns the channel state
  kWeak,    ///< transmitters learn nothing; they assume Collision
  kNone,    ///< listeners can only distinguish Single vs not-Single
};

/// What one station perceives in one slot. kNoSingle only occurs in the
/// no-CD model, where Null and Collision are indistinguishable.
enum class Observation : std::uint8_t {
  kNull = 0,
  kSingle = 1,
  kCollision = 2,
  kNoSingle = 3,
};

[[nodiscard]] constexpr std::string_view to_string(ChannelState s) noexcept {
  switch (s) {
    case ChannelState::kNull: return "Null";
    case ChannelState::kSingle: return "Single";
    case ChannelState::kCollision: return "Collision";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(CdMode m) noexcept {
  switch (m) {
    case CdMode::kStrong: return "strong-CD";
    case CdMode::kWeak: return "weak-CD";
    case CdMode::kNone: return "no-CD";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(Observation o) noexcept {
  switch (o) {
    case Observation::kNull: return "Null";
    case Observation::kSingle: return "Single";
    case Observation::kCollision: return "Collision";
    case Observation::kNoSingle: return "NoSingle";
  }
  return "?";
}

/// Slot index type. Signed so "before the first slot" is representable.
using Slot = std::int64_t;

/// Station identifier within one network.
using StationId = std::uint64_t;

}  // namespace jamelect
