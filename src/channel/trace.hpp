// Slot traces: compact per-slot records plus running counters.
//
// Traces feed the slot-taxonomy analysis (Lemmas 2.2-2.5) and the
// trace_explorer example. Recording full records is optional (off for
// large benches); counters are always maintained.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "channel/types.hpp"
#include "support/expects.hpp"

namespace jamelect {

/// One slot of history. `estimate` carries the protocol's public
/// estimator u at the *beginning* of the slot (NaN when the protocol
/// has none); the taxonomy classifier needs it.
struct SlotRecord {
  Slot slot = 0;
  std::uint32_t transmitters = 0;  ///< true count, saturated at 2^32-1
  bool jammed = false;
  ChannelState state = ChannelState::kNull;
  double estimate = std::numeric_limits<double>::quiet_NaN();
};

/// Running totals over a trace (cheap; kept even when records are not).
struct TraceCounters {
  std::int64_t slots = 0;
  std::int64_t nulls = 0;
  std::int64_t singles = 0;
  std::int64_t collisions = 0;   ///< includes jammed slots
  std::int64_t jammed = 0;
  /// Sum over slots of n*p — expected transmissions, so
  /// `expected_transmissions / n` is mean per-station energy.
  double expected_transmissions = 0.0;
};

/// Trace recorder. Construct with `keep_records = false` to retain only
/// counters (O(1) memory) on long runs.
class Trace {
 public:
  explicit Trace(bool keep_records = true) : keep_records_(keep_records) {}

  /// Appends one slot. `expected_tx` is the slot's expected number of
  /// transmitters (n*p summed over the population); callers without an
  /// expectation in hand pass 0.0 explicitly — the old default argument
  /// silently zeroed the energy accounting of forgetful call sites.
  void record(const SlotRecord& rec, double expected_tx);

  [[nodiscard]] const TraceCounters& counters() const noexcept { return counters_; }
  /// Requires keep_records; throws ContractViolation otherwise.
  [[nodiscard]] const std::vector<SlotRecord>& records() const {
    JAMELECT_EXPECTS(keep_records_);
    return records_;
  }
  [[nodiscard]] bool keeps_records() const noexcept { return keep_records_; }
  [[nodiscard]] std::int64_t size() const noexcept { return counters_.slots; }

  void clear();

 private:
  bool keep_records_;
  std::vector<SlotRecord> records_;
  TraceCounters counters_;
};

}  // namespace jamelect
