#include "channel/trace.hpp"

namespace jamelect {

void Trace::record(const SlotRecord& rec, double expected_tx) {
  if (keep_records_) records_.push_back(rec);
  ++counters_.slots;
  switch (rec.state) {
    case ChannelState::kNull: ++counters_.nulls; break;
    case ChannelState::kSingle: ++counters_.singles; break;
    case ChannelState::kCollision: ++counters_.collisions; break;
  }
  if (rec.jammed) ++counters_.jammed;
  counters_.expected_transmissions += expected_tx;
}

void Trace::clear() {
  records_.clear();
  counters_ = TraceCounters{};
}

}  // namespace jamelect
