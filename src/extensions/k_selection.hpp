// k-selection — the second §4 application: elect k DISTINCT leaders.
//
// Strong-CD composition: run LESK repeatedly; the transmitter of each
// Single becomes the next leader and withdraws (it stops transmitting),
// so the remaining population shrinks by one per round. Warm start: the
// next round's walk begins at the previous round's u (the population
// changed by one station, so log2 n barely moved), which makes rounds
// after the first cost O(1) expected regular slots each.
//
// Robustness is inherited from LESK: the adversary can only delay each
// round by the Theorem 2.6 budget.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/adversary.hpp"
#include "channel/types.hpp"
#include "support/rng.hpp"

namespace jamelect {

struct KSelectionParams {
  std::uint64_t n = 0;       ///< population size (>= k >= 1)
  std::uint64_t k = 1;       ///< leaders to elect
  double eps = 0.5;          ///< LESK's eps
  std::int64_t max_slots = 1 << 24;
  bool warm_start = true;    ///< reuse u across rounds
};

struct KSelectionResult {
  bool completed = false;             ///< all k leaders elected in budget
  std::uint64_t leaders_elected = 0;  ///< distinct by construction
  std::int64_t slots = 0;
  std::int64_t jams = 0;
  std::vector<std::int64_t> slots_per_round;  ///< one entry per leader
};

/// Runs the chained election against the given adversary (aggregate
/// semantics: stations are exchangeable, leaders are distinct because
/// winners withdraw).
[[nodiscard]] KSelectionResult run_k_selection(const KSelectionParams& params,
                                               BoundedAdversary& adversary,
                                               Rng& rng);

}  // namespace jamelect
