#include "extensions/fair_mac.hpp"

#include <vector>

#include "channel/channel.hpp"
#include "protocols/lesk.hpp"
#include "support/expects.hpp"

namespace jamelect {

double FairMacResult::jain_index() const {
  JAMELECT_EXPECTS(rounds_completed >= 1);
  double sum = 0.0, sum_sq = 0.0;
  for (const std::int64_t w : grants) {
    const auto wd = static_cast<double>(w);
    sum += wd;
    sum_sq += wd * wd;
  }
  return sum * sum / (static_cast<double>(grants.size()) * sum_sq);
}

FairMacResult run_fair_mac(const FairMacParams& params,
                           const AdversarySpec& adversary, Rng rng) {
  JAMELECT_EXPECTS(params.n >= 1);
  JAMELECT_EXPECTS(params.rounds >= 1);
  JAMELECT_EXPECTS(params.max_slots_per_round >= 1);

  AdversarySpec spec = adversary;
  spec.n = params.n;
  auto adv = make_adversary(spec, rng.child(0xFA17));
  Rng coins = rng.child(0xC014);

  FairMacResult result;
  result.grants.assign(params.n, 0);

  // One LESK instance per station; all reset between rounds. Identities
  // matter here (we count grants), so this is a per-station loop.
  std::vector<Lesk> stations(params.n, Lesk(params.eps));
  std::vector<std::uint8_t> transmitted(params.n, 0);

  for (std::uint64_t round = 0; round < params.rounds; ++round) {
    for (auto& s : stations) s = Lesk(params.eps);
    std::int64_t round_slots = 0;
    bool elected = false;
    while (!elected && round_slots < params.max_slots_per_round) {
      const bool jammed = adv->step();
      std::uint64_t count = 0;
      std::uint64_t winner = 0;
      // Uniform protocol: every station has the same probability, but
      // draw per-station coins so the winner has a real identity.
      const double p = stations[0].transmit_probability();
      for (std::uint64_t i = 0; i < params.n; ++i) {
        const bool tx = coins.bernoulli(p);
        transmitted[i] = tx ? 1 : 0;
        if (tx) {
          ++count;
          winner = i;
        }
      }
      const ChannelState state = resolve_slot(count, jammed);
      for (auto& s : stations) s.observe(state);
      adv->observe({result.slots_total + round_slots, count, jammed, state});
      ++round_slots;
      if (jammed) ++result.jams_total;
      if (state == ChannelState::kSingle) {
        ++result.grants[winner];
        elected = true;
      }
    }
    result.slots_total += round_slots;
    if (!elected) return result;  // round timed out; report partial run
    ++result.rounds_completed;
  }
  result.completed = true;
  return result;
}

}  // namespace jamelect
