#include "extensions/k_selection.hpp"

#include "channel/channel.hpp"
#include "protocols/lesk.hpp"
#include "support/expects.hpp"
#include "support/math.hpp"

namespace jamelect {

KSelectionResult run_k_selection(const KSelectionParams& params,
                                 BoundedAdversary& adversary, Rng& rng) {
  JAMELECT_EXPECTS(params.k >= 1);
  JAMELECT_EXPECTS(params.n >= params.k);
  JAMELECT_EXPECTS(params.eps > 0.0 && params.eps <= 1.0);
  JAMELECT_EXPECTS(params.max_slots >= 1);

  KSelectionResult result;
  std::uint64_t remaining = params.n;
  double warm_u = 0.0;
  std::int64_t round_start = 0;

  Lesk lesk(LeskParams{params.eps, warm_u});
  while (result.slots < params.max_slots) {
    const double p = lesk.transmit_probability();
    const bool jammed = adversary.step();
    const SlotProbabilities probs = slot_probabilities(remaining, p);
    const double r = rng.uniform();
    const std::uint64_t count =
        r < probs.null ? 0 : (r < probs.null + probs.single ? 1 : 2);
    const ChannelState state = resolve_slot(count, jammed);
    lesk.observe(state);
    adversary.observe({result.slots, count, jammed, state});
    ++result.slots;
    if (jammed) ++result.jams;

    if (lesk.elected()) {
      ++result.leaders_elected;
      result.slots_per_round.push_back(result.slots - round_start);
      round_start = result.slots;
      if (result.leaders_elected == params.k) {
        result.completed = true;
        break;
      }
      // The winner withdraws; restart LESK among the remainder. With
      // warm start the walk resumes at the sweet window (log2 of n-1
      // is within 1/n of log2 n), so subsequent rounds are cheap.
      --remaining;
      warm_u = params.warm_start ? lesk.u() : 0.0;
      lesk = Lesk(LeskParams{params.eps, warm_u});
    }
  }
  return result;
}

}  // namespace jamelect
