// Size approximation — the first of the paper's §4 suggested
// applications ("we believe that some of the presented procedures can
// be also used as building blocks in constructions of other protocols
// including size approximation...").
//
// Idea: LESK's estimate u is a biased random walk that concentrates
// around u0 = log2 n regardless of jamming (the whole point of
// Theorem 2.6's regular-slot analysis). So to *approximate* n, run the
// same walk for a fixed budget of slots — without stopping at Singles —
// and report the median of the visited u values over the second half of
// the budget (the first half is burn-in for the 0 -> u0 ramp). The
// adversary can stall the walk below u0 only by spending Nulls it
// cannot fabricate, and push it above u0 only at +eps/8 per jam, so the
// median is robust for the same reason election is.
//
// Output guarantee (empirical, tested): |estimate_log2n() - log2 n| is
// within a few units for any (T, 1-eps) adversary once the budget
// covers the ramp (>= ~2 * (8/eps) * log2 n slots).
#pragma once

#include <cstdint>
#include <vector>

#include "protocols/uniform.hpp"

namespace jamelect {

struct SizeApproximationParams {
  double eps = 0.5;        ///< assumed adversary eps (as in LESK)
  std::int64_t budget = 4096;  ///< slots to run before reporting
};

class SizeApproximation final : public UniformProtocol {
 public:
  explicit SizeApproximation(SizeApproximationParams params);

  [[nodiscard]] double transmit_probability() override;
  void observe(ChannelState state) override;
  /// Never "elects": Singles are just walk evidence here.
  [[nodiscard]] bool elected() const override { return false; }
  [[nodiscard]] std::string name() const override { return "SizeApprox"; }
  [[nodiscard]] UniformProtocolPtr clone() const override {
    return std::make_unique<SizeApproximation>(*this);
  }
  [[nodiscard]] double estimate() const override { return u_; }
  [[nodiscard]] std::uint64_t state_hash() const override;
  [[nodiscard]] bool state_equals(const UniformProtocol& other) const override;

  /// True once the slot budget is exhausted.
  [[nodiscard]] bool completed() const noexcept { return slots_seen_ >= params_.budget; }
  /// Median of the u samples from the second half of the budget;
  /// requires completed().
  [[nodiscard]] double estimate_log2n() const;
  /// 2^estimate_log2n(), the network-size estimate; requires completed().
  [[nodiscard]] double estimate_n() const;

 private:
  SizeApproximationParams params_;
  double a_;
  double u_ = 0.0;
  std::int64_t slots_seen_ = 0;
  std::vector<double> samples_;  ///< u at each slot of the second half
  /// Running fingerprint of samples_, maintained in observe() so
  /// state_hash() stays O(1); the deep samples_ compare only runs in
  /// state_equals(), i.e. when two instances are about to merge.
  std::uint64_t samples_hash_ = 0;
};

}  // namespace jamelect
