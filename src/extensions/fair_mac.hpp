// Fair use of the wireless channel — the third §4 application.
//
// A rotation MAC built from repeated leader election: in each round the
// network elects a leader (strong-CD LESK, per-station so identities
// are real), the winner receives the channel grant for that round, and
// everyone resets for the next round. The jamming budget persists
// ACROSS rounds — the adversary may hoard budget in one round to burn
// it in the next, which is the interesting regime.
//
// Fairness metric: Jain's index over per-station grant counts,
//   J = (sum w_i)^2 / (n * sum w_i^2),
// which is 1 for a perfectly even allocation and 1/n for a monopoly.
// Because LESK's winners are exchangeable, J -> 1 as rounds grow, no
// matter what the adversary does (it can delay rounds, not bias them) —
// the property the tests check.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/adversary_spec.hpp"
#include "support/rng.hpp"

namespace jamelect {

struct FairMacParams {
  std::uint64_t n = 16;
  std::uint64_t rounds = 64;
  double eps = 0.5;
  /// Per-round slot cutoff; a round that exceeds it aborts the run.
  std::int64_t max_slots_per_round = 1 << 20;
};

struct FairMacResult {
  bool completed = false;
  std::uint64_t rounds_completed = 0;
  std::int64_t slots_total = 0;
  std::int64_t jams_total = 0;
  std::vector<std::int64_t> grants;  ///< per-station win counts
  /// Jain fairness index of `grants`; requires rounds_completed >= 1.
  [[nodiscard]] double jain_index() const;
};

/// Runs the rotation MAC against one persistent (T, 1-eps) adversary.
[[nodiscard]] FairMacResult run_fair_mac(const FairMacParams& params,
                                         const AdversarySpec& adversary,
                                         Rng rng);

}  // namespace jamelect
