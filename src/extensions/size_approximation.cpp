#include "extensions/size_approximation.hpp"

#include <algorithm>
#include <cmath>

#include "support/expects.hpp"
#include "support/math.hpp"
#include "support/state_hash.hpp"
#include "support/stats.hpp"

namespace jamelect {

SizeApproximation::SizeApproximation(SizeApproximationParams params)
    : params_(params), a_(8.0 / params.eps) {
  JAMELECT_EXPECTS(params.eps > 0.0 && params.eps <= 1.0);
  JAMELECT_EXPECTS(params.budget >= 2);
  samples_.reserve(static_cast<std::size_t>(params.budget - params.budget / 2));
}

double SizeApproximation::transmit_probability() {
  if (completed()) return 0.0;
  return jamelect::transmit_probability(u_);
}

void SizeApproximation::observe(ChannelState state) {
  if (completed()) return;
  switch (state) {
    case ChannelState::kNull:
      u_ = std::max(0.0, u_ - 1.0);
      break;
    case ChannelState::kCollision:
      u_ += 1.0 / a_;
      break;
    case ChannelState::kSingle:
      // A Single means u is in the sweet window right now — keep it.
      break;
  }
  ++slots_seen_;
  if (slots_seen_ > params_.budget / 2) {
    samples_.push_back(u_);
    samples_hash_ = StateHash{}.add(samples_hash_).add(u_).value();
  }
}

std::uint64_t SizeApproximation::state_hash() const {
  return StateHash{}
      .add(params_.eps)
      .add(params_.budget)
      .add(u_)
      .add(slots_seen_)
      .add(samples_hash_)
      .value();
}

bool SizeApproximation::state_equals(const UniformProtocol& other) const {
  const auto* o = dynamic_cast<const SizeApproximation*>(&other);
  return o != nullptr && params_.eps == o->params_.eps &&
         params_.budget == o->params_.budget && u_ == o->u_ &&
         slots_seen_ == o->slots_seen_ &&
         samples_hash_ == o->samples_hash_ && samples_ == o->samples_;
}

double SizeApproximation::estimate_log2n() const {
  JAMELECT_EXPECTS(completed());
  std::vector<double> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, 0.5);
}

double SizeApproximation::estimate_n() const {
  return std::exp2(estimate_log2n());
}

}  // namespace jamelect
