// Estimation(L) — paper Function 2.
//
//   for round = 1, 2, ... do
//     repeat 2^round times: Broadcast(2^round)   // transmit w.p. 2^-2^round
//     if (#Nulls in this round) >= L then return round
//
// Lemma 2.8: with L = 2 and n >= 115, in the presence of any
// (T, 1-eps)-adversary, Estimation either obtains a Single or returns i
// with log log n - 1 <= i <= max{log log n, log T} + 1, within
// O(max{log n, T}) slots, with probability >= 1 - 2/n^2.
//
// The returned round feeds LESU's time-budget seed t0 = c * 2^(1+i): the
// point is that 2^i is a proxy for max{log n, T} that stations can
// compute with *no* global knowledge.
#pragma once

#include <cstdint>
#include <string>

#include "protocols/uniform.hpp"

namespace jamelect {

class Estimation final : public UniformProtocol {
 public:
  /// `L` is the Null-count threshold per round (the paper uses 2).
  explicit Estimation(std::int64_t L = 2);

  [[nodiscard]] double transmit_probability() override;
  void observe(ChannelState state) override;
  /// True iff a Single occurred before the estimation completed — the
  /// network elected a leader as a side effect (Lemma 2.8's "obtains
  /// Single" branch).
  [[nodiscard]] bool elected() const override { return elected_; }
  [[nodiscard]] std::string name() const override { return "Estimation"; }
  [[nodiscard]] UniformProtocolPtr clone() const override {
    return std::make_unique<Estimation>(*this);
  }
  [[nodiscard]] std::uint64_t state_hash() const override;
  [[nodiscard]] bool state_equals(const UniformProtocol& other) const override;

  /// True once a round accumulated >= L Nulls (the "returns i" branch).
  [[nodiscard]] bool completed() const noexcept { return completed_; }
  /// The returned round index; valid only when completed().
  [[nodiscard]] std::int64_t result() const;
  /// Round currently executing (1-based).
  [[nodiscard]] std::int64_t round() const noexcept { return round_; }

 private:
  void begin_round(std::int64_t round);

  std::int64_t L_;
  std::int64_t round_ = 0;
  std::int64_t slots_left_in_round_ = 0;
  std::int64_t nulls_in_round_ = 0;
  double round_probability_ = 1.0;
  bool completed_ = false;
  bool elected_ = false;
};

}  // namespace jamelect
