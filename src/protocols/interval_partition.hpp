// The C1/C2/C3 slot partition used by Notification (paper §3).
//
//   C^i_1 = {3*2^i - 3, ..., 4*2^i - 4}
//   C^i_2 = {4*2^i - 3, ..., 5*2^i - 4}
//   C^i_3 = {5*2^i - 3, ..., 6*2^i - 4}       (i >= 1; each has size 2^i)
//
// and C_j is the union over i of C^i_j. The three sets interleave in
// exponentially growing intervals, so for i >= log2(T) the adversary
// cannot jam an entire interval C^i_j — the property Lemma 3.1 leans on.
//
// The paper's indexing starts at slot 3 (C^1_1 = {3, 4}); slots 0..2
// belong to no set and are idle padding (DESIGN.md §5). The blocks tile
// the line: block i spans [3*2^i - 3, 6*2^i - 4] and block i+1 starts at
// 6*2^i - 3.
#pragma once

#include <cstdint>

#include "channel/types.hpp"

namespace jamelect {

/// Which of the three sets a slot belongs to.
enum class IntervalSet : std::uint8_t {
  kPadding = 0,  ///< slots 0..2
  kC1 = 1,
  kC2 = 2,
  kC3 = 3,
};

/// Full classification of one slot within the partition.
struct IntervalPosition {
  IntervalSet set = IntervalSet::kPadding;
  std::int64_t block = 0;     ///< the paper's i (>= 1); 0 for padding
  std::int64_t offset = 0;    ///< position within the interval, in [0, 2^block)
  std::int64_t size = 0;      ///< interval length 2^block; 0 for padding
  [[nodiscard]] bool interval_start() const noexcept {
    return set != IntervalSet::kPadding && offset == 0;
  }
};

/// Classifies a slot. O(1) via bit tricks; total over all slots the
/// partition is exact and disjoint (property-tested).
[[nodiscard]] IntervalPosition classify_slot(Slot slot);

/// First slot of interval C^i_j (i >= 1, j in {1,2,3}).
[[nodiscard]] Slot interval_first_slot(std::int64_t i, IntervalSet j);

/// One-past-last slot of interval C^i_j.
[[nodiscard]] Slot interval_end_slot(std::int64_t i, IntervalSet j);

}  // namespace jamelect
