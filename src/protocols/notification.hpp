// Notification — paper Function 4 (§3).
//
// Transforms any weak-CD *selection resolution* algorithm A (one that
// obtains a first Single w.h.p. despite the adversary) into a full
// weak-CD *leader election*: after the transformation the successful
// transmitter also KNOWS it is the leader, and every station
// terminates. Overhead is a constant factor (Lemma 3.1, n >= 3).
//
// The slot line is partitioned into C1/C2/C3 (interval_partition.hpp).
// A is executed inside C1 (and later C2) with a restart at every
// interval boundary: the first 2^i steps of a fresh instance run in
// C^i_1, then all variables revert and 2^(i+1) fresh steps run in
// C^(i+1)_1 — fresh randomness each time.
//
// Per-station state machine (matching the paper's pseudocode; see the
// phase enum below):
//   1. kFirstLoop — run A in C1 "until a Single in C1 or C2".
//      * A listener hearing Single in C1 sets leader=false and moves to
//        the second loop (fresh A in C2). The transmitter l of that
//        Single perceives only a Collision (weak-CD) and keeps running
//        A in C1, alone.
//      * l eventually hears a Single in C2 (it listens there): with
//        leader still undefined it concludes IT transmitted the C1
//        Single, sets leader=true and moves to kAnnounceC3.
//   2. kSecondLoop — run A in C2 "until a Single in C2 or C3".
//      * A listener hearing Single in C2 (leader=false) moves to
//        kConfirmC1: transmit in EVERY C1 slot until a Single in C3.
//        This keeps C1 busy so l cannot observe a premature Null.
//      * The C2-Single's transmitter s perceives a Collision and stays
//        in the loop; it exits when it hears l's Single in C3, and
//        since (from its view) status(C2) != Single it simply returns
//        as a non-leader.
//   3. kAnnounceC3 — l transmits in every C3 slot until a Null in C1;
//      the first un-jammed C3 slot is a Single (only l transmits there)
//      which releases everyone in kConfirmC1/kSecondLoop; once C1 goes
//      quiet the adversary cannot jam a whole interval, the Null
//      arrives, and l terminates too.
//
// Requires n >= 3: with n = 2 the set R of confirmers is empty, C1
// falls silent before the leader has announced, and the s station can
// deadlock — the same reason Lemma 3.1 assumes n >= 3.
#pragma once

#include <string>

#include "protocols/interval_partition.hpp"
#include "protocols/station.hpp"
#include "protocols/uniform.hpp"

namespace jamelect {

class NotificationStation final : public StationProtocol {
 public:
  /// `factory` yields a fresh instance of the inner algorithm A for
  /// each interval restart.
  explicit NotificationStation(UniformProtocolFactory factory);

  [[nodiscard]] double transmit_probability(Slot slot) override;
  void feedback(Slot slot, bool transmitted, Observation obs) override;
  [[nodiscard]] bool done() const override { return phase_ == Phase::kDone; }
  [[nodiscard]] bool is_leader() const override;
  [[nodiscard]] std::string name() const override { return "Notification"; }
  [[nodiscard]] double estimate() const override {
    return a_ != nullptr ? a_->estimate()
                         : std::numeric_limits<double>::quiet_NaN();
  }

  // Cohort-compression hooks. Under the cohort engine every member
  // descends from one prototype, so all instances share the same
  // factory and equality of the dynamic state (phase, leader flag,
  // inner A) implies behavioural equality. The tx flag only matters on
  // a perceived Single (`heard_single` in feedback()), so Null and
  // Collision slots never force a cohort split.
  [[nodiscard]] StationProtocolPtr clone_station() const override;
  [[nodiscard]] std::uint64_t state_hash() const override;
  [[nodiscard]] bool state_equals(const StationProtocol& other) const override;
  [[nodiscard]] bool feedback_tx_sensitive(Observation obs) const override {
    return obs == Observation::kSingle;
  }

  enum class Phase : std::uint8_t {
    kFirstLoop,   ///< A in C1 until Single in C1 or C2
    kSecondLoop,  ///< A in C2 until Single in C2 or C3
    kConfirmC1,   ///< transmit every C1 slot until Single in C3
    kAnnounceC3,  ///< (leader) transmit every C3 slot until Null in C1
    kDone,
  };
  [[nodiscard]] Phase phase() const noexcept { return phase_; }

 private:
  /// Deep copy for clone_station() (the inner A instance is cloned).
  NotificationStation(const NotificationStation& other);
  /// Restart A if `pos` begins a new interval of the set we run A in.
  void maybe_restart(const IntervalPosition& pos, IntervalSet active_set);

  UniformProtocolFactory factory_;
  UniformProtocolPtr a_;
  Phase phase_ = Phase::kFirstLoop;
  // tri-state leader flag: the paper's undefined/false/true.
  enum class LeaderFlag : std::uint8_t { kUndefined, kFalse, kTrue };
  LeaderFlag leader_ = LeaderFlag::kUndefined;
};

}  // namespace jamelect
