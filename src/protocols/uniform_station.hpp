// Adapter: run a UniformProtocol as one station under the slot engine.
//
// Every station owns its own instance of the uniform protocol; since a
// uniform protocol's state is a deterministic function of its
// observation stream, stations stay in lockstep exactly as long as they
// observe the same states. Under strong-CD that is always; under
// weak-CD a transmitter's view diverges precisely on Single slots (it
// sees Collision) — which is the behaviour Notification is built
// around.
//
// Termination semantics (strong-CD leader election / weak-CD selection
// resolution): on observing Single, a listener terminates as a
// non-leader; a transmitter that *perceives* Single (only possible in
// strong-CD) terminates as the leader.
#pragma once

#include <string>

#include "protocols/station.hpp"
#include "protocols/uniform.hpp"

namespace jamelect {

class UniformStationAdapter final : public StationProtocol {
 public:
  explicit UniformStationAdapter(UniformProtocolPtr protocol);

  [[nodiscard]] double transmit_probability(Slot slot) override;
  void feedback(Slot slot, bool transmitted, Observation obs) override;
  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] bool is_leader() const override { return leader_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double estimate() const override { return protocol_->estimate(); }

  // Cohort-compression hooks: delegate to the wrapped protocol's
  // state_hash()/state_equals() and mix in the adapter's own flags. The
  // tx flag only matters on a perceived Single (see feedback()), so
  // Null/Collision slots never force a cohort split.
  [[nodiscard]] StationProtocolPtr clone_station() const override;
  [[nodiscard]] std::uint64_t state_hash() const override;
  [[nodiscard]] bool state_equals(const StationProtocol& other) const override;
  [[nodiscard]] bool feedback_tx_sensitive(Observation obs) const override {
    return obs == Observation::kSingle;
  }
  void set_probe(obs::ProtocolProbe* probe) override {
    protocol_->set_probe(probe);
  }

  [[nodiscard]] const UniformProtocol& protocol() const noexcept { return *protocol_; }

 private:
  UniformProtocolPtr protocol_;
  bool done_ = false;
  bool leader_ = false;
};

}  // namespace jamelect
