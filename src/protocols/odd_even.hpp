// The NAIVE weak-CD notification scheme the paper dismisses (§1.3/§3):
//
//   "one can perform the algorithm only in odd time slots and whenever
//    a successful transmission occurs, the stations that heard the
//    transmission broadcast in the corresponding even time slot. Using
//    this mechanism, the leader can realize that it had become a leader
//    [...] However even a simple adversary can disrupt such algorithm
//    by jamming some even time slot."
//
// Mechanics implemented here:
//   * odd slots (0, 2, 4, ... are "odd" in the paper's 1-indexed
//     phrasing; we use even indices for the algorithm and odd indices
//     for notification — the parity labels below follow OUR indices):
//     algorithm slots run the inner uniform protocol A;
//   * after an algorithm slot, every LISTENER that heard a Single
//     transmits in the following notification slot; a station that
//     TRANSMITTED in the algorithm slot listens in the notification
//     slot and declares itself leader iff it hears a non-Null there.
//
// Correct without an adversary: only a true Single's transmitter gets a
// busy notification slot. UNSOUND with one: if the algorithm slot was a
// Collision of k >= 2 transmitters, no one notifies — but a jammed
// notification slot reads as Collision (busy) to ALL k transmitters,
// and every one of them concludes it is the leader. The paper's
// one-line dismissal, made executable: tests/odd_even_test.cpp shows a
// two-leader safety violation under a reactive jammer, and the same
// seeds electing exactly one leader with the real Notification.
#pragma once

#include <string>

#include "protocols/station.hpp"
#include "protocols/uniform.hpp"

namespace jamelect {

class OddEvenStation final : public StationProtocol {
 public:
  explicit OddEvenStation(UniformProtocolPtr inner);

  [[nodiscard]] double transmit_probability(Slot slot) override;
  void feedback(Slot slot, bool transmitted, Observation obs) override;
  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] bool is_leader() const override { return leader_; }
  [[nodiscard]] std::string name() const override { return "OddEven"; }
  [[nodiscard]] double estimate() const override { return inner_->estimate(); }

 private:
  static bool is_algorithm_slot(Slot slot) { return slot % 2 == 0; }

  UniformProtocolPtr inner_;
  bool transmitted_last_ = false;  ///< did we transmit in the last algo slot
  bool heard_single_ = false;      ///< did we hear a Single in it
  bool done_ = false;
  bool leader_ = false;
};

}  // namespace jamelect
