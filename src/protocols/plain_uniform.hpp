// PlainUniform — the textbook uniform protocol: transmit with the same
// fixed probability p = 2^-u in every slot until a Single is perceived.
//
// With u = log2(n) this is the classic known-n ALOHA-style election
// (success probability ~1/e per un-jammed slot); the paper's protocols
// exist precisely because u0 = log2(n) is unknown and must be learned.
// It serves here as (a) the simplest member of the uniform family for
// engine tests, and (b) the third kernelized protocol of the batched
// Monte-Carlo path (protocols/kernels.hpp).
#pragma once

#include <string>

#include "protocols/uniform.hpp"
#include "support/expects.hpp"
#include "support/math.hpp"
#include "support/state_hash.hpp"

namespace jamelect {

struct PlainUniformParams {
  /// Broadcast exponent: every slot transmits w.p. 2^-u. Requires
  /// u >= 0 (the Broadcast(u) domain).
  double u = 0.0;
};

class PlainUniform final : public UniformProtocol {
 public:
  explicit PlainUniform(PlainUniformParams params) : params_(params) {
    JAMELECT_EXPECTS(params.u >= 0.0);
  }
  explicit PlainUniform(double u) : PlainUniform(PlainUniformParams{u}) {}

  [[nodiscard]] double transmit_probability() override {
    if (elected_) return 0.0;
    return jamelect::transmit_probability(params_.u);
  }
  void observe(ChannelState state) override {
    if (!elected_ && state == ChannelState::kSingle) elected_ = true;
  }
  [[nodiscard]] bool elected() const override { return elected_; }
  [[nodiscard]] std::string name() const override { return "Uniform"; }
  [[nodiscard]] UniformProtocolPtr clone() const override {
    return std::make_unique<PlainUniform>(*this);
  }
  [[nodiscard]] double estimate() const override { return params_.u; }
  [[nodiscard]] std::uint64_t state_hash() const override {
    return StateHash{}.add(params_.u).add(elected_).value();
  }
  [[nodiscard]] bool state_equals(const UniformProtocol& other) const override {
    const auto* o = dynamic_cast<const PlainUniform*>(&other);
    return o != nullptr && params_.u == o->params_.u && elected_ == o->elected_;
  }

  [[nodiscard]] const PlainUniformParams& params() const noexcept {
    return params_;
  }

 private:
  PlainUniformParams params_;
  bool elected_ = false;
};

}  // namespace jamelect
