#include "protocols/odd_even.hpp"

#include <utility>

#include "channel/channel.hpp"
#include "support/expects.hpp"

namespace jamelect {

OddEvenStation::OddEvenStation(UniformProtocolPtr inner)
    : inner_(std::move(inner)) {
  JAMELECT_EXPECTS(inner_ != nullptr);
}

double OddEvenStation::transmit_probability(Slot slot) {
  if (done_) return 0.0;
  if (is_algorithm_slot(slot)) return inner_->transmit_probability();
  // Notification slot: listeners that heard a Single shout back.
  return heard_single_ ? 1.0 : 0.0;
}

void OddEvenStation::feedback(Slot slot, bool transmitted, Observation obs) {
  if (done_) return;
  JAMELECT_EXPECTS(obs != Observation::kNoSingle);
  const ChannelState state = to_channel_state(obs);
  if (is_algorithm_slot(slot)) {
    inner_->observe(state);
    transmitted_last_ = transmitted;
    heard_single_ = !transmitted && state == ChannelState::kSingle;
    return;
  }
  // Notification slot.
  if (transmitted_last_ && !transmitted && state != ChannelState::kNull) {
    // We transmitted in the algorithm slot and the notification slot is
    // busy: conclude we won. THIS is the unsound step — a jammed
    // notification slot is busy for every colliding transmitter at
    // once.
    done_ = true;
    leader_ = true;
    return;
  }
  if (heard_single_) {
    // We acknowledged a winner; our own role is settled.
    done_ = true;
    leader_ = false;
  }
  transmitted_last_ = false;
  heard_single_ = false;
}

}  // namespace jamelect
