#include "protocols/lesk.hpp"

#include <algorithm>

#include "obs/observer.hpp"
#include "support/expects.hpp"
#include "support/math.hpp"
#include "support/state_hash.hpp"

namespace jamelect {

Lesk::Lesk(LeskParams params)
    : params_(params), a_(8.0 / params.eps), u_(params.initial_u) {
  JAMELECT_EXPECTS(params.eps > 0.0 && params.eps <= 1.0);
  JAMELECT_EXPECTS(params.initial_u >= 0.0);
}

double Lesk::transmit_probability() {
  return jamelect::transmit_probability(u_);
}

std::uint64_t Lesk::state_hash() const {
  return StateHash{}
      .add(params_.eps)
      .add(params_.initial_u)
      .add(u_)
      .add(elected_)
      .value();
}

bool Lesk::state_equals(const UniformProtocol& other) const {
  const auto* o = dynamic_cast<const Lesk*>(&other);
  return o != nullptr && params_.eps == o->params_.eps &&
         params_.initial_u == o->params_.initial_u && u_ == o->u_ &&
         elected_ == o->elected_;
}

void Lesk::observe(ChannelState state) {
  if (elected_) return;
  switch (state) {
    case ChannelState::kNull:
      u_ = std::max(u_ - 1.0, 0.0);
      break;
    case ChannelState::kCollision:
      u_ += 1.0 / a_;
      break;
    case ChannelState::kSingle:
      elected_ = true;
      if (probe_ != nullptr) {
        probe_->on_protocol_phase("LESK", "elected", 0, 0, params_.eps);
      }
      break;
  }
}

}  // namespace jamelect
