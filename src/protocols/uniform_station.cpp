#include "protocols/uniform_station.hpp"

#include <utility>

#include <memory>

#include "channel/channel.hpp"
#include "support/expects.hpp"
#include "support/state_hash.hpp"

namespace jamelect {

UniformStationAdapter::UniformStationAdapter(UniformProtocolPtr protocol)
    : protocol_(std::move(protocol)) {
  JAMELECT_EXPECTS(protocol_ != nullptr);
}

double UniformStationAdapter::transmit_probability(Slot) {
  if (done_) return 0.0;
  return protocol_->transmit_probability();
}

void UniformStationAdapter::feedback(Slot, bool transmitted, Observation obs) {
  if (done_) return;
  JAMELECT_EXPECTS(obs != Observation::kNoSingle);  // no-CD unsupported here
  const ChannelState state = to_channel_state(obs);
  protocol_->observe(state);
  if (state == ChannelState::kSingle) {
    done_ = true;
    // In strong-CD a transmitter perceives its own Single and becomes
    // the leader; in weak-CD a transmitter never perceives Single, so
    // this adapter terminates only listeners (selection resolution).
    leader_ = transmitted;
  }
}

std::string UniformStationAdapter::name() const {
  return protocol_->name() + "/station";
}

StationProtocolPtr UniformStationAdapter::clone_station() const {
  auto copy = std::make_unique<UniformStationAdapter>(protocol_->clone());
  copy->done_ = done_;
  copy->leader_ = leader_;
  return copy;
}

std::uint64_t UniformStationAdapter::state_hash() const {
  return StateHash{}
      .add(protocol_->state_hash())
      .add(done_)
      .add(leader_)
      .value();
}

bool UniformStationAdapter::state_equals(const StationProtocol& other) const {
  const auto* o = dynamic_cast<const UniformStationAdapter*>(&other);
  return o != nullptr && done_ == o->done_ && leader_ == o->leader_ &&
         protocol_->state_equals(*o->protocol_);
}

}  // namespace jamelect
