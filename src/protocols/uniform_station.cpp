#include "protocols/uniform_station.hpp"

#include <utility>

#include "channel/channel.hpp"
#include "support/expects.hpp"

namespace jamelect {

UniformStationAdapter::UniformStationAdapter(UniformProtocolPtr protocol)
    : protocol_(std::move(protocol)) {
  JAMELECT_EXPECTS(protocol_ != nullptr);
}

double UniformStationAdapter::transmit_probability(Slot) {
  if (done_) return 0.0;
  return protocol_->transmit_probability();
}

void UniformStationAdapter::feedback(Slot, bool transmitted, Observation obs) {
  if (done_) return;
  JAMELECT_EXPECTS(obs != Observation::kNoSingle);  // no-CD unsupported here
  const ChannelState state = to_channel_state(obs);
  protocol_->observe(state);
  if (state == ChannelState::kSingle) {
    done_ = true;
    // In strong-CD a transmitter perceives its own Single and becomes
    // the leader; in weak-CD a transmitter never perceives Single, so
    // this adapter terminates only listeners (selection resolution).
    leader_ = transmitted;
  }
}

std::string UniformStationAdapter::name() const {
  return protocol_->name() + "/station";
}

}  // namespace jamelect
