#include "protocols/lesu.hpp"

#include <cmath>
#include <limits>
#include <memory>

#include "obs/observer.hpp"
#include "support/expects.hpp"
#include "support/math.hpp"
#include "support/state_hash.hpp"

namespace jamelect {

Lesu::Lesu(LesuParams params)
    : params_(params), estimation_(params.estimation_L) {
  JAMELECT_EXPECTS(params.c > 0.0);
  JAMELECT_EXPECTS(params.max_i >= 1 && params.max_i < 62);
}

Lesu::Lesu(const Lesu& other)
    : params_(other.params_),
      estimation_(other.estimation_),
      phase_(other.phase_),
      elected_(other.elected_),
      i_(other.i_),
      j_(other.j_),
      t0_(other.t0_),
      current_eps_(other.current_eps_),
      slots_left_(other.slots_left_),
      lesk_(other.lesk_ ? other.lesk_->clone() : nullptr),
      probe_(other.probe_) {}

void Lesu::set_probe(obs::ProtocolProbe* probe) {
  probe_ = probe;
  if (lesk_ != nullptr) lesk_->set_probe(probe);
}

UniformProtocolPtr Lesu::clone() const { return std::make_unique<Lesu>(*this); }

double Lesu::estimate() const {
  if (phase_ == Phase::kLesk && lesk_ != nullptr) return lesk_->estimate();
  return std::numeric_limits<double>::quiet_NaN();
}

std::uint64_t Lesu::state_hash() const {
  return StateHash{}
      .add(params_.c)
      .add(params_.estimation_L)
      .add(params_.max_i)
      .add(estimation_.state_hash())
      .add(phase_ == Phase::kLesk)
      .add(elected_)
      .add(i_)
      .add(j_)
      .add(t0_)
      .add(current_eps_)
      .add(slots_left_)
      .add(lesk_ ? lesk_->state_hash() : 0)
      .value();
}

bool Lesu::state_equals(const UniformProtocol& other) const {
  const auto* o = dynamic_cast<const Lesu*>(&other);
  if (o == nullptr) return false;
  if (params_.c != o->params_.c ||
      params_.estimation_L != o->params_.estimation_L ||
      params_.max_i != o->params_.max_i || phase_ != o->phase_ ||
      elected_ != o->elected_ || i_ != o->i_ || j_ != o->j_ ||
      t0_ != o->t0_ || current_eps_ != o->current_eps_ ||
      slots_left_ != o->slots_left_) {
    return false;
  }
  if (!estimation_.state_equals(o->estimation_)) return false;
  if ((lesk_ == nullptr) != (o->lesk_ == nullptr)) return false;
  return lesk_ == nullptr || lesk_->state_equals(*o->lesk_);
}

void Lesu::start_subexecution(std::int64_t i, std::int64_t j) {
  JAMELECT_EXPECTS(i >= 1 && j >= 1 && j <= i);
  i_ = i;
  j_ = j;
  current_eps_ = std::exp2(-static_cast<double>(j) / 3.0);
  // Budget for (i, j): t_i * i / j = 3 * 2^i * t0 / j.
  const double budget =
      3.0 * std::ldexp(t0_, static_cast<int>(i)) / static_cast<double>(j);
  slots_left_ = ceil_to_slots(budget);
  JAMELECT_ENSURES(slots_left_ >= 1);
  lesk_ = std::make_unique<Lesk>(LeskParams{current_eps_, 0.0});
  lesk_->set_probe(probe_);
  if (probe_ != nullptr) {
    probe_->on_protocol_phase("LESU", "subexec", i, j, current_eps_);
  }
}

double Lesu::transmit_probability() {
  if (elected_) return 0.0;
  if (phase_ == Phase::kEstimation) return estimation_.transmit_probability();
  return lesk_->transmit_probability();
}

void Lesu::observe(ChannelState state) {
  if (elected_) return;
  if (phase_ == Phase::kEstimation) {
    estimation_.observe(state);
    if (estimation_.elected()) {
      elected_ = true;
      if (probe_ != nullptr) {
        probe_->on_protocol_phase("LESU", "elected", 0, 0, 0.0);
      }
      return;
    }
    if (estimation_.completed()) {
      // t0 <- c * 2^(1 + Estimation(2)).
      t0_ = params_.c *
            std::ldexp(1.0, static_cast<int>(estimation_.result()) + 1);
      phase_ = Phase::kLesk;
      if (probe_ != nullptr) {
        probe_->on_protocol_phase("LESU", "estimation_done", 0, 0, 0.0);
      }
      start_subexecution(1, 1);
    }
    return;
  }

  lesk_->observe(state);
  if (lesk_->elected()) {
    elected_ = true;
    if (probe_ != nullptr) {
      probe_->on_protocol_phase("LESU", "elected", i_, j_, current_eps_);
    }
    return;
  }
  if (--slots_left_ == 0) {
    if (j_ < i_) {
      start_subexecution(i_, j_ + 1);
    } else {
      // The schedule is a hedge, not a guarantee: cap i to keep the
      // 2^i budget shift well-defined. In any plausible run the engine
      // slot limit triggers long before this.
      const std::int64_t next_i = std::min(i_ + 1, params_.max_i);
      start_subexecution(next_i, 1);
    }
  }
}

}  // namespace jamelect
