// LEWU — Leader Election in Weak-CD with Unknown parameters (paper
// Thm 3.3): Notification applied to LESU. No station knows n, T or eps;
// time matches Theorem 2.9 up to a constant factor, with probability
// >= 1 - 1/n, for n >= 115 (the Estimation lemma's regime).
#pragma once

#include <memory>

#include "protocols/lesu.hpp"
#include "protocols/notification.hpp"

namespace jamelect {

/// One LEWU station: Notification wrapping fresh LESU instances.
[[nodiscard]] inline StationProtocolPtr make_lewu_station(LesuParams params = {}) {
  return std::make_unique<NotificationStation>(
      [params] { return std::make_unique<Lesu>(params); });
}

}  // namespace jamelect
