// LEWK — Leader Election in Weak-CD with Known eps (paper Thm 3.2):
// Notification applied to LESK. Runs in O(max{T, log(1/eps)/eps^3 *
// log n}) slots with probability >= 1 - 1/n against any (T, 1-eps)-
// bounded adversary, for known eps, unknown T and unknown n >= 3.
#pragma once

#include <memory>

#include "protocols/lesk.hpp"
#include "protocols/notification.hpp"

namespace jamelect {

/// One LEWK station: Notification wrapping fresh LESK(eps) instances.
[[nodiscard]] inline StationProtocolPtr make_lewk_station(double eps) {
  return std::make_unique<NotificationStation>(
      [eps] { return std::make_unique<Lesk>(LeskParams{eps, 0.0}); });
}

}  // namespace jamelect
