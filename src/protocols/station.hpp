// Per-station protocol interface for the exact slot engine.
//
// Unlike UniformProtocol (one object = the shared state of a uniform
// algorithm), a StationProtocol models ONE station: the engine asks it
// for a transmit probability each slot, draws the coin, resolves the
// channel across all stations plus the adversary, and feeds back the
// per-station Observation (which already encodes the CD model).
#pragma once

#include <limits>
#include <memory>
#include <string>

#include "channel/types.hpp"

namespace jamelect {

class StationProtocol {
 public:
  virtual ~StationProtocol() = default;

  /// Probability of transmitting in `slot`. 0 = listen, 1 = transmit
  /// deterministically (e.g. Notification's announce phases).
  [[nodiscard]] virtual double transmit_probability(Slot slot) = 0;

  /// Result of the slot as this station perceives it. `transmitted`
  /// reports this station's own coin (a station always knows whether it
  /// transmitted); `obs` is produced by observe_slot() for the engine's
  /// CD mode.
  virtual void feedback(Slot slot, bool transmitted, Observation obs) = 0;

  /// True once this station has terminated the protocol and fixed its
  /// leader/non-leader status.
  [[nodiscard]] virtual bool done() const = 0;

  /// This station's final status; meaningful only once done().
  [[nodiscard]] virtual bool is_leader() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// The station's public size estimate, if its protocol keeps one
  /// (used to annotate traces); NaN otherwise.
  [[nodiscard]] virtual double estimate() const {
    return std::numeric_limits<double>::quiet_NaN();
  }
};

using StationProtocolPtr = std::unique_ptr<StationProtocol>;

}  // namespace jamelect
