// Per-station protocol interface for the exact slot engine.
//
// Unlike UniformProtocol (one object = the shared state of a uniform
// algorithm), a StationProtocol models ONE station: the engine asks it
// for a transmit probability each slot, draws the coin, resolves the
// channel across all stations plus the adversary, and feeds back the
// per-station Observation (which already encodes the CD model).
#pragma once

#include <limits>
#include <memory>
#include <string>

#include "channel/types.hpp"

namespace jamelect {

namespace obs {
class ProtocolProbe;
}  // namespace obs

class StationProtocol {
 public:
  virtual ~StationProtocol() = default;

  /// Probability of transmitting in `slot`. 0 = listen, 1 = transmit
  /// deterministically (e.g. Notification's announce phases).
  [[nodiscard]] virtual double transmit_probability(Slot slot) = 0;

  /// Result of the slot as this station perceives it. `transmitted`
  /// reports this station's own coin (a station always knows whether it
  /// transmitted); `obs` is produced by observe_slot() for the engine's
  /// CD mode.
  virtual void feedback(Slot slot, bool transmitted, Observation obs) = 0;

  /// True once this station has terminated the protocol and fixed its
  /// leader/non-leader status.
  [[nodiscard]] virtual bool done() const = 0;

  /// This station's final status; meaningful only once done().
  [[nodiscard]] virtual bool is_leader() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// The station's public size estimate, if its protocol keeps one
  /// (used to annotate traces); NaN otherwise.
  [[nodiscard]] virtual double estimate() const {
    return std::numeric_limits<double>::quiet_NaN();
  }

  // --- Cohort-compression hooks (sim/cohort.hpp) -------------------
  // The cohort engine groups stations with identical protocol state and
  // advances one representative per group. Defaults are conservative:
  // a protocol that overrides nothing cannot run compressed
  // (clone_station() == nullptr) and is never considered equal to
  // another instance, which forces worst-case splitting but can never
  // produce a wrong merge.

  /// Deep copy of this station's full protocol state. nullptr means the
  /// protocol does not support cohort compression (e.g. identity-keyed
  /// protocols like ARSS) and must run under the exact SlotEngine.
  [[nodiscard]] virtual std::unique_ptr<StationProtocol> clone_station()
      const {
    return nullptr;
  }

  /// 64-bit fingerprint of the protocol state: must be equal whenever
  /// state_equals() would return true (cheap first-stage merge filter).
  [[nodiscard]] virtual std::uint64_t state_hash() const { return 0; }

  /// Exact protocol-state equality: true only if this station and
  /// `other` are guaranteed to behave identically on any future
  /// observation stream. False may also mean "unknown" — the engine
  /// then conservatively keeps the cohorts apart.
  [[nodiscard]] virtual bool state_equals(const StationProtocol& other) const {
    (void)other;
    return false;
  }

  /// Whether feedback(slot, transmitted, obs) can transition this
  /// station differently for a transmitter vs a listener that perceived
  /// the SAME observation `obs`. When false, a mixed cohort (some
  /// members transmitted, some listened) with identical observations
  /// advances by a single feedback call instead of a split-and-compare.
  [[nodiscard]] virtual bool feedback_tx_sensitive(Observation obs) const {
    (void)obs;
    return true;
  }

  /// Attaches a telemetry probe (obs/observer.hpp); see
  /// UniformProtocol::set_probe for the contract. Default: ignored.
  /// Adapters forward to their wrapped protocol.
  virtual void set_probe(obs::ProtocolProbe* probe) { (void)probe; }
};

using StationProtocolPtr = std::unique_ptr<StationProtocol>;

}  // namespace jamelect
