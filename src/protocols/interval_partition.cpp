#include "protocols/interval_partition.hpp"

#include "support/expects.hpp"
#include "support/math.hpp"

namespace jamelect {

IntervalPosition classify_slot(Slot slot) {
  JAMELECT_EXPECTS(slot >= 0);
  if (slot < 3) return {};
  // Block i covers [3*2^i - 3, 6*2^i - 4], i.e. slot+3 in [3*2^i, 6*2^i).
  const auto shifted = static_cast<std::uint64_t>(slot) + 3;
  const auto i = static_cast<std::int64_t>(floor_log2(shifted / 3));
  const std::int64_t size = std::int64_t{1} << i;
  const std::int64_t block_start = 3 * size - 3;
  const std::int64_t off_in_block = slot - block_start;
  JAMELECT_ENSURES(off_in_block >= 0 && off_in_block < 3 * size);
  const std::int64_t which = off_in_block / size;  // 0,1,2 -> C1,C2,C3
  IntervalPosition pos;
  pos.set = static_cast<IntervalSet>(which + 1);
  pos.block = i;
  pos.offset = off_in_block % size;
  pos.size = size;
  return pos;
}

Slot interval_first_slot(std::int64_t i, IntervalSet j) {
  JAMELECT_EXPECTS(i >= 1 && i < 62);
  JAMELECT_EXPECTS(j != IntervalSet::kPadding);
  const std::int64_t size = std::int64_t{1} << i;
  const auto jdx = static_cast<std::int64_t>(j);  // 1..3
  return (2 + jdx) * size - 3;
}

Slot interval_end_slot(std::int64_t i, IntervalSet j) {
  return interval_first_slot(i, j) + (std::int64_t{1} << i);
}

}  // namespace jamelect
