#include "protocols/estimation.hpp"

#include <cmath>

#include "support/expects.hpp"
#include "support/state_hash.hpp"

namespace jamelect {

Estimation::Estimation(std::int64_t L) : L_(L) {
  JAMELECT_EXPECTS(L >= 1);
  begin_round(1);
}

void Estimation::begin_round(std::int64_t round) {
  round_ = round;
  // 2^round slots per round; the round index is bounded in practice by
  // ~log max{log n, log T} + O(1), far below any overflow concern, but
  // guard the shift anyway.
  JAMELECT_EXPECTS(round >= 1 && round < 62);
  slots_left_in_round_ = std::int64_t{1} << round;
  nulls_in_round_ = 0;
  // Transmit w.p. 2^-2^round; exp2 underflows gracefully to 0 for
  // round >= ~10 at double precision, which matches the semantics
  // (astronomically small probability).
  round_probability_ = std::exp2(-std::ldexp(1.0, static_cast<int>(round)));
}

double Estimation::transmit_probability() {
  if (completed_ || elected_) return 0.0;
  return round_probability_;
}

void Estimation::observe(ChannelState state) {
  if (completed_ || elected_) return;
  if (state == ChannelState::kSingle) {
    elected_ = true;
    return;
  }
  if (state == ChannelState::kNull) ++nulls_in_round_;
  --slots_left_in_round_;
  if (slots_left_in_round_ == 0) {
    if (nulls_in_round_ >= L_) {
      completed_ = true;
    } else {
      begin_round(round_ + 1);
    }
  }
}

std::uint64_t Estimation::state_hash() const {
  return StateHash{}
      .add(L_)
      .add(round_)
      .add(slots_left_in_round_)
      .add(nulls_in_round_)
      .add(completed_)
      .add(elected_)
      .value();
}

bool Estimation::state_equals(const UniformProtocol& other) const {
  const auto* o = dynamic_cast<const Estimation*>(&other);
  return o != nullptr && L_ == o->L_ && round_ == o->round_ &&
         slots_left_in_round_ == o->slots_left_in_round_ &&
         nulls_in_round_ == o->nulls_in_round_ && completed_ == o->completed_ &&
         elected_ == o->elected_;
}

std::int64_t Estimation::result() const {
  JAMELECT_EXPECTS(completed_);
  return round_;
}

}  // namespace jamelect
