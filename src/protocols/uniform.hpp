// Uniform protocols (paper §1.1, [21]).
//
// In a *uniform* algorithm every station transmits with the same
// probability in every slot, and that probability depends only on the
// public channel history. Consequently the entire per-station protocol
// state is a deterministic function of the observation stream — all
// randomness lives in the transmit coin, which the simulation engine
// owns. This is what makes the O(1)-per-slot aggregate simulation of
// LESK/LESU exact rather than approximate.
//
// The paper's Broadcast(u) primitive (Functions 1 and 3) is split
// across this interface and the engines: `transmit_probability()`
// supplies 2^-u, the engine draws the coins and resolves the channel,
// and `observe()` delivers the state a listener would hear. The weak-CD
// rule "a transmitter assumes Collision" is applied by the engine via
// `observe_slot(..., CdMode::kWeak)`, so the same protocol object runs
// unchanged in both CD models.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>

#include "channel/types.hpp"

namespace jamelect {

namespace obs {
class ProtocolProbe;
}  // namespace obs

/// A uniform single-channel protocol instance. One instance models the
/// shared state of the whole network (aggregate engines) or one
/// station's copy of it (per-station engines).
class UniformProtocol {
 public:
  virtual ~UniformProtocol() = default;

  /// The probability with which each station transmits in the upcoming
  /// slot. Must be in [0, 1]. Called once per slot, before observe().
  [[nodiscard]] virtual double transmit_probability() = 0;

  /// Delivers the channel state this instance perceives for the slot.
  virtual void observe(ChannelState state) = 0;

  /// True once the instance has perceived a Single — under strong-CD
  /// semantics the protocol (a selection-resolution / leader-election
  /// attempt) has then succeeded.
  [[nodiscard]] virtual bool elected() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Deep copy. The hybrid weak-CD engine splits a distinguished
  /// station (the Single's transmitter) off the aggregate population by
  /// cloning the shared state at the divergence point.
  [[nodiscard]] virtual std::unique_ptr<UniformProtocol> clone() const = 0;

  /// The protocol's public size estimate u (so traces can be classified
  /// by the Lemma 2.2-2.5 slot taxonomy); NaN when the protocol has no
  /// such estimator.
  [[nodiscard]] virtual double estimate() const {
    return std::numeric_limits<double>::quiet_NaN();
  }

  // --- Cohort-compression hooks ------------------------------------
  // UniformStationAdapter forwards these so uniform protocols can run
  // under the cohort engine (sim/cohort.hpp). Same contract as the
  // StationProtocol hooks: state_hash() must agree whenever
  // state_equals() is true, and state_equals() may return false for
  // "unknown" (the engine then never merges, which is slow but safe).

  /// 64-bit fingerprint of the full protocol state.
  [[nodiscard]] virtual std::uint64_t state_hash() const { return 0; }

  /// Exact state equality: true only if this instance and `other` are
  /// guaranteed to behave identically on any future observation stream.
  [[nodiscard]] virtual bool state_equals(const UniformProtocol& other) const {
    (void)other;
    return false;
  }

  // --- Telemetry hook ----------------------------------------------

  /// Attaches a telemetry probe (obs/observer.hpp). Protocols with
  /// internal phase structure (LESK, LESU) report transitions through
  /// it; the default implementation ignores it. Non-owning — the probe
  /// must outlive the protocol; clones share the pointer. Probes never
  /// affect protocol behaviour, state_hash(), or state_equals().
  virtual void set_probe(obs::ProtocolProbe* probe) { (void)probe; }
};

using UniformProtocolPtr = std::unique_ptr<UniformProtocol>;

/// Factory producing fresh instances; the Notification wrapper restarts
/// its inner algorithm at every interval boundary via such a factory.
using UniformProtocolFactory = std::function<UniformProtocolPtr()>;

}  // namespace jamelect
