// POD protocol kernels for the batched Monte-Carlo engine (sim/batch.hpp).
//
// A kernel is the flat, devirtualized twin of one uniform protocol
// class: a trivially-copyable state struct with an inlineable
// `step(ChannelState)` transition. The virtual classes (protocols/
// lesk.hpp, lesu.hpp, plain_uniform.hpp) stay the generic path and the
// equivalence oracle — tests/kernel_equivalence_test.cpp locks every
// kernel to its class step-for-step.
//
// Bit-identity contract: a kernel must reproduce its class's per-slot
// behavior EXACTLY, floating point included. Every double here is
// computed by the same expression as in the class (e.g. LeskKernel's
// collision increment is 1.0 / (8.0 / eps), never the algebraically
// equal eps / 8.0 — different rounding), so driving a kernel and its
// class with the same observation stream yields bit-identical
// transmit probabilities, and the batch engine's TrialOutcomes match
// the sequential engines bit for bit.
//
// Instead of a transmit probability, kernels expose `broadcast_u()`:
// the exponent u of the paper's Broadcast(u), with p = min(1, 2^-u)
// (support/math.hpp transmit_probability). Keeping u — which moves on
// the {-1, +eps/8} lattice — as the interface is what lets the batch
// engine collapse the per-slot exp/log1p evaluations into a
// SlotProbCache hash lookup keyed on u's bit pattern.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "channel/types.hpp"
#include "protocols/lesk.hpp"
#include "protocols/lesu.hpp"
#include "protocols/plain_uniform.hpp"
#include "support/expects.hpp"
#include "support/math.hpp"

namespace jamelect::kernels {

/// Twin of PlainUniform: fixed broadcast exponent, elect on Single.
struct UniformKernel {
  using Params = PlainUniformParams;

  double u;
  bool elected;

  explicit UniformKernel(const Params& params)
      : u(params.u), elected(false) {
    JAMELECT_EXPECTS(params.u >= 0.0);
  }

  [[nodiscard]] double broadcast_u() const noexcept { return u; }
  [[nodiscard]] double estimate() const noexcept { return u; }
  [[nodiscard]] bool done() const noexcept { return elected; }

  void step(ChannelState state) noexcept {
    if (!elected && state == ChannelState::kSingle) elected = true;
  }
};

/// Twin of Lesk (paper Alg. 1): u walks -1 on Null (floored at 0),
/// +eps/8 on Collision; elect on Single.
struct LeskKernel {
  using Params = LeskParams;

  /// Collision increment, computed exactly as Lesk does (1.0 / a_ with
  /// a_ = 8.0 / eps); the value is the same double every observe, so
  /// precomputing it preserves bit-identity.
  double inc;
  double u;
  bool elected;

  explicit LeskKernel(const Params& params)
      : inc(1.0 / (8.0 / params.eps)), u(params.initial_u), elected(false) {
    JAMELECT_EXPECTS(params.eps > 0.0 && params.eps <= 1.0);
    JAMELECT_EXPECTS(params.initial_u >= 0.0);
  }

  [[nodiscard]] double broadcast_u() const noexcept { return u; }
  [[nodiscard]] double estimate() const noexcept { return u; }
  [[nodiscard]] bool done() const noexcept { return elected; }

  void step(ChannelState state) noexcept {
    if (elected) return;
    // Select-form of the Null/Collision/Single switch: the channel
    // state is data-dependent, so the branchy form mispredicts in the
    // batch engines' hot loop. Each arm computes the same double the
    // switch would, and the untouched arms select the old u, so the
    // stored bits are identical.
    const double down = std::max(u - 1.0, 0.0);
    const double up = u + inc;
    u = state == ChannelState::kNull ? down
        : state == ChannelState::kCollision ? up
                                            : u;
    elected = state == ChannelState::kSingle;
  }
};

/// Twin of Estimation (paper Function 2): round r transmits w.p.
/// 2^-2^r for 2^r slots; completes when a round sees >= L Nulls.
struct EstimationKernel {
  std::int64_t L;
  std::int64_t round = 0;
  std::int64_t slots_left_in_round = 0;
  std::int64_t nulls_in_round = 0;
  bool completed = false;
  bool elected = false;

  explicit EstimationKernel(std::int64_t L_) : L(L_) {
    JAMELECT_EXPECTS(L >= 1);
    begin_round(1);
  }

  void begin_round(std::int64_t r) {
    JAMELECT_EXPECTS(r >= 1 && r < 62);
    round = r;
    slots_left_in_round = std::int64_t{1} << r;
    nulls_in_round = 0;
  }

  /// p = 2^-2^round; Estimation stores this as exp2(-ldexp(1, round)),
  /// which equals transmit_probability(ldexp(1, round)) bit for bit
  /// (the min(1, ·) clamp never binds for round >= 1).
  [[nodiscard]] double broadcast_u() const noexcept {
    return std::ldexp(1.0, static_cast<int>(round));
  }
  [[nodiscard]] bool done() const noexcept { return elected; }

  void step(ChannelState state) {
    if (completed || elected) return;
    if (state == ChannelState::kSingle) {
      elected = true;
      return;
    }
    if (state == ChannelState::kNull) ++nulls_in_round;
    --slots_left_in_round;
    if (slots_left_in_round == 0) {
      if (nulls_in_round >= L) {
        completed = true;
      } else {
        begin_round(round + 1);
      }
    }
  }
};

/// Twin of Lesu (paper Alg. 2): Estimation, then the doubly-indexed
/// (i, j) LESK schedule with eps_j = 2^(-j/3) and budget 3*2^i*t0/j.
struct LesuKernel {
  using Params = LesuParams;

  LesuParams params;
  EstimationKernel est;
  bool lesk_phase;  ///< Lesu::Phase::kLesk
  bool elected;
  std::int64_t i;
  std::int64_t j;
  double t0;
  double current_eps;
  std::int64_t slots_left;
  LeskKernel lesk;  ///< valid once lesk_phase

  explicit LesuKernel(const Params& p)
      : params(p),
        est(p.estimation_L),
        lesk_phase(false),
        elected(false),
        i(0),
        j(0),
        t0(0.0),
        current_eps(0.0),
        slots_left(0),
        lesk(LeskParams{1.0, 0.0}) {  // placeholder until the phase flips
    JAMELECT_EXPECTS(p.c > 0.0);
    JAMELECT_EXPECTS(p.max_i >= 1 && p.max_i < 62);
  }

  [[nodiscard]] double broadcast_u() const noexcept {
    return lesk_phase ? lesk.broadcast_u() : est.broadcast_u();
  }
  /// Mirrors Lesu::estimate(): inner LESK's u in the LESK phase, NaN
  /// during Estimation.
  [[nodiscard]] double estimate() const noexcept {
    return lesk_phase ? lesk.u : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] bool done() const noexcept { return elected; }

  void start_subexecution(std::int64_t i_, std::int64_t j_) {
    JAMELECT_EXPECTS(i_ >= 1 && j_ >= 1 && j_ <= i_);
    i = i_;
    j = j_;
    current_eps = std::exp2(-static_cast<double>(j_) / 3.0);
    const double budget =
        3.0 * std::ldexp(t0, static_cast<int>(i_)) / static_cast<double>(j_);
    slots_left = ceil_to_slots(budget);
    JAMELECT_ENSURES(slots_left >= 1);
    lesk = LeskKernel(LeskParams{current_eps, 0.0});
  }

  void step(ChannelState state) {
    if (elected) return;
    if (!lesk_phase) {
      est.step(state);
      if (est.elected) {
        elected = true;
        return;
      }
      if (est.completed) {
        t0 = params.c *
             std::ldexp(1.0, static_cast<int>(est.round) + 1);
        lesk_phase = true;
        start_subexecution(1, 1);
      }
      return;
    }

    lesk.step(state);
    if (lesk.elected) {
      elected = true;
      return;
    }
    if (--slots_left == 0) {
      if (j < i) {
        start_subexecution(i, j + 1);
      } else {
        const std::int64_t next_i = std::min(i + 1, params.max_i);
        start_subexecution(next_i, 1);
      }
    }
  }
};

// The batch engine copies kernels by memcpy semantics (lane swap-
// remove, clone-at-split in the hybrid phase machine); these hold that
// contract at compile time.
static_assert(std::is_trivially_copyable_v<UniformKernel>);
static_assert(std::is_trivially_copyable_v<LeskKernel>);
static_assert(std::is_trivially_copyable_v<EstimationKernel>);
static_assert(std::is_trivially_copyable_v<LesuKernel>);

}  // namespace jamelect::kernels
