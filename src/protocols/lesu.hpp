// LESU — Leader Election in Strong-CD with Unknown eps (paper Alg. 2).
//
//   eps_i <- 2^(-i/3)
//   t0    <- c * 2^(1 + Estimation(2))
//   t_i   <- t0 / (eps_i^3 * log2(1/eps_i))     ( = 3 * 2^i * t0 / i )
//   for i = 1, 2, ... :
//     for j = 1, ..., i :
//       run LESK(eps_j) for ceil(t_i * i / j) slots   ( = 3*2^i*t0/j )
//
// The doubly-indexed schedule hedges over both unknowns at once: the
// inner index j sweeps candidate eps values eps_j = 2^(-j/3) (so some
// eps_j lands in [eps/2, eps]), while the outer index i doubles the
// per-candidate time budget, covering unknown T. Theorem 2.9 gives
//   O( log log(1/eps)/eps^3 * log n )                if T <= log n/(eps^3 log(1/eps))
//   O( max{log log(T/(eps log n)), log(1/eps) log log(1/eps)} * T )  otherwise
// with probability >= 1 - 1/(3n), for n >= 115.
//
// The constant c is asserted to exist by the paper (via Thm 2.6), not
// given; we expose it as a parameter with an empirically calibrated
// default (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <string>

#include "protocols/estimation.hpp"
#include "protocols/lesk.hpp"
#include "protocols/uniform.hpp"

namespace jamelect {

struct LesuParams {
  /// Multiplier in t0 = c * 2^(1+Estimation(2)). Calibrated so that
  /// LESK(eps/2, c * max(T, log n/(eps^3 log(1/eps)))) succeeds with
  /// rate >= 1 - 1/n^2 across the tested grid (the binding regime is
  /// eps ~ 0.5-0.7, where the startup ramp a*log2(n) is ~4x the shape
  /// term); see LesuBehaviour.DefaultCIsSufficientlyCalibrated.
  double c = 6.0;
  /// Null threshold handed to Estimation (the paper uses 2).
  std::int64_t estimation_L = 2;
  /// Safety cap on the outer index i (the time budget grows as 2^i, so
  /// 62 is unreachable in any sane run; this only guards the shift).
  std::int64_t max_i = 60;
};

class Lesu final : public UniformProtocol {
 public:
  explicit Lesu(LesuParams params = {});

  [[nodiscard]] double transmit_probability() override;
  void observe(ChannelState state) override;
  [[nodiscard]] bool elected() const override { return elected_; }
  [[nodiscard]] std::string name() const override { return "LESU"; }
  [[nodiscard]] UniformProtocolPtr clone() const override;
  /// The inner LESK's estimate while in Phase::kLesk, else NaN.
  [[nodiscard]] double estimate() const override;
  [[nodiscard]] std::uint64_t state_hash() const override;
  [[nodiscard]] bool state_equals(const UniformProtocol& other) const override;
  /// Telemetry: reports estimation completion, every (i, j) sub-
  /// execution start, and election; forwarded to the inner LESK.
  void set_probe(obs::ProtocolProbe* probe) override;

  /// Deep copy (the inner LESK instance is cloned).
  Lesu(const Lesu& other);
  Lesu& operator=(const Lesu&) = delete;

  enum class Phase { kEstimation, kLesk };
  [[nodiscard]] Phase phase() const noexcept { return phase_; }
  /// Outer/inner schedule indices; valid in Phase::kLesk.
  [[nodiscard]] std::int64_t i() const noexcept { return i_; }
  [[nodiscard]] std::int64_t j() const noexcept { return j_; }
  /// Candidate eps of the currently running LESK (valid in kLesk).
  [[nodiscard]] double current_eps() const noexcept { return current_eps_; }
  /// t0 once Estimation completed, else 0.
  [[nodiscard]] double t0() const noexcept { return t0_; }
  [[nodiscard]] const Estimation& estimation() const noexcept { return estimation_; }
  [[nodiscard]] const LesuParams& params() const noexcept { return params_; }

 private:
  void start_subexecution(std::int64_t i, std::int64_t j);

  LesuParams params_;
  Estimation estimation_;
  Phase phase_ = Phase::kEstimation;
  bool elected_ = false;

  std::int64_t i_ = 0;
  std::int64_t j_ = 0;
  double t0_ = 0.0;
  double current_eps_ = 0.0;
  std::int64_t slots_left_ = 0;
  UniformProtocolPtr lesk_;
  obs::ProtocolProbe* probe_ = nullptr;  ///< non-owning; never affects state
};

}  // namespace jamelect
