// LESK — Leader Election in Strong-CD with Known eps (paper Alg. 1).
//
//   a <- 8/eps ; u <- 0
//   repeat
//     state <- Broadcast(u)            // transmit w.p. 2^-u
//     if state = Null      then u <- max(u - 1, 0)
//     if state = Collision then u <- u + 1/a
//   until state = Single
//
// The estimate u performs a biased random walk around u0 = log2(n): a
// Null is strong evidence the estimate is too big (worth a full -1), a
// Collision is weak evidence it is too small (worth only +eps/8,
// because up to a (1-eps) fraction of slots may be adversarial
// Collisions). The adversary can fabricate Collisions but never Nulls —
// the "one-sided error" the asymmetric step sizes exploit.
//
// Note: the preprint's loop guard reads "until state != Single", which
// would exit on the first Null; the analysis (and the surrounding text)
// make clear the intended guard is "until state = Single". We implement
// the intended version (DESIGN.md §5).
#pragma once

#include <string>

#include "protocols/uniform.hpp"

namespace jamelect {

struct LeskParams {
  /// The (known) eps of the (T, 1-eps)-bounded adversary, in (0, 1].
  double eps = 0.5;
  /// Initial estimate; the paper starts at 0. Exposed for experiments
  /// (e.g. warm-started ablations).
  double initial_u = 0.0;
};

class Lesk final : public UniformProtocol {
 public:
  explicit Lesk(LeskParams params);
  explicit Lesk(double eps) : Lesk(LeskParams{eps, 0.0}) {}

  [[nodiscard]] double transmit_probability() override;
  void observe(ChannelState state) override;
  [[nodiscard]] bool elected() const override { return elected_; }
  [[nodiscard]] std::string name() const override { return "LESK"; }
  [[nodiscard]] UniformProtocolPtr clone() const override {
    return std::make_unique<Lesk>(*this);
  }
  [[nodiscard]] double estimate() const override { return u_; }
  [[nodiscard]] std::uint64_t state_hash() const override;
  [[nodiscard]] bool state_equals(const UniformProtocol& other) const override;
  /// Telemetry: reports the terminal "elected" transition.
  void set_probe(obs::ProtocolProbe* probe) override { probe_ = probe; }

  /// Current estimate u (public: it is a deterministic function of the
  /// channel history, which is why the adversary can track it too).
  [[nodiscard]] double u() const noexcept { return u_; }
  /// a = 8/eps; the Collision increment is 1/a = eps/8.
  [[nodiscard]] double a() const noexcept { return a_; }
  [[nodiscard]] const LeskParams& params() const noexcept { return params_; }

 private:
  LeskParams params_;
  double a_;
  double u_;
  bool elected_ = false;
  obs::ProtocolProbe* probe_ = nullptr;  ///< non-owning; never affects state
};

}  // namespace jamelect
