#include "protocols/notification.hpp"

#include <memory>
#include <utility>

#include "channel/channel.hpp"
#include "support/expects.hpp"
#include "support/state_hash.hpp"

namespace jamelect {

NotificationStation::NotificationStation(UniformProtocolFactory factory)
    : factory_(std::move(factory)) {
  JAMELECT_EXPECTS(factory_ != nullptr);
}

bool NotificationStation::is_leader() const {
  return leader_ == LeaderFlag::kTrue;
}

NotificationStation::NotificationStation(const NotificationStation& other)
    : factory_(other.factory_),
      a_(other.a_ != nullptr ? other.a_->clone() : nullptr),
      phase_(other.phase_),
      leader_(other.leader_) {}

StationProtocolPtr NotificationStation::clone_station() const {
  return std::unique_ptr<NotificationStation>(new NotificationStation(*this));
}

std::uint64_t NotificationStation::state_hash() const {
  return StateHash{}
      .add(static_cast<std::uint64_t>(phase_))
      .add(static_cast<std::uint64_t>(leader_))
      .add(a_ != nullptr)
      .add(a_ != nullptr ? a_->state_hash() : 0)
      .value();
}

bool NotificationStation::state_equals(const StationProtocol& other) const {
  const auto* o = dynamic_cast<const NotificationStation*>(&other);
  if (o == nullptr || phase_ != o->phase_ || leader_ != o->leader_) {
    return false;
  }
  if ((a_ == nullptr) != (o->a_ == nullptr)) return false;
  return a_ == nullptr || a_->state_equals(*o->a_);
}

void NotificationStation::maybe_restart(const IntervalPosition& pos,
                                        IntervalSet active_set) {
  if (pos.set != active_set) return;
  if (pos.interval_start() || a_ == nullptr) a_ = factory_();
}

double NotificationStation::transmit_probability(Slot slot) {
  const IntervalPosition pos = classify_slot(slot);
  if (pos.set == IntervalSet::kPadding) return 0.0;
  switch (phase_) {
    case Phase::kFirstLoop:
      maybe_restart(pos, IntervalSet::kC1);
      return pos.set == IntervalSet::kC1 ? a_->transmit_probability() : 0.0;
    case Phase::kSecondLoop:
      maybe_restart(pos, IntervalSet::kC2);
      // Entering the second loop always happens strictly before the
      // next C2 interval begins (the trigger is a C1 or C2 event), so
      // `a_` is recreated at that boundary; if the trigger raced an
      // interval middle we would simply listen until the next restart.
      if (pos.set != IntervalSet::kC2) return 0.0;
      return a_ != nullptr ? a_->transmit_probability() : 0.0;
    case Phase::kConfirmC1:
      return pos.set == IntervalSet::kC1 ? 1.0 : 0.0;
    case Phase::kAnnounceC3:
      return pos.set == IntervalSet::kC3 ? 1.0 : 0.0;
    case Phase::kDone:
      return 0.0;
  }
  return 0.0;  // unreachable
}

void NotificationStation::feedback(Slot slot, bool transmitted, Observation obs) {
  JAMELECT_EXPECTS(obs != Observation::kNoSingle);  // weak/strong views only
  const IntervalPosition pos = classify_slot(slot);
  if (pos.set == IntervalSet::kPadding) return;
  const ChannelState state = to_channel_state(obs);
  const bool heard_single = state == ChannelState::kSingle && !transmitted;

  switch (phase_) {
    case Phase::kFirstLoop:
      if (pos.set == IntervalSet::kC1) {
        if (a_ != nullptr) a_->observe(state);
        if (heard_single) {
          // status(C1) = Single: leader <- false, stop A in C1, fall
          // into the second loop (fresh A from the next C2 interval).
          leader_ = LeaderFlag::kFalse;
          phase_ = Phase::kSecondLoop;
          a_.reset();
        }
      } else if (pos.set == IntervalSet::kC2) {
        if (heard_single) {
          // Exited the first loop via a C2 Single without ever hearing
          // one in C1: this station is the C1 transmitter l. The second
          // loop's guard is already satisfied with status(C2) = Single
          // and leader undefined -> leader <- true, announce in C3.
          JAMELECT_ENSURES(leader_ == LeaderFlag::kUndefined);
          leader_ = LeaderFlag::kTrue;
          phase_ = Phase::kAnnounceC3;
          a_.reset();
        }
      }
      break;

    case Phase::kSecondLoop:
      if (pos.set == IntervalSet::kC2) {
        if (a_ != nullptr) a_->observe(state);
        if (heard_single) {
          // status(C2) = Single with leader = false: keep C1 busy until
          // the leader confirms in C3.
          JAMELECT_ENSURES(leader_ == LeaderFlag::kFalse);
          phase_ = Phase::kConfirmC1;
          a_.reset();
        }
      } else if (pos.set == IntervalSet::kC3) {
        if (heard_single) {
          // Exited the loop via C3 (this is the station s whose own C2
          // Single it could not hear): status(C2) != Single from its
          // view, so it returns as a non-leader.
          phase_ = Phase::kDone;
          a_.reset();
        }
      }
      break;

    case Phase::kConfirmC1:
      if (pos.set == IntervalSet::kC3 && heard_single) {
        phase_ = Phase::kDone;
      }
      break;

    case Phase::kAnnounceC3:
      if (pos.set == IntervalSet::kC1 && state == ChannelState::kNull) {
        phase_ = Phase::kDone;
      }
      break;

    case Phase::kDone:
      break;
  }
}

}  // namespace jamelect
