#include "adversary/interval_buster.hpp"

#include "protocols/interval_partition.hpp"
#include "support/expects.hpp"

namespace jamelect {

IntervalBusterPolicy::IntervalBusterPolicy(int target_set)
    : target_set_(target_set) {
  JAMELECT_EXPECTS(target_set >= 0 && target_set <= 3);
}

bool IntervalBusterPolicy::desires_jam(Slot slot, const JammingBudget& budget) {
  const IntervalPosition pos = classify_slot(slot);
  if (pos.set == IntervalSet::kPadding) return false;
  // Admissible burst length: ~ (1-eps) * T consecutive jams (exactly
  // what the greedy front-load achieves from a rested budget).
  const EpsRatio eps = budget.eps();
  const std::int64_t burst = (eps.den - eps.num) * budget.T() / eps.den;
  const bool targeted =
      target_set_ == 0 || static_cast<int>(pos.set) == target_set_;
  if (targeted && pos.size <= burst) return true;
  // Intervals have outgrown the budget: fall back to raw pressure.
  return budget.can_jam();
}

}  // namespace jamelect
