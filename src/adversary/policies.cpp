#include "adversary/policies.hpp"

#include <algorithm>
#include <utility>

namespace jamelect {

PeriodicPolicy::PeriodicPolicy(std::int64_t period, std::int64_t burst)
    : period_(period), burst_(burst) {
  JAMELECT_EXPECTS(period >= 1);
  JAMELECT_EXPECTS(burst >= 0 && burst <= period);
}

bool PeriodicPolicy::desires_jam(Slot slot, const JammingBudget&) {
  return (slot % period_) < burst_;
}

BernoulliPolicy::BernoulliPolicy(double q, Rng rng) : q_(q), rng_(rng) {
  JAMELECT_EXPECTS(q >= 0.0 && q <= 1.0);
}

bool BernoulliPolicy::desires_jam(Slot, const JammingBudget&) {
  return rng_.bernoulli(q_);
}

PulsePolicy::PulsePolicy(std::int64_t on, std::int64_t off) : on_(on), off_(off) {
  JAMELECT_EXPECTS(on >= 1);
  JAMELECT_EXPECTS(off >= 0);
}

bool PulsePolicy::desires_jam(Slot slot, const JammingBudget&) {
  return (slot % (on_ + off_)) < on_;
}

LeskEstimateMirror::LeskEstimateMirror(double protocol_eps)
    : increment_(protocol_eps / 8.0) {
  JAMELECT_EXPECTS(protocol_eps > 0.0 && protocol_eps <= 1.0);
}

void LeskEstimateMirror::observe(ChannelState public_state) noexcept {
  switch (public_state) {
    case ChannelState::kNull:
      u_ = std::max(0.0, u_ - 1.0);
      break;
    case ChannelState::kCollision:
      u_ += increment_;
      break;
    case ChannelState::kSingle:
      break;  // the protocol has terminated; tracking is moot
  }
}

SingleDenialPolicy::SingleDenialPolicy(double protocol_eps, std::uint64_t n,
                                       double threshold)
    : mirror_(protocol_eps), n_(n), threshold_(threshold) {
  JAMELECT_EXPECTS(n >= 1);
  JAMELECT_EXPECTS(threshold > 0.0 && threshold < 1.0);
}

bool SingleDenialPolicy::desires_jam(Slot, const JammingBudget&) {
  const double p = transmit_probability(mirror_.u());
  return slot_probabilities(n_, p).single >= threshold_;
}

void SingleDenialPolicy::observe(const AdversaryView& view) {
  mirror_.observe(view.public_state);
}

OracleDenialPolicy::OracleDenialPolicy(UniformProtocolPtr mirror,
                                       std::uint64_t n, double threshold)
    : mirror_(std::move(mirror)), n_(n), threshold_(threshold) {
  JAMELECT_EXPECTS(mirror_ != nullptr);
  JAMELECT_EXPECTS(n >= 1);
  JAMELECT_EXPECTS(threshold > 0.0 && threshold < 1.0);
}

bool OracleDenialPolicy::desires_jam(Slot, const JammingBudget&) {
  const double p = mirror_->transmit_probability();
  return slot_probabilities(n_, p).single >= threshold_;
}

void OracleDenialPolicy::observe(const AdversaryView& view) {
  mirror_->observe(view.public_state);
}

CollisionForcerPolicy::CollisionForcerPolicy(double protocol_eps,
                                             std::uint64_t n, double threshold)
    : mirror_(protocol_eps), n_(n), threshold_(threshold) {
  JAMELECT_EXPECTS(n >= 1);
  JAMELECT_EXPECTS(threshold > 0.0 && threshold <= 1.0);
}

bool CollisionForcerPolicy::desires_jam(Slot, const JammingBudget&) {
  const double p = transmit_probability(mirror_.u());
  return slot_probabilities(n_, p).collision < threshold_;
}

void CollisionForcerPolicy::observe(const AdversaryView& view) {
  mirror_.observe(view.public_state);
}

}  // namespace jamelect
