// Jamming strategies.
//
// A JamPolicy expresses *intent*; the BoundedAdversary filters intent
// through the JammingBudget, so every executed schedule is admissible by
// construction. Policies are adaptive in exactly the paper's sense: the
// decision for slot t may use the full history up to slot t-1 (true
// transmitter counts included — the adversary is omniscient about the
// past) but never the stations' actions in slot t itself.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "adversary/budget.hpp"
#include "channel/types.hpp"

namespace jamelect {

/// Everything the adversary learned about a completed slot.
struct AdversaryView {
  Slot slot = 0;
  std::uint64_t true_transmitters = 0;  ///< actual count (omniscient)
  bool jammed = false;                  ///< did *we* jam it
  ChannelState public_state = ChannelState::kNull;  ///< what listeners saw
};

/// Strategy interface. One instance per trial (stateful).
class JamPolicy {
 public:
  virtual ~JamPolicy() = default;

  /// Does the policy want to jam slot `slot`? `budget` is read-only:
  /// policies may inspect remaining headroom (e.g. the saturating
  /// policy wants to jam exactly when legal).
  [[nodiscard]] virtual bool desires_jam(Slot slot, const JammingBudget& budget) = 0;

  /// History feed, called after every slot.
  virtual void observe(const AdversaryView& view) { (void)view; }

  /// Human-readable strategy name (for tables and logs).
  [[nodiscard]] virtual std::string name() const = 0;
};

using JamPolicyPtr = std::unique_ptr<JamPolicy>;

}  // namespace jamelect
