// Concrete jamming strategies (DESIGN.md §2.3).
//
// All strategies go through the budget filter, so each one realizes
// *some* admissible (T, 1-eps) schedule; they differ in where they spend
// the budget:
//  * NoJamPolicy        — baseline, never jams.
//  * SaturatingPolicy   — jams whenever legal; the maximal-pressure
//    schedule (front-loaded greedy). Against LESK every jam reads as a
//    Collision and pushes the estimate u up by eps/8.
//  * PeriodicPolicy     — intends to jam the first floor((1-q)*P) slots
//    of every P-slot period (the Lemma 2.7 lower-bound shape).
//  * BernoulliPolicy    — jams i.i.d. with probability q (models bursty
//    interference from coexisting networks).
//  * PulsePolicy        — deterministic duty cycle: `on` jam-slots then
//    `off` quiet slots.
//  * SingleDenialPolicy — tracks the public LESK estimate u (it is a
//    deterministic function of the channel history) and jams exactly
//    when P[Single] under p = 2^-u exceeds a threshold: spends budget
//    only where elections could complete.
//  * CollisionForcerPolicy — jams exactly when a jam is likely to
//    CHANGE the outcome (P[Collision] below a threshold, default 0.9,
//    under the tracked u): maximizes estimate drift per unit of budget
//    and never wastes budget on slots that collide naturally.
//
// The tracking policies receive `n` and the protocol's eps: the paper's
// adversary "knows the entire history of the channel and the protocol
// executed by honest stations", and may know n.
#pragma once

#include <cstdint>
#include <string>

#include "adversary/policy.hpp"
#include "protocols/uniform.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace jamelect {

class NoJamPolicy final : public JamPolicy {
 public:
  [[nodiscard]] bool desires_jam(Slot, const JammingBudget&) override { return false; }
  [[nodiscard]] std::string name() const override { return "none"; }
};

class SaturatingPolicy final : public JamPolicy {
 public:
  [[nodiscard]] bool desires_jam(Slot, const JammingBudget& budget) override {
    return budget.can_jam();
  }
  [[nodiscard]] std::string name() const override { return "saturating"; }
};

class PeriodicPolicy final : public JamPolicy {
 public:
  /// Intends to jam the first `burst` slots of every `period` slots.
  PeriodicPolicy(std::int64_t period, std::int64_t burst);
  [[nodiscard]] bool desires_jam(Slot slot, const JammingBudget&) override;
  [[nodiscard]] std::string name() const override { return "periodic"; }

 private:
  std::int64_t period_;
  std::int64_t burst_;
};

class BernoulliPolicy final : public JamPolicy {
 public:
  BernoulliPolicy(double q, Rng rng);
  [[nodiscard]] bool desires_jam(Slot, const JammingBudget&) override;
  [[nodiscard]] std::string name() const override { return "bernoulli"; }

 private:
  double q_;
  Rng rng_;
};

class PulsePolicy final : public JamPolicy {
 public:
  PulsePolicy(std::int64_t on, std::int64_t off);
  [[nodiscard]] bool desires_jam(Slot slot, const JammingBudget&) override;
  [[nodiscard]] std::string name() const override { return "pulse"; }

 private:
  std::int64_t on_;
  std::int64_t off_;
};

/// Mirrors the public LESK estimator: u starts at 0, -1 on Null (floored
/// at 0), +eps/8 on Collision. Reusable by any history-tracking policy.
class LeskEstimateMirror {
 public:
  explicit LeskEstimateMirror(double protocol_eps);
  void observe(ChannelState public_state) noexcept;
  [[nodiscard]] double u() const noexcept { return u_; }

 private:
  double increment_;
  double u_ = 0.0;
};

class SingleDenialPolicy final : public JamPolicy {
 public:
  /// `protocol_eps` is the eps the attacked LESK instance runs with;
  /// `n` is the (adversary-known) network size.
  SingleDenialPolicy(double protocol_eps, std::uint64_t n,
                     double threshold = 0.02);
  [[nodiscard]] bool desires_jam(Slot, const JammingBudget&) override;
  void observe(const AdversaryView& view) override;
  [[nodiscard]] std::string name() const override { return "single_denial"; }

 private:
  LeskEstimateMirror mirror_;
  std::uint64_t n_;
  double threshold_;
};

/// The fully-general adaptive denial adversary: mirrors an ARBITRARY
/// uniform protocol (the adversary knows the protocol and the history,
/// and a uniform protocol's state is a deterministic function of the
/// history, so the mirror is exact until the first Single) and jams
/// exactly the slots where P[Single] >= threshold. SingleDenialPolicy
/// is the LESK-specific instance of this idea; this one can deny ANY
/// uniform protocol — e.g. it permanently stalls the no-CD sweep
/// baseline, illustrating why §4 lists no-CD countermeasures as open.
class OracleDenialPolicy final : public JamPolicy {
 public:
  /// `mirror` must be a fresh instance of the protocol under attack.
  OracleDenialPolicy(UniformProtocolPtr mirror, std::uint64_t n,
                     double threshold = 0.02);
  [[nodiscard]] bool desires_jam(Slot, const JammingBudget&) override;
  void observe(const AdversaryView& view) override;
  [[nodiscard]] std::string name() const override { return "oracle_denial"; }

 private:
  UniformProtocolPtr mirror_;
  std::uint64_t n_;
  double threshold_;
};

class CollisionForcerPolicy final : public JamPolicy {
 public:
  CollisionForcerPolicy(double protocol_eps, std::uint64_t n,
                        double threshold = 0.9);
  [[nodiscard]] bool desires_jam(Slot, const JammingBudget&) override;
  void observe(const AdversaryView& view) override;
  [[nodiscard]] std::string name() const override { return "collision_forcer"; }

 private:
  LeskEstimateMirror mirror_;
  std::uint64_t n_;
  double threshold_;
};

}  // namespace jamelect
