// IntervalBusterPolicy — an adversary aimed at the Notification
// transform (paper §3).
//
// Lemma 3.1's correctness argument is that for i >= log2 T the
// adversary cannot jam an ENTIRE interval C^i_j. This policy is the
// matching attack: it knows the C1/C2/C3 partition and spends its
// budget icing whole intervals for as long as they are short enough to
// ice (size <= the admissible burst ~ (1-eps)T), then degrades to
// saturating pressure once the doubling intervals outgrow the budget.
// Against LEWK/LEWU it maximizes the number of wasted (fully-jammed)
// intervals — the geometric escape of the proof is exactly what defeats
// it, which the robustness tests verify.
#pragma once

#include <string>

#include "adversary/policy.hpp"

namespace jamelect {

class IntervalBusterPolicy final : public JamPolicy {
 public:
  /// `target_set` restricts the icing to one of C1/C2/C3 (1..3), or 0
  /// for all sets (default).
  explicit IntervalBusterPolicy(int target_set = 0);

  [[nodiscard]] bool desires_jam(Slot slot, const JammingBudget& budget) override;
  [[nodiscard]] std::string name() const override { return "interval_buster"; }

 private:
  int target_set_;
};

}  // namespace jamelect
