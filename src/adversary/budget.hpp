// Exact online enforcement of the (T, 1-eps)-bounded jamming constraint.
//
// Definition (paper §1.1): the adversary may jam at most (1-eps)*w slots
// out of ANY w >= T contiguous slots, for 0 < eps <= 1. Windows shorter
// than T are unconstrained (short bursts may be fully jammed).
//
// Enforcement is prospective: a jam at slot t is admitted iff, for every
// w >= T, the number of jams among the last w slots (counting the new
// jam, and counting slots before the run as unjammed) stays <= (1-eps)w.
// A superset argument shows this suffices for ALL windows of the
// realized schedule: for any window W with |W| = w >= T, let tau be the
// last jam in W; the length-w suffix window ending at tau contains every
// jam of W, and it was checked when the jam at tau was admitted.
//
// Arithmetic is exact: eps is a rational num/den, and with
//   A(t) = den*jam(t) - (den - num)
// the constraint on a suffix window of length w is  sum A <= 0.  Over
// all suffix lengths >= T this maximum obeys
//   B(t) = max(B(t-1) + A(t), S_T(t)),
// where S_T(t) is the sum over the last exactly-T slots (ring buffer),
// giving O(1) time and O(T) memory per adversary.
#pragma once

#include <cstdint>
#include <vector>

#include "support/expects.hpp"

namespace jamelect {

/// Exact rational in (0, 1]: eps = num/den.
struct EpsRatio {
  std::int64_t num = 1;
  std::int64_t den = 2;

  [[nodiscard]] double value() const noexcept {
    return static_cast<double>(num) / static_cast<double>(den);
  }

  /// Closest rational with the given denominator; clamps to [1/den, 1].
  [[nodiscard]] static EpsRatio from_double(double eps, std::int64_t den = 1 << 20);
};

/// Online (T, 1-eps) jam-budget enforcer. One instance per adversary per
/// trial; slots advance via commit().
class JammingBudget {
 public:
  JammingBudget(std::int64_t T, EpsRatio eps);

  /// Would jamming the *next* slot keep the whole schedule admissible?
  [[nodiscard]] bool can_jam() const noexcept;

  /// Advances one slot. `jam = true` requires can_jam().
  void commit(bool jam);

  [[nodiscard]] std::int64_t T() const noexcept { return T_; }
  [[nodiscard]] EpsRatio eps() const noexcept { return eps_; }
  [[nodiscard]] std::int64_t slots() const noexcept { return slots_; }
  [[nodiscard]] std::int64_t jams() const noexcept { return jams_; }
  /// Jams among the last min(T, slots()) slots.
  [[nodiscard]] std::int64_t jams_in_last_T() const noexcept { return window_jams_; }
  /// Fraction of the length-T window's jam allowance currently spent:
  /// jams_in_last_T / ((1-eps)*T), in [0, 1]. Telemetry reports this as
  /// the adversary's budget utilization. For eps = 1 the allowance is
  /// zero and the spend is defined as 0.
  [[nodiscard]] double window_spend() const noexcept {
    const std::int64_t allowance_num = (eps_.den - eps_.num) * T_;
    if (allowance_num == 0) return 0.0;
    return static_cast<double>(eps_.den * window_jams_) /
           static_cast<double>(allowance_num);
  }

 private:
  [[nodiscard]] std::int64_t hypothetical_b(bool jam) const noexcept;

  std::int64_t T_;
  EpsRatio eps_;
  std::int64_t slots_ = 0;
  std::int64_t jams_ = 0;
  // Ring buffer of the last T slots' jam flags (zero-initialized ==
  // virtual unjammed history before slot 0).
  std::vector<std::uint8_t> ring_;
  std::int64_t ring_pos_ = 0;
  std::int64_t window_jams_ = 0;
  // B = max over suffix windows of length >= T of (den*jams - (den-num)*len).
  std::int64_t b_;
};

}  // namespace jamelect
