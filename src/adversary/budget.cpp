#include "adversary/budget.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace jamelect {

EpsRatio EpsRatio::from_double(double eps, std::int64_t den) {
  JAMELECT_EXPECTS(eps > 0.0 && eps <= 1.0);
  JAMELECT_EXPECTS(den >= 1);
  auto num = static_cast<std::int64_t>(std::llround(eps * static_cast<double>(den)));
  num = std::clamp<std::int64_t>(num, 1, den);
  const std::int64_t g = std::gcd(num, den);
  return {num / g, den / g};
}

JammingBudget::JammingBudget(std::int64_t T, EpsRatio eps)
    : T_(T), eps_(eps), ring_(static_cast<std::size_t>(T), 0) {
  JAMELECT_EXPECTS(T >= 1);
  JAMELECT_EXPECTS(eps.num >= 1 && eps.num <= eps.den);
  // The padding window of length T with zero jams: B = -(den-num)*T.
  b_ = -(eps_.den - eps_.num) * T_;
}

std::int64_t JammingBudget::hypothetical_b(bool jam) const noexcept {
  const std::int64_t evicted = ring_[static_cast<std::size_t>(ring_pos_)];
  const std::int64_t window = window_jams_ - evicted + (jam ? 1 : 0);
  const std::int64_t s_t = eps_.den * window - (eps_.den - eps_.num) * T_;
  const std::int64_t a = jam ? eps_.num : -(eps_.den - eps_.num);
  return std::max(b_ + a, s_t);
}

bool JammingBudget::can_jam() const noexcept { return hypothetical_b(true) <= 0; }

void JammingBudget::commit(bool jam) {
  if (jam) JAMELECT_EXPECTS(can_jam());
  b_ = hypothetical_b(jam);
  const auto pos = static_cast<std::size_t>(ring_pos_);
  window_jams_ += (jam ? 1 : 0) - ring_[pos];
  ring_[pos] = jam ? 1 : 0;
  ring_pos_ = (ring_pos_ + 1) % T_;
  ++slots_;
  jams_ += jam ? 1 : 0;
  JAMELECT_ENSURES(b_ <= 0);
}

}  // namespace jamelect
