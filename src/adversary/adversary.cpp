#include "adversary/adversary.hpp"

#include <utility>

namespace jamelect {

BoundedAdversary::BoundedAdversary(std::int64_t T, EpsRatio eps,
                                   JamPolicyPtr policy)
    : budget_(T, eps), policy_(std::move(policy)) {
  JAMELECT_EXPECTS(policy_ != nullptr);
}

bool BoundedAdversary::step() {
  const bool jam =
      policy_->desires_jam(next_slot_, budget_) && budget_.can_jam();
  budget_.commit(jam);
  ++next_slot_;
  return jam;
}

void BoundedAdversary::observe(const AdversaryView& view) {
  policy_->observe(view);
}

}  // namespace jamelect
