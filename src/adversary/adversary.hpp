// BoundedAdversary: a (T, 1-eps)-bounded adaptive jammer = strategy
// intent filtered through the exact budget enforcer.
#pragma once

#include <memory>

#include "adversary/budget.hpp"
#include "adversary/policy.hpp"

namespace jamelect {

class BoundedAdversary {
 public:
  /// Takes ownership of the policy; the budget defines (T, 1-eps).
  BoundedAdversary(std::int64_t T, EpsRatio eps, JamPolicyPtr policy);

  /// Decides (and commits) the jam bit for the next slot. Must be called
  /// exactly once per slot, before the stations' actions are resolved.
  [[nodiscard]] bool step();

  /// Feeds the completed slot back to the strategy.
  void observe(const AdversaryView& view);

  [[nodiscard]] const JammingBudget& budget() const noexcept { return budget_; }
  [[nodiscard]] const JamPolicy& policy() const noexcept { return *policy_; }

 private:
  JammingBudget budget_;
  JamPolicyPtr policy_;
  Slot next_slot_ = 0;
};

}  // namespace jamelect
