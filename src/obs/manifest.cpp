#include "obs/manifest.hpp"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/build_info.hpp"
#include "obs/metrics.hpp"

namespace jamelect::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string canonical_config_json(
    const std::map<std::string, std::string>& config) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : config) {
    if (!first) out += ',';
    out += '"';
    out += json_escape(k);
    out += "\":\"";
    out += json_escape(v);
    out += '"';
    first = false;
  }
  out += '}';
  return out;
}

std::string canonical_number(double value) {
  const double r = value < 0 ? -value : value;
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      r <= 9007199254740992.0) {  // 2^53: exactly representable integers
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string config_fingerprint(
    const std::map<std::string, std::string>& config) {
  const std::string canon = canonical_config_json(config);
  // FNV-1a, two independent 64-bit lanes (distinct offset bases) for a
  // 128-bit key: collisions across a cache of millions of configs are
  // ~2^-64 likely — comfortably below any operational concern.
  std::uint64_t h1 = 0xcbf29ce484222325ULL;
  std::uint64_t h2 = 0x84222325cbf29ce4ULL;
  for (const unsigned char c : canon) {
    h1 = (h1 ^ c) * 0x100000001b3ULL;
    h2 = (h2 ^ c) * 0x100000001b3ULL;
  }
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(h1),
                static_cast<unsigned long long>(h2));
  return buf;
}

std::string RunManifest::to_json() const {
  std::ostringstream out;
  const auto now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count();
  out << "{\n";
  out << "  \"name\": \"" << json_escape(name) << "\",\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"created_unix_ms\": " << now_ms << ",\n";
  out << "  \"build\": {\n";
  out << "    \"git_sha\": \"" << json_escape(kGitSha) << "\",\n";
  out << "    \"build_type\": \"" << json_escape(kBuildType) << "\",\n";
  out << "    \"compiler\": \"" << json_escape(kCompiler) << "\",\n";
  out << "    \"cxx_flags\": \"" << json_escape(kCxxFlags) << "\",\n";
  out << "    \"obs_option\": \"" << json_escape(kObsOption) << "\",\n";
  out << "    \"obs_compiled_in\": " << (kObsCompiledIn ? "true" : "false")
      << "\n  },\n";
  out << "  \"config\": {";
  bool first = true;
  for (const auto& [k, v] : config) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(k) << "\": \""
        << json_escape(v) << '"';
    first = false;
  }
  out << (first ? "}" : "\n  }");
  if (include_metrics) {
    const MetricsSnapshot snap = MetricsRegistry::global().aggregate();
    out << ",\n  \"metrics\": {\n    \"counters\": {";
    first = true;
    for (const auto& [k, v] : snap.counters) {
      out << (first ? "\n" : ",\n") << "      \"" << json_escape(k)
          << "\": " << v;
      first = false;
    }
    out << (first ? "}" : "\n    }") << ",\n    \"gauges\": {";
    first = true;
    for (const auto& [k, v] : snap.gauges) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", v);
      out << (first ? "\n" : ",\n") << "      \"" << json_escape(k)
          << "\": " << buf;
      first = false;
    }
    out << (first ? "}" : "\n    }") << ",\n    \"histograms\": {";
    first = true;
    for (const auto& [k, h] : snap.histograms) {
      out << (first ? "\n" : ",\n") << "      \"" << json_escape(k)
          << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
          << ", \"min\": " << h.min << ", \"max\": " << h.max << '}';
      first = false;
    }
    out << (first ? "}" : "\n    }") << "\n  }";
  }
  out << "\n}\n";
  return out.str();
}

bool RunManifest::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json();
  return out.good();
}

std::string manifest_path_for(const std::string& name) {
  if (const char* flag = std::getenv("JAMELECT_MANIFEST")) {
    if (std::strcmp(flag, "0") == 0 || std::strcmp(flag, "off") == 0) {
      return "";
    }
  }
  std::string dir = ".";
  if (const char* env = std::getenv("JAMELECT_MANIFEST_DIR")) {
    if (*env != '\0') dir = env;
  }
  return dir + "/" + name + ".manifest.json";
}

}  // namespace jamelect::obs
