// Structured run events and sinks.
//
// Engines and protocols emit Event values through an EventSink; the
// NdjsonSink serializes them one JSON object per line (newline-
// delimited JSON), which streams, greps, and loads into pandas /
// DuckDB without a parser step. docs/event_schema.json is the
// machine-checkable schema; scripts/validate_events.py validates a
// stream against it in CI.
//
// Sinks must be thread-safe: the Monte-Carlo harness runs trials on
// the thread pool and every trial's engine writes to the same sink.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "channel/types.hpp"

namespace jamelect::obs {

enum class EventKind : std::uint8_t {
  kSlot,         ///< one sampled channel slot
  kPhase,        ///< protocol phase transition (LESU schedule, LESK elect)
  kCohort,       ///< cohort split / merge in the cohort engine
  kBudget,       ///< adversary budget checkpoint (emitted with slots)
  kTrialStart,   ///< one Monte-Carlo trial begins
  kTrialEnd,     ///< one Monte-Carlo trial finished
};

[[nodiscard]] constexpr std::string_view to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kSlot: return "slot";
    case EventKind::kPhase: return "phase";
    case EventKind::kCohort: return "cohort";
    case EventKind::kBudget: return "budget";
    case EventKind::kTrialStart: return "trial_start";
    case EventKind::kTrialEnd: return "trial_end";
  }
  return "?";
}

/// One telemetry event. A single flat struct (rather than a variant)
/// keeps emission allocation-free; which fields are meaningful depends
/// on `kind` (see docs/event_schema.json).
struct Event {
  EventKind kind = EventKind::kSlot;
  std::uint64_t trial = 0;  ///< trial index (0 outside Monte-Carlo runs)
  Slot slot = 0;

  // kSlot
  ChannelState state = ChannelState::kNull;
  std::uint64_t transmitters = 0;
  bool jammed = false;
  double estimate = 0.0;     ///< protocol estimator u (NaN if none)
  double expected_tx = 0.0;  ///< sum of transmit probabilities this slot

  // kSlot + kBudget: adversary budget spend
  std::int64_t jams_total = 0;    ///< cumulative jams so far
  double budget_spend = 0.0;      ///< fraction of the T-window jam budget used

  // kPhase
  const char* protocol = "";  ///< emitting protocol's name ("LESK", "LESU")
  const char* phase = "";     ///< new phase label
  std::int64_t phase_i = 0;   ///< LESU outer index (0 if n/a)
  std::int64_t phase_j = 0;   ///< LESU inner index (0 if n/a)
  double phase_eps = 0.0;     ///< LESU candidate eps (0 if n/a)

  // kCohort
  const char* cohort_op = "";       ///< "split" | "merge"
  std::uint64_t cohort_from = 0;    ///< source cohort size before the op
  std::uint64_t cohort_to = 0;      ///< split-off / absorbed member count
  std::uint64_t cohorts_live = 0;   ///< live cohorts after the op

  // kTrialEnd
  bool elected = false;
  std::int64_t slots_total = 0;
  double transmissions = 0.0;
};

/// Destination for telemetry events. Implementations must tolerate
/// concurrent on_event() calls.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const Event& event) = 0;
};

/// Thread-safe in-memory sink (tests, replay tooling).
class VectorSink final : public EventSink {
 public:
  void on_event(const Event& event) override {
    std::lock_guard lock(mutex_);
    events_.push_back(event);
  }
  /// Snapshot of everything captured so far.
  [[nodiscard]] std::vector<Event> events() const {
    std::lock_guard lock(mutex_);
    return events_;
  }
  void clear() {
    std::lock_guard lock(mutex_);
    events_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

/// Serializes events as NDJSON to a caller-owned stream. Writes are
/// serialized under a mutex; each event is formatted into a local
/// buffer first so lines never interleave. Lines are batched in an
/// internal buffer and pushed to the stream in ~64 KiB chunks, so the
/// stream sees complete lines but not necessarily promptly: call
/// flush() (or destroy the sink) before reading what was written.
class NdjsonSink final : public EventSink {
 public:
  /// The stream must outlive the sink.
  explicit NdjsonSink(std::ostream& out) : out_(&out) {
    buffer_.reserve(kBufferSize);
  }
  ~NdjsonSink() override { flush(); }
  NdjsonSink(const NdjsonSink&) = delete;
  NdjsonSink& operator=(const NdjsonSink&) = delete;

  void on_event(const Event& event) override;

  /// Drains the internal buffer to the stream and flushes the stream.
  void flush();

  /// Formats one event as a single-line JSON object (no newline) —
  /// exposed for tests and tooling.
  [[nodiscard]] static std::string to_json(const Event& event);

 private:
  static constexpr std::size_t kBufferSize = std::size_t{1} << 16;

  std::ostream* out_;
  std::string buffer_;
  std::mutex mutex_;
};

}  // namespace jamelect::obs
