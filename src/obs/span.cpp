#include "obs/span.hpp"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <ostream>

#include "support/expects.hpp"

namespace jamelect::obs {

namespace {

thread_local TraceId t_current_trace{};

[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] int hex_digit(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void append_hex64(std::string& out, std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kDigits[(v >> shift) & 0xf]);
  }
}

}  // namespace

std::string TraceId::hex() const {
  std::string out;
  out.reserve(32);
  append_hex64(out, hi);
  append_hex64(out, lo);
  return out;
}

TraceId TraceId::parse(std::string_view text) noexcept {
  if (text.size() != 32) return {};
  TraceId id;
  for (std::size_t i = 0; i < 32; ++i) {
    const int d = hex_digit(text[i]);
    if (d < 0) return {};
    std::uint64_t& word = i < 16 ? id.hi : id.lo;
    word = (word << 4) | static_cast<std::uint64_t>(d);
  }
  return id;
}

TraceId TraceId::derive(std::uint64_t a, std::uint64_t b) noexcept {
  TraceId id;
  id.hi = splitmix64(a ^ splitmix64(b));
  id.lo = splitmix64(b + 0x6a09e667f3bcc909ULL + splitmix64(a));
  if (!id.valid()) id.lo = 1;  // zero means "untraced"; never mint it
  return id;
}

TraceId current_trace() noexcept { return t_current_trace; }

ScopedTrace::ScopedTrace(TraceId id) noexcept : prev_(t_current_trace) {
  t_current_trace = id;
}

ScopedTrace::~ScopedTrace() { t_current_trace = prev_; }

SpanRing::SpanRing(std::size_t capacity) : capacity_(capacity) {
  JAMELECT_EXPECTS(capacity > 0);
  ring_.reserve(capacity);
}

void SpanRing::push(const SpanRecord& rec) {
  std::lock_guard lock(mutex_);
  ++pushed_;
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
    return;
  }
  // Full: overwrite the oldest. head_ chases the logical start.
  ring_[head_] = rec;
  head_ = (head_ + 1) % capacity_;
}

std::vector<SpanRecord> SpanRing::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t SpanRing::size() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

std::uint64_t SpanRing::pushed() const {
  std::lock_guard lock(mutex_);
  return pushed_;
}

std::uint64_t SpanRing::overwritten() const {
  std::lock_guard lock(mutex_);
  return pushed_ - ring_.size();
}

void SpanRing::clear() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  head_ = 0;
  pushed_ = 0;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity), epoch_(Clock::now()) {}

std::int64_t FlightRecorder::now_us() const noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch_)
      .count();
}

void FlightRecorder::record(const char* name, const char* phase,
                            std::int64_t ts_us, std::int64_t dur_us,
                            TraceId trace) {
  static std::atomic<std::uint32_t> next_tid{1};
  thread_local const std::uint32_t tid =
      next_tid.fetch_add(1, std::memory_order_relaxed);
  SpanRecord rec;
  rec.name = name;
  rec.phase = phase == nullptr ? "" : phase;
  rec.tid = tid;
  rec.ts_us = ts_us;
  rec.dur_us = dur_us;
  rec.trace = trace.valid() ? trace : current_trace();
  ring_.push(rec);
}

void append_span_json(std::string& out, const SpanRecord& rec) {
  out += "{\"ev\":\"span\",\"name\":\"";
  out += rec.name;
  out += '"';
  if (rec.phase != nullptr && rec.phase[0] != '\0') {
    out += ",\"phase\":\"";
    out += rec.phase;
    out += '"';
  }
  out += ",\"tid\":";
  out += std::to_string(rec.tid);
  out += ",\"ts_us\":";
  out += std::to_string(rec.ts_us);
  out += ",\"dur_us\":";
  out += std::to_string(rec.dur_us);
  if (rec.trace.valid()) {
    out += ",\"trace\":\"";
    out += rec.trace.hex();
    out += '"';
  }
  out += '}';
}

void FlightRecorder::write_ndjson(std::ostream& out) const {
  std::string line;
  for (const SpanRecord& rec : ring_.snapshot()) {
    line.clear();
    append_span_json(line, rec);
    line += '\n';
    out << line;
  }
  out << "{\"ev\":\"flight\",\"pushed\":" << ring_.pushed()
      << ",\"overwritten\":" << ring_.overwritten()
      << ",\"capacity\":" << ring_.capacity() << "}\n";
}

std::string FlightRecorder::dump(const std::string& prefix) const {
  // Timestamp + process-lifetime sequence number: SIGUSR1 can fire
  // twice in one second and must not clobber the first dump.
  static std::atomic<std::uint32_t> seq{0};
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y%m%dT%H%M%SZ", &tm);
  std::string path = prefix;
  path += '-';
  path += stamp;
  path += '-';
  path += std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
  path += ".ndjson";
  std::ofstream out(path);
  if (!out) return "";
  write_ndjson(out);
  if (!out.good()) return "";
  return path;
}

}  // namespace jamelect::obs
