// MetricsRegistry — named, lock-free, per-thread counters / gauges /
// log2 histograms, aggregated on demand.
//
// Design goals (DESIGN.md §7, docs/OBSERVABILITY.md):
//  * Hot-path writes are one relaxed atomic add into a per-thread slab —
//    no locks, no false sharing between metrics a thread never touches
//    (slabs are thread-private; only the aggregator reads them).
//  * Registration is idempotent by name and cheap enough for
//    function-local `static` handles.
//  * A process-global `enabled` switch makes every write a single
//    predictable branch when telemetry is off, and the
//    JAMELECT_OBS_* macros below compile to nothing in Release builds
//    unless the build opts in with -DJAMELECT_OBS=ON.
//
// Threads never unregister: a slab outlives its thread so counts from
// finished pool workers stay visible to aggregate(). The slab count is
// bounded by the number of distinct threads that ever wrote a metric.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace jamelect::obs {

/// True when the JAMELECT_OBS_* macros are compiled in (Debug builds,
/// or any build configured with -DJAMELECT_OBS=ON).
#if defined(JAMELECT_OBS_ENABLED) || !defined(NDEBUG)
inline constexpr bool kObsCompiledIn = true;
#else
inline constexpr bool kObsCompiledIn = false;
#endif

/// Aggregated view of one log2-bucketed histogram. Bucket b counts
/// samples v with 2^(b-1) <= v < 2^b (bucket 0 counts v <= 0).
struct HistogramSnapshot {
  std::array<std::int64_t, 64> buckets{};
  std::int64_t count = 0;
  std::int64_t sum = 0;
  /// Bucket-resolution bounds of the observed range (lower bound of the
  /// first non-empty bucket / upper bound of the last); 0 if count == 0.
  std::int64_t min = 0;
  std::int64_t max = 0;
};

/// On-demand rollup of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Registry of named metrics. One process-wide instance (global()) is
/// the norm; separate instances exist for tests.
class MetricsRegistry {
 public:
  using MetricId = std::uint32_t;

  /// Hard cap on distinct metrics per registry; registration beyond it
  /// throws ContractViolation. Fixed so per-thread slabs never resize
  /// (resizing would race with lock-free writers).
  static constexpr std::size_t kMaxMetrics = 256;

  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry.
  [[nodiscard]] static MetricsRegistry& global();

  /// Registers (or looks up) a monotonically-increasing counter.
  [[nodiscard]] MetricId counter(const std::string& name);
  /// Registers (or looks up) a last-write-wins gauge.
  [[nodiscard]] MetricId gauge(const std::string& name);
  /// Registers (or looks up) a log2-bucket histogram.
  [[nodiscard]] MetricId histogram(const std::string& name);

  /// Adds `delta` to a counter. Lock-free; relaxed per-thread slab add.
  void add(MetricId id, std::int64_t delta) noexcept;
  /// Sets a gauge (global last-write-wins; stores the double's bits).
  void set(MetricId id, double value) noexcept;
  /// Records one sample into a histogram. Lock-free.
  void observe(MetricId id, std::int64_t value) noexcept;

  /// Master switch consulted by the JAMELECT_OBS_* macros; individual
  /// add()/observe() calls are NOT gated (callers gate themselves).
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Sums every per-thread slab into one snapshot. O(threads * metrics);
  /// safe to call concurrently with writers (counts may lag by writes
  /// in flight, never tear).
  [[nodiscard]] MetricsSnapshot aggregate() const;

  /// Zeroes every slab and gauge. Caller must ensure no concurrent
  /// writers (between runs, not during).
  void reset() noexcept;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  /// Per-thread storage: one cache-line-friendly array of atomics per
  /// metric slot plus histogram bucket planes, allocated lazily.
  struct Slab {
    std::array<std::atomic<std::int64_t>, kMaxMetrics> cells{};
    /// Histogram bucket storage, indexed by per-histogram plane id.
    std::vector<std::unique_ptr<std::array<std::atomic<std::int64_t>, 64>>>
        hist_planes;
    std::mutex planes_mutex;  ///< guards hist_planes growth only
  };

  [[nodiscard]] MetricId register_metric(const std::string& name, Kind kind);
  [[nodiscard]] Slab& local_slab();
  [[nodiscard]] std::atomic<std::int64_t>* hist_bucket(Slab& slab,
                                                       std::uint32_t plane,
                                                       std::uint32_t bucket);

  struct Meta {
    std::string name;
    Kind kind = Kind::kCounter;
    std::uint32_t plane = 0;  ///< histogram plane id (kind == kHistogram)
  };

  /// Process-unique instance id: the thread-local slab cache keys on it
  /// instead of `this`, so a new registry reusing a destroyed one's
  /// address can never be handed the old (freed) slab.
  std::uint64_t uid_;

  mutable std::mutex mutex_;  ///< guards metas_, slabs_, gauges_
  std::vector<Meta> metas_;
  std::vector<std::unique_ptr<Slab>> slabs_;
  std::uint32_t hist_planes_ = 0;
  /// Lock-free mirror of Meta::plane for observe()'s hot path.
  std::array<std::atomic<std::uint32_t>, kMaxMetrics> planes_{};
  std::array<std::atomic<std::uint64_t>, kMaxMetrics> gauges_{};
  std::atomic<bool> enabled_{true};
};

/// Maps a sample to its log2 bucket (see HistogramSnapshot).
[[nodiscard]] std::uint32_t log2_bucket(std::int64_t value) noexcept;

/// Quantile estimate from a log2 histogram: the upper bound of the
/// bucket holding the ceil(q*count)-th sample (so the true quantile v
/// satisfies v <= result < 2v for positive samples — bucket
/// resolution, tested in tests/obs_metrics_test.cpp). q is clamped to
/// [0, 1]; returns 0 when the histogram is empty.
[[nodiscard]] std::int64_t histogram_quantile(const HistogramSnapshot& h,
                                              double q) noexcept;

}  // namespace jamelect::obs

// Hot-path macros: compiled out entirely in Release builds unless the
// build sets -DJAMELECT_OBS=ON; otherwise one enabled() branch plus a
// relaxed atomic add. The metric id is registered once per call site.
#define JAMELECT_OBS_COUNT(name, delta)                                     \
  do {                                                                      \
    if constexpr (::jamelect::obs::kObsCompiledIn) {                        \
      auto& jam_obs_reg = ::jamelect::obs::MetricsRegistry::global();       \
      if (jam_obs_reg.enabled()) {                                          \
        static const auto jam_obs_id = jam_obs_reg.counter(name);           \
        jam_obs_reg.add(jam_obs_id, (delta));                               \
      }                                                                     \
    }                                                                       \
  } while (false)

#define JAMELECT_OBS_GAUGE(name, value)                                     \
  do {                                                                      \
    if constexpr (::jamelect::obs::kObsCompiledIn) {                        \
      auto& jam_obs_reg = ::jamelect::obs::MetricsRegistry::global();       \
      if (jam_obs_reg.enabled()) {                                          \
        static const auto jam_obs_id = jam_obs_reg.gauge(name);             \
        jam_obs_reg.set(jam_obs_id, (value));                               \
      }                                                                     \
    }                                                                       \
  } while (false)

#define JAMELECT_OBS_HISTOGRAM(name, value)                                 \
  do {                                                                      \
    if constexpr (::jamelect::obs::kObsCompiledIn) {                        \
      auto& jam_obs_reg = ::jamelect::obs::MetricsRegistry::global();       \
      if (jam_obs_reg.enabled()) {                                          \
        static const auto jam_obs_id = jam_obs_reg.histogram(name);         \
        jam_obs_reg.observe(jam_obs_id, (value));                           \
      }                                                                     \
    }                                                                       \
  } while (false)
