// RunManifest — a self-describing record of one run.
//
// Every bench (and any example or sweep that opts in) writes a
// `<name>.manifest.json` next to its results so a BENCH_*.json or CSV
// series can be traced back to the exact configuration that produced
// it: config key-values, RNG seed, git SHA, build type and flags
// (obs/build_info.hpp, generated at configure time), whether telemetry
// macros were compiled in, and a rollup of every metric the global
// MetricsRegistry collected during the run.
//
// Schema: docs/OBSERVABILITY.md §Manifests.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace jamelect::obs {

struct RunManifest {
  std::string name;
  std::uint64_t seed = 0;
  /// Free-form configuration key-values (trial counts, sweep ranges,
  /// argv, environment knobs — whatever makes the run reproducible).
  std::map<std::string, std::string> config;
  /// Include the global MetricsRegistry rollup in the JSON.
  bool include_metrics = true;

  /// Serializes the manifest (plus build info and a wall-clock
  /// timestamp) as a JSON object.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;
};

/// Escapes a string for embedding in a JSON string literal.
[[nodiscard]] std::string json_escape(const std::string& s);

// Canonical config serialization — the sweep service's cache identity.
//
// A manifest config map serializes to EXACTLY one byte sequence:
// std::map iteration gives a total key order, json_escape is
// deterministic, and there is no whitespace variance (single-line,
// `{"k":"v",...}`). Two configs are the same run if and only if their
// canonical JSON bytes are equal, so the fingerprint below is a sound
// memoization key (src/service/result_cache.hpp).

/// Single-line canonical JSON object of a config map: keys in byte
/// order (std::map), no insignificant whitespace.
[[nodiscard]] std::string canonical_config_json(
    const std::map<std::string, std::string>& config);

/// Canonical text form for numeric config values: integral doubles in
/// [-2^53, 2^53] print as integers ("4096"), everything else as %.17g
/// (shortest exact round-trip is version-dependent; 17 significant
/// digits is exact and stable). Use this when building config maps so
/// 0.5 serializes identically no matter which code path formatted it.
[[nodiscard]] std::string canonical_number(double value);

/// 128-bit FNV-1a of canonical_config_json(config), hex-encoded
/// (32 chars). Deterministic across processes, platforms and field
/// insertion orders — the manifest-keyed result cache key.
[[nodiscard]] std::string config_fingerprint(
    const std::map<std::string, std::string>& config);

/// Resolves where manifests should be written:
///  * env JAMELECT_MANIFEST=0 (or "off") disables writing — returns "";
///  * env JAMELECT_MANIFEST_DIR overrides the directory;
///  * otherwise the current working directory.
/// The returned path is "<dir>/<name>.manifest.json" (or "").
[[nodiscard]] std::string manifest_path_for(const std::string& name);

}  // namespace jamelect::obs
