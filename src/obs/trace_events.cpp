#include "obs/trace_events.hpp"

#include <atomic>
#include <fstream>
#include <ostream>

namespace jamelect::obs {

thread_local TraceEventRecorder::Clock::time_point
    TraceEventRecorder::task_start_{};

std::uint32_t TraceEventRecorder::thread_id() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void TraceEventRecorder::complete(const char* name, Clock::time_point start,
                                  Clock::time_point end) noexcept {
  Record rec;
  rec.name = name;
  rec.tid = thread_id();
  rec.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                  start - epoch_)
                  .count();
  rec.dur_us =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count();
  // Spans inherit the thread's active request lineage (ScopedTrace);
  // untraced work records the invalid id and serializes without args.
  rec.trace = current_trace();
  std::lock_guard lock(mutex_);
  records_.push_back(rec);
}

std::int64_t TraceEventRecorder::now_us() const noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch_)
      .count();
}

void TraceEventRecorder::record_at(const char* name, std::int64_t ts_us,
                                   std::int64_t dur_us,
                                   TraceId trace) noexcept {
  Record rec;
  rec.name = name;
  rec.tid = thread_id();
  rec.ts_us = ts_us;
  rec.dur_us = dur_us;
  rec.trace = trace.valid() ? trace : current_trace();
  std::lock_guard lock(mutex_);
  records_.push_back(rec);
}

std::size_t TraceEventRecorder::count_trace(TraceId trace) const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const Record& r : records_) {
    if (r.trace == trace) ++n;
  }
  return n;
}

void TraceEventRecorder::on_task_start(std::size_t /*worker_slot*/) noexcept {
  task_start_ = Clock::now();
}

void TraceEventRecorder::on_task_end(std::size_t /*worker_slot*/) noexcept {
  complete("pool_task", task_start_, Clock::now());
}

std::size_t TraceEventRecorder::size() const {
  std::lock_guard lock(mutex_);
  return records_.size();
}

void TraceEventRecorder::write_json(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Record& r : records_) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << r.name << "\",\"ph\":\"X\",\"cat\":\"jamelect\""
        << ",\"pid\":1,\"tid\":" << r.tid << ",\"ts\":" << r.ts_us
        << ",\"dur\":" << r.dur_us;
    if (r.trace.valid()) {
      out << ",\"args\":{\"trace\":\"" << r.trace.hex() << "\"}";
    }
    out << '}';
  }
  out << "]}\n";
}

bool TraceEventRecorder::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return out.good();
}

}  // namespace jamelect::obs
