#include "obs/trace_events.hpp"

#include <atomic>
#include <fstream>
#include <ostream>

namespace jamelect::obs {

thread_local TraceEventRecorder::Clock::time_point
    TraceEventRecorder::task_start_{};

std::uint32_t TraceEventRecorder::thread_id() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void TraceEventRecorder::complete(const char* name, Clock::time_point start,
                                  Clock::time_point end) noexcept {
  Record rec;
  rec.name = name;
  rec.tid = thread_id();
  rec.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                  start - epoch_)
                  .count();
  rec.dur_us =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count();
  std::lock_guard lock(mutex_);
  records_.push_back(rec);
}

void TraceEventRecorder::on_task_start(std::size_t /*worker_slot*/) noexcept {
  task_start_ = Clock::now();
}

void TraceEventRecorder::on_task_end(std::size_t /*worker_slot*/) noexcept {
  complete("pool_task", task_start_, Clock::now());
}

std::size_t TraceEventRecorder::size() const {
  std::lock_guard lock(mutex_);
  return records_.size();
}

void TraceEventRecorder::write_json(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Record& r : records_) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << r.name << "\",\"ph\":\"X\",\"cat\":\"jamelect\""
        << ",\"pid\":1,\"tid\":" << r.tid << ",\"ts\":" << r.ts_us
        << ",\"dur\":" << r.dur_us << '}';
  }
  out << "]}\n";
}

bool TraceEventRecorder::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return out.good();
}

}  // namespace jamelect::obs
