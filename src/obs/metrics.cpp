#include "obs/metrics.hpp"

#include <bit>

#include "support/expects.hpp"

namespace jamelect::obs {

std::uint32_t log2_bucket(std::int64_t value) noexcept {
  if (value <= 0) return 0;
  return static_cast<std::uint32_t>(
      std::bit_width(static_cast<std::uint64_t>(value)));
}

std::int64_t histogram_quantile(const HistogramSnapshot& h,
                                double q) noexcept {
  if (h.count <= 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double targetf = q * static_cast<double>(h.count);
  std::int64_t target = static_cast<std::int64_t>(targetf);
  if (static_cast<double>(target) < targetf) ++target;
  if (target < 1) target = 1;
  std::int64_t cumulative = 0;
  for (std::size_t b = 0; b < h.buckets.size(); ++b) {
    cumulative += h.buckets[b];
    if (cumulative >= target) {
      if (b == 0) return 0;  // bucket 0 counts v <= 0
      if (b >= 63) return h.max;
      return (std::int64_t{1} << b) - 1;  // upper bound of [2^(b-1), 2^b)
    }
  }
  return h.max;
}

MetricsRegistry::MetricsRegistry() {
  static std::atomic<std::uint64_t> next_uid{1};
  uid_ = next_uid.fetch_add(1, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::MetricId MetricsRegistry::register_metric(
    const std::string& name, Kind kind) {
  JAMELECT_EXPECTS(!name.empty());
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < metas_.size(); ++i) {
    if (metas_[i].name == name) {
      JAMELECT_EXPECTS(metas_[i].kind == kind);
      return static_cast<MetricId>(i);
    }
  }
  JAMELECT_EXPECTS(metas_.size() < kMaxMetrics);
  Meta meta;
  meta.name = name;
  meta.kind = kind;
  if (kind == Kind::kHistogram) meta.plane = hist_planes_++;
  planes_[metas_.size()].store(meta.plane, std::memory_order_relaxed);
  metas_.push_back(std::move(meta));
  return static_cast<MetricId>(metas_.size() - 1);
}

MetricsRegistry::MetricId MetricsRegistry::counter(const std::string& name) {
  return register_metric(name, Kind::kCounter);
}

MetricsRegistry::MetricId MetricsRegistry::gauge(const std::string& name) {
  return register_metric(name, Kind::kGauge);
}

MetricsRegistry::MetricId MetricsRegistry::histogram(const std::string& name) {
  return register_metric(name, Kind::kHistogram);
}

MetricsRegistry::Slab& MetricsRegistry::local_slab() {
  // One slab pointer per (thread, registry) pair. The registry owns the
  // slab; the thread-local map only caches the lookup. Keyed by the
  // registry's never-reused uid (not its address) so a registry
  // allocated where a destroyed one lived cannot be handed the old,
  // freed slab.
  thread_local std::vector<std::pair<std::uint64_t, Slab*>> cache;
  for (const auto& [uid, slab] : cache) {
    if (uid == uid_) return *slab;
  }
  auto owned = std::make_unique<Slab>();
  Slab* raw = owned.get();
  {
    std::lock_guard lock(mutex_);
    slabs_.push_back(std::move(owned));
  }
  cache.emplace_back(uid_, raw);
  return *raw;
}

std::atomic<std::int64_t>* MetricsRegistry::hist_bucket(Slab& slab,
                                                        std::uint32_t plane,
                                                        std::uint32_t bucket) {
  // Growing the plane vector is rare (first sample of a histogram on
  // this thread); reads of existing planes stay lock-free because
  // planes are never moved once published (unique_ptr indirection).
  {
    std::lock_guard lock(slab.planes_mutex);
    while (slab.hist_planes.size() <= plane) {
      slab.hist_planes.push_back(
          std::make_unique<std::array<std::atomic<std::int64_t>, 64>>());
    }
  }
  return &(*slab.hist_planes[plane])[bucket];
}

void MetricsRegistry::add(MetricId id, std::int64_t delta) noexcept {
  local_slab().cells[id].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::set(MetricId id, double value) noexcept {
  gauges_[id].store(std::bit_cast<std::uint64_t>(value),
                    std::memory_order_relaxed);
  // Mark the gauge as written so aggregate() can distinguish "never
  // set" from "set to 0.0": reuse the slab cell as a write counter.
  local_slab().cells[id].fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::observe(MetricId id, std::int64_t value) noexcept {
  Slab& slab = local_slab();
  const std::uint32_t plane = planes_[id].load(std::memory_order_relaxed);
  hist_bucket(slab, plane, log2_bucket(value))
      ->fetch_add(1, std::memory_order_relaxed);
  // Slab cell doubles as the running sum; count derives from buckets.
  slab.cells[id].fetch_add(value, std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::aggregate() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (std::size_t i = 0; i < metas_.size(); ++i) {
    const Meta& meta = metas_[i];
    std::int64_t cell_sum = 0;
    for (const auto& slab : slabs_) {
      cell_sum += slab->cells[i].load(std::memory_order_relaxed);
    }
    switch (meta.kind) {
      case Kind::kCounter:
        snap.counters[meta.name] = cell_sum;
        break;
      case Kind::kGauge:
        if (cell_sum > 0) {
          snap.gauges[meta.name] = std::bit_cast<double>(
              gauges_[i].load(std::memory_order_relaxed));
        }
        break;
      case Kind::kHistogram: {
        HistogramSnapshot hist;
        hist.sum = cell_sum;
        for (const auto& slab : slabs_) {
          if (slab->hist_planes.size() <= meta.plane) continue;
          const auto& plane = *slab->hist_planes[meta.plane];
          for (std::size_t b = 0; b < plane.size(); ++b) {
            hist.buckets[b] += plane[b].load(std::memory_order_relaxed);
          }
        }
        for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
          const std::int64_t c = hist.buckets[b];
          if (c == 0) continue;
          hist.count += c;
          // Bucket bounds: [2^(b-1), 2^b) for b >= 1, (-inf, 0] for 0.
          const std::int64_t lo = b == 0 ? 0 : std::int64_t{1} << (b - 1);
          const std::int64_t hi =
              b == 0 ? 0 : (std::int64_t{1} << b) - 1;
          if (hist.count == c) hist.min = lo;  // first non-empty bucket
          hist.max = hi;
        }
        snap.histograms[meta.name] = hist;
        break;
      }
    }
  }
  return snap;
}

void MetricsRegistry::reset() noexcept {
  std::lock_guard lock(mutex_);
  for (const auto& slab : slabs_) {
    for (auto& cell : slab->cells) cell.store(0, std::memory_order_relaxed);
    for (const auto& plane : slab->hist_planes) {
      for (auto& bucket : *plane) bucket.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
}

}  // namespace jamelect::obs
