#include "obs/prof.hpp"

#include <cstdlib>
#include <utility>

#include "obs/trace_events.hpp"

namespace jamelect::obs {

const char* phase_name(Phase phase) noexcept {
  switch (phase) {
    case Phase::kRng: return "rng";
    case Phase::kClassify: return "classify";
    case Phase::kCacheLookup: return "cache_lookup";
    case Phase::kLatticeUpdate: return "lattice_update";
    case Phase::kMerge: return "merge";
    case Phase::kStealWait: return "steal_wait";
    case Phase::kIdle: return "idle";
    case Phase::kAdmission: return "admission";
    case Phase::kQueueWait: return "queue_wait";
    case Phase::kCacheProbe: return "cache_probe";
    case Phase::kCompute: return "compute";
    case Phase::kSerialize: return "serialize";
    case Phase::kRespond: return "respond";
  }
  return "unknown";
}

const char* prof_counter_name(ProfCounter counter) noexcept {
  switch (counter) {
    case ProfCounter::kCacheLookups: return "cache_lookups";
    case ProfCounter::kCacheHits: return "cache_hits";
    case ProfCounter::kChunks: return "chunks";
    case ProfCounter::kTrials: return "trials";
    case ProfCounter::kSlots: return "slots";
  }
  return "unknown";
}

PhaseProfiler::PhaseProfiler() {
  static std::atomic<std::uint64_t> next_uid{1};
  uid_ = next_uid.fetch_add(1, std::memory_order_relaxed);
}

PhaseProfiler& PhaseProfiler::global() {
  static PhaseProfiler* profiler = [] {
    auto* p = new PhaseProfiler();  // leaked: outlives late-exiting threads
    if (const char* env = std::getenv("JAMELECT_OBS_PROF");
        env != nullptr && env[0] != '\0' &&
        !(env[0] == '0' && env[1] == '\0')) {
      p->set_enabled(true);
    }
    return p;
  }();
  return *profiler;
}

PhaseProfiler::Slab& PhaseProfiler::local_slab() {
  // Same uid-keyed cache as MetricsRegistry::local_slab: the profiler
  // owns the slab, the thread-local only caches the lookup.
  thread_local std::vector<std::pair<std::uint64_t, Slab*>> cache;
  for (const auto& [uid, slab] : cache) {
    if (uid == uid_) return *slab;
  }
  auto owned = std::make_unique<Slab>();
  Slab* raw = owned.get();
  {
    std::lock_guard lock(mutex_);
    slabs_.push_back(std::move(owned));
  }
  cache.emplace_back(uid_, raw);
  return *raw;
}

void PhaseProfiler::record(Phase phase, std::int64_t ns,
                           std::int64_t calls) noexcept {
  Slab& slab = local_slab();
  const auto i = static_cast<std::size_t>(phase);
  slab.ns[i].fetch_add(ns, std::memory_order_relaxed);
  slab.calls[i].fetch_add(calls, std::memory_order_relaxed);
}

void PhaseProfiler::count(ProfCounter counter, std::int64_t delta) noexcept {
  local_slab()
      .counters[static_cast<std::size_t>(counter)]
      .fetch_add(delta, std::memory_order_relaxed);
}

ProfSnapshot PhaseProfiler::snapshot() const {
  std::lock_guard lock(mutex_);
  ProfSnapshot snap;
  snap.threads.reserve(slabs_.size());
  for (const auto& slab : slabs_) {
    ProfThreadSnapshot t;
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      t.ns[i] = slab->ns[i].load(std::memory_order_relaxed);
      t.calls[i] = slab->calls[i].load(std::memory_order_relaxed);
      snap.total.ns[i] += t.ns[i];
      snap.total.calls[i] += t.calls[i];
    }
    for (std::size_t i = 0; i < kProfCounterCount; ++i) {
      t.counters[i] = slab->counters[i].load(std::memory_order_relaxed);
      snap.total.counters[i] += t.counters[i];
    }
    snap.threads.push_back(t);
  }
  return snap;
}

void PhaseProfiler::reset() noexcept {
  std::lock_guard lock(mutex_);
  for (const auto& slab : slabs_) {
    for (auto& v : slab->ns) v.store(0, std::memory_order_relaxed);
    for (auto& v : slab->calls) v.store(0, std::memory_order_relaxed);
    for (auto& v : slab->counters) v.store(0, std::memory_order_relaxed);
  }
}

void PoolProfObserver::on_task_start(std::size_t worker_slot) noexcept {
  if (recorder_ != nullptr) recorder_->on_task_start(worker_slot);
}

void PoolProfObserver::on_task_end(std::size_t worker_slot) noexcept {
  if (recorder_ != nullptr) recorder_->on_task_end(worker_slot);
}

void PoolProfObserver::on_worker_idle(std::size_t /*worker_slot*/,
                                      std::int64_t wait_ns) noexcept {
  prof_add(Phase::kIdle, wait_ns);
}

void PoolProfObserver::on_caller_wait(std::int64_t wait_ns) noexcept {
  prof_add(Phase::kStealWait, wait_ns);
}

}  // namespace jamelect::obs
