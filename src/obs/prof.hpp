// PhaseProfiler — low-overhead interval profiler with first-class
// phase tags for the hot engines and the sweep service.
//
// Where MetricsRegistry answers "how many", the profiler answers
// "where did the wall-clock go": every nanosecond of a batch chunk or
// a service request is attributed to one of a small closed set of
// phases (rng, classify, cache_lookup, lattice_update, merge,
// steal_wait, idle on the engine side; admission, queue_wait,
// cache_probe, compute, serialize, respond on the service side).
//
// Same deal as the metrics layer (obs/metrics.hpp):
//  * per-thread slabs of relaxed atomics — writers never contend;
//  * compiled out entirely in Release builds unless -DJAMELECT_OBS=ON
//    (kObsCompiledIn), one predictable enabled() branch otherwise;
//  * disabled by default at runtime — opt in with set_enabled(true) or
//    the JAMELECT_OBS_PROF environment variable (any non-empty value
//    other than "0" enables the global profiler at first use).
//
// Hot loops do NOT write atomics per sample: they batch into a local
// PhaseAccumulator (plain int64 array, one clock read per section
// boundary) and flush once per chunk. The profiler never consumes
// randomness and never branches on results, so trial outcomes are
// bit-identical with profiling on or off.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "support/thread_pool.hpp"

namespace jamelect::obs {

class TraceEventRecorder;

/// Closed phase vocabulary. Engine phases attribute slot-processing
/// time; service phases attribute request lifetime. `classify` on the
/// fused wide-xoshiro path includes the RNG advance (the kernels fuse
/// draw + classification into one pass); the counter-based AES path
/// separates `rng` out.
enum class Phase : std::uint8_t {
  kRng,
  kClassify,
  kCacheLookup,
  kLatticeUpdate,
  kMerge,
  kStealWait,
  kIdle,
  kAdmission,
  kQueueWait,
  kCacheProbe,
  kCompute,
  kSerialize,
  kRespond,
};
inline constexpr std::size_t kPhaseCount = 13;

[[nodiscard]] const char* phase_name(Phase phase) noexcept;

/// Per-thread event counters that ride along with phase timings —
/// cheap enough to keep per-thread where MetricsRegistry only keeps
/// process rollups (the scaling report needs per-thread cache hit-rate
/// variance, not just the global hit rate).
enum class ProfCounter : std::uint8_t {
  kCacheLookups,
  kCacheHits,
  kChunks,
  kTrials,
  kSlots,
};
inline constexpr std::size_t kProfCounterCount = 5;

[[nodiscard]] const char* prof_counter_name(ProfCounter counter) noexcept;

/// Steady-clock nanoseconds (the profiler's time base).
[[nodiscard]] inline std::int64_t prof_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One thread's totals.
struct ProfThreadSnapshot {
  std::array<std::int64_t, kPhaseCount> ns{};
  std::array<std::int64_t, kPhaseCount> calls{};
  std::array<std::int64_t, kProfCounterCount> counters{};
};

/// Aggregated view: one entry per thread that ever wrote, plus the
/// cross-thread total.
struct ProfSnapshot {
  std::vector<ProfThreadSnapshot> threads;
  ProfThreadSnapshot total;
};

class PhaseProfiler {
 public:
  PhaseProfiler();
  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  /// The process-wide profiler (JAMELECT_OBS_PROF consulted once, at
  /// first use).
  [[nodiscard]] static PhaseProfiler& global();

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Adds `ns` (and `calls` section entries) to a phase on the calling
  /// thread's slab. Lock-free; relaxed atomics. Not gated — callers
  /// gate themselves (PhaseAccumulator/ProfScope do).
  void record(Phase phase, std::int64_t ns, std::int64_t calls = 1) noexcept;
  void count(ProfCounter counter, std::int64_t delta) noexcept;

  /// Sums every per-thread slab. Safe concurrent with writers.
  [[nodiscard]] ProfSnapshot snapshot() const;

  /// Zeroes every slab. Caller must ensure no concurrent writers.
  void reset() noexcept;

 private:
  struct Slab {
    std::array<std::atomic<std::int64_t>, kPhaseCount> ns{};
    std::array<std::atomic<std::int64_t>, kPhaseCount> calls{};
    std::array<std::atomic<std::int64_t>, kProfCounterCount> counters{};
  };

  [[nodiscard]] Slab& local_slab();

  /// Process-unique id keying the thread-local slab cache (same
  /// rationale as MetricsRegistry::uid_).
  std::uint64_t uid_;
  mutable std::mutex mutex_;  ///< guards slabs_ growth
  std::vector<std::unique_ptr<Slab>> slabs_;
  std::atomic<bool> enabled_{false};
};

/// Gated one-shot adds for coarse call sites (service request phases).
inline void prof_add(Phase phase, std::int64_t ns,
                     std::int64_t calls = 1) noexcept {
  if constexpr (kObsCompiledIn) {
    auto& prof = PhaseProfiler::global();
    if (prof.enabled()) prof.record(phase, ns, calls);
  }
}
inline void prof_count(ProfCounter counter, std::int64_t delta) noexcept {
  if constexpr (kObsCompiledIn) {
    auto& prof = PhaseProfiler::global();
    if (prof.enabled()) prof.count(counter, delta);
  }
}

/// Local, non-atomic phase accumulator for hot loops: captures the
/// enabled bit once at construction (so a whole chunk costs one branch
/// when profiling is off), batches samples into plain int64 arrays,
/// and flushes to the global profiler once, at destruction or flush().
/// Section timing is stitched — stop() uses its own clock read as the
/// next start mark — so back-to-back sections cost one clock read per
/// boundary, not two.
class PhaseAccumulator {
 public:
  PhaseAccumulator() noexcept {
    if constexpr (kObsCompiledIn) {
      prof_ = &PhaseProfiler::global();
      on_ = prof_->enabled();
    }
  }
  /// Test seam: accumulate into a specific profiler (still honours its
  /// enabled bit).
  explicit PhaseAccumulator(PhaseProfiler& prof) noexcept {
    if constexpr (kObsCompiledIn) {
      prof_ = &prof;
      on_ = prof.enabled();
    }
  }
  PhaseAccumulator(const PhaseAccumulator&) = delete;
  PhaseAccumulator& operator=(const PhaseAccumulator&) = delete;
  ~PhaseAccumulator() { flush(); }

  [[nodiscard]] bool on() const noexcept { return on_; }

  void start() noexcept {
    if (on_) mark_ = prof_now_ns();
  }
  void stop(Phase phase) noexcept {
    if (!on_) return;
    const std::int64_t t = prof_now_ns();
    const auto i = static_cast<std::size_t>(phase);
    ns_[i] += t - mark_;
    ++calls_[i];
    mark_ = t;  // stitch: the next section starts here
  }
  void add(Phase phase, std::int64_t ns, std::int64_t calls = 1) noexcept {
    if (!on_) return;
    const auto i = static_cast<std::size_t>(phase);
    ns_[i] += ns;
    calls_[i] += calls;
  }
  void count(ProfCounter counter, std::int64_t delta) noexcept {
    if (!on_) return;
    counters_[static_cast<std::size_t>(counter)] += delta;
  }

  void flush() noexcept {
    if (!on_) return;
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      if (calls_[i] == 0 && ns_[i] == 0) continue;
      prof_->record(static_cast<Phase>(i), ns_[i], calls_[i]);
      ns_[i] = 0;
      calls_[i] = 0;
    }
    for (std::size_t i = 0; i < kProfCounterCount; ++i) {
      if (counters_[i] == 0) continue;
      prof_->count(static_cast<ProfCounter>(i), counters_[i]);
      counters_[i] = 0;
    }
  }

 private:
  PhaseProfiler* prof_ = nullptr;
  bool on_ = false;
  std::int64_t mark_ = 0;
  std::array<std::int64_t, kPhaseCount> ns_{};
  std::array<std::int64_t, kPhaseCount> calls_{};
  std::array<std::int64_t, kProfCounterCount> counters_{};
};

/// RAII scope for coarse phases (one record per scope).
class ProfScope {
 public:
  explicit ProfScope(Phase phase) noexcept : phase_(phase) {
    if constexpr (kObsCompiledIn) {
      auto& prof = PhaseProfiler::global();
      if (prof.enabled()) {
        prof_ = &prof;
        start_ = prof_now_ns();
      }
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;
  ~ProfScope() {
    if (prof_ != nullptr) prof_->record(phase_, prof_now_ns() - start_);
  }

 private:
  Phase phase_;
  PhaseProfiler* prof_ = nullptr;
  std::int64_t start_ = 0;
};

/// Pool observer that feeds scheduling phases into the global profiler
/// (worker cv waits → `idle`, the caller's completion-barrier wait →
/// `steal_wait`) and optionally forwards task start/end to a
/// TraceEventRecorder so one attachment yields both the profile and
/// the pool_task spans in the Chrome trace.
class PoolProfObserver final : public PoolTaskObserver {
 public:
  explicit PoolProfObserver(TraceEventRecorder* recorder = nullptr) noexcept
      : recorder_(recorder) {}

  void on_task_start(std::size_t worker_slot) noexcept override;
  void on_task_end(std::size_t worker_slot) noexcept override;
  void on_worker_idle(std::size_t worker_slot,
                      std::int64_t wait_ns) noexcept override;
  void on_caller_wait(std::int64_t wait_ns) noexcept override;

 private:
  TraceEventRecorder* recorder_;
};

}  // namespace jamelect::obs
