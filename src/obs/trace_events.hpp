// Chrome trace-event recorder (Perfetto / chrome://tracing loadable).
//
// Scoped wall-clock spans are collected as "complete" events
// (ph = "X") and serialized as the Trace Event Format JSON that
// https://ui.perfetto.dev opens directly. Intended granularity is
// coarse — per-trial spans, thread-pool tasks, bench sections — not
// per-slot; each span end takes a short lock to push one record.
//
// The recorder also implements support/thread_pool.hpp's
// PoolTaskObserver, so attaching it to a pool
// (`global_pool().set_task_observer(&rec)`) times every dispatched
// task chunk with zero changes to the pool's callers.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "support/thread_pool.hpp"

namespace jamelect::obs {

class TraceEventRecorder final : public PoolTaskObserver {
 public:
  TraceEventRecorder() : epoch_(Clock::now()) {}

  /// RAII span: records [construction, destruction) under `name`.
  /// `name` must be a string literal (stored, not copied).
  class Span {
   public:
    Span(TraceEventRecorder& rec, const char* name) noexcept
        : rec_(&rec), name_(name), start_(Clock::now()) {}
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { rec_->complete(name_, start_, Clock::now()); }

   private:
    TraceEventRecorder* rec_;
    const char* name_;
    std::chrono::steady_clock::time_point start_;
  };

  [[nodiscard]] Span span(const char* name) noexcept { return {*this, name}; }

  // PoolTaskObserver: times each dispatched pool task chunk.
  void on_task_start(std::size_t worker_slot) noexcept override;
  void on_task_end(std::size_t worker_slot) noexcept override;

  /// Microseconds since the recorder's epoch — the time base of
  /// record_at(). Lets callers stamp span boundaries as plain integers
  /// and record the span after the fact.
  [[nodiscard]] std::int64_t now_us() const noexcept;

  /// Records a completed span retroactively from explicit epoch-
  /// relative timestamps (see now_us()). Used for passive intervals
  /// that have no live scope — e.g. the time a service job spent
  /// queued. `name` must be a string literal. An invalid `trace` falls
  /// back to the calling thread's current_trace().
  void record_at(const char* name, std::int64_t ts_us, std::int64_t dur_us,
                 TraceId trace = {}) noexcept;

  /// Number of completed spans recorded so far.
  [[nodiscard]] std::size_t size() const;

  /// Spans recorded so far whose trace id equals `trace` (test /
  /// verification helper for "one request = one coherent tree").
  [[nodiscard]] std::size_t count_trace(TraceId trace) const;

  /// Serializes {"traceEvents": [...]} to `out`.
  void write_json(std::ostream& out) const;
  /// Convenience: write_json to a file; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Record {
    const char* name;
    std::uint32_t tid;
    std::int64_t ts_us;   ///< microseconds since recorder epoch
    std::int64_t dur_us;
    TraceId trace{};      ///< request lineage; invalid when untraced
  };

  /// Small stable integer id for the calling thread (Perfetto "tid").
  [[nodiscard]] static std::uint32_t thread_id() noexcept;

  void complete(const char* name, Clock::time_point start,
                Clock::time_point end) noexcept;

  Clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<Record> records_;
  /// Per-(thread, recorder) start time of the currently running pool
  /// task; pool tasks never nest, so one slot per thread suffices.
  static thread_local Clock::time_point task_start_;
};

}  // namespace jamelect::obs
