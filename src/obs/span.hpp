// Trace ids, span records, and the bounded span ring.
//
// A TraceId is a 128-bit request-scoped identifier minted at the edge
// (jamelect_loadgen, or any client that puts a "trace" field in the
// request envelope) and threaded through the whole stack: request →
// SweepService job → sweep_runner → McConfig → thread-pool chunk
// tasks. Every span recorded while a ScopedTrace is active on the
// current thread is tagged with it, so one request reassembles into
// one coherent Chrome-trace tree and one flight-recorder lineage.
//
// SpanRing is the bounded ring buffer behind the jamelectd flight
// recorder: pushes are O(1) under a short lock, the oldest record is
// overwritten when full, and `overwritten()` counts the loss so dumps
// are honest about truncation. Span names/phases are string literals
// (stored, not copied) — same contract as TraceEventRecorder.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace jamelect::obs {

/// 128-bit trace/span id. Zero (`valid() == false`) means "untraced".
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] bool valid() const noexcept { return (hi | lo) != 0; }

  /// 32 lowercase hex chars, hi word first.
  [[nodiscard]] std::string hex() const;

  /// Parses the hex() format. Returns an invalid id on anything that
  /// is not exactly 32 hex chars.
  [[nodiscard]] static TraceId parse(std::string_view text) noexcept;

  /// Deterministically derives an id from two seed words (splitmix64
  /// finalizer on each lane, cross-mixed so (a,b) and (b,a) differ).
  /// Never returns the invalid id.
  [[nodiscard]] static TraceId derive(std::uint64_t a,
                                      std::uint64_t b) noexcept;

  friend bool operator==(const TraceId&, const TraceId&) = default;
};

/// The trace id active on the calling thread (invalid if none).
[[nodiscard]] TraceId current_trace() noexcept;

/// Sets the calling thread's active trace id for a scope; restores the
/// previous one on destruction. Spans recorded by TraceEventRecorder
/// and FlightRecorder while active inherit it.
class ScopedTrace {
 public:
  explicit ScopedTrace(TraceId id) noexcept;
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
  ~ScopedTrace();

 private:
  TraceId prev_;
};

/// One completed interval. `name` and `phase` must be string literals
/// (or otherwise outlive the ring).
struct SpanRecord {
  const char* name = "";
  const char* phase = "";  ///< phase tag ("" when not phase-attributed)
  std::uint32_t tid = 0;
  std::int64_t ts_us = 0;  ///< start, microseconds since ring epoch
  std::int64_t dur_us = 0;
  TraceId trace{};
};

/// Fixed-capacity ring of recent spans. Push overwrites the oldest
/// record once full. Thread-safe (short mutex per push).
class SpanRing {
 public:
  explicit SpanRing(std::size_t capacity);

  void push(const SpanRecord& rec);

  /// Records currently held, oldest first.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  /// Total pushes since construction/clear (>= size()).
  [[nodiscard]] std::uint64_t pushed() const;
  /// Records lost to overwrite (== pushed() - size() once wrapped).
  [[nodiscard]] std::uint64_t overwritten() const;

  void clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::size_t head_ = 0;  ///< next write slot once the ring is full
  std::uint64_t pushed_ = 0;
};

/// Flight recorder: a SpanRing with a steady-clock epoch and NDJSON
/// dump helpers. jamelectd keeps one and dumps it on SIGUSR1 and on
/// abnormal drain; examples reuse write_ndjson for schema-validated
/// telemetry streams.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 4096);

  /// Microseconds since the recorder's epoch (steady clock).
  [[nodiscard]] std::int64_t now_us() const noexcept;

  /// Records a completed interval. Trace defaults to the thread's
  /// current_trace() when `trace` is invalid.
  void record(const char* name, const char* phase, std::int64_t ts_us,
              std::int64_t dur_us, TraceId trace = {});

  [[nodiscard]] const SpanRing& ring() const noexcept { return ring_; }

  /// One `{"ev":"span",...}` NDJSON line per held record (oldest
  /// first), then one `{"ev":"flight",...}` summary line with
  /// pushed/overwritten counts.
  void write_ndjson(std::ostream& out) const;

  /// Writes write_ndjson() to `<prefix>-<utc timestamp>-<seq>.ndjson`.
  /// Returns the path, or "" on I/O failure.
  [[nodiscard]] std::string dump(const std::string& prefix) const;

 private:
  using Clock = std::chrono::steady_clock;

  SpanRing ring_;
  Clock::time_point epoch_;
};

/// Serializes one span as an NDJSON object (no trailing newline):
/// {"ev":"span","name":...,"phase":...,"tid":...,"ts_us":...,
///  "dur_us":...,"trace":"<32 hex>"} — `phase`/`trace` omitted when
/// empty/invalid. Shared by FlightRecorder and examples.
void append_span_json(std::string& out, const SpanRecord& rec);

}  // namespace jamelect::obs
