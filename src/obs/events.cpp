#include "obs/events.hpp"

#include <charconv>
#include <cmath>
#include <cstring>
#include <ostream>

namespace jamelect::obs {

namespace {

// Serialization writes through a raw cursor into a stack buffer — no
// per-piece capacity checks, no allocation. std::to_chars throughout:
// much faster than snprintf and emits the shortest digit string that
// round-trips. Values are literals/numbers only, so no JSON escaping
// is needed (ProtocolProbe requires string-literal names).
//
// kMaxLine bounds the longest possible line: a slot event is 10
// numeric/enum fields of < 32 chars each; phase/cohort events carry
// short literal names.
constexpr std::size_t kMaxLine = 512;

void put(char*& p, std::string_view s) {
  std::memcpy(p, s.data(), s.size());
  p += s.size();
}

void put_key(char*& p, std::string_view key) {
  *p++ = '"';
  put(p, key);
  *p++ = '"';
  *p++ = ':';
}

void put_str(char*& p, std::string_view key, std::string_view value) {
  put_key(p, key);
  *p++ = '"';
  put(p, value);
  *p++ = '"';
  *p++ = ',';
}

void put_num(char*& p, std::string_view key, double v) {
  put_key(p, key);
  if (std::isnan(v)) {
    put(p, "null");
  } else {
    p = std::to_chars(p, p + 40, v).ptr;
  }
  *p++ = ',';
}

void put_int(char*& p, std::string_view key, std::int64_t v) {
  put_key(p, key);
  p = std::to_chars(p, p + 24, v).ptr;
  *p++ = ',';
}

void put_uint(char*& p, std::string_view key, std::uint64_t v) {
  put_key(p, key);
  p = std::to_chars(p, p + 24, v).ptr;
  *p++ = ',';
}

void put_bool(char*& p, std::string_view key, bool v) {
  put_key(p, key);
  put(p, v ? std::string_view{"true"} : std::string_view{"false"});
  *p++ = ',';
}

/// Writes one event as a JSON object into `buf` (>= kMaxLine bytes);
/// returns the number of bytes written.
std::size_t write_json(char* buf, const Event& e) {
  char* p = buf;
  *p++ = '{';
  put_str(p, "ev", to_string(e.kind));
  put_uint(p, "trial", e.trial);
  put_int(p, "slot", e.slot);
  switch (e.kind) {
    case EventKind::kSlot:
      put_str(p, "state", jamelect::to_string(e.state));
      put_uint(p, "tx", e.transmitters);
      put_bool(p, "jam", e.jammed);
      put_num(p, "u", e.estimate);
      put_num(p, "etx", e.expected_tx);
      put_int(p, "jams", e.jams_total);
      put_num(p, "spend", e.budget_spend);
      break;
    case EventKind::kBudget:
      put_int(p, "jams", e.jams_total);
      put_num(p, "spend", e.budget_spend);
      break;
    case EventKind::kPhase:
      put_str(p, "proto", e.protocol);
      put_str(p, "phase", e.phase);
      put_int(p, "i", e.phase_i);
      put_int(p, "j", e.phase_j);
      put_num(p, "eps", e.phase_eps);
      break;
    case EventKind::kCohort:
      put_str(p, "op", e.cohort_op);
      put_uint(p, "from", e.cohort_from);
      put_uint(p, "to", e.cohort_to);
      put_uint(p, "live", e.cohorts_live);
      break;
    case EventKind::kTrialStart:
      break;
    case EventKind::kTrialEnd:
      put_bool(p, "elected", e.elected);
      put_int(p, "slots", e.slots_total);
      put_int(p, "jams", e.jams_total);
      put_num(p, "transmissions", e.transmissions);
      break;
  }
  p[-1] = '}';  // replace the trailing comma
  return static_cast<std::size_t>(p - buf);
}

}  // namespace

std::string NdjsonSink::to_json(const Event& e) {
  char buf[kMaxLine];
  return std::string(buf, write_json(buf, e));
}

void NdjsonSink::on_event(const Event& event) {
  char buf[kMaxLine];
  std::size_t len = write_json(buf, event);
  buf[len++] = '\n';
  std::lock_guard lock(mutex_);
  if (buffer_.size() + len > kBufferSize) {
    out_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
  buffer_.append(buf, len);
}

void NdjsonSink::flush() {
  std::lock_guard lock(mutex_);
  if (!buffer_.empty()) {
    out_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
  out_->flush();
}

}  // namespace jamelect::obs
