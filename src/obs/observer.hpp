// RunObserver — the per-run hook object engines emit telemetry through.
//
// One RunObserver wraps one EventSink (shared across trials; sinks are
// thread-safe) and applies deterministic slot sampling: slot events are
// emitted every `slot_sample_period` slots, structural events (phase
// transitions, cohort splits/merges, trial boundaries) always. The
// sampling is a pure function of the slot index so two runs of the same
// seed emit identical streams regardless of thread scheduling.
//
// Engines keep a nullable `RunObserver*` in their config structs; every
// hook is a no-op-free direct call, so the hot path with no observer
// attached costs exactly one pointer test per slot.
//
// Protocols (which know their own phase structure but not the engine)
// emit through the narrower ProtocolProbe interface; RunObserver
// implements it and stamps the current trial/slot on the way through.
// Cloned protocol instances share the probe pointer (non-owning), so
// under the cohort engine a phase transition may be reported once per
// diverged cohort representative.
#pragma once

#include <cstdint>

#include "channel/types.hpp"
#include "obs/events.hpp"

namespace jamelect::obs {

/// Narrow emission interface handed to protocols (LESK, LESU).
class ProtocolProbe {
 public:
  virtual ~ProtocolProbe() = default;
  /// Reports entering `phase` of `protocol`. i/j/eps carry the LESU
  /// schedule position (0 when not applicable). The strings must be
  /// string literals (stored, not copied).
  virtual void on_protocol_phase(const char* protocol, const char* phase,
                                 std::int64_t i, std::int64_t j,
                                 double eps) = 0;
};

struct ObserverConfig {
  /// Emit every Nth slot event (1 = every slot). Structural events are
  /// never sampled out. The default keeps million-trial sweeps fast
  /// while still resolving estimator trajectories at LESK timescales.
  std::int64_t slot_sample_period = 64;
};

class RunObserver final : public ProtocolProbe {
 public:
  /// The sink must outlive the observer.
  explicit RunObserver(EventSink& sink, ObserverConfig config = {})
      : sink_(&sink), config_(config) {
    const std::int64_t period = config_.slot_sample_period;
    // Integer division costs ~25 cycles — a visible fraction of a
    // cohort-engine slot — so power-of-two periods (the default)
    // sample with a mask instead.
    period_mask_ = (period > 0 && (period & (period - 1)) == 0)
                       ? period - 1
                       : std::int64_t{-1};
  }

  /// Marks the start of trial `trial`; subsequent events carry its id.
  void begin_trial(std::uint64_t trial) {
    trial_ = trial;
    slot_ = 0;
    Event e;
    e.kind = EventKind::kTrialStart;
    e.trial = trial_;
    sink_->on_event(e);
  }

  /// Marks the end of the current trial with its outcome summary.
  void end_trial(bool elected, std::int64_t slots, std::int64_t jams,
                 double transmissions) {
    Event e;
    e.kind = EventKind::kTrialEnd;
    e.trial = trial_;
    e.slot = slot_;
    e.elected = elected;
    e.slots_total = slots;
    e.jams_total = jams;
    e.transmissions = transmissions;
    sink_->on_event(e);
  }

  /// Cheap pre-check: advances the slot cursor and reports whether a
  /// slot event at (slot, state) would be emitted. Engines call this
  /// every slot and gather the expensive arguments (estimates, budget
  /// spend) only when it returns true, so sampled-out slots cost a
  /// handful of instructions.
  [[nodiscard]] bool wants_slot(Slot slot, ChannelState state) noexcept {
    slot_ = slot;
    if (config_.slot_sample_period <= 0) return false;
    // Keep every Single: they are the rare, run-deciding slots.
    const bool on_grid = period_mask_ >= 0
                             ? (slot & period_mask_) == 0
                             : slot % config_.slot_sample_period == 0;
    return on_grid || state == ChannelState::kSingle;
  }

  /// Convenience wrapper: `wants_slot` + `emit_slot`. Prefer the split
  /// form on hot paths where the arguments are costly to compute.
  void on_slot(Slot slot, ChannelState state, std::uint64_t transmitters,
               bool jammed, double estimate, double expected_tx,
               std::int64_t jams_total, double budget_spend) {
    if (!wants_slot(slot, state)) return;
    emit_slot(slot, state, transmitters, jammed, estimate, expected_tx,
              jams_total, budget_spend);
  }

  /// Unconditionally emits a slot event (no sampling re-check).
  void emit_slot(Slot slot, ChannelState state, std::uint64_t transmitters,
                 bool jammed, double estimate, double expected_tx,
                 std::int64_t jams_total, double budget_spend) {
    slot_ = slot;
    Event e;
    e.kind = EventKind::kSlot;
    e.trial = trial_;
    e.slot = slot;
    e.state = state;
    e.transmitters = transmitters;
    e.jammed = jammed;
    e.estimate = estimate;
    e.expected_tx = expected_tx;
    e.jams_total = jams_total;
    e.budget_spend = budget_spend;
    sink_->on_event(e);
  }

  /// Cohort engine structural events; `op` is "split" or "merge".
  void on_cohort(Slot slot, const char* op, std::uint64_t from,
                 std::uint64_t to, std::uint64_t live) {
    Event e;
    e.kind = EventKind::kCohort;
    e.trial = trial_;
    e.slot = slot;
    e.cohort_op = op;
    e.cohort_from = from;
    e.cohort_to = to;
    e.cohorts_live = live;
    sink_->on_event(e);
  }

  void on_protocol_phase(const char* protocol, const char* phase,
                         std::int64_t i, std::int64_t j, double eps) override {
    Event e;
    e.kind = EventKind::kPhase;
    e.trial = trial_;
    e.slot = slot_;
    e.protocol = protocol;
    e.phase = phase;
    e.phase_i = i;
    e.phase_j = j;
    e.phase_eps = eps;
    sink_->on_event(e);
  }

  [[nodiscard]] EventSink& sink() noexcept { return *sink_; }
  [[nodiscard]] const ObserverConfig& config() const noexcept {
    return config_;
  }

 private:
  EventSink* sink_;
  ObserverConfig config_;
  std::int64_t period_mask_;  ///< period-1 if power of two, else -1
  std::uint64_t trial_ = 0;
  Slot slot_ = 0;
};

}  // namespace jamelect::obs
