// Trace explorer: record one LESK run slot by slot, classify each slot
// with the paper's taxonomy (IS/IC/CS/CC/E/R, Lemmas 2.2-2.5), and dump
// a CSV suitable for plotting the estimator's biased random walk.
//
//   example_trace_explorer [--n=1024] [--eps=0.5] [--T=64]
//                          [--adversary=saturating] [--seed=5]
//                          [--csv] [--summary-only]
#include <cmath>
#include <iostream>

#include "analysis/slot_taxonomy.hpp"
#include "analysis/timeline.hpp"
#include "protocols/lesk.hpp"
#include "sim/adversary_spec.hpp"
#include "sim/aggregate.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

const char* class_name(jamelect::SlotClass c) {
  using jamelect::SlotClass;
  switch (c) {
    case SlotClass::kRegular: return "R";
    case SlotClass::kIrregularSilence: return "IS";
    case SlotClass::kIrregularCollision: return "IC";
    case SlotClass::kCorrectingSilence: return "CS";
    case SlotClass::kCorrectingCollision: return "CC";
    case SlotClass::kJammed: return "E";
    case SlotClass::kSingle: return "WIN";
    case SlotClass::kUnknown: return "?";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jamelect;
  const Cli cli(argc, argv);
  const std::uint64_t n = cli.get_uint("n", 1024);
  const double eps = cli.get_double("eps", 0.5);
  const std::int64_t T = cli.get_int("T", 64);
  const std::string policy = cli.get_string("adversary", "saturating");
  const std::uint64_t seed = cli.get_uint("seed", 5);
  const bool csv = cli.get_bool("csv", false);
  const bool summary_only = cli.get_bool("summary-only", false);
  const bool timeline = cli.get_bool("timeline", false);

  AdversarySpec spec;
  spec.policy = policy;
  spec.T = T;
  spec.eps = eps;
  spec.n = n;

  Lesk lesk(eps);
  Rng rng(seed);
  auto adversary = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  Trace trace;
  const auto out = run_aggregate(lesk, *adversary, {n, 1 << 24}, sim, &trace);

  const double u0 = std::log2(static_cast<double>(n));
  const double a = 8.0 / eps;

  if (!summary_only) {
    if (csv) {
      std::cout << "slot,u,state,jammed,class\n";
    } else {
      std::cout << "slot\tu\tstate\t\tjam\tclass\n";
    }
    for (const auto& rec : trace.records()) {
      const auto cls = classify_slot_record(rec, u0, a);
      if (csv) {
        std::cout << rec.slot << "," << rec.estimate << ","
                  << to_string(rec.state) << "," << (rec.jammed ? 1 : 0) << ","
                  << class_name(cls) << "\n";
      } else {
        std::cout << rec.slot << "\t" << rec.estimate << "\t"
                  << to_string(rec.state) << "\t" << (rec.jammed ? "*" : "")
                  << "\t" << class_name(cls) << "\n";
      }
    }
    std::cout << "\n";
  }

  if (timeline) {
    std::cout << render_timeline(trace, {100, false, n}) << "\n";
  }

  const auto counts = classify_trace(trace, n, eps);
  const auto bounds = lemma23_bounds(counts, n, eps);
  Table table({"class", "slots", "fraction"});
  const double total = static_cast<double>(counts.total());
  table.row() << "regular (R)" << counts.regular
              << static_cast<double>(counts.regular) / total;
  table.row() << "irregular silence (IS)" << counts.irregular_silence
              << static_cast<double>(counts.irregular_silence) / total;
  table.row() << "irregular collision (IC)" << counts.irregular_collision
              << static_cast<double>(counts.irregular_collision) / total;
  table.row() << "correcting silence (CS)" << counts.correcting_silence
              << static_cast<double>(counts.correcting_silence) / total;
  table.row() << "correcting collision (CC)" << counts.correcting_collision
              << static_cast<double>(counts.correcting_collision) / total;
  table.row() << "jammed (E)" << counts.jammed
              << static_cast<double>(counts.jammed) / total;
  table.row() << "deciding Single" << counts.single
              << static_cast<double>(counts.single) / total;
  table.print_ascii(std::cout);
  std::cout << "\nLemma 2.3 counter relations: CS " << bounds.cs_measured
            << " <= " << bounds.cs_bound << ", CC " << bounds.cc_measured
            << " <= " << bounds.cc_bound << " -> "
            << (bounds.holds() ? "hold" : "VIOLATED") << "\n"
            << (out.elected ? "leader elected" : "no leader") << " after "
            << out.slots << " slots (u0=" << u0 << ")\n";
  return out.elected ? 0 : 1;
}
