// Quickstart: elect a leader among n stations on a jammed channel.
//
//   example_quickstart [--n=1000] [--eps=0.5] [--T=64]
//                      [--adversary=saturating] [--seed=1] [--weak-cd]
//
// Demonstrates the minimal API path: pick a protocol (LESK when eps is
// known, wrapped in Notification for weak-CD), pick a (T, 1-eps)
// adversary, run one trial, read the outcome.
#include <cstdlib>
#include <iostream>

#include "protocols/lesk.hpp"
#include "sim/aggregate.hpp"
#include "sim/adversary_spec.hpp"
#include "sim/hybrid.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace jamelect;
  const Cli cli(argc, argv);
  const std::uint64_t n = cli.get_uint("n", 1000);
  const double eps = cli.get_double("eps", 0.5);
  const std::int64_t T = cli.get_int("T", 64);
  const std::string policy = cli.get_string("adversary", "saturating");
  const std::uint64_t seed = cli.get_uint("seed", 1);
  const bool weak_cd = cli.get_bool("weak-cd", false);

  AdversarySpec spec;
  spec.policy = policy;
  spec.T = T;
  spec.eps = eps;
  spec.n = n;

  Rng rng(seed);
  auto adversary = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);

  std::cout << "jamelect quickstart: n=" << n << " eps=" << eps << " T=" << T
            << " adversary=" << policy
            << (weak_cd ? " (weak-CD, LEWK)" : " (strong-CD, LESK)") << "\n";

  TrialOutcome out;
  if (weak_cd) {
    out = run_hybrid_notification(
        [eps] { return std::make_unique<Lesk>(eps); }, *adversary,
        {n, 1 << 24}, sim);
  } else {
    Lesk lesk(eps);
    out = run_aggregate(lesk, *adversary, {n, 1 << 24}, sim);
  }

  if (!out.elected) {
    std::cout << "no leader within the slot budget (try a larger one)\n";
    return EXIT_FAILURE;
  }
  std::cout << "leader elected: station " << *out.leader << "\n"
            << "  slots          " << out.slots << "\n"
            << "  jammed slots   " << out.jams << " ("
            << 100.0 * static_cast<double>(out.jams) /
                   static_cast<double>(out.slots)
            << "%)\n"
            << "  channel        " << out.nulls << " Null / " << out.singles
            << " Single / " << out.collisions << " Collision\n"
            << "  energy/station " << out.transmissions / static_cast<double>(n)
            << " expected transmissions\n";
  return EXIT_SUCCESS;
}
