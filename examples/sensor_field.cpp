// Sensor field: the paper's motivating deployment scenario. A field of
// battery-powered sensors re-elects a coordinator every epoch over a
// jammed radio channel; between epochs nodes die and new ones join, so
// no station ever knows n — exactly LEWU's regime (weak-CD, no global
// parameters).
//
//   example_sensor_field [--epochs=12] [--n=200] [--churn=0.1]
//                        [--eps=0.4] [--T=96] [--seed=3]
#include <algorithm>
#include <iostream>

#include "protocols/lesu.hpp"
#include "sim/adversary_spec.hpp"
#include "sim/hybrid.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace jamelect;
  const Cli cli(argc, argv);
  const std::int64_t epochs = cli.get_int("epochs", 12);
  std::uint64_t n = cli.get_uint("n", 200);
  const double churn = cli.get_double("churn", 0.1);
  const double eps = cli.get_double("eps", 0.4);
  const std::int64_t T = cli.get_int("T", 96);
  const std::uint64_t seed = cli.get_uint("seed", 3);

  std::cout << "sensor field: " << epochs << " epochs, initial n=" << n
            << ", churn=" << churn << ", (T=" << T << ", 1-" << eps
            << ")-bounded jammer, protocol=LEWU (weak-CD, no knowledge)\n\n";

  Table table({"epoch", "n", "slots", "jam%", "energy/station", "coordinator"});
  Rng rng(seed);
  std::int64_t total_slots = 0;
  for (std::int64_t epoch = 0; epoch < epochs; ++epoch) {
    AdversarySpec spec;
    spec.policy = "saturating";
    spec.T = T;
    spec.eps = eps;
    spec.n = n;
    auto adversary =
        make_adversary(spec, rng.child(static_cast<std::uint64_t>(3 * epoch)));
    Rng sim = rng.child(static_cast<std::uint64_t>(3 * epoch + 1));
    const auto out = run_hybrid_notification(
        [] { return std::make_unique<Lesu>(); }, *adversary, {n, 1 << 24},
        sim);
    if (!out.elected) {
      std::cout << "epoch " << epoch << ": election failed within budget\n";
      return 1;
    }
    total_slots += out.slots;
    table.row() << epoch << n << out.slots
                << 100.0 * static_cast<double>(out.jams) /
                       static_cast<double>(out.slots)
                << out.transmissions / static_cast<double>(n)
                << ("station#" + std::to_string(*out.leader));

    // Churn: a fraction of nodes dies, a similar number joins.
    Rng churn_rng = rng.child(static_cast<std::uint64_t>(3 * epoch + 2));
    const auto deaths = static_cast<std::uint64_t>(
        churn * static_cast<double>(n) * churn_rng.uniform() * 2.0);
    const auto births = static_cast<std::uint64_t>(
        churn * static_cast<double>(n) * churn_rng.uniform() * 2.0);
    n = std::max<std::uint64_t>(3, n - std::min(deaths, n - 3) + births);
  }
  table.print_ascii(std::cout);
  std::cout << "\ntotal slots across epochs: " << total_slots
            << " (stations never learned n, T or eps)\n";
  return 0;
}
