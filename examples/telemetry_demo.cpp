// Telemetry demo: replay one LESK trial with every sink attached.
//
//   example_telemetry_demo [--n=256] [--eps=0.5] [--T=64] [--seed=7]
//                          [--trial=0] [--sample=1]
//                          [--events=events.ndjson]
//                          [--trace=trace.json]
//                          [--manifest=telemetry_demo]
//
// Produces three artifacts:
//   * events.ndjson — structured slot/phase/trial events, followed by
//     span records (flight-recorder dump of the replay), one flight
//     summary line, and one per-request timing envelope — all kinds
//     validate with scripts/validate_events.py against
//     docs/event_schema.json;
//   * trace.json    — Chrome trace-event spans, open in
//     https://ui.perfetto.dev;
//   * <manifest>.manifest.json — config + seed + build + metric rollup.
//
// CI runs this binary and validates the NDJSON stream against the
// schema, so the demo doubles as the telemetry integration smoke test.
#include <fstream>
#include <iostream>
#include <memory>

#include "obs/events.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/span.hpp"
#include "obs/trace_events.hpp"
#include "protocols/lesk.hpp"
#include "sim/montecarlo.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace jamelect;
  const Cli cli(argc, argv);
  const std::uint64_t n = cli.get_uint("n", 256);
  const double eps = cli.get_double("eps", 0.5);
  const std::int64_t T = cli.get_int("T", 64);
  const std::uint64_t seed = cli.get_uint("seed", 7);
  const std::uint64_t trial = cli.get_uint("trial", 0);
  const std::int64_t sample = cli.get_int("sample", 1);
  const std::string events_path = cli.get_string("events", "events.ndjson");
  const std::string trace_path = cli.get_string("trace", "trace.json");
  const std::string manifest_name =
      cli.get_string("manifest", "telemetry_demo");

  obs::MetricsRegistry::global().set_enabled(true);

  AdversarySpec spec;
  spec.policy = "saturating";
  spec.T = T;
  spec.eps = eps;

  McConfig config;
  config.trials = trial + 1;
  config.seed = seed;
  config.max_slots = 1 << 22;

  std::ofstream events_out(events_path);
  if (!events_out) {
    std::cerr << "cannot open " << events_path << "\n";
    return 1;
  }
  obs::NdjsonSink sink(events_out);
  obs::RunObserver observer(sink, {sample});
  obs::TraceEventRecorder recorder;

  // Derive the demo's trace id the same way a traced client would: from
  // the run seed and the trial index. Everything recorded under the
  // ScopedTrace below carries it, so the span records in the events
  // stream reassemble into one lineage.
  const obs::TraceId demo_trace = obs::TraceId::derive(seed, trial);
  obs::FlightRecorder flight(64);

  TrialOutcome out;
  std::int64_t replay_us = 0;
  {
    const obs::ScopedTrace scoped(demo_trace);
    const std::int64_t t0 = flight.now_us();
    const auto span = recorder.span("replay_trial");
    out = replay_aggregate_trial([eps] { return std::make_unique<Lesk>(eps); },
                                 spec, n, config, trial, &observer);
    replay_us = flight.now_us() - t0;
    flight.record("replay_trial", "compute", t0, replay_us);
  }
  sink.flush();

  // Append the observability record kinds to the same stream: span +
  // flight-summary lines from the recorder, then one per-request timing
  // envelope shaped exactly like the service's response field. CI
  // validates this file, so the demo exercises every schema branch.
  flight.write_ndjson(events_out);
  events_out << "{\"ev\":\"timing\",\"trace\":\"" << demo_trace.hex()
             << "\",\"admission_us\":0,\"cache_probe_us\":0,\"queue_us\":0,"
             << "\"compute_us\":" << replay_us << ",\"serialize_us\":0}\n";
  events_out.flush();

  std::cout << "trial " << trial << ": elected=" << out.elected
            << " slots=" << out.slots << " jams=" << out.jams
            << " transmissions=" << out.transmissions << "\n"
            << "events  -> " << events_path << "\n";

  if (!recorder.write_file(trace_path)) {
    std::cerr << "cannot write " << trace_path << "\n";
    return 1;
  }
  std::cout << "spans   -> " << trace_path << " (open in ui.perfetto.dev)\n";

  if (const std::string path = obs::manifest_path_for(manifest_name);
      !path.empty()) {
    obs::RunManifest manifest;
    manifest.name = manifest_name;
    manifest.seed = seed;
    manifest.config["n"] = std::to_string(n);
    manifest.config["eps"] = std::to_string(eps);
    manifest.config["T"] = std::to_string(T);
    manifest.config["trial"] = std::to_string(trial);
    manifest.config["sample"] = std::to_string(sample);
    manifest.config["trace"] = demo_trace.hex();
    if (!manifest.write_file(path)) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    std::cout << "manifest-> " << path << "\n";
  }
  return 0;
}
