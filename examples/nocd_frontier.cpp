// The no-CD frontier — the paper's closing open problem (§4):
// "it is not clear what countermeasures against a jammer can be
// constructed for the communication model without collision detection."
//
// This example makes the problem tangible. Three runs at the same
// (T, 1-eps) budget, rendered as ASCII timelines:
//   1. no-CD sweep, no adversary            -> fast election
//   2. no-CD sweep vs protocol-aware jammer -> denied for the whole run
//   3. LESK (with CD) vs the SAME jammer    -> elects anyway
// The difference is exactly the paper's point: with collision detection
// the stations can see the Nulls the adversary cannot fake; without it,
// a mirror-tracking jammer can ice every slot that matters.
//
//   example_nocd_frontier [--n=4096] [--T=64] [--eps=0.25]
//                         [--budget=4000] [--seed=9] [--width=100]
#include <iostream>
#include <memory>

#include "adversary/policies.hpp"
#include "analysis/timeline.hpp"
#include "baselines/nocd_election.hpp"
#include "protocols/lesk.hpp"
#include "sim/aggregate.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace jamelect;
  const Cli cli(argc, argv);
  const std::uint64_t n = cli.get_uint("n", 4096);
  const std::int64_t T = cli.get_int("T", 64);
  const double eps = cli.get_double("eps", 0.25);
  const std::int64_t budget = cli.get_int("budget", 4000);
  const std::uint64_t seed = cli.get_uint("seed", 9);
  const auto width = static_cast<std::size_t>(cli.get_uint("width", 100));

  const auto banner = [&](const char* title, const TrialOutcome& out,
                          const Trace& trace) {
    std::cout << "--- " << title << " ---\n"
              << render_timeline(trace, {width, false, n})
              << (out.elected ? "leader elected after " +
                                    std::to_string(out.slots) + " slots"
                              : "NO leader within " +
                                    std::to_string(out.slots) + " slots")
              << " (" << out.jams << " jammed)\n\n";
  };

  {
    NoCdElection proto({4});
    BoundedAdversary adv(T, EpsRatio::from_double(eps),
                         std::make_unique<NoJamPolicy>());
    Rng rng(seed);
    Rng sim = rng.child(1);
    Trace trace;
    const auto out = run_aggregate(proto, adv, {n, budget}, sim, &trace);
    banner("no-CD sweep, clean channel", out, trace);
  }
  {
    NoCdElection proto({4});
    BoundedAdversary adv(
        T, EpsRatio::from_double(eps),
        std::make_unique<OracleDenialPolicy>(
            std::make_unique<NoCdElection>(NoCdElectionParams{4}), n, 1e-5));
    Rng rng(seed);
    Rng sim = rng.child(2);
    Trace trace;
    const auto out = run_aggregate(proto, adv, {n, budget}, sim, &trace);
    banner("no-CD sweep vs protocol-aware jammer (the open problem)", out,
           trace);
  }
  {
    Lesk proto(eps);
    BoundedAdversary adv(T, EpsRatio::from_double(eps),
                         std::make_unique<OracleDenialPolicy>(
                             std::make_unique<Lesk>(eps), n, 1e-5));
    Rng rng(seed);
    Rng sim = rng.child(3);
    Trace trace;
    const auto out = run_aggregate(proto, adv, {n, budget * 4}, sim, &trace);
    banner("LESK (collision detection) vs the same jammer", out, trace);
  }
  std::cout << "With CD, the adversary's fabricated Collisions cost it\n"
               "budget while real Nulls keep pulling the estimate back;\n"
               "without CD, there is nothing the jammer cannot fake.\n";
  return 0;
}
