// Adversary duel: pit every jamming strategy against a chosen protocol
// and print a league table of how much damage each one does.
//
//   example_adversary_duel [--n=1024] [--eps=0.5] [--T=64]
//                          [--trials=40] [--protocol=lesk|lesu|lewk]
//                          [--seed=7]
//
// Reproduces, in miniature, the paper's core message: no admissible
// (T, 1-eps) strategy can stop LESK/LESU — the best an adversary can do
// is a bounded slowdown.
#include <iostream>
#include <memory>

#include "protocols/lesk.hpp"
#include "protocols/lesu.hpp"
#include "sim/montecarlo.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace jamelect;
  const Cli cli(argc, argv);
  const std::uint64_t n = cli.get_uint("n", 1024);
  const double eps = cli.get_double("eps", 0.5);
  const std::int64_t T = cli.get_int("T", 64);
  const std::size_t trials = cli.get_uint("trials", 40);
  const std::string protocol = cli.get_string("protocol", "lesk");
  const std::uint64_t seed = cli.get_uint("seed", 7);

  McConfig mc;
  mc.trials = trials;
  mc.seed = seed;
  mc.max_slots = 1 << 24;

  const UniformProtocolFactory factory =
      protocol == "lesu"
          ? UniformProtocolFactory([] { return std::make_unique<Lesu>(); })
          : UniformProtocolFactory(
                [eps] { return std::make_unique<Lesk>(eps); });

  std::cout << "adversary duel: protocol=" << protocol << " n=" << n
            << " eps=" << eps << " T=" << T << " trials=" << trials << "\n\n";

  Table table({"adversary", "success", "slots(mean)", "slots(p95)",
               "jam fraction", "slowdown"});
  double baseline_mean = 0.0;
  for (const std::string& policy : adversary_policy_names()) {
    AdversarySpec spec;
    spec.policy = policy;
    spec.T = T;
    spec.eps = eps;
    const McResult res =
        protocol == "lewk"
            ? run_hybrid_mc(factory, spec, n, mc)
            : run_aggregate_mc(factory, spec, n, mc);
    if (policy == "none") baseline_mean = res.slots.mean;
    table.row() << policy << res.success.rate << res.slots.mean
                << res.slots.p95 << res.jams.mean / res.slots.mean
                << res.slots.mean / baseline_mean;
  }
  table.print_ascii(std::cout);
  std::cout << "\nslowdown = mean slots relative to the unjammed run.\n";
  return 0;
}
