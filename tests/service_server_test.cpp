// SocketServer end-to-end on an ephemeral port: line protocol (ping /
// sweep / status / metrics), the HTTP/1.1 shim, heartbeats, and
// backpressure surfacing as 429.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "service/json.hpp"
#include "service/net.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

namespace jamelect::service {
namespace {

/// A service+server pair on 127.0.0.1:<ephemeral>.
class ServerFixture {
 public:
  explicit ServerFixture(ServiceConfig svc_cfg = {}) {
    service = std::make_unique<SweepService>(svc_cfg);
    ServerConfig srv_cfg;
    srv_cfg.port = 0;
    srv_cfg.heartbeat_ms = 50;
    srv_cfg.idle_poll_ms = 20;
    server = std::make_unique<SocketServer>(*service, srv_cfg);
    std::string error;
    started = server->start(&error);
    EXPECT_TRUE(started) << error;
  }
  ~ServerFixture() {
    service->stop();  // resolve jobs first so waiters release...
    server->stop();   // ...then drain connections
  }

  [[nodiscard]] Socket connect() const {
    std::string error;
    auto sock = tcp_connect("127.0.0.1", server->port(), &error);
    EXPECT_TRUE(sock.valid()) << error;
    return sock;
  }

  std::unique_ptr<SweepService> service;
  std::unique_ptr<SocketServer> server;
  bool started = false;
};

/// Sends one line and reads response lines until a terminal type.
std::vector<Json> roundtrip(int fd, const std::string& line,
                            int max_lines = 200) {
  EXPECT_TRUE(send_all(fd, line + "\n"));
  std::vector<Json> out;
  LineReader reader;
  for (int i = 0; i < max_lines; ++i) {
    const auto resp = reader.read_line(fd, 30'000);
    if (!resp.has_value()) break;
    auto doc = Json::parse(*resp);
    EXPECT_TRUE(doc.has_value()) << *resp;
    if (!doc.has_value()) break;
    const Json* type = doc->find("type");
    const std::string kind = type != nullptr ? type->as_string() : "";
    out.push_back(std::move(*doc));
    if (kind == "result" || kind == "error" || kind == "pong" ||
        kind == "status" || kind == "metrics") {
      break;
    }
  }
  return out;
}

std::string small_sweep(std::uint64_t seed, std::size_t trials = 16) {
  return "{\"op\":\"sweep\",\"params\":{\"n\":128,\"trials\":" +
         std::to_string(trials) + ",\"seed\":" + std::to_string(seed) +
         ",\"max_slots\":10000}}";
}

TEST(ServiceServer, PingPong) {
  const ServerFixture fx;
  const auto sock = fx.connect();
  const auto lines = roundtrip(sock.fd(), "{\"op\":\"ping\"}");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines.back().find("type")->as_string(), "pong");
}

TEST(ServiceServer, SweepMissThenHitOnOneConnection) {
  const ServerFixture fx;
  const auto sock = fx.connect();

  const auto first = roundtrip(sock.fd(), small_sweep(42));
  ASSERT_FALSE(first.empty());
  const Json& result = first.back();
  ASSERT_EQ(result.find("type")->as_string(), "result");
  EXPECT_EQ(result.find("cache")->as_string(), "miss");
  const Json* payload = result.find("result");
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->find("trials")->as_int(), 16);

  const auto second = roundtrip(sock.fd(), small_sweep(42));
  ASSERT_EQ(second.size(), 1u);  // hits resolve inline, no ack
  EXPECT_EQ(second.back().find("type")->as_string(), "result");
  EXPECT_EQ(second.back().find("cache")->as_string(), "hit");
  EXPECT_EQ(second.back().find("result")->dump(), payload->dump());
}

TEST(ServiceServer, StatusAndMetricsOps) {
  const ServerFixture fx;
  const auto sock = fx.connect();
  const auto sweep = roundtrip(sock.fd(), small_sweep(7));
  ASSERT_FALSE(sweep.empty());
  const std::string id = sweep.front().find("id")->as_string();
  ASSERT_FALSE(id.empty());

  const auto status =
      roundtrip(sock.fd(), "{\"op\":\"status\",\"id\":\"" + id + "\"}");
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status.back().find("type")->as_string(), "status");
  EXPECT_EQ(status.back().find("state")->as_string(), "done");

  const auto missing =
      roundtrip(sock.fd(), "{\"op\":\"status\",\"id\":\"j999999\"}");
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing.back().find("code")->as_int(), 404);

  const auto metrics = roundtrip(sock.fd(), "{\"op\":\"metrics\"}");
  ASSERT_EQ(metrics.size(), 1u);
  const Json* body = metrics.back().find("metrics");
  ASSERT_NE(body, nullptr);
  EXPECT_NE(body->find("counters"), nullptr);
  EXPECT_NE(body->find("histograms"), nullptr);
}

TEST(ServiceServer, MalformedAndInvalidRequests) {
  const ServerFixture fx;
  const auto sock = fx.connect();
  auto bad = roundtrip(sock.fd(), "{not json");
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad.back().find("code")->as_int(), 400);

  bad = roundtrip(sock.fd(), "{\"op\":\"frobnicate\"}");
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad.back().find("code")->as_int(), 400);

  bad = roundtrip(sock.fd(),
                  "{\"op\":\"sweep\",\"params\":{\"protocol\":\"aloha\"}}");
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad.back().find("code")->as_int(), 400);
  // The connection survives bad requests.
  const auto pong = roundtrip(sock.fd(), "{\"op\":\"ping\"}");
  ASSERT_EQ(pong.size(), 1u);
}

TEST(ServiceServer, QueueFullSurfacesAs429) {
  ServiceConfig svc_cfg;
  svc_cfg.workers = 1;
  svc_cfg.max_queue = 1;
  const ServerFixture fx(svc_cfg);
  const auto sock = fx.connect();
  // Fire-and-forget sweeps (wait:false) with distinct seeds until the
  // one-slot queue overflows.
  bool saw_429 = false;
  for (std::uint64_t i = 0; i < 32 && !saw_429; ++i) {
    const std::string line =
        "{\"op\":\"sweep\",\"wait\":false,\"params\":{\"n\":512,"
        "\"trials\":256,\"seed\":" +
        std::to_string(5000 + i) + ",\"max_slots\":50000}}";
    const auto resp = roundtrip(sock.fd(), line, 1);
    ASSERT_EQ(resp.size(), 1u);
    const std::string kind = resp.back().find("type")->as_string();
    if (kind == "error") {
      EXPECT_EQ(resp.back().find("code")->as_int(), 429);
      saw_429 = true;
    } else {
      EXPECT_EQ(kind, "ack");
    }
  }
  EXPECT_TRUE(saw_429);
}

TEST(ServiceServer, HeartbeatsStreamWhileASweepRuns) {
  const ServerFixture fx;
  const auto sock = fx.connect();
  // Heavy enough to outlast a couple of 50ms heartbeat periods.
  const std::string line =
      "{\"op\":\"sweep\",\"params\":{\"n\":2048,\"trials\":20000,"
      "\"seed\":31415,\"adversary\":\"saturating\",\"T\":64,"
      "\"max_slots\":50000}}";
  const auto lines = roundtrip(sock.fd(), line);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines.front().find("type")->as_string(), "ack");
  EXPECT_EQ(lines.back().find("type")->as_string(), "result");
  std::size_t heartbeats = 0;
  for (const auto& doc : lines) {
    if (doc.find("type")->as_string() == "heartbeat") ++heartbeats;
  }
  // Not asserted > 0: a fast machine may finish inside one period.
  SUCCEED() << heartbeats << " heartbeats";
}

TEST(ServiceServer, TraceIdEchoedWithTimingBreakdown) {
  const ServerFixture fx;
  const auto sock = fx.connect();
  const std::string trace = obs::TraceId::derive(0xfeed, 0xbeef).hex();

  // Envelope-level "trace" (never inside params: params feed the cache
  // key) → the result must echo the same id plus a timing breakdown.
  const std::string line =
      "{\"op\":\"sweep\",\"trace\":\"" + trace +
      "\",\"params\":{\"n\":128,\"trials\":16,\"seed\":4242,"
      "\"max_slots\":10000}}";
  const auto first = roundtrip(sock.fd(), line);
  ASSERT_FALSE(first.empty());
  // The ack for a miss carries the trace too.
  EXPECT_EQ(first.front().find("type")->as_string(), "ack");
  ASSERT_NE(first.front().find("trace"), nullptr);
  EXPECT_EQ(first.front().find("trace")->as_string(), trace);

  const Json& result = first.back();
  ASSERT_EQ(result.find("type")->as_string(), "result");
  ASSERT_NE(result.find("trace"), nullptr);
  EXPECT_EQ(result.find("trace")->as_string(), trace);
  const Json* timing = result.find("timing");
  ASSERT_NE(timing, nullptr);
  for (const char* field : {"admission_us", "cache_probe_us", "queue_us",
                            "compute_us", "serialize_us"}) {
    ASSERT_NE(timing->find(field), nullptr) << field;
    EXPECT_GE(timing->find(field)->as_int(), 0) << field;
  }
  // A real sweep spent observable time computing.
  EXPECT_GT(timing->find("compute_us")->as_int(), 0);

  // Cache hit with a fresh trace: echoed verbatim, timing present,
  // compute zero (no sweep ran).
  const std::string trace2 = obs::TraceId::derive(0xdead, 0xcafe).hex();
  const std::string line2 =
      "{\"op\":\"sweep\",\"trace\":\"" + trace2 +
      "\",\"params\":{\"n\":128,\"trials\":16,\"seed\":4242,"
      "\"max_slots\":10000}}";
  const auto second = roundtrip(sock.fd(), line2);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second.back().find("cache")->as_string(), "hit");
  ASSERT_NE(second.back().find("trace"), nullptr);
  EXPECT_EQ(second.back().find("trace")->as_string(), trace2);
  const Json* hit_timing = second.back().find("timing");
  ASSERT_NE(hit_timing, nullptr);
  EXPECT_EQ(hit_timing->find("compute_us")->as_int(), 0);

  // An untraced sweep keeps working and omits the trace field.
  const auto untraced = roundtrip(sock.fd(), small_sweep(4242));
  ASSERT_FALSE(untraced.empty());
  EXPECT_EQ(untraced.back().find("type")->as_string(), "result");
  EXPECT_EQ(untraced.back().find("trace"), nullptr);
  EXPECT_NE(untraced.back().find("timing"), nullptr);

  // Malformed trace ids are rejected up front.
  for (const std::string& bad :
       {std::string("xyz"), std::string(32, 'g'), std::string(32, '0')}) {
    const auto resp = roundtrip(
        sock.fd(), "{\"op\":\"sweep\",\"trace\":\"" + bad +
                       "\",\"params\":{\"n\":128,\"trials\":16,"
                       "\"seed\":4243,\"max_slots\":10000}}");
    ASSERT_EQ(resp.size(), 1u) << bad;
    EXPECT_EQ(resp.back().find("code")->as_int(), 400) << bad;
  }
  // The service remembers the last traced request for the manifest.
  EXPECT_EQ(fx.service->last_trace().hex(), trace2);
}

TEST(ServiceServer, HttpShimSweepStatusMetrics) {
  const ServerFixture fx;

  // POST /sweep with a bare params body.
  {
    const auto sock = fx.connect();
    const std::string body =
        "{\"n\":128,\"trials\":16,\"seed\":77,\"max_slots\":10000}";
    const std::string request =
        "POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    ASSERT_TRUE(send_all(sock.fd(), request));
    LineReader reader;
    const auto status_line = reader.read_line(sock.fd(), 30'000);
    ASSERT_TRUE(status_line.has_value());
    EXPECT_NE(status_line->find("200 OK"), std::string::npos);
  }
  // Same request again: still 200, now served from cache.
  std::string second_body;
  {
    const auto sock = fx.connect();
    const std::string body =
        "{\"n\":128,\"trials\":16,\"seed\":77,\"max_slots\":10000}";
    const std::string request =
        "POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    ASSERT_TRUE(send_all(sock.fd(), request));
    LineReader reader;
    std::size_t content_length = 0;
    for (;;) {
      const auto line = reader.read_line(sock.fd(), 30'000);
      ASSERT_TRUE(line.has_value());
      if (line->empty()) break;
      if (line->rfind("Content-Length:", 0) == 0) {
        content_length = static_cast<std::size_t>(
            std::stoull(line->substr(15)));
      }
    }
    ASSERT_GT(content_length, 0u);
    const auto body_read = reader.read_exact(sock.fd(),
                                             content_length, 30'000);
    ASSERT_TRUE(body_read.has_value());
    second_body = *body_read;
    const auto doc = Json::parse(second_body);
    ASSERT_TRUE(doc.has_value()) << second_body;
    EXPECT_EQ(doc->find("cache")->as_string(), "hit");
  }
  // GET /metrics serves Prometheus text.
  {
    const auto sock = fx.connect();
    ASSERT_TRUE(send_all(sock.fd(), "GET /metrics HTTP/1.1\r\n\r\n"));
    LineReader reader;
    const auto status_line = reader.read_line(sock.fd(), 30'000);
    ASSERT_TRUE(status_line.has_value());
    EXPECT_NE(status_line->find("200 OK"), std::string::npos);
    bool saw_counter = false;
    for (int i = 0; i < 500; ++i) {
      const auto line = reader.read_line(sock.fd(), 2'000);
      if (!line.has_value()) break;
      if (line->rfind("jamelect_svc_requests_total", 0) == 0) {
        saw_counter = true;
      }
    }
    EXPECT_TRUE(saw_counter);
  }
  // Unknown endpoint -> 404.
  {
    const auto sock = fx.connect();
    ASSERT_TRUE(send_all(sock.fd(), "GET /nope HTTP/1.1\r\n\r\n"));
    LineReader reader;
    const auto status_line = reader.read_line(sock.fd(), 30'000);
    ASSERT_TRUE(status_line.has_value());
    EXPECT_NE(status_line->find("404"), std::string::npos);
  }
}

}  // namespace
}  // namespace jamelect::service
