#include "baselines/arss_flock.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include <cmath>
#include <memory>

#include "sim/adversary_spec.hpp"
#include "sim/engine.hpp"
#include "sim/montecarlo.hpp"
#include "support/binomial.hpp"
#include "support/stats.hpp"

namespace jamelect {
namespace {

// ---------- binomial sampler ----------

class BinomialMoments
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(BinomialMoments, MeanAndVarianceMatch) {
  const auto [n, p] = GetParam();
  Rng rng(42);
  OnlineStats stats;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    stats.add(static_cast<double>(binomial_sample(n, p, rng)));
  }
  const double mean = static_cast<double>(n) * p;
  const double var = mean * (1.0 - p);
  EXPECT_NEAR(stats.mean(), mean, 5.0 * std::sqrt(var / kDraws) + 1e-9);
  EXPECT_NEAR(stats.variance(), var, 0.1 * var + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BinomialMoments,
    ::testing::Values(
        std::make_tuple<std::uint64_t, double>(10, 0.3),        // small-n loop
        std::make_tuple<std::uint64_t, double>(100, 0.9),       // p > 1/2 flip
        std::make_tuple<std::uint64_t, double>(10000, 0.001),   // inversion
        std::make_tuple<std::uint64_t, double>(1 << 20, 1e-5),  // inversion
        std::make_tuple<std::uint64_t, double>(1 << 20, 0.01),  // normal
        std::make_tuple<std::uint64_t, double>(100000, 0.4)));  // normal

TEST(Binomial, EdgeCases) {
  Rng rng(7);
  EXPECT_EQ(binomial_sample(0, 0.5, rng), 0u);
  EXPECT_EQ(binomial_sample(100, 0.0, rng), 0u);
  EXPECT_EQ(binomial_sample(100, 1.0, rng), 100u);
  EXPECT_THROW((void)binomial_sample(10, 1.5, rng), ContractViolation);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LE(binomial_sample(50, 0.6, rng), 50u);
  }
}

// ---------- flock engine ----------

TrialOutcome run_flock(std::uint64_t n, const std::string& policy,
                       std::uint64_t seed, std::int64_t max_slots) {
  ArssFlockConfig config;
  config.n = n;
  config.params.gamma = arss_gamma(n, 64);
  config.max_slots = max_slots;
  AdversarySpec spec;
  spec.policy = policy;
  spec.T = 64;
  spec.eps = 0.5;
  spec.n = n;
  Rng rng(seed);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  return run_arss_flock(config, *adv, sim);
}

TEST(ArssFlock, ElectsCleanAndJammed) {
  for (const char* policy : {"none", "saturating"}) {
    for (std::uint64_t n : {4ULL, 64ULL, 1024ULL}) {
      const auto out = run_flock(n, policy, 10 + n, 1 << 21);
      EXPECT_TRUE(out.elected) << policy << " n=" << n;
      EXPECT_EQ(out.singles, 1) << policy << " n=" << n;
    }
  }
}

TEST(ArssFlock, RejectsMacMode) {
  ArssFlockConfig config;
  config.params.elect_on_single = false;
  AdversarySpec spec;
  Rng rng(1);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  EXPECT_THROW((void)run_arss_flock(config, *adv, sim), ContractViolation);
}

TEST(ArssFlock, DeterministicBySeed) {
  const auto a = run_flock(256, "saturating", 99, 1 << 20);
  const auto b = run_flock(256, "saturating", 99, 1 << 20);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.nulls, b.nulls);
}

TEST(ArssFlock, MatchesPerStationEngineInDistribution) {
  // The load-bearing test: mean slots-to-elect of the compressed engine
  // must agree with the exact per-station ARSS across many trials.
  const std::uint64_t n = 128;
  const double gamma = arss_gamma(n, 64);
  constexpr std::size_t kTrials = 200;

  AdversarySpec spec;
  spec.policy = "saturating";
  spec.T = 64;
  spec.eps = 0.5;

  McConfig cfg;
  cfg.trials = kTrials;
  cfg.seed = 314;
  cfg.max_slots = 1 << 18;
  const auto exact = run_station_mc(
      [gamma](StationId) -> StationProtocolPtr {
        ArssParams params;
        params.gamma = gamma;
        return std::make_unique<ArssStation>(params);
      },
      spec, n, {CdMode::kStrong, StopRule::kAllDone, cfg.max_slots}, cfg);

  std::vector<double> flock_slots;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    ArssFlockConfig config;
    config.n = n;
    config.params.gamma = gamma;
    config.max_slots = cfg.max_slots;
    AdversarySpec s = spec;
    s.n = n;
    Rng rng = Rng(915).child(seed);
    auto adv = make_adversary(s, rng.child(1));
    Rng sim = rng.child(2);
    const auto out = run_arss_flock(config, *adv, sim);
    ASSERT_TRUE(out.elected) << seed;
    flock_slots.push_back(static_cast<double>(out.slots));
  }
  const Summary flock = summarize(std::span<const double>(flock_slots));
  ASSERT_EQ(exact.successes, kTrials);
  const double se =
      std::sqrt(flock.stddev * flock.stddev / static_cast<double>(kTrials) +
                exact.slots.stddev * exact.slots.stddev /
                    static_cast<double>(kTrials));
  EXPECT_LT(std::abs(flock.mean - exact.slots.mean),
            5.0 * se + 0.05 * (flock.mean + exact.slots.mean))
      << "flock=" << flock.mean << " exact=" << exact.slots.mean;
}

TEST(ArssFlock, ScalesToLargeN) {
  // The point of the compression: n = 2^15 in sane time.
  const auto out = run_flock(1 << 15, "saturating", 7, 1 << 21);
  EXPECT_TRUE(out.elected);
  EXPECT_GT(out.slots, 1000);  // the log^4-ish regime, far beyond LESK
}

}  // namespace
}  // namespace jamelect
