#include "analysis/timeline.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include "protocols/lesk.hpp"
#include "sim/adversary_spec.hpp"
#include "sim/aggregate.hpp"
#include "sim/hybrid.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

Trace small_trace() {
  Trace t;
  SlotRecord r;
  r.slot = 0;
  r.state = ChannelState::kNull;
  r.estimate = 0.0;
  t.record(r, 0.0);
  r.slot = 1;
  r.state = ChannelState::kCollision;
  r.jammed = true;
  r.estimate = 5.0;
  t.record(r, 0.0);
  r.slot = 2;
  r.state = ChannelState::kSingle;
  r.jammed = false;
  r.estimate = 10.0;
  t.record(r, 0.0);
  return t;
}

TEST(Timeline, RequiresRecordsAndWidth) {
  Trace counters_only(false);
  SlotRecord r;
  counters_only.record(r, 0.0);
  EXPECT_THROW((void)render_timeline(counters_only), ContractViolation);
  EXPECT_THROW((void)render_timeline(Trace{}), ContractViolation);
  EXPECT_THROW((void)render_timeline(small_trace(), {5, false, 0}),
               ContractViolation);
}

TEST(Timeline, SymbolsMatchStates) {
  const std::string art = render_timeline(small_trace(), {100, false, 0});
  // One cell per slot: Null, jammed Collision, Single.
  EXPECT_NE(art.find("chan   .c!"), std::string::npos) << art;
  EXPECT_NE(art.find("jam    .J."), std::string::npos) << art;
}

TEST(Timeline, EstimateBands) {
  const std::string art = render_timeline(small_trace(), {100, false, 1024});
  // u = 0 (below), 5 (below), 10 = log2(1024) (near).
  EXPECT_NE(art.find("u      __~"), std::string::npos) << art;
}

TEST(Timeline, PartitionRow) {
  Trace t;
  for (Slot s = 0; s < 9; ++s) {
    SlotRecord r;
    r.slot = s;
    r.state = ChannelState::kNull;
    t.record(r, 0.0);
  }
  const std::string art = render_timeline(t, {100, true, 0});
  // Slots 0-2 padding, 3-4 C1, 5-6 C2, 7-8 C3.
  EXPECT_NE(art.find("part   ---112233"), std::string::npos) << art;
}

TEST(Timeline, BucketsLongTraces) {
  Lesk lesk(0.5);
  AdversarySpec spec;
  spec.policy = "saturating";
  spec.T = 64;
  spec.eps = 0.5;
  spec.n = 4096;
  Rng rng(3);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  Trace trace;
  (void)run_aggregate(lesk, *adv, {4096, 1 << 20}, sim, &trace);
  const std::string art = render_timeline(trace, {60, false, 4096});
  // Every row is bounded by the width (plus label and legend).
  std::size_t lines = 0;
  std::size_t pos = 0;
  while ((pos = art.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, 4u);  // ruler + chan + jam + u rows
  EXPECT_NE(art.find('!'), std::string::npos);  // the deciding Single
}

}  // namespace
}  // namespace jamelect
