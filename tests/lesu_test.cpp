#include "protocols/lesu.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "sim/adversary_spec.hpp"
#include "sim/aggregate.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

TEST(Lesu, StartsInEstimationPhase) {
  Lesu lesu;
  EXPECT_EQ(lesu.phase(), Lesu::Phase::kEstimation);
  EXPECT_FALSE(lesu.elected());
  // Estimation round 1 probability.
  EXPECT_DOUBLE_EQ(lesu.transmit_probability(), 0.25);
  EXPECT_TRUE(std::isnan(lesu.estimate()));
}

TEST(Lesu, RejectsBadParams) {
  EXPECT_THROW(Lesu bad(LesuParams{0.0, 2, 40}), ContractViolation);
  EXPECT_THROW(Lesu bad(LesuParams{1.0, 2, 0}), ContractViolation);
  EXPECT_THROW(Lesu bad(LesuParams{1.0, 2, 70}), ContractViolation);
}

// Drives the estimation phase to completion at round `target` by
// feeding Collisions and then enough Nulls in the final round.
void complete_estimation(Lesu& lesu, std::int64_t target) {
  for (std::int64_t r = 1; r <= target; ++r) {
    const std::int64_t len = std::int64_t{1} << r;
    for (std::int64_t k = 0; k < len; ++k) {
      lesu.observe(r == target && k < 2 ? ChannelState::kNull
                                        : ChannelState::kCollision);
    }
  }
}

TEST(Lesu, SchedulesSubexecutionsInPaperOrder) {
  Lesu lesu(LesuParams{1.0, 2, 40});
  complete_estimation(lesu, 3);
  ASSERT_EQ(lesu.phase(), Lesu::Phase::kLesk);
  // t0 = c * 2^(1+3) = 16.
  EXPECT_DOUBLE_EQ(lesu.t0(), 16.0);
  EXPECT_EQ(lesu.i(), 1);
  EXPECT_EQ(lesu.j(), 1);
  // eps_1 = 2^(-1/3).
  EXPECT_NEAR(lesu.current_eps(), std::exp2(-1.0 / 3.0), 1e-12);

  // Budget of (1,1) = 3 * 2^1 * t0 / 1 = 96 slots; feed exactly that
  // many Collisions and check the schedule advances to (2,1) then (2,2).
  for (int k = 0; k < 96; ++k) lesu.observe(ChannelState::kCollision);
  EXPECT_EQ(lesu.i(), 2);
  EXPECT_EQ(lesu.j(), 1);
  for (int k = 0; k < 192; ++k) lesu.observe(ChannelState::kCollision);
  EXPECT_EQ(lesu.i(), 2);
  EXPECT_EQ(lesu.j(), 2);
  EXPECT_NEAR(lesu.current_eps(), std::exp2(-2.0 / 3.0), 1e-12);
  // Budget (2,2) = 3 * 4 * 16 / 2 = 96; then to (3,1).
  for (int k = 0; k < 96; ++k) lesu.observe(ChannelState::kCollision);
  EXPECT_EQ(lesu.i(), 3);
  EXPECT_EQ(lesu.j(), 1);
}

TEST(Lesu, SingleDuringEstimationElectsImmediately) {
  Lesu lesu;
  lesu.observe(ChannelState::kCollision);
  lesu.observe(ChannelState::kSingle);
  EXPECT_TRUE(lesu.elected());
  EXPECT_DOUBLE_EQ(lesu.transmit_probability(), 0.0);
}

TEST(Lesu, SingleDuringLeskElects) {
  Lesu lesu(LesuParams{1.0, 2, 40});
  complete_estimation(lesu, 2);
  ASSERT_EQ(lesu.phase(), Lesu::Phase::kLesk);
  lesu.observe(ChannelState::kCollision);
  lesu.observe(ChannelState::kSingle);
  EXPECT_TRUE(lesu.elected());
}

TEST(Lesu, CloneDeepCopiesInnerLesk) {
  Lesu lesu(LesuParams{1.0, 2, 40});
  complete_estimation(lesu, 2);
  lesu.observe(ChannelState::kCollision);
  auto copy = lesu.clone();
  copy->observe(ChannelState::kNull);
  EXPECT_NE(copy->estimate(), lesu.estimate());
}

TEST(Lesu, EstimateExposesInnerLeskWalk) {
  Lesu lesu(LesuParams{1.0, 2, 40});
  complete_estimation(lesu, 2);
  EXPECT_DOUBLE_EQ(lesu.estimate(), 0.0);
  lesu.observe(ChannelState::kCollision);
  EXPECT_GT(lesu.estimate(), 0.0);
}

// --- end-to-end behaviour ---

TrialOutcome run_lesu(std::uint64_t n, const std::string& policy,
                      std::int64_t T, double eps, std::uint64_t seed,
                      std::int64_t max_slots) {
  Lesu lesu;
  AdversarySpec spec;
  spec.policy = policy;
  spec.T = T;
  spec.eps = eps;
  spec.n = n;
  Rng rng(seed);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  return run_aggregate(lesu, *adv, {n, max_slots}, sim);
}

TEST(LesuBehaviour, ElectsWithoutAdversary) {
  for (std::uint64_t n : {128ULL, 1024ULL, 1ULL << 16}) {
    const auto out = run_lesu(n, "none", 16, 0.5, 11 + n, 1 << 22);
    EXPECT_TRUE(out.elected) << "n=" << n;
  }
}

TEST(LesuBehaviour, ElectsUnderSaturatingAdversaryWithoutKnowingEps) {
  for (double eps : {0.5, 0.25}) {
    const auto out =
        run_lesu(1024, "saturating", 64, eps,
                 1000 + static_cast<std::uint64_t>(eps * 100), 1 << 23);
    EXPECT_TRUE(out.elected) << "eps=" << eps;
  }
}

TEST(LesuBehaviour, ElectsUnderPeriodicAdversary) {
  const auto out = run_lesu(512, "periodic", 256, 0.5, 321, 1 << 22);
  EXPECT_TRUE(out.elected);
}

TEST(LesuBehaviour, DefaultCIsSufficientlyCalibrated) {
  // DESIGN.md §5: the paper's constant c only needs to make
  // LESK(eps_hat, c * max(T, log n/(eps^3 log(1/eps)))) succeed with
  // rate >= 1 - 1/n^2 for eps/2 <= eps_hat <= eps. Verify the default
  // c = 4 empirically on a grid, with eps_hat = eps/2 (the worst
  // in-range candidate).
  const double c = LesuParams{}.c;
  for (const auto& [n, eps] : std::vector<std::pair<std::uint64_t, double>>{
           {256, 0.5}, {4096, 0.5}, {1024, 0.25}}) {
    const double log2n = std::log2(static_cast<double>(n));
    const double shape =
        log2n / (eps * eps * eps * std::log2(1.0 / eps));
    const std::int64_t T = 64;
    const auto budget = static_cast<std::int64_t>(
        c * std::max(static_cast<double>(T), shape));
    std::size_t failures = 0;
    constexpr std::size_t kTrials = 60;
    for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
      Lesk lesk(eps / 2.0);  // the coarsest admissible candidate
      AdversarySpec spec;
      spec.policy = "saturating";
      spec.T = T;
      spec.eps = eps;
      spec.n = n;
      Rng rng(5000 + seed);
      auto adv = make_adversary(spec, rng.child(1));
      Rng sim = rng.child(2);
      failures += run_aggregate(lesk, *adv, {n, budget}, sim).elected ? 0 : 1;
    }
    EXPECT_EQ(failures, 0u) << "n=" << n << " eps=" << eps
                            << " budget=" << budget;
  }
}

TEST(LesuBehaviour, SmallNetworksStillTerminate) {
  // Lemma 2.8 promises n >= 115, but the schedule must remain safe
  // (terminate eventually) even below that.
  for (std::uint64_t n : {2ULL, 5ULL, 50ULL}) {
    const auto out = run_lesu(n, "none", 16, 0.5, 13 + n, 1 << 22);
    EXPECT_TRUE(out.elected) << "n=" << n;
  }
}

}  // namespace
}  // namespace jamelect
