// The counter-based RNG backend (support/ctr_rng.hpp): the AES-128
// core is locked to the FIPS-197 reference vectors on every available
// backend, the AES-NI and software paths are bit-equal, streams are
// addressable in O(1) (seek == sequential, counters wrap mod 2^64),
// the distribution façade mirrors Rng's algorithms exactly, and the
// SoA wide-plane generator reproduces its scalar twins draw for draw —
// including masked advance, skip_groups, and lane compaction.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "support/ctr_rng.hpp"
#include "support/rng.hpp"
#include "support/wide_rng.hpp"

namespace jamelect {
namespace {

static_assert(std::uniform_random_bit_generator<AesCtrRng>,
              "AesCtrRng must satisfy uniform_random_bit_generator");
static_assert(AesCtrRng::min() == 0);
static_assert(AesCtrRng::max() == ~std::uint64_t{0});

/// Backends available in this binary on this CPU: soft always, AES-NI
/// when compiled in and the CPU reports the feature.
[[nodiscard]] std::vector<AesIsa> available_isas() {
  std::vector<AesIsa> isas{AesIsa::kSoft};
  if (aesni_supported()) isas.push_back(AesIsa::kAesni);
  return isas;
}

class AesIsaGuard {
 public:
  explicit AesIsaGuard(AesIsa isa) { set_aes_isa_for_testing(isa); }
  ~AesIsaGuard() { reset_aes_isa_for_testing(); }
  AesIsaGuard(const AesIsaGuard&) = delete;
  AesIsaGuard& operator=(const AesIsaGuard&) = delete;
};

/// FIPS-197 Appendix C.1 cipher key 000102...0f.
[[nodiscard]] std::array<std::uint8_t, 16> fips_key_bytes() {
  std::array<std::uint8_t, 16> key{};
  for (std::size_t i = 0; i < 16; ++i) key[i] = static_cast<std::uint8_t>(i);
  return key;
}

TEST(AesCore, Fips197AppendixCVectorOnEveryBackend) {
  // AES-128(000102...0f, 00112233...ff) = 69c4e0d8...70b4c55a. In CTR
  // terms the plaintext block is the little-endian (stream, counter)
  // pair and the draw is the ciphertext's low 64 bits little-endian.
  const AesKey key = expand_aes_key(fips_key_bytes());
  constexpr std::uint64_t kStream = 0x7766554433221100ULL;
  constexpr std::uint64_t kCounter = 0xffeeddccbbaa9988ULL;
  constexpr std::uint64_t kDraw = 0x30047b6ad8e0c469ULL;
  for (const AesIsa isa : available_isas()) {
    std::uint64_t out = 0;
    aes_ctr_blocks(isa, key, &kStream, &kCounter, 1, &out);
    EXPECT_EQ(out, kDraw) << aes_isa_name(isa);

    AesIsaGuard guard(isa);
    AesCtrRng rng(key, kStream);
    rng.seek(kCounter);
    EXPECT_EQ(rng(), kDraw) << aes_isa_name(isa);
  }
}

TEST(AesCore, KeyExpansionMatchesFips197AppendixA) {
  // Appendix A.1 key 2b7e1516 28aed2a6 abf71588 09cf4f3c: round key 0
  // is the cipher key itself; round key 10 is w40..w43 =
  // d014f9a8 c9ee2589 e13f0cc8 b6630ca6.
  const std::array<std::uint8_t, 16> cipher_key = {
      0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
      0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const std::array<std::uint8_t, 16> last_round = {
      0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25, 0x89,
      0xe1, 0x3f, 0x0c, 0xc8, 0xb6, 0x63, 0x0c, 0xa6};
  const AesKey key = expand_aes_key(cipher_key);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(key.round_keys[i], cipher_key[i]) << "round 0 byte " << i;
    EXPECT_EQ(key.round_keys[160 + i], last_round[i]) << "round 10 byte " << i;
  }
}

TEST(AesCore, AesniAndSoftAreBitEqual) {
  if (!aesni_supported()) GTEST_SKIP() << "no AES-NI on this machine";
  const AesKey key = make_aes_key(0x5eedULL);
  // Assorted (stream, counter) pairs, including the wrap boundary and
  // block counts that are not a multiple of the AES-NI interleave (4).
  std::vector<std::uint64_t> streams, counters;
  for (std::uint64_t s : {0ULL, 1ULL, 42ULL, ~0ULL, 0x123456789abcdefULL}) {
    for (std::uint64_t c : {0ULL, 1ULL, 7ULL, ~0ULL, ~0ULL - 1, 1ULL << 63}) {
      streams.push_back(s);
      counters.push_back(c);
    }
  }
  for (std::size_t n : {std::size_t{1}, std::size_t{3}, streams.size()}) {
    std::vector<std::uint64_t> soft(n), hard(n);
    aes_ctr_blocks(AesIsa::kSoft, key, streams.data(), counters.data(), n,
                   soft.data());
    aes_ctr_blocks(AesIsa::kAesni, key, streams.data(), counters.data(), n,
                   hard.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(soft[i], hard[i]) << "n=" << n << " block " << i;
    }
  }
  // Whole generator sequences agree too (the isa is cached per
  // instance, so construct each under its own pin).
  std::vector<std::uint64_t> a, b;
  {
    AesIsaGuard guard(AesIsa::kSoft);
    AesCtrRng rng(key, 3);
    for (int i = 0; i < 64; ++i) a.push_back(rng());
  }
  {
    AesIsaGuard guard(AesIsa::kAesni);
    AesCtrRng rng(key, 3);
    for (int i = 0; i < 64; ++i) b.push_back(rng());
  }
  EXPECT_EQ(a, b);
}

TEST(AesCtrRng, SeekMatchesSequentialAndTracksPosition) {
  const AesKey key = make_aes_key(17);
  AesCtrRng rng(key, 5);
  EXPECT_EQ(rng.stream(), 5u);
  EXPECT_EQ(rng.position(), 0u);
  std::vector<std::uint64_t> draws;
  for (std::uint64_t j = 0; j < 64; ++j) {
    EXPECT_EQ(rng.position(), j);
    draws.push_back(rng());
  }
  // O(1) addressability: any counter, in any order, reproduces the
  // sequential draw — including positions that straddle the internal
  // prefetch buffer.
  for (const std::uint64_t j : {63ULL, 0ULL, 31ULL, 4ULL, 3ULL, 62ULL, 1ULL}) {
    rng.seek(j);
    EXPECT_EQ(rng.position(), j);
    EXPECT_EQ(rng(), draws[j]) << "seek(" << j << ")";
    EXPECT_EQ(rng.position(), j + 1);
  }
}

TEST(AesCtrRng, CounterWrapsAtTwoToSixtyFour) {
  const AesKey key = make_aes_key(99);
  AesCtrRng rng(key, 7);
  rng.seek(~std::uint64_t{0} - 1);  // draws 2^64-2, 2^64-1, then wraps
  const std::uint64_t before_last = rng();
  const std::uint64_t last = rng();
  const std::uint64_t wrapped0 = rng();
  const std::uint64_t wrapped1 = rng();
  EXPECT_EQ(rng.position(), 2u);  // position wraps with the counter

  AesCtrRng twin(key, 7);
  EXPECT_EQ(wrapped0, twin());  // counter 0
  EXPECT_EQ(wrapped1, twin());  // counter 1
  twin.seek(~std::uint64_t{0} - 1);
  EXPECT_EQ(before_last, twin());
  EXPECT_EQ(last, twin());
}

TEST(AesCtrRng, StreamsAreDisjoint) {
  // Different stream ids under one key, and the same stream under
  // different run seeds, must decorrelate completely: a single shared
  // draw among the prefixes would mean counter/stream aliasing.
  const AesKey key = make_aes_key(0xabcdULL);
  std::vector<std::uint64_t> all;
  for (const std::uint64_t s : {0ULL, 1ULL, 2ULL, ~0ULL}) {
    AesCtrRng rng(key, s);
    for (int i = 0; i < 32; ++i) all.push_back(rng());
  }
  {
    AesCtrRng other_seed(make_aes_key(0xabceULL), 0);
    for (int i = 0; i < 32; ++i) all.push_back(other_seed());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "two streams shared a draw";
}

TEST(AesCtrRng, DistributionFacadeMatchesRngAlgorithms) {
  const AesKey key = make_aes_key(2026);
  AesCtrRng rng(key, 1);
  AesCtrRng twin(key, 1);
  for (int i = 0; i < 32; ++i) {
    // uniform: the exact (x >> 11) * 2^-53 of Rng::uniform.
    const double u = rng.uniform();
    const std::uint64_t x = twin();
    EXPECT_EQ(u, static_cast<double>(x >> 11) * 0x1.0p-53);
  }
  // bernoulli at the boundaries consumes no draw, like Rng.
  const std::uint64_t pos = rng.position();
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
  EXPECT_EQ(rng.position(), pos);
  twin.seek(pos);
  for (const double p : {0.25, 0.5, 0.75}) {
    EXPECT_EQ(rng.bernoulli(p), twin.uniform() < p);
  }
  // below: power-of-two masks, general bounds via rejection — both
  // exactly Rng::below's algorithm, so consumed draws line up too.
  twin.seek(rng.position());
  EXPECT_EQ(rng.below(64), twin() & 63u);
  for (const std::uint64_t bound : {3ULL, 10ULL, 1000003ULL}) {
    const std::uint64_t limit =
        std::numeric_limits<std::uint64_t>::max() -
        std::numeric_limits<std::uint64_t>::max() % bound;
    std::uint64_t expected = 0;
    for (;;) {
      const std::uint64_t r = twin();
      if (r < limit) {
        expected = r % bound;
        break;
      }
    }
    EXPECT_EQ(rng.below(bound), expected) << "bound " << bound;
    EXPECT_EQ(rng.position(), twin.position());
  }
}

TEST(WideAesCtr, LanesMatchScalarTwinsOnEveryBackend) {
  for (const AesIsa isa : available_isas()) {
    AesIsaGuard guard(isa);
    const AesKey key = make_aes_key(0xbeefULL);
    constexpr std::size_t kLanes = 7;  // not a multiple of the group width
    WideAesCtr wide(key, kLanes);
    EXPECT_EQ(wide.lanes(), kLanes);
    EXPECT_EQ(wide.padded_lanes() % kWideLanes, 0u);
    std::vector<AesCtrRng> twins;
    for (std::size_t k = 0; k < kLanes; ++k) {
      wide.seed_lane(k, 100 + k);
      twins.emplace_back(key, 100 + k);
    }
    const std::size_t groups = wide.padded_lanes() / kWideLanes;
    std::vector<double> out(wide.padded_lanes());
    for (int round = 0; round < 3; ++round) {
      wide.uniform_groups(groups, out.data());
      for (std::size_t k = 0; k < kLanes; ++k) {
        ASSERT_EQ(out[k], twins[k].uniform())
            << aes_isa_name(isa) << " lane " << k << " round " << round;
      }
    }
    for (std::size_t k = 0; k < kLanes; ++k) {
      ASSERT_EQ(wide.next_lane(k), twins[k]()) << "next_lane " << k;
      ASSERT_EQ(wide.uniform_lane(k), twins[k].uniform()) << "lane " << k;
      ASSERT_EQ(wide.below_lane(k, 64), twins[k].below(64));
      ASSERT_EQ(wide.below_lane(k, 1000003), twins[k].below(1000003));
    }
  }
}

TEST(WideAesCtr, MaskedAdvanceOnlyMovesMaskedLanes) {
  const AesKey key = make_aes_key(0x77ULL);
  constexpr std::size_t kLanes = 8;
  WideAesCtr wide(key, kLanes);
  std::vector<AesCtrRng> twins;
  for (std::size_t k = 0; k < kLanes; ++k) {
    wide.seed_lane(k, k);
    twins.emplace_back(key, k);
  }
  const std::size_t groups = wide.padded_lanes() / kWideLanes;
  std::vector<std::uint8_t> mask(wide.padded_lanes(), 0);
  for (std::size_t k = 0; k < kLanes; k += 2) mask[k] = 1;
  std::vector<double> out(wide.padded_lanes(), -1.0);
  wide.uniform_masked(groups, mask.data(), out.data());
  for (std::size_t k = 0; k < kLanes; ++k) {
    if (mask[k] != 0) {
      ASSERT_EQ(out[k], twins[k].uniform()) << "masked lane " << k;
    } else {
      ASSERT_EQ(out[k], -1.0) << "unmasked lane " << k << " slot written";
    }
  }
  // Unmasked lanes kept their counter: a full-width advance now matches
  // twins that only drew on the masked lanes above.
  wide.uniform_groups(groups, out.data());
  for (std::size_t k = 0; k < kLanes; ++k) {
    ASSERT_EQ(out[k], twins[k].uniform()) << "post-mask lane " << k;
  }
}

TEST(WideAesCtr, SkipGroupsEqualsDrawAndDiscard) {
  const AesKey key = make_aes_key(0x5ULL);
  constexpr std::size_t kLanes = 5;
  WideAesCtr skipper(key, kLanes);
  WideAesCtr drawer(key, kLanes);
  for (std::size_t k = 0; k < kLanes; ++k) {
    skipper.seed_lane(k, 40 + k);
    drawer.seed_lane(k, 40 + k);
  }
  const std::size_t groups = skipper.padded_lanes() / kWideLanes;
  std::vector<double> scratch(skipper.padded_lanes());
  skipper.skip_groups(groups);
  skipper.skip_groups(groups);
  drawer.uniform_groups(groups, scratch.data());
  drawer.uniform_groups(groups, scratch.data());
  for (std::size_t k = 0; k < kLanes; ++k) {
    ASSERT_EQ(skipper.next_lane(k), drawer.next_lane(k)) << "lane " << k;
  }
}

TEST(WideAesCtr, MoveLaneCopiesStreamPosition) {
  const AesKey key = make_aes_key(0x8888ULL);
  WideAesCtr wide(key, 4);
  for (std::size_t k = 0; k < 4; ++k) wide.seed_lane(k, 200 + k);
  // Advance lane 3 to a distinctive position, then compact it onto 0.
  (void)wide.next_lane(3);
  (void)wide.next_lane(3);
  wide.move_lane(0, 3);
  AesCtrRng twin(key, 203);
  twin.seek(2);
  EXPECT_EQ(wide.next_lane(0), twin());
  EXPECT_EQ(wide.next_lane(0), twin());
  // The source lane is untouched and keeps producing its own stream.
  AesCtrRng src(key, 203);
  src.seek(2);
  EXPECT_EQ(wide.next_lane(3), src());
}

TEST(AesDispatch, BackendNamesAndTestPins) {
  EXPECT_STREQ(aes_isa_name(AesIsa::kSoft), "soft");
  EXPECT_STREQ(aes_isa_name(AesIsa::kAesni), "aesni");
  {
    AesIsaGuard guard(AesIsa::kSoft);
    EXPECT_EQ(active_aes_isa(), AesIsa::kSoft);
  }
  // After the guard the dispatch re-resolves from the environment; it
  // must land on a backend that is actually usable here.
  const AesIsa resolved = active_aes_isa();
  EXPECT_TRUE(resolved == AesIsa::kSoft ||
              (resolved == AesIsa::kAesni && aesni_supported()));
}

}  // namespace
}  // namespace jamelect
