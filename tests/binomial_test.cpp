// binomial_sample regime boundaries (support/binomial.cpp dispatch):
// n = 128 is the last Bernoulli-loop size and n = 129 the first
// inversion/BTPE size; mean = 30 is the inversion <-> BTPE crossover;
// p > 1/2 reflects through k -> n - k. Every regime must agree with
// the Binomial(n, p) law in mean and variance, and the edges must be
// exact.
#include "support/binomial.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "support/expects.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

struct Moments {
  double mean;
  double var;
};

[[nodiscard]] Moments sample_moments(std::uint64_t n, double p,
                                     std::uint64_t seed, int draws) {
  Rng rng(seed);
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < draws; ++i) {
    const auto k = static_cast<double>(binomial_sample(n, p, rng));
    sum += k;
    sumsq += k * k;
  }
  const double mean = sum / draws;
  return {mean, sumsq / draws - mean * mean};
}

/// Mean within 6 standard errors, variance within 20% — tight enough
/// to catch a regime implementing the wrong law, loose enough to never
/// flake at 40k draws.
void expect_binomial_law(std::uint64_t n, double p, std::uint64_t seed) {
  constexpr int kDraws = 40000;
  const Moments m = sample_moments(n, p, seed, kDraws);
  const double nd = static_cast<double>(n);
  const double true_mean = nd * p;
  const double true_var = nd * p * (1.0 - p);
  const double se = std::sqrt(true_var / kDraws);
  EXPECT_NEAR(m.mean, true_mean, 6.0 * se) << "n=" << n << " p=" << p;
  EXPECT_NEAR(m.var, true_var, 0.2 * true_var) << "n=" << n << " p=" << p;
}

TEST(BinomialSample, BernoulliLoopBoundaryN128vsN129) {
  // n = 128 runs the Bernoulli loop; n = 129 with mean < 30 dispatches
  // to CDF inversion. Both must produce the same law.
  expect_binomial_law(128, 0.1, 101);  // loop, mean 12.8
  expect_binomial_law(129, 0.1, 102);  // inversion, mean 12.9
  expect_binomial_law(128, 0.4, 103);  // loop, mean 51.2
  expect_binomial_law(129, 0.4, 104);  // BTPE, mean 51.6
}

TEST(BinomialSample, InversionBtpeCrossoverAtMean30) {
  // n = 1000: p = 0.0299 -> mean 29.9 (inversion); p = 0.0301 -> mean
  // 30.1 (BTPE). The law must be continuous across the dispatch line.
  expect_binomial_law(1000, 0.0299, 201);
  expect_binomial_law(1000, 0.0301, 202);
  // Far into each regime, for good measure.
  expect_binomial_law(100000, 0.0001, 203);  // inversion, mean 10
  expect_binomial_law(100000, 0.01, 204);    // BTPE, mean 1000
}

TEST(BinomialSample, ReflectionForPAboveHalfIsExact) {
  // p > 1/2 recurses as n - sample(n, 1 - p) with the same rng draws,
  // so twin generators must agree deterministically, not just in law.
  // (p = 0.75 so that 1 - p is exact in binary; with e.g. p = 0.7 the
  // reflected probability is 1.0 - 0.7 != 0.3 by one ulp.)
  for (const std::uint64_t n : {50ULL, 129ULL, 5000ULL}) {
    Rng a(42), b(42);
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t hi = binomial_sample(n, 0.75, a);
      const std::uint64_t lo = binomial_sample(n, 0.25, b);
      ASSERT_EQ(hi, n - lo);
    }
  }
  expect_binomial_law(129, 0.9, 301);
  expect_binomial_law(5000, 0.75, 302);
}

TEST(BinomialSample, EdgesAreExact) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(binomial_sample(0, 0.5, rng), 0u);
    EXPECT_EQ(binomial_sample(1000, 0.0, rng), 0u);
    EXPECT_EQ(binomial_sample(1000, 1.0, rng), 1000u);
    EXPECT_EQ(binomial_sample(1, 1.0, rng), 1u);
  }
}

TEST(BinomialSample, ResultNeverExceedsN) {
  Rng rng(3);
  for (const std::uint64_t n : {1ULL, 128ULL, 129ULL, 10000ULL}) {
    for (const double p : {0.01, 0.3, 0.5, 0.9, 0.999}) {
      for (int i = 0; i < 500; ++i) {
        ASSERT_LE(binomial_sample(n, p, rng), n);
      }
    }
  }
}

TEST(BinomialSample, DeterministicBySeed) {
  Rng a(77), b(77);
  for (const double p : {0.01, 0.3, 0.7}) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(binomial_sample(2000, p, a), binomial_sample(2000, p, b));
    }
  }
}

TEST(BinomialSample, RejectsOutOfRangeP) {
  Rng rng(5);
  EXPECT_THROW((void)binomial_sample(10, -0.1, rng), ContractViolation);
  EXPECT_THROW((void)binomial_sample(10, 1.1, rng), ContractViolation);
}

}  // namespace
}  // namespace jamelect
