// Adaptive (lane-variant) adversary policies on the batch fast path.
//
// bernoulli, single_denial and collision_forcer draw or track per-lane
// state, so the wide engines run them through LaneAdversaryBank
// (sim/lane_adversary.hpp) — per-lane SoA budget recurrences, tracked
// public estimates and policy rng streams. The contract is the same
// bit-identity the lane-invariant policies enjoy: for every adaptive
// policy, both CD modes (strong-CD aggregate, weak-CD hybrid), every
// lane count, and both rng backends, kWide == kScalarLanes == the
// sequential per-trial reference, outcome field for outcome field.
// (CI replays this suite under JAMELECT_FORCE_SCALAR=1, which swaps
// the wide facade onto its scalar grouped path — same contract.)
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "protocols/lesk.hpp"
#include "protocols/lesu.hpp"
#include "sim/batch.hpp"
#include "sim/montecarlo.hpp"

namespace jamelect {
namespace {

void expect_outcome_eq(const TrialOutcome& a, const TrialOutcome& b,
                       const std::string& what, std::size_t trial) {
  ASSERT_EQ(a.elected, b.elected) << what << " trial " << trial;
  ASSERT_EQ(a.slots, b.slots) << what << " trial " << trial;
  ASSERT_EQ(a.jams, b.jams) << what << " trial " << trial;
  ASSERT_EQ(a.nulls, b.nulls) << what << " trial " << trial;
  ASSERT_EQ(a.singles, b.singles) << what << " trial " << trial;
  ASSERT_EQ(a.collisions, b.collisions) << what << " trial " << trial;
  // Bit-identity, not approximate: the bank replays the exact integer
  // budget recurrence and double mirror arithmetic of the per-lane
  // virtual adversaries.
  ASSERT_EQ(a.transmissions, b.transmissions) << what << " trial " << trial;
  ASSERT_EQ(a.all_done, b.all_done) << what << " trial " << trial;
  ASSERT_EQ(a.unique_leader, b.unique_leader) << what << " trial " << trial;
  ASSERT_EQ(a.leader, b.leader) << what << " trial " << trial;
}

/// The three adaptive built-ins, each with tuning that actually
/// exercises its feedback loop at the given n.
[[nodiscard]] std::vector<AdversarySpec> adaptive_policies() {
  std::vector<AdversarySpec> list;
  {
    AdversarySpec bern;
    bern.policy = "bernoulli";
    bern.T = 64;
    bern.eps = 0.25;  // q defaults to 1 - eps = 0.75
    list.push_back(bern);
  }
  {
    AdversarySpec bern_q;
    bern_q.policy = "bernoulli";
    bern_q.T = 32;
    bern_q.eps = 0.5;
    bern_q.q = 0.4;  // explicit q, distinct from 1 - eps
    list.push_back(bern_q);
  }
  {
    AdversarySpec denial;
    denial.policy = "single_denial";
    denial.T = 48;
    denial.eps = 0.375;
    denial.threshold = 0.2;
    list.push_back(denial);
  }
  {
    AdversarySpec forcer;
    forcer.policy = "collision_forcer";
    forcer.T = 48;
    forcer.eps = 0.375;
    forcer.collision_threshold = 0.6;
    list.push_back(forcer);
  }
  return list;
}

/// Lane counts straddling the wide group width (4): below, exact,
/// 1 over, odd multi-group, larger chunk.
constexpr std::size_t kLaneCounts[] = {1, 3, 4, 5, 7, 29};

constexpr std::uint64_t kN = 64;
constexpr std::int64_t kMaxSlots = 20000;

TEST(BatchAdaptive, AggregateWideMatchesScalarLanesPerPolicyAndBackend) {
  const BatchKernelSpec spec{LeskParams{0.5, 0.0}};
  for (const AdversarySpec& adv : adaptive_policies()) {
    for (const RngBackend backend :
         {RngBackend::kXoshiro, RngBackend::kAesCtr}) {
      for (const std::size_t count : kLaneCounts) {
        const Rng base(0x5eedULL);
        BatchConfig scalar_cfg{kN, kMaxSlots, BatchLaneMode::kScalarLanes,
                               backend};
        BatchConfig wide_cfg{kN, kMaxSlots, BatchLaneMode::kWide, backend};
        std::vector<TrialOutcome> scalar(count), wide(count);
        run_batch_aggregate_trials(spec, adv, scalar_cfg, base, 2, count,
                                   scalar.data());
        run_batch_aggregate_trials(spec, adv, wide_cfg, base, 2, count,
                                   wide.data());
        const std::string what = adv.policy + "/" +
                                 rng_backend_name(backend) + "/lanes=" +
                                 std::to_string(count);
        for (std::size_t t = 0; t < count; ++t) {
          expect_outcome_eq(scalar[t], wide[t], what, t);
        }
      }
    }
  }
}

TEST(BatchAdaptive, HybridWideMatchesScalarLanesPerPolicyAndBackend) {
  const BatchKernelSpec spec{LeskParams{0.5, 0.0}};
  for (const AdversarySpec& adv : adaptive_policies()) {
    for (const RngBackend backend :
         {RngBackend::kXoshiro, RngBackend::kAesCtr}) {
      for (const std::size_t count : kLaneCounts) {
        const Rng base(0xabcULL);
        BatchConfig scalar_cfg{kN, 2 * kMaxSlots, BatchLaneMode::kScalarLanes,
                               backend};
        BatchConfig wide_cfg{kN, 2 * kMaxSlots, BatchLaneMode::kWide, backend};
        std::vector<TrialOutcome> scalar(count), wide(count);
        run_batch_hybrid_trials(spec, adv, scalar_cfg, base, 0, count,
                                scalar.data());
        run_batch_hybrid_trials(spec, adv, wide_cfg, base, 0, count,
                                wide.data());
        const std::string what = adv.policy + "/" +
                                 rng_backend_name(backend) + "/lanes=" +
                                 std::to_string(count);
        for (std::size_t t = 0; t < count; ++t) {
          expect_outcome_eq(scalar[t], wide[t], what, t);
        }
      }
    }
  }
}

TEST(BatchAdaptive, McSweepMatchesSequentialReferencePerPolicy) {
  // End-to-end through run_aggregate_mc and run_hybrid_mc: batch + kAuto
  // (which now routes all adaptive built-ins wide) must reproduce the
  // sequential per-trial reference bit for bit, for both inner kernels.
  const UniformProtocolFactory lesk = [] {
    return std::make_unique<Lesk>(LeskParams{0.5, 0.0});
  };
  const UniformProtocolFactory lesu = [] {
    return std::make_unique<Lesu>(LesuParams{});
  };
  for (const AdversarySpec& adv : adaptive_policies()) {
    McConfig seq;
    seq.trials = 13;
    seq.seed = 0xc0deULL;
    seq.max_slots = kMaxSlots;
    seq.parallel = false;
    seq.keep_outcomes = true;
    McConfig batched = seq;
    batched.batch = 5;  // trials not a multiple: exercises the tail chunk

    const McResult agg_ref = run_aggregate_mc(lesk, adv, kN, seq);
    const McResult agg_bat = run_aggregate_mc(lesk, adv, kN, batched);
    ASSERT_EQ(agg_ref.outcomes.size(), agg_bat.outcomes.size());
    for (std::size_t t = 0; t < agg_ref.outcomes.size(); ++t) {
      expect_outcome_eq(agg_ref.outcomes[t], agg_bat.outcomes[t],
                        adv.policy + "/aggregate", t);
    }

    const McResult hyb_ref = run_hybrid_mc(lesu, adv, kN, seq);
    const McResult hyb_bat = run_hybrid_mc(lesu, adv, kN, batched);
    ASSERT_EQ(hyb_ref.outcomes.size(), hyb_bat.outcomes.size());
    for (std::size_t t = 0; t < hyb_ref.outcomes.size(); ++t) {
      expect_outcome_eq(hyb_ref.outcomes[t], hyb_bat.outcomes[t],
                        adv.policy + "/hybrid", t);
    }
  }
}

TEST(BatchAdaptive, LaneVariantBernoulliDrawsMatchSequentialDistribution) {
  // Statistical guard on the bank's per-lane policy rng: across many
  // wide trials, the realized desire rate of a bernoulli(q) adversary
  // must sit inside a generous binomial confidence band around q. The
  // bank draws lane k's stream from the exact per-trial derivation
  // (child(first+k).child(0xad50).child(0x6a616d)), so this catches a
  // reseeding or lane-permutation bug that per-trial bit-identity
  // tests would also catch — but localizes it to the draw layer, and
  // guards the q-vs-jam distinction (desire rate is q even when the
  // budget vetoes the jam).
  AdversarySpec bern;
  bern.policy = "bernoulli";
  bern.T = 16;
  bern.eps = 0.5;
  bern.q = 0.3;
  // Fixed broadcast exponent u = 1 over a huge n: every slot is a
  // Collision (count ~ Binomial(2^20, 1/2)), so no trial ever elects
  // and all of them run the full kSlots — an uncensored sample of the
  // adversary's jam stream.
  const BatchKernelSpec spec{PlainUniformParams{1.0}};
  constexpr std::size_t kTrials = 64;
  constexpr std::int64_t kSlots = 400;
  const BatchConfig wide_cfg{1u << 20, kSlots, BatchLaneMode::kWide,
                             RngBackend::kXoshiro};
  std::vector<TrialOutcome> wide(kTrials);
  run_batch_aggregate_trials(spec, bern, wide_cfg, Rng(7), 0, kTrials,
                             wide.data());
  std::int64_t jams = 0;
  std::int64_t slots = 0;
  for (const TrialOutcome& o : wide) {
    ASSERT_EQ(o.slots, kSlots);
    jams += o.jams;
    slots += o.slots;
  }
  // Jams <= desires: the (T, 1-eps) budget admits an eps=0.5 duty cycle
  // and q = 0.3 < 0.5, so asymptotically every desire is granted; the
  // realized jam rate estimates q. Tolerance: 6 sigma of the binomial
  // (draws are independent across lanes/slots), plus slack for the
  // budget's warm-up vetoes.
  const double total = static_cast<double>(slots);
  const double rate = static_cast<double>(jams) / total;
  const double sigma = std::sqrt(bern.q * (1.0 - bern.q) / total);
  EXPECT_NEAR(rate, bern.q, 6.0 * sigma + 0.01)
      << "jams=" << jams << " slots=" << slots;
}

}  // namespace
}  // namespace jamelect
