// The SIMD-wide batch lane engines (BatchLaneMode::kWide) must return
// bit-identical TrialOutcomes to the scalar lane path — for every
// kernel (plain uniform, LESK, LESU), both CD modes, lane counts that
// are not a multiple of the group width, lanes retiring mid-vector,
// and on every available backend (AVX2 and the portable scalar4
// fallback). kAuto must route by adversary policy; adaptive built-ins
// (bernoulli & co.) ride the per-lane SoA wide engine and stay
// bit-identical too (tests/batch_adaptive_equivalence_test.cpp covers
// the full policy matrix), while kWide still rejects policies with no
// wide engine at all (oracle_denial).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "protocols/lesk.hpp"
#include "protocols/lesu.hpp"
#include "protocols/plain_uniform.hpp"
#include "sim/batch.hpp"
#include "sim/montecarlo.hpp"
#include "support/expects.hpp"
#include "support/wide_rng.hpp"

namespace jamelect {
namespace {

void expect_outcome_eq(const TrialOutcome& a, const TrialOutcome& b,
                       const std::string& what, std::size_t trial) {
  ASSERT_EQ(a.elected, b.elected) << what << " trial " << trial;
  ASSERT_EQ(a.slots, b.slots) << what << " trial " << trial;
  ASSERT_EQ(a.jams, b.jams) << what << " trial " << trial;
  ASSERT_EQ(a.nulls, b.nulls) << what << " trial " << trial;
  ASSERT_EQ(a.singles, b.singles) << what << " trial " << trial;
  ASSERT_EQ(a.collisions, b.collisions) << what << " trial " << trial;
  // Bit-identity, not approximate: the wide path replays the exact
  // double arithmetic of the scalar lanes.
  ASSERT_EQ(a.transmissions, b.transmissions) << what << " trial " << trial;
  ASSERT_EQ(a.all_done, b.all_done) << what << " trial " << trial;
  ASSERT_EQ(a.unique_leader, b.unique_leader) << what << " trial " << trial;
  ASSERT_EQ(a.leader, b.leader) << what << " trial " << trial;
}

/// Backends available on this machine: scalar4 always, avx2 if usable.
[[nodiscard]] std::vector<WideIsa> available_isas() {
  std::vector<WideIsa> isas{WideIsa::kScalar4};
  if (wide_avx2_supported()) isas.push_back(WideIsa::kAvx2);
  return isas;
}

class IsaGuard {
 public:
  explicit IsaGuard(WideIsa isa) { set_wide_isa_for_testing(isa); }
  ~IsaGuard() { reset_wide_isa_for_testing(); }
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;
};

struct Scenario {
  std::string name;
  BatchKernelSpec spec;
  AdversarySpec adversary;
  std::uint64_t n;
};

/// One scenario per kernel, lane-invariant adversaries only (the wide
/// path's precondition). Small n keeps elections quick, so lanes
/// retire at staggered slots — including mid-vector, with live lanes
/// on both sides of the retired one.
[[nodiscard]] std::vector<Scenario> scenarios() {
  std::vector<Scenario> list;
  {
    AdversarySpec none;
    none.policy = "none";
    list.push_back({"lesk/none", BatchKernelSpec{LeskParams{0.5, 0.0}}, none,
                    8});
  }
  {
    AdversarySpec sat;
    sat.policy = "saturating";
    sat.T = 32;
    sat.eps = 0.5;
    list.push_back(
        {"lesk/saturating", BatchKernelSpec{LeskParams{0.25, 0.0}}, sat, 256});
  }
  {
    AdversarySpec per;
    per.policy = "periodic";
    per.T = 16;
    per.eps = 0.5;
    list.push_back({"lesu/periodic", BatchKernelSpec{LesuParams{}}, per, 64});
  }
  {
    AdversarySpec pulse;
    pulse.policy = "pulse";
    pulse.T = 24;
    pulse.eps = 0.25;
    list.push_back({"uniform/pulse", BatchKernelSpec{PlainUniformParams{3.0}},
                    pulse, 16});
  }
  return list;
}

/// Lane counts straddling the group width: below, exact, 1 over, odd
/// multi-group, and a larger chunk.
constexpr std::size_t kLaneCounts[] = {1, 3, 4, 5, 7, 29};

TEST(WideBatch, AggregateWideMatchesScalarLanesOnEveryBackend) {
  for (const WideIsa isa : available_isas()) {
    IsaGuard guard(isa);
    for (const Scenario& sc : scenarios()) {
      for (const std::size_t count : kLaneCounts) {
        const Rng base(0x5eedULL);
        BatchConfig scalar_cfg{sc.n, 20000, BatchLaneMode::kScalarLanes};
        BatchConfig wide_cfg{sc.n, 20000, BatchLaneMode::kWide};
        std::vector<TrialOutcome> scalar(count), wide(count);
        run_batch_aggregate_trials(sc.spec, sc.adversary, scalar_cfg, base, 2,
                                   count, scalar.data());
        run_batch_aggregate_trials(sc.spec, sc.adversary, wide_cfg, base, 2,
                                   count, wide.data());
        for (std::size_t t = 0; t < count; ++t) {
          expect_outcome_eq(scalar[t], wide[t],
                            std::string(wide_isa_name(isa)) + " " + sc.name,
                            t);
        }
      }
    }
  }
}

TEST(WideBatch, HybridWideMatchesScalarLanesOnEveryBackend) {
  for (const WideIsa isa : available_isas()) {
    IsaGuard guard(isa);
    for (const Scenario& sc : scenarios()) {
      for (const std::size_t count : kLaneCounts) {
        const Rng base(0xabcULL);
        BatchConfig scalar_cfg{sc.n, 40000, BatchLaneMode::kScalarLanes};
        BatchConfig wide_cfg{sc.n, 40000, BatchLaneMode::kWide};
        std::vector<TrialOutcome> scalar(count), wide(count);
        run_batch_hybrid_trials(sc.spec, sc.adversary, scalar_cfg, base, 0,
                                count, scalar.data());
        run_batch_hybrid_trials(sc.spec, sc.adversary, wide_cfg, base, 0,
                                count, wide.data());
        for (std::size_t t = 0; t < count; ++t) {
          expect_outcome_eq(scalar[t], wide[t],
                            std::string(wide_isa_name(isa)) + " " + sc.name,
                            t);
        }
      }
    }
  }
}

TEST(WideBatch, CensoredLanesMatchTooOnEveryBackend) {
  // A slot budget far below the election time leaves every lane
  // censored: accumulator totals (not just elected outcomes) must agree
  // bit for bit.
  for (const WideIsa isa : available_isas()) {
    IsaGuard guard(isa);
    const Scenario sc = scenarios()[1];  // LESK vs saturating, n = 256
    const Rng base(0x17ULL);
    BatchConfig scalar_cfg{sc.n, 40, BatchLaneMode::kScalarLanes};
    BatchConfig wide_cfg{sc.n, 40, BatchLaneMode::kWide};
    std::vector<TrialOutcome> scalar(6), wide(6);
    run_batch_aggregate_trials(sc.spec, sc.adversary, scalar_cfg, base, 0, 6,
                               scalar.data());
    run_batch_aggregate_trials(sc.spec, sc.adversary, wide_cfg, base, 0, 6,
                               wide.data());
    for (std::size_t t = 0; t < 6; ++t) {
      expect_outcome_eq(scalar[t], wide[t], wide_isa_name(isa), t);
      ASSERT_FALSE(wide[t].elected);
      ASSERT_EQ(wide[t].slots, 40);
    }
  }
}

TEST(WideBatch, AutoRoutesThroughMcBitIdenticalToSequential) {
  // End-to-end through run_*_mc: batch_lanes = kAuto (the default)
  // goes wide for these lane-invariant policies and must still match
  // the sequential per-trial reference.
  const UniformProtocolFactory factory = [] {
    return std::make_unique<Lesk>(LeskParams{0.5, 0.0});
  };
  AdversarySpec sat;
  sat.policy = "saturating";
  sat.T = 32;
  sat.eps = 0.5;
  McConfig seq;
  seq.trials = 21;
  seq.seed = 0xc0deULL;
  seq.max_slots = 20000;
  seq.parallel = false;
  seq.keep_outcomes = true;
  const McResult reference = run_aggregate_mc(factory, sat, 512, seq);
  for (const BatchLaneMode mode :
       {BatchLaneMode::kAuto, BatchLaneMode::kWide,
        BatchLaneMode::kScalarLanes}) {
    McConfig cfg = seq;
    cfg.batch = 8;
    cfg.batch_lanes = mode;
    const McResult batched = run_aggregate_mc(factory, sat, 512, cfg);
    ASSERT_EQ(batched.outcomes.size(), reference.outcomes.size());
    for (std::size_t t = 0; t < reference.outcomes.size(); ++t) {
      expect_outcome_eq(reference.outcomes[t], batched.outcomes[t], "mc", t);
    }
  }
}

TEST(WideBatch, AutoGoesWideForAdaptivePoliciesBitIdentical) {
  // bernoulli draws its jam schedule from a per-lane rng; kAuto now
  // routes it onto the per-lane SoA wide engine — and must still match
  // the sequential reference bit for bit.
  const UniformProtocolFactory factory = [] {
    return std::make_unique<Lesu>(LesuParams{});
  };
  AdversarySpec bern;
  bern.policy = "bernoulli";
  bern.T = 64;
  bern.eps = 0.25;
  McConfig seq;
  seq.trials = 11;
  seq.seed = 0xfadeULL;
  seq.max_slots = 20000;
  seq.parallel = false;
  seq.keep_outcomes = true;
  const McResult reference = run_aggregate_mc(factory, bern, 256, seq);
  McConfig cfg = seq;
  cfg.batch = 8;  // batch_lanes stays kAuto
  const McResult batched = run_aggregate_mc(factory, bern, 256, cfg);
  for (std::size_t t = 0; t < reference.outcomes.size(); ++t) {
    expect_outcome_eq(reference.outcomes[t], batched.outcomes[t], "auto", t);
  }
}

TEST(WideBatch, ForcingWideWithAdaptivePolicyMatchesScalarLanes) {
  // kWide used to reject adaptive policies outright; the per-lane SoA
  // bank made it legal. The contract is now bit-identity with the
  // scalar lane path, on both CD modes.
  AdversarySpec bern;
  bern.policy = "bernoulli";
  bern.T = 64;
  bern.eps = 0.25;
  const BatchKernelSpec spec{LeskParams{0.5, 0.0}};
  const BatchConfig scalar_cfg{64, 20000, BatchLaneMode::kScalarLanes};
  const BatchConfig wide_cfg{64, 20000, BatchLaneMode::kWide};
  const Rng base(1);
  constexpr std::size_t kCount = 9;
  std::vector<TrialOutcome> scalar(kCount), wide(kCount);
  run_batch_aggregate_trials(spec, bern, scalar_cfg, base, 0, kCount,
                             scalar.data());
  run_batch_aggregate_trials(spec, bern, wide_cfg, base, 0, kCount,
                             wide.data());
  for (std::size_t t = 0; t < kCount; ++t) {
    expect_outcome_eq(scalar[t], wide[t], "aggregate kWide/bernoulli", t);
  }
  run_batch_hybrid_trials(spec, bern, scalar_cfg, base, 0, kCount,
                          scalar.data());
  run_batch_hybrid_trials(spec, bern, wide_cfg, base, 0, kCount, wide.data());
  for (std::size_t t = 0; t < kCount; ++t) {
    expect_outcome_eq(scalar[t], wide[t], "hybrid kWide/bernoulli", t);
  }
}

TEST(WideBatch, WideSlotCountersRollUp) {
  if constexpr (!obs::kObsCompiledIn) {
    GTEST_SKIP() << "JAMELECT_OBS compiled out";
  }
  auto& reg = obs::MetricsRegistry::global();
  const bool was_enabled = reg.enabled();
  reg.reset();
  reg.set_enabled(true);
  const UniformProtocolFactory factory = [] {
    return std::make_unique<Lesk>(LeskParams{0.5, 0.0});
  };
  AdversarySpec none;
  none.policy = "none";
  McConfig cfg;
  cfg.trials = 8;
  cfg.seed = 3;
  cfg.max_slots = 20000;
  cfg.parallel = false;
  cfg.batch = 8;
  cfg.batch_lanes = BatchLaneMode::kWide;
  (void)run_aggregate_mc(factory, none, 64, cfg);
  const auto snap = reg.aggregate();
  reg.set_enabled(was_enabled);
  // The registration shim pins all three rollup counters into the
  // manifest; only the wide one accumulates on this run.
  ASSERT_TRUE(snap.counters.count("mc.batch_wide_slots"));
  ASSERT_TRUE(snap.counters.count("mc.batch_scalar_slots"));
  ASSERT_TRUE(snap.counters.count("mc.batch_fallbacks"));
  EXPECT_GT(snap.counters.at("mc.batch_wide_slots"), 0);
  EXPECT_EQ(snap.counters.at("mc.batch_scalar_slots"), 0);
  EXPECT_EQ(snap.counters.at("mc.batch_fallbacks"), 0);
  EXPECT_GT(snap.counters.at("engine.batch.cache_lookups"), 0);
}

}  // namespace
}  // namespace jamelect
