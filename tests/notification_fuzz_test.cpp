// Randomized state-machine fuzz for NotificationStation: drive the
// station with arbitrary (but weak-CD-consistent) observation streams
// and assert structural invariants that must hold on EVERY path, not
// just the happy handshake:
//   * transmit probabilities are always in [0, 1];
//   * done() is absorbing;
//   * phase transitions follow the paper's DAG;
//   * a station never claims leadership unless it followed the
//     l-path (first-loop exit via a C2 Single);
//   * post-done behaviour is inert.
#include <gtest/gtest.h>

#include <memory>

#include "protocols/lesk.hpp"
#include "protocols/lesu.hpp"
#include "protocols/notification.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

using Phase = NotificationStation::Phase;

bool legal_transition(Phase from, Phase to) {
  if (from == to) return true;
  switch (from) {
    case Phase::kFirstLoop:
      return to == Phase::kSecondLoop || to == Phase::kAnnounceC3;
    case Phase::kSecondLoop:
      return to == Phase::kConfirmC1 || to == Phase::kDone;
    case Phase::kConfirmC1:
      return to == Phase::kDone;
    case Phase::kAnnounceC3:
      return to == Phase::kDone;
    case Phase::kDone:
      return false;
  }
  return false;
}

class NotificationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NotificationFuzz, InvariantsHoldOnRandomStreams) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const bool inner_lesu = rng.bernoulli(0.3);
  UniformProtocolFactory factory;
  if (inner_lesu) {
    factory = [] { return std::make_unique<Lesu>(); };
  } else {
    factory = [] { return std::make_unique<Lesk>(0.5); };
  }
  NotificationStation st(factory);

  Phase prev_phase = st.phase();
  bool was_done = false;
  bool saw_c2_single_while_first_loop = false;

  for (Slot slot = 0; slot < 4000; ++slot) {
    const double p = st.transmit_probability(slot);
    ASSERT_GE(p, 0.0) << "slot " << slot;
    ASSERT_LE(p, 1.0) << "slot " << slot;
    const bool transmitted = rng.bernoulli(p);

    // Weak-CD consistency: a transmitter always perceives Collision; a
    // listener perceives an arbitrary channel state.
    Observation obs;
    if (transmitted) {
      obs = Observation::kCollision;
    } else {
      const double r = rng.uniform();
      obs = r < 0.45   ? Observation::kNull
            : r < 0.55 ? Observation::kSingle
                       : Observation::kCollision;
    }

    const bool is_c2 =
        classify_slot(slot).set == IntervalSet::kC2;
    if (st.phase() == Phase::kFirstLoop && is_c2 && !transmitted &&
        obs == Observation::kSingle) {
      saw_c2_single_while_first_loop = true;
    }

    st.feedback(slot, transmitted, obs);

    const Phase now = st.phase();
    ASSERT_TRUE(legal_transition(prev_phase, now))
        << "slot " << slot << ": " << static_cast<int>(prev_phase) << " -> "
        << static_cast<int>(now);
    prev_phase = now;

    if (was_done) {
      ASSERT_TRUE(st.done()) << "done() must be absorbing, slot " << slot;
    }
    was_done = st.done();

    if (st.is_leader()) {
      // Only the l-path sets the leader flag.
      ASSERT_TRUE(saw_c2_single_while_first_loop) << "slot " << slot;
    }
  }

  // Post-done inertia: more feedback changes nothing observable.
  if (st.done()) {
    const bool leader = st.is_leader();
    for (Slot slot = 4000; slot < 4050; ++slot) {
      ASSERT_DOUBLE_EQ(st.transmit_probability(slot), 0.0);
      st.feedback(slot, false, Observation::kNull);
      ASSERT_TRUE(st.done());
      ASSERT_EQ(st.is_leader(), leader);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NotificationFuzz,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace jamelect
