#include <gtest/gtest.h>

#include "support/expects.hpp"

#include <cmath>

#include "extensions/fair_mac.hpp"
#include "extensions/k_selection.hpp"
#include "extensions/size_approximation.hpp"
#include "sim/adversary_spec.hpp"
#include "sim/aggregate.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

// ---------- size approximation ----------

double run_size_approx(std::uint64_t n, double eps, const std::string& policy,
                       std::int64_t budget, std::uint64_t seed) {
  SizeApproximation approx({eps, budget});
  AdversarySpec spec;
  spec.policy = policy;
  spec.T = 64;
  spec.eps = eps;
  spec.n = n;
  Rng rng(seed);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  // run_aggregate never sees elected(); it runs out the budget.
  (void)run_aggregate(approx, *adv, {n, budget}, sim);
  EXPECT_TRUE(approx.completed());
  return approx.estimate_log2n();
}

TEST(SizeApproximation, RejectsBadParams) {
  EXPECT_THROW(SizeApproximation bad({0.0, 100}), ContractViolation);
  EXPECT_THROW(SizeApproximation bad({0.5, 1}), ContractViolation);
}

TEST(SizeApproximation, RequiresCompletionForEstimate) {
  SizeApproximation approx({0.5, 100});
  EXPECT_THROW((void)approx.estimate_log2n(), ContractViolation);
}

TEST(SizeApproximation, SinglesDoNotTerminateTheWalk) {
  SizeApproximation approx({0.5, 10});
  approx.observe(ChannelState::kSingle);
  EXPECT_FALSE(approx.elected());
  EXPECT_FALSE(approx.completed());
  EXPECT_DOUBLE_EQ(approx.estimate(), 0.0);  // Single leaves u unchanged
}

class SizeApproxAccuracy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SizeApproxAccuracy, WithinAFewUnitsOfLog2N) {
  const std::uint64_t n = GetParam();
  const double log2n = std::log2(static_cast<double>(n));
  const auto budget = static_cast<std::int64_t>(64.0 * (log2n + 8.0));
  for (const char* policy : {"none", "saturating"}) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const double est = run_size_approx(n, 0.5, policy, budget, 900 + seed);
      EXPECT_NEAR(est, log2n, 4.0)
          << "n=" << n << " policy=" << policy << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeApproxAccuracy,
                         ::testing::Values<std::uint64_t>(64, 1024, 1 << 14,
                                                          1 << 18));

TEST(SizeApproximation, EstimateNIsTwoToTheEstimate) {
  const std::uint64_t n = 4096;
  SizeApproximation approx({0.5, 2048});
  AdversarySpec spec;
  Rng rng(7);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  (void)run_aggregate(approx, *adv, {n, 2048}, sim);
  EXPECT_DOUBLE_EQ(approx.estimate_n(), std::exp2(approx.estimate_log2n()));
  EXPECT_GT(approx.estimate_n(), 4096.0 / 16.0);
  EXPECT_LT(approx.estimate_n(), 4096.0 * 16.0);
}

// ---------- k-selection ----------

KSelectionResult run_ksel(std::uint64_t n, std::uint64_t k,
                          const std::string& policy, std::uint64_t seed,
                          bool warm = true) {
  KSelectionParams params;
  params.n = n;
  params.k = k;
  params.eps = 0.5;
  params.max_slots = 1 << 22;
  params.warm_start = warm;
  AdversarySpec spec;
  spec.policy = policy;
  spec.T = 64;
  spec.eps = 0.5;
  spec.n = n;
  Rng rng(seed);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  return run_k_selection(params, *adv, sim);
}

TEST(KSelection, RejectsBadParams) {
  KSelectionParams bad;
  bad.n = 2;
  bad.k = 3;  // more leaders than stations
  AdversarySpec spec;
  Rng rng(1);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  EXPECT_THROW((void)run_k_selection(bad, *adv, sim), ContractViolation);
}

TEST(KSelection, ElectsExactlyK) {
  for (std::uint64_t k : {1ULL, 2ULL, 8ULL, 32ULL}) {
    const auto res = run_ksel(1024, k, "none", 40 + k);
    EXPECT_TRUE(res.completed) << k;
    EXPECT_EQ(res.leaders_elected, k) << k;
    EXPECT_EQ(res.slots_per_round.size(), k) << k;
  }
}

TEST(KSelection, WorksUnderJamming) {
  const auto res = run_ksel(512, 16, "saturating", 77);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.leaders_elected, 16u);
  EXPECT_GT(res.jams, 0);
}

TEST(KSelection, SelectAllStations) {
  const auto res = run_ksel(16, 16, "none", 5);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.leaders_elected, 16u);
}

TEST(KSelection, WarmStartMakesLaterRoundsCheap) {
  const auto res = run_ksel(4096, 16, "none", 11, true);
  ASSERT_TRUE(res.completed);
  // Round 1 pays the 0 -> log2(n) ramp; later rounds resume near the
  // sweet window and should be far cheaper on average.
  const double first = static_cast<double>(res.slots_per_round.front());
  double rest = 0;
  for (std::size_t i = 1; i < res.slots_per_round.size(); ++i) {
    rest += static_cast<double>(res.slots_per_round[i]);
  }
  rest /= static_cast<double>(res.slots_per_round.size() - 1);
  EXPECT_LT(rest, first / 3.0);
}

TEST(KSelection, ColdStartCostsMore) {
  const auto warm = run_ksel(1024, 8, "none", 13, true);
  const auto cold = run_ksel(1024, 8, "none", 13, false);
  ASSERT_TRUE(warm.completed);
  ASSERT_TRUE(cold.completed);
  EXPECT_LT(warm.slots, cold.slots);
}

TEST(KSelection, BudgetExhaustionReported) {
  KSelectionParams params;
  params.n = 1 << 14;
  params.k = 4;
  params.max_slots = 10;  // hopeless
  AdversarySpec spec;
  Rng rng(3);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  const auto res = run_k_selection(params, *adv, sim);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.slots, 10);
  EXPECT_LT(res.leaders_elected, 4u);
}

// ---------- fair use of the channel ----------

TEST(FairMac, RejectsBadParams) {
  FairMacParams bad;
  bad.rounds = 0;
  EXPECT_THROW((void)run_fair_mac(bad, AdversarySpec{}, Rng(1)),
               ContractViolation);
}

TEST(FairMac, CompletesAllRoundsClean) {
  FairMacParams params;
  params.n = 16;
  params.rounds = 48;
  const auto res = run_fair_mac(params, AdversarySpec{}, Rng(7));
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.rounds_completed, 48u);
  std::int64_t total = 0;
  for (auto w : res.grants) total += w;
  EXPECT_EQ(total, 48);
}

TEST(FairMac, JainIndexHighOverManyRounds) {
  FairMacParams params;
  params.n = 8;
  params.rounds = 160;
  const auto res = run_fair_mac(params, AdversarySpec{}, Rng(21));
  ASSERT_TRUE(res.completed);
  // Exchangeable winners: expected Jain ~ 1/(1 + (n-1)/rounds) ~ 0.96.
  EXPECT_GT(res.jain_index(), 0.85);
}

TEST(FairMac, AdversaryDelaysButCannotBias) {
  FairMacParams params;
  params.n = 8;
  params.rounds = 120;
  AdversarySpec clean;
  AdversarySpec jam;
  jam.policy = "saturating";
  jam.T = 32;
  jam.eps = 0.5;
  const auto a = run_fair_mac(params, clean, Rng(33));
  const auto b = run_fair_mac(params, jam, Rng(33));
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_GT(b.jams_total, 0);
  // Jamming may cost slots but fairness is unaffected.
  EXPECT_GT(b.jain_index(), 0.85);
}

TEST(FairMac, RoundTimeoutReportsPartialRun) {
  FairMacParams params;
  params.n = 1 << 13;
  params.rounds = 4;
  params.max_slots_per_round = 3;  // hopeless
  const auto res = run_fair_mac(params, AdversarySpec{}, Rng(5));
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.rounds_completed, 0u);
}

}  // namespace
}  // namespace jamelect
