// Failure injection and adversarial edge cases: the protocol stack must
// stay correct (never elect two leaders, never violate the budget,
// never crash) under hostile parameters — only liveness may suffer.
#include <gtest/gtest.h>

#include <memory>

#include "protocols/lesk.hpp"
#include "protocols/lewk.hpp"
#include "protocols/lewu.hpp"
#include "sim/aggregate.hpp"
#include "sim/engine.hpp"
#include "sim/hybrid.hpp"
#include "sim/montecarlo.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

// An intentionally malicious policy that *requests* a jam every slot
// regardless of budget — the BoundedAdversary must clamp it.
class GreedyLiar final : public JamPolicy {
 public:
  [[nodiscard]] bool desires_jam(Slot, const JammingBudget&) override {
    return true;
  }
  [[nodiscard]] std::string name() const override { return "liar"; }
};

TEST(Robustness, BoundedAdversaryClampsMaliciousPolicy) {
  BoundedAdversary adv(16, {1, 4}, std::make_unique<GreedyLiar>());
  std::int64_t jams = 0;
  constexpr int kLen = 4000;
  for (int i = 0; i < kLen; ++i) jams += adv.step() ? 1 : 0;
  // Never above the (1-eps) cap.
  EXPECT_LE(jams * 4, 3 * kLen + 4 * 16);
}

TEST(Robustness, MismatchedEpsStillSafeJustSlower) {
  // Protocol believes eps = 0.5 but the adversary is stronger
  // (eps = 0.25): Theorem 2.6's guarantee is void, yet the run must
  // remain correct; with enough slots LESK usually still elects because
  // the adversary cannot fabricate Nulls.
  Lesk lesk(0.5);
  AdversarySpec spec;
  spec.policy = "saturating";
  spec.T = 64;
  spec.eps = 0.25;        // adversary stronger than assumed
  spec.protocol_eps = 0.5;
  spec.n = 256;
  Rng rng(5);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  const auto out = run_aggregate(lesk, *adv, {256, 1 << 22}, sim);
  // Liveness is not guaranteed here — but safety bookkeeping is.
  if (out.elected) {
    EXPECT_TRUE(out.unique_leader);
  }
  EXPECT_LE(out.jams * 4, out.slots * 3 + 4 * 64);
}

TEST(Robustness, WeakCdNotificationNeverTwoLeaders) {
  // Sweep adversaries and sizes; in every completed election exactly
  // one station is the leader, every station terminated, and the
  // leader knows.
  for (const char* policy : {"none", "saturating", "bernoulli", "pulse"}) {
    for (std::uint64_t n : {3ULL, 4ULL, 5ULL, 9ULL, 33ULL}) {
      McConfig mc;
      mc.trials = 6;
      mc.seed = 1000 + n;
      mc.max_slots = 1 << 20;
      mc.keep_outcomes = true;
      AdversarySpec spec;
      spec.policy = policy;
      spec.T = 32;
      spec.eps = 0.5;
      const auto res = run_station_mc(
          [](StationId) -> StationProtocolPtr { return make_lewk_station(0.5); },
          spec, n, {CdMode::kWeak, StopRule::kAllDone, mc.max_slots}, mc);
      for (const auto& o : res.outcomes) {
        ASSERT_TRUE(o.elected) << policy << " n=" << n;
        ASSERT_TRUE(o.unique_leader) << policy << " n=" << n;
        ASSERT_TRUE(o.all_done) << policy << " n=" << n;
      }
    }
  }
}

TEST(Robustness, LewuFullStackSmallNetwork) {
  // The no-knowledge stack (Notification over LESU) end-to-end in the
  // per-station engine, under jamming.
  McConfig mc;
  mc.trials = 3;
  mc.seed = 77;
  mc.max_slots = 1 << 22;
  mc.keep_outcomes = true;
  AdversarySpec spec;
  spec.policy = "saturating";
  spec.T = 32;
  spec.eps = 0.5;
  const auto res = run_station_mc(
      [](StationId) -> StationProtocolPtr { return make_lewu_station(); },
      spec, 8, {CdMode::kWeak, StopRule::kAllDone, mc.max_slots}, mc);
  EXPECT_EQ(res.successes, res.trials);
  for (const auto& o : res.outcomes) EXPECT_TRUE(o.unique_leader);
}

TEST(Robustness, ExtremeEpsValues) {
  // eps = 1 (adversary may never jam in any >= T window) and
  // eps close to 0 (adversary jams nearly everything).
  Lesk trusting(1.0);
  AdversarySpec none;
  none.policy = "saturating";
  none.T = 8;
  none.eps = 1.0;
  none.n = 64;
  Rng rng(9);
  auto adv = make_adversary(none, rng.child(1));
  Rng sim = rng.child(2);
  const auto out = run_aggregate(trusting, *adv, {64, 100000}, sim);
  EXPECT_TRUE(out.elected);
  EXPECT_EQ(out.jams, 0);

  Lesk patient(0.05);
  AdversarySpec brutal;
  brutal.policy = "saturating";
  brutal.T = 16;
  brutal.eps = 0.05;
  brutal.n = 8;
  Rng rng2(11);
  auto adv2 = make_adversary(brutal, rng2.child(1));
  Rng sim2 = rng2.child(2);
  const auto out2 = run_aggregate(patient, *adv2, {8, 1 << 23}, sim2);
  EXPECT_TRUE(out2.elected);  // slow, but the Nulls still get through
}

TEST(Robustness, HugeTOnlyDelaysLinearly) {
  // With T larger than the whole election, the adversary may jam every
  // early slot; LESK must elect shortly after the jamming budget dries
  // up near slot (1-eps)*T ... T.
  Lesk lesk(0.5);
  AdversarySpec spec;
  spec.policy = "saturating";
  spec.T = 1 << 14;
  spec.eps = 0.5;
  spec.n = 64;
  Rng rng(13);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  const auto out = run_aggregate(lesk, *adv, {64, 1 << 18}, sim);
  EXPECT_TRUE(out.elected);
  EXPECT_GT(out.slots, (1 << 14) / 4);  // the burst really delayed us
}

TEST(Robustness, NotificationSurvivesIntervalBuster) {
  // The adversary purpose-built against Notification (ices whole
  // C^i_j intervals while they fit the budget): Lemma 3.1's geometric
  // escape must still elect — each set and the all-sets variant.
  for (int target : {0, 1, 2, 3}) {
    McConfig mc;
    mc.trials = 4;
    mc.seed = 4000 + static_cast<std::uint64_t>(target);
    mc.max_slots = 1 << 21;
    mc.keep_outcomes = true;
    AdversarySpec spec;
    spec.policy = "interval_buster";
    spec.T = 32;
    spec.eps = 0.5;
    spec.target_set = target;
    const auto res = run_hybrid_mc(
        [] { return std::make_unique<Lesk>(0.5); }, spec, 64, mc);
    EXPECT_EQ(res.successes, res.trials) << "target_set=" << target;
    for (const auto& o : res.outcomes) {
      EXPECT_GT(o.jams, 0) << "target_set=" << target;
    }
  }
}

TEST(Robustness, PerStationNotificationSurvivesIntervalBuster) {
  McConfig mc;
  mc.trials = 4;
  mc.seed = 4100;
  mc.max_slots = 1 << 21;
  mc.keep_outcomes = true;
  AdversarySpec spec;
  spec.policy = "interval_buster";
  spec.T = 32;
  spec.eps = 0.5;
  const auto res = run_station_mc(
      [](StationId) -> StationProtocolPtr { return make_lewk_station(0.5); },
      spec, 9, {CdMode::kWeak, StopRule::kAllDone, mc.max_slots}, mc);
  EXPECT_EQ(res.successes, res.trials);
  for (const auto& o : res.outcomes) {
    EXPECT_TRUE(o.unique_leader);
    EXPECT_TRUE(o.all_done);
  }
}

TEST(Robustness, NotificationSurvivesPulseAlignedWithIntervals) {
  // A pulse jammer aligned against small C-intervals: early intervals
  // can be fully jammed, later (longer) ones cannot — Lemma 3.1's
  // geometric escape.
  McConfig mc;
  mc.trials = 4;
  mc.seed = 21;
  mc.max_slots = 1 << 21;
  AdversarySpec spec;
  spec.policy = "pulse";
  spec.on = 8;
  spec.off = 8;
  spec.T = 16;
  spec.eps = 0.5;
  const auto res = run_hybrid_mc(
      [] { return std::make_unique<Lesk>(0.5); }, spec, 128, mc);
  EXPECT_EQ(res.successes, res.trials);
}

}  // namespace
}  // namespace jamelect
