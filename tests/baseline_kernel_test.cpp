// Baseline kernels vs their virtual twins.
//
// baselines/baseline_kernels.hpp (Willard, Nakano–Olariu, no-CD sweep)
// and baselines/arss_kernel.hpp (ARSS) promise bit-for-bit twins of the
// virtual baseline classes so the batch engines can run the evaluation
// baselines devirtualized. This suite locks each pair together at two
// levels: direct lockstep stepping (identical observation sequences,
// state compared after every step) and end-to-end Monte-Carlo
// bit-identity (batched runs reproduce the sequential reference outcome
// for outcome), plus the reason-labeled fallback counters the station
// batch router emits.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/arss.hpp"
#include "baselines/arss_kernel.hpp"
#include "baselines/baseline_kernels.hpp"
#include "baselines/nakano_olariu.hpp"
#include "baselines/nocd_election.hpp"
#include "baselines/willard.hpp"
#include "channel/channel.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "protocols/lesk.hpp"
#include "protocols/uniform_station.hpp"
#include "sim/montecarlo.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

// ---------- lockstep stepping twins ----------

/// Drives kernel and virtual protocol through the same channel-state
/// sequence and compares estimate/elected after every step. The first
/// `quiet_steps` draw only Null/Collision so the pre-election state
/// machine (Willard's three phases, the no-CD epoch roll-over) gets
/// exercised before a Single absorbs both twins; stepping continues
/// past the election to confirm the absorbing state.
template <typename Kernel, typename Protocol>
void expect_stepping_twin(const typename Kernel::Params& params,
                          std::uint64_t seed, int quiet_steps, int steps) {
  Kernel kernel(params);
  Protocol proto(params);
  Rng rng(seed);
  for (int step = 0; step < steps; ++step) {
    ASSERT_EQ(kernel.estimate(), proto.estimate()) << "step " << step;
    ASSERT_EQ(kernel.done(), proto.elected()) << "step " << step;
    ASSERT_EQ(kernel.broadcast_u(), proto.estimate()) << "step " << step;
    const double d = rng.uniform();
    ChannelState state;
    if (step < quiet_steps) {
      state = d < 0.5 ? ChannelState::kNull : ChannelState::kCollision;
    } else {
      state = d < 0.45 ? ChannelState::kNull
                       : (d < 0.9 ? ChannelState::kCollision
                                  : ChannelState::kSingle);
    }
    kernel.step(state);
    proto.observe(state);
  }
  ASSERT_EQ(kernel.estimate(), proto.estimate());
  ASSERT_EQ(kernel.done(), proto.elected());
}

TEST(BaselineKernels, WillardKernelStepsWithVirtualTwin) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    expect_stepping_twin<kernels::WillardKernel, Willard>(WillardParams{}, seed,
                                                          200, 400);
  }
}

TEST(BaselineKernels, NakanoOlariuKernelStepsWithVirtualTwin) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    expect_stepping_twin<kernels::NakanoOlariuKernel, NakanoOlariu>(
        NakanoOlariuParams{}, seed, 200, 400);
  }
}

TEST(BaselineKernels, NoCdKernelStepsWithVirtualTwin) {
  for (std::int64_t reps : {1, 3, 4}) {
    // Long quiet prefix: enough not-Single steps to roll several epochs
    // (epoch e spans reps * 2^e slots) and hit the u reset.
    expect_stepping_twin<kernels::NoCdKernel, NoCdElection>(
        NoCdElectionParams{reps}, 0x90d + static_cast<std::uint64_t>(reps),
        600, 800);
  }
}

TEST(BaselineKernels, ArssKernelStepsWithVirtualStation) {
  // Election mode (done on the first Single) and plain-MAC mode (runs
  // forever, exercising the threshold escape hatch over many rounds).
  for (const bool elect : {true, false}) {
    ArssParams params;
    params.gamma = arss_gamma(64, 16);
    params.elect_on_single = elect;
    ArssStation station(params);
    kernels::ArssKernel kernel(params);
    Rng rng(elect ? 0xa12f5ULL : 0xa12f6ULL);
    const int steps = elect ? 400 : 2000;
    for (int slot = 0; slot < steps; ++slot) {
      ASSERT_EQ(kernel.transmit_probability(),
                station.transmit_probability(slot))
          << "slot " << slot;
      const double d = rng.uniform();
      const ChannelState state =
          d < 0.4 ? ChannelState::kNull
                  : (d < 0.8 ? ChannelState::kCollision : ChannelState::kSingle);
      const bool tx = rng.bernoulli(0.3);
      const Observation obs = observe_slot(state, tx, CdMode::kStrong);
      station.feedback(slot, tx, obs);
      kernel.feedback(tx, obs);
      ASSERT_EQ(kernel.p, station.p()) << "slot " << slot;
      ASSERT_EQ(kernel.threshold, station.threshold()) << "slot " << slot;
      ASSERT_EQ(kernel.done, station.done()) << "slot " << slot;
      ASSERT_EQ(kernel.leader, station.is_leader()) << "slot " << slot;
    }
  }
}

// ---------- end-to-end Monte-Carlo bit-identity ----------

void expect_outcome_eq(const TrialOutcome& a, const TrialOutcome& b,
                       const std::string& what, std::size_t trial) {
  ASSERT_EQ(a.elected, b.elected) << what << " trial " << trial;
  ASSERT_EQ(a.slots, b.slots) << what << " trial " << trial;
  ASSERT_EQ(a.jams, b.jams) << what << " trial " << trial;
  ASSERT_EQ(a.nulls, b.nulls) << what << " trial " << trial;
  ASSERT_EQ(a.singles, b.singles) << what << " trial " << trial;
  ASSERT_EQ(a.collisions, b.collisions) << what << " trial " << trial;
  ASSERT_EQ(a.transmissions, b.transmissions) << what << " trial " << trial;
  ASSERT_EQ(a.all_done, b.all_done) << what << " trial " << trial;
  ASSERT_EQ(a.unique_leader, b.unique_leader) << what << " trial " << trial;
  ASSERT_EQ(a.leader, b.leader) << what << " trial " << trial;
}

struct BaselineCase {
  const char* name;
  UniformProtocolFactory factory;
};

[[nodiscard]] std::vector<BaselineCase> baseline_factories() {
  return {
      {"willard", [] { return std::make_unique<Willard>(); }},
      {"nakano_olariu", [] { return std::make_unique<NakanoOlariu>(); }},
      {"nocd",
       [] { return std::make_unique<NoCdElection>(NoCdElectionParams{3}); }},
  };
}

TEST(BaselineKernels, AggregateBatchMatchesSequentialPerBaseline) {
  // Each baseline factory, batched through its kernel (kAuto goes wide)
  // vs the sequential per-trial reference — under a lane-invariant
  // policy (shared-wide engine) and an adaptive one (per-lane SoA
  // engine); trials not a multiple of batch, so the tail chunk runs.
  std::vector<AdversarySpec> policies;
  {
    AdversarySpec periodic;
    periodic.policy = "periodic";
    periodic.T = 32;
    periodic.eps = 0.5;
    policies.push_back(periodic);
  }
  {
    AdversarySpec forcer;
    forcer.policy = "collision_forcer";
    forcer.T = 48;
    forcer.eps = 0.375;
    forcer.collision_threshold = 0.6;
    policies.push_back(forcer);
  }
  for (const BaselineCase& c : baseline_factories()) {
    for (const AdversarySpec& adv : policies) {
      McConfig seq;
      seq.trials = 11;
      seq.seed = 0xba5eULL;
      seq.max_slots = 20000;
      seq.parallel = false;
      seq.keep_outcomes = true;
      McConfig batched = seq;
      batched.batch = 4;
      const McResult ref = run_aggregate_mc(c.factory, adv, 64, seq);
      const McResult bat = run_aggregate_mc(c.factory, adv, 64, batched);
      ASSERT_EQ(ref.outcomes.size(), bat.outcomes.size());
      for (std::size_t t = 0; t < ref.outcomes.size(); ++t) {
        expect_outcome_eq(ref.outcomes[t], bat.outcomes[t],
                          std::string(c.name) + "/" + adv.policy, t);
      }
    }
  }
}

TEST(BaselineKernels, BaselinesTakeTheBatchPathWithoutFallback) {
  if constexpr (!obs::kObsCompiledIn) {
    GTEST_SKIP() << "JAMELECT_OBS compiled out";
  }
  auto& reg = obs::MetricsRegistry::global();
  const bool was_enabled = reg.enabled();
  reg.reset();
  reg.set_enabled(true);
  AdversarySpec forcer;
  forcer.policy = "collision_forcer";
  forcer.T = 48;
  forcer.eps = 0.375;
  McConfig cfg;
  cfg.trials = 8;
  cfg.seed = 7;
  cfg.max_slots = 20000;
  cfg.parallel = false;
  cfg.batch = 4;
  for (const BaselineCase& c : baseline_factories()) {
    (void)run_aggregate_mc(c.factory, forcer, 64, cfg);
  }
  const auto snap = reg.aggregate();
  reg.set_enabled(was_enabled);
  ASSERT_TRUE(snap.counters.count("mc.batch_fallbacks"));
  EXPECT_EQ(snap.counters.at("mc.batch_fallbacks"), 0);
  EXPECT_GT(snap.counters.at("mc.batch_wide_slots"), 0);
}

TEST(BaselineKernels, StationBatchMatchesSequentialAcrossStopRules) {
  // ARSS through the devirtualized station chunks vs the sequential
  // SlotEngine: both stop rules, jamming off/invariant/adaptive, tail
  // chunk exercised. (ARSS is strong-CD only: its feedback contract
  // rejects the weak-CD kNoSingle observation.)
  const std::uint64_t n = 24;
  const auto factory = [&](StationId) -> StationProtocolPtr {
    ArssParams params;
    params.gamma = arss_gamma(n, 16);
    return std::make_unique<ArssStation>(params);
  };
  std::vector<AdversarySpec> policies;
  policies.emplace_back();  // "none"
  {
    AdversarySpec sat;
    sat.policy = "saturating";
    sat.T = 32;
    sat.eps = 0.5;
    policies.push_back(sat);
  }
  {
    AdversarySpec bern;
    bern.policy = "bernoulli";
    bern.T = 32;
    bern.eps = 0.5;
    bern.q = 0.3;
    policies.push_back(bern);
  }
  for (const StopRule stop : {StopRule::kAllDone, StopRule::kFirstSingle}) {
    for (const AdversarySpec& adv : policies) {
      const EngineConfig engine{CdMode::kStrong, stop, 30000};
      McConfig seq;
      seq.trials = 9;
      seq.seed = 0xa155ULL;
      seq.max_slots = engine.max_slots;
      seq.parallel = false;
      seq.keep_outcomes = true;
      McConfig batched = seq;
      batched.batch = 4;
      const McResult ref = run_station_mc(factory, adv, n, engine, seq);
      const McResult bat = run_station_mc(factory, adv, n, engine, batched);
      const std::string what =
          adv.policy + (stop == StopRule::kAllDone ? "/all_done"
                                                   : "/first_single");
      ASSERT_EQ(ref.outcomes.size(), bat.outcomes.size());
      for (std::size_t t = 0; t < ref.outcomes.size(); ++t) {
        expect_outcome_eq(ref.outcomes[t], bat.outcomes[t], what, t);
      }
    }
  }
}

// ---------- reason-labeled fallback counters ----------

TEST(BaselineKernels, StationFallbackReasonsAreLabeled) {
  if constexpr (!obs::kObsCompiledIn) {
    GTEST_SKIP() << "JAMELECT_OBS compiled out";
  }
  auto& reg = obs::MetricsRegistry::global();
  const bool was_enabled = reg.enabled();
  reg.reset();
  reg.set_enabled(true);

  const std::uint64_t n = 8;
  const auto arss_factory = [&](StationId) -> StationProtocolPtr {
    ArssParams params;
    params.gamma = arss_gamma(n, 16);
    return std::make_unique<ArssStation>(params);
  };
  AdversarySpec none;
  McConfig cfg;
  cfg.trials = 3;
  cfg.seed = 5;
  cfg.max_slots = 20000;
  cfg.parallel = false;
  cfg.batch = 2;

  // Observer attached: the batch path cannot replay per-slot telemetry,
  // so the whole run falls back once, labeled .observer.
  obs::VectorSink sink;
  obs::RunObserver observer(sink);
  (void)run_station_mc(arss_factory, none, n,
                       {CdMode::kStrong, StopRule::kAllDone, 20000, &observer},
                       cfg);

  // Non-kernelizable station protocol: probe fails, labeled .protocol.
  (void)run_station_mc(
      [](StationId) -> StationProtocolPtr {
        return std::make_unique<UniformStationAdapter>(
            std::make_unique<Lesk>(LeskParams{0.5, 0.0}));
      },
      none, n, {CdMode::kStrong, StopRule::kAllDone, 20000}, cfg);

  // Kernelizable run: no new fallback, station chunks counted; an
  // AES-CTR request is honoured as a backend fallback (the station path
  // only speaks xoshiro) while keeping the batch win.
  (void)run_station_mc(arss_factory, none, n,
                       {CdMode::kStrong, StopRule::kAllDone, 20000}, cfg);
  McConfig aes = cfg;
  aes.rng_backend = RngBackend::kAesCtr;
  (void)run_station_mc(arss_factory, none, n,
                       {CdMode::kStrong, StopRule::kAllDone, 20000}, aes);

  const auto snap = reg.aggregate();
  reg.set_enabled(was_enabled);
  ASSERT_TRUE(snap.counters.count("mc.batch_fallback.observer"));
  ASSERT_TRUE(snap.counters.count("mc.batch_fallback.protocol"));
  ASSERT_TRUE(snap.counters.count("mc.batch_fallback.adversary"));
  EXPECT_EQ(snap.counters.at("mc.batch_fallback.observer"), 1);
  EXPECT_EQ(snap.counters.at("mc.batch_fallback.protocol"), 1);
  // Every built-in adversary policy has a batch engine; the .adversary
  // label is a registered tombstone that must stay at zero.
  EXPECT_EQ(snap.counters.at("mc.batch_fallback.adversary"), 0);
  EXPECT_EQ(snap.counters.at("mc.batch_fallbacks"), 2);
  EXPECT_GT(snap.counters.at("engine.batch.station_chunks"), 0);
  EXPECT_GE(snap.counters.at("mc.rng_backend_fallbacks"), 1);
}

}  // namespace
}  // namespace jamelect
