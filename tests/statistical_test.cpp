// Statistical validation: empirical distributions produced by the
// simulator match their analytic targets. Tolerances are ~4-5 sigma so
// the tests are stable across platforms yet catch real modelling bugs
// (which shift frequencies by far more).
#include <gtest/gtest.h>

#include <cmath>

#include "channel/channel.hpp"
#include "protocols/lesk.hpp"
#include "sim/adversary_spec.hpp"
#include "sim/aggregate.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

TEST(Statistical, XoshiroBitBalance) {
  Xoshiro256StarStar engine(123);
  std::int64_t ones = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ones += __builtin_popcountll(engine());
  }
  const double mean_bits = static_cast<double>(ones) / kDraws;
  // 64 fair bits: sd of the mean = 4 / sqrt(draws) = 0.0126.
  EXPECT_NEAR(mean_bits, 32.0, 5 * 0.0127);
}

TEST(Statistical, XoshiroByteFrequencies) {
  Xoshiro256StarStar engine(77);
  std::array<std::int64_t, 256> counts{};
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t v = engine();
    for (int b = 0; b < 8; ++b) ++counts[(v >> (8 * b)) & 0xff];
  }
  // Chi-square against uniform over 256 cells; df = 255, mean 255,
  // sd ~ sqrt(510) ~ 22.6 -> 255 + 5 sd ~ 368.
  const double expected = kDraws * 8.0 / 256.0;
  double chi2 = 0;
  for (const auto c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 370.0);
  EXPECT_GT(chi2, 160.0);  // suspiciously-perfect is also a bug
}

// The aggregate engine's category sampler and the per-station Bernoulli
// counting must both match the analytic SlotProbabilities.
class ChannelFrequencies
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ChannelFrequencies, CategorySamplerMatchesAnalytic) {
  const auto [n, p] = GetParam();
  const auto probs = slot_probabilities(n, p);
  Rng rng(1234);
  constexpr int kDraws = 60000;
  std::int64_t nulls = 0, singles = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double r = rng.uniform();
    if (r < probs.null) ++nulls;
    else if (r < probs.null + probs.single) ++singles;
  }
  const auto tol = [&](double q) {
    return 5.0 * std::sqrt(q * (1 - q) / kDraws) + 1e-9;
  };
  EXPECT_NEAR(static_cast<double>(nulls) / kDraws, probs.null, tol(probs.null));
  EXPECT_NEAR(static_cast<double>(singles) / kDraws, probs.single,
              tol(probs.single));
}

TEST_P(ChannelFrequencies, PerStationCountingMatchesAnalytic) {
  const auto [n, p] = GetParam();
  if (n > 4096) GTEST_SKIP() << "per-station loop too slow at this n";
  const auto probs = slot_probabilities(n, p);
  Rng rng(4321);
  constexpr int kDraws = 4000;
  std::int64_t nulls = 0, singles = 0;
  for (int i = 0; i < kDraws; ++i) {
    std::uint64_t count = 0;
    for (std::uint64_t s = 0; s < n; ++s) count += rng.bernoulli(p) ? 1 : 0;
    if (count == 0) ++nulls;
    if (count == 1) ++singles;
  }
  const auto tol = [&](double q) {
    return 5.0 * std::sqrt(q * (1 - q) / kDraws) + 1e-9;
  };
  EXPECT_NEAR(static_cast<double>(nulls) / kDraws, probs.null, tol(probs.null));
  EXPECT_NEAR(static_cast<double>(singles) / kDraws, probs.single,
              tol(probs.single));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChannelFrequencies,
    ::testing::Values(std::make_tuple<std::uint64_t, double>(16, 1.0 / 16),
                      std::make_tuple<std::uint64_t, double>(256, 1.0 / 256),
                      std::make_tuple<std::uint64_t, double>(256, 1.0 / 64),
                      std::make_tuple<std::uint64_t, double>(1024, 1.0 / 4096),
                      std::make_tuple<std::uint64_t, double>(1 << 20,
                                                             1.0 / (1 << 20))));

TEST(Statistical, LeskWalkConcentratesNearLog2N) {
  // After the startup ramp, the estimate should sit within +-3 of
  // log2 n for the overwhelming majority of slots (the regular-slot
  // analysis); measure occupancy over a long no-election run.
  const std::uint64_t n = 1 << 14;
  const double u0 = 14.0;
  Lesk lesk(0.5);
  Rng rng(9);
  std::int64_t in_band = 0, total = 0;
  const std::int64_t burn_in = 16 * 14 + 64;
  for (std::int64_t slot = 0; slot < 20000; ++slot) {
    const double p = lesk.transmit_probability();
    const auto probs = slot_probabilities(n, p);
    const double r = rng.uniform();
    // Suppress election (treat Single as Collision) to keep walking —
    // we are probing the stationary distribution, not the stopping
    // time.
    const ChannelState state =
        r < probs.null ? ChannelState::kNull : ChannelState::kCollision;
    if (slot >= burn_in) {
      ++total;
      if (std::abs(lesk.u() - u0) <= 3.0) ++in_band;
    }
    lesk.observe(state);
  }
  EXPECT_GT(static_cast<double>(in_band) / static_cast<double>(total), 0.9);
}

TEST(Statistical, GoldenRegressionPins) {
  // Seeded end-to-end pins: if any of these change, simulator behaviour
  // changed — bump deliberately, never accidentally.
  Lesk lesk(0.5);
  AdversarySpec spec;
  spec.policy = "saturating";
  spec.T = 64;
  spec.eps = 0.5;
  spec.n = 1024;
  Rng rng(20260706);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  const auto out = run_aggregate(lesk, *adv, {1024, 1 << 20}, sim);
  ASSERT_TRUE(out.elected);
  EXPECT_EQ(out.slots, 142);
  EXPECT_EQ(out.jams, 70);
  EXPECT_EQ(out.nulls, 1);
}

}  // namespace
}  // namespace jamelect
