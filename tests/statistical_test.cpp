// Statistical validation: empirical distributions produced by the
// simulator match their analytic targets. Tolerances are ~4-5 sigma so
// the tests are stable across platforms yet catch real modelling bugs
// (which shift frequencies by far more).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "channel/channel.hpp"
#include "protocols/lesk.hpp"
#include "sim/adversary_spec.hpp"
#include "sim/aggregate.hpp"
#include "support/binomial.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace jamelect {
namespace {

TEST(Statistical, XoshiroBitBalance) {
  Xoshiro256StarStar engine(123);
  std::int64_t ones = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ones += __builtin_popcountll(engine());
  }
  const double mean_bits = static_cast<double>(ones) / kDraws;
  // 64 fair bits: sd of the mean = 4 / sqrt(draws) = 0.0126.
  EXPECT_NEAR(mean_bits, 32.0, 5 * 0.0127);
}

TEST(Statistical, XoshiroByteFrequencies) {
  Xoshiro256StarStar engine(77);
  std::array<std::int64_t, 256> counts{};
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t v = engine();
    for (int b = 0; b < 8; ++b) ++counts[(v >> (8 * b)) & 0xff];
  }
  // Chi-square against uniform over 256 cells; df = 255, mean 255,
  // sd ~ sqrt(510) ~ 22.6 -> 255 + 5 sd ~ 368.
  const double expected = kDraws * 8.0 / 256.0;
  double chi2 = 0;
  for (const auto c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 370.0);
  EXPECT_GT(chi2, 160.0);  // suspiciously-perfect is also a bug
}

// The aggregate engine's category sampler and the per-station Bernoulli
// counting must both match the analytic SlotProbabilities.
class ChannelFrequencies
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ChannelFrequencies, CategorySamplerMatchesAnalytic) {
  const auto [n, p] = GetParam();
  const auto probs = slot_probabilities(n, p);
  Rng rng(1234);
  constexpr int kDraws = 60000;
  std::int64_t nulls = 0, singles = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double r = rng.uniform();
    if (r < probs.null) ++nulls;
    else if (r < probs.null + probs.single) ++singles;
  }
  const auto tol = [&](double q) {
    return 5.0 * std::sqrt(q * (1 - q) / kDraws) + 1e-9;
  };
  EXPECT_NEAR(static_cast<double>(nulls) / kDraws, probs.null, tol(probs.null));
  EXPECT_NEAR(static_cast<double>(singles) / kDraws, probs.single,
              tol(probs.single));
}

TEST_P(ChannelFrequencies, PerStationCountingMatchesAnalytic) {
  const auto [n, p] = GetParam();
  if (n > 4096) GTEST_SKIP() << "per-station loop too slow at this n";
  const auto probs = slot_probabilities(n, p);
  Rng rng(4321);
  constexpr int kDraws = 4000;
  std::int64_t nulls = 0, singles = 0;
  for (int i = 0; i < kDraws; ++i) {
    std::uint64_t count = 0;
    for (std::uint64_t s = 0; s < n; ++s) count += rng.bernoulli(p) ? 1 : 0;
    if (count == 0) ++nulls;
    if (count == 1) ++singles;
  }
  const auto tol = [&](double q) {
    return 5.0 * std::sqrt(q * (1 - q) / kDraws) + 1e-9;
  };
  EXPECT_NEAR(static_cast<double>(nulls) / kDraws, probs.null, tol(probs.null));
  EXPECT_NEAR(static_cast<double>(singles) / kDraws, probs.single,
              tol(probs.single));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChannelFrequencies,
    ::testing::Values(std::make_tuple<std::uint64_t, double>(16, 1.0 / 16),
                      std::make_tuple<std::uint64_t, double>(256, 1.0 / 256),
                      std::make_tuple<std::uint64_t, double>(256, 1.0 / 64),
                      std::make_tuple<std::uint64_t, double>(1024, 1.0 / 4096),
                      std::make_tuple<std::uint64_t, double>(1 << 20,
                                                             1.0 / (1 << 20))));

// ---------- binomial sampler regimes ----------
// The cohort engine leans on binomial_sample() across wildly different
// (n, p) regimes: per-slot transmitter counts range from mean << 1
// (2^-u with u near log2 n) to mean ~ n/2 (Notification confirm/
// announce phases). Every regime must be exact — there is no normal-
// approximation fallback to hide behind.

[[nodiscard]] double binomial_log_pmf(double n, double k, double p) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
         std::lgamma(n - k + 1.0) + k * std::log(p) +
         (n - k) * std::log1p(-p);
}

// Chi-square of `draws` samples against the exact pmf over cells
// [lo, hi] with everything outside lumped into one tail cell.
[[nodiscard]] double binomial_chi2(std::uint64_t n, double p,
                                   std::uint64_t lo, std::uint64_t hi,
                                   int draws, Rng& rng) {
  std::vector<std::int64_t> counts(hi - lo + 1, 0);
  std::int64_t outside = 0;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t k = binomial_sample(n, p, rng);
    if (k < lo || k > hi) {
      ++outside;
    } else {
      ++counts[k - lo];
    }
  }
  double chi2 = 0.0;
  double covered = 0.0;
  for (std::uint64_t k = lo; k <= hi; ++k) {
    const double q = std::exp(binomial_log_pmf(
        static_cast<double>(n), static_cast<double>(k), p));
    covered += q;
    const double expected = q * draws;
    const double d = static_cast<double>(counts[k - lo]) - expected;
    chi2 += d * d / expected;
  }
  const double tail_expected = (1.0 - covered) * draws;
  if (tail_expected > 1.0) {
    const double d = static_cast<double>(outside) - tail_expected;
    chi2 += d * d / tail_expected;
  }
  return chi2;
}

TEST(BinomialRegimes, BtpeModerateMeanMatchesExactPmf) {
  // n = 512, p = 1/4: mean 128 > 30 and n > 128 -> BTPE path.
  Rng rng(2024);
  const std::uint64_t n = 512;
  const double p = 0.25;
  const double sd = std::sqrt(static_cast<double>(n) * p * (1 - p));  // ~9.8
  const auto lo = static_cast<std::uint64_t>(128.0 - 4.0 * sd);
  const auto hi = static_cast<std::uint64_t>(128.0 + 4.0 * sd);
  const double chi2 = binomial_chi2(n, p, lo, hi, 60000, rng);
  // df ~ cells ~ 80: mean 80, sd sqrt(160) ~ 12.6 -> 80 + 5 sd ~ 145.
  const double df = static_cast<double>(hi - lo + 1);
  EXPECT_LT(chi2, df + 5.0 * std::sqrt(2.0 * df));
}

TEST(BinomialRegimes, InversionSmallMeanLargeNMatchesExactPmf) {
  // n = 1024 > 128 but mean = 4 <= 30 -> inversion path.
  Rng rng(2025);
  const std::uint64_t n = 1024;
  const double p = 4.0 / 1024.0;
  const double chi2 = binomial_chi2(n, p, 0, 16, 60000, rng);
  const double df = 17.0;
  EXPECT_LT(chi2, df + 5.0 * std::sqrt(2.0 * df));
}

TEST(BinomialRegimes, HugeMeanMomentsMatch) {
  // n = 2^31, p = 1/2: mean ~ 10^9, far above any approximation
  // threshold — BTPE must stay exact (and O(1)) out here.
  Rng rng(2026);
  const std::uint64_t n = std::uint64_t{1} << 31;
  const double p = 0.5;
  OnlineStats stats;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    stats.add(static_cast<double>(binomial_sample(n, p, rng)));
  }
  const double mean = static_cast<double>(n) * p;
  const double var = mean * (1 - p);
  const double se_mean = std::sqrt(var / kDraws);
  EXPECT_NEAR(stats.mean(), mean, 5.0 * se_mean);
  // Sample variance: relative sd ~ sqrt(2/N) ~ 0.7%; allow 5 of those.
  EXPECT_NEAR(stats.variance() / var, 1.0, 0.05);
}

TEST(BinomialRegimes, PNearOneReflects) {
  // p = 1 - 2^-20 with n = 2^20: the sampler must reflect through
  // k -> n - k and draw the complement's mean-1 law exactly.
  Rng rng(2027);
  const std::uint64_t n = std::uint64_t{1} << 20;
  const double p = 1.0 - 1.0 / static_cast<double>(n);
  OnlineStats deficit;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t k = binomial_sample(n, p, rng);
    ASSERT_LE(k, n);
    deficit.add(static_cast<double>(n - k));
  }
  // n - k ~ Binomial(n, 1/n): mean 1, variance ~ 1.
  EXPECT_NEAR(deficit.mean(), 1.0, 5.0 / std::sqrt(kDraws));
}

TEST(BinomialRegimes, PNearZeroHugeN) {
  // n = 2^40 with mean 8: the inversion path must hold up when n
  // dwarfs 2^32 (counts fit easily, probabilities are tiny).
  Rng rng(2028);
  const std::uint64_t n = std::uint64_t{1} << 40;
  const double p = 8.0 / static_cast<double>(n);
  OnlineStats stats;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    stats.add(static_cast<double>(binomial_sample(n, p, rng)));
  }
  const double se_mean = std::sqrt(8.0 / kDraws);
  EXPECT_NEAR(stats.mean(), 8.0, 5.0 * se_mean);
}

TEST(Statistical, LeskWalkConcentratesNearLog2N) {
  // After the startup ramp, the estimate should sit within +-3 of
  // log2 n for the overwhelming majority of slots (the regular-slot
  // analysis); measure occupancy over a long no-election run.
  const std::uint64_t n = 1 << 14;
  const double u0 = 14.0;
  Lesk lesk(0.5);
  Rng rng(9);
  std::int64_t in_band = 0, total = 0;
  const std::int64_t burn_in = 16 * 14 + 64;
  for (std::int64_t slot = 0; slot < 20000; ++slot) {
    const double p = lesk.transmit_probability();
    const auto probs = slot_probabilities(n, p);
    const double r = rng.uniform();
    // Suppress election (treat Single as Collision) to keep walking —
    // we are probing the stationary distribution, not the stopping
    // time.
    const ChannelState state =
        r < probs.null ? ChannelState::kNull : ChannelState::kCollision;
    if (slot >= burn_in) {
      ++total;
      if (std::abs(lesk.u() - u0) <= 3.0) ++in_band;
    }
    lesk.observe(state);
  }
  EXPECT_GT(static_cast<double>(in_band) / static_cast<double>(total), 0.9);
}

TEST(Statistical, GoldenRegressionPins) {
  // Seeded end-to-end pins: if any of these change, simulator behaviour
  // changed — bump deliberately, never accidentally.
  Lesk lesk(0.5);
  AdversarySpec spec;
  spec.policy = "saturating";
  spec.T = 64;
  spec.eps = 0.5;
  spec.n = 1024;
  Rng rng(20260706);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  const auto out = run_aggregate(lesk, *adv, {1024, 1 << 20}, sim);
  ASSERT_TRUE(out.elected);
  EXPECT_EQ(out.slots, 142);
  EXPECT_EQ(out.jams, 70);
  EXPECT_EQ(out.nulls, 1);
}

}  // namespace
}  // namespace jamelect
