#include "obs/prof.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/span.hpp"
#include "protocols/lesk.hpp"
#include "sim/montecarlo.hpp"

namespace jamelect::obs {
namespace {

// ---------------------------------------------------------------------------
// TraceId

TEST(TraceId, DefaultIsInvalid) {
  TraceId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.hex(), std::string(32, '0'));
}

TEST(TraceId, HexParseRoundtrip) {
  const TraceId id{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  const std::string hex = id.hex();
  EXPECT_EQ(hex.size(), 32u);
  EXPECT_EQ(hex, "0123456789abcdeffedcba9876543210");
  const TraceId back = TraceId::parse(hex);
  EXPECT_TRUE(back.valid());
  EXPECT_EQ(back, id);
}

TEST(TraceId, ParseRejectsMalformedInput) {
  EXPECT_FALSE(TraceId::parse("").valid());
  EXPECT_FALSE(TraceId::parse("abc").valid());
  EXPECT_FALSE(TraceId::parse(std::string(31, 'a')).valid());
  EXPECT_FALSE(TraceId::parse(std::string(33, 'a')).valid());
  // Right length, wrong alphabet.
  std::string bad(32, 'a');
  bad[7] = 'g';
  EXPECT_FALSE(TraceId::parse(bad).valid());
  // All-zero parses to the invalid id (zero means "untraced").
  EXPECT_FALSE(TraceId::parse(std::string(32, '0')).valid());
}

TEST(TraceId, DeriveIsDeterministicOrderSensitiveAndNeverInvalid) {
  const TraceId a = TraceId::derive(7, 11);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a, TraceId::derive(7, 11));
  EXPECT_NE(a, TraceId::derive(11, 7));
  EXPECT_TRUE(TraceId::derive(0, 0).valid());
}

TEST(TraceId, ScopedTraceSetsAndRestores) {
  EXPECT_FALSE(current_trace().valid());
  const TraceId outer = TraceId::derive(1, 2);
  {
    const ScopedTrace s1(outer);
    EXPECT_EQ(current_trace(), outer);
    const TraceId inner = TraceId::derive(3, 4);
    {
      const ScopedTrace s2(inner);
      EXPECT_EQ(current_trace(), inner);
    }
    EXPECT_EQ(current_trace(), outer);
  }
  EXPECT_FALSE(current_trace().valid());
}

TEST(TraceId, ScopedTraceIsPerThread) {
  const ScopedTrace scoped(TraceId::derive(5, 6));
  TraceId seen = TraceId::derive(9, 9);  // sentinel: must be overwritten
  std::thread other([&] { seen = current_trace(); });
  other.join();
  EXPECT_FALSE(seen.valid());  // fresh thread starts untraced
}

// ---------------------------------------------------------------------------
// SpanRing

SpanRecord make_span(const char* name, std::int64_t ts) {
  SpanRecord rec;
  rec.name = name;
  rec.ts_us = ts;
  rec.dur_us = 1;
  return rec;
}

TEST(SpanRing, HoldsRecordsBelowCapacity) {
  SpanRing ring(8);
  ring.push(make_span("a", 0));
  ring.push(make_span("b", 1));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.pushed(), 2u);
  EXPECT_EQ(ring.overwritten(), 0u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_STREQ(snap[0].name, "a");
  EXPECT_STREQ(snap[1].name, "b");
}

TEST(SpanRing, OverflowOverwritesOldestFirst) {
  SpanRing ring(4);
  for (std::int64_t i = 0; i < 10; ++i) ring.push(make_span("s", i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.overwritten(), 6u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest-first snapshot of the last four pushes: ts 6, 7, 8, 9.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].ts_us, static_cast<std::int64_t>(6 + i));
  }
}

TEST(SpanRing, WraparoundIsStableOverManyGenerations) {
  SpanRing ring(3);
  for (std::int64_t i = 0; i < 1000; ++i) ring.push(make_span("s", i));
  EXPECT_EQ(ring.pushed(), 1000u);
  EXPECT_EQ(ring.overwritten(), 997u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].ts_us, 997);
  EXPECT_EQ(snap[2].ts_us, 999);
}

TEST(SpanRing, ClearResetsCountsAndContents) {
  SpanRing ring(2);
  ring.push(make_span("a", 0));
  ring.push(make_span("b", 1));
  ring.push(make_span("c", 2));
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.pushed(), 0u);
  EXPECT_EQ(ring.overwritten(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

// ---------------------------------------------------------------------------
// Span JSON / FlightRecorder

TEST(SpanJson, EmitsAllFieldsAndOmitsEmptyOnes) {
  SpanRecord rec;
  rec.name = "svc.compute";
  rec.phase = "compute";
  rec.tid = 3;
  rec.ts_us = 12;
  rec.dur_us = 34;
  rec.trace = TraceId::derive(1, 2);
  std::string line;
  append_span_json(line, rec);
  EXPECT_NE(line.find("\"ev\":\"span\""), std::string::npos);
  EXPECT_NE(line.find("\"name\":\"svc.compute\""), std::string::npos);
  EXPECT_NE(line.find("\"phase\":\"compute\""), std::string::npos);
  EXPECT_NE(line.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(line.find("\"ts_us\":12"), std::string::npos);
  EXPECT_NE(line.find("\"dur_us\":34"), std::string::npos);
  EXPECT_NE(line.find("\"trace\":\"" + rec.trace.hex() + "\""),
            std::string::npos);

  SpanRecord bare;
  bare.name = "x";
  std::string bare_line;
  append_span_json(bare_line, bare);
  EXPECT_EQ(bare_line.find("\"phase\""), std::string::npos);
  EXPECT_EQ(bare_line.find("\"trace\""), std::string::npos);
}

TEST(FlightRecorder, WriteNdjsonEmitsSpansThenSummary) {
  FlightRecorder flight(8);
  const ScopedTrace scoped(TraceId::derive(21, 42));
  flight.record("svc.admission", "admission", 0, 5);
  flight.record("svc.compute", "compute", 5, 100);
  std::ostringstream out;
  flight.write_ndjson(out);
  const std::string text = out.str();
  // Two span lines then the flight summary, newline-terminated.
  EXPECT_NE(text.find("\"ev\":\"span\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"svc.admission\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"svc.compute\""), std::string::npos);
  // record() defaults the trace to the thread's current one.
  EXPECT_NE(text.find(TraceId::derive(21, 42).hex()), std::string::npos);
  const auto summary_at =
      text.find("{\"ev\":\"flight\",\"pushed\":2,\"overwritten\":0,\"capacity\":8}");
  ASSERT_NE(summary_at, std::string::npos);
  EXPECT_GT(summary_at, text.rfind("\"ev\":\"span\""));
  EXPECT_EQ(text.back(), '\n');
}

TEST(FlightRecorder, DumpWritesTimestampedFile) {
  FlightRecorder flight(4);
  flight.record("dump_me", "", 0, 1);
  const std::string path = flight.dump("/tmp/jamelect-flight-test");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.rfind("/tmp/jamelect-flight-test-", 0), 0u);
  EXPECT_NE(path.find(".ndjson"), std::string::npos);
  std::FILE* fh = std::fopen(path.c_str(), "rb");
  ASSERT_NE(fh, nullptr);
  std::fclose(fh);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// PhaseProfiler / PhaseAccumulator

TEST(PhaseProfiler, PhaseAndCounterNamesAreStable) {
  EXPECT_STREQ(phase_name(Phase::kRng), "rng");
  EXPECT_STREQ(phase_name(Phase::kClassify), "classify");
  EXPECT_STREQ(phase_name(Phase::kCacheLookup), "cache_lookup");
  EXPECT_STREQ(phase_name(Phase::kLatticeUpdate), "lattice_update");
  EXPECT_STREQ(phase_name(Phase::kMerge), "merge");
  EXPECT_STREQ(phase_name(Phase::kStealWait), "steal_wait");
  EXPECT_STREQ(phase_name(Phase::kIdle), "idle");
  EXPECT_STREQ(phase_name(Phase::kAdmission), "admission");
  EXPECT_STREQ(phase_name(Phase::kQueueWait), "queue_wait");
  EXPECT_STREQ(phase_name(Phase::kCacheProbe), "cache_probe");
  EXPECT_STREQ(phase_name(Phase::kCompute), "compute");
  EXPECT_STREQ(phase_name(Phase::kSerialize), "serialize");
  EXPECT_STREQ(phase_name(Phase::kRespond), "respond");
  EXPECT_STREQ(prof_counter_name(ProfCounter::kCacheLookups), "cache_lookups");
  EXPECT_STREQ(prof_counter_name(ProfCounter::kCacheHits), "cache_hits");
}

TEST(PhaseProfiler, RecordAggregatesAndResetZeroes) {
  PhaseProfiler prof;
  prof.set_enabled(true);
  prof.record(Phase::kClassify, 100, 2);
  prof.record(Phase::kClassify, 50, 1);
  prof.record(Phase::kMerge, 7);
  prof.count(ProfCounter::kCacheLookups, 10);
  prof.count(ProfCounter::kCacheHits, 9);
  const auto snap = prof.snapshot();
  const auto classify = static_cast<std::size_t>(Phase::kClassify);
  const auto merge = static_cast<std::size_t>(Phase::kMerge);
  EXPECT_EQ(snap.total.ns[classify], 150);
  EXPECT_EQ(snap.total.calls[classify], 3);
  EXPECT_EQ(snap.total.ns[merge], 7);
  EXPECT_EQ(
      snap.total.counters[static_cast<std::size_t>(ProfCounter::kCacheLookups)],
      10);
  prof.reset();
  const auto zeroed = prof.snapshot();
  EXPECT_EQ(zeroed.total.ns[classify], 0);
  EXPECT_EQ(zeroed.total.calls[classify], 0);
}

TEST(PhaseProfiler, SnapshotSeparatesThreads) {
  PhaseProfiler prof;
  prof.set_enabled(true);
  const auto rng = static_cast<std::size_t>(Phase::kRng);
  prof.record(Phase::kRng, 11);
  std::thread other([&] { prof.record(Phase::kRng, 31); });
  other.join();
  const auto snap = prof.snapshot();
  EXPECT_EQ(snap.total.ns[rng], 42);
  // One slab per writer thread; each holds exactly its own share.
  std::vector<std::int64_t> shares;
  for (const auto& t : snap.threads) {
    if (t.ns[rng] != 0) shares.push_back(t.ns[rng]);
  }
  std::sort(shares.begin(), shares.end());
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_EQ(shares[0], 11);
  EXPECT_EQ(shares[1], 31);
}

TEST(PhaseAccumulator, StitchedSectionsFlushToProfiler) {
  PhaseProfiler prof;
  prof.set_enabled(true);
  {
    PhaseAccumulator acc(prof);
    ASSERT_EQ(acc.on(), kObsCompiledIn);
    acc.start();
    acc.stop(Phase::kCacheLookup);
    acc.stop(Phase::kClassify);  // stitched: starts where the last stopped
    acc.add(Phase::kMerge, 1234, 2);
    acc.count(ProfCounter::kChunks, 1);
  }  // destructor flushes
  const auto snap = prof.snapshot();
  if constexpr (kObsCompiledIn) {
    EXPECT_EQ(snap.total.calls[static_cast<std::size_t>(Phase::kCacheLookup)],
              1);
    EXPECT_EQ(snap.total.calls[static_cast<std::size_t>(Phase::kClassify)], 1);
    EXPECT_GE(snap.total.ns[static_cast<std::size_t>(Phase::kClassify)], 0);
    EXPECT_EQ(snap.total.ns[static_cast<std::size_t>(Phase::kMerge)], 1234);
    EXPECT_EQ(snap.total.calls[static_cast<std::size_t>(Phase::kMerge)], 2);
    EXPECT_EQ(
        snap.total.counters[static_cast<std::size_t>(ProfCounter::kChunks)], 1);
  } else {
    EXPECT_EQ(snap.total.ns[static_cast<std::size_t>(Phase::kMerge)], 0);
  }
}

TEST(PhaseAccumulator, DisabledProfilerRecordsNothing) {
  PhaseProfiler prof;  // enabled() defaults to false
  {
    PhaseAccumulator acc(prof);
    EXPECT_FALSE(acc.on());
    acc.start();
    acc.stop(Phase::kClassify);
    acc.add(Phase::kMerge, 999);
  }
  const auto snap = prof.snapshot();
  EXPECT_EQ(snap.total.ns[static_cast<std::size_t>(Phase::kMerge)], 0);
  EXPECT_EQ(snap.total.calls[static_cast<std::size_t>(Phase::kClassify)], 0);
}

// ---------------------------------------------------------------------------
// Reproducibility and overhead contracts

McConfig prof_test_config() {
  McConfig config;
  config.trials = 64;
  config.seed = 23;
  config.max_slots = 1 << 12;
  config.batch = 16;
  config.batch_lanes = BatchLaneMode::kWide;
  config.parallel = false;
  config.keep_outcomes = true;
  return config;
}

McResult run_prof_workload() {
  AdversarySpec spec;
  spec.policy = "saturating";
  spec.T = 32;
  spec.eps = 0.5;
  return run_aggregate_mc([] { return std::make_unique<Lesk>(0.5); }, spec,
                          256, prof_test_config());
}

TEST(ProfilerContract, TrialOutcomesBitIdenticalProfilingOnOrOff) {
  auto& prof = PhaseProfiler::global();
  const bool was_enabled = prof.enabled();

  prof.set_enabled(false);
  const McResult off = run_prof_workload();
  prof.set_enabled(true);
  const McResult on = run_prof_workload();
  prof.set_enabled(was_enabled);

  ASSERT_EQ(off.trials, on.trials);
  ASSERT_EQ(off.outcomes.size(), on.outcomes.size());
  for (std::size_t i = 0; i < off.outcomes.size(); ++i) {
    EXPECT_EQ(off.outcomes[i].elected, on.outcomes[i].elected) << "trial " << i;
    EXPECT_EQ(off.outcomes[i].slots, on.outcomes[i].slots) << "trial " << i;
    EXPECT_EQ(off.outcomes[i].jams, on.outcomes[i].jams) << "trial " << i;
    EXPECT_EQ(off.outcomes[i].transmissions, on.outcomes[i].transmissions)
        << "trial " << i;
  }
}

TEST(ProfilerContract, EnabledOverheadIsBounded) {
  // Interleaved A/B min-of-k: the cheapest observed run with profiling
  // on must not dwarf the cheapest with it off. The bound is deliberately
  // generous (3x + 50ms absolute slack) — this is a tripwire for
  // accidentally putting a syscall or lock on the per-slot path, not a
  // precision benchmark; CI machines are noisy and Debug builds slow.
  auto& prof = PhaseProfiler::global();
  const bool was_enabled = prof.enabled();
  using Clock = std::chrono::steady_clock;

  constexpr int kRounds = 5;
  std::int64_t best_off = std::numeric_limits<std::int64_t>::max();
  std::int64_t best_on = best_off;
  for (int round = 0; round < kRounds; ++round) {
    prof.set_enabled(false);
    auto t0 = Clock::now();
    const McResult off = run_prof_workload();
    best_off = std::min<std::int64_t>(
        best_off, std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - t0)
                      .count());
    ASSERT_EQ(off.trials, 64u);

    prof.set_enabled(true);
    t0 = Clock::now();
    const McResult on = run_prof_workload();
    best_on = std::min<std::int64_t>(
        best_on, std::chrono::duration_cast<std::chrono::microseconds>(
                     Clock::now() - t0)
                     .count());
    ASSERT_EQ(on.trials, 64u);
  }
  prof.set_enabled(was_enabled);
  EXPECT_LE(best_on, best_off * 3 + 50000)
      << "profiling-on min " << best_on << "us vs off min " << best_off << "us";
}

}  // namespace
}  // namespace jamelect::obs
