#include "sim/hybrid.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include <memory>

#include "protocols/lesk.hpp"
#include "protocols/lesu.hpp"
#include "sim/adversary_spec.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

UniformProtocolFactory lesk_factory(double eps = 0.5) {
  return [eps] { return std::make_unique<Lesk>(eps); };
}

TrialOutcome run_lewk(std::uint64_t n, const AdversarySpec& spec,
                      std::uint64_t seed, std::int64_t max_slots,
                      Trace* trace = nullptr) {
  Rng rng(seed);
  AdversarySpec s = spec;
  s.n = n;
  auto adv = make_adversary(s, rng.child(1));
  Rng sim = rng.child(2);
  return run_hybrid_notification(lesk_factory(), *adv, {n, max_slots}, sim,
                                 trace);
}

TEST(Hybrid, RequiresAtLeastThreeStations) {
  Rng rng(1);
  auto adv = make_adversary(AdversarySpec{}, rng.child(1));
  Rng sim = rng.child(2);
  EXPECT_THROW(
      (void)run_hybrid_notification(lesk_factory(), *adv, {2, 100}, sim),
      ContractViolation);
}

TEST(Hybrid, ElectsWithoutAdversary) {
  for (std::uint64_t n : {3ULL, 4ULL, 16ULL, 1024ULL, 1ULL << 16}) {
    const auto out = run_lewk(n, AdversarySpec{}, 100 + n, 1 << 20);
    EXPECT_TRUE(out.elected) << "n=" << n;
    EXPECT_TRUE(out.unique_leader) << "n=" << n;
    EXPECT_TRUE(out.all_done) << "n=" << n;
  }
}

TEST(Hybrid, ElectsUnderSaturatingAdversary) {
  AdversarySpec spec;
  spec.policy = "saturating";
  spec.T = 64;
  spec.eps = 0.5;
  for (std::uint64_t n : {3ULL, 64ULL, 4096ULL}) {
    const auto out = run_lewk(n, spec, 300 + n, 1 << 22);
    EXPECT_TRUE(out.elected) << "n=" << n;
    EXPECT_GT(out.jams, 0) << "n=" << n;
  }
}

TEST(Hybrid, ElectsUnderPeriodicAndBernoulli) {
  AdversarySpec periodic;
  periodic.policy = "periodic";
  periodic.T = 128;
  periodic.eps = 0.5;
  EXPECT_TRUE(run_lewk(256, periodic, 11, 1 << 21).elected);

  AdversarySpec bern;
  bern.policy = "bernoulli";
  bern.T = 64;
  bern.eps = 0.5;
  EXPECT_TRUE(run_lewk(256, bern, 13, 1 << 21).elected);
}

TEST(Hybrid, NeedsAtLeastThreeSinglesToFinish) {
  // The Notification handshake produces Singles in C1, C2 and C3.
  Trace trace;
  const auto out = run_lewk(64, AdversarySpec{}, 17, 1 << 20, &trace);
  ASSERT_TRUE(out.elected);
  EXPECT_GE(out.singles, 3);
  // And terminates on a C1 Null after the C3 Single.
  const auto& last = trace.records().back();
  EXPECT_EQ(last.state, ChannelState::kNull);
}

TEST(Hybrid, DeterministicBySeed) {
  const auto a = run_lewk(128, AdversarySpec{}, 999, 1 << 20);
  const auto b = run_lewk(128, AdversarySpec{}, 999, 1 << 20);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.singles, b.singles);
  EXPECT_EQ(a.nulls, b.nulls);
}

TEST(Hybrid, WorksWithLesuInner) {
  // LEWU at aggregate scale: Notification wrapping LESU.
  const UniformProtocolFactory factory = [] {
    return std::make_unique<Lesu>();
  };
  AdversarySpec spec;
  spec.policy = "saturating";
  spec.T = 64;
  spec.eps = 0.5;
  spec.n = 1024;
  Rng rng(23);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  const auto out =
      run_hybrid_notification(factory, *adv, {1024, 1 << 23}, sim);
  EXPECT_TRUE(out.elected);
}

TEST(Hybrid, BudgetExhaustionReportsFailure) {
  const auto out = run_lewk(1 << 14, AdversarySpec{}, 31, 16);
  EXPECT_FALSE(out.elected);
  EXPECT_EQ(out.slots, 16);
}

}  // namespace
}  // namespace jamelect
