// Cross-engine validation: the O(1)-per-slot aggregate and hybrid
// engines must agree in distribution with the exact per-station engine.
// We compare means of slots-to-elect over many seeded trials; the
// tolerance is several standard errors wide to keep the test stable
// while still catching systematic modelling errors (which shift means
// by far more).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "protocols/lesk.hpp"
#include "protocols/lesu.hpp"
#include "protocols/lewk.hpp"
#include "protocols/lewu.hpp"
#include "protocols/uniform_station.hpp"
#include "sim/montecarlo.hpp"
#include "support/stats.hpp"

namespace jamelect {
namespace {

constexpr std::size_t kTrials = 300;

McConfig mc(std::uint64_t seed, std::int64_t max_slots) {
  McConfig c;
  c.trials = kTrials;
  c.seed = seed;
  c.max_slots = max_slots;
  return c;
}

void expect_means_compatible(const Summary& a, const Summary& b) {
  // Two-sample z-ish test with a generous 5-sigma band.
  const double se = std::sqrt(a.stddev * a.stddev / static_cast<double>(a.count) +
                              b.stddev * b.stddev / static_cast<double>(b.count));
  EXPECT_LT(std::abs(a.mean - b.mean), 5.0 * se + 0.05 * (a.mean + b.mean))
      << "a=" << a.mean << " b=" << b.mean << " se=" << se;
}

class EngineEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineEquivalence, AggregateMatchesPerStationLeskStrongCd) {
  const std::uint64_t n = GetParam();
  const UniformProtocolFactory uniform = [] {
    return std::make_unique<Lesk>(0.5);
  };
  AdversarySpec none;
  const auto agg = run_aggregate_mc(uniform, none, n, mc(42, 100000));
  const auto per = run_station_mc(
      [](StationId) -> StationProtocolPtr {
        return std::make_unique<UniformStationAdapter>(
            std::make_unique<Lesk>(0.5));
      },
      none, n, {CdMode::kStrong, StopRule::kAllDone, 100000}, mc(43, 100000));
  EXPECT_EQ(agg.successes, kTrials);
  EXPECT_EQ(per.successes, kTrials);
  expect_means_compatible(agg.slots, per.slots);
}

TEST_P(EngineEquivalence, AggregateMatchesPerStationUnderJamming) {
  const std::uint64_t n = GetParam();
  const UniformProtocolFactory uniform = [] {
    return std::make_unique<Lesk>(0.5);
  };
  AdversarySpec sat;
  sat.policy = "saturating";
  sat.T = 32;
  sat.eps = 0.5;
  const auto agg = run_aggregate_mc(uniform, sat, n, mc(52, 200000));
  const auto per = run_station_mc(
      [](StationId) -> StationProtocolPtr {
        return std::make_unique<UniformStationAdapter>(
            std::make_unique<Lesk>(0.5));
      },
      sat, n, {CdMode::kStrong, StopRule::kAllDone, 200000}, mc(53, 200000));
  EXPECT_EQ(agg.successes, kTrials);
  EXPECT_EQ(per.successes, kTrials);
  expect_means_compatible(agg.slots, per.slots);
}

TEST_P(EngineEquivalence, HybridMatchesPerStationNotification) {
  const std::uint64_t n = GetParam();
  const UniformProtocolFactory uniform = [] {
    return std::make_unique<Lesk>(0.5);
  };
  AdversarySpec none;
  const auto hybrid = run_hybrid_mc(uniform, none, n, mc(62, 1 << 20));
  const auto per = run_station_mc(
      [](StationId) -> StationProtocolPtr { return make_lewk_station(0.5); },
      none, n, {CdMode::kWeak, StopRule::kAllDone, 1 << 20}, mc(63, 1 << 20));
  EXPECT_EQ(hybrid.successes, kTrials);
  EXPECT_EQ(per.successes, kTrials);
  expect_means_compatible(hybrid.slots, per.slots);
}

TEST_P(EngineEquivalence, HybridMatchesPerStationNotificationJammed) {
  const std::uint64_t n = GetParam();
  const UniformProtocolFactory uniform = [] {
    return std::make_unique<Lesk>(0.5);
  };
  AdversarySpec sat;
  sat.policy = "saturating";
  sat.T = 32;
  sat.eps = 0.5;
  const auto hybrid = run_hybrid_mc(uniform, sat, n, mc(72, 1 << 21));
  const auto per = run_station_mc(
      [](StationId) -> StationProtocolPtr { return make_lewk_station(0.5); },
      sat, n, {CdMode::kWeak, StopRule::kAllDone, 1 << 21}, mc(73, 1 << 21));
  EXPECT_EQ(hybrid.successes, kTrials);
  EXPECT_EQ(per.successes, kTrials);
  expect_means_compatible(hybrid.slots, per.slots);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EngineEquivalence,
                         ::testing::Values<std::uint64_t>(3, 8, 32, 128));

// The same cross-checks with LESU as the protocol (Estimation phase
// included), at one representative size each.
TEST(EngineEquivalenceLesu, AggregateMatchesPerStationStrongCd) {
  const std::uint64_t n = 64;
  const UniformProtocolFactory uniform = [] {
    return std::make_unique<Lesu>();
  };
  AdversarySpec sat;
  sat.policy = "saturating";
  sat.T = 32;
  sat.eps = 0.5;
  const auto agg = run_aggregate_mc(uniform, sat, n, mc(82, 1 << 20));
  const auto per = run_station_mc(
      [](StationId) -> StationProtocolPtr {
        return std::make_unique<UniformStationAdapter>(
            std::make_unique<Lesu>());
      },
      sat, n, {CdMode::kStrong, StopRule::kAllDone, 1 << 20}, mc(83, 1 << 20));
  EXPECT_EQ(agg.successes, kTrials);
  EXPECT_EQ(per.successes, kTrials);
  expect_means_compatible(agg.slots, per.slots);
}

TEST(EngineEquivalenceLesu, HybridMatchesPerStationLewu) {
  const std::uint64_t n = 16;
  const UniformProtocolFactory uniform = [] {
    return std::make_unique<Lesu>();
  };
  AdversarySpec none;
  const auto hybrid = run_hybrid_mc(uniform, none, n, mc(92, 1 << 21));
  const auto per = run_station_mc(
      [](StationId) -> StationProtocolPtr { return make_lewu_station(); },
      none, n, {CdMode::kWeak, StopRule::kAllDone, 1 << 21}, mc(93, 1 << 21));
  EXPECT_EQ(hybrid.successes, kTrials);
  EXPECT_EQ(per.successes, kTrials);
  expect_means_compatible(hybrid.slots, per.slots);
}

}  // namespace
}  // namespace jamelect
