#include "baselines/nocd_election.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include <cmath>

#include "adversary/policies.hpp"
#include "protocols/lesk.hpp"
#include "sim/adversary_spec.hpp"
#include "sim/aggregate.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

TEST(NoCdElection, RejectsBadParams) {
  EXPECT_THROW(NoCdElection bad({0}), ContractViolation);
}

TEST(NoCdElection, SweepSchedule) {
  NoCdElection p({2});  // 2 repetitions per exponent
  EXPECT_EQ(p.epoch(), 1);
  EXPECT_EQ(p.u(), 1);
  EXPECT_DOUBLE_EQ(p.transmit_probability(), 0.5);
  p.observe(ChannelState::kCollision);
  EXPECT_EQ(p.u(), 1);  // first repetition consumed
  p.observe(ChannelState::kCollision);
  EXPECT_EQ(p.u(), 2);  // second repetition -> next exponent
  p.observe(ChannelState::kCollision);
  p.observe(ChannelState::kCollision);
  // Epoch 1 caps u at 2^1 = 2 -> epoch 2, restart at u = 1.
  EXPECT_EQ(p.epoch(), 2);
  EXPECT_EQ(p.u(), 1);
}

TEST(NoCdElection, NullAndCollisionAreIndistinguishable) {
  // The no-CD contract: the protocol's trajectory may depend only on
  // the Single/not-Single distinction.
  NoCdElection a({3}), b({3});
  for (int i = 0; i < 50; ++i) {
    a.observe(ChannelState::kNull);
    b.observe(ChannelState::kCollision);
    ASSERT_EQ(a.u(), b.u()) << i;
    ASSERT_EQ(a.epoch(), b.epoch()) << i;
    ASSERT_DOUBLE_EQ(a.transmit_probability(), b.transmit_probability()) << i;
  }
}

TEST(NoCdElection, SingleElects) {
  NoCdElection p;
  p.observe(ChannelState::kCollision);
  p.observe(ChannelState::kSingle);
  EXPECT_TRUE(p.elected());
  EXPECT_DOUBLE_EQ(p.transmit_probability(), 0.0);
}

TrialOutcome run_nocd(std::uint64_t n, const std::string& policy,
                      std::uint64_t seed, std::int64_t max_slots) {
  NoCdElection p({4});
  AdversarySpec spec;
  spec.policy = policy;
  spec.T = 64;
  spec.eps = 0.25;
  spec.n = n;
  Rng rng(seed);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  return run_aggregate(p, *adv, {n, max_slots}, sim);
}

TEST(NoCdElection, ElectsInLogSquaredWithoutAdversary) {
  for (std::uint64_t n : {64ULL, 4096ULL, 1ULL << 16}) {
    const auto out = run_nocd(n, "none", 31 + n, 100000);
    EXPECT_TRUE(out.elected) << n;
    const double log2n = std::log2(static_cast<double>(n));
    EXPECT_LT(static_cast<double>(out.slots), 24.0 * log2n * log2n) << n;
  }
}

TEST(NoCdElection, SurvivesObliviousJamming) {
  // Random-ish jamming alone does not kill the sweep: the unjammed
  // quarter of the sweet-window slots still yields Singles.
  const auto out = run_nocd(4096, "saturating", 100, 50000);
  EXPECT_TRUE(out.elected);
}

TEST(NoCdElection, DeniedForeverByProtocolAwareAdversary) {
  // The paper's §4 open problem, demonstrated: the sweep's transmit
  // probability is a deterministic function of the slot index (before
  // the first Single every observation advances it identically), so an
  // adversary mirroring the protocol can jam exactly the slots with
  // non-negligible Single probability. Within the (T, 1-eps) budget it
  // ices the sweet window of EVERY pass — the election never completes.
  const std::uint64_t n = 4096;
  std::size_t failures = 0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    NoCdElection protocol({4});
    BoundedAdversary adv(
        64, EpsRatio::from_double(0.25),
        std::make_unique<OracleDenialPolicy>(
            std::make_unique<NoCdElection>(NoCdElectionParams{4}), n, 1e-5));
    Rng rng(700 + seed);
    Rng sim = rng.child(2);
    const auto out = run_aggregate(protocol, adv, {n, 100000}, sim);
    failures += out.elected ? 0 : 1;
  }
  EXPECT_GE(failures, 3u);
}

TEST(NoCdElection, LeskResistsTheSameOracleAdversary) {
  // The contrast that IS the paper: the identical oracle-denial attack
  // cannot stop LESK, because denying Singles costs Collisions, each
  // Collision moves u by only eps/8, and the adversary cannot fabricate
  // the Nulls that pull u back into the sweet window.
  const std::uint64_t n = 4096;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Lesk protocol(0.25);
    BoundedAdversary adv(64, EpsRatio::from_double(0.25),
                         std::make_unique<OracleDenialPolicy>(
                             std::make_unique<Lesk>(0.25), n, 0.005));
    Rng rng(800 + seed);
    Rng sim = rng.child(2);
    const auto out = run_aggregate(protocol, adv, {n, 1 << 21}, sim);
    EXPECT_TRUE(out.elected) << seed;
  }
}

}  // namespace
}  // namespace jamelect
