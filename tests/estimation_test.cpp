#include "protocols/estimation.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include <cmath>

#include "analysis/theory.hpp"
#include "channel/channel.hpp"
#include "sim/adversary_spec.hpp"
#include "sim/aggregate.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

TEST(Estimation, RoundScheduleAndProbabilities) {
  Estimation est(2);
  EXPECT_EQ(est.round(), 1);
  // Round r: 2^r slots at probability 2^-2^r.
  EXPECT_DOUBLE_EQ(est.transmit_probability(), 0.25);  // 2^-2
  // Exhaust round 1 (2 slots) with Collisions -> round 2.
  est.observe(ChannelState::kCollision);
  est.observe(ChannelState::kCollision);
  EXPECT_EQ(est.round(), 2);
  EXPECT_DOUBLE_EQ(est.transmit_probability(), 1.0 / 16.0);  // 2^-4
  EXPECT_FALSE(est.completed());
}

TEST(Estimation, CompletesWhenRoundHasLNulls) {
  Estimation est(2);
  // Round 1: 1 Null + 1 Collision -> not enough (L = 2).
  est.observe(ChannelState::kNull);
  est.observe(ChannelState::kCollision);
  EXPECT_FALSE(est.completed());
  EXPECT_EQ(est.round(), 2);
  // Round 2 (4 slots): two Nulls anywhere complete it at round end.
  est.observe(ChannelState::kNull);
  est.observe(ChannelState::kCollision);
  est.observe(ChannelState::kNull);
  EXPECT_FALSE(est.completed());  // round not over yet
  est.observe(ChannelState::kCollision);
  EXPECT_TRUE(est.completed());
  EXPECT_EQ(est.result(), 2);
  // Once complete it goes quiet.
  EXPECT_DOUBLE_EQ(est.transmit_probability(), 0.0);
}

TEST(Estimation, NullCounterResetsEachRound) {
  Estimation est(2);
  est.observe(ChannelState::kNull);       // round 1: one Null
  est.observe(ChannelState::kCollision);  // round over, 1 < 2
  // Round 2: one more Null must NOT complete (counter reset).
  est.observe(ChannelState::kNull);
  est.observe(ChannelState::kCollision);
  est.observe(ChannelState::kCollision);
  est.observe(ChannelState::kCollision);
  EXPECT_FALSE(est.completed());
  EXPECT_EQ(est.round(), 3);
}

TEST(Estimation, SingleShortCircuitsAsElection) {
  Estimation est(2);
  est.observe(ChannelState::kSingle);
  EXPECT_TRUE(est.elected());
  EXPECT_FALSE(est.completed());
  EXPECT_THROW((void)est.result(), ContractViolation);
  EXPECT_DOUBLE_EQ(est.transmit_probability(), 0.0);
}

TEST(Estimation, ResultRequiresCompletion) {
  Estimation est(2);
  EXPECT_THROW((void)est.result(), ContractViolation);
  EXPECT_THROW(Estimation bad(0), ContractViolation);
}

TEST(Estimation, CloneCarriesRoundState) {
  Estimation est(2);
  est.observe(ChannelState::kCollision);
  est.observe(ChannelState::kCollision);  // now round 2
  auto copy = est.clone();
  auto* c = dynamic_cast<Estimation*>(copy.get());
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->round(), 2);
}

// --- Lemma 2.8 behaviour, via the aggregate engine ---

std::int64_t run_estimation(std::uint64_t n, const std::string& policy,
                            std::int64_t T, double eps, std::uint64_t seed,
                            std::int64_t* slots_taken = nullptr,
                            bool* got_single = nullptr) {
  Estimation est(2);
  AdversarySpec spec;
  spec.policy = policy;
  spec.T = T;
  spec.eps = eps;
  spec.n = n;
  Rng rng(seed);
  auto adv = make_adversary(spec, rng.child(1));
  Rng sim = rng.child(2);
  std::int64_t slots = 0;
  const std::int64_t budget = 1 << 22;
  while (!est.completed() && !est.elected() && slots < budget) {
    const double p = est.transmit_probability();
    const bool jam = adv->step();
    const auto probs = slot_probabilities(n, p);
    const double r = sim.uniform();
    const std::uint64_t cnt = r < probs.null ? 0 : (r < probs.null + probs.single ? 1 : 2);
    const ChannelState state = resolve_slot(cnt, jam);
    est.observe(state);
    adv->observe({slots, cnt, jam, state});
    ++slots;
  }
  if (slots_taken != nullptr) *slots_taken = slots;
  if (got_single != nullptr) *got_single = est.elected();
  return est.completed() ? est.result() : -1;
}

class EstimationRangeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EstimationRangeTest, ResultWithinLemma28RangeNoAdversary) {
  const std::uint64_t n = GetParam();
  const auto range = estimation_range(n, 1);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    bool single = false;
    const std::int64_t i = run_estimation(n, "none", 16, 0.5, 77 + seed,
                                          nullptr, &single);
    if (single) continue;  // "obtains Single" branch is also a success
    ASSERT_GE(static_cast<double>(i), range.lo) << "n=" << n << " seed=" << seed;
    ASSERT_LE(static_cast<double>(i), range.hi) << "n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EstimationRangeTest,
                         ::testing::Values<std::uint64_t>(128, 1024, 1 << 14,
                                                          1 << 18));

TEST(EstimationBehaviour, AdversaryCanOnlyInflateWithinLogT) {
  // Under a (T, 1/2)-saturating adversary the result stays within
  // max(loglog n, log T) + 1 w.h.p. (jams read as Collisions and can
  // only delay Nulls).
  const std::uint64_t n = 1024;
  const std::int64_t T = 1 << 10;
  const auto range = estimation_range(n, T);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    bool single = false;
    const std::int64_t i =
        run_estimation(n, "saturating", T, 0.5, 500 + seed, nullptr, &single);
    if (single) continue;
    ASSERT_GE(static_cast<double>(i), range.lo) << seed;
    ASSERT_LE(static_cast<double>(i), range.hi) << seed;
  }
}

TEST(EstimationBehaviour, RuntimeIsOrderMaxLogNT) {
  const std::uint64_t n = 1 << 14;
  std::int64_t slots = 0;
  (void)run_estimation(n, "none", 16, 0.5, 31, &slots);
  // Total slots = sum of 2^r over executed rounds <= 4 * 2^(i_max);
  // with i <= loglog n + 1 this is O(log n).
  EXPECT_LE(slots, 16 * static_cast<std::int64_t>(std::log2(n)));
}

}  // namespace
}  // namespace jamelect
