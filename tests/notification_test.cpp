#include "protocols/notification.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include <memory>

#include "protocols/lesk.hpp"
#include "protocols/lewk.hpp"
#include "protocols/lewu.hpp"

namespace jamelect {
namespace {

UniformProtocolFactory lesk_factory(double eps = 0.5) {
  return [eps] { return std::make_unique<Lesk>(eps); };
}

TEST(NotificationStation, StartsListeningInPadding) {
  NotificationStation st(lesk_factory());
  EXPECT_EQ(st.phase(), NotificationStation::Phase::kFirstLoop);
  for (Slot s : {0, 1, 2}) EXPECT_DOUBLE_EQ(st.transmit_probability(s), 0.0);
  EXPECT_FALSE(st.done());
  EXPECT_FALSE(st.is_leader());
}

TEST(NotificationStation, RunsInnerAOnlyInC1DuringFirstLoop) {
  NotificationStation st(lesk_factory());
  // Slot 3 = first C1 slot: fresh LESK has u = 0 -> p = 1.
  EXPECT_DOUBLE_EQ(st.transmit_probability(3), 1.0);
  // C2 and C3 slots of block 1: silent.
  EXPECT_DOUBLE_EQ(st.transmit_probability(5), 0.0);
  EXPECT_DOUBLE_EQ(st.transmit_probability(7), 0.0);
}

TEST(NotificationStation, RestartsInnerAAtEachC1IntervalStart) {
  NotificationStation st(lesk_factory());
  (void)st.transmit_probability(3);
  st.feedback(3, false, Observation::kCollision);  // u -> 1/16
  (void)st.transmit_probability(4);
  st.feedback(4, false, Observation::kCollision);  // u -> 2/16
  EXPECT_GT(st.estimate(), 0.0);
  // Slot 9 starts C^2_1: the inner A reverts to u = 0.
  EXPECT_DOUBLE_EQ(st.transmit_probability(9), 1.0);
  EXPECT_DOUBLE_EQ(st.estimate(), 0.0);
}

TEST(NotificationStation, ListenerHearingC1SingleMovesToSecondLoop) {
  NotificationStation st(lesk_factory());
  (void)st.transmit_probability(3);
  st.feedback(3, false, Observation::kSingle);
  EXPECT_EQ(st.phase(), NotificationStation::Phase::kSecondLoop);
  EXPECT_FALSE(st.done());
  // Now silent in C1, active in C2 from its interval start (slot 5).
  EXPECT_DOUBLE_EQ(st.transmit_probability(4), 0.0);
  EXPECT_DOUBLE_EQ(st.transmit_probability(5), 1.0);  // fresh LESK u=0
}

TEST(NotificationStation, TransmitterMissesOwnSingleAndStaysInFirstLoop) {
  NotificationStation st(lesk_factory());
  (void)st.transmit_probability(3);
  // Weak-CD: the transmitter of a Single perceives a Collision.
  st.feedback(3, true, Observation::kCollision);
  EXPECT_EQ(st.phase(), NotificationStation::Phase::kFirstLoop);
}

TEST(NotificationStation, LoneFirstLoopStationBecomesLeaderOnC2Single) {
  NotificationStation st(lesk_factory());
  (void)st.transmit_probability(3);
  st.feedback(3, true, Observation::kCollision);  // it is l
  // Later it hears a Single in C2 (slot 5): leader = true, announce.
  (void)st.transmit_probability(5);
  st.feedback(5, false, Observation::kSingle);
  EXPECT_EQ(st.phase(), NotificationStation::Phase::kAnnounceC3);
  EXPECT_FALSE(st.done());
  // Transmits every C3 slot, listens in C1.
  EXPECT_DOUBLE_EQ(st.transmit_probability(7), 1.0);
  EXPECT_DOUBLE_EQ(st.transmit_probability(9), 0.0);
  // A Null in C1 finishes it as THE leader.
  st.feedback(9, false, Observation::kNull);
  EXPECT_TRUE(st.done());
  EXPECT_TRUE(st.is_leader());
}

TEST(NotificationStation, SecondLoopSingleSendsListenerToConfirm) {
  NotificationStation st(lesk_factory());
  (void)st.transmit_probability(3);
  st.feedback(3, false, Observation::kSingle);  // -> second loop
  (void)st.transmit_probability(5);
  st.feedback(5, false, Observation::kSingle);  // Single in C2
  EXPECT_EQ(st.phase(), NotificationStation::Phase::kConfirmC1);
  // Transmits deterministically in every C1 slot.
  EXPECT_DOUBLE_EQ(st.transmit_probability(9), 1.0);
  EXPECT_DOUBLE_EQ(st.transmit_probability(13), 0.0);  // C2: silent
  // Single in C3 releases it as a non-leader.
  st.feedback(17, false, Observation::kSingle);
  EXPECT_TRUE(st.done());
  EXPECT_FALSE(st.is_leader());
}

TEST(NotificationStation, SStationExitsViaC3WithoutC2Status) {
  // s transmitted the C2 Single (saw Collision), stays in the second
  // loop, and exits as non-leader on the C3 Single.
  NotificationStation st(lesk_factory());
  (void)st.transmit_probability(3);
  st.feedback(3, false, Observation::kSingle);  // -> second loop
  (void)st.transmit_probability(5);
  st.feedback(5, true, Observation::kCollision);  // its own C2 Single
  EXPECT_EQ(st.phase(), NotificationStation::Phase::kSecondLoop);
  st.feedback(7, false, Observation::kSingle);  // l's announcement in C3
  EXPECT_TRUE(st.done());
  EXPECT_FALSE(st.is_leader());
}

TEST(NotificationStation, ConfirmerIgnoresNonSingleC3) {
  NotificationStation st(lesk_factory());
  (void)st.transmit_probability(3);
  st.feedback(3, false, Observation::kSingle);
  (void)st.transmit_probability(5);
  st.feedback(5, false, Observation::kSingle);
  ASSERT_EQ(st.phase(), NotificationStation::Phase::kConfirmC1);
  st.feedback(7, false, Observation::kCollision);  // jammed C3
  st.feedback(8, false, Observation::kNull);
  EXPECT_FALSE(st.done());
}

TEST(NotificationStation, LeaderIgnoresJammedC1) {
  NotificationStation st(lesk_factory());
  (void)st.transmit_probability(3);
  st.feedback(3, true, Observation::kCollision);
  (void)st.transmit_probability(5);
  st.feedback(5, false, Observation::kSingle);
  ASSERT_EQ(st.phase(), NotificationStation::Phase::kAnnounceC3);
  st.feedback(9, false, Observation::kCollision);  // C1 busy or jammed
  EXPECT_FALSE(st.done());
  st.feedback(10, false, Observation::kNull);
  EXPECT_TRUE(st.done());
  EXPECT_TRUE(st.is_leader());
}

TEST(NotificationStation, RejectsNoCdObservations) {
  NotificationStation st(lesk_factory());
  (void)st.transmit_probability(3);
  EXPECT_THROW(st.feedback(3, false, Observation::kNoSingle),
               ContractViolation);
}

TEST(NotificationStation, FactoryRequired) {
  EXPECT_THROW(NotificationStation st(nullptr), ContractViolation);
}

TEST(Factories, LewkAndLewuBuildStations) {
  auto lewk = make_lewk_station(0.5);
  EXPECT_EQ(lewk->name(), "Notification");
  EXPECT_FALSE(lewk->done());
  auto lewu = make_lewu_station();
  EXPECT_DOUBLE_EQ(lewu->transmit_probability(3), 0.25);  // Estimation r=1
}

}  // namespace
}  // namespace jamelect
