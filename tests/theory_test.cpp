#include "analysis/theory.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

#include <cmath>

namespace jamelect {
namespace {

TEST(Theory, LeskBoundGrowsWithN) {
  EXPECT_LT(lesk_time_bound(64, 0.5), lesk_time_bound(1 << 20, 0.5));
}

TEST(Theory, LeskBoundGrowsAsEpsShrinks) {
  EXPECT_LT(lesk_time_bound(1024, 0.5), lesk_time_bound(1024, 0.25));
  EXPECT_LT(lesk_time_bound(1024, 0.25), lesk_time_bound(1024, 0.1));
}

TEST(Theory, LeskBoundScalesLikeLogNOverEpsCubed) {
  // Doubling log n ~ doubles the bound (for fixed eps).
  const double r = lesk_time_bound(1 << 20, 0.5) / lesk_time_bound(1 << 10, 0.5);
  EXPECT_GT(r, 1.7);
  EXPECT_LT(r, 2.3);
  // Halving eps costs ~8x / log-factor.
  const double q = lesk_time_bound(1 << 10, 0.125) / lesk_time_bound(1 << 10, 0.25);
  EXPECT_GT(q, 4.0);
  EXPECT_LT(q, 16.0);
}

TEST(Theory, LeskBoundRejectsBadArgs) {
  EXPECT_THROW((void)lesk_time_bound(0, 0.5), ContractViolation);
  EXPECT_THROW((void)lesk_time_bound(8, 0.0), ContractViolation);
  EXPECT_THROW((void)lesk_time_bound(8, 0.5, 0.5), ContractViolation);
}

TEST(Theory, LowerBound) {
  EXPECT_DOUBLE_EQ(lower_bound_slots(1024, 0.5, 5), 20.0);  // (1/eps) log2 n
  EXPECT_DOUBLE_EQ(lower_bound_slots(1024, 0.5, 100), 100.0);  // T dominates
}

TEST(Theory, EstimationRangeMatchesLemma28) {
  const auto r = estimation_range(1 << 16, 1);
  EXPECT_DOUBLE_EQ(r.lo, 3.0);  // log2 log2 2^16 - 1 = 4 - 1
  EXPECT_DOUBLE_EQ(r.hi, 5.0);
  const auto rt = estimation_range(1 << 16, 1 << 10);
  EXPECT_DOUBLE_EQ(rt.hi, 11.0);  // log2 T + 1 dominates
  EXPECT_THROW((void)estimation_range(1, 1), ContractViolation);
}

TEST(Theory, LesuCaseSelection) {
  // Small T: case 1. T beyond log n / (eps^3 log(1/eps)): case 2.
  EXPECT_TRUE(lesu_case1(1 << 20, 0.5, 16));
  EXPECT_FALSE(lesu_case1(1 << 10, 0.5, 1 << 16));
}

TEST(Theory, LesuBoundContinuousAcrossRegimes) {
  // Within each case the bound is monotone in T (weakly for case 1).
  const std::uint64_t n = 1 << 14;
  const double small_T = lesu_time_bound(n, 0.25, 4);
  const double big_T = lesu_time_bound(n, 0.25, 1 << 20);
  EXPECT_LT(small_T, big_T);
}

TEST(Theory, ArssBoundIsLogFourth) {
  EXPECT_DOUBLE_EQ(arss_time_bound(1 << 10), 10000.0);
  EXPECT_DOUBLE_EQ(arss_time_bound(1 << 20), 160000.0);
}

TEST(Theory, ArssVsLeskAsymptotics) {
  // §1.3's claim: LESK O(log n) vs ARSS O(log^4 n) — the ratio widens.
  const double r10 = arss_time_bound(1 << 10) / lesk_time_bound(1 << 10, 0.5);
  const double r20 = arss_time_bound(1 << 20) / lesk_time_bound(1 << 20, 0.5);
  EXPECT_GT(r20, r10);
}

TEST(Theory, SafeLogGuard) {
  EXPECT_DOUBLE_EQ(safe_log2_inv_eps(0.25), 2.0);
  EXPECT_DOUBLE_EQ(safe_log2_inv_eps(1.0), 0.5);  // floored
  EXPECT_THROW((void)safe_log2_inv_eps(0.0), ContractViolation);
}

}  // namespace
}  // namespace jamelect
