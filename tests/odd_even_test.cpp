// Reproduces the paper's §3 one-liner: the naive odd/even notification
// scheme works without an adversary but "even a simple adversary can
// disrupt such algorithm by jamming some even time slot" — concretely,
// jamming the notification slot after a Collision convinces EVERY
// colliding transmitter that it won, electing multiple leaders. The
// real Notification transform survives the same attack.
#include "protocols/odd_even.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "protocols/lesk.hpp"
#include "protocols/lewk.hpp"
#include "sim/adversary_spec.hpp"
#include "sim/engine.hpp"
#include "support/expects.hpp"
#include "support/rng.hpp"

namespace jamelect {
namespace {

/// The "simple adversary": jam a notification slot whenever the
/// preceding algorithm slot was a genuine collision (the adversary is
/// omniscient about the past, including true transmitter counts).
class NotificationJammer final : public JamPolicy {
 public:
  [[nodiscard]] bool desires_jam(Slot slot, const JammingBudget&) override {
    return slot % 2 == 1 && last_count_ >= 2;
  }
  void observe(const AdversaryView& view) override {
    last_count_ = view.true_transmitters;
  }
  [[nodiscard]] std::string name() const override { return "notif_jam"; }

 private:
  std::uint64_t last_count_ = 0;
};

std::vector<StationProtocolPtr> odd_even_stations(std::uint64_t n) {
  std::vector<StationProtocolPtr> stations;
  for (std::uint64_t i = 0; i < n; ++i) {
    stations.push_back(
        std::make_unique<OddEvenStation>(std::make_unique<Lesk>(0.5)));
  }
  return stations;
}

std::size_t count_leaders(const SlotEngine& engine) {
  std::size_t leaders = 0;
  for (std::size_t i = 0; i < engine.num_stations(); ++i) {
    if (engine.station(i).done() && engine.station(i).is_leader()) ++leaders;
  }
  return leaders;
}

TEST(OddEven, RejectsNullInner) {
  EXPECT_THROW(OddEvenStation bad(nullptr), ContractViolation);
}

TEST(OddEven, CorrectWithoutAdversary) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(100 + seed);
    SlotEngine engine(odd_even_stations(16),
                      make_adversary(AdversarySpec{}, rng.child(1)),
                      rng.child(2),
                      {CdMode::kWeak, StopRule::kAllDone, 1 << 16});
    const auto out = engine.run();
    EXPECT_TRUE(out.elected) << seed;
    EXPECT_TRUE(out.unique_leader) << seed;
    EXPECT_EQ(count_leaders(engine), 1u) << seed;
  }
}

TEST(OddEven, SimpleJammerElectsMultipleLeaders) {
  // The safety violation: with the notification jammer the colliding
  // transmitters of some algorithm slot all promote themselves.
  std::size_t violations = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(200 + seed);
    auto adversary = std::make_unique<BoundedAdversary>(
        8, EpsRatio{1, 2}, std::make_unique<NotificationJammer>());
    SlotEngine engine(odd_even_stations(16), std::move(adversary),
                      rng.child(2),
                      {CdMode::kWeak, StopRule::kAllDone, 1 << 14});
    (void)engine.run();
    if (count_leaders(engine) >= 2) ++violations;
  }
  EXPECT_GE(violations, 8u);  // nearly every run is corrupted
}

TEST(OddEven, RealNotificationSurvivesTheSameJammer) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(300 + seed);
    auto adversary = std::make_unique<BoundedAdversary>(
        8, EpsRatio{1, 2}, std::make_unique<NotificationJammer>());
    std::vector<StationProtocolPtr> stations;
    for (int i = 0; i < 16; ++i) stations.push_back(make_lewk_station(0.5));
    SlotEngine engine(std::move(stations), std::move(adversary), rng.child(2),
                      {CdMode::kWeak, StopRule::kAllDone, 1 << 19});
    const auto out = engine.run();
    EXPECT_TRUE(out.elected) << seed;
    EXPECT_TRUE(out.unique_leader) << seed;
    EXPECT_EQ(count_leaders(engine), 1u) << seed;
  }
}

}  // namespace
}  // namespace jamelect
