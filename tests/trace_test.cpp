#include "channel/trace.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

namespace jamelect {
namespace {

SlotRecord rec(Slot slot, ChannelState s, bool jammed = false,
               std::uint32_t tx = 0) {
  SlotRecord r;
  r.slot = slot;
  r.state = s;
  r.jammed = jammed;
  r.transmitters = tx;
  return r;
}

TEST(Trace, CountersTrackStates) {
  Trace t;
  t.record(rec(0, ChannelState::kNull));
  t.record(rec(1, ChannelState::kSingle, false, 1));
  t.record(rec(2, ChannelState::kCollision, true, 0));
  t.record(rec(3, ChannelState::kCollision, false, 3));
  const auto& c = t.counters();
  EXPECT_EQ(c.slots, 4);
  EXPECT_EQ(c.nulls, 1);
  EXPECT_EQ(c.singles, 1);
  EXPECT_EQ(c.collisions, 2);
  EXPECT_EQ(c.jammed, 1);
  EXPECT_EQ(t.size(), 4);
}

TEST(Trace, RecordsKeptWhenEnabled) {
  Trace t(true);
  t.record(rec(7, ChannelState::kNull));
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records()[0].slot, 7);
}

TEST(Trace, CounterOnlyModeRejectsRecordAccess) {
  Trace t(false);
  t.record(rec(0, ChannelState::kNull));
  EXPECT_EQ(t.counters().slots, 1);
  EXPECT_FALSE(t.keeps_records());
  EXPECT_THROW((void)t.records(), ContractViolation);
}

TEST(Trace, ExpectedTransmissionsAccumulate) {
  Trace t(false);
  t.record(rec(0, ChannelState::kNull), 0.5);
  t.record(rec(1, ChannelState::kCollision), 2.25);
  EXPECT_DOUBLE_EQ(t.counters().expected_transmissions, 2.75);
}

TEST(Trace, ClearResetsEverything) {
  Trace t;
  t.record(rec(0, ChannelState::kSingle), 1.0);
  t.clear();
  EXPECT_EQ(t.size(), 0);
  EXPECT_TRUE(t.records().empty());
  EXPECT_DOUBLE_EQ(t.counters().expected_transmissions, 0.0);
}

}  // namespace
}  // namespace jamelect
