#include "channel/trace.hpp"

#include <gtest/gtest.h>

#include "support/expects.hpp"

namespace jamelect {
namespace {

SlotRecord rec(Slot slot, ChannelState s, bool jammed = false,
               std::uint32_t tx = 0) {
  SlotRecord r;
  r.slot = slot;
  r.state = s;
  r.jammed = jammed;
  r.transmitters = tx;
  return r;
}

TEST(Trace, CountersTrackStates) {
  Trace t;
  t.record(rec(0, ChannelState::kNull), 0.0);
  t.record(rec(1, ChannelState::kSingle, false, 1), 0.0);
  t.record(rec(2, ChannelState::kCollision, true, 0), 0.0);
  t.record(rec(3, ChannelState::kCollision, false, 3), 0.0);
  const auto& c = t.counters();
  EXPECT_EQ(c.slots, 4);
  EXPECT_EQ(c.nulls, 1);
  EXPECT_EQ(c.singles, 1);
  EXPECT_EQ(c.collisions, 2);
  EXPECT_EQ(c.jammed, 1);
  EXPECT_EQ(t.size(), 4);
}

TEST(Trace, RecordsKeptWhenEnabled) {
  Trace t(true);
  t.record(rec(7, ChannelState::kNull), 0.0);
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records()[0].slot, 7);
}

TEST(Trace, CounterOnlyModeRejectsRecordAccess) {
  Trace t(false);
  t.record(rec(0, ChannelState::kNull), 0.0);
  EXPECT_EQ(t.counters().slots, 1);
  EXPECT_FALSE(t.keeps_records());
  EXPECT_THROW((void)t.records(), ContractViolation);
}

TEST(Trace, CounterOnlyModeMatchesRecordingCounters) {
  // The same slot stream must produce identical counters whether or not
  // records are materialized — counter maintenance must not depend on
  // the keep_records flag.
  Trace keeping(true);
  Trace counting(false);
  const struct {
    Slot slot;
    ChannelState state;
    bool jammed;
    std::uint32_t tx;
    double etx;
  } stream[] = {
      {0, ChannelState::kNull, false, 0, 0.25},
      {1, ChannelState::kCollision, true, 0, 1.5},
      {2, ChannelState::kSingle, false, 1, 1.0},
      {3, ChannelState::kCollision, false, 5, 4.75},
      {4, ChannelState::kNull, true, 0, 0.0},
      {5, ChannelState::kSingle, false, 1, 0.875},
  };
  for (const auto& s : stream) {
    keeping.record(rec(s.slot, s.state, s.jammed, s.tx), s.etx);
    counting.record(rec(s.slot, s.state, s.jammed, s.tx), s.etx);
  }
  const TraceCounters& a = keeping.counters();
  const TraceCounters& b = counting.counters();
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.nulls, b.nulls);
  EXPECT_EQ(a.singles, b.singles);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.jammed, b.jammed);
  EXPECT_DOUBLE_EQ(a.expected_transmissions, b.expected_transmissions);
  EXPECT_EQ(keeping.size(), counting.size());
  EXPECT_EQ(keeping.records().size(), 6u);
  EXPECT_THROW((void)counting.records(), ContractViolation);
}

TEST(Trace, ExpectedTransmissionsAccumulate) {
  Trace t(false);
  t.record(rec(0, ChannelState::kNull), 0.5);
  t.record(rec(1, ChannelState::kCollision), 2.25);
  EXPECT_DOUBLE_EQ(t.counters().expected_transmissions, 2.75);
}

TEST(Trace, ClearResetsEverything) {
  Trace t;
  t.record(rec(0, ChannelState::kSingle), 1.0);
  t.clear();
  EXPECT_EQ(t.size(), 0);
  EXPECT_TRUE(t.records().empty());
  EXPECT_DOUBLE_EQ(t.counters().expected_transmissions, 0.0);
}

}  // namespace
}  // namespace jamelect
