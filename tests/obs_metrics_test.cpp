#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "support/expects.hpp"
#include "support/thread_pool.hpp"

namespace jamelect::obs {
namespace {

TEST(Metrics, RegistrationIsIdempotentByName) {
  MetricsRegistry reg;
  const auto a = reg.counter("runs");
  const auto b = reg.counter("runs");
  const auto c = reg.counter("slots");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Metrics, CountersSumAcrossAdds) {
  MetricsRegistry reg;
  const auto id = reg.counter("x");
  reg.add(id, 3);
  reg.add(id, 4);
  const auto snap = reg.aggregate();
  EXPECT_EQ(snap.counters.at("x"), 7);
}

TEST(Metrics, CrossThreadAggregationSeesEveryWrite) {
  // parallel_for fans the adds across pool workers; each worker writes
  // its own slab and aggregate() must sum them all.
  MetricsRegistry reg;
  const auto id = reg.counter("parallel.adds");
  constexpr std::size_t kAdds = 10000;
  global_pool().parallel_for(kAdds, [&](std::size_t) { reg.add(id, 1); });
  const auto snap = reg.aggregate();
  EXPECT_EQ(snap.counters.at("parallel.adds"),
            static_cast<std::int64_t>(kAdds));
}

TEST(Metrics, GaugeIsLastWriteWins) {
  MetricsRegistry reg;
  const auto id = reg.gauge("g");
  reg.set(id, 1.5);
  reg.set(id, -2.25);
  const auto snap = reg.aggregate();
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), -2.25);
}

TEST(Metrics, HistogramBucketsByLog2) {
  MetricsRegistry reg;
  const auto id = reg.histogram("h");
  reg.observe(id, 0);   // bucket 0
  reg.observe(id, 1);   // bucket 1
  reg.observe(id, 2);   // bucket 2
  reg.observe(id, 3);   // bucket 2
  reg.observe(id, 17);  // bucket 5: 16 <= 17 < 32
  const auto snap = reg.aggregate();
  const HistogramSnapshot& h = snap.histograms.at("h");
  EXPECT_EQ(h.count, 5);
  EXPECT_EQ(h.sum, 23);
  EXPECT_EQ(h.buckets[0], 1);
  EXPECT_EQ(h.buckets[1], 1);
  EXPECT_EQ(h.buckets[2], 2);
  EXPECT_EQ(h.buckets[5], 1);
}

TEST(Metrics, Log2BucketEdges) {
  EXPECT_EQ(log2_bucket(-5), 0u);
  EXPECT_EQ(log2_bucket(0), 0u);
  EXPECT_EQ(log2_bucket(1), 1u);
  EXPECT_EQ(log2_bucket(2), 2u);
  EXPECT_EQ(log2_bucket(4), 3u);
  EXPECT_EQ(log2_bucket(7), 3u);
  EXPECT_EQ(log2_bucket(8), 4u);
}

TEST(Metrics, ResetZeroesEverything) {
  MetricsRegistry reg;
  const auto c = reg.counter("c");
  const auto g = reg.gauge("g");
  const auto h = reg.histogram("h");
  reg.add(c, 9);
  reg.set(g, 3.0);
  reg.observe(h, 42);
  reg.reset();
  const auto snap = reg.aggregate();
  EXPECT_EQ(snap.counters.at("c"), 0);
  // A reset gauge reads as never-written: it drops out of the rollup.
  EXPECT_EQ(snap.gauges.count("g"), 0u);
  EXPECT_EQ(snap.histograms.at("h").count, 0);
}

TEST(Metrics, RegistrationBeyondCapacityThrows) {
  MetricsRegistry reg;
  for (std::size_t i = 0; i < MetricsRegistry::kMaxMetrics; ++i) {
    std::string name = "m";
    name += std::to_string(i);
    (void)reg.counter(name);
  }
  EXPECT_THROW((void)reg.counter("one-too-many"), ContractViolation);
}

TEST(Metrics, MacrosRespectGlobalEnableSwitch) {
  // The macros target the global registry; when compiled in they must
  // honour enabled(), and when compiled out they must do nothing.
  auto& reg = MetricsRegistry::global();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  const std::int64_t before =
      [&] {
        const auto snap = reg.aggregate();
        const auto it = snap.counters.find("test.macro.count");
        return it == snap.counters.end() ? std::int64_t{0} : it->second;
      }();
  JAMELECT_OBS_COUNT("test.macro.count", 2);
  reg.set_enabled(false);
  JAMELECT_OBS_COUNT("test.macro.count", 100);  // must be dropped
  reg.set_enabled(true);
  const auto snap = reg.aggregate();
  const auto it = snap.counters.find("test.macro.count");
  if constexpr (kObsCompiledIn) {
    ASSERT_NE(it, snap.counters.end());
    EXPECT_EQ(it->second, before + 2);
  } else {
    EXPECT_EQ(it, snap.counters.end());
  }
  reg.set_enabled(was_enabled);
}

// Exact quantile with the same rank convention histogram_quantile
// documents: the ceil(q*count)-th smallest sample (1-indexed).
std::int64_t exact_quantile(std::vector<std::int64_t> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const auto count = static_cast<double>(samples.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * count));
  if (rank < 1) rank = 1;
  return samples[rank - 1];
}

HistogramSnapshot fill(const std::vector<std::int64_t>& samples) {
  MetricsRegistry reg;
  const auto id = reg.histogram("h");
  for (const std::int64_t v : samples) reg.observe(id, v);
  return reg.aggregate().histograms.at("h");
}

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  EXPECT_EQ(histogram_quantile(HistogramSnapshot{}, 0.5), 0);
}

TEST(HistogramQuantile, NonPositiveSamplesQuantileIsZero) {
  // Bucket 0 holds v <= 0; its "upper bound" is reported as 0.
  const auto h = fill({-3, 0, 0, -1});
  EXPECT_EQ(histogram_quantile(h, 0.5), 0);
  EXPECT_EQ(histogram_quantile(h, 1.0), 0);
}

TEST(HistogramQuantile, QIsClampedToUnitInterval) {
  const auto h = fill({1, 2, 4, 8});
  EXPECT_EQ(histogram_quantile(h, -0.5), histogram_quantile(h, 0.0));
  EXPECT_EQ(histogram_quantile(h, 7.0), histogram_quantile(h, 1.0));
}

TEST(HistogramQuantile, ExactOnBucketBoundaries) {
  // Ten samples, one per value class: the estimate is the upper bound of
  // the bucket holding the exact quantile, checkable by hand.
  const auto h = fill({1, 1, 1, 1, 1, 16, 16, 16, 16, 16});
  // p50 → 5th sample = 1, bucket 1 → upper bound 2^1 - 1 = 1 (exact).
  EXPECT_EQ(histogram_quantile(h, 0.5), 1);
  // p60 → 6th sample = 16, bucket 5 → upper bound 31.
  EXPECT_EQ(histogram_quantile(h, 0.6), 31);
  EXPECT_EQ(histogram_quantile(h, 1.0), 31);
}

TEST(HistogramQuantile, P50AndP99WithinBucketResolutionOfExact) {
  // The documented accuracy contract: for positive samples the estimate
  // r and the true quantile v satisfy v <= r < 2v. Deterministic
  // pseudo-random heavy-tailed samples (LCG; no global RNG involved).
  std::vector<std::int64_t> samples;
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    // Spread over ~[1, 2^20] with a long tail.
    const auto shift = static_cast<unsigned>((x >> 59) & 19u);
    samples.push_back(static_cast<std::int64_t>((x >> 40) % (1ULL << shift)) +
                      1);
  }
  const auto h = fill(samples);
  for (const double q : {0.5, 0.9, 0.99}) {
    const std::int64_t exact = exact_quantile(samples, q);
    const std::int64_t est = histogram_quantile(h, q);
    EXPECT_GE(est, exact) << "q=" << q;
    EXPECT_LT(est, 2 * exact) << "q=" << q;
  }
}

TEST(HistogramQuantile, TopBucketFallsBackToObservedMax) {
  // Samples in bucket >= 63 can't report 2^63 - 1; the estimator falls
  // back to the snapshot's bucket-resolution max.
  MetricsRegistry reg;
  const auto id = reg.histogram("h");
  reg.observe(id, std::numeric_limits<std::int64_t>::max());
  const auto h = reg.aggregate().histograms.at("h");
  EXPECT_EQ(histogram_quantile(h, 1.0), h.max);
}

TEST(Metrics, AggregateIsSafeDuringConcurrentWrites) {
  MetricsRegistry reg;
  const auto id = reg.counter("concurrent");
  constexpr std::size_t kIters = 4000;
  global_pool().parallel_for(kIters, [&](std::size_t i) {
    reg.add(id, 1);
    if (i % 128 == 0) {
      const auto snap = reg.aggregate();  // must not tear or crash
      EXPECT_GE(snap.counters.at("concurrent"), 0);
    }
  });
  EXPECT_EQ(reg.aggregate().counters.at("concurrent"),
            static_cast<std::int64_t>(kIters));
}

}  // namespace
}  // namespace jamelect::obs
