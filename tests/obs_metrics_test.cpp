#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

#include "support/expects.hpp"
#include "support/thread_pool.hpp"

namespace jamelect::obs {
namespace {

TEST(Metrics, RegistrationIsIdempotentByName) {
  MetricsRegistry reg;
  const auto a = reg.counter("runs");
  const auto b = reg.counter("runs");
  const auto c = reg.counter("slots");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Metrics, CountersSumAcrossAdds) {
  MetricsRegistry reg;
  const auto id = reg.counter("x");
  reg.add(id, 3);
  reg.add(id, 4);
  const auto snap = reg.aggregate();
  EXPECT_EQ(snap.counters.at("x"), 7);
}

TEST(Metrics, CrossThreadAggregationSeesEveryWrite) {
  // parallel_for fans the adds across pool workers; each worker writes
  // its own slab and aggregate() must sum them all.
  MetricsRegistry reg;
  const auto id = reg.counter("parallel.adds");
  constexpr std::size_t kAdds = 10000;
  global_pool().parallel_for(kAdds, [&](std::size_t) { reg.add(id, 1); });
  const auto snap = reg.aggregate();
  EXPECT_EQ(snap.counters.at("parallel.adds"),
            static_cast<std::int64_t>(kAdds));
}

TEST(Metrics, GaugeIsLastWriteWins) {
  MetricsRegistry reg;
  const auto id = reg.gauge("g");
  reg.set(id, 1.5);
  reg.set(id, -2.25);
  const auto snap = reg.aggregate();
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), -2.25);
}

TEST(Metrics, HistogramBucketsByLog2) {
  MetricsRegistry reg;
  const auto id = reg.histogram("h");
  reg.observe(id, 0);   // bucket 0
  reg.observe(id, 1);   // bucket 1
  reg.observe(id, 2);   // bucket 2
  reg.observe(id, 3);   // bucket 2
  reg.observe(id, 17);  // bucket 5: 16 <= 17 < 32
  const auto snap = reg.aggregate();
  const HistogramSnapshot& h = snap.histograms.at("h");
  EXPECT_EQ(h.count, 5);
  EXPECT_EQ(h.sum, 23);
  EXPECT_EQ(h.buckets[0], 1);
  EXPECT_EQ(h.buckets[1], 1);
  EXPECT_EQ(h.buckets[2], 2);
  EXPECT_EQ(h.buckets[5], 1);
}

TEST(Metrics, Log2BucketEdges) {
  EXPECT_EQ(log2_bucket(-5), 0u);
  EXPECT_EQ(log2_bucket(0), 0u);
  EXPECT_EQ(log2_bucket(1), 1u);
  EXPECT_EQ(log2_bucket(2), 2u);
  EXPECT_EQ(log2_bucket(4), 3u);
  EXPECT_EQ(log2_bucket(7), 3u);
  EXPECT_EQ(log2_bucket(8), 4u);
}

TEST(Metrics, ResetZeroesEverything) {
  MetricsRegistry reg;
  const auto c = reg.counter("c");
  const auto g = reg.gauge("g");
  const auto h = reg.histogram("h");
  reg.add(c, 9);
  reg.set(g, 3.0);
  reg.observe(h, 42);
  reg.reset();
  const auto snap = reg.aggregate();
  EXPECT_EQ(snap.counters.at("c"), 0);
  // A reset gauge reads as never-written: it drops out of the rollup.
  EXPECT_EQ(snap.gauges.count("g"), 0u);
  EXPECT_EQ(snap.histograms.at("h").count, 0);
}

TEST(Metrics, RegistrationBeyondCapacityThrows) {
  MetricsRegistry reg;
  for (std::size_t i = 0; i < MetricsRegistry::kMaxMetrics; ++i) {
    std::string name = "m";
    name += std::to_string(i);
    (void)reg.counter(name);
  }
  EXPECT_THROW((void)reg.counter("one-too-many"), ContractViolation);
}

TEST(Metrics, MacrosRespectGlobalEnableSwitch) {
  // The macros target the global registry; when compiled in they must
  // honour enabled(), and when compiled out they must do nothing.
  auto& reg = MetricsRegistry::global();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  const std::int64_t before =
      [&] {
        const auto snap = reg.aggregate();
        const auto it = snap.counters.find("test.macro.count");
        return it == snap.counters.end() ? std::int64_t{0} : it->second;
      }();
  JAMELECT_OBS_COUNT("test.macro.count", 2);
  reg.set_enabled(false);
  JAMELECT_OBS_COUNT("test.macro.count", 100);  // must be dropped
  reg.set_enabled(true);
  const auto snap = reg.aggregate();
  const auto it = snap.counters.find("test.macro.count");
  if constexpr (kObsCompiledIn) {
    ASSERT_NE(it, snap.counters.end());
    EXPECT_EQ(it->second, before + 2);
  } else {
    EXPECT_EQ(it, snap.counters.end());
  }
  reg.set_enabled(was_enabled);
}

TEST(Metrics, AggregateIsSafeDuringConcurrentWrites) {
  MetricsRegistry reg;
  const auto id = reg.counter("concurrent");
  constexpr std::size_t kIters = 4000;
  global_pool().parallel_for(kIters, [&](std::size_t i) {
    reg.add(id, 1);
    if (i % 128 == 0) {
      const auto snap = reg.aggregate();  // must not tear or crash
      EXPECT_GE(snap.counters.at("concurrent"), 0);
    }
  });
  EXPECT_EQ(reg.aggregate().counters.at("concurrent"),
            static_cast<std::int64_t>(kIters));
}

}  // namespace
}  // namespace jamelect::obs
