// Service JSON layer: parser correctness, canonical-dump idempotence,
// and the deterministic manifest fingerprint (the cache-key contract:
// same config -> byte-identical canonical JSON -> identical hash, no
// matter the field insertion order or how many times it's serialized).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "service/json.hpp"
#include "service/sweep_request.hpp"

namespace jamelect::service {
namespace {

TEST(ServiceJson, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_EQ(Json::parse("true")->as_bool(), true);
  EXPECT_EQ(Json::parse("false")->as_bool(true), false);
  EXPECT_EQ(Json::parse("42")->as_int(), 42);
  EXPECT_EQ(Json::parse("-7")->as_int(), -7);
  EXPECT_DOUBLE_EQ(Json::parse("0.5")->as_double(), 0.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3")->as_double(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(ServiceJson, IntegerVsDoubleLexing) {
  EXPECT_TRUE(Json::parse("42")->is_int());
  EXPECT_FALSE(Json::parse("42.0")->is_int());
  EXPECT_TRUE(Json::parse("42.0")->is_number());
  // int64 boundary stays integral; beyond it falls back to double.
  EXPECT_TRUE(Json::parse("9223372036854775807")->is_int());
  EXPECT_EQ(Json::parse("9223372036854775807")->as_int(),
            9223372036854775807LL);
  EXPECT_FALSE(Json::parse("9223372036854775808")->is_int());
}

TEST(ServiceJson, ParsesNestedStructures) {
  const auto doc =
      Json::parse(R"({"a":[1,2,{"b":true}],"c":{"d":null},"e":"x"})");
  ASSERT_TRUE(doc.has_value());
  const Json* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[0].as_int(), 1);
  EXPECT_TRUE(a->as_array()[2].find("b")->as_bool());
  EXPECT_TRUE(doc->find("c")->find("d")->is_null());
  EXPECT_EQ(doc->find("nope"), nullptr);
}

TEST(ServiceJson, StringEscapes) {
  const auto doc = Json::parse(R"("a\"b\\c\n\tAé")");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(ServiceJson, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(Json::parse("", &error).has_value());
  EXPECT_FALSE(Json::parse("{", &error).has_value());
  EXPECT_FALSE(Json::parse("[1,]", &error).has_value());
  EXPECT_FALSE(Json::parse("{\"a\":1,}", &error).has_value());
  EXPECT_FALSE(Json::parse("tru", &error).has_value());
  EXPECT_FALSE(Json::parse("1 2", &error).has_value());  // trailing garbage
  EXPECT_FALSE(Json::parse("\"unterminated", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ServiceJson, RejectsExcessiveDepth) {
  std::string deep(static_cast<std::size_t>(Json::kMaxDepth) + 8, '[');
  deep += std::string(static_cast<std::size_t>(Json::kMaxDepth) + 8, ']');
  EXPECT_FALSE(Json::parse(deep).has_value());
}

TEST(ServiceJson, DumpIsCanonicalAndIdempotent) {
  // Key order in the source text must not matter: objects dump sorted.
  const auto a = Json::parse(R"({"z":1,"a":{"y":2,"b":[3,0.5]},"m":"s"})");
  const auto b = Json::parse(R"({"m":"s","a":{"b":[3,0.5],"y":2},"z":1})");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->dump(), b->dump());
  // parse(dump(x)) -> dump == dump(x): the disk round-trip invariant.
  const std::string once = a->dump();
  const auto reparsed = Json::parse(once);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->dump(), once);
}

TEST(ServiceJson, DumpRoundTripsDoublesExactly) {
  const Json v(0.1 + 0.2);  // classic non-representable sum
  const auto back = Json::parse(v.dump());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->as_double(), 0.1 + 0.2);  // bitwise, via %.17g
}

// --- Satellite: deterministic manifest cache key ---------------------

TEST(CanonicalConfig, ByteIdenticalAcrossInsertionOrders) {
  std::map<std::string, std::string> forward;
  forward["protocol"] = "lesk";
  forward["n"] = "1024";
  forward["eps"] = obs::canonical_number(0.5);
  forward["seed"] = "7";

  std::map<std::string, std::string> reversed;
  reversed["seed"] = "7";
  reversed["eps"] = obs::canonical_number(0.5);
  reversed["n"] = "1024";
  reversed["protocol"] = "lesk";

  EXPECT_EQ(obs::canonical_config_json(forward),
            obs::canonical_config_json(reversed));
  EXPECT_EQ(obs::config_fingerprint(forward),
            obs::config_fingerprint(reversed));
}

TEST(CanonicalConfig, FingerprintStableAcrossRepeatedSerializations) {
  SweepRequest request;
  request.n = 2048;
  request.eps = 0.3;
  request.seed = 123456789;
  const std::string first = request.cache_key();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(request.cache_key(), first);
  }
  EXPECT_EQ(first.size(), 32u);  // 128-bit hex
  EXPECT_EQ(first.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(CanonicalConfig, FingerprintSeparatesDistinctRequests) {
  SweepRequest a;
  SweepRequest b = a;
  b.seed = a.seed + 1;
  SweepRequest c = a;
  c.eps = 0.25;
  SweepRequest d = a;
  d.protocol = "lesu";
  EXPECT_NE(a.cache_key(), b.cache_key());
  EXPECT_NE(a.cache_key(), c.cache_key());
  EXPECT_NE(a.cache_key(), d.cache_key());
  EXPECT_NE(b.cache_key(), c.cache_key());
}

TEST(CanonicalConfig, BatchDoesNotChangeTheKey) {
  // Lane count is a throughput knob; by the batch-equivalence contract
  // outcomes are bit-identical, so it must share one cache entry.
  SweepRequest a;
  a.batch = 0;
  SweepRequest b = a;
  b.batch = 512;
  EXPECT_EQ(a.cache_key(), b.cache_key());
}

TEST(CanonicalConfig, CanonicalNumberFormats) {
  EXPECT_EQ(obs::canonical_number(4096.0), "4096");
  EXPECT_EQ(obs::canonical_number(-3.0), "-3");
  EXPECT_EQ(obs::canonical_number(0.0), "0");
  // Non-integral values round-trip exactly and identically every time.
  const std::string half = obs::canonical_number(0.5);
  EXPECT_EQ(half, obs::canonical_number(0.25 + 0.25));
  EXPECT_EQ(obs::canonical_number(0.1), obs::canonical_number(0.1));
}

TEST(SweepRequestJson, FromJsonRejectsUnknownFields) {
  const SweepLimits limits;
  std::string why;
  const auto params = Json::parse(R"({"n":64,"trails":8})");  // typo
  ASSERT_TRUE(params.has_value());
  const auto request = SweepRequest::from_json(*params, limits, &why);
  EXPECT_FALSE(request.has_value());
  EXPECT_NE(why.find("trails"), std::string::npos);
}

TEST(SweepRequestJson, FromJsonRejectsOutOfRange) {
  const SweepLimits limits;
  std::string why;
  const auto params = Json::parse(R"({"trials":2000000})");
  ASSERT_TRUE(params.has_value());
  EXPECT_FALSE(SweepRequest::from_json(*params, limits, &why).has_value());
  const auto bad_eps = Json::parse(R"({"eps":1.5})");
  EXPECT_FALSE(SweepRequest::from_json(*bad_eps, limits, &why).has_value());
  const auto bad_protocol = Json::parse(R"({"protocol":"aloha"})");
  EXPECT_FALSE(
      SweepRequest::from_json(*bad_protocol, limits, &why).has_value());
}

TEST(SweepRequestJson, ParsedRequestKeyMatchesProgrammatic) {
  const SweepLimits limits;
  std::string why;
  const auto params =
      Json::parse(R"({"seed":9,"eps":0.5,"n":512,"trials":16})");
  ASSERT_TRUE(params.has_value());
  const auto parsed = SweepRequest::from_json(*params, limits, &why);
  ASSERT_TRUE(parsed.has_value()) << why;
  SweepRequest direct;
  direct.n = 512;
  direct.eps = 0.5;
  direct.seed = 9;
  direct.trials = 16;
  EXPECT_EQ(parsed->cache_key(), direct.cache_key());
}

}  // namespace
}  // namespace jamelect::service
