// SweepService + ResultCache behaviour: cache hits are bit-identical
// to fresh computation, the disk tier survives "restarts" (a new cache
// over the same directory), the bounded queue rejects when full, and
// identical in-flight requests coalesce onto one job.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "service/result_cache.hpp"
#include "service/service.hpp"
#include "service/sweep_request.hpp"
#include "service/sweep_runner.hpp"

namespace jamelect::service {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory under the build tree's /tmp.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("jamelect_" + tag + "_" +
               std::to_string(
                   std::chrono::steady_clock::now().time_since_epoch()
                       .count()))) {}
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

SweepRequest small_request(std::uint64_t seed) {
  SweepRequest request;
  request.n = 128;
  request.trials = 16;
  request.seed = seed;
  request.max_slots = 10'000;
  return request;
}

TEST(ResultCache, MemoryTier) {
  ResultCache cache("");
  EXPECT_FALSE(cache.lookup("aa11").has_value());
  cache.store("aa11", "{\"n\":1}", "{\"r\":1}");
  const auto hit = cache.lookup("aa11");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "{\"r\":1}");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, DiskTierSurvivesRestart) {
  const TempDir dir("cache");
  const std::string result = "{\"success\":{\"rate\":0.5},\"trials\":16}";
  {
    ResultCache cache(dir.str());
    cache.store("bb22", "{\"n\":2}", result);
  }
  // A fresh cache over the same directory simulates a daemon restart:
  // memory is empty, the disk envelope must serve the identical bytes.
  ResultCache reborn(dir.str());
  EXPECT_EQ(reborn.size(), 0u);
  const auto hit = reborn.lookup("bb22");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, result);
  EXPECT_EQ(reborn.size(), 1u);  // promoted into memory
}

TEST(ResultCache, EntryCapEvictsLeastRecentlyUsed) {
  ResultCache cache("", /*max_entries=*/2);
  EXPECT_EQ(cache.max_entries(), 2u);
  cache.store("aa01", "", "{\"r\":1}");
  cache.store("aa02", "", "{\"r\":2}");
  // Touch aa01 so aa02 becomes the LRU victim of the next insert.
  EXPECT_TRUE(cache.lookup("aa01").has_value());
  cache.store("aa03", "", "{\"r\":3}");
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.lookup("aa02").has_value());  // no disk tier: gone
  EXPECT_TRUE(cache.lookup("aa01").has_value());
  EXPECT_TRUE(cache.lookup("aa03").has_value());
}

TEST(ResultCache, ByteCapBoundsMemoryButKeepsTheMruEntry) {
  const std::string big(1024, 'x');
  ResultCache cache("", /*max_entries=*/0, /*max_bytes=*/1500);
  cache.store("bb01", "", big);
  cache.store("bb02", "", big);  // over budget: bb01 must go
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_LE(cache.memory_bytes(), 1500u);
  EXPECT_FALSE(cache.lookup("bb01").has_value());
  EXPECT_TRUE(cache.lookup("bb02").has_value());
  // A single result larger than the whole budget is still servable:
  // the bound never evicts the just-stored MRU entry.
  const std::string huge(4096, 'y');
  ResultCache tiny("", 0, 16);
  tiny.store("bb03", "", huge);
  EXPECT_EQ(tiny.size(), 1u);
  const auto hit = tiny.lookup("bb03");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, huge);
}

TEST(ResultCache, DiskTierServesEvictedKeysAndRepromotes) {
  const TempDir dir("evict");
  ResultCache cache(dir.str(), /*max_entries=*/2);
  cache.store("cc01", "{\"n\":1}", "{\"r\":1}");
  cache.store("cc02", "{\"n\":2}", "{\"r\":2}");
  cache.store("cc03", "{\"n\":3}", "{\"r\":3}");  // evicts cc01 from memory
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  // The evicted key is still a hit — served from disk, bit-identical,
  // and promoted back into memory (evicting the new LRU, cc02).
  const auto hit = cache.lookup("cc01");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "{\"r\":1}");
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 2u);
  // cc02 in turn reloads from disk.
  const auto hit2 = cache.lookup("cc02");
  ASSERT_TRUE(hit2.has_value());
  EXPECT_EQ(*hit2, "{\"r\":2}");
}

TEST(SweepRequestKeying, RngBackendIsPartOfTheCacheKey) {
  // The backends are different result universes, so requests differing
  // only in `rng` must never share a cache entry...
  SweepRequest xo = small_request(1234);
  SweepRequest aes = small_request(1234);
  aes.rng = "aes_ctr";
  EXPECT_NE(xo.cache_key(), aes.cache_key());
  // ...while `batch` (a pure throughput knob with bit-identical
  // outcomes) deliberately is NOT keyed.
  SweepRequest batched = small_request(1234);
  batched.batch = 64;
  EXPECT_EQ(xo.cache_key(), batched.cache_key());
}

TEST(SweepServiceCache, CohortBatchIsNotKeyedAndHitsSequentialEntry) {
  // The batched cohort engine is a pure throughput knob — per-trial
  // outcomes are bit-identical to the sequential cohort engine — so
  // `batch` stays out of the fingerprint for cohort requests too, and a
  // batched request must be served from a sequentially-computed entry.
  SweepRequest seq = small_request(9042);
  seq.engine = "cohort";
  seq.batch = 0;
  SweepRequest batched = seq;
  batched.batch = 64;
  EXPECT_EQ(seq.cache_key(), batched.cache_key());

  ServiceConfig config;
  config.workers = 1;
  SweepService service(config);
  const auto first = service.submit(seq);
  ASSERT_EQ(first.outcome, SweepService::Submit::Outcome::kAccepted);
  const auto done = service.wait(first.id);
  ASSERT_TRUE(done.has_value());
  ASSERT_EQ(done->state, JobState::kDone);

  // The batched twin is a cache hit on the sequential entry...
  const auto second = service.submit(batched);
  ASSERT_EQ(second.outcome, SweepService::Submit::Outcome::kCached);
  EXPECT_EQ(second.result_json, done->result_json);
  EXPECT_EQ(service.computed(), 1u);

  // ...and serving it those bytes is sound: computing the batched
  // request from scratch serializes to the identical JSON.
  const McResult fresh = run_sweep(batched, config.runner);
  EXPECT_EQ(mc_result_to_json(fresh).dump(), second.result_json);
}

TEST(ResultCache, RejectsHostileKeys) {
  const TempDir dir("hostile");
  ResultCache cache(dir.str());
  // Keys are fingerprint hex; anything else must not touch the disk
  // tier (path-traversal defense), and must simply miss.
  EXPECT_FALSE(cache.lookup("../../etc/passwd").has_value());
  EXPECT_FALSE(cache.lookup("").has_value());
}

TEST(SweepServiceCache, HitIsBitIdenticalToFreshComputation) {
  ServiceConfig config;
  config.workers = 1;
  SweepService service(config);
  const SweepRequest request = small_request(4242);

  // First submission computes.
  const auto first = service.submit(request);
  ASSERT_EQ(first.outcome, SweepService::Submit::Outcome::kAccepted);
  const auto done = service.wait(first.id);
  ASSERT_TRUE(done.has_value());
  ASSERT_EQ(done->state, JobState::kDone);

  // Second submission must be served from cache...
  const auto second = service.submit(request);
  ASSERT_EQ(second.outcome, SweepService::Submit::Outcome::kCached);
  // ...with the exact bytes of the computed result.
  EXPECT_EQ(second.result_json, done->result_json);

  // And both must equal a from-scratch recomputation (the MC
  // reproducibility contract carried through serialization).
  const McResult fresh = run_sweep(request, config.runner);
  EXPECT_EQ(mc_result_to_json(fresh).dump(), second.result_json);

  EXPECT_EQ(service.cache_hits(), 1u);
  EXPECT_EQ(service.computed(), 1u);
}

TEST(SweepServiceCache, DiskHitIsBitIdenticalAcrossServices) {
  const TempDir dir("svc_disk");
  const SweepRequest request = small_request(777);
  std::string computed;
  {
    ServiceConfig config;
    config.workers = 1;
    config.cache_dir = dir.str();
    SweepService service(config);
    const auto sub = service.submit(request);
    ASSERT_EQ(sub.outcome, SweepService::Submit::Outcome::kAccepted);
    const auto done = service.wait(sub.id);
    ASSERT_TRUE(done.has_value());
    ASSERT_EQ(done->state, JobState::kDone);
    computed = done->result_json;
    service.stop();
  }
  ServiceConfig config;
  config.workers = 1;
  config.cache_dir = dir.str();
  SweepService reborn(config);
  const auto sub = reborn.submit(request);
  ASSERT_EQ(sub.outcome, SweepService::Submit::Outcome::kCached);
  EXPECT_EQ(sub.result_json, computed);
}

TEST(SweepServiceCache, HitLatencyBeatsComputeByTwoOrdersOfMagnitude) {
  using Clock = std::chrono::steady_clock;
  ServiceConfig config;
  config.workers = 1;
  SweepService service(config);
  // A deliberately heavy sweep so compute time dominates all overheads.
  SweepRequest request;
  request.n = 1024;
  request.trials = 4000;
  request.seed = 31337;
  request.adversary = "saturating";
  request.T = 64;
  request.max_slots = 50'000;

  const auto t0 = Clock::now();
  const auto first = service.submit(request);
  ASSERT_EQ(first.outcome, SweepService::Submit::Outcome::kAccepted);
  const auto done = service.wait(first.id);
  ASSERT_TRUE(done.has_value());
  ASSERT_EQ(done->state, JobState::kDone);
  const auto compute = Clock::now() - t0;

  const auto t1 = Clock::now();
  const auto second = service.submit(request);
  const auto hit = Clock::now() - t1;
  ASSERT_EQ(second.outcome, SweepService::Submit::Outcome::kCached);
  EXPECT_EQ(second.result_json, done->result_json);
  // Acceptance criterion: cached >= 100x faster than computing.
  EXPECT_GE(compute.count(), 100 * hit.count())
      << "compute=" << compute.count() << "ns hit=" << hit.count() << "ns";
}

TEST(SweepServiceBackpressure, QueueFullRejects) {
  ServiceConfig config;
  config.workers = 1;
  config.max_queue = 2;
  SweepService service(config);
  // Distinct seeds -> distinct keys -> no coalescing; a slow-ish sweep
  // keeps the single worker busy while the queue fills.
  std::vector<SweepService::Submit> subs;
  int rejected = 0;
  for (std::uint64_t i = 0; i < 16; ++i) {
    SweepRequest request = small_request(10'000 + i);
    request.trials = 512;
    request.n = 512;
    const auto sub = service.submit(request);
    if (sub.outcome == SweepService::Submit::Outcome::kRejected) {
      ++rejected;
      EXPECT_NE(sub.error.find("queue full"), std::string::npos);
    } else {
      ASSERT_EQ(sub.outcome, SweepService::Submit::Outcome::kAccepted);
      subs.push_back(sub);
    }
  }
  EXPECT_GT(rejected, 0) << "16 submissions never overflowed max_queue=2";
  EXPECT_EQ(service.rejected(), static_cast<std::uint64_t>(rejected));
  for (const auto& sub : subs) {
    const auto done = service.wait(sub.id);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->state, JobState::kDone);
  }
}

TEST(SweepServiceCoalescing, IdenticalInFlightRequestsShareOneJob) {
  ServiceConfig config;
  config.workers = 2;
  SweepService service(config);
  SweepRequest request = small_request(555);
  request.trials = 2000;
  request.n = 1024;
  request.adversary = "saturating";
  request.max_slots = 50'000;

  const auto first = service.submit(request);
  ASSERT_EQ(first.outcome, SweepService::Submit::Outcome::kAccepted);
  // Re-submitting the identical request while it runs must coalesce,
  // not enqueue a duplicate computation.
  int coalesced = 0;
  for (int i = 0; i < 4; ++i) {
    const auto again = service.submit(request);
    if (again.outcome == SweepService::Submit::Outcome::kCoalesced) {
      EXPECT_EQ(again.id, first.id);
      ++coalesced;
    } else {
      // The job may have already finished -> legitimate cache hit.
      ASSERT_EQ(again.outcome, SweepService::Submit::Outcome::kCached);
    }
  }
  const auto done = service.wait(first.id);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, JobState::kDone);
  EXPECT_EQ(service.computed(), 1u) << "coalesced requests recomputed";
  EXPECT_EQ(service.coalesced(), static_cast<std::uint64_t>(coalesced));
  if (coalesced > 0) {
    EXPECT_EQ(done->waiters, static_cast<std::size_t>(coalesced));
  }
}

TEST(SweepServiceStop, FailsQueuedJobsAndWakesWaiters) {
  ServiceConfig config;
  config.workers = 1;
  config.max_queue = 8;
  SweepService service(config);
  std::vector<std::string> ids;
  for (std::uint64_t i = 0; i < 4; ++i) {
    SweepRequest request = small_request(20'000 + i);
    request.trials = 256;
    const auto sub = service.submit(request);
    ASSERT_EQ(sub.outcome, SweepService::Submit::Outcome::kAccepted);
    ids.push_back(sub.id);
  }
  service.stop();
  for (const auto& id : ids) {
    const auto status = service.status(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_TRUE(status->state == JobState::kDone ||
                status->state == JobState::kFailed);
  }
  // Submissions after stop are rejected, not queued forever.
  const auto late = service.submit(small_request(99));
  EXPECT_EQ(late.outcome, SweepService::Submit::Outcome::kRejected);
}

}  // namespace
}  // namespace jamelect::service
